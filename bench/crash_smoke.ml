(* Crash-recovery smoke test against the real ckpt_serve binary.

   A live server (WAL + snapshots on) takes an observe-heavy stateful
   load over TCP; after a deterministic number of acked requests it is
   killed with SIGKILL mid-load, restarted on the same directories, and
   fed the rest of the load plus estimate/replan probes.  Every
   post-restart response must be byte-identical to an in-process oracle
   service that processed the whole load without ever dying — i.e. the
   acked prefix was fully recovered — and the restarted server's stats
   must report a real WAL replay.

   Usage:  crash_smoke.exe PATH/TO/ckpt_serve.exe [--ops N] [--kill-after K]

   Exit 0 on success, 1 on any mismatch or lost op.  Run by the CI
   crash-smoke job; needs nothing beyond the repo's own binaries. *)

module Json = Ckpt_json.Json
module Codec = Ckpt_model.Codec
module Frame = Ckpt_net.Frame
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("crash_smoke: " ^ m); exit 1) fmt

(* ---------------- the load ---------------- *)

let problem =
  let open Ckpt_model in
  { Optimizer.te = 1e4 *. 86_400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5 "16-12-8-4" }

let observe_line i =
  let t0 = float_of_int i *. 1e4 in
  let ev fields = Json.Obj fields in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "observe");
         ( "events",
           Json.List
             [ ev [ ("t", Json.Number t0); ("ev", Json.String "start");
                    ("scale", Json.Number 1e5); ("levels", Json.Number 4.) ];
               ev [ ("t", Json.Number (t0 +. 7200.)); ("ev", Json.String "compute");
                    ("dur", Json.Number 7200.);
                    ("productive", Json.Number (7000. +. float_of_int (i mod 7))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "ckpt");
                    ("level", Json.Number (float_of_int (1 + (i mod 4))));
                    ("dur", Json.Number (25. +. float_of_int (i mod 3))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "end");
                    ("completed", Json.Bool true) ] ] ) ])

let load_line i =
  if i mod 7 = 6 then
    Json.to_string
      (Json.Obj
         [ ("id", Json.Number (float_of_int i)); ("op", Json.String "replan");
           ("problem", Codec.problem_to_json problem) ])
  else observe_line i

let probe_lines =
  [ Json.to_string (Json.Obj [ ("id", Json.Number 1000.); ("op", Json.String "estimate") ]);
    Json.to_string
      (Json.Obj
         [ ("id", Json.Number 1001.); ("op", Json.String "replan");
           ("problem", Codec.problem_to_json problem) ]) ]

(* ---------------- process + socket plumbing ---------------- *)

let spawn_server ~serve_bin ~port ~wal_dir ~snapshot_dir =
  Unix.create_process serve_bin
    [| serve_bin; "--listen"; Printf.sprintf "127.0.0.1:%d" port;
       "--wal-dir"; wal_dir; "--snapshot-dir"; snapshot_dir;
       "--snapshot-interval"; "7"; "--workers"; "0" |]
    Unix.stdin Unix.stderr Unix.stderr

let connect ~port =
  let deadline = Unix.gettimeofday () +. 15. in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
        (fd, Frame.reader fd)
    | exception Unix.Unix_error ((ECONNREFUSED | ECONNRESET | ETIMEDOUT), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.1);
        go ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail "connect to port %d: %s" port (Printexc.to_string e)
  in
  go ()

(* In-order map: both the oracle and the live asks are side-effecting,
   and neither List.init nor (@) guarantees evaluation order. *)
let map_in_order f xs =
  List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let range lo hi = List.init (hi - lo) (fun k -> lo + k)

let ask (fd, reader) line =
  Frame.write_line fd line;
  match Frame.read_line reader with
  | Frame.Line l -> l
  | Frame.Eof -> fail "server closed the connection mid-request"
  | Frame.Timeout -> fail "request timed out"
  | Frame.Oversized -> fail "oversized response"

let ok_response line =
  match Json.parse_result line with
  | Ok json -> Protocol.response_ok json
  | Error _ -> false

let rec rm path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ---------------- main ---------------- *)

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let serve_bin = ref None in
  let ops = ref 40 in
  let kill_after = ref 23 in
  let rec parse = function
    | [] -> ()
    | "--ops" :: v :: rest -> ops := int_of_string v; parse rest
    | "--kill-after" :: v :: rest -> kill_after := int_of_string v; parse rest
    | p :: rest when !serve_bin = None -> serve_bin := Some p; parse rest
    | p :: _ -> fail "unexpected argument %S" p
  in
  parse (List.tl (Array.to_list Sys.argv));
  let serve_bin =
    match !serve_bin with
    | Some p when Sys.file_exists p -> p
    | Some p -> fail "no such binary: %s" p
    | None -> fail "usage: crash_smoke.exe PATH/TO/ckpt_serve.exe [--ops N] [--kill-after K]"
  in
  if !kill_after < 1 || !kill_after >= !ops then
    fail "--kill-after must be in [1, ops); got %d of %d" !kill_after !ops;
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckpt-crash-smoke-%d" (Unix.getpid ()))
  in
  let wal_dir = Filename.concat root "wal" in
  let snapshot_dir = Filename.concat root "snap" in
  if Sys.file_exists root then rm root;
  Unix.mkdir root 0o755;
  let port = 40_000 + (Unix.getpid () mod 20_000) in
  Fun.protect ~finally:(fun () -> if Sys.file_exists root then rm root)
  @@ fun () ->
  (* Life 1: serve the prefix, every response acked, then SIGKILL. *)
  let pid = spawn_server ~serve_bin ~port ~wal_dir ~snapshot_dir in
  let client = connect ~port in
  for i = 0 to !kill_after - 1 do
    let r = ask client (load_line i) in
    if not (ok_response r) then fail "life 1: op %d was refused: %s" i r
  done;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (try Unix.close (fst client) with Unix.Unix_error _ -> ());
  Printf.eprintf "crash_smoke: killed pid %d after %d acked ops\n%!" pid !kill_after;
  (* The oracle never died: a fresh in-process service takes the whole
     load.  Its responses to the tail (and the probes) are the expected
     bytes — if the restarted server lost any acked prefix op, its
     telemetry counts shift and the comparison fails. *)
  let oracle = Service.create ~workers:0 () in
  let expected =
    Fun.protect ~finally:(fun () -> Service.shutdown oracle) (fun () ->
        let all =
          map_in_order
            (fun i -> Service.handle_line_string oracle (load_line i))
            (range 0 !ops)
        in
        let tail = List.filteri (fun i _ -> i >= !kill_after) all in
        let probes = map_in_order (Service.handle_line_string oracle) probe_lines in
        tail @ probes)
  in
  (* Life 2: same directories, serve the tail + probes. *)
  let pid = spawn_server ~serve_bin ~port ~wal_dir ~snapshot_dir in
  let client = connect ~port in
  let got =
    (* Explicit sequencing: the probes must not reach the server before
       the tail, and (@) gives no evaluation-order guarantee. *)
    let tail = map_in_order (fun i -> ask client (load_line i)) (range !kill_after !ops) in
    let probes = map_in_order (ask client) probe_lines in
    tail @ probes
  in
  List.iteri
    (fun i (want, have) ->
      if want <> have then
        fail "response %d diverged after restart:\n  oracle: %s\n  server: %s" i want have)
    (List.combine expected got);
  (* The recovery must have been a real WAL replay, and say so. *)
  let stats =
    ask client (Json.to_string (Json.Obj [ ("op", Json.String "stats") ]))
  in
  let durability =
    Option.bind (Json.parse_result stats |> Result.to_option) (fun j ->
        Option.bind (Json.member "stats" j) (Json.member "durability"))
  in
  (match durability with
  | None -> fail "stats carries no durability object: %s" stats
  | Some d ->
      (match Option.bind (Json.member "wal" d) Json.to_bool with
      | Some true -> ()
      | _ -> fail "stats says the WAL is off");
      (match Option.bind (Json.member "replayed" d) Json.to_int with
      | Some n when n >= 1 ->
          Printf.eprintf "crash_smoke: restart replayed %d WAL records\n%!" n
      | Some n -> fail "restart replayed %d records; expected a real replay" n
      | None -> fail "stats durability object has no replayed count"));
  ignore (ask client (Json.to_string (Json.Obj [ ("op", Json.String "shutdown") ])));
  (try Unix.close (fst client) with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  Printf.printf
    "crash_smoke: PASS — %d ops, kill -9 after %d, acked prefix fully recovered\n" !ops
    !kill_after
