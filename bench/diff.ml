(* Compare a fresh BENCH_results.json against a committed baseline.

   Usage:  diff.exe BASELINE.json FRESH.json [--threshold PCT]

   For every kernel present in both files, the primary mean time
   (sequential.mean_ns, or wall.mean_ns for the planner kernels) and its
   minor-heap allocation per rep are compared; a kernel worse than
   baseline by more than the threshold (default 25%) on either is a
   regression and the exit status is 1.  Kernels only
   on one side are reported but never fail the run — the set changes as
   benchmarks are added.  Machine-to-machine noise is why the threshold
   is generous: this is a tripwire for order-of-magnitude mistakes
   (a re-boxed inner loop, an accidentally-quadratic pass), not a
   substitute for looking at the numbers. *)

module J = Ckpt_json.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error m -> fail "cannot open %s: %s" path m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match J.parse_result s with
  | Ok doc -> doc
  | Error m -> fail "%s: %s" path m

(* Each kernel contributes up to three gated metrics: the primary mean
   time (all kernels), and — for loadgen kernels carrying a
   "throughput" object — sustained QPS (gated on drops) and p99 latency
   (gated on rises).  Tail latency regressions hide inside a healthy
   mean, and a throughput collapse can even improve per-request means by
   shedding the expensive requests, so both get their own tripwire. *)
type metric = {
  kernel : string;
  what : string;  (* "mean_ns" | "qps" | "p99_ns" | "speedup" *)
  value : float;
  better : [ `Lower | `Higher ];
  unit_ : string;
  scale : float;  (* value / scale is printed *)
  lenience : float;  (* the threshold is multiplied by this *)
}

let kernels doc =
  match Option.bind (J.member "benchmarks" doc) J.to_list with
  | None -> fail "missing benchmarks list"
  | Some entries ->
      List.concat_map
        (fun entry ->
          match J.string_field "kernel" entry with
          | None -> []
          | Some kernel ->
              let mean timing =
                Option.bind (J.member timing entry) (J.float_field "mean_ns")
              in
              let throughput field =
                Option.bind (J.member "throughput" entry) (J.float_field field)
              in
              let primary =
                match mean "sequential" with Some m -> Some m | None -> mean "wall"
              in
              (* Allocation per rep is the one machine-independent
                 metric here: wall time drifts with the box, but a
                 kernel that suddenly allocates more re-boxed something.
                 Same lenience as mean time; kernels allocating under a
                 few kwords are skipped — at that size a single extra
                 closure trips the percentage gate without meaning
                 anything. *)
              let words timing =
                Option.bind (J.member timing entry)
                  (J.float_field "minor_words_per_rep")
              in
              let primary_words =
                match
                  (match words "sequential" with
                  | Some w -> Some w
                  | None -> words "wall")
                with
                | Some w when w >= 4096. -> Some w
                | _ -> None
              in
              (* Worker-scaling trajectory entries also gate their
                 speedup_vs_1_worker: a scaling collapse (a new lock on
                 the fan-out path) can hide inside acceptable absolute
                 times.  Scaling curves move more between machines than
                 times do, so the gate runs at double the threshold. *)
              let speedup =
                if J.member "trajectory" entry = Some (J.Bool true) then
                  J.float_field "speedup_vs_1_worker" entry
                else None
              in
              (* Solver kernels carry an "iterations" object: summed
                 inner iterations and Eq. 24 evaluations for the batch
                 the kernel times.  These are deterministic — identical
                 on every machine — so they run at 0.4x the threshold
                 (CI's --threshold 25 makes the effective gate 10%): an
                 iteration regression is a solver change, not noise. *)
              let iter_field f =
                Option.bind (J.member "iterations" entry) (J.float_field f)
              in
              List.filter_map Fun.id
                [ Option.map
                    (fun value ->
                      { kernel; what = "mean_ns"; value; better = `Lower;
                        unit_ = "ms"; scale = 1e6; lenience = 1. })
                    primary;
                  Option.map
                    (fun value ->
                      { kernel; what = "minor_words_per_rep"; value;
                        better = `Lower; unit_ = "kw"; scale = 1e3; lenience = 1. })
                    primary_words;
                  Option.map
                    (fun value ->
                      { kernel; what = "qps"; value; better = `Higher;
                        unit_ = "qps"; scale = 1.; lenience = 1. })
                    (throughput "qps");
                  Option.map
                    (fun value ->
                      { kernel; what = "p99_ns"; value; better = `Lower;
                        unit_ = "ms"; scale = 1e6; lenience = 1. })
                    (throughput "p99_ns");
                  Option.map
                    (fun value ->
                      { kernel; what = "speedup"; value; better = `Higher;
                        unit_ = "x"; scale = 1.; lenience = 2. })
                    speedup;
                  Option.map
                    (fun value ->
                      { kernel; what = "inner_iterations"; value;
                        better = `Lower; unit_ = "it"; scale = 1.;
                        lenience = 0.4 })
                    (iter_field "inner");
                  Option.map
                    (fun value ->
                      { kernel; what = "f_evals"; value; better = `Lower;
                        unit_ = "ev"; scale = 1.; lenience = 0.4 })
                    (iter_field "f_evals") ])
        entries

let metric_key m = m.kernel ^ "/" ^ m.what

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let threshold = ref 25. in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0. -> threshold := t
        | _ -> fail "--threshold wants a positive number, got %s" v);
        parse rest
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse args;
  let baseline_path, fresh_path =
    match List.rev !paths with
    | [ b; f ] -> (b, f)
    | _ -> fail "usage: diff.exe BASELINE.json FRESH.json [--threshold PCT]"
  in
  let baseline = kernels (load baseline_path) in
  let fresh = kernels (load fresh_path) in
  let regressions = ref 0 in
  List.iter
    (fun base ->
      match List.find_opt (fun m -> metric_key m = metric_key base) fresh with
      | None -> Printf.printf "~ %-40s only in baseline\n" (metric_key base)
      | Some fresh_m ->
          let ratio = if base.value > 0. then fresh_m.value /. base.value else 1. in
          (* Positive pct = worse, whichever direction "worse" is. *)
          let pct =
            match base.better with
            | `Lower -> (ratio -. 1.) *. 100.
            | `Higher -> (1. -. ratio) *. 100.
          in
          let regressed = pct > !threshold *. base.lenience in
          if regressed then incr regressions;
          Printf.printf "%s %-40s %10.3f %s -> %10.3f %s  (%+.1f%% worse)\n"
            (if regressed then "!" else " ")
            (metric_key base) (base.value /. base.scale) base.unit_
            (fresh_m.value /. fresh_m.scale) fresh_m.unit_ pct)
    baseline;
  List.iter
    (fun m ->
      if not (List.exists (fun b -> metric_key b = metric_key m) baseline) then
        Printf.printf "~ %-40s only in fresh\n" (metric_key m))
    fresh;
  (* Durability overhead gate: a "-wal" kernel is the same load with the
     write-ahead log on, so its p99 is compared against its WAL-off
     sibling *within the fresh file* (machine-to-machine noise cancels —
     both ran on this box, in this run).  The tail is where fsync cost
     shows first; under group commit (the benched configuration —
     strict fsync-per-op cost is measured separately by wal-append-b1)
     it must stay within the threshold of the WAL-off tail. *)
  List.iter
    (fun wal_m ->
      if wal_m.what = "p99_ns" && Filename.check_suffix wal_m.kernel "-wal" then begin
        let base_kernel = Filename.chop_suffix wal_m.kernel "-wal" in
        match
          List.find_opt (fun m -> m.kernel = base_kernel && m.what = "p99_ns") fresh
        with
        | None -> Printf.printf "~ %-40s has no WAL-off sibling\n" (metric_key wal_m)
        | Some base when base.value > 0. ->
            let pct = ((wal_m.value /. base.value) -. 1.) *. 100. in
            let regressed = pct > !threshold in
            if regressed then incr regressions;
            Printf.printf "%s %-40s %10.3f ms -> %10.3f ms  (%+.1f%% durability overhead)\n"
              (if regressed then "!" else " ")
              (wal_m.kernel ^ "/p99-vs-" ^ base_kernel)
              (base.value /. 1e6) (wal_m.value /. 1e6) pct
        | Some _ -> ()
      end)
    fresh;
  if !regressions > 0 then begin
    Printf.printf "%d metric(s) regressed by more than %.0f%%\n" !regressions
      !threshold;
    exit 1
  end
  else Printf.printf "no metric regressed by more than %.0f%%\n" !threshold
