(* Compare a fresh BENCH_results.json against a committed baseline.

   Usage:  diff.exe BASELINE.json FRESH.json [--threshold PCT]

   For every kernel present in both files, the primary mean time
   (sequential.mean_ns, or wall.mean_ns for the planner kernels) is
   compared; a kernel slower than baseline by more than the threshold
   (default 25%) is a regression and the exit status is 1.  Kernels only
   on one side are reported but never fail the run — the set changes as
   benchmarks are added.  Machine-to-machine noise is why the threshold
   is generous: this is a tripwire for order-of-magnitude mistakes
   (a re-boxed inner loop, an accidentally-quadratic pass), not a
   substitute for looking at the numbers. *)

module J = Ckpt_json.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error m -> fail "cannot open %s: %s" path m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match J.parse_result s with
  | Ok doc -> doc
  | Error m -> fail "%s: %s" path m

(* kernel name -> primary mean_ns *)
let kernels doc =
  match Option.bind (J.member "benchmarks" doc) J.to_list with
  | None -> fail "missing benchmarks list"
  | Some entries ->
      List.filter_map
        (fun entry ->
          match J.string_field "kernel" entry with
          | None -> None
          | Some kernel ->
              let mean timing =
                Option.bind (J.member timing entry) (J.float_field "mean_ns")
              in
              let primary =
                match mean "sequential" with Some m -> Some m | None -> mean "wall"
              in
              Option.map (fun m -> (kernel, m)) primary)
        entries

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let threshold = ref 25. in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0. -> threshold := t
        | _ -> fail "--threshold wants a positive number, got %s" v);
        parse rest
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse args;
  let baseline_path, fresh_path =
    match List.rev !paths with
    | [ b; f ] -> (b, f)
    | _ -> fail "usage: diff.exe BASELINE.json FRESH.json [--threshold PCT]"
  in
  let baseline = kernels (load baseline_path) in
  let fresh = kernels (load fresh_path) in
  let regressions = ref 0 in
  List.iter
    (fun (kernel, base_ns) ->
      match List.assoc_opt kernel fresh with
      | None -> Printf.printf "~ %-34s only in baseline\n" kernel
      | Some fresh_ns ->
          let ratio = if base_ns > 0. then fresh_ns /. base_ns else 1. in
          let pct = (ratio -. 1.) *. 100. in
          let regressed = pct > !threshold in
          if regressed then incr regressions;
          Printf.printf "%s %-34s %10.3f ms -> %10.3f ms  (%+.1f%%)\n"
            (if regressed then "!" else " ")
            kernel (base_ns /. 1e6) (fresh_ns /. 1e6) pct)
    baseline;
  List.iter
    (fun (kernel, _) ->
      if not (List.mem_assoc kernel baseline) then
        Printf.printf "~ %-34s only in fresh\n" kernel)
    fresh;
  if !regressions > 0 then begin
    Printf.printf "%d kernel(s) regressed by more than %.0f%%\n" !regressions
      !threshold;
    exit 1
  end
  else Printf.printf "no kernel regressed by more than %.0f%%\n" !threshold
