(* Benchmark harness for the multilevel checkpoint reproduction.

   Two parts, both in this one executable:

   1. Bechamel micro-benchmarks — one [Test.make] per paper table/figure,
      timing the computational kernel that regenerates it (the optimizer
      solve, a simulated run, the emulator, the least-squares fit, ...),
      plus a few substrate kernels (Reed-Solomon, event queue, RNG).

   2. The full regeneration of every table and figure via
      [Ckpt_experiments.Registry] — the same rows/series the paper
      reports, printed to stdout.

   Run with:  dune exec bench/main.exe
   Pass --quick to skip part 2, or experiment ids to regenerate a
   subset.  Pass --json to instead run the parallel/warm-start
   regression kernels and write BENCH_results.json (the artifact CI
   archives per revision). *)

open Bechamel
open Toolkit
open Ckpt_model
module E = Ckpt_experiments
module Failure_spec = Ckpt_failures.Failure_spec

(* --- kernels under benchmark ------------------------------------------- *)

let fig3_kernel () = Single_level.optimize (E.Paper_data.fig3_problem ~linear_cost:false)

let table2_kernel () =
  Overhead.fit ~snap:1e-3 ~scales:E.Paper_data.table2_scales
    ~costs:E.Paper_data.table2_costs.(3) ()

let eval_problem = E.Paper_data.eval_problem ~te_core_days:3e6 ~case:"16-12-8-4" ()
let eval_plan = Optimizer.ml_opt_scale eval_problem

let fig5_solve_kernel () = Optimizer.ml_opt_scale eval_problem

let sim_config =
  Ckpt_sim.Run_config.of_plan ~semantics:Ckpt_sim.Run_config.paper_semantics
    ~problem:eval_problem ~plan:eval_plan ()

(* Each simulation kernel owns its seed counter, at a distinct base: with
   a shared counter, how many iterations bechamel granted one kernel
   shifted the seeds — and so the timings — of every other, making runs
   incomparable. *)
let fig5_seed = ref 0

let fig5_sim_kernel () =
  incr fig5_seed;
  Ckpt_sim.Engine.run ~seed:!fig5_seed sim_config

let fig1_kernel () = Optimizer.solve ~fixed_n:5e5 eval_problem

let fig2_kernel () =
  Ckpt_mpi.Emulator.run ~machine:Ckpt_mpi.Machine.default
    (Ckpt_mpi.Heat.program ~ranks:64 ())

let small_validation_config =
  let problem =
    { Optimizer.te = 1024. *. 3600.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
      levels = Level.fti_fusion;
      alloc = 10.;
      spec = Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6" }
  in
  let plan = Optimizer.ml_ori_scale ~n:1024. problem in
  Ckpt_sim.Run_config.of_plan ~problem ~plan ()

let fig4_event_seed = ref 100_000

let fig4_event_kernel () =
  incr fig4_event_seed;
  Ckpt_sim.Engine.run ~seed:!fig4_event_seed small_validation_config

let fig4_tick_seed = ref 200_000

let fig4_tick_kernel () =
  incr fig4_tick_seed;
  Ckpt_sim.Tick_engine.run ~seed:!fig4_tick_seed small_validation_config

let table3_kernel () = Optimizer.sl_opt_scale eval_problem

let fig6_problem = E.Paper_data.eval_problem ~te_core_days:1e7 ~case:"8-6-4-2" ()
let fig6_kernel () = Optimizer.ml_opt_scale fig6_problem

let fig7_seed = ref 300_000

let fig7_kernel () =
  incr fig7_seed;
  let o = Ckpt_sim.Engine.run ~seed:!fig7_seed sim_config in
  Ckpt_sim.Outcome.efficiency o ~te:eval_problem.Optimizer.te ~n:eval_plan.Optimizer.n

let table4_problem =
  E.Paper_data.eval_problem ~levels:Level.constant_pfs_case ~te_core_days:2e6
    ~case:"8-6-4-2" ()

let table4_kernel () = Optimizer.ml_opt_scale table4_problem
let convergence_kernel () = Optimizer.solve ~delta:1e-12 eval_problem

let markov_params =
  { Markov.te = eval_problem.Optimizer.te;
    speedup = eval_problem.Optimizer.speedup;
    levels = eval_problem.Optimizer.levels;
    alloc = eval_problem.Optimizer.alloc;
    spec = eval_problem.Optimizer.spec }

let scr_kernel () =
  (* Reduced period grid: the full 13-value grid takes ~1 s per solve. *)
  Markov.optimize ~candidate_periods:[ 1; 8; 64; 512 ] markov_params ~n:376_179.

let costmodel_kernel () =
  Ckpt_fti.Cost_model.fit_levels Ckpt_fti.Cost_model.fusion
    ~scales:[| 128; 256; 384; 512; 1024 |]

let sensitivity_kernel () =
  Sensitivity.elasticities ~rel_step:0.05
    [ List.hd (Sensitivity.quadratic_knobs ~kappa:0.46 ~n_star:1e6 eval_problem) ]

let nonconvexity_kernel () =
  E.Nonconvexity.compute ()

(* Substrate kernels. *)

let rs_codec = Ckpt_storage.Reed_solomon.create ~data:8 ~parity:2

let rs_payloads =
  let rng = Ckpt_numerics.Rng.of_int 1 in
  Array.init 8 (fun _ ->
      Bytes.init 4096 (fun _ -> Char.chr (Ckpt_numerics.Rng.int rng 256)))

let rs_encode_kernel () = Ckpt_storage.Reed_solomon.encode rs_codec rs_payloads

let rs_decode_kernel =
  let parity = Ckpt_storage.Reed_solomon.encode rs_codec rs_payloads in
  let shards =
    Array.append (Array.map Option.some rs_payloads) (Array.map Option.some parity)
  in
  shards.(0) <- None;
  shards.(5) <- None;
  fun () -> Ckpt_storage.Reed_solomon.decode rs_codec shards

let event_queue_kernel () =
  let q = Ckpt_simkernel.Event_queue.create () in
  for i = 0 to 999 do
    ignore (Ckpt_simkernel.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) i)
  done;
  let rec drain () = match Ckpt_simkernel.Event_queue.pop q with Some _ -> drain () | None -> () in
  drain ()

let rng_kernel =
  let rng = Ckpt_numerics.Rng.of_int 7 in
  fun () ->
    let acc = ref 0. in
    for _ = 1 to 1000 do
      acc := !acc +. Ckpt_numerics.Dist.exponential rng ~rate:1.
    done;
    !acc

let jacobi_grid = Ckpt_mpi.Heat.Jacobi.create ~size:64
let jacobi_kernel () = Ckpt_mpi.Heat.Jacobi.step jacobi_grid

let cg_system = Ckpt_numerics.Sparse.poisson_2d ~n:24
let cg_rhs = Array.make (Ckpt_numerics.Sparse.rows cg_system) 1.
let cg_kernel () = Ckpt_numerics.Cg.solve ~tol:1e-8 ~a:cg_system ~b:cg_rhs ()

let json_doc =
  Codec.bundle_to_json ~problem:eval_problem ~plan:eval_plan
  |> Ckpt_json.Json.to_string ~pretty:true

let json_kernel () = Ckpt_json.Json.parse json_doc

(* Service kernels: batch throughput of the ckpt_service planning layer,
   tracked from the PR that introduced it.  One persistent service per
   worker count; each run answers a 64-point scale sweep through the
   full JSON protocol.  The cold variants defeat cross-run caching by
   shifting the grid per run; the warm variant re-answers a fixed grid
   out of the LRU. *)

let service_problem_json =
  Ckpt_json.Json.to_string (Codec.problem_to_json eval_problem)

let sweep_request ~offset =
  let values =
    String.concat ", "
      (List.init 64 (fun i -> Printf.sprintf "%.3f" (2e5 +. offset +. (float_of_int i *. 1e3))))
  in
  Printf.sprintf {|{"op": "sweep", "param": "scale", "values": [%s], "problem": %s}|}
    values service_problem_json

let service_w1 = lazy (Ckpt_service.Service.create ~workers:1 ~cache_capacity:64 ())
let service_w4 = lazy (Ckpt_service.Service.create ~workers:4 ~cache_capacity:64 ())
let service_warm = lazy (Ckpt_service.Service.create ~workers:4 ~cache_capacity:4096 ())
let sweep_offset = ref 0.

let service_sweep_kernel service () =
  (* A fresh grid each run: with capacity 64 < 65 distinct points per
     shift, every point misses and the solver really runs. *)
  sweep_offset := !sweep_offset +. 10.;
  Ckpt_service.Service.handle_batch (Lazy.force service)
    [ sweep_request ~offset:!sweep_offset ]

let service_warm_kernel () =
  Ckpt_service.Service.handle_batch (Lazy.force service_warm) [ sweep_request ~offset:0. ]

let () =
  at_exit (fun () ->
      List.iter
        (fun s -> if Lazy.is_val s then Ckpt_service.Service.shutdown (Lazy.force s))
        [ service_w1; service_w4; service_warm ])

(* Adaptive kernels: telemetry ingest and controller stepping throughput,
   tracked from the PR that introduced ckpt_adaptive.  The event stream is
   one simulated run of the small validation problem (~thousands of
   events).  The controller kernel measures the per-event decision path —
   [min_failures = max_int] keeps Algorithm-1 evaluations out of the
   loop, whose cost fig5-algorithm1-solve already tracks. *)

let adaptive_events =
  let events, _ = Ckpt_adaptive.Telemetry.of_run ~seed:11 small_validation_config in
  events

let adaptive_levels = Array.length Level.fti_fusion

let adaptive_ingest_kernel () =
  let rates =
    Ckpt_adaptive.Rate_estimator.observe_all
      (Ckpt_adaptive.Rate_estimator.create ~levels:adaptive_levels ())
      adaptive_events
  in
  let costs =
    Ckpt_adaptive.Cost_estimator.observe_all
      (Ckpt_adaptive.Cost_estimator.create ~levels:adaptive_levels ())
      adaptive_events
  in
  (Ckpt_adaptive.Rate_estimator.total_count rates,
   Ckpt_adaptive.Cost_estimator.ckpt_count costs ~level:1)

let adaptive_controller_state =
  lazy
    (let problem =
       { Optimizer.te = 1024. *. 3600.;
         speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
         levels = Level.fti_fusion;
         alloc = 10.;
         spec = Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6" }
     in
     Ckpt_adaptive.Controller.init
       { (Ckpt_adaptive.Controller.default_config problem) with
         Ckpt_adaptive.Controller.min_failures = max_int })

let adaptive_controller_kernel () =
  Ckpt_adaptive.Controller.step_all (Lazy.force adaptive_controller_state) adaptive_events

let tests =
  Test.make_grouped ~name:"paper"
    [ Test.make ~name:"fig1-solve-at-scale" (Staged.stage fig1_kernel);
      Test.make ~name:"fig2-heat-emulation-64" (Staged.stage fig2_kernel);
      Test.make ~name:"fig3-single-level-optimize" (Staged.stage fig3_kernel);
      Test.make ~name:"table2-overhead-fit" (Staged.stage table2_kernel);
      Test.make ~name:"fig4-event-engine-run" (Staged.stage fig4_event_kernel);
      Test.make ~name:"fig4-tick-engine-run" (Staged.stage fig4_tick_kernel);
      Test.make ~name:"fig5-algorithm1-solve" (Staged.stage fig5_solve_kernel);
      Test.make ~name:"fig5-simulated-run" (Staged.stage fig5_sim_kernel);
      Test.make ~name:"table3-sl-opt-solve" (Staged.stage table3_kernel);
      Test.make ~name:"fig6-solve-10m-core-days" (Staged.stage fig6_kernel);
      Test.make ~name:"fig7-efficiency-run" (Staged.stage fig7_kernel);
      Test.make ~name:"table4-const-pfs-solve" (Staged.stage table4_kernel);
      Test.make ~name:"convergence-delta-1e12" (Staged.stage convergence_kernel);
      Test.make ~name:"nonconvexity-scan" (Staged.stage nonconvexity_kernel);
      Test.make ~name:"scr-markov-optimize" (Staged.stage scr_kernel);
      Test.make ~name:"costmodel-fit-levels" (Staged.stage costmodel_kernel);
      Test.make ~name:"sensitivity-one-knob" (Staged.stage sensitivity_kernel) ]

let substrate_tests =
  Test.make_grouped ~name:"substrate"
    [ Test.make ~name:"reed-solomon-encode-8+2x4KB" (Staged.stage rs_encode_kernel);
      Test.make ~name:"reed-solomon-decode-2-erasures" (Staged.stage rs_decode_kernel);
      Test.make ~name:"event-queue-1k-push-pop" (Staged.stage event_queue_kernel);
      Test.make ~name:"rng-1k-exponentials" (Staged.stage rng_kernel);
      Test.make ~name:"jacobi-sweep-64x64" (Staged.stage jacobi_kernel);
      Test.make ~name:"cg-solve-poisson-576" (Staged.stage cg_kernel);
      Test.make ~name:"json-parse-plan-bundle" (Staged.stage json_kernel);
      Test.make ~name:"service-sweep64-1-worker" (Staged.stage (service_sweep_kernel service_w1));
      Test.make ~name:"service-sweep64-4-workers" (Staged.stage (service_sweep_kernel service_w4));
      Test.make ~name:"service-sweep64-warm-cache" (Staged.stage service_warm_kernel);
      Test.make ~name:"adaptive-ingest-run-telemetry" (Staged.stage adaptive_ingest_kernel);
      Test.make ~name:"adaptive-controller-step-run" (Staged.stage adaptive_controller_kernel) ]

(* --- JSON regression harness (--json) ------------------------------------ *)

(* A lightweight wall-clock harness for the kernels whose performance
   this PR sequence tracks across commits: the parallel replication
   layer, warm-started sweeps and concurrent registry regeneration.
   Bechamel stays the tool for micro-kernels; this mode emits a small
   machine-readable BENCH_results.json that CI archives per revision. *)

module Pool = Ckpt_parallel.Pool
module J = Ckpt_json.Json

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown"
  with _ -> "unknown"

(* Each rep also reads the minor-heap allocation counter: allocation per
   rep is the fastpath's primary regression signal — a kernel can stay
   fast on one machine while quietly re-boxing, and wall time alone
   would not catch it until the next slow box. *)
let time_ns ?(warmup = 1) ~reps f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let w0 = Gc.minor_words () in
  let samples =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let minor_words = (Gc.minor_words () -. w0) /. float_of_int reps in
  let mean = Array.fold_left ( +. ) 0. samples /. float_of_int reps in
  let var =
    Array.fold_left (fun acc s -> acc +. ((s -. mean) *. (s -. mean))) 0. samples
    /. float_of_int (max 1 (reps - 1))
  in
  (mean, sqrt var, minor_words)

let timing_obj label (mean, std, minor_words) =
  ( label,
    J.Obj
      [ ("mean_ns", J.Number mean);
        ("stddev_ns", J.Number std);
        ("minor_words_per_rep", J.Number minor_words) ] )

(* Solver iteration telemetry.  Unlike wall time these counts are
   deterministic — the same batch solves with the same iteration budget
   on any machine — so diff.exe gates them far tighter than the timing
   metrics (see the lenience there). *)
let iterations_obj ~inner ~outer ~f_evals =
  ( "iterations",
    J.Obj
      [ ("inner", J.Number (float_of_int inner));
        ("outer", J.Number (float_of_int outer));
        ("f_evals", J.Number (float_of_int f_evals)) ] )

let bench_entry ~kernel ~workers ~reps ~baseline ~optimized extra =
  let base_mean, _, _ = baseline in
  let opt_mean, _, _ = optimized in
  J.Obj
    ([ ("kernel", J.String kernel);
       ("workers", J.Number (float_of_int workers));
       ("reps", J.Number (float_of_int reps));
       timing_obj "sequential" baseline;
       timing_obj "parallel" optimized;
       ( "speedup_vs_1_worker",
         J.Number (if opt_mean > 0. then base_mean /. opt_mean else 0.) ) ]
    @ extra)

let json_bench () =
  let workers = Pool.recommended_workers () in
  let reps = 5 in
  let entries =
    Pool.with_pool ~workers (fun pool ->
        (* Replication: the Monte-Carlo fan-out (bit-identical either way). *)
        let repl_runs = 20 in
        let repl_seq =
          time_ns ~reps (fun () ->
              Ckpt_sim.Replication.run ~runs:repl_runs small_validation_config)
        in
        let repl_par =
          time_ns ~reps (fun () ->
              Ckpt_sim.Replication.run ~pool ~runs:repl_runs small_validation_config)
        in
        (* Sweep: cold solves per grid point vs the warm-started walk. *)
        let sweep_values =
          Array.init 16 (fun i -> 2e5 +. (float_of_int i *. 5e4))
        in
        let sweep_cold =
          time_ns ~reps (fun () ->
              Optimizer.sweep ~warm:false ~axis:`Scale ~values:sweep_values
                eval_problem)
        in
        let sweep_warm =
          time_ns ~reps (fun () ->
              Optimizer.sweep ~axis:`Scale ~values:sweep_values eval_problem)
        in
        let _, cold_stats =
          Optimizer.sweep ~warm:false ~axis:`Scale ~values:sweep_values eval_problem
        in
        let _, warm_stats =
          Optimizer.sweep ~axis:`Scale ~values:sweep_values eval_problem
        in
        (* Registry: independent experiment renders, fanned across domains. *)
        let registry_ids = [ "fig3"; "table2"; "costmodel" ] in
        let registry_experiments =
          List.filter_map E.Registry.find registry_ids
        in
        let registry_seq =
          time_ns ~reps (fun () -> E.Registry.render_all registry_experiments)
        in
        let registry_par =
          time_ns ~reps (fun () -> E.Registry.render_all ~pool registry_experiments)
        in
        [ bench_entry ~kernel:(Printf.sprintf "replication-%d-runs" repl_runs)
            ~workers ~reps ~baseline:repl_seq ~optimized:repl_par [];
          bench_entry
            ~kernel:(Printf.sprintf "sweep-scale-%dpt-warm-vs-cold"
                       (Array.length sweep_values))
            ~workers:1 ~reps ~baseline:sweep_cold ~optimized:sweep_warm
            [ ( "cold_inner_iterations",
                J.Number (float_of_int cold_stats.Optimizer.inner_iterations) );
              ( "warm_inner_iterations",
                J.Number (float_of_int warm_stats.Optimizer.inner_iterations) );
              iterations_obj
                ~inner:warm_stats.Optimizer.inner_iterations
                ~outer:warm_stats.Optimizer.outer_iterations
                ~f_evals:warm_stats.Optimizer.f_evals ];
          bench_entry
            ~kernel:(Printf.sprintf "registry-%s" (String.concat "+" registry_ids))
            ~workers ~reps ~baseline:registry_seq ~optimized:registry_par [] ])
  in
  (* Planner under faults: the resilience tax.  The same 64-query
     all-miss batch, healthy vs a seeded ~10% pool+solver fault rate
     (retries, fallback chain and worker respawns included in the
     timing).  Each run shifts the grid so the LRU never serves it. *)
  let entries =
    entries
    @
    let module Chaos = Ckpt_chaos.Chaos in
    let module Planner = Ckpt_service.Planner in
    let module Metrics = Ckpt_service.Metrics in
    let planner_offset = ref 0. in
    let batch () =
      planner_offset := !planner_offset +. 7.;
      Array.init 64 (fun i ->
          { Ckpt_service.Protocol.problem = eval_problem;
            solution = Ckpt_service.Protocol.Ml_opt;
            fixed_n = Some (2e5 +. !planner_offset +. (float_of_int i *. 1e3));
            delta = 1e-9 })
    in
    let fault_spec =
      { Chaos.disabled with
        Chaos.seed = 5;
        pool_crash = 0.05;
        pool_stall = 0.05;
        stall_max_s = 5e-4;
        solver_diverge = 0.05;
        solver_non_finite = 0.05 }
    in
    let time_planner ?chaos () =
      let metrics = Metrics.create () in
      let planner = Planner.create ~cache_capacity:16 ?chaos metrics in
      let degraded = ref 0 in
      let timing =
        match chaos with
        | None ->
            Pool.with_pool ~workers (fun pool ->
                time_ns ~reps (fun () -> Planner.solve_batch ~pool planner (batch ())))
        | Some c ->
            Pool.with_pool ~chaos:c ~workers (fun pool ->
                time_ns ~reps (fun () -> Planner.solve_batch ~pool planner (batch ())))
      in
      degraded := (Metrics.snapshot metrics).Metrics.degraded;
      (timing, !degraded)
    in
    let healthy, _ = time_planner () in
    let faulted, degraded = time_planner ~chaos:(Chaos.create fault_spec) () in
    (* The same 64-row batch shape solved directly (no pool, offset 0):
       its summed iteration counts are the deterministic twin of the
       timed kernel above, gated per revision. *)
    let planner_iterations =
      let jobs =
        Array.init 64 (fun i ->
            Optimizer.batch_job ~delta:1e-9
              ~fixed_n:(2e5 +. (float_of_int i *. 1e3))
              eval_problem)
      in
      let plans = Optimizer.solve_batch jobs in
      let sum f = Array.fold_left (fun acc p -> acc + f p) 0 plans in
      iterations_obj
        ~inner:(sum (fun p -> p.Optimizer.inner_iterations))
        ~outer:(sum (fun p -> p.Optimizer.outer_iterations))
        ~f_evals:(sum (fun p -> p.Optimizer.f_evals))
    in
    let planner_entry ~kernel ~fault_rate ~timing extra =
      J.Obj
        ([ ("kernel", J.String kernel);
           ("workers", J.Number (float_of_int workers));
           ("reps", J.Number (float_of_int reps));
           ("fault_rate", J.Number fault_rate);
           timing_obj "wall" timing ]
        @ extra)
    in
    [ planner_entry ~kernel:"planner-batch64-fault-0pct" ~fault_rate:0. ~timing:healthy
        [ planner_iterations ];
      planner_entry ~kernel:"planner-batch64-fault-10pct" ~fault_rate:0.1 ~timing:faulted
        [ ("degraded_answers", J.Number (float_of_int degraded)) ] ]
  in
  (* WAL append throughput: the per-op durability cost the server pays
     under --wal-dir, swept across group-commit batches.  Each rep
     appends a realistic protocol-line payload 256 times and ends with
     an explicit flush, so every batch size pays for full durability of
     the same record count — b1 measures the strict fsync-per-op floor,
     b64 what group commit buys back. *)
  let entries =
    entries
    @
    let module Wal = Ckpt_net.Wal in
    let appends_per_rep = 256 in
    let payload =
      {|{"id": 7, "op": "observe", "events": [{"t": 0, "ev": "start", "scale": 100000, "levels": 4}, {"t": 3600, "ev": "compute", "dur": 3600, "productive": 3500}, {"t": 3630, "ev": "ckpt", "level": 2, "dur": 30}, {"t": 3630, "ev": "end", "completed": true}]}|}
    in
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
    in
    List.map
      (fun batch ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "ckpt-bench-wal-%d-b%d" (Unix.getpid ()) batch)
        in
        let wal =
          match Wal.open_ (Wal.config ~fsync_batch:batch ~dir ()) ~next_seq:1 with
          | Ok w -> w
          | Error m -> failwith ("wal-append bench: " ^ m)
        in
        let timing =
          time_ns ~reps (fun () ->
              for _ = 1 to appends_per_rep do
                match Wal.append wal payload with
                | Ok _ -> ()
                | Error m -> failwith ("wal-append bench: " ^ m)
              done;
              match Wal.flush wal with
              | Ok () -> ()
              | Error m -> failwith ("wal-append bench: " ^ m))
        in
        Wal.close wal;
        if Sys.file_exists dir then rm dir;
        J.Obj
          [ ("kernel", J.String (Printf.sprintf "wal-append-b%d" batch));
            ("workers", J.Number 1.);
            ("reps", J.Number (float_of_int reps));
            ("fsync_batch", J.Number (float_of_int batch));
            ("appends_per_rep", J.Number (float_of_int appends_per_rep));
            timing_obj "wall" timing ])
      [ 1; 8; 64 ]
  in
  (* Per-worker scaling trajectories: the two pool-driven kernels at
     1/2/4/8 workers, each entry tagged "trajectory": true so diff.exe
     gates speedup_vs_1_worker (with extra leniency — scaling curves
     move more between machines than absolute times do). *)
  let entries =
    entries
    @
    let module Planner = Ckpt_service.Planner in
    let module Metrics = Ckpt_service.Metrics in
    let counts = [ 1; 2; 4; 8 ] in
    let repl_runs = 20 in
    (* Offset starts at 0 like the fault kernels above, keeping the
       fixed_n grid in the same 2e5 regime: a 1e6 start point used to
       shift the trajectory's problems into a different convergence
       region than the absolute-time kernels it is compared against. *)
    let planner_offset = ref 0. in
    let planner_batch () =
      planner_offset := !planner_offset +. 7.;
      Array.init 64 (fun i ->
          { Ckpt_service.Protocol.problem = eval_problem;
            solution = Ckpt_service.Protocol.Ml_opt;
            fixed_n = Some (2e5 +. !planner_offset +. (float_of_int i *. 1e3));
            delta = 1e-9 })
    in
    let trajectory name time_at =
      let timings = List.map (fun w -> (w, time_at w)) counts in
      let w1_mean =
        match timings with (1, (m, _, _)) :: _ -> m | _ -> assert false
      in
      List.map
        (fun (w, timing) ->
          let mean, _, _ = timing in
          J.Obj
            [ ("kernel", J.String (Printf.sprintf "%s-w%d" name w));
              ("trajectory", J.Bool true);
              ("workers", J.Number (float_of_int w));
              ("reps", J.Number (float_of_int reps));
              timing_obj "wall" timing;
              ( "speedup_vs_1_worker",
                J.Number (if mean > 0. then w1_mean /. mean else 0.) ) ])
        timings
    in
    (* Pool spawn/teardown stays outside [time_ns], and the extra warmup
       reps run inside the pool so first-touch costs (per-domain
       workspaces, worker wake-up) are paid before the timed region. *)
    trajectory (Printf.sprintf "replication-%d-runs" repl_runs) (fun w ->
        Pool.with_pool ~workers:w (fun pool ->
            time_ns ~warmup:3 ~reps (fun () ->
                Ckpt_sim.Replication.run ~pool ~runs:repl_runs
                  small_validation_config)))
    @ trajectory "planner-batch64" (fun w ->
          let planner = Planner.create ~cache_capacity:16 (Metrics.create ()) in
          Pool.with_pool ~workers:w (fun pool ->
              time_ns ~warmup:3 ~reps (fun () ->
                  Planner.solve_batch ~pool planner (planner_batch ()))))
  in
  let doc =
    J.Obj
      [ ("schema", J.String "ckpt-bench/1");
        ("git_rev", J.String (git_rev ()));
        ("workers", J.Number (float_of_int workers));
        ("benchmarks", J.List entries) ]
  in
  let path = "BENCH_results.json" in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d kernels, %d workers, rev %s)\n" path
    (List.length entries) workers (git_rev ())

(* --- Table II fallback gate (--table2-gate) ------------------------------ *)

(* CI's bench-smoke job runs this after the timing kernels: every case
   of the paper's Table II corpus is solved on both the accelerated and
   the reference path, the per-case iteration histogram is written to
   iteration-histogram.json (archived as an artifact), and the exit
   status is 1 if any accelerated solve needed a safeguard fallback,
   spent more inner iterations than the reference, or failed plan
   equivalence (same integer scale, E(T_w) within 1e-9 relative).  The
   acceleration is tuned to be safeguard-free on this corpus; a
   fallback here means a change moved the solver off that operating
   point even if the answers are still right. *)
let table2_gate () =
  let cases =
    [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1"; "16-8-4-2"; "8-4-2-1"; "4-2-1-0.5" ]
  in
  let violations = ref 0 in
  let entries =
    List.map
      (fun case ->
        let p = E.Paper_data.eval_problem ~te_core_days:3e6 ~case () in
        let fast = Optimizer.solve p in
        let slow = Optimizer.solve_reference p in
        let wall_rel =
          Float.abs (fast.Optimizer.wall_clock -. slow.Optimizer.wall_clock)
          /. Float.abs slow.Optimizer.wall_clock
        in
        let equivalent =
          Float.round fast.Optimizer.n = Float.round slow.Optimizer.n
          && wall_rel <= 1e-9
        in
        let ok =
          equivalent && fast.Optimizer.fallbacks = 0
          && fast.Optimizer.inner_iterations <= slow.Optimizer.inner_iterations
        in
        if not ok then incr violations;
        Printf.printf "%s %-10s  inner %3d vs %3d  f_evals %4d vs %4d  fallbacks %d  wall rel %.2e\n"
          (if ok then " " else "!") case fast.Optimizer.inner_iterations
          slow.Optimizer.inner_iterations fast.Optimizer.f_evals
          slow.Optimizer.f_evals fast.Optimizer.fallbacks wall_rel;
        let side (plan : Optimizer.plan) =
          J.Obj
            [ ("inner_iterations", J.Number (float_of_int plan.Optimizer.inner_iterations));
              ("outer_iterations", J.Number (float_of_int plan.Optimizer.outer_iterations));
              ("f_evals", J.Number (float_of_int plan.Optimizer.f_evals));
              ("fallbacks", J.Number (float_of_int plan.Optimizer.fallbacks)) ]
        in
        J.Obj
          [ ("case", J.String case);
            ("accelerated", side fast);
            ("reference", side slow);
            ("wall_clock_rel_diff", J.Number wall_rel);
            ("plan_equivalent", J.Bool equivalent);
            ("ok", J.Bool ok) ])
      cases
  in
  let doc =
    J.Obj
      [ ("schema", J.String "ckpt-iteration-histogram/1");
        ("git_rev", J.String (git_rev ()));
        ("corpus", J.String "table2");
        ("cases", J.List entries) ]
  in
  let path = "iteration-histogram.json" in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d cases, rev %s)\n" path (List.length entries) (git_rev ());
  if !violations > 0 then begin
    Printf.printf "%d Table II case(s) violated the safeguard-free contract\n"
      !violations;
    exit 1
  end

(* --- bechamel driver ----------------------------------------------------- *)

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let print_bench_results results =
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  Bechamel_notty.Unit.add Instance.monotonic_clock (Measure.unit Instance.monotonic_clock);
  let image =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image image;
  print_newline ()

(* --- main ---------------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let gate = List.mem "--table2-gate" args in
  let requested =
    List.filter (fun a -> a <> "--quick" && a <> "--json" && a <> "--table2-gate") args
  in
  if gate then table2_gate ()
  else if json then json_bench ()
  else begin
  print_endline "== Bechamel micro-benchmarks (one per paper table/figure) ==";
  print_bench_results (benchmark tests);
  print_bench_results (benchmark substrate_tests);
  if not quick then begin
    print_endline "\n== Regenerating the paper's tables and figures ==";
    let ids = if requested = [] then E.Registry.ids () else requested in
    let ppf = Format.std_formatter in
    List.iter
      (fun id ->
        match E.Registry.find id with
        | Some e ->
            e.E.Registry.run ppf;
            Format.pp_print_flush ppf ()
        | None -> Printf.printf "unknown experiment %S\n" id)
      ids
  end
  end
