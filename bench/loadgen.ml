(* Closed-loop load generator for the ckpt_net planning server.

   N worker threads each own one TCP connection and replay a
   deterministic request mix back-to-back (closed loop: the next request
   leaves when the previous response lands), recording per-request
   latency.  The run reports QPS and p50/p99/p999 latency per connection
   count, as BENCH_results.json-shaped kernel entries that diff.exe can
   gate.

   Usage:
     loadgen.exe --spawn --requests 10000 --connections 8
     loadgen.exe --host 127.0.0.1 --port 7401 --requests 5000 --connections 4
     loadgen.exe --spawn --trajectory 1,2,4 --merge BENCH_results.json

   --spawn starts an in-process server on an ephemeral loopback port (no
   second process needed, same socket path end-to-end); --merge rewrites
   the given BENCH_results.json with the loadgen kernels replaced;
   --fail-on-error exits 1 if any request is answered with ok=false or a
   connection dies mid-run.

   --wal-dir enables the spawned server's write-ahead log (with
   --fsync-batch controlling group commit) and tags the emitted kernels
   with a "-wal" suffix, so a WAL-on run can be merged next to its
   WAL-off sibling and diff.exe can gate the durability overhead. *)

open Cmdliner
module Json = Ckpt_json.Json
module Codec = Ckpt_model.Codec
module Frame = Ckpt_net.Frame
module Server = Ckpt_net.Server
module Service = Ckpt_service.Service

(* ---------------- the request mix ---------------- *)

(* A fixed pool of distinct problems: small enough that the server's plan
   cache warms up over the run (steady-state serving), large enough that
   the run starts with real solves. *)
let pool_size = 32

let problem_pool =
  let open Ckpt_model in
  let patterns = [| "16-12-8-4"; "8-6-4-2"; "24-18-12-6" |] in
  Array.init pool_size (fun i ->
      { Optimizer.te = (8e3 +. (250. *. float_of_int i)) *. 86_400.;
        speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
        levels = Level.fti_fusion;
        alloc = 40. +. float_of_int (i mod 3) *. 20.;
        spec =
          Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5
            patterns.(i mod Array.length patterns) })

let with_op op fields = Json.Obj (("op", Json.String op) :: fields)

let plan_request idx =
  with_op "plan"
    [ ("id", Json.Number (float_of_int idx));
      ("problem", Codec.problem_to_json problem_pool.(idx mod pool_size)) ]

let batch_plan_request idx =
  (* Four problems per request, walking the pool: the planner's SoA batch
     solver path, one wire round-trip amortized over K solves. *)
  with_op "batch-plan"
    [ ("id", Json.Number (float_of_int idx));
      ( "problems",
        Json.List
          (List.init 4 (fun k ->
               Codec.problem_to_json problem_pool.((idx + k) mod pool_size))) ) ]

let sweep_request idx =
  with_op "sweep"
    [ ("id", Json.Number (float_of_int idx));
      ("problem", Codec.problem_to_json problem_pool.(idx mod pool_size));
      ("param", Json.String "scale");
      ("values", Json.float_array [| 5e4; 7.5e4; 1e5; 1.25e5 |]) ]

let observe_request idx =
  (* One complete little run: start / compute / ckpt / end.  The start
     event carries the level count, so the first observe on a fresh
     server creates the telemetry session and later estimates never see
     "no-telemetry". *)
  let t0 = float_of_int idx *. 10_000. in
  let ev fields = Json.Obj fields in
  with_op "observe"
    [ ("id", Json.Number (float_of_int idx));
      ( "events",
        Json.List
          [ ev [ ("t", Json.Number t0); ("ev", Json.String "start");
                 ("scale", Json.Number 1e5); ("levels", Json.Number 4.) ];
            ev [ ("t", Json.Number (t0 +. 3600.)); ("ev", Json.String "compute");
                 ("dur", Json.Number 3600.); ("productive", Json.Number 3500.) ];
            ev [ ("t", Json.Number (t0 +. 3630.)); ("ev", Json.String "ckpt");
                 ("level", Json.Number (float_of_int (1 + (idx mod 4))));
                 ("dur", Json.Number 30.) ];
            ev [ ("t", Json.Number (t0 +. 3630.)); ("ev", Json.String "end");
                 ("completed", Json.Bool true) ] ] ) ]

let estimate_request idx =
  with_op "estimate" [ ("id", Json.Number (float_of_int idx)) ]

let calibrate_request idx =
  (* A small inline SCR-style session: one run, a failure, the restart
     that recovered from it, and a checkpoint at a rotating level.  Each
     calibrate re-plans the pooled problem from the accumulated session
     evidence — the expensive stateful op in the mix. *)
  let t0 = float_of_int idx *. 10_000. in
  let level = 1 + (idx mod 4) in
  let line fmt = Printf.ksprintf (fun s -> Json.String s) fmt in
  with_op "calibrate"
    [ ("id", Json.Number (float_of_int idx));
      ("problem", Codec.problem_to_json problem_pool.(idx mod pool_size));
      ( "log",
        Json.List
          [ line "t=%.0f event=START scale=100000 levels=4" t0;
            line "t=%.0f event=COMPUTE secs=3600 productive=3500" (t0 +. 3600.);
            line "t=%.0f event=CHECKPOINT secs=30 level=%d" (t0 +. 3630.) level;
            line "t=%.0f event=FAILURE level=%d" (t0 +. 4000.) level;
            line "t=%.0f event=FETCH secs=40 level=%d" (t0 +. 4100.) level;
            line "t=%.0f event=REBUILD secs=20" (t0 +. 4140.);
            line "t=%.0f event=END complete=1" (t0 +. 5000.) ] ) ]

type mix = Plan_only | Mixed

let mix_name = function Plan_only -> "plan" | Mixed -> "mix"

let mix_of_string = function
  | "plan" -> Ok Plan_only
  | "mix" -> Ok Mixed
  | s -> Error (Printf.sprintf "--mix wants plan|mix, got %S" s)

(* Deterministic in the global request index, so every run replays the
   same request stream regardless of how threads interleave. *)
let request_of_index mix idx =
  let json =
    match mix with
    | Plan_only -> plan_request idx
    | Mixed -> (
        match idx mod 20 with
        | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 -> plan_request idx
        | 12 | 13 -> batch_plan_request idx
        | 14 | 15 | 16 -> sweep_request idx
        | 17 -> observe_request idx
        | 18 -> calibrate_request idx
        | _ -> estimate_request idx)
  in
  Json.to_string json

(* ---------------- the closed loop ---------------- *)

type outcome = {
  latencies_ns : float array;  (* answered requests only *)
  errors : int;  (* ok=false responses *)
  dead_connections : int;  (* connections that died mid-run *)
  elapsed_s : float;
}

let run_load ~host ~port ~connections ~requests ~mix =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let next = ref 0 in
  let next_lock = Mutex.create () in
  let take () =
    Mutex.lock next_lock;
    let i = !next in
    if i < requests then incr next;
    Mutex.unlock next_lock;
    if i < requests then Some i else None
  in
  let buffers = Array.make connections [] in
  let errors = Array.make connections 0 in
  let dead = Array.make connections 0 in
  let worker c () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        dead.(c) <- dead.(c) + 1;
        Printf.eprintf "loadgen: connection %d failed: %s\n%!" c (Printexc.to_string e)
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let reader = Frame.reader fd in
        (* First request per connection is an observe so the telemetry
           session exists before any estimate can reach the server. *)
        let warmed = ref (mix = Plan_only) in
        let rec loop () =
          match take () with
          | None -> ()
          | Some idx ->
              let line =
                if not !warmed then begin
                  warmed := true;
                  Json.to_string (observe_request idx)
                end
                else request_of_index mix idx
              in
              let t0 = Unix.gettimeofday () in
              let alive =
                match Frame.write_line fd line with
                | () -> (
                    match Frame.read_line reader with
                    | Frame.Line response ->
                        let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
                        buffers.(c) <- dt_ns :: buffers.(c);
                        (match Json.parse_result response with
                        | Ok json when Ckpt_service.Protocol.response_ok json -> ()
                        | _ -> errors.(c) <- errors.(c) + 1);
                        true
                    | Frame.Eof ->
                        Printf.eprintf "loadgen: conn %d req %d: eof\n%!" c idx;
                        false
                    | Frame.Timeout ->
                        Printf.eprintf "loadgen: conn %d req %d: timeout\n%!" c idx;
                        false
                    | Frame.Oversized -> false)
                | exception (Unix.Unix_error (e, _, _)) ->
                    Printf.eprintf "loadgen: conn %d req %d: write %s\n%!" c idx
                      (Unix.error_message e);
                    false
                | exception Sys_error m ->
                    Printf.eprintf "loadgen: conn %d req %d: write %s\n%!" c idx m;
                    false
              in
              if alive then loop ()
              else begin
                dead.(c) <- dead.(c) + 1;
                errors.(c) <- errors.(c) + 1
              end
        in
        loop ();
        (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init connections (fun c -> Thread.create (worker c) ()) in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let latencies_ns =
    Array.of_list (List.concat (Array.to_list buffers)) |> fun a ->
    Array.sort compare a;
    a
  in
  { latencies_ns;
    errors = Array.fold_left ( + ) 0 errors;
    dead_connections = Array.fold_left ( + ) 0 dead;
    elapsed_s }

(* ---------------- reporting ---------------- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let mean_std a =
  let n = Array.length a in
  if n = 0 then (nan, nan)
  else begin
    let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a /. float_of_int n
    in
    (mean, sqrt var)
  end

let entry_of_outcome ~mix ~tag ~connections ~requests o =
  let answered = Array.length o.latencies_ns in
  let mean, std = mean_std o.latencies_ns in
  let qps = if o.elapsed_s > 0. then float_of_int answered /. o.elapsed_s else 0. in
  Json.Obj
    [ ( "kernel",
        Json.String (Printf.sprintf "loadgen-%s-c%d%s" (mix_name mix) connections tag) );
      ("workers", Json.Number (float_of_int connections));
      ("reps", Json.Number (float_of_int requests));
      ("answered", Json.Number (float_of_int answered));
      ("errors", Json.Number (float_of_int o.errors));
      ("dead_connections", Json.Number (float_of_int o.dead_connections));
      ("elapsed_s", Json.Number o.elapsed_s);
      ( "wall",
        Json.Obj [ ("mean_ns", Json.Number mean); ("stddev_ns", Json.Number std) ] );
      ( "throughput",
        Json.Obj
          [ ("qps", Json.Number qps);
            ("p50_ns", Json.Number (percentile o.latencies_ns 0.50));
            ("p99_ns", Json.Number (percentile o.latencies_ns 0.99));
            ("p999_ns", Json.Number (percentile o.latencies_ns 0.999)) ] ) ]

let kernel_of entry = Json.string_field "kernel" entry

(* Replace same-named kernels in an existing BENCH_results.json, keeping
   everything else (schema, git_rev, the bechamel kernels) untouched. *)
let merge_into path new_entries =
  let doc =
    if Sys.file_exists path then (
      let ic = open_in path in
      let s =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
            really_input_string ic (in_channel_length ic))
      in
      match Json.parse_result s with
      | Ok d -> d
      | Error m -> failwith (Printf.sprintf "%s: %s" path m))
    else
      Json.Obj [ ("schema", Json.String "ckpt-bench/1"); ("benchmarks", Json.List []) ]
  in
  let fields = match doc with Json.Obj fs -> fs | _ -> failwith (path ^ ": not an object") in
  let new_names = List.filter_map kernel_of new_entries in
  let old_entries =
    match List.assoc_opt "benchmarks" fields with
    | Some (Json.List es) ->
        List.filter
          (fun e ->
            match kernel_of e with
            | Some k -> not (List.mem k new_names)
            | None -> true)
          es
    | _ -> []
  in
  let fields =
    List.map
      (function
        | "benchmarks", _ -> ("benchmarks", Json.List (old_entries @ new_entries))
        | kv -> kv)
      fields
  in
  let fields =
    if List.mem_assoc "benchmarks" fields then fields
    else fields @ [ ("benchmarks", Json.List new_entries) ]
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
      output_char oc '\n')

(* ---------------- CLI ---------------- *)

let parse_trajectory s =
  let parts = String.split_on_char ',' (String.trim s) in
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some c when c >= 1 -> walk (c :: acc) rest
        | _ -> Error (Printf.sprintf "--trajectory wants positive ints, got %S" s))
  in
  match walk [] parts with Ok [] -> Error "--trajectory is empty" | r -> r

let run spawn host port requests connections trajectory mix_s server_workers wal_dir
    fsync_batch merge fail_on_error =
  let ( let* ) = Result.bind in
  let* mix = mix_of_string mix_s in
  let* () =
    if requests < 1 then Error "--requests must be >= 1"
    else if connections < 1 then Error "--connections must be >= 1"
    else if (not spawn) && port = 0 then Error "--port is required without --spawn"
    else if fsync_batch < 1 then Error "--fsync-batch must be >= 1"
    else if wal_dir <> None && not spawn then Error "--wal-dir requires --spawn"
    else Ok ()
  in
  let* counts =
    match trajectory with
    | None -> Ok [ connections ]
    | Some t -> parse_trajectory t
  in
  let tag = match wal_dir with None -> "" | Some _ -> "-wal" in
  let service, server, host, port =
    if spawn then begin
      let service = Service.create ~workers:server_workers () in
      let config = { Server.default_config with Server.wal_dir; fsync_batch } in
      let server = Server.start ~config service in
      (Some service, Some server, "127.0.0.1", Server.port server)
    end
    else (None, None, host, port)
  in
  Fun.protect ~finally:(fun () ->
      Option.iter (fun s -> Server.stop s; Server.join s) server;
      Option.iter Service.shutdown service)
  @@ fun () ->
  let entries =
    List.map
      (fun connections ->
        let o = run_load ~host ~port ~connections ~requests ~mix in
        let entry = entry_of_outcome ~mix ~tag ~connections ~requests o in
        Printf.eprintf
          "loadgen-%s-c%d%s: %d/%d answered in %.2fs, %.0f qps, p50 %.2fms p99 %.2fms p999 %.2fms, %d errors\n%!"
          (mix_name mix) connections tag (Array.length o.latencies_ns) requests o.elapsed_s
          (float_of_int (Array.length o.latencies_ns) /. o.elapsed_s)
          (percentile o.latencies_ns 0.50 /. 1e6)
          (percentile o.latencies_ns 0.99 /. 1e6)
          (percentile o.latencies_ns 0.999 /. 1e6)
          o.errors;
        (entry, o))
      counts
  in
  let jsons = List.map fst entries in
  print_endline (Json.to_string ~pretty:true (Json.List jsons));
  Option.iter (fun path -> merge_into path jsons) merge;
  let total_errors =
    List.fold_left (fun acc (_, o) -> acc + o.errors + o.dead_connections) 0 entries
  in
  let answered = List.fold_left (fun acc (_, o) -> acc + Array.length o.latencies_ns) 0 entries in
  if fail_on_error && total_errors > 0 then
    Error (Printf.sprintf "%d request(s) failed or connections died" total_errors)
  else if fail_on_error && answered < List.length counts * requests then
    Error
      (Printf.sprintf "only %d of %d requests were answered" answered
         (List.length counts * requests))
  else Ok ()

let spawn =
  Arg.(value & flag
       & info [ "spawn" ] ~doc:"Start an in-process server on an ephemeral loopback port.")

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")

let requests =
  Arg.(value & opt int 1000
       & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total requests per connection count.")

let connections =
  Arg.(value & opt int 4
       & info [ "connections"; "c" ] ~docv:"N" ~doc:"Concurrent connections.")

let trajectory =
  Arg.(value & opt (some string) None
       & info [ "trajectory" ] ~docv:"N,N,.."
           ~doc:"Run at several connection counts (overrides --connections).")

let mix_arg =
  Arg.(value & opt string "mix"
       & info [ "mix" ] ~docv:"MIX"
           ~doc:"Request mix: plan (cacheable plans only) or mix (60/10/15/5/5/5 \
                 plan/batch-plan/sweep/observe/calibrate/estimate).")

let server_workers =
  Arg.(value & opt int 2
       & info [ "server-workers" ] ~docv:"N" ~doc:"Worker domains for the --spawn server.")

let wal_dir =
  Arg.(value & opt (some string) None
       & info [ "wal-dir" ] ~docv:"DIR"
           ~doc:"Enable the --spawn server's write-ahead log in $(docv) and tag the \
                 emitted kernels with a -wal suffix.")

let fsync_batch =
  Arg.(value & opt int 1
       & info [ "fsync-batch" ] ~docv:"N"
           ~doc:"WAL group-commit batch for the --spawn server (1 = strict).")

let merge =
  Arg.(value & opt (some string) None
       & info [ "merge" ] ~docv:"FILE"
           ~doc:"Merge the kernels into this BENCH_results.json (replacing same names).")

let fail_on_error =
  Arg.(value & flag
       & info [ "fail-on-error" ]
           ~doc:"Exit 1 if any request errors, goes unanswered, or a connection dies.")

let cmd =
  let doc = "Closed-loop load generator for the ckpt_net planning server" in
  let term =
    Term.(const run $ spawn $ host $ port $ requests $ connections $ trajectory $ mix_arg
          $ server_workers $ wal_dir $ fsync_batch $ merge $ fail_on_error)
  in
  Cmd.v (Cmd.info "loadgen" ~doc) Term.(term_result' term)

let () =
  (* A server closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  exit (Cmd.eval cmd)
