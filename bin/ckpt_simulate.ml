(* Simulate a checkpointed execution under a chosen strategy.

   Example:
     ckpt_simulate --te-days 3e6 --rates 16-12-8-4 --solution ml-opt --runs 50 *)

open Cmdliner
open Ckpt_model

let load_bundle path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  match Ckpt_json.Json.parse_result content with
  | Error e -> Error ("cannot parse " ^ path ^ ": " ^ e)
  | Ok json -> Codec.bundle_of_json json

let run te_days rates kappa n_star alloc solution runs seed horizon_days workers
    plan_file =
  match
    match plan_file with
    | Some path -> load_bundle path
    | None ->
        let spec =
          try Ok (Ckpt_failures.Failure_spec.of_string ~baseline_scale:n_star rates)
          with Invalid_argument m -> Error m
        in
        Result.bind spec (fun spec ->
            if Ckpt_failures.Failure_spec.levels spec <> Array.length Level.fti_fusion then
              Error "expected one failure rate per FTI level (4)"
            else begin
              let problem =
                { Optimizer.te = te_days *. 86400.;
                  speedup = Speedup.quadratic ~kappa ~n_star;
                  levels = Level.fti_fusion; alloc; spec }
              in
              let problem, plan =
                match solution with
                | "ml-opt" -> (problem, Optimizer.ml_opt_scale problem)
                | "ml-ori" -> (problem, Optimizer.ml_ori_scale problem)
                | "sl-opt" ->
                    (Optimizer.single_level_problem problem, Optimizer.sl_opt_scale problem)
                | "sl-ori" ->
                    (Optimizer.single_level_problem problem, Optimizer.sl_ori_scale problem)
                | s -> invalid_arg ("unknown solution " ^ s)
              in
              Ok (problem, plan)
            end)
  with
  | Error m -> Error m
  | exception Invalid_argument m -> Error m
  | Ok (problem, plan) ->
      Format.printf "plan:@\n%a@\n@." Optimizer.pp_plan plan;
      let config =
        Ckpt_sim.Run_config.of_plan ~max_wall_clock:(horizon_days *. 86400.) ~problem
          ~plan ()
      in
      (* Replications use split RNG substreams fixed up front, so the
         aggregate is bit-identical for any worker count. *)
      let aggregate =
        if workers <= 1 then Ckpt_sim.Replication.run ~runs ~base_seed:seed config
        else
          Ckpt_parallel.Pool.with_pool ~workers (fun pool ->
              Ckpt_sim.Replication.run ~pool ~runs ~base_seed:seed config)
      in
      Format.printf "simulation (%d runs):@\n%a@." runs Ckpt_sim.Replication.pp aggregate;
      Ok ()

let te_days = Arg.(value & opt float 3e6 & info [ "te-days" ] ~doc:"Workload in core-days.")
let rates =
  Arg.(value & opt string "16-12-8-4" & info [ "rates" ] ~doc:"Failures/day per level.")
let kappa = Arg.(value & opt float 0.46 & info [ "kappa" ] ~doc:"Speedup slope.")
let n_star = Arg.(value & opt float 1e6 & info [ "n-star" ] ~doc:"Ideal scale.")
let alloc = Arg.(value & opt float 60. & info [ "alloc" ] ~doc:"Allocation period (s).")
let solution =
  Arg.(value & opt string "ml-opt" & info [ "solution" ] ~doc:"ml-opt|ml-ori|sl-opt|sl-ori.")
let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Replicated runs.")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base RNG seed.")
let horizon_days =
  Arg.(value & opt float 2000. & info [ "horizon-days" ] ~doc:"Safety horizon per run.")

let workers =
  Arg.(value
       & opt int (Ckpt_parallel.Pool.recommended_workers ())
       & info [ "workers" ]
           ~doc:"Worker domains for the replications (default: the number of cores; \
                 results are identical for any value).")

let plan_file =
  Arg.(value & opt (some string) None
       & info [ "plan" ] ~docv:"FILE"
           ~doc:"Load a problem+plan bundle written by ckpt-opt --output (overrides the \
                 model flags).")

let cmd =
  let doc = "Simulate a multilevel-checkpointed execution (SC'14 evaluation)" in
  let term =
    Term.(const run $ te_days $ rates $ kappa $ n_star $ alloc $ solution $ runs $ seed
          $ horizon_days $ workers $ plan_file)
  in
  Cmd.v (Cmd.info "ckpt-simulate" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
