(* CLI runner for the paper-reproduction experiments.

   Usage:
     experiments_main            # run everything
     experiments_main fig3 table4
     experiments_main --list *)

let list_experiments () =
  List.iter
    (fun e -> Printf.printf "%-14s %s\n" e.Ckpt_experiments.Registry.id e.Ckpt_experiments.Registry.title)
    Ckpt_experiments.Registry.all

let run_ids ~workers ids =
  let resolve id =
    match Ckpt_experiments.Registry.find id with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown experiment %S (try --list)" id)
  in
  let rec resolve_all = function
    | [] -> Ok []
    | id :: rest ->
        Result.bind (resolve id) (fun e ->
            Result.map (fun es -> e :: es) (resolve_all rest))
  in
  Result.map
    (fun experiments ->
      (* The experiments are independent, so rendering them across
         domains is output-identical to the sequential run; the results
         print in request order either way. *)
      let rendered =
        if workers <= 1 || List.length experiments <= 1 then
          Ckpt_experiments.Registry.render_all experiments
        else
          Ckpt_parallel.Pool.with_pool ~workers (fun pool ->
              Ckpt_experiments.Registry.render_all ~pool experiments)
      in
      List.iter (fun (_, output) -> print_string output) rendered)
    (resolve_all ids)

open Cmdliner

let ids_arg =
  let doc = "Experiments to run (default: all).  See --list for ids." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let csv_arg =
  let doc =
    "Write CSV artifacts for the figures into $(docv) (created if missing) \
     instead of running the textual experiments."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let csv_runs_arg =
  let doc = "Simulation runs per cell for the CSV Fig. 5/6 artifacts (0 skips them)." in
  Arg.(value & opt int 20 & info [ "csv-runs" ] ~doc)

let report_arg =
  let doc = "Write a generated Markdown reproduction report to $(docv) and exit." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let workers_arg =
  let doc =
    "Worker domains for regenerating independent experiments concurrently \
     (default: the number of cores; 1 disables parallelism)."
  in
  Arg.(value
       & opt int (Ckpt_parallel.Pool.recommended_workers ())
       & info [ "workers" ] ~docv:"N" ~doc)

let write_csv dir runs =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = Ckpt_experiments.Csv_export.write_analytic ~dir in
  let written =
    if runs > 0 then written @ Ckpt_experiments.Csv_export.write_simulated ~runs ~dir ()
    else written
  in
  List.iter (Printf.printf "wrote %s\n") written;
  Ok ()

let main list csv csv_runs report workers ids =
  if list then begin
    list_experiments ();
    Ok ()
  end
  else begin
    match report with
    | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        Ckpt_experiments.Report.run ppf;
        Format.pp_print_flush ppf ();
        close_out oc;
        Printf.printf "report written to %s\n" path;
        Ok ()
    | None -> (
        match csv with
        | Some dir -> write_csv dir csv_runs
        | None ->
            let ids = if ids = [] then Ckpt_experiments.Registry.ids () else ids in
            run_ids ~workers ids)
  end

let cmd =
  let doc = "Regenerate the tables and figures of the multilevel checkpoint paper" in
  let term =
    Term.(const main $ list_arg $ csv_arg $ csv_runs_arg $ report_arg $ workers_arg
          $ ids_arg)
  in
  Cmd.v (Cmd.info "ckpt-experiments" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
