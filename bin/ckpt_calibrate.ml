(* Calibrate the checkpoint model from an SCR/FTI-style event log and
   compare ready-to-serve plans.

   Reads a line-oriented toolkit log (see lib/calibrate/README.md for
   the grammar), phase-accounts it into per-level checkpoint/restart
   cost samples and failure exposure, fits the paper's parameters
   through the adaptive estimators, and prints the provenance plus a
   Young vs. Daly vs. ML-optimal plan comparison.

   Examples:
     ckpt_calibrate --logfile examples/scr_session.log --stats --compare
     ckpt_calibrate --logfile scr.log --emit-problem fitted.json
     ckpt_calibrate --self-check *)

open Cmdliner
open Ckpt_model
module C = Ckpt_calibrate
module Spec = Ckpt_failures.Failure_spec
module Json = Ckpt_json.Json
module Service = Ckpt_service.Service
module Server = Ckpt_net.Server

let ( let* ) = Result.bind

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let build_levels costs pfs_alpha =
  match costs with
  | [] -> Level.fti_fusion
  | costs ->
      let n = List.length costs in
      Array.of_list
        (List.mapi
           (fun i c ->
             if i = n - 1 && pfs_alpha > 0. then
               Level.v ~name:"pfs" (Overhead.linear ~eps:c ~alpha:pfs_alpha)
             else Level.v ~name:(Printf.sprintf "level%d" (i + 1)) (Overhead.constant c))
           costs)

let build_template te_days rates_s baseline kappa n_star alloc costs pfs_alpha =
  let* spec =
    try Ok (Spec.of_string ~baseline_scale:baseline rates_s)
    with Invalid_argument m -> Error m
  in
  let levels = build_levels costs pfs_alpha in
  let* () =
    if Spec.levels spec = Array.length levels then Ok ()
    else
      Error
        (Printf.sprintf "%d failure rates for %d levels" (Spec.levels spec)
           (Array.length levels))
  in
  Ok
    { Optimizer.te = te_days *. 86400.;
      speedup = Speedup.quadratic ~kappa ~n_star;
      levels;
      alloc;
      spec }

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let run_calibrate ~logfile ~template ~prior_strength ~min_samples ~coverage
    ~stats ~emit_problem ~compare =
  let parsed = C.Scr_log.parse (read_lines logfile) in
  let* fitted =
    C.Fit.calibrate ~prior_strength ~min_samples ~coverage ~template parsed
  in
  let r = fitted.C.Fit.report in
  Format.printf "%s: %d lines (%d parsed, %d skipped, %d blank)@." logfile
    r.C.Fit.lines r.C.Fit.parsed r.C.Fit.skipped r.C.Fit.blank;
  if stats then begin
    Format.printf "@[<v>%a@]@." C.Fit.pp_report r;
    let shown = ref 0 in
    List.iter
      (fun skip ->
        if !shown < 10 then begin
          incr shown;
          Format.printf "skipped %a@." C.Scr_log.pp_skip skip
        end)
      parsed.C.Scr_log.skips;
    if List.length parsed.C.Scr_log.skips > 10 then
      Format.printf "... and %d more skips@."
        (List.length parsed.C.Scr_log.skips - 10)
  end
  else
    Format.printf
      "exposure: %.4g core-seconds, %d failures across %d levels (prior \
       strength %g)@."
      r.C.Fit.exposure_core_seconds r.C.Fit.total_failures
      (Array.length r.C.Fit.levels) prior_strength;
  Option.iter
    (fun path ->
      write_json path (Codec.problem_to_json fitted.C.Fit.problem);
      Format.printf "calibrated problem written to %s@." path)
    emit_problem;
  if compare then begin
    let c = C.Compare.run fitted.C.Fit.problem in
    Format.printf "@.%a@." C.Compare.pp c
  end;
  Ok ()

(* ---------------- self-check ---------------- *)

let expect what cond = if cond then Ok () else Error ("self-check: " ^ what)

let parser_checks () =
  let garbage =
    [ "\x00\x01\xffbinary";
      "t=nan event=COMPUTE secs=1";
      "t=1 event=NO_SUCH_EVENT";
      "t=2 event=COMPUTE secs=-3";
      "t=3 event=CHECKPOINT";
      "# a comment";
      "";
      "t=4 event=checkpoint secs=12 level=2" ]
  in
  let g = C.Scr_log.parse garbage in
  let* () =
    expect "garbage skip accounting"
      (List.length g.C.Scr_log.skips = 5
      && g.C.Scr_log.blank = 2
      && List.length g.C.Scr_log.records = 1
      && g.C.Scr_log.lines = 8)
  in
  expect "skips carry line numbers"
    (List.for_all (fun s -> s.C.Scr_log.line >= 1) g.C.Scr_log.skips)

let roundtrip_checks problem lines =
  let parsed = C.Scr_log.parse lines in
  let* () = expect "synthetic log parses cleanly" (parsed.C.Scr_log.skips = []) in
  let* fitted = C.Fit.calibrate ~template:problem parsed in
  let nb = problem.Optimizer.spec.Spec.baseline_scale in
  let truth = Spec.total_rate_per_second problem.Optimizer.spec ~scale:nb in
  let fitted_total =
    Spec.total_rate_per_second fitted.C.Fit.problem.Optimizer.spec ~scale:nb
  in
  let* () =
    expect
      (Printf.sprintf "fitted total rate %.3e implausible vs true %.3e"
         fitted_total truth)
      (fitted_total > 0.2 *. truth && fitted_total < 5. *. truth)
  in
  (* The acceptance property: the ML plan emitted from the calibrated
     problem, priced under the TRUE parameters, is within 5% of the
     plan solved directly on the truth. *)
  let n = 1024. in
  let true_plan = Optimizer.ml_ori_scale ~n problem in
  let cal_plan = Optimizer.ml_ori_scale ~n fitted.C.Fit.problem in
  let priced =
    Ckpt_adaptive.Predict.wall_clock problem ~xs:cal_plan.Optimizer.xs ~n
  in
  let gap =
    Float.abs (priced -. true_plan.Optimizer.wall_clock)
    /. true_plan.Optimizer.wall_clock
  in
  let* () =
    expect
      (Printf.sprintf "calibrated plan off by %.1f%% under true parameters"
         (100. *. gap))
      (Float.is_finite gap && gap < 0.05)
  in
  Ok fitted

(* The calibrate op must answer over a live loopback socket. *)
let socket_checks problem lines =
  let service = Service.create ~workers:0 () in
  let server =
    Server.start ~config:{ Server.default_config with Server.port = 0 } service
  in
  let finally () =
    Server.stop server;
    Server.join server;
    Service.shutdown service
  in
  Fun.protect ~finally @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let* responses =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        let request =
          Json.Obj
            [ ("op", Json.String "calibrate");
              ("id", Json.Number 1.);
              ("problem", Codec.problem_to_json problem);
              ("log", Json.List (List.map (fun s -> Json.String s) lines));
              ("compare", Json.Bool true) ]
        in
        let bad = {|{"op":"calibrate","id":2,"problem":|} ^ Json.to_string (Codec.problem_to_json problem) ^ {|,"log":"not-a-list"}|} in
        let estimate = {|{"op":"estimate","id":3}|} in
        try
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc)
            [ Json.to_string request; bad; estimate ];
          Ok (List.init 3 (fun _ -> input_line ic))
        with End_of_file | Sys_error _ -> Error "self-check: socket closed early")
  in
  let* r1, r2, r3 =
    match List.map Json.parse_result responses with
    | [ Ok a; Ok b; Ok c ] -> Ok (a, b, c)
    | _ -> Error "self-check: responses are not JSON"
  in
  let* () =
    expect "calibrate over the socket"
      (Json.member "ok" r1 = Some (Json.Bool true)
      && Json.string_field "op" r1 = Some "calibrate"
      && Json.member "plan" r1 <> None
      && Json.member "fitted_problem" r1 <> None
      && Json.member "provenance" r1 <> None
      && Json.member "comparison" r1 <> None)
  in
  let* () =
    expect "structured error on bad calibrate input"
      (Json.member "ok" r2 = Some (Json.Bool false)
      &&
      match Option.bind (Json.member "error" r2) (Json.string_field "code") with
      | Some "invalid-request" -> true
      | _ -> false)
  in
  let* () =
    expect "estimate sees the calibrated session"
      (Json.member "ok" r3 = Some (Json.Bool true))
  in
  expect "op_counts routed the ops"
    (List.assoc_opt "calibrate" (Server.op_counts server) = Some 2
    && List.assoc_opt "estimate" (Server.op_counts server) = Some 1)

let self_check () =
  let problem = C.Synth.demo_problem () in
  let config = C.Synth.demo_config problem in
  let lines = C.Synth.session_lines ~runs:4 ~seed:42 config in
  let* () = parser_checks () in
  let* _fitted = roundtrip_checks problem lines in
  let* () = socket_checks problem lines in
  Ok ()

let run self logfile te_days rates baseline kappa n_star alloc costs pfs_alpha
    coverage prior_strength min_samples stats emit_problem compare =
  if self then
    match self_check () with
    | Ok () ->
        print_endline "self-check ok";
        Ok ()
    | Error m -> Error m
  else
    match logfile with
    | None -> Error "--logfile FILE is required (or use --self-check)"
    | Some logfile -> (
        let* template =
          build_template te_days rates baseline kappa n_star alloc costs pfs_alpha
        in
        try
          run_calibrate ~logfile ~template ~prior_strength ~min_samples
            ~coverage ~stats ~emit_problem ~compare
        with Invalid_argument m | Failure m -> Error m)

let logfile =
  Arg.(value & opt (some string) None
       & info [ "logfile"; "l" ] ~docv:"FILE"
           ~doc:"SCR/FTI-style event log, one key=value event per line.")

(* The template defaults mirror the committed examples/scr_session.log
   fixture (Synth.demo_problem), so the README one-liner works as-is. *)
let te_days =
  Arg.(value & opt float (1024. *. 3600. /. 86400.)
       & info [ "te-days" ] ~doc:"Workload in core-days.")

let rates =
  Arg.(value & opt string "24-18-12-6"
       & info [ "rates" ] ~doc:"Prior per-level failures/day at the baseline scale.")

let baseline =
  Arg.(value & opt float 1024.
       & info [ "baseline" ] ~doc:"Baseline scale N_b the prior rates are quoted at.")

let kappa = Arg.(value & opt float 0.46 & info [ "kappa" ] ~doc:"Speedup slope at the origin.")
let n_star = Arg.(value & opt float 1e6 & info [ "n-star" ] ~doc:"Ideal (peak) scale in cores.")
let alloc = Arg.(value & opt float 10. & info [ "alloc" ] ~doc:"Allocation period A in seconds.")

let costs =
  Arg.(value & opt (list float) []
       & info [ "costs" ] ~doc:"Constant per-level checkpoint costs (overrides FTI defaults).")

let pfs_alpha =
  Arg.(value & opt float 0.
       & info [ "pfs-alpha" ] ~doc:"Linear scale coefficient of the last level's cost.")

let coverage =
  Arg.(value & opt float 0.95 & info [ "coverage" ] ~doc:"Confidence-interval coverage in (0,1).")

let prior_strength =
  Arg.(value & opt float 0.
       & info [ "prior-strength" ]
           ~doc:"Core-seconds of pseudo-exposure shrinking rates toward the prior.")

let min_samples =
  Arg.(value & opt int 3
       & info [ "cost-min-samples" ]
           ~doc:"Observations required before a level's cost law is re-calibrated.")

let stats =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print the full phase-accounting and fit provenance report.")

let emit_problem =
  Arg.(value & opt (some string) None
       & info [ "emit-problem" ] ~docv:"FILE"
           ~doc:"Write the calibrated problem as JSON.")

let compare =
  Arg.(value & flag
       & info [ "compare" ] ~doc:"Print the Young vs. Daly vs. ML-optimal plan comparison.")

let self_check_flag =
  Arg.(value & flag & info [ "self-check" ] ~doc:"Run the built-in end-to-end check and exit.")

let cmd =
  let doc = "Calibrate the multilevel checkpoint model from toolkit logs" in
  let term =
    Term.(const run $ self_check_flag $ logfile $ te_days $ rates $ baseline
          $ kappa $ n_star $ alloc $ costs $ pfs_alpha $ coverage
          $ prior_strength $ min_samples $ stats $ emit_problem $ compare)
  in
  Cmd.v (Cmd.info "ckpt-calibrate" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
