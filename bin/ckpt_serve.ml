(* Batch planning service over the Algorithm-1 optimizer.

   Two front doors over the same service and protocol:

   - stdin mode (default): read JSON-lines requests (plan / sweep /
     simulate-validate / observe / estimate / replan / stats), answer one
     JSON response per line in the same order, print a metrics report on
     shutdown;
   - server mode (--listen HOST:PORT): a TCP accept loop with bounded
     admission, per-request deadlines, graceful drain on SIGTERM /
     SIGINT / an in-band {"op":"shutdown"} request, and (with
     --snapshot-dir) periodic atomic snapshots plus warm restart; with
     --wal-dir, stateful ops are write-ahead logged before they are
     acked and restart replays the WAL suffix past the newest snapshot.
     --durability auto measures fsync/snapshot costs and solves the
     repo's own two-level model for the fsync batch and snapshot
     interval.

   Examples:
     ckpt_serve --input examples/fig5_sweep.jsonl --workers 4
     echo '{"op":"stats"}' | ckpt_serve
     ckpt_serve --listen 127.0.0.1:7401 --snapshot-dir /var/tmp/ckpt \
                --snapshot-interval 256 --max-inflight 64
     ckpt_serve --listen :7401 --snapshot-dir /var/tmp/ckpt \
                --wal-dir /var/tmp/ckpt-wal --durability auto --crash-rate 24
     ckpt_serve --self-check *)

open Cmdliner
module Service = Ckpt_service.Service
module Server = Ckpt_net.Server
module Json = Ckpt_json.Json

let read_lines ic =
  let rec loop acc =
    match In_channel.input_line ic with
    | Some line -> loop (line :: acc)
    | None -> List.rev acc
  in
  loop []

let non_blank line = String.trim line <> ""
let ( let* ) = Result.bind

(* --self-check: round-trip one plan request end-to-end through the
   protocol, planner and pool, and compare against a direct solve — then
   do it again over a loopback TCP connection through the ckpt_net
   server, including a garbage frame and an in-band shutdown drain.
   Exercised by `dune runtest` so both binary paths stay covered. *)

let self_check_problem () =
  let open Ckpt_model in
  { Optimizer.te = 1e4 *. 86_400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5 "16-12-8-4" }

let self_check_request problem =
  Json.to_string
    (Json.Obj
       [ ("id", Json.String "self-check"); ("op", Json.String "plan");
         ("problem", Ckpt_model.Codec.problem_to_json problem) ])

let check_plan_response ~expected response_text =
  let open Ckpt_model in
  let reparsed = Json.parse response_text in
  if not (Ckpt_service.Protocol.response_ok reparsed) then
    Error (Printf.sprintf "self-check response not ok: %s" response_text)
  else
    match Option.map Codec.plan_of_json (Json.member "plan" reparsed) with
    | Some (Ok plan) when plan = expected -> Ok ()
    | Some (Ok plan) ->
        Error
          (Printf.sprintf "self-check plan mismatch: served n=%.6f wall=%.6f, direct n=%.6f wall=%.6f"
             plan.Optimizer.n plan.Optimizer.wall_clock expected.Optimizer.n
             expected.Optimizer.wall_clock)
    | Some (Error m) -> Error ("self-check plan does not decode: " ^ m)
    | None -> Error "self-check response has no plan"

let self_check_inline () =
  let problem = self_check_problem () in
  let expected = Ckpt_model.Optimizer.ml_opt_scale problem in
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  check_plan_response ~expected
    (Json.to_string (Service.handle_line service (self_check_request problem)))

let self_check_loopback () =
  let problem = self_check_problem () in
  let expected = Ckpt_model.Optimizer.ml_opt_scale problem in
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let server = Server.start service in
  Fun.protect ~finally:(fun () -> Server.stop server; Server.join server) @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  let reader = Ckpt_net.Frame.reader fd in
  let ask line =
    Ckpt_net.Frame.write_line fd line;
    match Ckpt_net.Frame.read_line reader with
    | Ckpt_net.Frame.Line response -> Ok response
    | _ -> Error "loopback connection closed before a response arrived"
  in
  let* response = ask (self_check_request problem) in
  let* () = check_plan_response ~expected response in
  let* garbage = ask "\x01 this is not a request" in
  let* () =
    if Ckpt_service.Protocol.response_ok (Json.parse garbage) then
      Error "garbage frame was answered ok"
    else Ok ()
  in
  let* drained = ask {|{"op":"shutdown"}|} in
  match Json.member "draining" (Json.parse drained) with
  | Some (Json.Bool true) -> Ok ()
  | _ -> Error ("shutdown request not acknowledged: " ^ drained)

let self_check () =
  let* () = self_check_inline () in
  self_check_loopback ()

(* --listen HOST:PORT.  A bare ":PORT" binds loopback; port 0 asks the
   kernel for an ephemeral port (printed on startup). *)
let parse_listen s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "--listen expects HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port >= 0 && port <= 65_535 -> Ok (host, port)
      | _ -> Error (Printf.sprintf "--listen port must be 0..65535, got %S" s))

(* --durability auto: measure this machine's fsync and snapshot costs,
   feed them (plus the configured crash rate) into the repo's own
   two-level optimizer, and let the paper's model pick the WAL
   group-commit batch and the snapshot interval. *)
let solve_durability_auto ~wal_dir ~snapshot_dir ~crash_rate ~op_rate service =
  match (wal_dir, snapshot_dir) with
  | None, _ -> Error "--durability auto requires --wal-dir"
  | _, None -> Error "--durability auto requires --snapshot-dir"
  | Some wdir, Some sdir ->
      let* fsync_cost_s = Ckpt_net.Durable.measure_fsync_cost ~dir:wdir in
      let* snapshot_cost_s =
        Ckpt_net.Durable.measure_snapshot_cost ~dir:sdir service
      in
      (match
         Ckpt_net.Durable.auto_tune ~op_rate ~fsync_cost_s ~snapshot_cost_s
           ~crash_rate_per_day:crash_rate ()
       with
      | choice -> Ok choice
      | exception Invalid_argument m -> Error m)

let run_server ~host ~port ~workers ~cache_capacity ~precision ~snapshot_dir
    ~snapshot_interval ~max_inflight ~wal_dir ~fsync_batch ~fsync_interval_ms
    ~durability ~crash_rate ~op_rate =
  let service = Service.create ~workers ~cache_capacity ~precision () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let* fsync_batch, snapshot_interval, durability_auto =
    match durability with
    | `Fixed -> Ok (fsync_batch, snapshot_interval, None)
    | `Auto ->
        let* choice =
          solve_durability_auto ~wal_dir ~snapshot_dir ~crash_rate ~op_rate
            service
        in
        Printf.printf
          "ckpt-serve durability auto: fsync-batch=%d snapshot-interval=%d \
           (fsync=%.6fs snapshot=%.6fs crash-rate=%g/day predicted-overhead=%.4f)\n%!"
          choice.Ckpt_net.Durable.fsync_batch
          choice.Ckpt_net.Durable.snapshot_interval
          choice.Ckpt_net.Durable.fsync_cost_s
          choice.Ckpt_net.Durable.snapshot_cost_s
          choice.Ckpt_net.Durable.crash_rate_per_day
          choice.Ckpt_net.Durable.predicted_overhead;
        Ok
          ( choice.Ckpt_net.Durable.fsync_batch,
            choice.Ckpt_net.Durable.snapshot_interval,
            Some (Ckpt_net.Durable.auto_choice_json choice) )
  in
  let config =
    { Server.default_config with
      host; port; snapshot_dir; snapshot_interval; max_inflight;
      wal_dir; fsync_batch; fsync_interval_ms; durability_auto }
  in
  match Server.start ~config service with
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "cannot listen on %s:%d: %s: %s" host port fn
               (Unix.error_message err))
  | server ->
      (* Graceful drain on SIGTERM / SIGINT: stop accepting, let every
         in-flight request finish, cut a final snapshot, then [join]
         below falls through and the metrics report prints.
         [Server.stop] is a single atomic store — no mutex — so it is
         safe even though OCaml runs the handler at a poll point in an
         arbitrary thread that may already hold server locks. *)
      let drain _ = Server.stop server in
      (try
         Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
         Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
         Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ());
      Printf.printf "ckpt-serve listening on %s:%d (workers=%d max-inflight=%d%s%s)\n%!"
        host (Server.port server) workers max_inflight
        (match snapshot_dir with
        | None -> ""
        | Some dir ->
            Printf.sprintf " snapshot-dir=%s restored=%d" dir (Server.restored server))
        (match wal_dir with
        | None -> ""
        | Some dir ->
            Printf.sprintf " wal-dir=%s fsync-batch=%d replayed=%d" dir fsync_batch
              (Server.persistence server).Ckpt_net.Durable.replayed);
      Server.join server;
      Printf.printf
        "ckpt-serve drained: %d connections, %d requests answered, %d rejected\n%!"
        (Server.connections server) (Server.requests server)
        (Server.rejections server);
      Format.eprintf "%a@." Ckpt_service.Metrics.pp (Service.metrics service);
      Ok ()

let run input output workers cache_capacity precision append_stats self listen
    snapshot_dir snapshot_interval max_inflight wal_dir fsync_batch
    fsync_interval_ms durability crash_rate op_rate =
  if workers < 0 then Error (Printf.sprintf "--workers must be >= 0, got %d" workers)
  else if cache_capacity < 1 then
    Error (Printf.sprintf "--cache-capacity must be >= 1, got %d" cache_capacity)
  else if precision < 1 then
    Error (Printf.sprintf "--precision must be >= 1, got %d" precision)
  else if snapshot_interval < 0 then
    Error (Printf.sprintf "--snapshot-interval must be >= 0, got %d" snapshot_interval)
  else if max_inflight < 1 then
    Error (Printf.sprintf "--max-inflight must be >= 1, got %d" max_inflight)
  else if fsync_batch < 1 then
    Error (Printf.sprintf "--fsync-batch must be >= 1, got %d" fsync_batch)
  else if not (Float.is_finite fsync_interval_ms) || fsync_interval_ms < 0. then
    Error "--fsync-interval-ms must be >= 0"
  else if not (Float.is_finite crash_rate) || crash_rate <= 0. then
    Error "--crash-rate must be > 0 (per day)"
  else if not (Float.is_finite op_rate) || op_rate <= 0. then
    Error "--op-rate must be > 0 (requests/second)"
  else if self then (
    match self_check () with
    | Ok () ->
        print_endline "self-check ok";
        Ok ()
    | Error m -> Error m)
  else
    match listen with
    | Some spec ->
        let* host, port = parse_listen spec in
        run_server ~host ~port ~workers ~cache_capacity ~precision ~snapshot_dir
          ~snapshot_interval ~max_inflight ~wal_dir ~fsync_batch
          ~fsync_interval_ms ~durability ~crash_rate ~op_rate
    | None -> begin
    let lines =
      match input with
      | None -> read_lines stdin
      | Some path -> In_channel.with_open_text path read_lines
    in
    let lines = List.filter non_blank lines in
    let lines = if append_stats then lines @ [ {|{"op":"stats"}|} ] else lines in
    let service = Service.create ~workers ~cache_capacity ~precision () in
    Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
    let responses = Service.handle_batch_lines service lines in
    let emit oc = List.iter (fun r -> output_string oc r; output_char oc '\n') responses in
    (match output with
    | None -> emit stdout
    | Some path -> Out_channel.with_open_text path emit);
    Format.eprintf "%a@." Ckpt_service.Metrics.pp (Service.metrics service);
    Ok ()
  end

let listen =
  Arg.(value & opt (some string) None
       & info [ "listen" ] ~docv:"HOST:PORT"
           ~doc:"Serve over TCP instead of stdin; port 0 picks an ephemeral port.")

let snapshot_dir =
  Arg.(value & opt (some string) None
       & info [ "snapshot-dir" ] ~docv:"DIR"
           ~doc:"Durability: cut atomic snapshots here and warm-restart from the \
                 newest valid one (server mode).")

let snapshot_interval =
  Arg.(value & opt int Server.default_config.Server.snapshot_interval
       & info [ "snapshot-interval" ] ~docv:"N"
           ~doc:"Requests between snapshots; 0 snapshots only on drain.")

let max_inflight =
  Arg.(value & opt int Server.default_config.Server.max_inflight
       & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission bound: further requests are rejected as overloaded.")

let wal_dir =
  Arg.(value & opt (some string) None
       & info [ "wal-dir" ] ~docv:"DIR"
           ~doc:"Durability: write-ahead log stateful ops here before acking them; \
                 restart replays the WAL suffix past the newest snapshot (server mode).")

let fsync_batch =
  Arg.(value & opt int Server.default_config.Server.fsync_batch
       & info [ "fsync-batch" ] ~docv:"N"
           ~doc:"WAL group commit: fsync every N records (1 = every acked op is \
                 durable; larger batches trade an N-1 record loss window for \
                 throughput).")

let fsync_interval_ms =
  Arg.(value & opt float Server.default_config.Server.fsync_interval_ms
       & info [ "fsync-interval-ms" ] ~docv:"MS"
           ~doc:"WAL group commit time bound: pending records are fsynced at \
                 latest this many ms after they were written.")

let durability =
  Arg.(value & opt (enum [ ("fixed", `Fixed); ("auto", `Auto) ]) `Fixed
       & info [ "durability" ] ~docv:"MODE"
           ~doc:"$(b,fixed) uses --fsync-batch/--snapshot-interval as given; \
                 $(b,auto) measures fsync and snapshot costs and solves the \
                 repo's own two-level checkpoint model for both intervals \
                 (requires --wal-dir and --snapshot-dir).")

let crash_rate =
  Arg.(value & opt float 24.
       & info [ "crash-rate" ] ~docv:"R"
           ~doc:"Assumed process crash rate per day for --durability auto.")

let op_rate =
  Arg.(value & opt float 1000.
       & info [ "op-rate" ] ~docv:"R"
           ~doc:"Assumed request rate per second for --durability auto (converts \
                 the model's time intervals into request counts).")

let input =
  Arg.(value & opt (some file) None
       & info [ "input"; "i" ] ~docv:"FILE" ~doc:"JSON-lines request file (default stdin).")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Response file (default stdout).")

let workers =
  (* One worker domain per available core: on a single-core machine extra
     domains only add stop-the-world GC synchronization. *)
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "workers"; "j" ] ~doc:"Worker domains; 0 solves in the calling domain.")

let cache_capacity =
  Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~doc:"LRU plan cache entries.")

let precision =
  Arg.(value & opt int Ckpt_service.Fingerprint.default_precision
       & info [ "precision" ] ~doc:"Significant digits in cache fingerprints.")

let append_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Append a stats response after the batch.")

let self =
  Arg.(value & flag
       & info [ "self-check" ]
           ~doc:"Round-trip one request end-to-end through the service and exit.")

let cmd =
  let doc = "Concurrent batch planning service over the SC'14 multilevel checkpoint optimizer" in
  let term =
    Term.(const run $ input $ output $ workers $ cache_capacity $ precision $ append_stats
          $ self $ listen $ snapshot_dir $ snapshot_interval $ max_inflight
          $ wal_dir $ fsync_batch $ fsync_interval_ms $ durability $ crash_rate
          $ op_rate)
  in
  Cmd.v (Cmd.info "ckpt-serve" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
