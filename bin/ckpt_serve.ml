(* Batch planning service over the Algorithm-1 optimizer.

   Reads JSON-lines requests (plan / sweep / simulate-validate / stats),
   answers one JSON response per line in the same order, and prints a
   metrics report on shutdown.

   Examples:
     ckpt_serve --input examples/fig5_sweep.jsonl --workers 4
     echo '{"op":"stats"}' | ckpt_serve
     ckpt_serve --self-check *)

open Cmdliner
module Service = Ckpt_service.Service
module Json = Ckpt_json.Json

let read_lines ic =
  let rec loop acc =
    match In_channel.input_line ic with
    | Some line -> loop (line :: acc)
    | None -> List.rev acc
  in
  loop []

let non_blank line = String.trim line <> ""

(* --self-check: round-trip one plan request end-to-end through the
   protocol, planner and pool, and compare against a direct solve.
   Exercised by `dune runtest` so the binary path stays covered. *)
let self_check () =
  let open Ckpt_model in
  let problem =
    { Optimizer.te = 1e4 *. 86_400.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
      levels = Level.fti_fusion;
      alloc = 60.;
      spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5 "16-12-8-4" }
  in
  let expected = Optimizer.ml_opt_scale problem in
  let request =
    Json.to_string
      (Json.Obj
         [ ("id", Json.String "self-check"); ("op", Json.String "plan");
           ("problem", Codec.problem_to_json problem) ])
  in
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let response = Service.handle_line service request in
  let reparsed = Json.parse (Json.to_string response) in
  if not (Ckpt_service.Protocol.response_ok reparsed) then
    Error (Printf.sprintf "self-check response not ok: %s" (Json.to_string response))
  else
    match Option.map Codec.plan_of_json (Json.member "plan" reparsed) with
    | Some (Ok plan) when plan = expected -> Ok ()
    | Some (Ok plan) ->
        Error
          (Printf.sprintf "self-check plan mismatch: served n=%.6f wall=%.6f, direct n=%.6f wall=%.6f"
             plan.Optimizer.n plan.Optimizer.wall_clock expected.Optimizer.n
             expected.Optimizer.wall_clock)
    | Some (Error m) -> Error ("self-check plan does not decode: " ^ m)
    | None -> Error "self-check response has no plan"

let run input output workers cache_capacity precision append_stats self =
  if workers < 0 then Error (Printf.sprintf "--workers must be >= 0, got %d" workers)
  else if cache_capacity < 1 then
    Error (Printf.sprintf "--cache-capacity must be >= 1, got %d" cache_capacity)
  else if precision < 1 then
    Error (Printf.sprintf "--precision must be >= 1, got %d" precision)
  else if self then (
    match self_check () with
    | Ok () ->
        print_endline "self-check ok";
        Ok ()
    | Error m -> Error m)
  else begin
    let lines =
      match input with
      | None -> read_lines stdin
      | Some path -> In_channel.with_open_text path read_lines
    in
    let lines = List.filter non_blank lines in
    let lines = if append_stats then lines @ [ {|{"op":"stats"}|} ] else lines in
    let service = Service.create ~workers ~cache_capacity ~precision () in
    Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
    let responses = Service.handle_batch service lines in
    let emit oc = List.iter (fun r -> output_string oc (Json.to_string r); output_char oc '\n') responses in
    (match output with
    | None -> emit stdout
    | Some path -> Out_channel.with_open_text path emit);
    Format.eprintf "%a@." Ckpt_service.Metrics.pp (Service.metrics service);
    Ok ()
  end

let input =
  Arg.(value & opt (some file) None
       & info [ "input"; "i" ] ~docv:"FILE" ~doc:"JSON-lines request file (default stdin).")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Response file (default stdout).")

let workers =
  (* One worker domain per available core: on a single-core machine extra
     domains only add stop-the-world GC synchronization. *)
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "workers"; "j" ] ~doc:"Worker domains; 0 solves in the calling domain.")

let cache_capacity =
  Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~doc:"LRU plan cache entries.")

let precision =
  Arg.(value & opt int Ckpt_service.Fingerprint.default_precision
       & info [ "precision" ] ~doc:"Significant digits in cache fingerprints.")

let append_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Append a stats response after the batch.")

let self =
  Arg.(value & flag
       & info [ "self-check" ]
           ~doc:"Round-trip one request end-to-end through the service and exit.")

let cmd =
  let doc = "Concurrent batch planning service over the SC'14 multilevel checkpoint optimizer" in
  let term =
    Term.(const run $ input $ output $ workers $ cache_capacity $ precision $ append_stats
          $ self)
  in
  Cmd.v (Cmd.info "ckpt-serve" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
