(* Batch planning service over the Algorithm-1 optimizer.

   Two front doors over the same service and protocol:

   - stdin mode (default): read JSON-lines requests (plan / sweep /
     simulate-validate / observe / estimate / replan / stats), answer one
     JSON response per line in the same order, print a metrics report on
     shutdown;
   - server mode (--listen HOST:PORT): a TCP accept loop with bounded
     admission, per-request deadlines, graceful drain on SIGTERM /
     SIGINT / an in-band {"op":"shutdown"} request, and (with
     --snapshot-dir) periodic atomic snapshots plus warm restart.

   Examples:
     ckpt_serve --input examples/fig5_sweep.jsonl --workers 4
     echo '{"op":"stats"}' | ckpt_serve
     ckpt_serve --listen 127.0.0.1:7401 --snapshot-dir /var/tmp/ckpt \
                --snapshot-interval 256 --max-inflight 64
     ckpt_serve --self-check *)

open Cmdliner
module Service = Ckpt_service.Service
module Server = Ckpt_net.Server
module Json = Ckpt_json.Json

let read_lines ic =
  let rec loop acc =
    match In_channel.input_line ic with
    | Some line -> loop (line :: acc)
    | None -> List.rev acc
  in
  loop []

let non_blank line = String.trim line <> ""
let ( let* ) = Result.bind

(* --self-check: round-trip one plan request end-to-end through the
   protocol, planner and pool, and compare against a direct solve — then
   do it again over a loopback TCP connection through the ckpt_net
   server, including a garbage frame and an in-band shutdown drain.
   Exercised by `dune runtest` so both binary paths stay covered. *)

let self_check_problem () =
  let open Ckpt_model in
  { Optimizer.te = 1e4 *. 86_400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5 "16-12-8-4" }

let self_check_request problem =
  Json.to_string
    (Json.Obj
       [ ("id", Json.String "self-check"); ("op", Json.String "plan");
         ("problem", Ckpt_model.Codec.problem_to_json problem) ])

let check_plan_response ~expected response_text =
  let open Ckpt_model in
  let reparsed = Json.parse response_text in
  if not (Ckpt_service.Protocol.response_ok reparsed) then
    Error (Printf.sprintf "self-check response not ok: %s" response_text)
  else
    match Option.map Codec.plan_of_json (Json.member "plan" reparsed) with
    | Some (Ok plan) when plan = expected -> Ok ()
    | Some (Ok plan) ->
        Error
          (Printf.sprintf "self-check plan mismatch: served n=%.6f wall=%.6f, direct n=%.6f wall=%.6f"
             plan.Optimizer.n plan.Optimizer.wall_clock expected.Optimizer.n
             expected.Optimizer.wall_clock)
    | Some (Error m) -> Error ("self-check plan does not decode: " ^ m)
    | None -> Error "self-check response has no plan"

let self_check_inline () =
  let problem = self_check_problem () in
  let expected = Ckpt_model.Optimizer.ml_opt_scale problem in
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  check_plan_response ~expected
    (Json.to_string (Service.handle_line service (self_check_request problem)))

let self_check_loopback () =
  let problem = self_check_problem () in
  let expected = Ckpt_model.Optimizer.ml_opt_scale problem in
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let server = Server.start service in
  Fun.protect ~finally:(fun () -> Server.stop server; Server.join server) @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  let reader = Ckpt_net.Frame.reader fd in
  let ask line =
    Ckpt_net.Frame.write_line fd line;
    match Ckpt_net.Frame.read_line reader with
    | Ckpt_net.Frame.Line response -> Ok response
    | _ -> Error "loopback connection closed before a response arrived"
  in
  let* response = ask (self_check_request problem) in
  let* () = check_plan_response ~expected response in
  let* garbage = ask "\x01 this is not a request" in
  let* () =
    if Ckpt_service.Protocol.response_ok (Json.parse garbage) then
      Error "garbage frame was answered ok"
    else Ok ()
  in
  let* drained = ask {|{"op":"shutdown"}|} in
  match Json.member "draining" (Json.parse drained) with
  | Some (Json.Bool true) -> Ok ()
  | _ -> Error ("shutdown request not acknowledged: " ^ drained)

let self_check () =
  let* () = self_check_inline () in
  self_check_loopback ()

(* --listen HOST:PORT.  A bare ":PORT" binds loopback; port 0 asks the
   kernel for an ephemeral port (printed on startup). *)
let parse_listen s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "--listen expects HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port >= 0 && port <= 65_535 -> Ok (host, port)
      | _ -> Error (Printf.sprintf "--listen port must be 0..65535, got %S" s))

let run_server ~host ~port ~workers ~cache_capacity ~precision ~snapshot_dir
    ~snapshot_interval ~max_inflight =
  let service = Service.create ~workers ~cache_capacity ~precision () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let config =
    { Server.default_config with
      host; port; snapshot_dir; snapshot_interval; max_inflight }
  in
  match Server.start ~config service with
  | exception Invalid_argument m -> Error m
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "cannot listen on %s:%d: %s: %s" host port fn
               (Unix.error_message err))
  | server ->
      (* Graceful drain on SIGTERM / SIGINT: stop accepting, let every
         in-flight request finish, cut a final snapshot, then [join]
         below falls through and the metrics report prints.
         [Server.stop] is a single atomic store — no mutex — so it is
         safe even though OCaml runs the handler at a poll point in an
         arbitrary thread that may already hold server locks. *)
      let drain _ = Server.stop server in
      (try
         Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
         Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
         Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ());
      Printf.printf "ckpt-serve listening on %s:%d (workers=%d max-inflight=%d%s)\n%!"
        host (Server.port server) workers max_inflight
        (match snapshot_dir with
        | None -> ""
        | Some dir ->
            Printf.sprintf " snapshot-dir=%s restored=%d" dir (Server.restored server));
      Server.join server;
      Printf.printf
        "ckpt-serve drained: %d connections, %d requests answered, %d rejected\n%!"
        (Server.connections server) (Server.requests server)
        (Server.rejections server);
      Format.eprintf "%a@." Ckpt_service.Metrics.pp (Service.metrics service);
      Ok ()

let run input output workers cache_capacity precision append_stats self listen
    snapshot_dir snapshot_interval max_inflight =
  if workers < 0 then Error (Printf.sprintf "--workers must be >= 0, got %d" workers)
  else if cache_capacity < 1 then
    Error (Printf.sprintf "--cache-capacity must be >= 1, got %d" cache_capacity)
  else if precision < 1 then
    Error (Printf.sprintf "--precision must be >= 1, got %d" precision)
  else if snapshot_interval < 0 then
    Error (Printf.sprintf "--snapshot-interval must be >= 0, got %d" snapshot_interval)
  else if max_inflight < 1 then
    Error (Printf.sprintf "--max-inflight must be >= 1, got %d" max_inflight)
  else if self then (
    match self_check () with
    | Ok () ->
        print_endline "self-check ok";
        Ok ()
    | Error m -> Error m)
  else
    match listen with
    | Some spec ->
        let* host, port = parse_listen spec in
        run_server ~host ~port ~workers ~cache_capacity ~precision ~snapshot_dir
          ~snapshot_interval ~max_inflight
    | None -> begin
    let lines =
      match input with
      | None -> read_lines stdin
      | Some path -> In_channel.with_open_text path read_lines
    in
    let lines = List.filter non_blank lines in
    let lines = if append_stats then lines @ [ {|{"op":"stats"}|} ] else lines in
    let service = Service.create ~workers ~cache_capacity ~precision () in
    Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
    let responses = Service.handle_batch_lines service lines in
    let emit oc = List.iter (fun r -> output_string oc r; output_char oc '\n') responses in
    (match output with
    | None -> emit stdout
    | Some path -> Out_channel.with_open_text path emit);
    Format.eprintf "%a@." Ckpt_service.Metrics.pp (Service.metrics service);
    Ok ()
  end

let listen =
  Arg.(value & opt (some string) None
       & info [ "listen" ] ~docv:"HOST:PORT"
           ~doc:"Serve over TCP instead of stdin; port 0 picks an ephemeral port.")

let snapshot_dir =
  Arg.(value & opt (some string) None
       & info [ "snapshot-dir" ] ~docv:"DIR"
           ~doc:"Durability: cut atomic snapshots here and warm-restart from the \
                 newest valid one (server mode).")

let snapshot_interval =
  Arg.(value & opt int Server.default_config.Server.snapshot_interval
       & info [ "snapshot-interval" ] ~docv:"N"
           ~doc:"Requests between snapshots; 0 snapshots only on drain.")

let max_inflight =
  Arg.(value & opt int Server.default_config.Server.max_inflight
       & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission bound: further requests are rejected as overloaded.")

let input =
  Arg.(value & opt (some file) None
       & info [ "input"; "i" ] ~docv:"FILE" ~doc:"JSON-lines request file (default stdin).")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Response file (default stdout).")

let workers =
  (* One worker domain per available core: on a single-core machine extra
     domains only add stop-the-world GC synchronization. *)
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "workers"; "j" ] ~doc:"Worker domains; 0 solves in the calling domain.")

let cache_capacity =
  Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~doc:"LRU plan cache entries.")

let precision =
  Arg.(value & opt int Ckpt_service.Fingerprint.default_precision
       & info [ "precision" ] ~doc:"Significant digits in cache fingerprints.")

let append_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Append a stats response after the batch.")

let self =
  Arg.(value & flag
       & info [ "self-check" ]
           ~doc:"Round-trip one request end-to-end through the service and exit.")

let cmd =
  let doc = "Concurrent batch planning service over the SC'14 multilevel checkpoint optimizer" in
  let term =
    Term.(const run $ input $ output $ workers $ cache_capacity $ precision $ append_stats
          $ self $ listen $ snapshot_dir $ snapshot_interval $ max_inflight)
  in
  Cmd.v (Cmd.info "ckpt-serve" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
