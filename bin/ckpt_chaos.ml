(* Chaos driver: replay a seeded fault schedule against a live service.

   Synthesizes (or reads) a JSON-lines request stream, runs it through a
   Service carrying a Chaos policy, prints one response per line, and
   reports what was injected and how the service degraded.  Because the
   fault schedule is a pure function of (seed, site, index, attempt),
   re-running with the same seed and stream replays the exact same
   faults — and must produce the exact same responses — at any worker
   count.

   Examples:
     ckpt_chaos --seed 42 --rate 0.1 --workers 4 --requests 500
     ckpt_chaos --input traffic.jsonl --rate 0.25
     ckpt_chaos --self-check *)

open Cmdliner
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol
module Chaos = Ckpt_chaos.Chaos
module Json = Ckpt_json.Json

let read_lines ic =
  let rec loop acc =
    match In_channel.input_line ic with
    | Some line -> loop (line :: acc)
    | None -> List.rev acc
  in
  loop []

let non_blank line = String.trim line <> ""

(* ---------------- synthetic traffic ---------------- *)

let base_problem =
  let open Ckpt_model in
  { Optimizer.te = 1e4 *. 86_400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e5 "16-12-8-4" }

let problem_json = Ckpt_model.Codec.problem_to_json base_problem

let observe_line i =
  let t0 = float_of_int (i * 1000) in
  let events =
    [ Json.Obj
        [ ("t", Json.Number t0); ("ev", Json.String "start");
          ("scale", Json.Number 1e5); ("levels", Json.Number 4.) ];
      Json.Obj
        [ ("t", Json.Number (t0 +. 10.)); ("ev", Json.String "compute");
          ("dur", Json.Number 500.); ("productive", Json.Number 480.) ];
      Json.Obj
        [ ("t", Json.Number (t0 +. 510.)); ("ev", Json.String "failure");
          ("level", Json.Number (float_of_int (1 + (i mod 4)))) ];
      Json.Obj
        [ ("t", Json.Number (t0 +. 520.)); ("ev", Json.String "ckpt");
          ("level", Json.Number 1.); ("dur", Json.Number 12.) ];
      Json.Obj
        [ ("t", Json.Number (t0 +. 600.)); ("ev", Json.String "end");
          ("completed", Json.Bool true) ] ]
  in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "observe");
         ("events", Json.List events) ])

let replan_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "replan");
         ("fixed_n", Json.Number (2e4 +. (float_of_int i *. 10.)));
         ("problem", problem_json) ])

let sweep_line i =
  let base = 1e4 +. (float_of_int i *. 40.) in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "sweep");
         ("param", Json.String "scale");
         ("values", Json.List (List.map (fun k -> Json.Number (base +. (float_of_int k *. 1e3))) [ 0; 1; 2 ]));
         ("problem", problem_json) ])

let plan_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "plan");
         ("solution", Json.String (if i mod 5 = 0 then "sl-opt" else "ml-opt"));
         ("fixed_n", Json.Number (1e4 +. (float_of_int i *. 150.)));
         ("problem", problem_json) ])

(* A mix that exercises every chaos site: plans and sweeps feed the pool
   and solver, observes feed the telemetry intake, replans read it back. *)
let synthesize n =
  List.init n (fun i ->
      if i mod 17 = 0 then observe_line i
      else if i mod 13 = 0 then replan_line i
      else if i mod 7 = 0 then sweep_line i
      else plan_line i)

(* ---------------- the replay ---------------- *)

let chunks size list =
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if k = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (k + 1) rest
  in
  go [] [] 0 list

let replay ~seed ~rate ~workers ~batch lines =
  let chaos = if rate > 0. then Some (Chaos.create (Chaos.spec ~seed ~rate ())) else None in
  let service = Service.create ~workers ?chaos () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let responses =
    List.concat_map (fun chunk -> Service.handle_batch service chunk) (chunks batch lines)
  in
  (responses, chaos, Service.metrics service)

let classify responses =
  let ok = ref 0 and degraded = ref 0 and errors = ref 0 in
  List.iter
    (fun r ->
      if Protocol.response_degraded r then incr degraded
      else if Protocol.response_ok r then incr ok
      else incr errors)
    responses;
  (!ok, !degraded, !errors)

let report ppf ~chaos ~metrics responses =
  let ok, degraded, errors = classify responses in
  Format.fprintf ppf "@[<v>chaos replay: %d responses (%d ok, %d degraded, %d errors)@,"
    (List.length responses) ok degraded errors;
  (match chaos with
  | Some c -> Format.fprintf ppf "%a@," Chaos.pp c
  | None -> Format.fprintf ppf "chaos disabled (rate 0)@,");
  Format.fprintf ppf "%a@]@." Ckpt_service.Metrics.pp metrics

(* --self-check: the determinism contract, end to end.  The same seeded
   stream must produce byte-identical responses with 0 and 2 workers,
   and every response must be well-formed: ok, degraded, or a
   structured error with a code. *)
let self_check () =
  let lines = synthesize 120 in
  let run workers =
    let responses, chaos, _ = replay ~seed:7 ~rate:0.15 ~workers ~batch:40 lines in
    (List.map Json.to_string responses, Option.map Chaos.injected chaos)
  in
  let sequential, injected0 = run 0 in
  let parallel, injected2 = run 2 in
  if List.length sequential <> List.length lines then
    Error
      (Printf.sprintf "self-check: %d responses for %d requests" (List.length sequential)
         (List.length lines))
  else if sequential <> parallel then
    Error "self-check: responses differ between 0 and 2 workers under the same chaos seed"
  else if injected0 = Some 0 && injected2 = Some 0 then
    Error "self-check: the chaos policy never fired at rate 0.15"
  else begin
    let malformed =
      List.filter
        (fun line ->
          let r = Json.parse line in
          not
            (Protocol.response_ok r || Protocol.response_degraded r
            || match Protocol.response_error r with
               | Some e -> e.Protocol.code <> ""
               | None -> false))
        sequential
    in
    match malformed with
    | [] ->
        print_endline "self-check ok";
        Ok ()
    | bad :: _ -> Error ("self-check: malformed response " ^ bad)
  end

let run input output seed rate workers requests batch self =
  if rate < 0. || rate > 1. then Error (Printf.sprintf "--rate must be in [0, 1], got %g" rate)
  else if workers < 0 then Error (Printf.sprintf "--workers must be >= 0, got %d" workers)
  else if requests < 1 then Error (Printf.sprintf "--requests must be >= 1, got %d" requests)
  else if batch < 1 then Error (Printf.sprintf "--batch must be >= 1, got %d" batch)
  else if self then self_check ()
  else begin
    let lines =
      match input with
      | None -> synthesize requests
      | Some path -> List.filter non_blank (In_channel.with_open_text path read_lines)
    in
    let responses, chaos, metrics = replay ~seed ~rate ~workers ~batch lines in
    let emit oc =
      List.iter (fun r -> output_string oc (Json.to_string r); output_char oc '\n') responses
    in
    (match output with
    | None -> emit stdout
    | Some path -> Out_channel.with_open_text path emit);
    report Format.err_formatter ~chaos ~metrics responses;
    Ok ()
  end

let input =
  Arg.(value & opt (some file) None
       & info [ "input"; "i" ] ~docv:"FILE"
           ~doc:"JSON-lines request file (default: synthesized traffic).")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Response file (default stdout).")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Chaos seed; same seed, same fault schedule.")

let rate =
  Arg.(value & opt float 0.1
       & info [ "rate" ] ~doc:"Total fault probability per site (0 disables chaos).")

let workers =
  Arg.(value & opt int 2 & info [ "workers"; "j" ] ~doc:"Worker domains; 0 solves inline.")

let requests =
  Arg.(value & opt int 200
       & info [ "requests"; "n" ] ~doc:"Synthesized request count (ignored with --input).")

let batch =
  Arg.(value & opt int 50 & info [ "batch" ] ~doc:"Requests per handle_batch call.")

let self =
  Arg.(value & flag
       & info [ "self-check" ]
           ~doc:"Replay a seeded stream at 0 and 2 workers, require identical responses, and exit.")

let cmd =
  let doc = "Deterministic fault-injection replay against the planning service" in
  let term =
    Term.(const run $ input $ output $ seed $ rate $ workers $ requests $ batch $ self)
  in
  Cmd.v (Cmd.info "ckpt-chaos" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
