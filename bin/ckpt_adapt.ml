(* Fit model parameters from an execution telemetry log and re-plan.

   Reads a JSON-lines telemetry log (the Ckpt_adaptive.Telemetry shape,
   as written by examples/adaptive_replay.ml --write or a resilience
   runtime), estimates per-level failure rates (with exact Poisson
   confidence intervals) and checkpoint/restart costs, and re-runs the
   paper's Algorithm 1 on the prior problem re-parameterized by the
   estimates.

   Example:
     ckpt_adapt --input session.jsonl --rates 4-3-2-1 --n-star 1e5 \
                --te-days 30000 --output replan.json *)

open Cmdliner
open Ckpt_model
module A = Ckpt_adaptive
module Spec = Ckpt_failures.Failure_spec

let build_levels costs pfs_alpha =
  match costs with
  | [] -> Level.fti_fusion
  | costs ->
      let n = List.length costs in
      Array.of_list
        (List.mapi
           (fun i c ->
             if i = n - 1 && pfs_alpha > 0. then
               Level.v ~name:"pfs" (Overhead.linear ~eps:c ~alpha:pfs_alpha)
             else Level.v ~name:(Printf.sprintf "level%d" (i + 1)) (Overhead.constant c))
           costs)

let read_lines path =
  let ic = open_in path in
  let rec go acc = match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let fit ~prior_strength ~min_samples (problem : Optimizer.problem) events =
  let levels = Array.length problem.Optimizer.levels in
  let rates = A.Rate_estimator.observe_all (A.Rate_estimator.create ~levels ()) events in
  let costs = A.Cost_estimator.observe_all (A.Cost_estimator.create ~levels ()) events in
  let fitted =
    { problem with
      Optimizer.spec = A.Rate_estimator.to_spec ~prior_strength rates ~like:problem.Optimizer.spec;
      levels = A.Cost_estimator.calibrated_levels ~min_samples costs ~prior:problem.Optimizer.levels
    }
  in
  (rates, costs, fitted)

let report ~coverage rates costs (problem : Optimizer.problem) fitted =
  let nb = problem.Optimizer.spec.Spec.baseline_scale in
  Format.printf "telemetry: %d failures over %.3e core-seconds of exposure@."
    (A.Rate_estimator.total_count rates)
    (A.Rate_estimator.exposure rates);
  Format.printf "fitted rates per day at N_b = %.0f (prior %s):@." nb
    (Spec.to_string problem.Optimizer.spec);
  for level = 1 to A.Rate_estimator.levels rates do
    let r = A.Rate_estimator.rate_per_day rates ~level ~baseline_scale:nb in
    let lo, hi = A.Rate_estimator.confidence_per_day ~coverage rates ~level ~baseline_scale:nb in
    Format.printf "  level %d: %8.3f  [%.0f%% CI %8.3f .. %8.3f]  (%d failures)@." level r
      (100. *. coverage) lo hi
      (A.Rate_estimator.count rates ~level)
  done;
  Format.printf "observed costs (seconds):@.";
  for level = 1 to A.Cost_estimator.levels costs do
    let cn = A.Cost_estimator.ckpt_count costs ~level in
    let rn = A.Cost_estimator.restart_count costs ~level in
    Format.printf "  level %d: ckpt %d obs" level cn;
    if cn > 0 then Format.printf " mean %.3f" (A.Cost_estimator.ckpt_mean costs ~level);
    Format.printf "; restart %d obs" rn;
    if rn > 0 then Format.printf " mean %.3f" (A.Cost_estimator.restart_mean costs ~level);
    Format.printf "@."
  done;
  ignore fitted

let ( let* ) = Result.bind

let write_bundle path problem plan =
  let json = Codec.bundle_to_json ~problem ~plan in
  let oc = open_out path in
  output_string oc (Ckpt_json.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let run_fit input te_days rates_s kappa n_star alloc costs pfs_alpha fixed_n delta coverage
    prior_strength min_samples output =
  let* spec =
    try Ok (Spec.of_string ~baseline_scale:n_star rates_s) with Invalid_argument m -> Error m
  in
  let levels = build_levels costs pfs_alpha in
  let* () =
    if Spec.levels spec = Array.length levels then Ok ()
    else
      Error
        (Printf.sprintf "%d failure rates for %d levels" (Spec.levels spec) (Array.length levels))
  in
  let problem =
    { Optimizer.te = te_days *. 86400.;
      speedup = Speedup.quadratic ~kappa ~n_star;
      levels; alloc; spec }
  in
  let* events =
    match A.Telemetry.read_lines (read_lines input) with
    | Ok events -> Ok events
    | Error m -> Error (Printf.sprintf "%s: %s" input m)
  in
  let rates, cost_est, fitted = fit ~prior_strength ~min_samples problem events in
  let* () =
    if A.Rate_estimator.exposure rates > 0. then Ok ()
    else Error "telemetry carries no exposure (is the log empty?)"
  in
  report ~coverage rates cost_est problem fitted;
  let solve p =
    match fixed_n with
    | None -> Optimizer.ml_opt_scale ~delta p
    | Some n -> Optimizer.solve ~delta ~fixed_n:n p
  in
  let prior_plan = solve problem in
  let plan = solve fitted in
  let pinned =
    A.Predict.wall_clock fitted ~xs:prior_plan.Optimizer.xs ~n:prior_plan.Optimizer.n
  in
  Format.printf "@.re-planned under fitted parameters:@.%a@." Optimizer.pp_plan plan;
  if Float.is_finite pinned && pinned > 0. then
    Format.printf "prior plan under fitted rates: E(T_w) = %.0f s; re-plan gains %.1f%%@." pinned
      (100. *. (pinned -. plan.Optimizer.wall_clock) /. pinned);
  Option.iter
    (fun path ->
      write_bundle path fitted plan;
      Format.printf "fitted bundle written to %s@." path)
    output;
  Ok ()

(* --self-check: synthesize telemetry from a short simulated run, fit it,
   and verify the codec round-trips and the estimate brackets the truth. *)
let self_check () =
  let nb = 1e5 in
  let spec = Spec.of_string ~baseline_scale:nb "16-12-8-4" in
  let problem =
    { Optimizer.te = 20_000. *. 86400.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:nb;
      levels = Level.fti_fusion;
      alloc = 60.;
      spec }
  in
  let plan = Optimizer.ml_opt_scale problem in
  let config = Ckpt_sim.Run_config.of_plan ~problem ~plan () in
  let events, outcome = A.Telemetry.of_run ~seed:7 config in
  let* () = if outcome.Ckpt_sim.Outcome.completed then Ok () else Error "self-check run did not complete" in
  let* () =
    let round_trip e =
      match A.Telemetry.of_line (A.Telemetry.to_line e) with
      | Ok e' -> e' = e
      | Error _ -> false
    in
    if List.for_all round_trip events then Ok ()
    else Error "self-check: telemetry codec does not round-trip"
  in
  let rates, _, fitted = fit ~prior_strength:0. ~min_samples:3 problem events in
  let* () =
    if A.Rate_estimator.total_count rates > 0 then Ok ()
    else Error "self-check: no failures observed"
  in
  let truth = Spec.total_rate_per_second spec ~scale:nb in
  let fitted_total = Spec.total_rate_per_second fitted.Optimizer.spec ~scale:nb in
  let* () =
    if fitted_total > 0.2 *. truth && fitted_total < 5. *. truth then Ok ()
    else
      Error
        (Printf.sprintf "self-check: fitted total rate %.3e implausible vs true %.3e" fitted_total
           truth)
  in
  let replan = Optimizer.ml_opt_scale fitted in
  if replan.Optimizer.converged then Ok () else Error "self-check: replan did not converge"

let run self input te_days rates kappa n_star alloc costs pfs_alpha fixed_n delta coverage
    prior_strength min_samples output =
  if self then
    match self_check () with
    | Ok () ->
        print_endline "self-check ok";
        Ok ()
    | Error m -> Error m
  else
    match input with
    | None -> Error "--input FILE is required (or use --self-check)"
    | Some input ->
        (try
           run_fit input te_days rates kappa n_star alloc costs pfs_alpha fixed_n delta coverage
             prior_strength min_samples output
         with Invalid_argument m | Failure m -> Error m)

let input =
  Arg.(value & opt (some string) None
       & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Telemetry log, one JSON event per line.")

let te_days = Arg.(value & opt float 3e6 & info [ "te-days" ] ~doc:"Workload in core-days.")

let rates =
  Arg.(value & opt string "16-12-8-4"
       & info [ "rates" ] ~doc:"Prior per-level failures/day at the baseline scale.")

let kappa = Arg.(value & opt float 0.46 & info [ "kappa" ] ~doc:"Speedup slope at the origin.")
let n_star = Arg.(value & opt float 1e6 & info [ "n-star" ] ~doc:"Ideal (peak) scale in cores.")
let alloc = Arg.(value & opt float 60. & info [ "alloc" ] ~doc:"Allocation period A in seconds.")

let costs =
  Arg.(value & opt (list float) []
       & info [ "costs" ] ~doc:"Constant per-level checkpoint costs (overrides FTI defaults).")

let pfs_alpha =
  Arg.(value & opt float 0.
       & info [ "pfs-alpha" ] ~doc:"Linear scale coefficient of the last level's cost.")

let fixed_n =
  Arg.(value & opt (some float) None
       & info [ "fixed-n" ] ~doc:"Pin the execution scale instead of re-optimizing it.")

let delta =
  Arg.(value & opt float 1e-9 & info [ "delta" ] ~doc:"Outer-loop convergence threshold.")

let coverage =
  Arg.(value & opt float 0.95 & info [ "coverage" ] ~doc:"Confidence-interval coverage in (0,1).")

let prior_strength =
  Arg.(value & opt float 0.
       & info [ "prior-strength" ]
           ~doc:"Core-seconds of pseudo-exposure shrinking rates toward the prior.")

let min_samples =
  Arg.(value & opt int 3
       & info [ "cost-min-samples" ]
           ~doc:"Observations required before a level's cost law is re-calibrated.")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the fitted problem + re-planned plan bundle as JSON.")

let self_check_flag =
  Arg.(value & flag & info [ "self-check" ] ~doc:"Run the built-in end-to-end check and exit.")

let cmd =
  let doc = "Fit checkpoint-model parameters from execution telemetry and re-plan" in
  let term =
    Term.(const run $ self_check_flag $ input $ te_days $ rates $ kappa $ n_star $ alloc $ costs
          $ pfs_alpha $ fixed_n $ delta $ coverage $ prior_strength $ min_samples $ output)
  in
  Cmd.v (Cmd.info "ckpt-adapt" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
