(* Tests for ckpt_net: CRC32 vectors, the admission gate, newline
   framing over real descriptors, snapshot encode/decode round-trips and
   decoder robustness (truncation / corruption / future versions never
   raise), snapshot file rotation and fall-back, loopback serving
   byte-identical to the stdin path, deterministic backpressure and
   deadline rejections, drain semantics, the kill-and-restart
   byte-identity property, and a seeded network-chaos soak. *)

open Ckpt_model
open Ckpt_net
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol
module Planner = Ckpt_service.Planner
module Sharded_cache = Ckpt_service.Sharded_cache
module Chaos = Ckpt_chaos.Chaos
module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec
module Rate_estimator = Ckpt_adaptive.Rate_estimator
module Cost_estimator = Ckpt_adaptive.Cost_estimator

let mk_problem ?(te_days = 1e4) ?(kappa = 0.46) ?(n_star = 1e5) ?(alloc = 60.)
    ?(rates = "16-12-8-4") ?(levels = Level.fti_fusion) () =
  { Optimizer.te = te_days *. 86_400.;
    speedup = Speedup.quadratic ~kappa ~n_star;
    levels;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:n_star rates }

let problem_pool =
  Array.init 6 (fun i -> mk_problem ~te_days:(1e4 +. (500. *. float_of_int i)) ())

let plan_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "plan");
         ("problem", Codec.problem_to_json problem_pool.(i mod Array.length problem_pool)) ])

let sweep_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "sweep");
         ("problem", Codec.problem_to_json problem_pool.(i mod Array.length problem_pool));
         ("param", Json.String "scale");
         ("values", Json.float_array [| 8e4; 1e5; 1.2e5 |]) ])

let observe_line i =
  let t0 = float_of_int i *. 1e4 in
  let ev fields = Json.Obj fields in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "observe");
         ( "events",
           Json.List
             [ ev [ ("t", Json.Number t0); ("ev", Json.String "start");
                    ("scale", Json.Number 1e5); ("levels", Json.Number 4.) ];
               ev [ ("t", Json.Number (t0 +. 7200.)); ("ev", Json.String "compute");
                    ("dur", Json.Number 7200.);
                    ("productive", Json.Number (7000. +. float_of_int (i mod 7))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "ckpt");
                    ("level", Json.Number (float_of_int (1 + (i mod 4))));
                    ("dur", Json.Number (25. +. float_of_int (i mod 3))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "end");
                    ("completed", Json.Bool true) ] ] ) ])

let estimate_line i =
  Json.to_string
    (Json.Obj [ ("id", Json.Number (float_of_int i)); ("op", Json.String "estimate") ])

let replan_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "replan");
         ("problem", Codec.problem_to_json problem_pool.(i mod Array.length problem_pool)) ])

let slow_line i =
  (* ~300+ ms of serialized work under the coordinator: the lever the
     backpressure / deadline / drain tests use to hold the server busy
     for a deterministic window. *)
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "simulate-validate");
         ("problem", Codec.problem_to_json problem_pool.(0));
         ("replications", Json.Number 10_000.); ("seed", Json.Number 7.) ])

(* op index -> request line; the restart property samples streams from
   this table. *)
let line_of_op (kind, i) =
  match kind mod 5 with
  | 0 | 1 -> plan_line i
  | 2 -> sweep_line i
  | 3 -> observe_line i
  | 4 -> if i mod 2 = 0 then estimate_line i else replan_line i
  | _ -> assert false

(* ---------------- client + server helpers ---------------- *)

let with_service ?chaos f =
  let service = Service.create ?chaos ~workers:0 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) (fun () -> f service)

let with_server ?(config = Server.default_config) ?chaos f =
  with_service ?chaos @@ fun service ->
  let server = Server.start ~config service in
  Fun.protect ~finally:(fun () -> Server.stop server; Server.join server)
    (fun () -> f service server)

type client = { fd : Unix.file_descr; reader : Frame.reader }

let connect server =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  (* A generous receive timeout so a server bug fails the test instead
     of hanging runtest. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 20.;
  { fd; reader = Frame.reader fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c line = Frame.write_line c.fd line

let recv c =
  match Frame.read_line c.reader with
  | Frame.Line l -> Some l
  | Frame.Eof | Frame.Timeout | Frame.Oversized -> None

let recv_exn c what =
  match recv c with
  | Some l -> l
  | None -> Alcotest.failf "%s: connection closed or timed out" what

let ask c line = send c line; recv c

let with_client server f =
  let c = connect server in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)

let response_ok line =
  match Json.parse_result line with
  | Ok json -> Protocol.response_ok json
  | Error _ -> false

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckpt-net-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* ---------------- crc32 ---------------- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "sub window matches whole"
    (Crc32.string "456")
    (Crc32.sub "123456789" ~pos:3 ~len:3);
  Alcotest.(check bool) "one bit changes the sum" false
    (Crc32.string "hello world" = Crc32.string "hello worle")

(* ---------------- gate ---------------- *)

let test_gate () =
  let g = Gate.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Gate.capacity g);
  Alcotest.(check bool) "slot 1" true (Gate.try_acquire g);
  Alcotest.(check bool) "slot 2" true (Gate.try_acquire g);
  Alcotest.(check bool) "full" false (Gate.try_acquire g);
  Alcotest.(check int) "rejection counted" 1 (Gate.rejected g);
  Alcotest.(check int) "in flight" 2 (Gate.in_flight g);
  Gate.release g;
  Alcotest.(check bool) "slot freed" true (Gate.try_acquire g);
  Gate.release g;
  Gate.release g;
  Alcotest.(check int) "peak" 2 (Gate.peak g);
  (match Gate.release g with
  | () -> Alcotest.fail "release with no slot held should raise"
  | exception Invalid_argument _ -> ());
  match Gate.create ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 should raise"
  | exception Invalid_argument _ -> ()

(* ---------------- framing ---------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec push off =
    if off < Bytes.length b then push (off + Unix.write fd b off (Bytes.length b - off))
  in
  push 0

let test_frame_reassembly () =
  with_socketpair @@ fun a b ->
  let r = Frame.reader b in
  (* Two lines split across three segments, with a CRLF ending. *)
  write_all a "{\"x\"";
  write_all a ":1}\n{\"y\":";
  write_all a "2}\r\n";
  Alcotest.(check (option string)) "line 1" (Some {|{"x":1}|})
    (match Frame.read_line r with Frame.Line l -> Some l | _ -> None);
  Alcotest.(check (option string)) "line 2, cr stripped" (Some {|{"y":2}|})
    (match Frame.read_line r with Frame.Line l -> Some l | _ -> None);
  (* A partial trailing line is dropped at EOF. *)
  (* Several lines arriving in one chunk are queued and returned in
     order. *)
  write_all a "a\nb\nc\n";
  Alcotest.(check bool) "queued a" true (Frame.read_line r = Frame.Line "a");
  Alcotest.(check bool) "queued b" true (Frame.read_line r = Frame.Line "b");
  Alcotest.(check bool) "queued c" true (Frame.read_line r = Frame.Line "c");
  (* A long line trickled in many small segments reassembles intact. *)
  let seg = String.make 100 'z' in
  for _ = 1 to 50 do write_all a seg done;
  write_all a "\n";
  Alcotest.(check bool) "trickled line reassembled" true
    (Frame.read_line r = Frame.Line (String.concat "" (List.init 50 (fun _ -> seg))));
  (* A partial trailing line is dropped at EOF. *)
  write_all a "half a request";
  Unix.close a;
  Alcotest.(check bool) "eof, partial dropped" true (Frame.read_line r = Frame.Eof)

let test_frame_oversized () =
  with_socketpair @@ fun a b ->
  let r = Frame.reader ~max_line_bytes:8 b in
  write_all a "0123456789abcdef";
  Alcotest.(check bool) "oversized" true (Frame.read_line r = Frame.Oversized)

let test_frame_write_read () =
  with_socketpair @@ fun a b ->
  let r = Frame.reader b in
  Frame.write_line a "one";
  Frame.write_line a "two";
  Alcotest.(check bool) "one" true (Frame.read_line r = Frame.Line "one");
  Alcotest.(check bool) "two" true (Frame.read_line r = Frame.Line "two")

(* ---------------- snapshot round-trip ---------------- *)

(* Drive a service into a nontrivial state: solved plans in the cache
   and a live telemetry session with non-integer Welford state. *)
let warmed_service_state service =
  List.iter
    (fun line -> ignore (Service.handle_line service line))
    [ plan_line 0; plan_line 1; plan_line 2; observe_line 0; observe_line 1;
      estimate_line 0 ];
  Snapshot.of_service ~seq:6 service

let test_snapshot_roundtrip () =
  with_service @@ fun service ->
  let state = warmed_service_state service in
  Alcotest.(check bool) "cache captured" true (List.length state.Snapshot.cache >= 3);
  Alcotest.(check bool) "session captured" true (state.Snapshot.session <> None);
  let image = Snapshot.encode state in
  match Snapshot.decode image with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok state' ->
      Alcotest.(check int) "seq" state.Snapshot.seq state'.Snapshot.seq;
      (* Bytes are the equality that matters: the restart property
         compares responses, which are serialized from this state. *)
      Alcotest.(check string) "re-encode is byte-identical" image (Snapshot.encode state')

let test_snapshot_install_resumes () =
  with_service @@ fun original ->
  let state = warmed_service_state original in
  let probe = [ plan_line 1; estimate_line 9; replan_line 2 ] in
  let expected =
    List.map (fun l -> Json.to_string (Service.handle_line original l)) probe
  in
  with_service @@ fun restored ->
  let installed = Snapshot.install state restored in
  Alcotest.(check int) "plans installed" (List.length state.Snapshot.cache) installed;
  let got = List.map (fun l -> Json.to_string (Service.handle_line restored l)) probe in
  Alcotest.(check (list string)) "restored service answers byte-identically" expected got;
  let cached_again = Json.to_string (Service.handle_line restored (plan_line 1)) in
  Alcotest.(check bool) "previously-solved plan is a cache hit" true
    (String.length cached_again > 0
    && Json.member "cached" (Json.parse cached_again) = Some (Json.Bool true))

(* ---------------- snapshot decoder robustness ---------------- *)

let sample_image =
  lazy
    (with_service @@ fun service ->
     Snapshot.encode (warmed_service_state service))

let decode_never_raises s =
  match Snapshot.decode s with
  | Ok _ -> true
  | Error _ -> true
  | exception e ->
      Alcotest.failf "decode raised %s on %S" (Printexc.to_string e)
        (String.sub s 0 (min 60 (String.length s)))

let test_snapshot_truncation () =
  let image = Lazy.force sample_image in
  let n = String.length image in
  let lens = List.init 64 (fun i -> i * n / 64) in
  List.iter
    (fun len ->
      let prefix = String.sub image 0 len in
      ignore (decode_never_raises prefix);
      match Snapshot.decode prefix with
      | Ok _ -> Alcotest.failf "truncation to %d bytes decoded Ok" len
      | Error _ -> ())
    lens

let test_snapshot_corruption =
  QCheck.Test.make ~count:300 ~name:"snapshot decode survives any single-byte corruption"
    QCheck.(pair (int_range 0 100_000) (int_range 0 255))
    (fun (pos, byte) ->
      let image = Lazy.force sample_image in
      let pos = pos mod String.length image in
      let b = Bytes.of_string image in
      QCheck.assume (Bytes.get b pos <> Char.chr byte);
      Bytes.set b pos (Char.chr byte);
      let mutated = Bytes.to_string b in
      ignore (decode_never_raises mutated);
      (* The CRC (payload) and header checks (framing) catch every
         single-byte change. *)
      Result.is_error (Snapshot.decode mutated))

let test_snapshot_future_version () =
  let image = Lazy.force sample_image in
  let nl = String.index image '\n' in
  let payload = String.sub image (nl + 1) (String.length image - nl - 1) in
  let future =
    Printf.sprintf "CKPTSNAP %d %08x %d\n%s" 99 (Crc32.string payload)
      (String.length payload) payload
  in
  let contains ~needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  match Snapshot.decode future with
  | Ok _ -> Alcotest.fail "a future version must not decode"
  | Error m ->
      Alcotest.(check bool) "error names the version gap" true (contains ~needle:"newer" m)

let test_snapshot_garbage_fuzz =
  QCheck.Test.make ~count:300 ~name:"snapshot decode survives arbitrary bytes"
    QCheck.(string_gen_of_size Gen.(int_range 0 200) Gen.char)
    (fun s -> decode_never_raises s && decode_never_raises ("CKPTSNAP " ^ s))

(* ---------------- snapshot files ---------------- *)

let test_snapshot_files_rotate_and_fall_back () =
  with_tmp_dir @@ fun dir ->
  with_service @@ fun service ->
  let save seq =
    match Snapshot.save ~keep:3 ~dir (Snapshot.of_service ~seq service) with
    | Ok path -> path
    | Error m -> Alcotest.failf "save %d failed: %s" seq m
  in
  ignore (Service.handle_line service (plan_line 0));
  let paths = List.map save [ 1; 2; 3; 4; 5 ] in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check int) "pruned to keep=3" 3 (List.length files);
  Alcotest.(check bool) "tmp files cleaned up" true
    (List.for_all (fun f -> Filename.check_suffix f ".ckpt") files);
  (match Snapshot.load_latest ~dir () with
  | Some s -> Alcotest.(check int) "newest wins" 5 s.Snapshot.seq
  | None -> Alcotest.fail "load_latest found nothing");
  (* Corrupt the newest: load falls back to the next one and logs. *)
  let newest = List.nth paths (List.length paths - 1) in
  let oc = open_out newest in
  output_string oc "CKPTSNAP corrupt beyond recognition\n";
  close_out oc;
  let logged = ref [] in
  (match Snapshot.load_latest ~log:(fun m -> logged := m :: !logged) ~dir () with
  | Some s -> Alcotest.(check int) "fell back to seq 4" 4 s.Snapshot.seq
  | None -> Alcotest.fail "fall-back found nothing");
  Alcotest.(check bool) "fall-back logged" true (!logged <> []);
  (* An empty or missing directory is a cold start, not an error. *)
  Alcotest.(check bool) "missing dir is a cold start" true
    (Snapshot.load_latest ~dir:(Filename.concat dir "nope") () = None)

(* ---------------- loopback serving ---------------- *)

let test_loopback_byte_identical_to_stdin_path () =
  (* The same request stream through a socket and through a second,
     identically-configured service directly: responses must match byte
     for byte (stats excluded: its payload is process-local timing). *)
  let stream =
    [ plan_line 0; sweep_line 1; observe_line 0; estimate_line 3; plan_line 0;
      replan_line 2; "not json at all"; plan_line 4 ]
  in
  with_service @@ fun reference ->
  let expected = List.map (fun l -> Json.to_string (Service.handle_line reference l)) stream in
  with_server @@ fun _service server ->
  with_client server @@ fun c ->
  let got = List.map (fun l -> send c l; recv_exn c "loopback") stream in
  Alcotest.(check (list string)) "byte-identical responses" expected got;
  Alcotest.(check int) "request counter" (List.length stream) (Server.requests server);
  Alcotest.(check int) "connection counter" 1 (Server.connections server)

let test_op_counts () =
  (* The per-op routing counters: every answered line is bucketed by its
     envelope's "op" (parsed once, reused for routing), unreadable
     envelopes land in "invalid", and in-band shutdown is counted even
     though it never reaches the service. *)
  with_server @@ fun _service server ->
  Alcotest.(check (list (pair string int))) "fresh server" []
    (Server.op_counts server);
  ( with_client server @@ fun c ->
    List.iter
      (fun l -> send c l; ignore (recv_exn c "op-counts"))
      [ plan_line 0; plan_line 1; sweep_line 2; observe_line 0;
        estimate_line 3; "not json at all"; "{\"problem\": {}}" ] );
  Alcotest.(check (list (pair string int))) "buckets sorted by op"
    [ ("estimate", 1); ("invalid", 2); ("observe", 1); ("plan", 2); ("sweep", 1) ]
    (Server.op_counts server);
  (* In-band shutdown is acknowledged and counted. *)
  ( with_client server @@ fun c ->
    send c "{\"op\": \"shutdown\", \"id\": 9}";
    ignore (recv_exn c "shutdown ack") );
  Server.join server;
  Alcotest.(check (option int)) "shutdown counted" (Some 1)
    (List.assoc_opt "shutdown" (Server.op_counts server))

let test_loopback_blank_and_oversized_lines () =
  let config = { Server.default_config with Server.max_line_bytes = 2048 } in
  with_server ~config @@ fun _service server ->
  with_client server @@ fun c ->
  (* Blank lines are skipped, not answered. *)
  send c "";
  send c "   ";
  let answered = ask c (estimate_line 1) in
  Alcotest.(check bool) "blank lines skipped, next request answered" true
    (match answered with
    | Some l -> Json.member "id" (Json.parse l) = Some (Json.Number 1.)
    | None -> false);
  (* An oversized line gets a structured invalid-request answer, then
     the connection is closed (the reader's framing state is gone). *)
  send c (String.make 4096 'x');
  (match recv c with
  | None -> Alcotest.fail "oversized line: no response"
  | Some l ->
      let json = Json.parse l in
      Alcotest.(check bool) "oversized answered not ok" false (Protocol.response_ok json);
      Alcotest.(check bool) "code invalid-request" true
        (match Json.member "error" json with
        | Some e -> Json.string_field "code" e = Some "invalid-request"
        | None -> false));
  Alcotest.(check bool) "connection closed after oversized line" true
    (try ask c (estimate_line 2) = None with Unix.Unix_error _ -> true)

(* ---------------- backpressure and deadlines ---------------- *)

let test_overloaded_rejection () =
  let config = { Server.default_config with Server.max_inflight = 1 } in
  with_server ~config @@ fun _service server ->
  with_client server @@ fun a ->
  with_client server @@ fun b ->
  (* A occupies the single admission slot for ~300 ms; B's request must
     be turned away immediately with the structured overload error. *)
  send a (slow_line 100);
  Thread.delay 0.1;
  let t0 = Unix.gettimeofday () in
  send b (plan_line 0);
  let rb = recv_exn b "overloaded response" in
  let waited = Unix.gettimeofday () -. t0 in
  let json = Json.parse rb in
  Alcotest.(check bool) "rejected" false (Protocol.response_ok json);
  Alcotest.(check bool) "code overloaded" true
    (match Json.member "error" json with
    | Some e -> Json.string_field "code" e = Some "overloaded"
    | None -> false);
  Alcotest.(check bool) "id echoed on rejection" true
    (Json.member "id" json = Some (Json.Number 0.));
  Alcotest.(check bool) "rejected without waiting for the slow request" true (waited < 0.25);
  Alcotest.(check bool) "rejection counted" true (Server.rejections server >= 1);
  let ra = recv_exn a "slow response" in
  Alcotest.(check bool) "the occupying request still completes" true (response_ok ra)

let test_deadline_exceeded () =
  let config =
    { Server.default_config with Server.max_inflight = 8; request_deadline_ms = 50. }
  in
  with_server ~config @@ fun _service server ->
  with_client server @@ fun a ->
  with_client server @@ fun b ->
  (* A holds the coordinator for ~300 ms; B gets an admission slot but
     cannot reach the coordinator inside its 50 ms deadline. *)
  send a (slow_line 100);
  Thread.delay 0.1;
  send b (plan_line 0);
  let rb = recv_exn b "deadline response" in
  let json = Json.parse rb in
  Alcotest.(check bool) "not ok" false (Protocol.response_ok json);
  Alcotest.(check bool) "code deadline-exceeded" true
    (match Json.member "error" json with
    | Some e -> Json.string_field "code" e = Some "deadline-exceeded"
    | None -> false);
  let ra = recv_exn a "slow response" in
  Alcotest.(check bool) "the busy request still completes" true (response_ok ra)

(* ---------------- drain semantics ---------------- *)

let test_drain_completes_in_flight () =
  with_server @@ fun service server ->
  let a = connect server in
  let b = connect server in
  let c = connect server in
  Fun.protect
    ~finally:(fun () -> List.iter close_client [ a; b; c ])
  @@ fun () ->
  (* A is executing (slow), B is queued behind it, when C asks for
     shutdown: both in-flight requests must still be answered. *)
  send a (slow_line 1);
  Thread.delay 0.05;
  send b (plan_line 2);
  Thread.delay 0.05;
  let ack = ask c {|{"id":"bye","op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown acknowledged" true
    (match ack with
    | Some l -> Json.member "draining" (Json.parse l) = Some (Json.Bool true)
    | None -> false);
  Alcotest.(check bool) "draining flag" true (Server.draining server);
  let ra = recv_exn a "in-flight A" in
  let rb = recv_exn b "in-flight B" in
  Alcotest.(check bool) "A answered during drain" true (response_ok ra);
  Alcotest.(check bool) "B answered during drain" true (response_ok rb);
  (* No new connections: either the connect is refused outright or the
     accepted-then-draining socket closes without serving a byte. *)
  (match connect server with
  | d ->
      let served = Fun.protect ~finally:(fun () -> close_client d) (fun () ->
          ask d (plan_line 0))
      in
      Alcotest.(check bool) "no service after drain began" true (served = None)
  | exception Unix.Unix_error _ -> ());
  Server.join server;
  (* Post-drain: every connection thread joined, the service itself is
     still alive (the server does not own it) and shuts down cleanly. *)
  Alcotest.(check bool) "connections were accepted" true (Server.connections server >= 3);
  let direct = Json.to_string (Service.handle_line service (plan_line 3)) in
  Alcotest.(check bool) "service usable after server drain" true (response_ok direct)

(* ---------------- kill-and-restart byte-identity ---------------- *)

let serve_stream ?config stream f =
  with_server ?config @@ fun _service server ->
  let responses =
    with_client server @@ fun c ->
    List.map (fun l -> send c l; recv_exn c "stream") stream
  in
  f server responses

let test_restart_byte_identity =
  QCheck.Test.make ~count:8 ~name:"warm restart answers the stream tail byte-identically"
    QCheck.(pair (list_of_size Gen.(int_range 6 18) (pair small_nat small_nat))
              (int_range 1 5))
    (fun (ops, cut_at) ->
      QCheck.assume (ops <> []);
      let stream = List.map line_of_op ops in
      let cut = min cut_at (List.length stream - 1) in
      let prefix = List.filteri (fun i _ -> i < cut) stream in
      let tail = List.filteri (fun i _ -> i >= cut) stream in
      (* The reference: one uninterrupted server over the whole stream. *)
      let expected_tail =
        serve_stream stream (fun _ responses ->
            List.filteri (fun i _ -> i >= cut) responses)
      in
      with_tmp_dir @@ fun dir ->
      (* First life: serve the prefix, snapshotting after every request,
         then die (the drain also cuts a final snapshot — equivalent to
         the per-request one at the same seq). *)
      let config =
        { Server.default_config with
          Server.snapshot_dir = Some dir; snapshot_interval = 1 }
      in
      serve_stream ~config prefix (fun _ _ -> ());
      (* Second life: a fresh service warm-restarted from the snapshot
         must answer the tail exactly as the uninterrupted server did. *)
      serve_stream ~config tail (fun _server got_tail -> got_tail = expected_tail))

let test_restart_cache_hit () =
  with_tmp_dir @@ fun dir ->
  let config =
    { Server.default_config with Server.snapshot_dir = Some dir; snapshot_interval = 1 }
  in
  (* First life solves two problems cold. *)
  serve_stream ~config [ plan_line 0; plan_line 1 ] (fun _ responses ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "first life solves cold" true
            (Json.member "cached" (Json.parse r) = Some (Json.Bool false)))
        responses);
  (* Second life answers the same problems from the restored cache. *)
  serve_stream ~config [ plan_line 0; plan_line 1 ] (fun server responses ->
      Alcotest.(check int) "plans restored" 2 (Server.restored server);
      List.iter
        (fun r ->
          Alcotest.(check bool) "restart serves from cache" true
            (Json.member "cached" (Json.parse r) = Some (Json.Bool true)))
        responses)

let test_restart_seq_monotonic () =
  (* Regression: a restarted server must number its snapshots past the
     restored seq.  Were the counter reset to zero, the second life's
     snapshot-1 would sort below the first life's snapshot-2, pruning
     would keep the stale file, and a third life would restore
     pre-restart state — losing the second life's progress. *)
  with_tmp_dir @@ fun dir ->
  let config =
    { Server.default_config with Server.snapshot_dir = Some dir; snapshot_interval = 1 }
  in
  let latest_seq life =
    match Snapshot.load_latest ~dir () with
    | Some s -> s.Snapshot.seq
    | None -> Alcotest.failf "life %d left no loadable snapshot" life
  in
  (* First life: two requests. *)
  serve_stream ~config [ plan_line 0; plan_line 1 ] (fun _ _ -> ());
  Alcotest.(check int) "first life snapshots its request count" 2 (latest_seq 1);
  (* Second life: one more request; its snapshots must continue the
     sequence, not restart it. *)
  serve_stream ~config [ plan_line 2 ] (fun server _ ->
      Alcotest.(check int) "second life warm-restarts" 2 (Server.restored server));
  Alcotest.(check bool) "second life seq continues past the first" true (latest_seq 2 > 2);
  (* Third life: the problem solved in the second life is still cached,
     i.e. the snapshot recording it survived pruning and won the
     newest-first load. *)
  serve_stream ~config [ plan_line 2 ] (fun _ responses ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "second life's progress survives a third restart" true
            (Json.member "cached" (Json.parse r) = Some (Json.Bool true)))
        responses)

(* ---------------- network chaos soak ---------------- *)

let test_net_chaos_soak () =
  let spec = Chaos.spec ~seed:2014 ~rate:0.1 () in
  let chaos = Chaos.create spec in
  (* A mirror instance predicts the schedule: the decision is a pure
     function of (seed, site, index), so the test knows exactly which
     accept indices are faulted and what the healthy ones must get. *)
  let oracle = Chaos.create spec in
  let config = { Server.default_config with Server.chaos = Some chaos } in
  with_service @@ fun reference ->
  (* The reference service answers the same plan twice: cold solve, then
     cache hit.  The server's shared cache behaves identically, so the
     first plan_line 0 actually *answered* over the soak (whichever
     connection it lands on) must match the cold response and every
     later one the cached response. *)
  let cold_response = Json.to_string (Service.handle_line reference (plan_line 0)) in
  let cached_response = Json.to_string (Service.handle_line reference (plan_line 0)) in
  let cold = ref true in
  let expect_plan () =
    if !cold then begin cold := false; cold_response end else cached_response
  in
  with_server ~config @@ fun _service server ->
  let connections = 40 in
  let faults = ref 0 in
  for index = 0 to connections - 1 do
    let expected_fault = Chaos.net_fault oracle ~index in
    if expected_fault <> None then incr faults;
    let c = connect server in
    Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
    match expected_fault with
    | Some Chaos.Drop ->
        (* Closed before serving a byte: the first exchange fails. *)
        let got = try ask c (plan_line 0) with Unix.Unix_error _ -> None in
        Alcotest.(check bool)
          (Printf.sprintf "conn %d dropped" index)
          true (got = None)
    | Some Chaos.Garbage ->
        (* The first line is answered as a parse error; the connection
           then serves normally. *)
        (match try ask c (plan_line 0) with Unix.Unix_error _ -> None with
        | Some first ->
            Alcotest.(check bool)
              (Printf.sprintf "conn %d garbage first line rejected" index)
              false (response_ok first)
        | None -> Alcotest.failf "conn %d: garbage line not answered" index);
        (match try ask c (plan_line 0) with Unix.Unix_error _ -> None with
        | Some second ->
            Alcotest.(check string)
              (Printf.sprintf "conn %d recovers after garbage" index)
              (expect_plan ()) second
        | None -> Alcotest.failf "conn %d: second line not answered" index)
    | Some (Chaos.Stall _) ->
        (* Slowed but correct. *)
        (match try ask c (plan_line 0) with Unix.Unix_error _ -> None with
        | Some got ->
            Alcotest.(check string)
              (Printf.sprintf "conn %d slow but correct" index)
              (expect_plan ()) got
        | None -> Alcotest.failf "conn %d: stalled connection never answered" index)
    | Some Chaos.Half_close ->
        (* The first response arrives; after that the server's write
           side is gone, so the next exchange yields nothing. *)
        (match try ask c (plan_line 0) with Unix.Unix_error _ -> None with
        | Some got ->
            Alcotest.(check string)
              (Printf.sprintf "conn %d first response before half-close" index)
              (expect_plan ()) got
        | None -> Alcotest.failf "conn %d: no response before half-close" index);
        let got = try ask c (plan_line 0) with Unix.Unix_error _ -> None in
        Alcotest.(check bool)
          (Printf.sprintf "conn %d half-closed afterwards" index)
          true (got = None)
    | Some _ -> Alcotest.failf "conn %d: non-net fault decided at the net site" index
    | None -> (
        (* Healthy connections get full, byte-identical service: the
           soak invariant. *)
        match try ask c (plan_line 0) with Unix.Unix_error _ -> None with
        | Some got ->
            Alcotest.(check string)
              (Printf.sprintf "conn %d healthy and byte-identical" index)
              (expect_plan ()) got
        | None -> Alcotest.failf "conn %d: healthy connection not answered" index)
  done;
  Alcotest.(check bool) "the soak actually injected faults" true (!faults > 0);
  Alcotest.(check bool) "and spared healthy connections" true (!faults < connections)

(* ---------------- config validation ---------------- *)

let test_config_validation () =
  let check name config =
    with_service @@ fun service ->
    match Server.start ~config service with
    | server ->
        Server.stop server;
        Server.join server;
        Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  check "max_inflight 0" { Server.default_config with Server.max_inflight = 0 };
  check "negative deadline" { Server.default_config with Server.request_deadline_ms = -1. };
  check "nan idle timeout" { Server.default_config with Server.idle_timeout_s = Float.nan };
  check "zero line bound" { Server.default_config with Server.max_line_bytes = 0 };
  check "snapshot keep 0" { Server.default_config with Server.snapshot_keep = 0 }

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "ckpt_net"
    [ ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32_vectors ]);
      ("gate", [ Alcotest.test_case "semantics" `Quick test_gate ]);
      ( "frame",
        [ Alcotest.test_case "reassembly" `Quick test_frame_reassembly;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "write-read" `Quick test_frame_write_read ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "install-resumes" `Quick test_snapshot_install_resumes;
          Alcotest.test_case "truncation" `Quick test_snapshot_truncation;
          qc test_snapshot_corruption;
          Alcotest.test_case "future-version" `Quick test_snapshot_future_version;
          qc test_snapshot_garbage_fuzz;
          Alcotest.test_case "files-rotate-fall-back" `Quick
            test_snapshot_files_rotate_and_fall_back ] );
      ( "server",
        [ Alcotest.test_case "loopback-byte-identical" `Quick
            test_loopback_byte_identical_to_stdin_path;
          Alcotest.test_case "op-counts" `Quick test_op_counts;
          Alcotest.test_case "blank-and-oversized" `Quick
            test_loopback_blank_and_oversized_lines;
          Alcotest.test_case "overloaded" `Quick test_overloaded_rejection;
          Alcotest.test_case "deadline" `Quick test_deadline_exceeded;
          Alcotest.test_case "drain" `Quick test_drain_completes_in_flight;
          Alcotest.test_case "config-validation" `Quick test_config_validation ] );
      ( "restart",
        [ qc test_restart_byte_identity;
          Alcotest.test_case "cache-hit" `Quick test_restart_cache_hit;
          Alcotest.test_case "seq-monotonic" `Quick test_restart_seq_monotonic ] );
      ("chaos", [ Alcotest.test_case "net-soak" `Quick test_net_chaos_soak ]) ]
