(* Tests for the paper's analytic model: speedup laws, overhead laws, the
   single-level and multilevel formulas, the optimizers and the baselines.
   Several tests pin the paper's published numbers (Fig. 3, Table II). *)

open Ckpt_model
module Failure_spec = Ckpt_failures.Failure_spec
module Derivative = Ckpt_numerics.Derivative

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_rel ?(tol = 1e-3) msg expected actual =
  if expected = 0. then check_close ~tol msg expected actual
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
      true
      (Float.abs (actual -. expected) /. Float.abs expected <= tol)

(* ---------------- Scale_fn ---------------- *)

let test_scale_fn_combinators () =
  let f = Scale_fn.add (Scale_fn.const 2.) (Scale_fn.linear ~slope:3. ()) in
  check_close "value" 14. (f.Scale_fn.f 4.);
  check_close "derivative" 3. (f.Scale_fn.f' 4.);
  let g = Scale_fn.scale 2. f in
  check_close "scaled value" 28. (g.Scale_fn.f 4.);
  check_close "scaled derivative" 6. (g.Scale_fn.f' 4.)

let test_scale_fn_of_fun () =
  let f = Scale_fn.of_fun (fun x -> x *. x) in
  check_close ~tol:1e-3 "numeric derivative" 20. (f.Scale_fn.f' 10.)

let test_scale_fn_check_derivative () =
  Alcotest.(check bool) "good derivative passes" true
    (Scale_fn.check_derivative (Scale_fn.linear ~slope:2. ()));
  let broken = Scale_fn.opaque ~f:(fun x -> x *. x) ~f':(fun _ -> 0.) in
  Alcotest.(check bool) "broken derivative fails" false (Scale_fn.check_derivative broken)

(* ---------------- Speedup ---------------- *)

let test_speedup_linear () =
  let s = Speedup.linear ~kappa:0.5 in
  check_close "g" 50. (Speedup.eval s 100.);
  check_close "g'" 0.5 (Speedup.eval' s 100.);
  Alcotest.(check bool) "no peak" true (s.Speedup.n_ideal = None);
  check_close "productive time" 20. (Speedup.productive_time s ~te:1000. ~n:100.)

let test_speedup_quadratic_shape () =
  let s = Speedup.quadratic ~kappa:0.46 ~n_star:1e5 in
  (* Slope at the origin is kappa. *)
  check_rel ~tol:1e-3 "slope at origin" 0.46 (Speedup.eval s 1e-3 /. 1e-3);
  (* Peak value is kappa * n_star / 2 at n_star. *)
  check_close ~tol:1e-6 "peak value" (0.46 *. 1e5 /. 2.) (Speedup.eval s 1e5);
  check_close ~tol:1e-9 "derivative zero at peak" 0. (Speedup.eval' s 1e5);
  Alcotest.(check bool) "derivative positive before peak" true (Speedup.eval' s 5e4 > 0.)

let test_speedup_quadratic_paper_example () =
  (* Paper Section III-C.2: speedup 77 at 160 cores gives kappa ~ 0.48. *)
  let s = Speedup.quadratic ~kappa:0.46 ~n_star:1e5 in
  let g160 = Speedup.eval s 160. in
  Alcotest.(check bool) "close to 73" true (g160 > 72. && g160 < 75.)

let test_speedup_amdahl () =
  let s = Speedup.amdahl ~serial_fraction:0.05 ~peak:1e4 in
  check_rel ~tol:0.01 "amdahl limit at large n" 19.98 (Speedup.eval s 1e4);
  Alcotest.(check bool) "monotone" true (Speedup.eval s 100. < Speedup.eval s 1000.);
  Alcotest.(check bool) "derivative check" true (Scale_fn.check_derivative s.Speedup.law)

let test_speedup_gustafson () =
  let s = Speedup.gustafson ~serial_fraction:0.1 ~peak:1e4 in
  check_close "scaled speedup" (0.1 +. (0.9 *. 100.)) (Speedup.eval s 100.)

let test_speedup_of_fit () =
  let s = Speedup.of_quadratic_fit ~kappa:0.46 ~quad_coefficient:(-2.3e-6) in
  check_close ~tol:1. "n_star recovered" 1e5
    (Speedup.search_upper_bound s ~default:0.)

let test_speedup_derivatives_numeric () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "analytic = numeric for %s" s.Speedup.name)
        true
        (Scale_fn.check_derivative s.Speedup.law))
    [ Speedup.linear ~kappa:0.3;
      Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
      Speedup.amdahl ~serial_fraction:0.02 ~peak:1e5;
      Speedup.gustafson ~serial_fraction:0.1 ~peak:1e5 ]

(* ---------------- Overhead ---------------- *)

let test_overhead_laws () =
  let c = Overhead.constant 5. in
  check_close "constant" 5. (Overhead.cost c 1e6);
  check_close "constant derivative" 0. (Overhead.cost' c 1e6);
  let l = Overhead.linear ~eps:5.5 ~alpha:0.0212 in
  check_close "linear at 1024" (5.5 +. (0.0212 *. 1024.)) (Overhead.cost l 1024.);
  check_close "linear derivative" 0.0212 (Overhead.cost' l 1024.)

let test_overhead_fit_table2 () =
  (* Re-fit the paper's Table II data; levels 1-3 snap to their means. *)
  let scales = [| 128.; 256.; 384.; 512.; 1024. |] in
  let level1 = Overhead.fit ~snap:1e-3 ~scales ~costs:[| 0.9; 0.67; 0.67; 0.99; 1.1 |] () in
  check_close ~tol:1e-3 "eps1 = column mean" 0.866 level1.Overhead.eps;
  check_close "alpha1 snapped" 0. level1.Overhead.alpha;
  let level4 = Overhead.fit ~snap:1e-3 ~scales ~costs:[| 7.; 8.1; 14.3; 21.3; 25.15 |] () in
  check_rel ~tol:0.03 "eps4 ~ 5.5" 5.5 level4.Overhead.eps;
  check_rel ~tol:0.02 "alpha4 ~ 0.0212" 0.0212 level4.Overhead.alpha

let test_overhead_fit_exact_line () =
  let scales = [| 1.; 2.; 3.; 4. |] in
  let costs = Array.map (fun n -> 2. +. (0.5 *. n)) scales in
  let fit = Overhead.fit ~scales ~costs () in
  check_close "eps" 2. fit.Overhead.eps;
  check_close "alpha" 0.5 fit.Overhead.alpha

(* ---------------- Level ---------------- *)

let test_fti_fusion_levels () =
  Alcotest.(check int) "four levels" 4 (Array.length Level.fti_fusion);
  check_close "level 1 cost" 0.866 (Overhead.cost Level.fti_fusion.(0).Level.ckpt 1e6);
  check_rel ~tol:1e-6 "level 4 write grows" (5.5 +. (0.0212 *. 1e6))
    (Overhead.cost Level.fti_fusion.(3).Level.ckpt 1e6);
  (* Restart reads stay at the characterized cost. *)
  check_close ~tol:1e-9 "level 4 restart constant"
    (5.5 +. (0.0212 *. 1024.))
    (Overhead.cost Level.fti_fusion.(3).Level.restart 1e6)

(* ---------------- Single_level: paper Fig. 3 ---------------- *)

let fig3_params ~linear_cost =
  let level =
    if linear_cost then Level.v (Overhead.linear ~eps:5. ~alpha:0.005)
    else Level.v (Overhead.constant 5.)
  in
  { Single_level.te = 4000. *. 86400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e5;
    level;
    alloc = 0.;
    mu = Scale_fn.linear ~slope:0.005 () }

let test_fig3_constant_cost_optimum () =
  let s = Single_level.optimize (fig3_params ~linear_cost:false) in
  Alcotest.(check bool) "converged" true s.Single_level.converged;
  check_rel ~tol:2e-3 "x* = 797 (paper)" 797. s.Single_level.x;
  check_rel ~tol:2e-4 "N* = 81746 (paper)" 81746. s.Single_level.n

let test_fig3_linear_cost_optimum () =
  let s = Single_level.optimize (fig3_params ~linear_cost:true) in
  check_rel ~tol:5e-3 "x* = 140 (paper)" 140. s.Single_level.x;
  check_rel ~tol:2e-4 "N* = 20215 (paper)" 20215. s.Single_level.n

let test_closed_forms_match_optimizer () =
  (* Linear speedup, constant costs: Eq. (10)/(11) give the optimum in
     closed form; the iterative optimizer must agree. *)
  let te = 1e6 *. 86400. and kappa = 0.8 and b = 1e-4 and eps0 = 30. in
  let eta0 = 45. and alloc = 15. in
  let p =
    { Single_level.te;
      speedup = Speedup.linear ~kappa;
      level = Level.v ~restart:(Overhead.constant eta0) (Overhead.constant eps0);
      alloc;
      mu = Scale_fn.linear ~slope:b () }
  in
  let x_closed = Single_level.optimal_x_closed_form ~te ~kappa ~b ~eps0 in
  let n_closed = Single_level.optimal_n_closed_form ~te ~kappa ~b ~eta0 ~alloc in
  let s = Single_level.optimize ~n_max:(2. *. n_closed) p in
  check_rel ~tol:1e-3 "x agrees" x_closed s.Single_level.x;
  check_rel ~tol:1e-3 "n agrees" n_closed s.Single_level.n

let test_single_level_stationarity () =
  let p = fig3_params ~linear_cost:false in
  let s = Single_level.optimize p in
  check_close ~tol:1e-4 "dE/dx = 0 at optimum" 0.
    (Single_level.d_dx p ~x:s.Single_level.x ~n:s.Single_level.n);
  Alcotest.(check bool) "dE/dN ~ 0 at optimum (integer bisection)" true
    (Float.abs (Single_level.d_dn p ~x:s.Single_level.x ~n:s.Single_level.n) < 1e-4)

let test_single_level_derivatives_numeric () =
  let p = fig3_params ~linear_cost:true in
  List.iter
    (fun (x, n) ->
      let num_dx = Derivative.central ~f:(fun x -> Single_level.expected_wall_clock p ~x ~n) x in
      let num_dn = Derivative.central ~f:(fun n -> Single_level.expected_wall_clock p ~x ~n) n in
      check_rel ~tol:1e-3 "d/dx analytic vs numeric" num_dx (Single_level.d_dx p ~x ~n);
      check_rel ~tol:1e-3 "d/dN analytic vs numeric" num_dn (Single_level.d_dn p ~x ~n))
    [ (100., 10_000.); (500., 50_000.); (1_000., 90_000.) ]

let test_single_level_convexity_at_interior () =
  let p = fig3_params ~linear_cost:false in
  let s = Single_level.optimize p in
  let exx =
    Derivative.second ~f:(fun x -> Single_level.expected_wall_clock p ~x ~n:s.Single_level.n)
      s.Single_level.x
  in
  let enn =
    Derivative.second ~f:(fun n -> Single_level.expected_wall_clock p ~x:s.Single_level.x ~n)
      s.Single_level.n
  in
  Alcotest.(check bool) "convex in x at optimum" true (exx > 0.);
  Alcotest.(check bool) "convex in N at optimum" true (enn > 0.)

let test_single_level_no_failures_boundary () =
  (* With (almost) no failures the optimal scale is the ideal scale and
     checkpointing is pointless (x -> 1). *)
  let p = { (fig3_params ~linear_cost:false) with Single_level.mu = Scale_fn.const 1e-12 } in
  let s = Single_level.optimize p in
  check_close ~tol:1. "scale sticks to n_star" 1e5 s.Single_level.n;
  check_close ~tol:1e-3 "x clamps to 1" 1. s.Single_level.x

(* ---------------- Multilevel ---------------- *)

let eval_problem ?(case = "16-12-8-4") ?(te_core_days = 3e6) () =
  { Optimizer.te = te_core_days *. 86400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Failure_spec.of_string ~baseline_scale:1e6 case }

let ml_params ?(estimate = 40. *. 86400.) () =
  let p = eval_problem () in
  { Multilevel.te = p.Optimizer.te;
    speedup = p.Optimizer.speedup;
    levels = p.Optimizer.levels;
    alloc = p.Optimizer.alloc;
    mus =
      Array.init 4 (fun i ->
          Scale_fn.linear
            ~slope:(Failure_spec.rate_per_second' p.Optimizer.spec ~level:(i + 1) *. estimate)
            ()) }

let test_multilevel_breakdown_sums () =
  let p = ml_params () in
  let xs = [| 1000.; 500.; 200.; 50. |] and n = 5e5 in
  let b = Multilevel.breakdown p ~xs ~n in
  let total =
    b.Multilevel.productive +. b.Multilevel.checkpoint +. b.Multilevel.restart
    +. b.Multilevel.allocation +. b.Multilevel.rollback
  in
  check_rel ~tol:1e-9 "portions sum to E(Tw)" (Multilevel.expected_wall_clock p ~xs ~n) total

let test_multilevel_rollback_includes_lower_levels () =
  let p = ml_params () in
  let xs = [| 1000.; 500.; 200.; 50. |] and n = 5e5 in
  (* Eq. 18: a level-4 rollback re-pays level 1-3 checkpoints, so it must
     exceed the bare half-interval loss. *)
  let g = Speedup.eval p.Multilevel.speedup n in
  let bare = p.Multilevel.te /. g /. (2. *. xs.(3)) in
  Alcotest.(check bool) "rollback exceeds half interval" true
    (Multilevel.expected_rollback p ~xs ~n ~level:4 > bare)

let test_multilevel_d_dx_numeric () =
  let p = ml_params () in
  let xs = [| 2000.; 800.; 300.; 60. |] and n = 4e5 in
  for level = 1 to 4 do
    let f x =
      let xs' = Array.copy xs in
      xs'.(level - 1) <- x;
      Multilevel.expected_wall_clock p ~xs:xs' ~n
    in
    let numeric = Derivative.central ~f xs.(level - 1) in
    check_rel ~tol:1e-3
      (Printf.sprintf "d/dx%d analytic vs numeric" level)
      numeric
      (Multilevel.d_dx p ~xs ~n ~level)
  done

let test_multilevel_d_dn_numeric () =
  let p = ml_params () in
  let xs = [| 2000.; 800.; 300.; 60. |] in
  List.iter
    (fun n ->
      let numeric =
        Derivative.central ~f:(fun n -> Multilevel.expected_wall_clock p ~xs ~n) n
      in
      check_rel ~tol:1e-3 "d/dN analytic vs numeric" numeric (Multilevel.d_dn p ~xs ~n))
    [ 1e5; 4e5; 8e5 ]

let test_multilevel_x_update_solves_foc () =
  let p = ml_params () in
  let xs = [| 2000.; 800.; 300.; 60. |] and n = 4e5 in
  for level = 1 to 4 do
    let x' = Multilevel.x_update p ~xs ~n ~level in
    let xs' = Array.copy xs in
    xs'.(level - 1) <- x';
    check_close ~tol:1e-6
      (Printf.sprintf "Eq.23 holds after update of level %d" level)
      0.
      (Multilevel.d_dx p ~xs:xs' ~n ~level)
  done

let test_multilevel_optimize_stationary () =
  let p = ml_params () in
  let s = Multilevel.optimize p in
  Alcotest.(check bool) "converged" true s.Multilevel.converged;
  for level = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "dE/dx%d ~ 0" level)
      true
      (Float.abs (Multilevel.d_dx p ~xs:s.Multilevel.xs ~n:s.Multilevel.n ~level) < 1e-2)
  done;
  (* Interval counts decrease with level (cheap levels checkpoint more). *)
  for level = 1 to 3 do
    Alcotest.(check bool) "monotone interval counts" true
      (s.Multilevel.xs.(level - 1) >= s.Multilevel.xs.(level))
  done

let test_multilevel_fixed_n () =
  let p = ml_params () in
  let s = Multilevel.optimize ~fixed_n:1e6 p in
  check_close ~tol:1e-9 "scale pinned" 1e6 s.Multilevel.n

let test_multilevel_single_level_degenerate () =
  (* With one level, the multilevel objective (Eq. 21) equals the
     single-level one (Eq. 13) plus the half-checkpoint term mu C / 2 that
     Eq. 18 includes and Eq. 13 drops; the optima are close but not
     identical. *)
  let sl = fig3_params ~linear_cost:false in
  let p =
    { Multilevel.te = sl.Single_level.te;
      speedup = sl.Single_level.speedup;
      levels = [| sl.Single_level.level |];
      alloc = sl.Single_level.alloc;
      mus = [| sl.Single_level.mu |] }
  in
  List.iter
    (fun (x, n) ->
      let offset =
        sl.Single_level.mu.Scale_fn.f n
        *. Overhead.cost sl.Single_level.level.Level.ckpt n /. 2.
      in
      check_rel ~tol:1e-9 "Eq.21 = Eq.13 + mu C / 2"
        (Single_level.expected_wall_clock sl ~x ~n +. offset)
        (Multilevel.expected_wall_clock p ~xs:[| x |] ~n))
    [ (100., 2e4); (797., 81_746.); (2_000., 9e4) ];
  let m = Multilevel.optimize p in
  let s = Single_level.optimize sl in
  check_rel ~tol:0.05 "x close" s.Single_level.x m.Multilevel.xs.(0);
  check_rel ~tol:0.05 "n close" s.Single_level.n m.Multilevel.n

let test_multilevel_young_init () =
  let p = ml_params () in
  let xs = Multilevel.young_init p ~n:1e6 in
  Alcotest.(check int) "one per level" 4 (Array.length xs);
  Array.iter (fun x -> Alcotest.(check bool) "at least 1" true (x >= 1.)) xs

let test_multilevel_check_params () =
  let p = ml_params () in
  Alcotest.(check bool) "size mismatch rejected" true
    (try
       Multilevel.check_params { p with Multilevel.mus = [| Scale_fn.const 1. |] };
       false
     with Invalid_argument _ -> true)

(* ---------------- Optimizer (Algorithm 1) ---------------- *)

let test_optimizer_converges () =
  let plan = Optimizer.ml_opt_scale (eval_problem ()) in
  Alcotest.(check bool) "converged" true plan.Optimizer.converged;
  Alcotest.(check bool) "outer iterations sane" true
    (plan.Optimizer.outer_iterations > 1 && plan.Optimizer.outer_iterations < 100)

let test_optimizer_beats_baselines () =
  let problem = eval_problem () in
  let ml_opt = Optimizer.ml_opt_scale problem in
  let ml_ori = Optimizer.ml_ori_scale problem in
  let sl_opt = Optimizer.sl_opt_scale problem in
  let sl_ori = Optimizer.sl_ori_scale problem in
  Alcotest.(check bool) "beats ML(ori)" true
    (ml_opt.Optimizer.wall_clock <= ml_ori.Optimizer.wall_clock +. 1e-6);
  Alcotest.(check bool) "beats SL(opt)" true
    (ml_opt.Optimizer.wall_clock <= sl_opt.Optimizer.wall_clock +. 1e-6);
  Alcotest.(check bool) "beats SL(ori)" true
    (ml_opt.Optimizer.wall_clock <= sl_ori.Optimizer.wall_clock +. 1e-6)

let test_optimizer_scale_shrinks_with_failures () =
  let high = Optimizer.ml_opt_scale (eval_problem ~case:"16-12-8-4" ()) in
  let low = Optimizer.ml_opt_scale (eval_problem ~case:"4-2-1-0.5" ()) in
  Alcotest.(check bool) "higher rates -> smaller scale" true
    (high.Optimizer.n < low.Optimizer.n);
  Alcotest.(check bool) "both below the ideal scale" true
    (high.Optimizer.n < 1e6 && low.Optimizer.n < 1e6)

let test_optimizer_plan_consistency () =
  let plan = Optimizer.ml_opt_scale (eval_problem ()) in
  let b = plan.Optimizer.breakdown in
  let total =
    b.Multilevel.productive +. b.Multilevel.checkpoint +. b.Multilevel.restart
    +. b.Multilevel.allocation +. b.Multilevel.rollback
  in
  check_rel ~tol:1e-6 "breakdown sums to wall clock" plan.Optimizer.wall_clock total;
  check_rel ~tol:1e-9 "efficiency definition"
    (plan.Optimizer.wall_clock *. plan.Optimizer.n)
    ((eval_problem ()).Optimizer.te /. plan.Optimizer.efficiency)

let test_optimizer_mus_self_consistent () =
  let problem = eval_problem () in
  let plan = Optimizer.ml_opt_scale ~delta:1e-9 problem in
  Array.iteri
    (fun i mu ->
      let lambda =
        Failure_spec.rate_per_second problem.Optimizer.spec ~level:(i + 1)
          ~scale:plan.Optimizer.n
      in
      check_rel ~tol:1e-4
        (Printf.sprintf "mu_%d = lambda_%d * E(Tw)" (i + 1) (i + 1))
        (lambda *. plan.Optimizer.wall_clock)
        mu)
    plan.Optimizer.mus

let test_optimizer_single_level_collapse () =
  let problem = eval_problem () in
  let sl = Optimizer.single_level_problem problem in
  Alcotest.(check int) "one level" 1 (Array.length sl.Optimizer.levels);
  check_close "aggregated rate" 40. sl.Optimizer.spec.Failure_spec.rates_per_day.(0)

let test_optimizer_check_problem () =
  let problem = eval_problem () in
  Alcotest.(check bool) "mismatched spec rejected" true
    (try
       Optimizer.check_problem
         { problem with Optimizer.spec = Failure_spec.of_string "1-2" };
       false
     with Invalid_argument _ -> true)

(* Satellite: check_problem must reject NaN/infinity in every numeric
   field — a poisoned problem must never reach the fixed-point loop. *)
let test_check_problem_rejects_non_finite () =
  let problem = eval_problem () in
  (* Constructors and check_problem share the validation duty, so the
     thunk covers both: either may raise, neither may let the value
     through. *)
  let rejected name mk =
    Alcotest.(check bool) (name ^ " rejected") true
      (try
         Optimizer.check_problem (mk ());
         false
       with Invalid_argument _ -> true)
  in
  List.iter
    (fun bad ->
      rejected "te" (fun () -> { problem with Optimizer.te = bad });
      rejected "alloc" (fun () -> { problem with Optimizer.alloc = bad });
      rejected "rates" (fun () ->
          { problem with
            Optimizer.spec =
              Failure_spec.v ~baseline_scale:1e6 [| bad; 12.; 8.; 4. |] });
      rejected "ckpt eps" (fun () ->
          { problem with
            Optimizer.levels =
              Array.mapi
                (fun i l -> if i = 0 then Level.v (Overhead.constant bad) else l)
                problem.Optimizer.levels }))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  rejected "negative te" (fun () -> { problem with Optimizer.te = -1. });
  rejected "zero te" (fun () -> { problem with Optimizer.te = 0. });
  rejected "negative alloc" (fun () -> { problem with Optimizer.alloc = -1. });
  (* A healthy problem still passes. *)
  Optimizer.check_problem problem

let test_solve_outcome_classification () =
  let problem = eval_problem () in
  (match Optimizer.solve_outcome problem with
  | Optimizer.Converged plan ->
      Alcotest.(check bool) "converged plan equals solve" true
        (plan = Optimizer.solve problem)
  | _ -> Alcotest.fail "healthy problem must converge");
  match Optimizer.solve_outcome ~max_outer:1 problem with
  | Optimizer.Diverged plan ->
      Alcotest.(check bool) "plan_of_outcome recovers the plan" true
        (Optimizer.plan_of_outcome (Optimizer.Diverged plan) == plan)
  | Optimizer.Converged _ -> Alcotest.fail "one outer iteration cannot converge here"
  | Optimizer.Non_finite _ -> Alcotest.fail "finite problem classified non-finite"

let test_optimizer_sl_ori_is_young () =
  let problem = eval_problem () in
  let plan = Optimizer.sl_ori_scale problem in
  check_close ~tol:1e-9 "uses all cores" 1e6 plan.Optimizer.n;
  (* The PFS interval count must equal Young's formula with the
     productive-time failure count. *)
  let sl = Optimizer.single_level_problem problem in
  let productive = Speedup.productive_time sl.Optimizer.speedup ~te:sl.Optimizer.te ~n:1e6 in
  let failures = Failure_spec.rate_per_second sl.Optimizer.spec ~level:1 ~scale:1e6 *. productive in
  let c = Overhead.cost sl.Optimizer.levels.(0).Level.ckpt 1e6 in
  check_rel ~tol:1e-9 "young count"
    (Young.interval_count ~productive ~ckpt_cost:c ~failures)
    plan.Optimizer.xs.(0)

(* ---------------- Optimizer.sweep (warm starts) ---------------- *)

let check_plan_matches msg (cold : Optimizer.plan) (warm : Optimizer.plan) =
  check_rel ~tol:1e-6 (msg ^ ": wall clock") cold.Optimizer.wall_clock
    warm.Optimizer.wall_clock;
  Alcotest.(check bool)
    (msg ^ ": scale") true
    (Float.abs (cold.Optimizer.n -. warm.Optimizer.n) <= 1.);
  Array.iteri
    (fun i x ->
      check_rel ~tol:1e-4
        (Printf.sprintf "%s: x_%d" msg (i + 1))
        x warm.Optimizer.xs.(i))
    cold.Optimizer.xs

let test_sweep_warm_matches_cold () =
  let problem = eval_problem () in
  (* Scale points stay at or below the speedup peak (n_star = 1e6). *)
  let scale_values = [| 2e5; 4e5; 6e5; 8e5; 1e6; 5e5; 3e5 |] in
  let te_values = Array.map (fun d -> d *. 86400.) [| 1e6; 2e6; 3e6; 4e6; 2.5e6 |] in
  List.iter
    (fun (axis, values, label) ->
      let warm_plans, warm_stats =
        Optimizer.sweep ~axis ~values problem
      in
      let cold_plans, cold_stats =
        Optimizer.sweep ~warm:false ~axis ~values problem
      in
      Alcotest.(check int) (label ^ ": plan count") (Array.length values)
        (Array.length warm_plans);
      Alcotest.(check int)
        (label ^ ": warm start count")
        (Array.length values - 1)
        warm_stats.Optimizer.warm_starts;
      Alcotest.(check int) (label ^ ": cold never warm-starts") 0
        cold_stats.Optimizer.warm_starts;
      Array.iteri
        (fun i cold ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: point %d converged" label i)
            true warm_plans.(i).Optimizer.converged;
          check_plan_matches (Printf.sprintf "%s: point %d" label i) cold
            warm_plans.(i))
        cold_plans;
      Alcotest.(check bool)
        (label ^ ": warm spends fewer inner iterations")
        true
        (warm_stats.Optimizer.inner_iterations
        < cold_stats.Optimizer.inner_iterations))
    [ (`Scale, scale_values, "scale");
      (`Te, te_values, "te");
      (`Alloc, [| 30.; 60.; 90.; 120.; 45. |], "alloc") ]

let test_sweep_preserves_input_order () =
  let problem = eval_problem () in
  let values = [| 8e5; 2e5; 5e5 |] in
  let plans, _ = Optimizer.sweep ~axis:`Scale ~values problem in
  Array.iteri
    (fun i v ->
      check_close ~tol:1e-9
        (Printf.sprintf "plan %d pinned at its own scale" i)
        v plans.(i).Optimizer.n)
    values

let test_sweep_rejects_bad_values () =
  let problem = eval_problem () in
  let rejected axis values =
    try
      ignore (Optimizer.sweep ~axis ~values problem);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero scale rejected" true (rejected `Scale [| 1e6; 0. |]);
  Alcotest.(check bool) "negative te rejected" true (rejected `Te [| -1. |]);
  Alcotest.(check bool) "nan alloc rejected" true (rejected `Alloc [| Float.nan |]);
  Alcotest.(check bool) "zero alloc allowed" true
    (not
       (try
          ignore (Optimizer.sweep ~axis:`Alloc ~values:[| 0. |] problem);
          false
        with Invalid_argument _ -> true))

let test_warm_solve_matches_cold () =
  let problem = eval_problem () in
  let cold = Optimizer.ml_opt_scale problem in
  (* Warm-start the same problem from its own solution: the answer must
     not move, and the solve should spend strictly fewer iterations. *)
  let warm = Optimizer.solve ~warm:cold problem in
  check_plan_matches "self warm start" cold warm;
  Alcotest.(check bool) "fewer inner iterations" true
    (warm.Optimizer.inner_iterations < cold.Optimizer.inner_iterations);
  (* A warm plan with the wrong arity is ignored, not an error. *)
  let sl = Optimizer.single_level_problem problem in
  let warm_bad = Optimizer.solve ~warm:cold sl in
  let cold_sl = Optimizer.solve sl in
  check_close ~tol:0. "mismatched warm plan ignored" cold_sl.Optimizer.wall_clock
    warm_bad.Optimizer.wall_clock

(* ---------------- Level_selection ---------------- *)

let test_selection_subsets () =
  let subsets = Level_selection.subsets_containing_last ~levels:4 in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subsets);
  List.iter
    (fun s ->
      Alcotest.(check bool) "contains level 4" true (List.mem 4 s);
      Alcotest.(check bool) "sorted" true (List.sort compare s = s))
    subsets

let test_selection_regroup () =
  let full = Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" in
  let sub = Level_selection.regroup_rates ~full ~subset:[ 1; 4 ] in
  Alcotest.(check int) "two levels" 2 (Failure_spec.levels sub);
  check_close "level 1 keeps its rate" 16. sub.Failure_spec.rates_per_day.(0);
  check_close "levels 2-4 escalate to 4" 24. sub.Failure_spec.rates_per_day.(1);
  let all = Level_selection.regroup_rates ~full ~subset:[ 1; 2; 3; 4 ] in
  check_close "identity regroup" 12. all.Failure_spec.rates_per_day.(1)

let test_selection_regroup_validation () =
  let full = Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" in
  let expect_invalid subset =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Level_selection.regroup_rates ~full ~subset);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid [];
  expect_invalid [ 1; 2 ];
  (* missing mandatory last level *)
  expect_invalid [ 4; 1 ];
  (* unsorted *)
  expect_invalid [ 1; 5 ]

let test_selection_orders_candidates () =
  (* Candidates come back sorted; multilevel choices beat the PFS-only
     plan; the full hierarchy is at worst a few percent off the winner.
     (With the Fusion costs the model actually prefers consolidating the
     three cheap levels onto level 3 - their write costs are within a few
     seconds of each other.) *)
  let problem = eval_problem () in
  let candidates = Level_selection.evaluate problem in
  Alcotest.(check int) "8 candidates" 8 (List.length candidates);
  let sorted = ref true in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if a.Level_selection.plan.Optimizer.wall_clock
           > b.Level_selection.plan.Optimizer.wall_clock +. 1e-9
        then sorted := false;
        scan rest
    | _ -> ()
  in
  scan candidates;
  Alcotest.(check bool) "sorted best-first" true !sorted;
  let best = Level_selection.best problem in
  let wall_of subset =
    (List.find (fun c -> c.Level_selection.levels_used = subset) candidates)
      .Level_selection.plan.Optimizer.wall_clock
  in
  Alcotest.(check bool) "beats PFS-only" true
    (best.Level_selection.plan.Optimizer.wall_clock < wall_of [ 4 ]);
  Alcotest.(check bool) "full hierarchy within 10% of the winner" true
    (wall_of [ 1; 2; 3; 4 ]
     <= 1.1 *. best.Level_selection.plan.Optimizer.wall_clock)

let test_selection_drops_useless_level () =
  (* A ruinously expensive level 3 with zero failures of its own should be
     dropped by the selection. *)
  let levels =
    [| Level.v ~name:"l1" (Overhead.constant 1.);
       Level.v ~name:"l2" (Overhead.constant 3.);
       Level.v ~name:"l3-overpriced" (Overhead.constant 5_000.);
       Level.v ~name:"pfs" (Overhead.constant 30.) |]
  in
  let problem =
    { (eval_problem ()) with
      Optimizer.levels;
      spec = Failure_spec.of_string ~baseline_scale:1e6 "16-12-0-4" }
  in
  let best = Level_selection.best problem in
  Alcotest.(check bool) "level 3 dropped" true
    (not (List.mem 3 best.Level_selection.levels_used))

(* ---------------- Young / Daly / Jin ---------------- *)

let test_young_interval () =
  check_close "sqrt(2 c M)" (sqrt (2. *. 10. *. 3600.))
    (Young.interval ~ckpt_cost:10. ~mtbf:3600.);
  (* Count and interval forms agree. *)
  let productive = 86_400. and ckpt_cost = 20. and failures = 12. in
  let count = Young.interval_count ~productive ~ckpt_cost ~failures in
  let interval = Young.interval ~ckpt_cost ~mtbf:(productive /. failures) in
  check_rel ~tol:1e-9 "forms agree" (productive /. interval) count

let test_daly_refines_young () =
  (* For small c/M Daly ~ Young; for large c it caps the interval at M. *)
  let young = Young.interval ~ckpt_cost:1. ~mtbf:36_000. in
  let daly = Daly.interval ~ckpt_cost:1. ~mtbf:36_000. in
  Alcotest.(check bool) "close when c << M" true (Float.abs (daly -. young) /. young < 0.01);
  check_close "caps at mtbf" 100. (Daly.interval ~ckpt_cost:300. ~mtbf:100.)

let test_daly_count_zero_failures () =
  check_close "no failures -> 1 interval" 1.
    (Daly.interval_count ~productive:1000. ~ckpt_cost:5. ~failures:0.)

let test_jin_agrees_from_good_start () =
  let p = fig3_params ~linear_cost:false in
  let reference = Single_level.optimize p in
  let jin = Jin.optimize ~x0:800. ~n0:80_000. p in
  Alcotest.(check bool) "converged" true jin.Jin.converged;
  check_rel ~tol:0.01 "x agrees" reference.Single_level.x jin.Jin.x;
  check_rel ~tol:0.01 "n agrees" reference.Single_level.n jin.Jin.n

let test_jin_can_fail_from_bad_start () =
  let p = fig3_params ~linear_cost:false in
  (* The paper's critique: Newton without convexity analysis may not
     converge from poor initial values. *)
  let attempts =
    [ Jin.optimize ~x0:1.0001 ~n0:2. p;
      Jin.optimize ~x0:1e9 ~n0:99_999.99 p;
      Jin.optimize ~x0:2. ~n0:99_999.5 p ]
  in
  Alcotest.(check bool) "at least one bad start misbehaves" true
    (List.exists
       (fun (o : Jin.outcome) ->
         (not o.Jin.converged)
         || Float.abs (o.Jin.x -. 797.) > 10.
         || Float.abs (o.Jin.n -. 81_746.) > 1_000.)
       attempts)

(* ---------------- Markov (SCR-style baseline) ---------------- *)

let markov_params () =
  let p = eval_problem () in
  { Markov.te = p.Optimizer.te; speedup = p.Optimizer.speedup;
    levels = p.Optimizer.levels; alloc = p.Optimizer.alloc; spec = p.Optimizer.spec }

let test_markov_cadence () =
  let c = Markov.cadence [| 2; 4; 8 |] in
  Alcotest.(check int) "segment 1 -> level 1" 1 (Markov.level_of_segment c 1);
  Alcotest.(check int) "segment 2 -> level 2" 2 (Markov.level_of_segment c 2);
  Alcotest.(check int) "segment 4 -> level 3" 3 (Markov.level_of_segment c 4);
  Alcotest.(check int) "segment 8 -> level 4" 4 (Markov.level_of_segment c 8);
  Alcotest.(check int) "segment 6 -> level 2" 2 (Markov.level_of_segment c 6);
  Alcotest.(check bool) "decreasing rejected" true
    (try
       ignore (Markov.cadence [| 4; 2; 8 |]);
       false
     with Invalid_argument _ -> true)

let test_markov_no_failures () =
  (* Without failures the chain reduces exactly to
     segments x (tau + mean checkpoint cost over the cadence cycle). *)
  let p = { (markov_params ()) with
            Markov.spec = Failure_spec.v ~baseline_scale:1e6 [| 0.; 0.; 0.; 0. |] } in
  let c = Markov.cadence [| 2; 4; 8 |] in
  let tau = 1000. and n = 5e5 in
  let productive = Speedup.productive_time p.Markov.speedup ~te:p.Markov.te ~n in
  let mean_ckpt =
    let total = ref 0. in
    for k = 1 to 8 do
      let lvl = Markov.level_of_segment c k in
      total := !total +. Overhead.cost p.Markov.levels.(lvl - 1).Level.ckpt n
    done;
    !total /. 8.
  in
  let expected = productive /. tau *. (tau +. mean_ckpt) in
  check_rel ~tol:1e-9 "exact failure-free form" expected
    (Markov.expected_wall_clock p ~n ~segment_length:tau c)

let test_markov_diverges_when_overloaded () =
  let p = markov_params () in
  (* Huge segments at full machine: the renewal bound must break. *)
  let c = Markov.cadence [| 1; 1; 1 |] in
  let e = Markov.expected_wall_clock p ~n:1e6 ~segment_length:5e5 c in
  Alcotest.(check bool) "divergence reported as infinity" true (Float.is_integer e = false && e = infinity || e = infinity)

let test_markov_optimize_beats_naive () =
  let p = markov_params () in
  let plan = Markov.optimize p ~n:376_179. in
  Alcotest.(check bool) "finite" true (Float.is_finite plan.Markov.wall_clock);
  (* A deliberately bad cadence (PFS every segment) must be worse. *)
  let bad = Markov.expected_wall_clock p ~n:376_179. ~segment_length:plan.Markov.segment_length
              (Markov.cadence [| 1; 1; 1 |]) in
  Alcotest.(check bool) "optimized beats PFS-every-segment" true
    (plan.Markov.wall_clock < bad);
  (* xs are consistent with the cadence. *)
  let xs = Markov.to_simulator_xs p ~n:376_179. plan in
  Alcotest.(check int) "four counts" 4 (Array.length xs);
  Alcotest.(check bool) "monotone non-increasing" true
    (xs.(0) >= xs.(1) && xs.(1) >= xs.(2) && xs.(2) >= xs.(3))

let test_markov_near_algorithm1_at_fixed_scale () =
  (* At a fixed, sane scale the two models should agree within tens of
     percent (they model the same physics). *)
  let problem = eval_problem () in
  let alg1 = Optimizer.ml_opt_scale problem in
  let scr = Markov.optimize (markov_params ()) ~n:alg1.Optimizer.n in
  let ratio = scr.Markov.wall_clock /. alg1.Optimizer.wall_clock in
  Alcotest.(check bool)
    (Printf.sprintf "within 30%% (ratio %.2f)" ratio)
    true (ratio > 0.8 && ratio < 1.3)

(* ---------------- Sensitivity ---------------- *)

let test_sensitivity_kappa_elasticity () =
  (* Speedup enters E(Tw) almost purely as 1/kappa, so its wall-clock
     elasticity is ~ -1 and the optimal scale barely moves. *)
  let problem = eval_problem () in
  let knobs = Sensitivity.quadratic_knobs ~kappa:0.46 ~n_star:1e6 problem in
  let rows = Sensitivity.elasticities knobs in
  let find name = List.find (fun r -> String.equal r.Sensitivity.name name) rows in
  let kappa = find "kappa" in
  Alcotest.(check bool) "kappa elasticity ~ -1" true
    (Float.abs (kappa.Sensitivity.wall_clock_elasticity +. 1.) < 0.05);
  Alcotest.(check bool) "kappa barely moves N*" true
    (Float.abs kappa.Sensitivity.scale_elasticity < 0.05);
  (* The expensive level dominates the scale decision over the cheap ones. *)
  let l4 = find "ckpt_cost_L4" and l1 = find "ckpt_cost_L1" in
  Alcotest.(check bool) "PFS cost matters more than L1 cost" true
    (Float.abs l4.Sensitivity.scale_elasticity
     > 10. *. Float.abs l1.Sensitivity.scale_elasticity);
  (* Raising any failure rate cannot shorten the run. *)
  List.iter
    (fun lvl ->
      let r = find (Printf.sprintf "rate_L%d" lvl) in
      Alcotest.(check bool) "rates hurt" true (r.Sensitivity.wall_clock_elasticity >= -1e-6))
    [ 1; 2; 3; 4 ]

let test_sensitivity_knob_identity () =
  let problem = eval_problem () in
  let knobs = Sensitivity.quadratic_knobs ~kappa:0.46 ~n_star:1e6 problem in
  List.iter
    (fun k ->
      let p = k.Sensitivity.apply 1. in
      Optimizer.check_problem p)
    knobs;
  Alcotest.(check int) "3 + 2 x levels knobs" 11 (List.length knobs)

(* ---------------- Self_consistent (Eq. 6) ---------------- *)

let sc_params =
  { Self_consistent.te = 100. *. 86400.;
    kappa = 1.;
    eps0 = 10.;
    alpha0 = 0.01;
    eta0 = 60.;
    beta0 = 1e-3;
    alloc = 60.;
    lambda = 2e-4 }

let test_self_consistent_guard () =
  Alcotest.(check bool) "too-high rate rejected" true
    (try
       ignore
         (Self_consistent.wall_clock { sc_params with Self_consistent.lambda = 1. } ~x:2.
            ~n:100.);
       false
     with Invalid_argument _ -> true)

let test_self_consistent_nonconvex_exists () =
  let xs = List.init 20 (fun i -> 1.5 +. (float_of_int i *. 4.)) in
  let ns = List.init 30 (fun i -> 100. *. (1.3 ** float_of_int i)) in
  Alcotest.(check bool) "non-convex points found" true
    (Self_consistent.find_nonconvex_region sc_params ~xs ~ns <> [])

let test_self_consistent_matches_fixed_mu () =
  (* With the failure count fixed at lambda * E, Eq. (5) and Eq. (6) agree:
     E = P + C(x-1) + lambda E (rollback + R + A). *)
  let x = 50. and n = 1_000. in
  let e = Self_consistent.wall_clock sc_params ~x ~n in
  let p = sc_params in
  let rhs =
    (p.Self_consistent.te /. (p.Self_consistent.kappa *. n))
    +. ((p.Self_consistent.eps0 +. (p.Self_consistent.alpha0 *. n)) *. (x -. 1.))
    +. (p.Self_consistent.lambda *. e
        *. ((p.Self_consistent.te /. (2. *. x *. p.Self_consistent.kappa *. n))
            +. p.Self_consistent.eta0 +. (p.Self_consistent.beta0 *. n)
            +. p.Self_consistent.alloc))
  in
  check_rel ~tol:1e-9 "self-consistency" e rhs

let test_optimizer_amdahl_end_to_end () =
  (* The optimizer is generic in the speedup law: an Amdahl curve with a
     supplied search bound works end to end. *)
  let problem =
    { (eval_problem ()) with
      Optimizer.speedup = Speedup.amdahl ~serial_fraction:1e-6 ~peak:1e6 }
  in
  let plan = Optimizer.ml_opt_scale problem in
  Alcotest.(check bool) "converged" true plan.Optimizer.converged;
  Alcotest.(check bool) "scale within bounds" true
    (plan.Optimizer.n >= 1. && plan.Optimizer.n <= 1e6);
  Alcotest.(check bool) "finite wall clock" true (Float.is_finite plan.Optimizer.wall_clock)

let test_young_init_matches_young_module () =
  (* Eq. 25 in Multilevel.young_init is the count form of Young.interval_count. *)
  let p = ml_params () in
  let n = 5e5 in
  let xs = Multilevel.young_init p ~n in
  let g = Speedup.eval p.Multilevel.speedup n in
  let productive = p.Multilevel.te /. g in
  Array.iteri
    (fun i x ->
      let c = Overhead.cost p.Multilevel.levels.(i).Level.ckpt n in
      let mu = p.Multilevel.mus.(i).Scale_fn.f n in
      check_rel ~tol:1e-9 "matches Young count"
        (Young.interval_count ~productive ~ckpt_cost:c ~failures:(mu *. productive /. productive))
        x |> ignore;
      (* equivalently: x = sqrt(mu * productive / (2C)) *)
      check_rel ~tol:1e-9 "closed form"
        (Float.max 1. (sqrt (mu *. productive /. (2. *. c))))
        x)
    xs

let test_pp_plan_renders () =
  let plan = Optimizer.ml_opt_scale (eval_problem ()) in
  let out = Format.asprintf "%a" Optimizer.pp_plan plan in
  Alcotest.(check bool) "mentions scale" true (String.length out > 100)

(* ---------------- Weak scaling ---------------- *)

let test_weak_scaling_series () =
  let spec = Failure_spec.of_string ~baseline_scale:1e6 "8-6-4-2" in
  let points =
    Weak_scaling.series ~per_core_work:86_400. ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:Level.fti_fusion ~alloc:60. ~spec ~scales:[ 1e4; 1e5; 5e5 ]
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "efficiency in (0, 1]" true
        (p.Weak_scaling.efficiency > 0. && p.Weak_scaling.efficiency <= 1.);
      Alcotest.(check bool) "wall clock at least failure-free" true
        (p.Weak_scaling.wall_clock >= p.Weak_scaling.failure_free -. 1e-6))
    points;
  (* Efficiency declines with scale (rates grow with N). *)
  match points with
  | [ a; b; c ] ->
      Alcotest.(check bool) "monotone decline" true
        (a.Weak_scaling.efficiency > b.Weak_scaling.efficiency
         && b.Weak_scaling.efficiency > c.Weak_scaling.efficiency)
  | _ -> Alcotest.fail "expected three points"

let test_divergent_plan_reported () =
  (* A PFS-only weak-scaled run at 9e5 cores cannot outrun its failures:
     the optimizer must report divergence, not crash. *)
  let spec = Failure_spec.v ~baseline_scale:1e6 [| 20. |] in
  let problem =
    { Optimizer.te = 86_400. *. 9e5;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
      levels = [| Level.fti_fusion.(3) |];
      alloc = 60.;
      spec }
  in
  let plan = Optimizer.solve ~fixed_n:9e5 problem in
  Alcotest.(check bool) "not converged" false plan.Optimizer.converged;
  Alcotest.(check bool) "infinite wall clock" true (plan.Optimizer.wall_clock = infinity);
  check_close ~tol:1e-12 "zero efficiency" 0. plan.Optimizer.efficiency

(* ---------------- Codec (JSON round trips) ---------------- *)

let test_codec_problem_roundtrip () =
  let problem = eval_problem () in
  match Codec.problem_of_json (Codec.problem_to_json problem) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check_close ~tol:1e-9 "te" problem.Optimizer.te p.Optimizer.te;
      check_close ~tol:1e-9 "alloc" problem.Optimizer.alloc p.Optimizer.alloc;
      Alcotest.(check int) "levels" 4 (Array.length p.Optimizer.levels);
      check_close ~tol:1e-12 "rate"
        problem.Optimizer.spec.Failure_spec.rates_per_day.(1)
        p.Optimizer.spec.Failure_spec.rates_per_day.(1);
      (* The reconstructed problem optimizes to the same plan. *)
      let a = Optimizer.ml_opt_scale problem and b = Optimizer.ml_opt_scale p in
      check_rel ~tol:1e-9 "same optimum scale" a.Optimizer.n b.Optimizer.n;
      check_rel ~tol:1e-9 "same wall clock" a.Optimizer.wall_clock b.Optimizer.wall_clock

let test_codec_plan_roundtrip () =
  let plan = Optimizer.ml_opt_scale (eval_problem ()) in
  match Codec.plan_of_json (Codec.plan_to_json plan) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check bool) "xs equal" true (p.Optimizer.xs = plan.Optimizer.xs);
      check_close ~tol:1e-9 "n" plan.Optimizer.n p.Optimizer.n;
      check_close ~tol:1e-6 "wall" plan.Optimizer.wall_clock p.Optimizer.wall_clock;
      Alcotest.(check bool) "converged flag" plan.Optimizer.converged p.Optimizer.converged;
      Alcotest.(check int) "outer iterations" plan.Optimizer.outer_iterations
        p.Optimizer.outer_iterations

let test_codec_bundle_and_errors () =
  let problem = eval_problem () in
  let plan = Optimizer.sl_ori_scale problem in
  let sl = Optimizer.single_level_problem problem in
  (match Codec.bundle_of_json (Codec.bundle_to_json ~problem:sl ~plan) with
   | Ok (p, pl) ->
       Alcotest.(check int) "single level round trips" 1 (Array.length p.Optimizer.levels);
       Alcotest.(check bool) "xs" true (pl.Optimizer.xs = plan.Optimizer.xs)
   | Error e -> Alcotest.fail e);
  (* Malformed inputs are rejected with messages, not exceptions. *)
  (match Codec.problem_of_json (Ckpt_json.Json.Obj [ ("te", Ckpt_json.Json.Number 1.) ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error");
  match Codec.speedup_of_json (Ckpt_json.Json.Obj [ ("kind", Ckpt_json.Json.String "warp") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_codec_custom_rejected () =
  let custom =
    Speedup.custom ~name:"weird" ~law:(Scale_fn.linear ~slope:1. ()) ~n_ideal:None
  in
  Alcotest.(check bool) "custom speedup refuses to serialize" true
    (try
       ignore (Codec.speedup_to_json custom);
       false
     with Invalid_argument _ -> true)

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"single-level derivatives match finite differences" ~count:100
      (pair (float_range 2. 5_000.) (float_range 100. 90_000.))
      (fun (x, n) ->
        let p = fig3_params ~linear_cost:true in
        let num_dx =
          Derivative.central ~f:(fun x -> Single_level.expected_wall_clock p ~x ~n) x
        in
        let ana = Single_level.d_dx p ~x ~n in
        Float.abs (num_dx -. ana) <= 1e-3 *. (1. +. Float.abs ana));
    Test.make ~name:"multilevel breakdown always sums to E(Tw)" ~count:100
      (pair
         (quad (float_range 1. 1e4) (float_range 1. 5e3) (float_range 1. 1e3)
            (float_range 1. 200.))
         (float_range 1e3 9e5))
      (fun ((x1, x2, x3, x4), n) ->
        let p = ml_params () in
        let xs = [| x1; x2; x3; x4 |] in
        let b = Multilevel.breakdown p ~xs ~n in
        let total =
          b.Multilevel.productive +. b.Multilevel.checkpoint +. b.Multilevel.restart
          +. b.Multilevel.allocation +. b.Multilevel.rollback
        in
        let e = Multilevel.expected_wall_clock p ~xs ~n in
        Float.abs (total -. e) <= 1e-6 *. e);
    Test.make ~name:"plan is locally optimal under perturbations" ~count:25
      (pair (int_range 0 3) (float_range 0.7 1.4))
      (fun (level, factor) ->
        (* Scaling any single interval count away from the optimum - or
           moving the scale - cannot improve the fixed-mu objective. *)
        let problem = eval_problem () in
        let plan = Optimizer.ml_opt_scale problem in
        let mus =
          Array.init 4 (fun i ->
              Scale_fn.linear
                ~slope:
                  (Failure_spec.rate_per_second' problem.Optimizer.spec ~level:(i + 1)
                   *. plan.Optimizer.wall_clock)
                ())
        in
        let params =
          { Multilevel.te = problem.Optimizer.te;
            speedup = problem.Optimizer.speedup;
            levels = problem.Optimizer.levels;
            alloc = problem.Optimizer.alloc;
            mus }
        in
        let base = Multilevel.expected_wall_clock params ~xs:plan.Optimizer.xs ~n:plan.Optimizer.n in
        let xs' = Array.copy plan.Optimizer.xs in
        xs'.(level) <- Float.max 1. (xs'.(level) *. factor);
        let perturbed_x = Multilevel.expected_wall_clock params ~xs:xs' ~n:plan.Optimizer.n in
        let n' = Float.min 999_999. (Float.max 1. (plan.Optimizer.n *. factor)) in
        let perturbed_n = Multilevel.expected_wall_clock params ~xs:plan.Optimizer.xs ~n:n' in
        perturbed_x >= base -. (1e-6 *. base) && perturbed_n >= base -. (1e-6 *. base));
    Test.make ~name:"x_update always lands at a stationary point" ~count:100
      (pair (int_range 1 4) (float_range 1e4 9e5))
      (fun (level, n) ->
        let p = ml_params () in
        let xs = [| 2000.; 800.; 300.; 60. |] in
        let x' = Multilevel.x_update p ~xs ~n ~level in
        let xs' = Array.copy xs in
        xs'.(level - 1) <- x';
        x' = 1. || Float.abs (Multilevel.d_dx p ~xs:xs' ~n ~level) < 1e-4) ]

let () =
  Alcotest.run "ckpt_model"
    [ ( "scale-fn",
        [ Alcotest.test_case "combinators" `Quick test_scale_fn_combinators;
          Alcotest.test_case "of_fun" `Quick test_scale_fn_of_fun;
          Alcotest.test_case "check_derivative" `Quick test_scale_fn_check_derivative ] );
      ( "speedup",
        [ Alcotest.test_case "linear" `Quick test_speedup_linear;
          Alcotest.test_case "quadratic shape" `Quick test_speedup_quadratic_shape;
          Alcotest.test_case "paper example" `Quick test_speedup_quadratic_paper_example;
          Alcotest.test_case "amdahl" `Quick test_speedup_amdahl;
          Alcotest.test_case "gustafson" `Quick test_speedup_gustafson;
          Alcotest.test_case "of fit" `Quick test_speedup_of_fit;
          Alcotest.test_case "derivatives numeric" `Quick test_speedup_derivatives_numeric ] );
      ( "overhead",
        [ Alcotest.test_case "laws" `Quick test_overhead_laws;
          Alcotest.test_case "table II fit" `Quick test_overhead_fit_table2;
          Alcotest.test_case "exact line" `Quick test_overhead_fit_exact_line;
          Alcotest.test_case "fti fusion levels" `Quick test_fti_fusion_levels ] );
      ( "single-level",
        [ Alcotest.test_case "fig3 constant optimum" `Quick test_fig3_constant_cost_optimum;
          Alcotest.test_case "fig3 linear optimum" `Quick test_fig3_linear_cost_optimum;
          Alcotest.test_case "closed forms" `Quick test_closed_forms_match_optimizer;
          Alcotest.test_case "stationarity" `Quick test_single_level_stationarity;
          Alcotest.test_case "derivatives numeric" `Quick
            test_single_level_derivatives_numeric;
          Alcotest.test_case "convexity at optimum" `Quick
            test_single_level_convexity_at_interior;
          Alcotest.test_case "no failures boundary" `Quick
            test_single_level_no_failures_boundary ] );
      ( "multilevel",
        [ Alcotest.test_case "breakdown sums" `Quick test_multilevel_breakdown_sums;
          Alcotest.test_case "rollback includes lower levels" `Quick
            test_multilevel_rollback_includes_lower_levels;
          Alcotest.test_case "d/dx numeric" `Quick test_multilevel_d_dx_numeric;
          Alcotest.test_case "d/dN numeric" `Quick test_multilevel_d_dn_numeric;
          Alcotest.test_case "x_update solves FOC" `Quick test_multilevel_x_update_solves_foc;
          Alcotest.test_case "optimize stationary" `Quick test_multilevel_optimize_stationary;
          Alcotest.test_case "fixed N" `Quick test_multilevel_fixed_n;
          Alcotest.test_case "degenerates to single level" `Quick
            test_multilevel_single_level_degenerate;
          Alcotest.test_case "young init" `Quick test_multilevel_young_init;
          Alcotest.test_case "check params" `Quick test_multilevel_check_params ] );
      ( "optimizer",
        [ Alcotest.test_case "converges" `Quick test_optimizer_converges;
          Alcotest.test_case "beats baselines" `Quick test_optimizer_beats_baselines;
          Alcotest.test_case "scale shrinks with failures" `Quick
            test_optimizer_scale_shrinks_with_failures;
          Alcotest.test_case "plan consistency" `Quick test_optimizer_plan_consistency;
          Alcotest.test_case "mus self-consistent" `Quick test_optimizer_mus_self_consistent;
          Alcotest.test_case "single-level collapse" `Quick
            test_optimizer_single_level_collapse;
          Alcotest.test_case "check problem" `Quick test_optimizer_check_problem;
          Alcotest.test_case "check problem rejects non-finite" `Quick
            test_check_problem_rejects_non_finite;
          Alcotest.test_case "solve outcome classification" `Quick
            test_solve_outcome_classification;
          Alcotest.test_case "sl-ori is young" `Quick test_optimizer_sl_ori_is_young;
          Alcotest.test_case "amdahl end to end" `Quick test_optimizer_amdahl_end_to_end;
          Alcotest.test_case "young init form" `Quick test_young_init_matches_young_module;
          Alcotest.test_case "pp plan" `Quick test_pp_plan_renders ] );
      ( "sweep",
        [ Alcotest.test_case "warm matches cold" `Quick test_sweep_warm_matches_cold;
          Alcotest.test_case "input order" `Quick test_sweep_preserves_input_order;
          Alcotest.test_case "bad values" `Quick test_sweep_rejects_bad_values;
          Alcotest.test_case "warm solve" `Quick test_warm_solve_matches_cold ] );
      ( "level-selection",
        [ Alcotest.test_case "subsets" `Quick test_selection_subsets;
          Alcotest.test_case "regroup" `Quick test_selection_regroup;
          Alcotest.test_case "regroup validation" `Quick test_selection_regroup_validation;
          Alcotest.test_case "orders candidates" `Quick test_selection_orders_candidates;
          Alcotest.test_case "drops useless level" `Quick test_selection_drops_useless_level ] );
      ( "baselines",
        [ Alcotest.test_case "young interval" `Quick test_young_interval;
          Alcotest.test_case "daly refines young" `Quick test_daly_refines_young;
          Alcotest.test_case "daly zero failures" `Quick test_daly_count_zero_failures;
          Alcotest.test_case "jin agrees" `Quick test_jin_agrees_from_good_start;
          Alcotest.test_case "jin bad start" `Quick test_jin_can_fail_from_bad_start ] );
      ( "weak-scaling",
        [ Alcotest.test_case "series" `Quick test_weak_scaling_series;
          Alcotest.test_case "divergence reported" `Quick test_divergent_plan_reported ] );
      ( "codec",
        [ Alcotest.test_case "problem roundtrip" `Quick test_codec_problem_roundtrip;
          Alcotest.test_case "plan roundtrip" `Quick test_codec_plan_roundtrip;
          Alcotest.test_case "bundle and errors" `Quick test_codec_bundle_and_errors;
          Alcotest.test_case "custom rejected" `Quick test_codec_custom_rejected ] );
      ( "markov",
        [ Alcotest.test_case "cadence" `Quick test_markov_cadence;
          Alcotest.test_case "no failures" `Quick test_markov_no_failures;
          Alcotest.test_case "divergence" `Quick test_markov_diverges_when_overloaded;
          Alcotest.test_case "optimize beats naive" `Quick test_markov_optimize_beats_naive;
          Alcotest.test_case "near algorithm 1" `Quick
            test_markov_near_algorithm1_at_fixed_scale ] );
      ( "sensitivity",
        [ Alcotest.test_case "kappa elasticity" `Quick test_sensitivity_kappa_elasticity;
          Alcotest.test_case "knob identity" `Quick test_sensitivity_knob_identity ] );
      ( "self-consistent",
        [ Alcotest.test_case "guard" `Quick test_self_consistent_guard;
          Alcotest.test_case "nonconvexity exists" `Quick test_self_consistent_nonconvex_exists;
          Alcotest.test_case "fixed-mu consistency" `Quick
            test_self_consistent_matches_fixed_mu ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
