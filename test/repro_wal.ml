module Wal = Ckpt_net.Wal

let () =
  let dir = "/tmp/walrepro/wal" in
  (* life 1: append a, b (synced), then simulate a torn tail by hand *)
  (match Wal.open_ (Wal.config ~dir ()) ~next_seq:1 with
   | Error m -> failwith m
   | Ok w ->
       ignore (Wal.append w "a");
       ignore (Wal.append w "b");
       Wal.abort w);
  (* hand-tear: append half of a frame for seq 3 to the current segment *)
  let seg = Filename.concat dir "wal-000000000001.log" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "W 3 5 0000";  (* truncated header/frame *)
  close_out oc;
  (* life 2: recover, append c (acked+synced), die *)
  let scan = Wal.load ~dir () in
  Printf.printf "life2 recovery: records=%s last_seq=%d dropped=%d skipped=%d\n"
    (String.concat "," (List.map snd scan.Wal.records))
    scan.Wal.last_seq scan.Wal.dropped_records scan.Wal.skipped_segments;
  (match Wal.open_ (Wal.config ~dir ()) ~next_seq:(scan.Wal.last_seq + 1) with
   | Error m -> failwith m
   | Ok w ->
       (match Wal.append w "c" with
        | Ok seq -> Printf.printf "life2: acked 'c' at seq %d (synced=%d)\n" seq (Wal.synced_seq w)
        | Error m -> Printf.printf "append c failed: %s\n" m);
       Wal.abort w);
  (* life 3: recover again — is acked 'c' still there? *)
  let scan = Wal.load ~dir () in
  Printf.printf "life3 recovery: records=%s last_seq=%d dropped=%d skipped=%d\n"
    (String.concat "," (List.map snd scan.Wal.records))
    scan.Wal.last_seq scan.Wal.dropped_records scan.Wal.skipped_segments;
  (* and what does a fresh open_ do to the segment holding 'c'? *)
  (match Wal.open_ (Wal.config ~dir ()) ~next_seq:(scan.Wal.last_seq + 1) with
   | Error m -> failwith m
   | Ok w -> Wal.abort w);
  let scan = Wal.load ~dir () in
  Printf.printf "after life4 open_: records=%s\n"
    (String.concat "," (List.map snd scan.Wal.records));
  Array.iter (fun f -> Printf.printf "  file: %s\n" f) (Sys.readdir dir)
