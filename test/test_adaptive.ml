(* Tests for ckpt_adaptive: telemetry codec, rate/cost estimators,
   drift detection, controller hysteresis, and the closed-loop harness —
   including the headline property that the adaptive policy beats the
   static plan when the true rates shift. *)

open Ckpt_model
module A = Ckpt_adaptive
module Telemetry = A.Telemetry
module Rate_estimator = A.Rate_estimator
module Cost_estimator = A.Cost_estimator
module Spec = Ckpt_failures.Failure_spec
module Arrivals = Ckpt_failures.Arrivals
module Rng = Ckpt_numerics.Rng
module Json = Ckpt_json.Json

let approx ?(tol = 1e-9) what expected got =
  if Float.abs (got -. expected) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected got

(* A small, fast-to-solve problem family shared across tests. *)
let mk_problem ?(te_days = 1e4) ?(n_star = 1e5) ?(rates = "16-12-8-4") () =
  { Optimizer.te = te_days *. 86_400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star;
    levels = Level.fti_fusion;
    alloc = 60.;
    spec = Spec.of_string ~baseline_scale:n_star rates }

(* ---------------- telemetry codec ---------------- *)

let qcheck_telemetry_round_trip =
  let open QCheck in
  let gen =
    Gen.(
      let stamp = map (fun i -> float_of_int i /. 16.) (int_range 0 1_000_000) in
      let dur = map (fun i -> float_of_int i /. 64.) (int_range 0 100_000) in
      let level = int_range 1 4 in
      oneof
        [ map2 (fun at scale -> Telemetry.Run_start { at; scale; levels = 4 }) stamp
            (map (fun i -> float_of_int (i + 1)) (int_range 0 1_000_000));
          map3
            (fun at duration productive ->
              Telemetry.Compute { at; duration; productive = Float.min productive duration })
            stamp dur dur;
          map3 (fun at level duration -> Telemetry.Ckpt { at; level; duration }) stamp level dur;
          map3 (fun at level duration -> Telemetry.Restart { at; level; duration }) stamp level dur;
          map2 (fun at level -> Telemetry.Failure { at; level }) stamp level;
          map2 (fun at completed -> Telemetry.Run_end { at; completed }) stamp bool ])
  in
  Test.make ~name:"telemetry JSON line round-trips" ~count:500 (make gen) (fun event ->
      match Telemetry.of_line (Telemetry.to_line event) with
      | Ok event' -> event' = event
      | Error _ -> false)

let test_read_lines_errors () =
  (match Telemetry.read_lines [ {|{"t":0,"ev":"failure","level":1}|}; ""; "not json" ] with
  | Error m -> Alcotest.(check bool) "error names line 3" true (String.contains m '3')
  | Ok _ -> Alcotest.fail "malformed line accepted");
  match Telemetry.read_lines [ ""; {|{"t":1.5,"ev":"end","completed":true}|}; "" ] with
  | Ok [ Telemetry.Run_end { at; completed = true } ] -> approx "timestamp" 1.5 at
  | Ok _ -> Alcotest.fail "wrong decode"
  | Error m -> Alcotest.failf "blank lines should be skipped: %s" m

(* ---------------- rate estimator ---------------- *)

(* Telemetry for a failure stream observed over [horizon] seconds at
   [scale] cores: exposure comes from the Run_start/Run_end bracket and
   the failures land in between. *)
let stream_telemetry ~spec ~laws ~scale ~horizon ~seed =
  let rng = Rng.of_int seed in
  let arrivals = Arrivals.create ~laws ~rng ~spec ~scale () in
  let failures =
    List.map
      (fun { Arrivals.at; level } -> Telemetry.Failure { at; level })
      (Arrivals.sequence arrivals ~horizon)
  in
  (Telemetry.Run_start { at = 0.; scale; levels = Spec.levels spec } :: failures)
  @ [ Telemetry.Run_end { at = horizon; completed = true } ]

let nb = 1e5
let true_spec = Spec.of_string ~baseline_scale:nb "10-6"

(* ~46 expected failures: enough that the MLE is meaningful, few enough
   that the interval is doing real work. *)
let stream_horizon = 2. *. 86_400.

let ingest events =
  Rate_estimator.observe_all (Rate_estimator.create ~levels:2 ()) events

let test_exposure_accounting () =
  let events = stream_telemetry ~spec:true_spec ~laws:[| Arrivals.Exponential; Arrivals.Exponential |] ~scale:nb ~horizon:stream_horizon ~seed:3 in
  let t = ingest events in
  approx "raw exposure is scale x horizon" (nb *. stream_horizon) (Rate_estimator.exposure t);
  Alcotest.(check bool) "saw failures" true (Rate_estimator.total_count t > 0)

let qcheck_mle_ci_covers_exponential =
  let open QCheck in
  Test.make ~name:"exponential stream: 95% CI covers the true rate (per-trial, wide)" ~count:60
    (make Gen.(int_range 0 100_000)) (fun seed ->
      let events =
        stream_telemetry ~spec:true_spec
          ~laws:[| Arrivals.Exponential; Arrivals.Exponential |]
          ~scale:nb ~horizon:stream_horizon ~seed
      in
      let t = ingest events in
      (* A 99.9% interval essentially never excludes the truth; the
         sharper 95%-coverage statement is tested empirically below. *)
      let lo, hi = Rate_estimator.confidence_per_day ~coverage:0.999 t ~level:1 ~baseline_scale:nb in
      let r = true_spec.Spec.rates_per_day.(0) in
      lo <= r && r <= hi)

let test_empirical_coverage () =
  let trials = 200 in
  let covered = ref 0 in
  for seed = 1 to trials do
    let events =
      stream_telemetry ~spec:true_spec
        ~laws:[| Arrivals.Exponential; Arrivals.Exponential |]
        ~scale:nb ~horizon:stream_horizon ~seed:(seed * 7)
    in
    let t = ingest events in
    let lo, hi = Rate_estimator.confidence_per_day ~coverage:0.95 t ~level:1 ~baseline_scale:nb in
    let r = true_spec.Spec.rates_per_day.(0) in
    if lo <= r && r <= hi then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  if coverage < 0.9 then
    Alcotest.failf "empirical coverage %.3f below 0.9 (nominal 0.95)" coverage

let test_weibull_mle_recovers_mean_rate () =
  (* Weibull inter-arrivals with the scale calibrated to the same mean
     rate: count/exposure still estimates the mean rate, even though the
     process is no longer Poisson.  Long horizon, loose tolerance. *)
  List.iter
    (fun shape ->
      let events =
        stream_telemetry ~spec:true_spec
          ~laws:[| Arrivals.Weibull { shape }; Arrivals.Weibull { shape } |]
          ~scale:nb ~horizon:(20. *. stream_horizon) ~seed:5
      in
      let t = ingest events in
      let fitted = Rate_estimator.rate_per_day t ~level:1 ~baseline_scale:nb in
      let r = true_spec.Spec.rates_per_day.(0) in
      if fitted < 0.7 *. r || fitted > 1.3 *. r then
        Alcotest.failf "Weibull shape %.1f: fitted %.2f/day vs true %.2f/day" shape fitted r)
    [ 0.7; 1.5 ]

let test_garwood_zero_failures () =
  let events =
    [ Telemetry.Run_start { at = 0.; scale = 1.; levels = 1 };
      Telemetry.Run_end { at = 1000.; completed = true } ]
  in
  let t = Rate_estimator.observe_all (Rate_estimator.create ~levels:1 ()) events in
  approx "zero failures, zero point estimate" 0. (Rate_estimator.rate_per_day t ~level:1 ~baseline_scale:1.);
  let lo, hi = Rate_estimator.confidence_per_day ~coverage:0.95 t ~level:1 ~baseline_scale:1. in
  approx "lower bound is 0" 0. lo;
  (* k = 0: upper bound is -ln(alpha/2) / E = 3.68888.../1000 per
     core-second, times 86400 per day at N_b = 1. *)
  approx ~tol:1e-6 "closed-form upper bound" (-.Float.log 0.025 /. 1000. *. 86_400.) hi

let test_to_spec_prior_shrinkage () =
  let events =
    stream_telemetry ~spec:true_spec
      ~laws:[| Arrivals.Exponential; Arrivals.Exponential |]
      ~scale:nb ~horizon:stream_horizon ~seed:9
  in
  let t = ingest events in
  let prior = Spec.v ~baseline_scale:nb [| 50.; 40. |] in
  let pure = Rate_estimator.to_spec t ~like:prior in
  approx ~tol:1e-9 "no shrinkage = MLE"
    (Rate_estimator.rate_per_day t ~level:1 ~baseline_scale:nb)
    pure.Spec.rates_per_day.(0);
  let heavy = Rate_estimator.to_spec ~prior_strength:1e18 t ~like:prior in
  approx ~tol:1e-3 "infinite prior = prior" 50. heavy.Spec.rates_per_day.(0);
  let tau = Rate_estimator.exposure t in
  let mid = Rate_estimator.to_spec ~prior_strength:tau t ~like:prior in
  Alcotest.(check bool) "equal weight lands between" true
    (mid.Spec.rates_per_day.(0) > Float.min pure.Spec.rates_per_day.(0) 50.
    && mid.Spec.rates_per_day.(0) < Float.max pure.Spec.rates_per_day.(0) 50.)

let test_ewma_tracks_shift () =
  (* Same exposure pre- and post-shift; the decayed estimator must land
     much closer to the post-shift rate than the plain MLE does. *)
  let horizon = 5. *. 86_400. in
  let pre =
    stream_telemetry ~spec:(Spec.v ~baseline_scale:nb [| 4. |])
      ~laws:[| Arrivals.Exponential |] ~scale:nb ~horizon ~seed:21
  in
  let post =
    List.map
      (fun e -> Telemetry.shift e ~by:horizon)
      (stream_telemetry ~spec:(Spec.v ~baseline_scale:nb [| 40. |])
         ~laws:[| Arrivals.Exponential |] ~scale:nb ~horizon ~seed:22)
  in
  let events = pre @ post in
  let plain = Rate_estimator.observe_all (Rate_estimator.create ~levels:1 ()) events in
  let decayed =
    Rate_estimator.observe_all
      (Rate_estimator.create ~half_life:(0.5 *. 86_400. *. nb) ~levels:1 ())
      events
  in
  let plain_rate = Rate_estimator.rate_per_day plain ~level:1 ~baseline_scale:nb in
  let decayed_rate = Rate_estimator.rate_per_day decayed ~level:1 ~baseline_scale:nb in
  Alcotest.(check bool)
    (Printf.sprintf "EWMA %.1f/day nearer 40 than MLE %.1f/day" decayed_rate plain_rate)
    true
    (Float.abs (decayed_rate -. 40.) < Float.abs (plain_rate -. 40.));
  Alcotest.(check bool) "raw histories unaffected by decay" true
    (Rate_estimator.exposure decayed = Rate_estimator.exposure plain
    && Rate_estimator.total_count decayed = Rate_estimator.total_count plain)

(* ---------------- cost estimator ---------------- *)

let test_welford_matches_two_pass () =
  let rng = Rng.of_int 13 in
  let durations =
    Array.init 257 (fun _ -> 5. +. Ckpt_numerics.Dist.exponential rng ~rate:0.3)
  in
  let events =
    Telemetry.Run_start { at = 0.; scale = 1e4; levels = 1 }
    :: Array.to_list
         (Array.mapi
            (fun i d -> Telemetry.Ckpt { at = float_of_int i *. 100.; level = 1; duration = d })
            durations)
  in
  let t = Cost_estimator.observe_all (Cost_estimator.create ~levels:1 ()) events in
  Alcotest.(check int) "count" (Array.length durations) (Cost_estimator.ckpt_count t ~level:1);
  approx ~tol:1e-12 "mean matches two-pass" (Ckpt_numerics.Stats.mean durations)
    (Cost_estimator.ckpt_mean t ~level:1);
  approx ~tol:1e-10 "variance matches two-pass" (Ckpt_numerics.Stats.variance durations)
    (Cost_estimator.ckpt_variance t ~level:1)

let test_cost_calibration () =
  let prior = [| Level.v ~name:"l1" (Overhead.constant 10.) |] in
  let obs d n =
    [ Telemetry.Run_start { at = 0.; scale = 1e4; levels = 1 } ]
    @ List.init n (fun i -> Telemetry.Ckpt { at = float_of_int i; level = 1; duration = d })
  in
  (* Below min_samples: law unchanged. *)
  let few = Cost_estimator.observe_all (Cost_estimator.create ~levels:1 ()) (obs 25. 2) in
  let unchanged = Cost_estimator.calibrated_levels few ~prior in
  approx "too few samples leaves the prior" 10. (Overhead.cost unchanged.(0).Level.ckpt 1e4);
  (* Enough samples: rescaled to reproduce the observed mean. *)
  let enough = Cost_estimator.observe_all (Cost_estimator.create ~levels:1 ()) (obs 25. 8) in
  let fitted = Cost_estimator.calibrated_levels enough ~prior in
  approx "reproduces observed mean at observed scale" 25. (Overhead.cost fitted.(0).Level.ckpt 1e4)

(* ---------------- drift detector ---------------- *)

let drift_interarrivals ~rate ~count ~seed =
  let rng = Rng.of_int seed in
  List.init count (fun _ -> Ckpt_numerics.Dist.exponential rng ~rate)

let test_drift_silent_in_control () =
  let rate = 1e-3 in
  let d = A.Drift.create ~rate () in
  let d =
    List.fold_left A.Drift.observe d (drift_interarrivals ~rate ~count:300 ~seed:31)
  in
  Alcotest.(check bool) "no alarm at the null rate" false (A.Drift.alarmed d)

let test_drift_fires_on_shift () =
  let rate = 1e-3 in
  let d = A.Drift.create ~rate () in
  let d =
    List.fold_left A.Drift.observe d (drift_interarrivals ~rate:(10. *. rate) ~count:50 ~seed:32)
  in
  Alcotest.(check bool) "alarm on a 10x rate increase" true (A.Drift.alarmed d);
  let d = A.Drift.reset d ~rate:(10. *. rate) in
  Alcotest.(check bool) "reset clears the alarm" false (A.Drift.alarmed d)

let test_drift_fires_on_improvement () =
  let rate = 1e-3 in
  let d = A.Drift.create ~rate () in
  let d =
    List.fold_left A.Drift.observe d (drift_interarrivals ~rate:(rate /. 10.) ~count:50 ~seed:33)
  in
  Alcotest.(check bool) "alarm on a 10x rate decrease" true (A.Drift.alarmed d)

(* ---------------- controller ---------------- *)

let controller_problem = mk_problem ~te_days:3e4 ~rates:"4-3-2-1" ()

let telemetry_of ~spec ~seed problem =
  let problem = { problem with Optimizer.spec = spec } in
  let plan = Optimizer.ml_opt_scale problem in
  let config = Ckpt_sim.Run_config.of_plan ~problem ~plan () in
  fst (Telemetry.of_run ~seed config)

(* [runs] successive executions spliced into one global-time stream (the
   estimators accrue no exposure across the inter-run gaps). *)
let telemetry_of_runs ~spec ~seed ~runs problem =
  let rec go clock acc j =
    if j = runs then List.concat (List.rev acc)
    else
      let events = telemetry_of ~spec ~seed:(seed + (j * 101)) problem in
      let shifted = List.map (fun e -> Telemetry.shift e ~by:clock) events in
      let last = List.fold_left (fun _ e -> Telemetry.at e) clock shifted in
      go (last +. 3600.) (shifted :: acc) (j + 1)
  in
  go 0. [] 0

let test_hysteresis_no_replan_in_band () =
  (* Telemetry drawn from the very rates the controller believes: any
     apparent improvement is sampling noise, and no seed may replan.
     The defaults alone do not guarantee that — eight failures can mean
     zero at the PFS level, and a zero-rate level makes dropping its
     checkpoints look like a large win — so the test runs the controller
     the way a production deployment would: an evidence gate high enough
     for per-level counts and prior shrinkage worth roughly one run of
     exposure to damp early zeros. *)
  let config =
    { (A.Controller.default_config controller_problem) with
      A.Controller.improvement_threshold = 0.05;
      min_failures = 30;
      prior_strength = 1e10 }
  in
  List.iter
    (fun seed ->
      let state = A.Controller.init config in
      let events =
        telemetry_of_runs ~spec:controller_problem.Optimizer.spec ~seed ~runs:6
          controller_problem
      in
      let state, actions = A.Controller.step_all state events in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no replan on matched telemetry" seed)
        0 (List.length actions);
      Alcotest.(check bool) "the gate did evaluate" true (A.Controller.evaluations state > 0))
    [ 1; 2; 3; 4; 5 ]

let test_controller_replans_on_shift () =
  let config = A.Controller.default_config controller_problem in
  let state = A.Controller.init config in
  let shifted = Spec.of_string ~baseline_scale:nb "4-3-2-24" in
  let events = telemetry_of ~spec:shifted ~seed:2 controller_problem in
  let state, actions = A.Controller.step_all state events in
  Alcotest.(check bool) "replanned under 24x PFS rates" true (A.Controller.replans state >= 1);
  match List.rev actions with
  | A.Controller.Replanned { improvement; plan; _ } :: _ ->
      Alcotest.(check bool) "claimed improvement above threshold" true
        (improvement > config.A.Controller.improvement_threshold);
      let fitted_pfs =
        (A.Controller.estimates state).Optimizer.spec.Spec.rates_per_day.(3)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fitted PFS rate %.1f/day reflects the shift" fitted_pfs)
        true (fitted_pfs > 6.);
      Alcotest.(check bool) "re-planned scale moved down" true
        (plan.Optimizer.n < (A.Controller.plan (A.Controller.init config)).Optimizer.n)
  | _ -> Alcotest.fail "expected at least one Replanned action"

let test_min_failures_gate () =
  let config =
    { (A.Controller.default_config controller_problem) with A.Controller.min_failures = max_int }
  in
  let state = A.Controller.init config in
  let shifted = Spec.of_string ~baseline_scale:nb "4-3-2-24" in
  let events = telemetry_of ~spec:shifted ~seed:2 controller_problem in
  let state, actions = A.Controller.step_all state events in
  Alcotest.(check int) "gate closed: no evaluation" 0 (A.Controller.evaluations state);
  Alcotest.(check int) "gate closed: no action" 0 (List.length actions)

(* ---------------- closed loop ---------------- *)

let test_closed_loop_adaptive_beats_static () =
  let scenario = A.Closed_loop.demo_scenario () in
  let seed = 1 in
  let static = A.Closed_loop.run ~seed scenario A.Closed_loop.Static in
  let adaptive =
    A.Closed_loop.run ~seed scenario
      (A.Closed_loop.Adaptive (A.Controller.default_config scenario.A.Closed_loop.problem))
  in
  let oracle = A.Closed_loop.run ~seed scenario A.Closed_loop.Oracle in
  List.iter
    (fun (r : A.Closed_loop.result) ->
      Alcotest.(check bool) (r.A.Closed_loop.policy ^ " completed") true r.A.Closed_loop.completed)
    [ static; adaptive; oracle ];
  Alcotest.(check bool) "the adaptive policy replanned" true (adaptive.A.Closed_loop.replans >= 1);
  Alcotest.(check int) "the static policy never replans" 0 static.A.Closed_loop.replans;
  let s = A.Closed_loop.regret static ~oracle in
  let a = A.Closed_loop.regret adaptive ~oracle in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive regret %.1f%% below static regret %.1f%%" (100. *. a) (100. *. s))
    true (a < s);
  Alcotest.(check bool) "adaptive strictly faster than static" true
    (adaptive.A.Closed_loop.wall_clock < static.A.Closed_loop.wall_clock)

(* ---------------- service integration ---------------- *)

let test_service_adaptive_round_trip () =
  let service = Ckpt_service.Service.create ~workers:0 () in
  Fun.protect ~finally:(fun () -> Ckpt_service.Service.shutdown service) @@ fun () ->
  let problem = mk_problem ~te_days:1e4 ~rates:"4-3-2-1" () in
  let problem_json = Json.to_string (Codec.problem_to_json problem) in
  (* estimate before any observe: structured no-telemetry error *)
  let r = Ckpt_service.Service.handle_line service {|{"op":"estimate"}|} in
  (match Ckpt_service.Protocol.response_error r with
  | Some e -> Alcotest.(check string) "error code" "no-telemetry" e.Ckpt_service.Protocol.code
  | None -> Alcotest.fail "estimate before observe must fail");
  let events = telemetry_of ~spec:(Spec.of_string ~baseline_scale:nb "4-3-2-24") ~seed:4 problem in
  let events_json =
    Json.to_string (Json.List (List.map Telemetry.to_json events))
  in
  let responses =
    Ckpt_service.Service.handle_batch service
      [ Printf.sprintf {|{"op":"observe","events":%s}|} events_json;
        {|{"op":"estimate","baseline_scale":1e5}|};
        Printf.sprintf {|{"op":"replan","problem":%s}|} problem_json;
        {|{"op":"stats"}|} ]
  in
  List.iter
    (fun r ->
      if not (Ckpt_service.Protocol.response_ok r) then
        Alcotest.failf "response not ok: %s" (Json.to_string r))
    responses;
  match responses with
  | [ _; estimate; replan; stats ] ->
      let member path json =
        match Json.member path json with Some v -> v | None -> Alcotest.failf "missing %s" path
      in
      let rates = member "rates" (member "estimate" estimate) in
      (match rates with
      | Json.List l -> Alcotest.(check int) "one fitted rate per level" 4 (List.length l)
      | _ -> Alcotest.fail "rates not a list");
      let fitted = member "fitted_problem" replan in
      (match Json.member "rates_per_day" fitted with
      | Some (Json.List _) -> ()
      | _ -> Alcotest.fail "fitted problem carries its rates");
      (match Json.member "plan" replan with
      | Some _ -> ()
      | None -> Alcotest.fail "replan carries a plan");
      let stats = member "stats" stats in
      (match Json.to_int (member "replans" stats) with
      | Some n -> Alcotest.(check bool) "stats counted the replan" true (n >= 1)
      | None -> Alcotest.fail "replans not an int");
      (match Json.member "p95" (member "replan_ms" stats) with
      | Some (Json.Number _) -> ()
      | _ -> Alcotest.fail "replan_ms series exposes p95")
  | _ -> Alcotest.fail "expected four responses"

(* ---------------- suites ---------------- *)

let () =
  Alcotest.run "ckpt_adaptive"
    [ ("telemetry",
       [ Alcotest.test_case "read_lines errors and blanks" `Quick test_read_lines_errors ]);
      ("rates",
       [ Alcotest.test_case "exposure accounting" `Quick test_exposure_accounting;
         Alcotest.test_case "empirical CI coverage" `Slow test_empirical_coverage;
         Alcotest.test_case "Weibull mean-rate recovery" `Slow test_weibull_mle_recovers_mean_rate;
         Alcotest.test_case "Garwood bound at zero failures" `Quick test_garwood_zero_failures;
         Alcotest.test_case "prior shrinkage" `Quick test_to_spec_prior_shrinkage;
         Alcotest.test_case "EWMA tracks a rate shift" `Quick test_ewma_tracks_shift ]);
      ("costs",
       [ Alcotest.test_case "Welford matches two-pass" `Quick test_welford_matches_two_pass;
         Alcotest.test_case "calibration gates and rescales" `Quick test_cost_calibration ]);
      ("drift",
       [ Alcotest.test_case "silent in control" `Quick test_drift_silent_in_control;
         Alcotest.test_case "fires on degradation" `Quick test_drift_fires_on_shift;
         Alcotest.test_case "fires on improvement" `Quick test_drift_fires_on_improvement ]);
      ("controller",
       [ Alcotest.test_case "hysteresis holds in the noise band" `Quick
           test_hysteresis_no_replan_in_band;
         Alcotest.test_case "replans on a real shift" `Quick test_controller_replans_on_shift;
         Alcotest.test_case "min-failures gate" `Quick test_min_failures_gate ]);
      ("closed-loop",
       [ Alcotest.test_case "adaptive beats static under drift" `Slow
           test_closed_loop_adaptive_beats_static ]);
      ("service",
       [ Alcotest.test_case "observe/estimate/replan round-trip" `Quick
           test_service_adaptive_round_trip ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest qcheck_telemetry_round_trip;
         (* Fixed seed: each random trial has a small (~0.1%) chance the
            99.9% interval excludes the truth, so 60 trials under a fresh
            seed fail a few percent of the time.  The sharp coverage
            statement is the empirical test; this one just needs a
            reproducible sample of seeds. *)
         QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| 0x5eed |])
           qcheck_mle_ci_covers_exponential ]) ]
