(* Tests for the write-ahead durability layer: WAL framing and
   group-commit semantics, torn/garbage-tail truncation, rotation and
   snapshot-cut compaction, fsync-failure refusal, the exhaustive
   crash-point sweep and its qcheck generalization (restarted state is
   byte-identical to an oracle that processed exactly the durable
   prefix), a seeded 10%-fault durability soak that loses zero acked
   ops, Durable recovery hygiene (tmp cleanup, corrupt-only WAL dirs),
   the model-driven auto-tuner, and the server integration (health in
   stats, stop-mid-snapshot, op-granularity kill-and-restart). *)

open Ckpt_model
open Ckpt_net
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol
module Chaos = Ckpt_chaos.Chaos
module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec
module Synth = Ckpt_calibrate.Synth

(* ---------------- request lines ---------------- *)

let mk_problem ?(te_days = 1e4) ?(kappa = 0.46) ?(n_star = 1e5) ?(alloc = 60.)
    ?(rates = "16-12-8-4") ?(levels = Level.fti_fusion) () =
  { Optimizer.te = te_days *. 86_400.;
    speedup = Speedup.quadratic ~kappa ~n_star;
    levels;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:n_star rates }

let problem_pool =
  Array.init 4 (fun i -> mk_problem ~te_days:(1e4 +. (500. *. float_of_int i)) ())

let observe_line i =
  let t0 = float_of_int i *. 1e4 in
  let ev fields = Json.Obj fields in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "observe");
         ( "events",
           Json.List
             [ ev [ ("t", Json.Number t0); ("ev", Json.String "start");
                    ("scale", Json.Number 1e5); ("levels", Json.Number 4.) ];
               ev [ ("t", Json.Number (t0 +. 7200.)); ("ev", Json.String "compute");
                    ("dur", Json.Number 7200.);
                    ("productive", Json.Number (7000. +. float_of_int (i mod 7))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "ckpt");
                    ("level", Json.Number (float_of_int (1 + (i mod 4))));
                    ("dur", Json.Number (25. +. float_of_int (i mod 3))) ];
               ev [ ("t", Json.Number (t0 +. 7230.)); ("ev", Json.String "end");
                    ("completed", Json.Bool true) ] ] ) ])

let estimate_line i =
  Json.to_string
    (Json.Obj [ ("id", Json.Number (float_of_int i)); ("op", Json.String "estimate") ])

let replan_line i =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number (float_of_int i)); ("op", Json.String "replan");
         ("problem", Codec.problem_to_json problem_pool.(i mod Array.length problem_pool)) ])

(* One calibrate line over a deterministic synthetic SCR session — the
   third stateful op kind the WAL covers. *)
let calibrate_line =
  lazy
    (let lines =
       Synth.session_lines ~runs:2 ~seed:42 (Synth.demo_config (Synth.demo_problem ()))
     in
     Json.to_string
       (Json.Obj
          [ ("id", Json.String "cal"); ("op", Json.String "calibrate");
            ("problem", Codec.problem_to_json (Synth.demo_problem ()));
            ("log", Json.List (List.map (fun s -> Json.String s) lines)) ]))

(* The crash-point streams are all-stateful on purpose: every line gets
   one WAL record, so record [seq = i + 1] is exactly [List.nth stream i]
   whenever no fault skips a sequence number. *)
let stateful_stream () =
  [ observe_line 0; observe_line 1; replan_line 0; Lazy.force calibrate_line;
    observe_line 2; replan_line 1 ]

let response_ok line =
  match Json.parse_result line with
  | Ok json -> Protocol.response_ok json
  | Error _ -> false

(* ---------------- harness ---------------- *)

let with_service f =
  let service = Service.create ~workers:0 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) (fun () -> f service)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckpt-wal-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let durable_config ?snapshot_dir ?(batch = 1) ~wal_dir () =
  Durable.config ?snapshot_dir
    ~wal:(Wal.config ~fsync_batch:batch ~dir:wal_dir ()) ()

type life = {
  acked : string list;  (* lines answered ok, in order *)
  crashed : bool;
  steps : int;  (* durability steps consulted *)
}

(* One server life driven in-process: create the durability layer
   (recovery included), feed [stream] through the service, cut a
   snapshot after each op index in [cuts], and end with {!Durable.abort}
   — the kill -9 equivalent.  [fault (step, op)] decides each durability
   step's fate; an injected crash anywhere unwinds to here, exactly like
   process death. *)
let run_life ?(fault = fun _ -> None) ?(cuts = []) ?(batch = 1) ?snapshot_dir
    ~wal_dir ~stream () =
  let step = ref (-1) in
  let inject ~op =
    incr step;
    fault (!step, op)
  in
  with_service @@ fun service ->
  let cfg = durable_config ?snapshot_dir ~batch ~wal_dir () in
  match Durable.create ~inject cfg service with
  | exception Wal.Injected_crash _ -> { acked = []; crashed = true; steps = !step + 1 }
  | Error m -> Alcotest.failf "Durable.create failed: %s" m
  | Ok d ->
      let acked = ref [] in
      let crashed = ref false in
      (try
         List.iteri
           (fun i line ->
             let r = Service.handle_line_string service line in
             if response_ok r then acked := line :: !acked;
             if List.mem i cuts then ignore (Durable.cut d ~service ~seq:(i + 1)))
           stream
       with Wal.Injected_crash _ -> crashed := true);
      Durable.abort d;
      { acked = List.rev !acked; crashed = !crashed; steps = !step + 1 }

(* What survives on disk, as (seq, line) pairs plus the snapshot's
   watermark.  Everything at or below the watermark is folded into the
   snapshot even if compaction already deleted its WAL segment. *)
let disk_state ?snapshot_dir ~wal_dir () =
  let watermark =
    match snapshot_dir with
    | None -> 0
    | Some dir -> (
        match Snapshot.load_latest ~dir () with
        | Some s -> s.Snapshot.wal_seq
        | None -> 0)
  in
  (watermark, Wal.load ~dir:wal_dir ())

(* Session-state probes: estimate is a pure function of the telemetry
   session, replan re-solves from it (never cached), so byte equality
   here means the estimators and their downstream plans are identical. *)
let probe_responses service =
  List.map
    (Service.handle_line_string service)
    [ estimate_line 100; replan_line 0; estimate_line 101 ]

let oracle_responses lines =
  with_service @@ fun service ->
  List.iter (fun l -> ignore (Service.handle_line_string service l)) lines;
  probe_responses service

let restarted_responses ?snapshot_dir ~wal_dir () =
  with_service @@ fun service ->
  let cfg = durable_config ?snapshot_dir ~wal_dir () in
  match Durable.create cfg service with
  | Error m -> Alcotest.failf "restart Durable.create failed: %s" m
  | Ok d ->
      let r = probe_responses service in
      Durable.abort d;
      r

let is_prefix_of xs ys =
  let rec walk = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && walk (xs, ys)
  in
  walk (xs, ys)

(* ---------------- wal unit tests ---------------- *)

let payloads =
  [ "{\"op\":\"observe\"}"; "x"; String.make 300 'q'; "unicode \xc3\xa9\xc2\xb5";
    "{\"op\":\"replan\",\"id\":4}"; "tail" ]

let append_all w lines =
  List.map
    (fun l ->
      match Wal.append w l with
      | Ok seq -> seq
      | Error m -> Alcotest.failf "append failed: %s" m)
    lines

let test_wal_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let wal_dir = Filename.concat dir "wal" in
  (match Wal.open_ (Wal.config ~dir:wal_dir ()) ~next_seq:1 with
  | Error m -> Alcotest.failf "open failed: %s" m
  | Ok w ->
      let seqs = append_all w payloads in
      Alcotest.(check (list int)) "dense seqs" [ 1; 2; 3; 4; 5; 6 ] seqs;
      Alcotest.(check int) "synced (batch 1)" 6 (Wal.synced_seq w);
      Wal.close w);
  let scan = Wal.load ~dir:wal_dir () in
  Alcotest.(check (list string)) "payloads byte-identical" payloads
    (List.map snd scan.Wal.records);
  Alcotest.(check (list int)) "seqs in order" [ 1; 2; 3; 4; 5; 6 ]
    (List.map fst scan.Wal.records);
  Alcotest.(check int) "last_seq" 6 scan.Wal.last_seq;
  Alcotest.(check int) "nothing dropped" 0 scan.Wal.dropped_records;
  (* A second life opens a fresh segment past everything on disk. *)
  match Wal.open_ (Wal.config ~dir:wal_dir ()) ~next_seq:(scan.Wal.last_seq + 1) with
  | Error m -> Alcotest.failf "reopen failed: %s" m
  | Ok w ->
      ignore (append_all w [ "late" ]);
      Wal.close w;
      let scan = Wal.load ~dir:wal_dir () in
      Alcotest.(check (list string)) "old + new" (payloads @ [ "late" ])
        (List.map snd scan.Wal.records)

let test_wal_group_commit () =
  with_tmp_dir @@ fun dir ->
  let wal_dir = Filename.concat dir "wal" in
  match Wal.open_ (Wal.config ~fsync_batch:3 ~dir:wal_dir ()) ~next_seq:1 with
  | Error m -> Alcotest.failf "open failed: %s" m
  | Ok w ->
      List.iter (fun i -> ignore (append_all w [ string_of_int i ]))
        [ 1; 2; 3; 4; 5; 6; 7 ];
      Alcotest.(check int) "fsync at each batch boundary" 2 (Wal.fsyncs w);
      Alcotest.(check int) "synced up to the last boundary" 6 (Wal.synced_seq w);
      (* The written-but-unsynced record is on disk (readable) already:
         a crash here cannot unwrite it, only a torn write could. *)
      let scan = Wal.load ~dir:wal_dir () in
      Alcotest.(check int) "written tail visible" 7 scan.Wal.last_seq;
      (match Wal.flush w with
      | Ok () -> ()
      | Error m -> Alcotest.failf "flush failed: %s" m);
      Alcotest.(check int) "flush syncs the tail" 7 (Wal.synced_seq w);
      Alcotest.(check int) "third fsync" 3 (Wal.fsyncs w);
      Wal.close w

let test_wal_rotation_and_retire () =
  with_tmp_dir @@ fun dir ->
  let wal_dir = Filename.concat dir "wal" in
  (* segment_bytes = 1: every append rotates first, one record per
     segment — compaction's worst case. *)
  match Wal.open_ (Wal.config ~segment_bytes:1 ~dir:wal_dir ()) ~next_seq:1 with
  | Error m -> Alcotest.failf "open failed: %s" m
  | Ok w ->
      ignore (append_all w [ "a"; "b"; "c"; "d" ]);
      Alcotest.(check bool) "rotated into several segments" true (Wal.segments w > 2);
      let deleted = Wal.retire w ~upto:2 in
      Alcotest.(check bool) "retired the covered segments" true (deleted >= 2);
      let scan = Wal.load ~dir:wal_dir () in
      Alcotest.(check (list string)) "suffix survives compaction" [ "c"; "d" ]
        (List.map snd scan.Wal.records);
      (* Retire is idempotent: nothing left at or below the watermark. *)
      Alcotest.(check int) "second retire is a no-op" 0 (Wal.retire w ~upto:2);
      ignore (append_all w [ "e" ]);
      Wal.close w;
      let scan = Wal.load ~dir:wal_dir () in
      Alcotest.(check (list string)) "appends continue after compaction"
        [ "c"; "d"; "e" ]
        (List.map snd scan.Wal.records)

(* Truncating the log at any byte yields exactly the records whose
   frames fit, and never raises. *)
let test_wal_torn_tail =
  QCheck.Test.make ~count:120 ~name:"wal load truncates at the first torn record"
    QCheck.(int_range 0 2000)
    (fun cut ->
      with_tmp_dir @@ fun dir ->
      let wal_dir = Filename.concat dir "wal" in
      let seg =
        match Wal.open_ (Wal.config ~dir:wal_dir ()) ~next_seq:1 with
        | Error m -> Alcotest.failf "open failed: %s" m
        | Ok w ->
            ignore (append_all w payloads);
            Wal.close w;
            Filename.concat wal_dir
              (List.find (fun f -> f <> "." && f <> "..")
                 (Array.to_list (Sys.readdir wal_dir)))
      in
      let image = In_channel.with_open_bin seg In_channel.input_all in
      let cut = min cut (String.length image) in
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_string oc (String.sub image 0 cut));
      (* Expected: every record whose full frame (header + payload + \n)
         lies within [cut] bytes. *)
      let expected =
        let rec walk off acc = function
          | [] -> List.rev acc
          | (seq, p) :: rest ->
              let frame_len =
                String.length
                  (Printf.sprintf "W %d %d %08x\n%s\n" seq (String.length p)
                     (Crc32.string p) p)
              in
              if off + frame_len <= cut then walk (off + frame_len) (p :: acc) rest
              else List.rev acc
        in
        walk 0 [] (List.mapi (fun i p -> (i + 1, p)) payloads)
      in
      let scan = Wal.load ~dir:wal_dir () in
      List.map snd scan.Wal.records = expected
      && (cut = String.length image || scan.Wal.dropped_records + 1 >= 1))

let test_wal_corruption_prefix =
  QCheck.Test.make ~count:200
    ~name:"wal load survives any single-byte corruption with a payload prefix"
    QCheck.(pair (int_range 0 100_000) (int_range 0 255))
    (fun (pos, byte) ->
      with_tmp_dir @@ fun dir ->
      let wal_dir = Filename.concat dir "wal" in
      let seg =
        match Wal.open_ (Wal.config ~dir:wal_dir ()) ~next_seq:1 with
        | Error m -> Alcotest.failf "open failed: %s" m
        | Ok w ->
            ignore (append_all w payloads);
            Wal.close w;
            Filename.concat wal_dir
              (List.find (fun f -> f <> "." && f <> "..")
                 (Array.to_list (Sys.readdir wal_dir)))
      in
      let image = In_channel.with_open_bin seg In_channel.input_all in
      let pos = pos mod String.length image in
      let b = Bytes.of_string image in
      QCheck.assume (Bytes.get b pos <> Char.chr byte);
      Bytes.set b pos (Char.chr byte);
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_string oc (Bytes.to_string b));
      match Wal.load ~dir:wal_dir () with
      | scan -> is_prefix_of (List.map snd scan.Wal.records) payloads
      | exception e -> Alcotest.failf "load raised %s" (Printexc.to_string e))

let test_wal_fsync_failure_refuses_op () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  let stream = [ observe_line 0; observe_line 1; observe_line 2 ] in
  (* Step 0 is the startup segment-create; op i's append consult is step
     1 + 2i under batch 1.  Fail the second op's fsync. *)
  let refused_step = 3 in
  let life =
    run_life
      ~fault:(fun (step, _) -> if step = refused_step then Some Chaos.Fsync_fail else None)
      ~wal_dir ~stream ()
  in
  Alcotest.(check bool) "no crash: a refused op is not a death" false life.crashed;
  Alcotest.(check (list string)) "ops 1 and 3 acked, op 2 refused"
    [ observe_line 0; observe_line 2 ] life.acked;
  let scan = Wal.load ~dir:wal_dir () in
  (* The refused record was erased; its sequence number is burned, not
     reused — reuse could collide with a snapshot watermark that already
     covers it. *)
  Alcotest.(check (list int)) "seq gap where the refused op was" [ 1; 3 ]
    (List.map fst scan.Wal.records);
  Alcotest.(check (list string)) "restart equals the acked-only oracle"
    (oracle_responses [ observe_line 0; observe_line 2 ])
    (restarted_responses ~wal_dir ())

(* The refused op must answer with the durability error code. *)
let test_fsync_failure_error_code () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  with_service @@ fun service ->
  let step = ref (-1) in
  let inject ~op:_ =
    incr step;
    if !step = 1 then Some Chaos.Fsync_fail else None
  in
  match Durable.create ~inject (durable_config ~wal_dir ()) service with
  | Error m -> Alcotest.failf "create failed: %s" m
  | Ok d ->
      let r = Json.parse (Service.handle_line_string service (observe_line 0)) in
      Alcotest.(check bool) "not ok" false (Protocol.response_ok r);
      Alcotest.(check (option string)) "code durability" (Some "durability")
        (match Json.member "error" r with
        | Some e -> Json.string_field "code" e
        | None -> None);
      (* The log stays usable: the next op is accepted. *)
      let r2 = Service.handle_line_string service (observe_line 1) in
      Alcotest.(check bool) "wal usable after a refused op" true (response_ok r2);
      let p = Durable.persistence d in
      Alcotest.(check bool) "error counted" true (p.Durable.wal_errors >= 1);
      Alcotest.(check bool) "error surfaced" true (p.Durable.last_error <> None);
      Durable.abort d

(* ---------------- the crash-point property ---------------- *)

(* Exhaustive sweep: inject a crash (even steps) or torn write (odd
   steps) at every durability step across append, fsync, snapshot
   stages, segment rotation and compaction.  After each crash the
   restarted state must equal an oracle that processed exactly the
   durable prefix — and the acked ops are always within that prefix. *)
let test_crash_point_sweep () =
  let stream = stateful_stream () in
  let cuts = [ 2; 4 ] in
  let baseline_steps =
    with_tmp_dir @@ fun root ->
    let wal_dir = Filename.concat root "wal" in
    let snapshot_dir = Filename.concat root "snap" in
    let life = run_life ~cuts ~snapshot_dir ~wal_dir ~stream () in
    Alcotest.(check bool) "baseline does not crash" false life.crashed;
    Alcotest.(check int) "baseline acks everything" (List.length stream)
      (List.length life.acked);
    life.steps
  in
  Alcotest.(check bool) "the run has many crash points" true (baseline_steps > 15);
  let crashes = ref 0 in
  for k = 0 to baseline_steps + 1 do
    with_tmp_dir @@ fun root ->
    let wal_dir = Filename.concat root "wal" in
    let snapshot_dir = Filename.concat root "snap" in
    let kind = if k mod 2 = 0 then Chaos.Crash else Chaos.Torn in
    let life =
      run_life
        ~fault:(fun (step, _) -> if step = k then Some kind else None)
        ~cuts ~snapshot_dir ~wal_dir ~stream ()
    in
    if life.crashed then incr crashes;
    let watermark, scan = disk_state ~snapshot_dir ~wal_dir () in
    (* Only crash/torn faults here, so sequence numbers are dense and
       positional: record seq i+1 is stream line i. *)
    let m = List.fold_left (fun a (seq, _) -> max a seq) watermark scan.Wal.records in
    let durable = List.filteri (fun i _ -> i < m) stream in
    Alcotest.(check bool)
      (Printf.sprintf "crash point %d: acked ops are durable" k)
      true
      (List.length life.acked <= m && is_prefix_of life.acked durable);
    Alcotest.(check (list string))
      (Printf.sprintf "crash point %d: restart equals the durable-prefix oracle" k)
      (oracle_responses durable)
      (restarted_responses ~snapshot_dir ~wal_dir ())
  done;
  Alcotest.(check bool) "the sweep actually killed some lives" true (!crashes > 10)

(* The qcheck generalization: any fault kind, any step, any group-commit
   batch.  Without snapshots the durable lines are exactly the WAL
   payloads on disk, whatever sequence gaps refusals left behind; an
   acked op may be lost only through the documented relaxed-batch
   window, never more than batch - 1 of them. *)
let test_crash_point_qcheck =
  QCheck.Test.make ~count:50
    ~name:"restart equals the durable-prefix oracle at any injected fault"
    QCheck.(triple (int_range 0 16) (int_range 0 3) (int_range 1 3))
    (fun (k, kind_i, batch) ->
      let kind =
        [| Chaos.Crash; Chaos.Torn; Chaos.Short_write; Chaos.Fsync_fail |].(kind_i)
      in
      let stream = stateful_stream () in
      with_tmp_dir @@ fun root ->
      let wal_dir = Filename.concat root "wal" in
      let life =
        run_life
          ~fault:(fun (step, _) -> if step = k then Some kind else None)
          ~batch ~wal_dir ~stream ()
      in
      let _, scan = disk_state ~wal_dir () in
      let durable = List.map snd scan.Wal.records in
      let lost =
        List.filter (fun line -> not (List.mem line durable)) life.acked
      in
      List.length lost <= batch - 1
      && oracle_responses durable = restarted_responses ~wal_dir ())

(* ---------------- durability soak ---------------- *)

(* 10% of durability steps fault (seeded, deterministic); lives are
   killed and restarted until 48 ops have been attempted, snapshots cut
   (and segments compacted) along the way.  Zero acked ops may be lost,
   and the final restart must equal an oracle that processed every
   durable record in order. *)
let test_durability_soak () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  let snapshot_dir = Filename.concat root "snap" in
  let chaos = Chaos.create (Chaos.spec ~seed:41 ~rate:0. ~durability_rate:0.1 ()) in
  let step = ref (-1) in
  let inject ~op:_ =
    incr step;
    Chaos.durability_fault chaos ~index:!step
  in
  let total_ops = 48 in
  let soak_line i = if i mod 5 = 4 then replan_line i else observe_line i in
  (* The journal accumulates every record ever seen on disk, keyed by
     seq — merged before each compaction cut so retired segments cannot
     take their payload text with them. *)
  let journal : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let merge_scan () =
    let scan = Wal.load ~dir:wal_dir () in
    List.iter (fun (seq, line) -> Hashtbl.replace journal seq line) scan.Wal.records
  in
  let acked = ref [] in
  let op_i = ref 0 in
  let crashes = ref 0 in
  let lives = ref 0 in
  while !op_i < total_ops && !lives < 100 do
    incr lives;
    with_service (fun service ->
        let cfg = durable_config ~snapshot_dir ~wal_dir () in
        match Durable.create ~inject cfg service with
        | exception Wal.Injected_crash _ -> incr crashes
        | Error m -> Alcotest.failf "soak create failed: %s" m
        | Ok d -> (
            try
              while !op_i < total_ops do
                let line = soak_line !op_i in
                incr op_i;
                let r = Service.handle_line_string service line in
                if response_ok r then acked := line :: !acked;
                if !op_i mod 6 = 0 then begin
                  merge_scan ();
                  ignore (Durable.cut d ~service ~seq:!op_i)
                end
              done;
              Durable.abort d
            with Wal.Injected_crash _ ->
              incr crashes;
              Durable.abort d));
    merge_scan ()
  done;
  Alcotest.(check int) "every op was attempted" total_ops !op_i;
  Alcotest.(check bool) "the soak injected real crashes" true (!crashes > 0);
  Alcotest.(check bool) "and most ops were acked" true
    (List.length !acked > total_ops / 2);
  let durable =
    Hashtbl.fold (fun seq line acc -> (seq, line) :: acc) journal []
    |> List.sort compare |> List.map snd
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) "acked op never lost" true (List.mem line durable))
    !acked;
  Alcotest.(check (list string)) "final restart equals the durable oracle"
    (oracle_responses durable)
    (restarted_responses ~snapshot_dir ~wal_dir ())

(* ---------------- recovery hygiene ---------------- *)

let test_tmp_cleanup_on_restart () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  let snapshot_dir = Filename.concat root "snap" in
  Unix.mkdir snapshot_dir 0o755;
  Out_channel.with_open_bin (Filename.concat snapshot_dir "snapshot-000000000007.ckpt.tmp")
    (fun oc -> Out_channel.output_string oc "half a snapshot");
  with_service @@ fun service ->
  match Durable.create (durable_config ~snapshot_dir ~wal_dir ()) service with
  | Error m -> Alcotest.failf "create failed: %s" m
  | Ok d ->
      let p = Durable.persistence d in
      Alcotest.(check int) "leftover tmp removed and counted" 1 p.Durable.tmp_removed;
      Alcotest.(check bool) "tmp file gone" true
        (Sys.readdir snapshot_dir
        |> Array.for_all (fun f -> not (Filename.check_suffix f ".tmp")));
      Durable.abort d

let test_corrupt_only_wal_dir_starts_fresh () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  Unix.mkdir wal_dir 0o755;
  Out_channel.with_open_bin (Filename.concat wal_dir "wal-000000000001.log")
    (fun oc -> Out_channel.output_string oc "this is not a wal segment\n\x00garbage");
  let logged = ref [] in
  with_service @@ fun service ->
  match
    Durable.create
      ~log:(fun m -> logged := m :: !logged)
      (durable_config ~wal_dir ()) service
  with
  | Error m -> Alcotest.failf "corrupt-only dir must still start: %s" m
  | Ok d ->
      let p = Durable.persistence d in
      Alcotest.(check int) "nothing replayed" 0 p.Durable.replayed;
      Alcotest.(check bool) "skip counted" true (p.Durable.replay_dropped >= 1);
      Alcotest.(check bool) "skip logged" true (!logged <> []);
      let r = Service.handle_line_string service (observe_line 0) in
      Alcotest.(check bool) "fresh server accepts ops" true (response_ok r);
      Durable.abort d

let test_empty_wal_dir_cold_start () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  with_service @@ fun service ->
  match Durable.create (durable_config ~wal_dir ()) service with
  | Error m -> Alcotest.failf "missing dir must be a cold start: %s" m
  | Ok d ->
      let p = Durable.persistence d in
      Alcotest.(check int) "no replay" 0 p.Durable.replayed;
      Alcotest.(check bool) "wal on" true p.Durable.wal_enabled;
      Durable.abort d

let test_snapshot_failure_counted () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  let snapshot_dir = Filename.concat root "snap" in
  with_service @@ fun service ->
  let fail_next = ref true in
  let inject ~op =
    if op = "snapshot-fsync" && !fail_next then begin
      fail_next := false;
      Some Chaos.Fsync_fail
    end
    else None
  in
  match Durable.create ~inject (durable_config ~snapshot_dir ~wal_dir ()) service with
  | Error m -> Alcotest.failf "create failed: %s" m
  | Ok d ->
      ignore (Service.handle_line_string service (observe_line 0));
      (match Durable.cut d ~service ~seq:1 with
      | Ok _ -> Alcotest.fail "the injected fsync failure must fail the cut"
      | Error _ -> ());
      let p = Durable.persistence d in
      Alcotest.(check int) "failure counted" 1 p.Durable.snapshot_failures;
      Alcotest.(check bool) "failure surfaced" true (p.Durable.last_error <> None);
      (* A failed cut retires nothing: the WAL records survive. *)
      Alcotest.(check bool) "wal not compacted by a failed cut" true
        ((Wal.load ~dir:wal_dir ()).Wal.records <> []);
      (match Durable.cut d ~service ~seq:1 with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "the next cut must succeed: %s" m);
      let p = Durable.persistence d in
      Alcotest.(check int) "success counted" 1 p.Durable.snapshots_written;
      Alcotest.(check bool) "snapshot age tracked" true
        (p.Durable.last_snapshot_age_s >= 0.);
      Durable.abort d

(* ---------------- auto-tune ---------------- *)

let test_auto_tune () =
  let choice =
    Durable.auto_tune ~op_rate:1000. ~fsync_cost_s:1e-3 ~snapshot_cost_s:0.5
      ~crash_rate_per_day:24. ()
  in
  Alcotest.(check bool) "batch in range" true
    (choice.Durable.fsync_batch >= 1 && choice.Durable.fsync_batch <= 4096);
  Alcotest.(check bool) "snapshot interval at least the batch" true
    (choice.Durable.snapshot_interval >= choice.Durable.fsync_batch);
  Alcotest.(check bool) "overhead predicted and positive" true
    (Float.is_finite choice.Durable.predicted_overhead
    && choice.Durable.predicted_overhead > 0.);
  (* More failures -> checkpoint more often, on both levels: the
     paper's qualitative law, applied to the server itself. *)
  let risky =
    Durable.auto_tune ~op_rate:1000. ~fsync_cost_s:1e-3 ~snapshot_cost_s:0.5
      ~crash_rate_per_day:2400. ()
  in
  Alcotest.(check bool) "higher crash rate -> smaller fsync batch" true
    (risky.Durable.fsync_batch <= choice.Durable.fsync_batch);
  Alcotest.(check bool) "higher crash rate -> tighter snapshots" true
    (risky.Durable.snapshot_interval <= choice.Durable.snapshot_interval);
  (match Durable.auto_choice_json choice with
  | Json.Obj fields ->
      Alcotest.(check bool) "json carries the chosen intervals" true
        (List.mem_assoc "fsync_batch" fields && List.mem_assoc "snapshot_interval" fields)
  | _ -> Alcotest.fail "auto_choice_json must be an object");
  match Durable.auto_tune ~fsync_cost_s:1e-3 ~snapshot_cost_s:0.5 ~crash_rate_per_day:0. () with
  | _ -> Alcotest.fail "zero crash rate must be rejected"
  | exception Invalid_argument _ -> ()

let test_auto_measure () =
  with_tmp_dir @@ fun root ->
  let wal_dir = Filename.concat root "wal" in
  let snapshot_dir = Filename.concat root "snap" in
  (match Durable.measure_fsync_cost ~dir:wal_dir with
  | Ok cost -> Alcotest.(check bool) "fsync probe positive" true (cost >= 0.)
  | Error m -> Alcotest.failf "fsync probe failed: %s" m);
  Alcotest.(check bool) "probe file removed" true
    (Sys.readdir wal_dir |> Array.for_all (fun f -> f <> ".fsync-probe"));
  with_service @@ fun service ->
  ignore (Service.handle_line_string service (observe_line 0));
  match Durable.measure_snapshot_cost ~dir:snapshot_dir service with
  | Error m -> Alcotest.failf "snapshot probe failed: %s" m
  | Ok cost ->
      Alcotest.(check bool) "snapshot probe positive" true (cost >= 0.);
      Alcotest.(check bool) "the measured snapshot is real and loadable" true
        (Snapshot.load_latest ~dir:snapshot_dir () <> None)

(* ---------------- server integration ---------------- *)

let with_server ?(config = Server.default_config) f =
  with_service @@ fun service ->
  let server = Server.start ~config service in
  Fun.protect ~finally:(fun () -> Server.stop server; Server.join server)
    (fun () -> f service server)

type client = { fd : Unix.file_descr; reader : Frame.reader }

let connect server =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 20.;
  { fd; reader = Frame.reader fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let ask_exn c what line =
  Frame.write_line c.fd line;
  match Frame.read_line c.reader with
  | Frame.Line l -> l
  | Frame.Eof | Frame.Timeout | Frame.Oversized ->
      Alcotest.failf "%s: connection closed or timed out" what

let with_client server f =
  let c = connect server in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)

let test_server_stats_durability () =
  with_tmp_dir @@ fun root ->
  let config =
    { Server.default_config with
      Server.snapshot_dir = Some (Filename.concat root "snap");
      wal_dir = Some (Filename.concat root "wal");
      snapshot_interval = 2 }
  in
  with_server ~config @@ fun _service server ->
  ( with_client server @@ fun c ->
    List.iter
      (fun l -> ignore (ask_exn c "stats-durability" l))
      [ observe_line 0; observe_line 1; observe_line 2 ];
    let stats = Json.parse (ask_exn c "stats" (Json.to_string (Json.Obj [ ("op", Json.String "stats") ]))) in
    match Option.bind (Json.member "stats" stats) (Json.member "durability") with
    | Some (Json.Obj fields) ->
        Alcotest.(check (option Alcotest.bool)) "wal on" (Some true)
          (Option.bind (List.assoc_opt "wal" fields) Json.to_bool);
        Alcotest.(check bool) "appends counted" true
          (match List.assoc_opt "wal_appended" fields with
          | Some (Json.Number n) -> n >= 3.
          | _ -> false);
        Alcotest.(check bool) "snapshot cut reported" true
          (match List.assoc_opt "last_snapshot_seq" fields with
          | Some (Json.Number n) -> n >= 2.
          | _ -> false)
    | _ -> Alcotest.fail "stats response must carry a durability object" );
  let p = Server.persistence server in
  Alcotest.(check bool) "persistence mirror" true
    (p.Durable.wal_enabled && p.Durable.wal_appended >= 3)

let test_server_stop_mid_snapshot () =
  with_tmp_dir @@ fun root ->
  let snap = Filename.concat root "snap" in
  let server_ref = ref None in
  let stops = ref 0 in
  let inject ~op =
    (* A drain signal landing exactly mid-save: the cut must finish
       cleanly and the drain proceed. *)
    if op = "snapshot-write" then begin
      incr stops;
      Option.iter Server.stop !server_ref
    end;
    None
  in
  let config =
    { Server.default_config with
      Server.snapshot_dir = Some snap;
      wal_dir = Some (Filename.concat root "wal");
      snapshot_interval = 1;
      durability_inject = Some inject }
  in
  with_service @@ fun service ->
  let server = Server.start ~config service in
  server_ref := Some server;
  ( with_client server @@ fun c ->
    ignore (ask_exn c "observe before stop" (observe_line 0)) );
  Server.stop server;
  Server.join server;
  Alcotest.(check bool) "stop landed mid-snapshot" true (!stops >= 1);
  (match Snapshot.load_latest ~dir:snap () with
  | Some s ->
      Alcotest.(check bool) "the interrupted cut still committed" true
        (s.Snapshot.wal_seq >= 1)
  | None -> Alcotest.fail "no snapshot survived the drain");
  Alcotest.(check bool) "no tmp leftovers" true
    (Sys.readdir snap |> Array.for_all (fun f -> not (Filename.check_suffix f ".tmp")))

let test_server_config_validation () =
  let check name config =
    with_service @@ fun service ->
    match Server.start ~config service with
    | server ->
        Server.stop server;
        Server.join server;
        Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  check "fsync_batch 0" { Server.default_config with Server.fsync_batch = 0 };
  check "negative fsync interval"
    { Server.default_config with Server.fsync_interval_ms = -1. }

let test_server_refuses_unusable_wal_dir () =
  with_tmp_dir @@ fun root ->
  (* A plain file where the WAL directory should be: mkdir fails. *)
  let wal_dir = Filename.concat root "wal" in
  Out_channel.with_open_bin wal_dir (fun oc -> Out_channel.output_string oc "not a dir");
  let config = { Server.default_config with Server.wal_dir = Some wal_dir } in
  with_service @@ fun service ->
  match Server.start ~config service with
  | server ->
      Server.stop server;
      Server.join server;
      Alcotest.fail "a server with an unusable WAL dir must refuse to start"
  | exception Failure m ->
      Alcotest.(check bool) "error names durability" true
        (String.length m > 0)

(* Kill-and-restart at op granularity: the WAL carries the stateful tail
   past the last snapshot (here: past *any* snapshot — snapshots are off
   and the first life is aborted, not drained). *)
let op_line (kind, i) =
  match kind mod 3 with
  | 0 -> observe_line i
  | 1 -> estimate_line i
  | _ -> replan_line i

let serve_stream ~config ~stop stream =
  with_service @@ fun service ->
  let server = Server.start ~config service in
  let responses =
    with_client server @@ fun c ->
    List.map (fun l -> ask_exn c "stream" l) stream
  in
  (match stop with
  | `Drain -> (Server.stop server; Server.join server)
  | `Kill -> Server.abort server);
  responses

let test_server_restart_op_granularity =
  QCheck.Test.make ~count:6
    ~name:"kill -9 between any two ops: the wal restart answers the tail byte-identically"
    QCheck.(pair (list_of_size Gen.(int_range 6 14) (pair small_nat small_nat))
              (int_range 1 5))
    (fun (ops, cut_at) ->
      QCheck.assume (ops <> []);
      let stream = List.map op_line ops in
      let cut = min cut_at (List.length stream - 1) in
      let prefix = List.filteri (fun i _ -> i < cut) stream in
      let tail = List.filteri (fun i _ -> i >= cut) stream in
      let expected_tail =
        let all = serve_stream ~config:Server.default_config ~stop:`Drain stream in
        List.filteri (fun i _ -> i >= cut) all
      in
      with_tmp_dir @@ fun root ->
      let config =
        { Server.default_config with Server.wal_dir = Some (Filename.concat root "wal") }
      in
      (* First life: serve the prefix, then die without drain, flush or
         snapshot — the on-disk state is whatever the per-op WAL left. *)
      ignore (serve_stream ~config ~stop:`Kill prefix);
      serve_stream ~config ~stop:`Drain tail = expected_tail)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "ckpt_wal"
    [ ( "wal",
        [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "group-commit" `Quick test_wal_group_commit;
          Alcotest.test_case "rotation-and-retire" `Quick test_wal_rotation_and_retire;
          qc test_wal_torn_tail;
          qc test_wal_corruption_prefix ] );
      ( "refusal",
        [ Alcotest.test_case "fsync-failure-refuses-op" `Quick
            test_wal_fsync_failure_refuses_op;
          Alcotest.test_case "durability-error-code" `Quick
            test_fsync_failure_error_code ] );
      ( "crash-points",
        [ Alcotest.test_case "exhaustive-sweep" `Quick test_crash_point_sweep;
          qc test_crash_point_qcheck;
          Alcotest.test_case "soak-10pct" `Quick test_durability_soak ] );
      ( "recovery",
        [ Alcotest.test_case "tmp-cleanup" `Quick test_tmp_cleanup_on_restart;
          Alcotest.test_case "corrupt-only-wal-dir" `Quick
            test_corrupt_only_wal_dir_starts_fresh;
          Alcotest.test_case "empty-wal-dir" `Quick test_empty_wal_dir_cold_start;
          Alcotest.test_case "snapshot-failure-counted" `Quick
            test_snapshot_failure_counted ] );
      ( "auto",
        [ Alcotest.test_case "tune" `Quick test_auto_tune;
          Alcotest.test_case "measure" `Quick test_auto_measure ] );
      ( "server",
        [ Alcotest.test_case "stats-durability" `Quick test_server_stats_durability;
          Alcotest.test_case "stop-mid-snapshot" `Quick test_server_stop_mid_snapshot;
          Alcotest.test_case "config-validation" `Quick test_server_config_validation;
          Alcotest.test_case "unusable-wal-dir" `Quick
            test_server_refuses_unusable_wal_dir;
          qc test_server_restart_op_granularity ] ) ]
