(* Contracts of the fastpath, at two layers.

   Evaluation kernels (E(T_w), Eq. 23/24, batched failure sampling, the
   inline pool) must return results *bitwise* equal to the reference
   paths they replace — those tests are unchanged.

   The solvers themselves are accelerated (superlinear scale search,
   Aitken extrapolation, warm outer rounds, cross-row batch seeding), so
   their contract is *plan equivalence* against the retained reference
   implementations: same integer scale, E(T_w) within 1e-9 relative,
   agreeing converged flags — in no more iterations than the reference.
   Property tests draw random problems (plus the paper's six Table II
   rate cases, where the scale must match exactly) across warm starts
   and batch shapes. *)

open Ckpt_model
module Failure_spec = Ckpt_failures.Failure_spec
module Arrivals = Ckpt_failures.Arrivals
module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Workspace = Ckpt_fastpath.Workspace
module Draw_buffer = Ckpt_fastpath.Draw_buffer
module Pool = Ckpt_parallel.Pool

let table2_cases =
  [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1"; "16-8-4-2"; "8-4-2-1"; "4-2-1-0.5" ]

let problem ?(case = "16-12-8-4") ?(te_core_days = 3e6) ?(alloc = 60.) () =
  { Optimizer.te = te_core_days *. 86400.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
    levels = Level.fti_fusion;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:1e6 case }

let params_of (p : Optimizer.problem) ~estimate =
  { Multilevel.te = p.Optimizer.te;
    speedup = p.Optimizer.speedup;
    levels = p.Optimizer.levels;
    alloc = p.Optimizer.alloc;
    mus =
      Array.init
        (Array.length p.Optimizer.levels)
        (fun i ->
          Scale_fn.linear
            ~slope:
              (Failure_spec.rate_per_second' p.Optimizer.spec ~level:(i + 1)
              *. estimate)
            ()) }

(* Bitwise float equality: NaN = NaN, 0. <> -0. — exactly the contract
   the fastpath promises. *)
let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Relative closeness that also accepts two identical non-finite values
   (a divergent plan must stay divergent on both paths). *)
let rel_close ?(tol = 1e-9) a b =
  same_bits a b
  || Float.abs (a -. b)
     <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* Plan equivalence: the accelerated solver must land on the reference's
   plan without matching its trajectory.  [strict_n] (the deterministic
   Table II cases) demands the exact same integer scale; random problems
   additionally tolerate a |dn| <= 0.5 straddle, since an optimum
   sitting within the scale tolerance of a rounding boundary can
   legitimately land on either side. *)
let plan_equiv ?(strict_n = false) (a : Optimizer.plan) (b : Optimizer.plan) =
  let n_ok =
    Float.round a.Optimizer.n = Float.round b.Optimizer.n
    || ((not strict_n) && Float.abs (a.Optimizer.n -. b.Optimizer.n) <= 0.5)
  in
  Array.length a.Optimizer.xs = Array.length b.Optimizer.xs
  && n_ok
  && rel_close a.Optimizer.wall_clock b.Optimizer.wall_clock
  && a.Optimizer.converged = b.Optimizer.converged

let check_equiv_plan ?strict_n msg (a : Optimizer.plan) (b : Optimizer.plan) =
  if not (plan_equiv ?strict_n a b) then
    Alcotest.failf
      "%s: fastpath plan not equivalent to reference (n %.17g vs %.17g, Ew %h \
       vs %h, converged %b vs %b)"
      msg a.Optimizer.n b.Optimizer.n a.Optimizer.wall_clock
      b.Optimizer.wall_clock a.Optimizer.converged b.Optimizer.converged

let sol_equiv ?(strict_n = false) (a : Multilevel.solution)
    (b : Multilevel.solution) =
  let n_ok =
    Float.round a.Multilevel.n = Float.round b.Multilevel.n
    || ((not strict_n) && Float.abs (a.Multilevel.n -. b.Multilevel.n) <= 0.5)
  in
  Array.length a.Multilevel.xs = Array.length b.Multilevel.xs
  && n_ok
  && rel_close a.Multilevel.wall_clock b.Multilevel.wall_clock
  && a.Multilevel.converged = b.Multilevel.converged

(* ---------------- workspace & draw buffer units ---------------- *)

let test_workspace_reserve () =
  let ws = Workspace.create ~levels:2 () in
  Workspace.reserve ws ~levels:2;
  ws.Workspace.s.(Workspace.slot_key) <- 7.;
  Workspace.reserve ws ~levels:9;
  Alcotest.(check int) "live prefix" 9 ws.Workspace.levels;
  Alcotest.(check bool) "reserve invalidates" true
    (Float.is_nan (Workspace.key ws));
  Alcotest.(check bool) "capacity grew" true (Array.length ws.Workspace.ci >= 9);
  ws.Workspace.xs.(3) <- 42.;
  Alcotest.(check bool) "xs_copy takes the live prefix" true
    (Array.length (Workspace.xs_copy ws) = 9 && (Workspace.xs_copy ws).(3) = 42.)

let test_draw_buffer_matches_direct () =
  List.iter
    (fun capacity ->
      let law_pairs =
        [ ( Draw_buffer.Exponential { rate = 3.5e-5 },
            fun rng -> Dist.exponential rng ~rate:3.5e-5 );
          ( Draw_buffer.Weibull { shape = 0.7; scale = 2e4 },
            fun rng -> Dist.weibull rng ~shape:0.7 ~scale:2e4 ) ]
      in
      List.iteri
        (fun j (law, direct) ->
          let b = Draw_buffer.create ~capacity ~rng:(Rng.of_int (17 + j)) law in
          let rng = Rng.of_int (17 + j) in
          for k = 0 to 199 do
            let got = Draw_buffer.next b and want = direct rng in
            if not (same_bits got want) then
              Alcotest.failf "draw %d (capacity %d, law %d): %h <> %h" k capacity
                j got want
          done)
        law_pairs)
    [ 1; 3; 64 ]

let test_draw_buffer_validation () =
  let bad f = Alcotest.(check bool) "rejected" true (try f () |> ignore; false with Invalid_argument _ -> true) in
  bad (fun () -> Draw_buffer.create ~capacity:0 ~rng:(Rng.of_int 1) (Draw_buffer.Exponential { rate = 1. }));
  bad (fun () -> Draw_buffer.create ~rng:(Rng.of_int 1) (Draw_buffer.Exponential { rate = 0. }));
  bad (fun () -> Draw_buffer.create ~rng:(Rng.of_int 1) (Draw_buffer.Weibull { shape = 0.; scale = 1. }))

(* ---------------- solver plan equivalence ---------------- *)

let test_table2_solves_plan_equivalent () =
  List.iter
    (fun case ->
      let p = problem ~case () in
      check_equiv_plan ~strict_n:true case (Optimizer.solve p)
        (Optimizer.solve_reference p);
      check_equiv_plan ~strict_n:true (case ^ " fixed_n")
        (Optimizer.solve ~fixed_n:5e5 p)
        (Optimizer.solve_reference ~fixed_n:5e5 p))
    table2_cases

(* The acceleration must actually accelerate: on every Table II case the
   fast path spends no more inner iterations (and strictly fewer in
   aggregate) than the reference, with zero safeguard fallbacks — the
   same invariant CI's bench-smoke gate enforces on this corpus. *)
let test_table2_iteration_monotonicity () =
  let total_fast = ref 0 and total_slow = ref 0 in
  List.iter
    (fun case ->
      let p = problem ~case () in
      let fast = Optimizer.solve p and slow = Optimizer.solve_reference p in
      if fast.Optimizer.inner_iterations > slow.Optimizer.inner_iterations then
        Alcotest.failf "%s: accelerated solve used %d inner iterations vs %d"
          case fast.Optimizer.inner_iterations slow.Optimizer.inner_iterations;
      if fast.Optimizer.fallbacks > 0 then
        Alcotest.failf "%s: %d safeguard fallbacks on a Table II case" case
          fast.Optimizer.fallbacks;
      if fast.Optimizer.f_evals > slow.Optimizer.f_evals then
        Alcotest.failf "%s: accelerated solve used %d f_evals vs %d" case
          fast.Optimizer.f_evals slow.Optimizer.f_evals;
      total_fast := !total_fast + fast.Optimizer.inner_iterations;
      total_slow := !total_slow + slow.Optimizer.inner_iterations)
    table2_cases;
  if !total_fast >= !total_slow then
    Alcotest.failf "no aggregate iteration win: %d fast vs %d reference"
      !total_fast !total_slow

let test_wall_clock_fast_bit_identical () =
  let ws = Workspace.create () in
  let p = params_of (problem ()) ~estimate:(40. *. 86400.) in
  List.iter
    (fun (xs, n) ->
      let want = Multilevel.expected_wall_clock p ~xs ~n in
      let got = Multilevel.expected_wall_clock_fast ws p ~xs ~n in
      if not (same_bits got want) then
        Alcotest.failf "E(Tw) at n=%g: %h <> %h" n got want)
    [ ([| 1000.; 500.; 200.; 50. |], 5e5);
      ([| 1.; 1.; 1.; 1. |], 1e3);
      ([| 17.3; 5.9; 88.1; 2.2 |], 9.7e5) ]

let qcheck_tests =
  let open QCheck in
  let case = oneofl table2_cases in
  [ Test.make ~name:"optimize is plan-equivalent to optimize_reference"
      ~count:60
      (quad case (float_range 1e5 1e7) (float_range 10. 600.) (float_range 10. 80.))
      (fun (case, te_core_days, alloc, estimate_days) ->
        let p =
          params_of (problem ~case ~te_core_days ~alloc ())
            ~estimate:(estimate_days *. 86400.)
        in
        let fast = Multilevel.optimize p in
        let slow = Multilevel.optimize_reference p in
        (* Plan equivalence is unconditional.  The work bounds are loose
           on purpose: on adversarial off-corpus problems an accepted
           Aitken jump can cost a polish iteration and a rejected one a
           full extra scale search, so pointwise monotonicity holds only
           on the Table II corpus (test_table2_iteration_monotonicity
           asserts it strictly there); here the bounds catch the fast
           path ever degenerating below plain bisection asymptotics. *)
        sol_equiv fast slow
        && fast.Multilevel.iterations <= slow.Multilevel.iterations + 3
        && fast.Multilevel.f_evals <= 2 * slow.Multilevel.f_evals);
    Test.make ~name:"optimize with fixed_n and warm init stays plan-equivalent"
      ~count:40
      (triple case (float_range 1e4 9e5) (float_range 1. 3.))
      (fun (case, fixed_n, x0) ->
        let p = params_of (problem ~case ()) ~estimate:(30. *. 86400.) in
        let init = ([| x0; x0 *. 2.; x0 *. 7.; x0 |], fixed_n) in
        let fast = Multilevel.optimize ~fixed_n ~init p in
        let slow = Multilevel.optimize_reference ~fixed_n ~init p in
        sol_equiv fast slow
        && fast.Multilevel.iterations <= slow.Multilevel.iterations);
    Test.make ~name:"full Algorithm 1 solve is plan-equivalent" ~count:25
      (pair case (float_range 5e5 5e6))
      (fun (case, te_core_days) ->
        let p = problem ~case ~te_core_days () in
        let fast = Optimizer.solve p and slow = Optimizer.solve_reference p in
        plan_equiv fast slow
        && fast.Optimizer.inner_iterations <= slow.Optimizer.inner_iterations);
    Test.make ~name:"warm solve lands on the cold reference plan" ~count:25
      (triple case (float_range 5e5 5e6) (float_range 0.8 1.25))
      (fun (case, te_core_days, ratio) ->
        (* A plan for a neighbouring problem (te scaled by [ratio]) seeds
           the solve; the result must still be the reference's plan for
           the *unseeded* problem. *)
        let p = problem ~case ~te_core_days () in
        let neighbour = { p with Optimizer.te = p.Optimizer.te *. ratio } in
        let warm = Optimizer.solve neighbour in
        let fast = Optimizer.solve ~warm p in
        let slow = Optimizer.solve_reference p in
        plan_equiv fast slow);
    Test.make ~name:"solve_batch rows are plan-equivalent to solve_reference"
      ~count:20
      (small_list
         (triple case (float_range 5e5 5e6) (option (float_range 1e4 9e5))))
      (fun specs ->
        let jobs =
          Array.of_list
            (List.map
               (fun (case, te_core_days, fixed_n) ->
                 Optimizer.batch_job ?fixed_n (problem ~case ~te_core_days ()))
               specs)
        in
        let plans = Optimizer.solve_batch jobs in
        Array.length plans = Array.length jobs
        && Array.for_all2
             (fun (plan : Optimizer.plan) (j : Optimizer.batch_job) ->
               let want =
                 Optimizer.solve_reference ~delta:j.Optimizer.delta
                   ?fixed_n:j.Optimizer.fixed_n j.Optimizer.problem
               in
               plan_equiv plan want)
             plans jobs);
    Test.make ~name:"E(Tw) workspace evaluation is bit-identical" ~count:100
      (pair
         (quad (float_range 1. 1e4) (float_range 1. 5e3) (float_range 1. 1e3)
            (float_range 1. 200.))
         (float_range 1e3 9e5))
      (fun ((x1, x2, x3, x4), n) ->
        let ws = Workspace.create () in
        let p = params_of (problem ()) ~estimate:(40. *. 86400.) in
        let xs = [| x1; x2; x3; x4 |] in
        same_bits
          (Multilevel.expected_wall_clock_fast ws p ~xs ~n)
          (Multilevel.expected_wall_clock p ~xs ~n));
    Test.make ~name:"batched arrivals equal unbatched draw-for-draw" ~count:40
      (triple (int_range 0 1_000_000) (oneofl table2_cases) (float_range 1e4 9e5))
      (fun (seed, case, scale) ->
        let spec = Failure_spec.of_string ~baseline_scale:1e6 case in
        let laws =
          [| Arrivals.Exponential; Arrivals.Weibull { shape = 0.8 };
             Arrivals.Exponential; Arrivals.Weibull { shape = 1.4 } |]
        in
        let seq batched =
          Arrivals.sequence
            (Arrivals.create ~laws ~batched ~rng:(Rng.of_int seed) ~spec ~scale ())
            ~horizon:1e7
        in
        let a = seq true and b = seq false in
        List.length a = List.length b
        && List.for_all2
             (fun (x : Arrivals.event) (y : Arrivals.event) ->
               same_bits x.Arrivals.at y.Arrivals.at
               && x.Arrivals.level = y.Arrivals.level)
             a b) ]

(* [solve_batch] on the planner kernel's shape: one shared problem (so
   the scale-ordered walk exercises cross-row cost sharing and warm
   seeding between neighbours), a fixed-n grid in scrambled input order
   (warm sources then precede *and* follow their seeds in input order),
   plus mixed rows — free scale, the single-level collapse and a
   non-default delta.  Each row must be plan-equivalent to the reference
   solve of that job alone. *)
let test_solve_batch_mixed () =
  let p = problem () in
  let sl = Optimizer.single_level_problem p in
  let grid =
    Array.init 16 (fun i ->
        let i = (i * 7) mod 16 in
        Optimizer.batch_job ~fixed_n:(2e5 +. (float_of_int i *. 1e3)) p)
  in
  let mixed =
    [| Optimizer.batch_job p;
       Optimizer.batch_job sl;
       Optimizer.batch_job ~delta:1e-6 p;
       Optimizer.batch_job ~fixed_n:3e5 sl |]
  in
  let jobs = Array.append grid mixed in
  let plans = Optimizer.solve_batch jobs in
  Array.iteri
    (fun i (j : Optimizer.batch_job) ->
      check_equiv_plan ~strict_n:true
        (Printf.sprintf "batch row %d" i)
        plans.(i)
        (Optimizer.solve_reference ~delta:j.Optimizer.delta
           ?fixed_n:j.Optimizer.fixed_n j.Optimizer.problem))
    jobs;
  Alcotest.(check int) "empty batch" 0 (Array.length (Optimizer.solve_batch [||]))

(* ---------------- batched simulation across worker counts ------------- *)

let test_batched_replication_outcomes () =
  let p = problem () in
  let plan = Optimizer.ml_ori_scale ~n:5e5 p in
  let config =
    Ckpt_sim.Run_config.of_plan ~semantics:Ckpt_sim.Run_config.paper_semantics
      ~problem:p ~plan ()
  in
  let runs = 12 and base_seed = 42 in
  (* Reference: unbatched sampling, run sequentially on the same
     substream family Replication uses. *)
  let rngs = Rng.streams ~n:runs (Rng.of_int base_seed) in
  let reference =
    Array.init runs (fun i ->
        Ckpt_sim.Engine.run ~rng:rngs.(i) ~batched:false ~seed:(base_seed + i)
          config)
  in
  let check label outcomes =
    Array.iteri
      (fun i (o : Ckpt_sim.Outcome.t) ->
        let r = reference.(i) in
        let ok =
          o.Ckpt_sim.Outcome.completed = r.Ckpt_sim.Outcome.completed
          && same_bits o.Ckpt_sim.Outcome.wall_clock r.Ckpt_sim.Outcome.wall_clock
          && same_bits o.Ckpt_sim.Outcome.productive r.Ckpt_sim.Outcome.productive
          && same_bits o.Ckpt_sim.Outcome.rollback r.Ckpt_sim.Outcome.rollback
          && o.Ckpt_sim.Outcome.failures = r.Ckpt_sim.Outcome.failures
          && o.Ckpt_sim.Outcome.ckpts_written = r.Ckpt_sim.Outcome.ckpts_written
        in
        if not ok then Alcotest.failf "%s: run %d differs from unbatched" label i)
      outcomes
  in
  check "no pool" (Ckpt_sim.Replication.outcomes ~runs ~base_seed config);
  List.iter
    (fun workers ->
      Pool.with_pool ~workers (fun pool ->
          check
            (Printf.sprintf "%d workers" workers)
            (Ckpt_sim.Replication.outcomes ~pool ~runs ~base_seed config)))
    [ 1; 2; 4 ]

(* ---------------- inline single-worker pool ---------------- *)

let test_inline_pool_matches_array_map () =
  Pool.with_pool ~workers:1 (fun pool ->
      let xs = Array.init 100 Fun.id in
      Alcotest.(check (array int))
        "map = Array.map" (Array.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs);
      Alcotest.(check int) "workers" 1 (Pool.workers pool))

exception Boom of int

let test_inline_pool_error_contract () =
  Pool.with_pool ~workers:1 (fun pool ->
      let ran = ref 0 in
      let attempt () =
        Pool.map pool
          ~f:(fun x ->
            incr ran;
            if x mod 3 = 1 then raise (Boom x) else x)
          (Array.init 9 Fun.id)
      in
      (match attempt () with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> Alcotest.(check int) "lowest failing index" 1 x);
      Alcotest.(check int) "every item still ran" 9 !ran)

let () =
  Alcotest.run "ckpt_fastpath"
    [ ( "units",
        [ Alcotest.test_case "workspace reserve" `Quick test_workspace_reserve;
          Alcotest.test_case "draw buffer = direct draws" `Quick
            test_draw_buffer_matches_direct;
          Alcotest.test_case "draw buffer validation" `Quick
            test_draw_buffer_validation ] );
      ( "plan-equivalence",
        [ Alcotest.test_case "six Table II cases" `Quick
            test_table2_solves_plan_equivalent;
          Alcotest.test_case "Table II iteration monotonicity" `Quick
            test_table2_iteration_monotonicity;
          Alcotest.test_case "batch solve, mixed jobs" `Quick
            test_solve_batch_mixed ] );
      ( "bit-identity",
        [ Alcotest.test_case "E(Tw) evaluation" `Quick
            test_wall_clock_fast_bit_identical ] );
      ( "simulation",
        [ Alcotest.test_case "batched replication at 1/2/4 workers" `Quick
            test_batched_replication_outcomes ] );
      ( "pool",
        [ Alcotest.test_case "inline map" `Quick test_inline_pool_matches_array_map;
          Alcotest.test_case "inline error contract" `Quick
            test_inline_pool_error_contract ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
