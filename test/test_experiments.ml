(* Integration tests over the experiment drivers: the paper's published
   numbers must reproduce (Fig. 3 exactly; tables in shape), outputs must
   render, and the registry must be complete. *)

module E = Ckpt_experiments
module Optimizer = Ckpt_model.Optimizer
module Stats = Ckpt_numerics.Stats

let check_rel ?(tol = 1e-3) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (actual -. expected) <= tol *. Float.abs expected)

let render_to_string run =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  run ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* A tiny substring helper (no external deps). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ---------------- Render ---------------- *)

let test_render_table () =
  let out =
    render_to_string (fun ppf ->
        E.Render.table ppf ~headers:[ "a"; "b" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ])
  in
  Alcotest.(check bool) "contains header" true (contains out "a");
  Alcotest.(check bool) "ragged row padded" true (contains out "333")

let test_render_csv () =
  let out =
    render_to_string (fun ppf ->
        E.Render.csv ppf ~headers:[ "x"; "y" ] ~rows:[ [ "1"; "a,b" ]; [ "2"; "q\"q" ] ])
  in
  Alcotest.(check bool) "quotes comma field" true (contains out "\"a,b\"");
  Alcotest.(check bool) "escapes quote" true (contains out "\"q\"\"q\"")

let test_render_cells () =
  Alcotest.(check string) "days" "1.50" (E.Render.days 129600.);
  Alcotest.(check string) "pct" "12.5%" (E.Render.pct 0.125);
  Alcotest.(check string) "zero" "0" (E.Render.float_cell 0.);
  Alcotest.(check bool) "scientific for huge" true
    (contains (E.Render.float_cell 1e12) "e")

(* ---------------- Paper data ---------------- *)

let test_paper_data_shapes () =
  Alcotest.(check int) "table2 levels" 4 (Array.length E.Paper_data.table2_costs);
  Array.iter
    (fun row -> Alcotest.(check int) "five scales" 5 (Array.length row))
    E.Paper_data.table2_costs;
  Alcotest.(check int) "six cases" 6 (List.length E.Paper_data.cases);
  Alcotest.(check int) "four solutions" 4 (List.length E.Paper_data.solution_names)

let test_eval_problem_consistent () =
  let p = E.Paper_data.eval_problem ~te_core_days:3e6 ~case:"16-12-8-4" () in
  Optimizer.check_problem p;
  Alcotest.(check (float 1e-6)) "te in seconds" (3e6 *. 86400.) p.Optimizer.te

(* ---------------- Fig. 3 (exact reproduction) ---------------- *)

let test_fig3_constant () =
  let r = E.Fig3.compute ~linear_cost:false in
  check_rel ~tol:2e-3 "x* = 797" 797. r.E.Fig3.x_star;
  check_rel ~tol:2e-4 "N* = 81746" 81746. r.E.Fig3.n_star;
  Alcotest.(check bool) "sweep confirms the minimum" true (E.Fig3.sweep_is_minimal r)

let test_fig3_linear () =
  let r = E.Fig3.compute ~linear_cost:true in
  check_rel ~tol:5e-3 "x* = 140" 140. r.E.Fig3.x_star;
  check_rel ~tol:2e-4 "N* = 20215" 20215. r.E.Fig3.n_star;
  Alcotest.(check bool) "sweep confirms the minimum" true (E.Fig3.sweep_is_minimal r)

(* ---------------- Table II ---------------- *)

let test_table2_refit () =
  List.iter
    (fun r ->
      check_rel ~tol:0.03 (Printf.sprintf "eps level %d" r.E.Table2.level) r.E.Table2.paper_eps
        r.E.Table2.eps;
      if r.E.Table2.paper_alpha = 0. then
        Alcotest.(check (float 1e-9)) "alpha snapped" 0. r.E.Table2.alpha
      else check_rel ~tol:0.02 "alpha" r.E.Table2.paper_alpha r.E.Table2.alpha)
    (E.Table2.compute ())

(* ---------------- Fig. 1 ---------------- *)

let test_fig1_tradeoff () =
  let pts = E.Fig1.series ~points:10 () in
  Alcotest.(check int) "ten points" 10 (List.length pts);
  let opt_ckpt, opt_free = E.Fig1.optimal_scales pts in
  Alcotest.(check bool) "checkpoint optimum below failure-free optimum" true
    (opt_ckpt < opt_free);
  (* Failure-free time decreases monotonically up to the ideal scale. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.E.Fig1.failure_free >= b.E.Fig1.failure_free && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "failure-free monotone" true (monotone pts)

(* ---------------- Table III ---------------- *)

let test_table3_shape () =
  let rows = E.Table3.compute () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ML scale below ideal" true (r.E.Table3.ml_scale < 1e6);
      Alcotest.(check bool) "SL scale below ML scale" true
        (r.E.Table3.sl_scale < r.E.Table3.ml_scale))
    rows;
  (* Monotonicity across the first three cases (decreasing failure rates ->
     growing optimal scale), as in the paper's row. *)
  match rows with
  | a :: b :: c :: _ ->
      Alcotest.(check bool) "16-12-8-4 < 8-6-4-2" true (a.E.Table3.ml_scale < b.E.Table3.ml_scale);
      Alcotest.(check bool) "8-6-4-2 < 4-3-2-1" true (b.E.Table3.ml_scale < c.E.Table3.ml_scale)
  | _ -> Alcotest.fail "expected rows"

(* ---------------- Convergence ---------------- *)

let test_convergence_counts () =
  let const_iters, linear_iters = E.Convergence.single_level_iterations () in
  Alcotest.(check bool) "constant case converges quickly" true
    (const_iters > 0 && const_iters < 50);
  Alcotest.(check bool) "linear case converges quickly" true
    (linear_iters > 0 && linear_iters < 50);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s converges" r.E.Convergence.label)
        true r.E.Convergence.converged;
      Alcotest.(check bool) "outer iterations in a sane band" true
        (r.E.Convergence.outer >= 2 && r.E.Convergence.outer <= 60))
    (E.Convergence.outer_loop_rows ())

(* ---------------- Nonconvexity ---------------- *)

let test_nonconvexity () =
  let s = E.Nonconvexity.compute () in
  Alcotest.(check bool) "grid scanned" true (s.E.Nonconvexity.scanned > 100);
  Alcotest.(check bool) "non-convex points exist" true (s.E.Nonconvexity.nonconvex <> [])

(* ---------------- Solutions / time analysis (small runs) ---------------- *)

let test_solutions_expand_sl_plan () =
  let problem = E.Paper_data.eval_problem ~te_core_days:3e6 ~case:"8-4-2-1" () in
  let sl = Optimizer.sl_opt_scale problem in
  let expanded = E.Solutions.expand_sl_plan problem sl in
  Alcotest.(check int) "four levels" 4 (Array.length expanded.Optimizer.xs);
  Alcotest.(check (float 1e-9)) "level 1 unused" 1. expanded.Optimizer.xs.(0);
  Alcotest.(check (float 1e-9)) "pfs keeps its count" sl.Optimizer.xs.(0)
    expanded.Optimizer.xs.(3)

let test_time_analysis_small () =
  let t = E.Time_analysis.compute ~runs:3 ~cases:[ "4-2-1-0.5" ] ~te_core_days:3e6 () in
  Alcotest.(check int) "four cells" 4 (List.length t.E.Time_analysis.cells);
  let improvements = E.Time_analysis.improvements t in
  Alcotest.(check int) "three comparisons" 3 (List.length improvements);
  (* ML(opt-scale) must beat SL(ori-scale) on this case. *)
  let sl_ori = List.assoc "SL(ori-scale)" improvements in
  List.iter
    (fun impr -> Alcotest.(check bool) "positive improvement" true (impr > 0.))
    sl_ori

let test_registry () =
  Alcotest.(check int) "18 experiments" 18 (List.length E.Registry.all);
  List.iter
    (fun id ->
      match E.Registry.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.E.Registry.id
      | None -> Alcotest.fail ("missing " ^ id))
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "table2"; "table3";
      "table4"; "convergence"; "nonconvexity"; "costmodel"; "sensitivity"; "scr";
      "weakscaling"; "ablations"; "calibration" ];
  Alcotest.(check bool) "case-insensitive" true (E.Registry.find "FIG3" <> None);
  Alcotest.(check bool) "unknown" true (E.Registry.find "fig99" = None)

let test_costmodel () =
  let comparisons = E.Costmodel.compare_costs () in
  Alcotest.(check int) "4 levels x 5 scales" 20 (List.length comparisons);
  (* Predictions stay within the paper's 30% jitter band, with a small
     allowance for the two noisiest Table II cells. *)
  Alcotest.(check bool) "max error below 35%" true (E.Costmodel.max_error comparisons < 0.35);
  let per_level_mean lvl =
    let cs = List.filter (fun c -> c.E.Costmodel.level = lvl) comparisons in
    List.fold_left (fun a c -> a +. c.E.Costmodel.error) 0. cs
    /. float_of_int (List.length cs)
  in
  for lvl = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "level %d mean error below 20%%" lvl)
      true
      (per_level_mean lvl < 0.2)
  done;
  let from_pred, from_meas = E.Costmodel.plans () in
  check_rel ~tol:0.35 "derived hierarchy gives a similar optimal scale"
    from_meas.Optimizer.n from_pred.Optimizer.n

let test_report () =
  (* A cheap report must contain every check and no deviation.  10
     runs/cell is the floor: the ML(opt) vs ML(ori) gap is only ~7-26%
     (paper), so fewer runs can flip the improvement's sign on pure
     Monte-Carlo noise. *)
  let lines = E.Report.compute ~runs:10 () in
  Alcotest.(check int) "20 checks" 20 (List.length lines);
  Alcotest.(check bool) "no deviations" true
    (List.for_all (fun l -> l.E.Report.verdict <> E.Report.Deviates) lines);
  Alcotest.(check bool) "fig3 exact" true
    (List.exists
       (fun l -> l.E.Report.item = "Fig.3 x* (constant cost)" && l.E.Report.verdict = E.Report.Exact)
       lines);
  let md = E.Report.to_markdown lines in
  Alcotest.(check bool) "markdown table" true (contains md "| Item | Paper | Measured |")

let test_fast_experiments_render () =
  (* The cheap experiments must produce non-empty reports without
     raising. *)
  List.iter
    (fun id ->
      match E.Registry.find id with
      | Some e ->
          let out = render_to_string e.E.Registry.run in
          Alcotest.(check bool) (id ^ " non-empty") true (String.length out > 100)
      | None -> Alcotest.fail ("missing " ^ id))
    [ "fig3"; "table2"; "table3"; "nonconvexity" ]

let () =
  Alcotest.run "ckpt_experiments"
    [ ( "render",
        [ Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "csv" `Quick test_render_csv;
          Alcotest.test_case "cells" `Quick test_render_cells ] );
      ( "paper-data",
        [ Alcotest.test_case "shapes" `Quick test_paper_data_shapes;
          Alcotest.test_case "eval problem" `Quick test_eval_problem_consistent ] );
      ( "reproduction",
        [ Alcotest.test_case "fig3 constant" `Quick test_fig3_constant;
          Alcotest.test_case "fig3 linear" `Quick test_fig3_linear;
          Alcotest.test_case "table2 refit" `Quick test_table2_refit;
          Alcotest.test_case "fig1 tradeoff" `Quick test_fig1_tradeoff;
          Alcotest.test_case "table3 shape" `Quick test_table3_shape;
          Alcotest.test_case "convergence" `Quick test_convergence_counts;
          Alcotest.test_case "nonconvexity" `Quick test_nonconvexity ] );
      ( "drivers",
        [ Alcotest.test_case "expand sl plan" `Quick test_solutions_expand_sl_plan;
          Alcotest.test_case "time analysis small" `Quick test_time_analysis_small;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "cost model" `Quick test_costmodel;
          Alcotest.test_case "report" `Quick test_report;
          Alcotest.test_case "fast experiments render" `Quick test_fast_experiments_render ] ) ]
