(* Tests for the dependency-free JSON implementation. *)

open Ckpt_json

let parse = Json.parse
let str ?pretty t = Json.to_string ?pretty t

let check_roundtrip ?(msg = "roundtrip") input =
  let v = parse input in
  let v' = parse (str v) in
  Alcotest.(check bool) msg true (v = v')

(* ---------------- parsing ---------------- *)

let test_parse_scalars () =
  Alcotest.(check bool) "null" true (parse "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse "false" = Json.Bool false);
  Alcotest.(check bool) "int" true (parse "42" = Json.Number 42.);
  Alcotest.(check bool) "negative" true (parse "-17" = Json.Number (-17.));
  Alcotest.(check bool) "float" true (parse "3.25" = Json.Number 3.25);
  Alcotest.(check bool) "exponent" true (parse "1e3" = Json.Number 1000.);
  Alcotest.(check bool) "string" true (parse "\"hi\"" = Json.String "hi")

let test_parse_structures () =
  Alcotest.(check bool) "empty list" true (parse "[]" = Json.List []);
  Alcotest.(check bool) "empty obj" true (parse "{}" = Json.Obj []);
  Alcotest.(check bool) "list" true
    (parse "[1, 2, 3]" = Json.List [ Json.Number 1.; Json.Number 2.; Json.Number 3. ]);
  Alcotest.(check bool) "nested" true
    (parse {|{"a": [true, {"b": null}]}|}
     = Json.Obj
         [ ("a", Json.List [ Json.Bool true; Json.Obj [ ("b", Json.Null) ] ]) ])

let test_parse_whitespace () =
  Alcotest.(check bool) "whitespace everywhere" true
    (parse " \n\t{ \"k\" :\r[ 1 , 2 ] } " = Json.Obj [ ("k", Json.List [ Json.Number 1.; Json.Number 2. ]) ])

let test_parse_escapes () =
  Alcotest.(check bool) "quote" true (parse {|"a\"b"|} = Json.String "a\"b");
  Alcotest.(check bool) "backslash" true (parse {|"a\\b"|} = Json.String "a\\b");
  Alcotest.(check bool) "newline" true (parse {|"a\nb"|} = Json.String "a\nb");
  Alcotest.(check bool) "tab" true (parse {|"a\tb"|} = Json.String "a\tb");
  Alcotest.(check bool) "unicode bmp" true (parse {|"é"|} = Json.String "\xc3\xa9");
  (* surrogate pair: U+1F600 *)
  Alcotest.(check bool) "surrogate pair" true
    (parse {|"😀"|} = Json.String "\xf0\x9f\x98\x80")

let expect_error input =
  match Json.parse_result input with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" input)
  | Error _ -> ()

let test_parse_errors () =
  List.iter expect_error
    [ ""; "{"; "["; "[1,"; "[1 2]"; "{\"a\"}"; "{\"a\":}"; "nul"; "tru"; "\"unterminated";
      "\"bad \\x escape\""; "01a"; "[1],"; "{\"a\":1,}"; "\"\\ud800\"" ]

let test_parse_error_position () =
  match Json.parse "[1, oops]" with
  | exception Json.Parse_error { position; _ } ->
      Alcotest.(check bool) "position points into the input" true (position >= 3 && position <= 6)
  | _ -> Alcotest.fail "expected error"

(* ---------------- printing ---------------- *)

let test_print_compact () =
  Alcotest.(check string) "compact" {|{"a":[1,true,"x"],"b":null}|}
    (str
       (Json.Obj
          [ ("a", Json.List [ Json.Number 1.; Json.Bool true; Json.String "x" ]);
            ("b", Json.Null) ]))

let test_print_pretty_reparses () =
  let v =
    Json.Obj
      [ ("xs", Json.float_array [| 1.5; 2.5 |]);
        ("name", Json.String "plan");
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Null ]) ]) ]
  in
  Alcotest.(check bool) "pretty output reparses equal" true (parse (str ~pretty:true v) = v)

let test_print_escapes () =
  Alcotest.(check string) "escaped" {|"a\"b\\c\nd"|} (str (Json.String "a\"b\\c\nd"));
  Alcotest.(check string) "control chars" "\"\\u0001\"" (str (Json.String "\001"))

let test_print_numbers () =
  Alcotest.(check string) "integer form" "42" (str (Json.Number 42.));
  Alcotest.(check string) "negative" "-7" (str (Json.Number (-7.)));
  Alcotest.(check bool) "float roundtrips" true
    (parse (str (Json.Number 0.1)) = Json.Number 0.1);
  Alcotest.(check bool) "tiny roundtrips" true
    (parse (str (Json.Number 2.3e-7)) = Json.Number 2.3e-7);
  Alcotest.(check string) "nan becomes null" "null" (str (Json.Number Float.nan));
  Alcotest.(check string) "inf becomes null" "null" (str (Json.Number Float.infinity))

(* ---------------- buffer writers ---------------- *)

let via_buffer add v =
  let buf = Buffer.create 64 in
  add buf v;
  Buffer.contents buf

let test_add_number () =
  let render f = via_buffer Json.add_number f in
  let same f = Alcotest.(check string) (string_of_float f) (str (Json.Number f)) (render f) in
  List.iter same
    [ 0.; 42.; -7.; 0.1; -0.25; 1e6; 123456789.; 1e14; 1e15; 1e16; -1e15; 2.3e-7;
      1e300; Float.max_float; Float.min_float; Float.epsilon ];
  Alcotest.(check string) "negative zero" (str (Json.Number (-0.))) (render (-0.));
  Alcotest.(check string) "nan is null" "null" (render Float.nan);
  Alcotest.(check string) "inf is null" "null" (render Float.infinity);
  Alcotest.(check string) "-inf is null" "null" (render Float.neg_infinity)

let test_add_json_compact () =
  let v =
    Json.Obj
      [ ("a", Json.List [ Json.Number 1.; Json.Bool true; Json.String "x\"\n" ]);
        ("b", Json.Null);
        ("", Json.Obj []) ]
  in
  Alcotest.(check string) "matches to_string" (str v) (via_buffer Json.add_json v);
  Alcotest.(check string) "escaped string" (str (Json.String "a\001b\\"))
    (via_buffer Json.add_escaped "a\001b\\")

(* ---------------- accessors ---------------- *)

let test_accessors () =
  let v = parse {|{"n": 3, "f": 2.5, "s": "x", "b": true, "l": [1], "o": {}}|} in
  Alcotest.(check (option int)) "int" (Some 3) (Option.bind (Json.member "n" v) Json.to_int);
  Alcotest.(check (option (float 0.))) "float" (Some 2.5) (Json.float_field "f" v);
  Alcotest.(check (option string)) "string" (Some "x") (Json.string_field "s" v);
  Alcotest.(check bool) "bool" true (Option.bind (Json.member "b" v) Json.to_bool = Some true);
  Alcotest.(check bool) "list" true (Json.list_field "l" v = Some [ Json.Number 1. ]);
  Alcotest.(check bool) "missing" true (Json.member "zzz" v = None);
  Alcotest.(check bool) "int rejects fraction" true
    (Option.bind (Json.member "f" v) Json.to_int = None)

let test_float_array () =
  let arr = [| 1.; 2.5; -3. |] in
  Alcotest.(check bool) "roundtrip" true (Json.of_float_array (Json.float_array arr) = Some arr);
  Alcotest.(check bool) "mixed rejected" true
    (Json.of_float_array (Json.List [ Json.Number 1.; Json.Bool true ]) = None)

let test_roundtrips () =
  List.iter check_roundtrip
    [ "null"; "[1,2,3]"; {|{"a":{"b":{"c":[]}}}|}; {|"unicode: é中"|};
      "[0.1,1e300,-2.5e-10]"; {|{"mixed":[null,true,1,"s",[],{}]}|} ]

(* ---------------- properties ---------------- *)

let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun f -> Json.Number f) (float_bound_inclusive 1e6);
                map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10)) ]
          else
            oneof
              [ map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun pairs -> Json.Obj pairs)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 1 6)) (self (n / 2)))) ])
        (Int.min n 4))

let any_float =
  QCheck.Gen.oneof
    [ QCheck.Gen.float;
      QCheck.Gen.map float_of_int QCheck.Gen.int;
      QCheck.Gen.oneofl [ 0.; -0.; 1e15; -1e15; 1e16; Float.nan; Float.infinity ] ]

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"print/parse roundtrips" ~count:300 (make json_gen) (fun v ->
        Json.parse (Json.to_string v) = v);
    Test.make ~name:"pretty print/parse roundtrips" ~count:300 (make json_gen) (fun v ->
        Json.parse (Json.to_string ~pretty:true v) = v);
    Test.make ~name:"add_json matches compact to_string" ~count:300 (make json_gen)
      (fun v ->
        let buf = Buffer.create 64 in
        Json.add_json buf v;
        Buffer.contents buf = Json.to_string v);
    Test.make ~name:"add_number matches to_string on any float" ~count:500
      (make any_float) (fun f ->
        let buf = Buffer.create 32 in
        Json.add_number buf f;
        Buffer.contents buf = Json.to_string (Json.Number f)) ]

let () =
  Alcotest.run "ckpt_json"
    [ ( "parse",
        [ Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position ] );
      ( "print",
        [ Alcotest.test_case "compact" `Quick test_print_compact;
          Alcotest.test_case "pretty reparses" `Quick test_print_pretty_reparses;
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "numbers" `Quick test_print_numbers ] );
      ( "writers",
        [ Alcotest.test_case "add_number" `Quick test_add_number;
          Alcotest.test_case "add_json compact" `Quick test_add_json_compact ] );
      ( "accessors",
        [ Alcotest.test_case "fields" `Quick test_accessors;
          Alcotest.test_case "float arrays" `Quick test_float_array;
          Alcotest.test_case "roundtrips" `Quick test_roundtrips ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
