(* Tests for the hand-rolled numerics substrate. *)

open Ckpt_numerics

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(tol = 1e-6) msg expected actual = Alcotest.(check (float tol)) msg expected actual

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.of_int 7 and b = Rng.of_int 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 4)

let test_rng_float_range () =
  let rng = Rng.of_int 1 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.of_int 2 in
  let acc = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  check_close ~tol:0.01 "mean ~ 0.5" 0.5 (!acc /. float_of_int n)

let test_rng_int_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_uniform () =
  let rng = Rng.of_int 4 in
  let h = Histogram.create ~lo:0. ~hi:8. ~bins:8 in
  for _ = 1 to 80_000 do
    Histogram.add h (float_of_int (Rng.int rng 8))
  done;
  (* chi-squared with 7 dof: 99.9th percentile ~ 24.3 *)
  Alcotest.(check bool) "uniform by chi-squared" true (Histogram.chi_squared_uniform h < 30.)

let test_rng_split_independent () =
  let parent = Rng.of_int 5 in
  let child = Rng.split parent in
  let a = Array.init 32 (fun _ -> Rng.int64 parent) in
  let b = Array.init 32 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_copy () =
  let a = Rng.of_int 6 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_jump () =
  let a = Rng.of_int 9 in
  let b = Rng.copy a in
  Rng.jump b;
  Alcotest.(check bool) "jump moves the stream" true (Rng.int64 a <> Rng.int64 b)

let test_rng_bool () =
  let rng = Rng.of_int 10 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 4_600 && !trues < 5_400)

(* Draw [n] values, sorted, for overlap checks. *)
let sorted_window rng n =
  let a = Array.init n (fun _ -> Rng.int64 rng) in
  Array.sort Int64.compare a;
  a

(* Two-pointer count of values present in both sorted windows. *)
let common_count a b =
  let n = Array.length a and m = Array.length b in
  let rec go i j acc =
    if i >= n || j >= m then acc
    else
      match Int64.compare a.(i) b.(j) with
      | 0 -> go (i + 1) (j + 1) (acc + 1)
      | c when c < 0 -> go (i + 1) j acc
      | _ -> go i (j + 1) acc
  in
  go 0 0 0

(* The determinism contract of the parallel replication layer leans on
   split/jump substreams not revisiting each other's outputs.  With
   64-bit draws, a shared value inside 10^6-draw windows has probability
   ~3e-8 for truly independent streams — so any collision here means the
   derivation scheme is broken, not bad luck. *)
let test_rng_substreams_do_not_overlap () =
  let n = 1_000_000 in
  let parent = Rng.of_int 2024 in
  let child = Rng.split parent in
  let jumped = Rng.copy child in
  Rng.jump jumped;
  let wp = sorted_window parent n in
  let wc = sorted_window child n in
  let wj = sorted_window jumped n in
  Alcotest.(check int) "parent/child disjoint" 0 (common_count wp wc);
  Alcotest.(check int) "parent/jumped disjoint" 0 (common_count wp wj);
  Alcotest.(check int) "child/jumped disjoint" 0 (common_count wc wj)

(* ---------------- Dist ---------------- *)

let sample_mean n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let rng = Rng.of_int 11 in
  let mean = sample_mean 200_000 (fun () -> Dist.exponential rng ~rate:0.25) in
  check_close ~tol:0.06 "mean ~ 1/rate" 4. mean

let test_exponential_positive () =
  let rng = Rng.of_int 12 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Dist.exponential rng ~rate:2. >= 0.)
  done

let test_exponential_cdf_pdf () =
  check_float "cdf at 0" 0. (Dist.exponential_cdf ~rate:1. 0.);
  check_close "cdf at 1" (1. -. exp (-1.)) (Dist.exponential_cdf ~rate:1. 1.);
  check_float "pdf negative" 0. (Dist.exponential_pdf ~rate:1. (-1.));
  check_close "pdf at 0" 2. (Dist.exponential_pdf ~rate:2. 0.)

let test_weibull_shape1_is_exponential () =
  let rng = Rng.of_int 13 in
  let mean = sample_mean 200_000 (fun () -> Dist.weibull rng ~shape:1. ~scale:3.) in
  check_close ~tol:0.05 "weibull(1,s) mean = s" 3. mean

let test_normal_moments () =
  let rng = Rng.of_int 14 in
  let samples = Array.init 100_000 (fun _ -> Dist.normal rng ~mean:5. ~std:2.) in
  check_close ~tol:0.05 "mean" 5. (Stats.mean samples);
  check_close ~tol:0.05 "std" 2. (Stats.std samples)

let test_lognormal_positive () =
  let rng = Rng.of_int 15 in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "positive" true (Dist.lognormal rng ~mu:0. ~sigma:1. > 0.)
  done

let test_poisson_mean () =
  let rng = Rng.of_int 16 in
  let mean = sample_mean 50_000 (fun () -> float_of_int (Dist.poisson rng ~mean:6.5)) in
  check_close ~tol:0.08 "mean" 6.5 mean

let test_poisson_large_mean () =
  let rng = Rng.of_int 17 in
  let mean = sample_mean 20_000 (fun () -> float_of_int (Dist.poisson rng ~mean:800.)) in
  check_close ~tol:2. "normal approximation regime" 800. mean

let test_poisson_zero () =
  let rng = Rng.of_int 18 in
  Alcotest.(check int) "mean 0 -> 0" 0 (Dist.poisson rng ~mean:0.)

let test_poisson_pmf_sums () =
  let total = ref 0. in
  for k = 0 to 60 do
    total := !total +. Dist.poisson_pmf ~mean:10. k
  done;
  check_close ~tol:1e-9 "pmf sums to 1" 1. !total

let test_jitter_bounds () =
  let rng = Rng.of_int 19 in
  for _ = 1 to 10_000 do
    let v = Dist.jittered rng ~ratio:0.3 100. in
    Alcotest.(check bool) "within 30%" true (v >= 70. && v <= 130.)
  done

let test_jitter_mean_preserved () =
  let rng = Rng.of_int 20 in
  let mean = sample_mean 100_000 (fun () -> Dist.jittered rng ~ratio:0.3 50.) in
  check_close ~tol:0.2 "mean preserved" 50. mean

(* ---------------- Stats ---------------- *)

let test_stats_known () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_close "variance" (32. /. 7.) (Stats.variance xs);
  check_float "min" 2. (Stats.min xs);
  check_float "max" 9. (Stats.max xs);
  check_float "median" 4.5 (Stats.median xs)

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p50" 3. (Stats.percentile xs 0.5);
  check_float "p100" 5. (Stats.percentile xs 1.);
  check_float "p25" 2. (Stats.percentile xs 0.25)

let test_stats_single () =
  let xs = [| 42. |] in
  check_float "variance of singleton" 0. (Stats.variance xs);
  check_float "median of singleton" 42. (Stats.median xs)

let test_stats_online_matches_batch () =
  let rng = Rng.of_int 21 in
  let xs = Array.init 1_000 (fun _ -> Rng.float rng *. 100.) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 1_000 (Stats.Online.count o);
  check_close ~tol:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  check_close ~tol:1e-6 "variance" (Stats.variance xs) (Stats.Online.variance o)

let test_stats_confidence () =
  let xs = Array.make 100 3. in
  let lo, hi = Stats.confidence95 xs in
  check_float "degenerate CI lo" 3. lo;
  check_float "degenerate CI hi" 3. hi

let test_relative_error () =
  check_float "10% error" 0.1 (Stats.relative_error ~expected:10. 11.);
  check_float "symmetric" 0.1 (Stats.relative_error ~expected:10. 9.)

(* ---------------- Histogram ---------------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.; 10.; 11. ];
  Alcotest.(check int) "total" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h)

let test_histogram_bounds_density () =
  let h = Histogram.create ~lo:0. ~hi:4. ~bins:4 in
  let lo, hi = Histogram.bin_bounds h 2 in
  check_float "bin lo" 2. lo;
  check_float "bin hi" 3. hi;
  List.iter (Histogram.add h) [ 0.1; 0.2; 1.1; 1.9 ];
  check_float "density bin0" 0.5 (Histogram.density h 0)

(* ---------------- Roots ---------------- *)

let test_bisect_sqrt2 () =
  let r = Roots.bisect ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. () in
  check_close ~tol:1e-8 "sqrt 2" (sqrt 2.) r.Roots.root

let test_bisect_no_bracket () =
  Alcotest.check_raises "same signs"
    (Roots.No_bracket "bisect: f(lo)=1 and f(hi)=2 have the same sign") (fun () ->
      ignore (Roots.bisect ~f:(fun x -> x) ~lo:1. ~hi:2. ()))

let test_bisect_integer_stops_early () =
  let r = Roots.bisect_integer ~f:(fun x -> x -. 1000.5) ~lo:0. ~hi:10_000. () in
  Alcotest.(check bool) "within 0.5" true (Float.abs (r.Roots.root -. 1000.5) <= 0.5)

let test_newton_cuberoot () =
  let r =
    Roots.newton ~f:(fun x -> (x ** 3.) -. 27.) ~f':(fun x -> 3. *. x *. x) ~x0:5. ()
  in
  check_close ~tol:1e-9 "cube root" 3. r.Roots.root

let test_newton_diverges () =
  Alcotest.(check bool) "flat derivative raises" true
    (try
       ignore (Roots.newton ~f:(fun _ -> 1.) ~f':(fun _ -> 0.) ~x0:0. ());
       false
     with Roots.No_convergence _ -> true)

let test_secant () =
  let r = Roots.secant ~f:(fun x -> (x *. x) -. 5.) ~x0:1. ~x1:3. () in
  check_close ~tol:1e-8 "sqrt 5" (sqrt 5.) r.Roots.root

let test_brent_matches_bisect () =
  let f x = cos x -. x in
  let b = Roots.brent ~f ~lo:0. ~hi:1. () in
  let bi = Roots.bisect ~f ~lo:0. ~hi:1. () in
  check_close ~tol:1e-7 "agree" bi.Roots.root b.Roots.root;
  Alcotest.(check bool) "brent faster" true (b.Roots.iterations <= bi.Roots.iterations)

let test_itp_integer_matches_bisect () =
  (* Replay exactness: on single-sign-change brackets the fast finder
     must reproduce bisect_integer's root *bitwise* (same cell midpoint,
     same iteration count), not just approximately. *)
  let cases =
    [ ((fun x -> x -. 1000.5), 0., 10_000.);
      ((fun x -> x -. 1000.5), 0., 10_000_000.);
      ((fun n -> (1. /. n) -. (1. /. 181_621.25)), 1., 1_000_000.);
      ((fun x -> ((x +. 1.) ** 0.3) -. (777.77 ** 0.3)), 0., 65_536.);
      ((fun x -> 3.5 -. x), 1., 7.);
      ((fun x -> 3.5 -. x), 3.4, 3.6) ]
  in
  List.iter
    (fun (f, lo, hi) ->
      let slow = Roots.bisect_integer ~f ~lo ~hi () in
      let fast = Roots.itp_integer ~f ~lo ~hi () in
      Alcotest.(check bool) "bitwise root" true
        (Int64.bits_of_float slow.Roots.root = Int64.bits_of_float fast.Roots.root);
      Alcotest.(check int) "same iterations" slow.Roots.iterations fast.Roots.iterations)
    cases

let test_itp_integer_fewer_evals () =
  let evals = ref 0 in
  let f x = incr evals; x -. 123_456.75 in
  let slow = Roots.bisect_integer ~f ~lo:1. ~hi:1_000_000. () in
  let slow_evals = !evals in
  evals := 0;
  let fast = Roots.itp_integer ~f ~lo:1. ~hi:1_000_000. () in
  let fast_evals = !evals in
  Alcotest.(check int) "reported evals match" fast_evals fast.Roots.f_evals;
  Alcotest.(check int) "slow reported evals match" slow_evals slow.Roots.f_evals;
  Alcotest.(check bool)
    (Printf.sprintf "at most half the probes (%d vs %d)" fast_evals slow_evals)
    true
    (2 * fast_evals <= slow_evals)

let test_itp_integer_endpoint_roots () =
  let r = Roots.itp_integer ~f:(fun x -> x -. 2.) ~lo:2. ~hi:10. () in
  check_float "endpoint root" 2. r.Roots.root;
  let r = Roots.itp_integer ~flo:(-1.) ~fhi:0. ~f:(fun x -> x -. 10.) ~lo:2. ~hi:10. () in
  check_float "fhi endpoint" 10. r.Roots.root;
  Alcotest.(check int) "no evals when endpoints supplied" 0 r.Roots.f_evals

let test_brent_large_magnitude () =
  (* Relative termination: at |root| ~ 1e12 an absolute 1e-12 width is
     below the float spacing (~1.2e-4), so the old criterion could only
     stop on an exact zero.  With tol *. (1. +. |b|) this converges in a
     normal probe count. *)
  let root = 1.234e12 in
  let f x = (x /. root) -. 1. in
  let r = Roots.brent ~f ~lo:1e11 ~hi:9.9e12 () in
  Alcotest.(check bool) "relative accuracy" true
    (Float.abs (r.Roots.root -. root) /. root < 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "bounded probes (%d)" r.Roots.iterations)
    true (r.Roots.iterations < 80);
  (* same contract at tiny magnitudes: absolute tolerance near zero *)
  let r = Roots.brent ~f:(fun x -> x -. 2e-13) ~lo:(-1.) ~hi:1. () in
  Alcotest.(check bool) "small root" true (Float.abs (r.Roots.root -. 2e-13) < 1e-11)

let test_golden_minimum () =
  let f x = ((x -. 3.) ** 2.) +. 1. in
  let r = Roots.minimize_golden ~f ~lo:0. ~hi:10. () in
  check_close ~tol:1e-6 "argmin" 3. r.Roots.root;
  check_close ~tol:1e-6 "min value" 1. r.Roots.residual

(* ---------------- Fixed point ---------------- *)

let test_fixed_point_sqrt () =
  (* Heron's iteration for sqrt 7. *)
  let step x = 0.5 *. (x +. (7. /. x)) in
  let r = Fixed_point.iterate_scalar ~step ~tol:1e-12 10. in
  Alcotest.(check bool) "converged" true r.Fixed_point.converged;
  check_close ~tol:1e-9 "sqrt 7" (sqrt 7.) r.Fixed_point.value

let test_fixed_point_budget () =
  let r = Fixed_point.iterate_scalar ~max_iter:5 ~step:(fun x -> x +. 1.) ~tol:1e-9 0. in
  Alcotest.(check bool) "not converged" false r.Fixed_point.converged;
  Alcotest.(check int) "budget" 5 r.Fixed_point.iterations

let test_fixed_point_damping () =
  (* x -> -x oscillates; damping 0.5 lands on the fixed point 0. *)
  let r = Fixed_point.iterate_scalar ~damping:0.5 ~step:(fun x -> -.x) ~tol:1e-12 8. in
  Alcotest.(check bool) "converged with damping" true r.Fixed_point.converged;
  check_close ~tol:1e-9 "fixed point" 0. r.Fixed_point.value

let test_max_abs_diff () =
  check_float "max abs diff" 3. (Fixed_point.max_abs_diff [| 1.; 5. |] [| 2.; 2. |])

(* ---------------- Matrix ---------------- *)

let test_matrix_solve_known () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 5.; 10. |] in
  check_close "x0" 1. x.(0);
  check_close "x1" 3. x.(1)

let test_matrix_singular () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve a [| 1.; 1. |]))

let test_matrix_inverse () =
  let a = Matrix.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let product = Matrix.mul a (Matrix.inverse a) in
  Alcotest.(check bool) "a * a^-1 = I" true (Matrix.equal ~tol:1e-9 product (Matrix.identity 2))

let test_matrix_determinant () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_close "det" (-2.) (Matrix.determinant a);
  check_close "det singular" 0.
    (Matrix.determinant (Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |]))

let test_matrix_transpose_mul () =
  let a = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows at);
  Alcotest.(check int) "cols" 2 (Matrix.cols at);
  let g = Matrix.mul a at in
  check_close "gram 00" 14. (Matrix.get g 0 0);
  check_close "gram 01" 32. (Matrix.get g 0 1)

let test_matrix_qr () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let q, r = Matrix.qr a in
  Alcotest.(check bool) "q r = a" true (Matrix.equal ~tol:1e-9 (Matrix.mul q r) a);
  let qtq = Matrix.mul (Matrix.transpose q) q in
  Alcotest.(check bool) "q orthogonal" true (Matrix.equal ~tol:1e-9 qtq (Matrix.identity 3));
  (* r upper triangular *)
  Alcotest.(check bool) "r triangular" true (Float.abs (Matrix.get r 1 0) < 1e-9)

let test_least_squares_exact () =
  (* Overdetermined but consistent system. *)
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let x = Matrix.solve_least_squares a [| 2.; 3.; 5. |] in
  check_close "x0" 2. x.(0);
  check_close "x1" 3. x.(1)

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Matrix.mul_vec a [| 1.; 1. |] in
  check_float "y0" 3. y.(0);
  check_float "y1" 7. y.(1)

(* ---------------- Least squares ---------------- *)

let test_polyfit_recovers () =
  let xs = Array.init 20 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> 3. +. (2. *. x) -. (0.5 *. x *. x)) xs in
  let fit = Least_squares.polyfit ~degree:2 ~xs ~ys in
  check_close ~tol:1e-6 "c0" 3. fit.Least_squares.coefficients.(0);
  check_close ~tol:1e-6 "c1" 2. fit.Least_squares.coefficients.(1);
  check_close ~tol:1e-6 "c2" (-0.5) fit.Least_squares.coefficients.(2);
  check_close ~tol:1e-6 "r2" 1. fit.Least_squares.r_squared

let test_polyfit_through_origin () =
  let xs = [| 1.; 2.; 4.; 8.; 16. |] in
  let ys = Array.map (fun x -> (0.46 *. x) -. (2.3e-6 *. x *. x)) xs in
  let fit = Least_squares.polyfit_through_origin ~degree:2 ~xs ~ys in
  check_close ~tol:1e-6 "kappa" 0.46 fit.Least_squares.coefficients.(0);
  check_close ~tol:1e-9 "quad" (-2.3e-6) fit.Least_squares.coefficients.(1)

let test_fit_affine_in () =
  let xs = [| 128.; 256.; 512.; 1024. |] in
  let ys = Array.map (fun x -> 5.5 +. (0.0212 *. x)) xs in
  let fit = Least_squares.fit_affine_in ~h:(fun x -> x) ~xs ~ys in
  check_close ~tol:1e-6 "eps" 5.5 fit.Least_squares.coefficients.(0);
  check_close ~tol:1e-9 "alpha" 0.0212 fit.Least_squares.coefficients.(1)

let test_eval_poly () =
  check_float "horner" 20. (Least_squares.eval_poly [| 2.; 3.; 1. |] 3.)

let test_fit_r_squared_partial () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = [| 0.; 1.1; 1.9; 3.2 |] in
  let fit = Least_squares.polyfit ~degree:1 ~xs ~ys in
  Alcotest.(check bool) "good but imperfect" true
    (fit.Least_squares.r_squared > 0.97 && fit.Least_squares.r_squared < 1.)

(* ---------------- Derivative ---------------- *)

let test_derivative_central () =
  check_close ~tol:1e-5 "d/dx sin at 1" (cos 1.) (Derivative.central ~f:sin 1.)

let test_derivative_richardson () =
  check_close ~tol:1e-8 "richardson better" (cos 1.) (Derivative.richardson ~f:sin 1.)

let test_derivative_second () =
  check_close ~tol:1e-3 "d2/dx2 x^3 at 2" 12. (Derivative.second ~f:(fun x -> x ** 3.) 2.)

(* ---------------- Special ---------------- *)

let test_gamma_known_values () =
  check_close ~tol:1e-9 "gamma 1" 1. (Special.gamma 1.);
  check_close ~tol:1e-9 "gamma 2" 1. (Special.gamma 2.);
  check_close ~tol:1e-8 "gamma 5 = 24" 24. (Special.gamma 5.);
  check_close ~tol:1e-9 "gamma 1/2 = sqrt pi" (sqrt Float.pi) (Special.gamma 0.5)

let test_gamma_recurrence () =
  List.iter
    (fun x ->
      let lhs = Special.gamma (x +. 1.) and rhs = x *. Special.gamma x in
      Alcotest.(check bool) "Gamma(x+1) = x Gamma(x)" true
        (Float.abs (lhs -. rhs) /. rhs < 1e-9))
    [ 0.3; 1.7; 4.2; 9.9 ]

let test_log_gamma_large () =
  (* Stirling check at x = 100: ln Gamma(100) = ln 99!. *)
  let expected = ref 0. in
  for i = 2 to 99 do
    expected := !expected +. log (float_of_int i)
  done;
  check_close ~tol:1e-6 "ln 99!" !expected (Special.log_gamma 100.)

let test_factorial () =
  check_close ~tol:1e-9 "0!" 1. (Special.factorial 0);
  check_close ~tol:1e-9 "5!" 120. (Special.factorial 5);
  check_close ~tol:1e-3 "12!" 479001600. (Special.factorial 12)

(* ---------------- Sparse ---------------- *)

let test_sparse_build_get () =
  let m = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 2.); (0, 2, -1.); (2, 1, 5.) ] in
  Alcotest.(check int) "nnz" 3 (Sparse.nnz m);
  check_float "stored" 2. (Sparse.get m 0 0);
  check_float "stored 2" (-1.) (Sparse.get m 0 2);
  check_float "absent" 0. (Sparse.get m 1 1)

let test_sparse_duplicates_sum () =
  let m = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 0, 2.); (1, 1, 3.); (1, 1, -3.) ] in
  check_float "summed" 3. (Sparse.get m 0 0);
  Alcotest.(check int) "cancelled entry dropped" 1 (Sparse.nnz m)

let test_sparse_mul_vec () =
  let m = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 0, 1.); (0, 2, 2.); (1, 1, 3.) ] in
  let y = Sparse.mul_vec m [| 1.; 2.; 3. |] in
  check_float "y0" 7. y.(0);
  check_float "y1" 6. y.(1)

let test_sparse_transpose () =
  let m = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 2, 5.); (1, 0, 7.) ] in
  let t = Sparse.transpose m in
  Alcotest.(check int) "rows" 3 (Sparse.rows t);
  check_float "moved" 5. (Sparse.get t 2 0);
  check_float "moved 2" 7. (Sparse.get t 0 1)

let test_sparse_poisson () =
  let m = Sparse.poisson_2d ~n:4 in
  Alcotest.(check int) "size" 16 (Sparse.rows m);
  Alcotest.(check bool) "symmetric" true (Sparse.is_symmetric m);
  check_float "diagonal" 4. (Sparse.get m 5 5);
  check_float "coupling" (-1.) (Sparse.get m 5 6);
  (* Corner row has only 2 neighbours. *)
  let row_sum = ref 0. in
  Sparse.row_iter m 0 (fun _ v -> row_sum := !row_sum +. v);
  check_float "corner row sum" 2. !row_sum

let test_sparse_validation () =
  Alcotest.(check bool) "bad index rejected" true
    (try
       ignore (Sparse.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.) ]);
       false
     with Invalid_argument _ -> true)

(* ---------------- Cg ---------------- *)

let test_cg_solves_poisson () =
  let a = Sparse.poisson_2d ~n:10 in
  let n = Sparse.rows a in
  let x_true = Array.init n (fun i -> sin (float_of_int i)) in
  let b = Sparse.mul_vec a x_true in
  let s = Cg.solve ~tol:1e-10 ~a ~b () in
  Alcotest.(check bool) "converged" true (Cg.converged ~tol:1e-9 s);
  Array.iteri
    (fun i v -> check_close ~tol:1e-7 "solution component" x_true.(i) v)
    s.Cg.x

let test_cg_residual_decreases () =
  let a = Sparse.poisson_2d ~n:8 in
  let b = Array.make (Sparse.rows a) 1. in
  let s0 = Cg.init ~a ~b () in
  let s1 = Cg.step ~a s0 in
  let s5 = List.fold_left (fun s _ -> Cg.step ~a s) s1 [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "monotone-ish residual" true
    (Cg.residual_norm s5 < Cg.residual_norm s0)

let test_cg_serialize_roundtrip () =
  let a = Sparse.poisson_2d ~n:6 in
  let b = Array.init (Sparse.rows a) (fun i -> float_of_int (i mod 5)) in
  let s = List.fold_left (fun s _ -> Cg.step ~a s) (Cg.init ~a ~b ()) [ 1; 2; 3 ] in
  let s' = Cg.deserialize (Cg.serialize s) in
  Alcotest.(check bool) "bit-for-bit" true (Cg.equal s s')

let test_cg_resume_is_exact () =
  (* Continuing from a deserialized state matches the uninterrupted run
     exactly - the checkpointability property. *)
  let a = Sparse.poisson_2d ~n:6 in
  let b = Array.init (Sparse.rows a) (fun i -> 1. +. float_of_int (i mod 3)) in
  let run k = List.fold_left (fun s _ -> Cg.step ~a s) (Cg.init ~a ~b ()) (List.init k Fun.id) in
  let direct = run 10 in
  let resumed =
    let mid = Cg.deserialize (Cg.serialize (run 5)) in
    List.fold_left (fun s _ -> Cg.step ~a s) mid [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "identical" true (Cg.equal direct resumed)

let test_cg_validation () =
  let a = Sparse.poisson_2d ~n:3 in
  Alcotest.(check bool) "rhs mismatch" true
    (try
       ignore (Cg.init ~a ~b:[| 1.; 2. |] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "garbage payload" true
    (try
       ignore (Cg.deserialize (Bytes.of_string "nope"));
       false
     with Invalid_argument _ -> true)

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"rng int respects bound" ~count:500
      (pair small_int (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let rng = Rng.of_int seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"exponential samples non-negative" ~count:500
      (pair small_int (float_range 1e-6 100.))
      (fun (seed, rate) ->
        let rng = Rng.of_int seed in
        Dist.exponential rng ~rate >= 0.);
    Test.make ~name:"percentile within min/max" ~count:300
      (pair (array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
         (float_range 0. 1.))
      (fun (xs, p) ->
        let v = Stats.percentile xs p in
        v >= Stats.min xs -. 1e-9 && v <= Stats.max xs +. 1e-9);
    Test.make ~name:"matrix solve has small residual" ~count:100
      (array_of_size (Gen.return 9) (float_range (-10.) 10.))
      (fun entries ->
        let a =
          Matrix.of_arrays
            [| Array.sub entries 0 3; Array.sub entries 3 3; Array.sub entries 6 3 |]
        in
        let b = [| 1.; 2.; 3. |] in
        match Matrix.solve a b with
        | x ->
            let r = Matrix.mul_vec a x in
            Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-6) r b
        | exception Matrix.Singular -> true);
    Test.make ~name:"polyfit degree-1 reproduces line" ~count:200
      (pair (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (a, b) ->
        let xs = Array.init 10 float_of_int in
        let ys = Array.map (fun x -> a +. (b *. x)) xs in
        let fit = Least_squares.polyfit ~degree:1 ~xs ~ys in
        Float.abs (fit.Least_squares.coefficients.(0) -. a) < 1e-6
        && Float.abs (fit.Least_squares.coefficients.(1) -. b) < 1e-6);
    Test.make ~name:"welford matches batch mean" ~count:200
      (array_of_size (Gen.int_range 2 100) (float_range (-1e3) 1e3))
      (fun xs ->
        let o = Stats.Online.create () in
        Array.iter (Stats.Online.add o) xs;
        Float.abs (Stats.Online.mean o -. Stats.mean xs) < 1e-6);
    Test.make ~name:"itp_integer replays bisect_integer bitwise" ~count:500
      (quad (float_range 1. 1e6) (float_range 1. 1e6) (float_range 0.3 3.)
         (float_range (-1.) 1.))
      (fun (a, b, p, skew) ->
        let lo = Float.min a b and hi = Float.max a b +. 1. in
        (* monotone curve with a root placed anywhere in the bracket
           (skew biases it toward an endpoint to hit shallow replays) *)
        let t = 0.5 +. (0.49 *. skew) in
        let root = lo +. (t *. (hi -. lo)) in
        let f x = ((x -. lo +. 1.) ** p) -. ((root -. lo +. 1.) ** p) in
        let slow = Roots.bisect_integer ~f ~lo ~hi () in
        let fast = Roots.itp_integer ~f ~lo ~hi () in
        Int64.bits_of_float slow.Roots.root = Int64.bits_of_float fast.Roots.root
        && slow.Roots.iterations = fast.Roots.iterations
        (* worst case: ITP's minmax envelope refines to 1/4 of the
           bisection cell width, costing ~2 extra probes, plus the n0=1
           slack probe, the replay's interior probes, and the final
           residual evaluation *)
        && fast.Roots.f_evals <= slow.Roots.f_evals + 6);
    Test.make ~name:"rng stream families are pairwise disjoint" ~count:25
      (pair small_int (int_range 2 8))
      (fun (seed, n_streams) ->
        let streams = Rng.streams ~n:n_streams (Rng.of_int seed) in
        let windows = Array.map (fun rng -> sorted_window rng 2_048) streams in
        let ok = ref true in
        Array.iteri
          (fun i wi ->
            Array.iteri
              (fun j wj -> if i < j && common_count wi wj > 0 then ok := false)
              windows)
          windows;
        !ok);
    Test.make ~name:"rng streams are schedule-independent" ~count:50
      (pair small_int (int_range 1 8))
      (fun (seed, n_streams) ->
        (* The family is fixed by (seed, n): consuming stream i first,
           last, or not at all never changes what stream i yields. *)
        let a = Rng.streams ~n:n_streams (Rng.of_int seed) in
        let b = Rng.streams ~n:n_streams (Rng.of_int seed) in
        let draws rng = Array.init 64 (fun _ -> Rng.int64 rng) in
        let forward = Array.map draws a in
        let backward =
          let out = Array.make n_streams [||] in
          for i = n_streams - 1 downto 0 do
            out.(i) <- draws b.(i)
          done;
          out
        in
        forward = backward) ]

let () =
  Alcotest.run "ckpt_numerics"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "jump" `Quick test_rng_jump;
          Alcotest.test_case "bool fair" `Quick test_rng_bool;
          Alcotest.test_case "substreams do not overlap (1e6 window)" `Quick
            test_rng_substreams_do_not_overlap ] );
      ( "dist",
        [ Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential cdf/pdf" `Quick test_exponential_cdf_pdf;
          Alcotest.test_case "weibull shape 1" `Quick test_weibull_shape1_is_exponential;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "poisson pmf sums" `Quick test_poisson_pmf_sums;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "jitter mean" `Quick test_jitter_mean_preserved ] );
      ( "stats",
        [ Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "singleton" `Quick test_stats_single;
          Alcotest.test_case "online vs batch" `Quick test_stats_online_matches_batch;
          Alcotest.test_case "confidence degenerate" `Quick test_stats_confidence;
          Alcotest.test_case "relative error" `Quick test_relative_error ] );
      ( "histogram",
        [ Alcotest.test_case "basic counts" `Quick test_histogram_basic;
          Alcotest.test_case "bounds and density" `Quick test_histogram_bounds_density ] );
      ( "roots",
        [ Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
          Alcotest.test_case "bisect no bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "integer bisection" `Quick test_bisect_integer_stops_early;
          Alcotest.test_case "newton" `Quick test_newton_cuberoot;
          Alcotest.test_case "newton flat" `Quick test_newton_diverges;
          Alcotest.test_case "secant" `Quick test_secant;
          Alcotest.test_case "brent" `Quick test_brent_matches_bisect;
          Alcotest.test_case "itp bitwise replay" `Quick test_itp_integer_matches_bisect;
          Alcotest.test_case "itp eval budget" `Quick test_itp_integer_fewer_evals;
          Alcotest.test_case "itp endpoint roots" `Quick test_itp_integer_endpoint_roots;
          Alcotest.test_case "brent large magnitude" `Quick test_brent_large_magnitude;
          Alcotest.test_case "golden section" `Quick test_golden_minimum ] );
      ( "fixed-point",
        [ Alcotest.test_case "heron sqrt" `Quick test_fixed_point_sqrt;
          Alcotest.test_case "budget" `Quick test_fixed_point_budget;
          Alcotest.test_case "damping" `Quick test_fixed_point_damping;
          Alcotest.test_case "max abs diff" `Quick test_max_abs_diff ] );
      ( "matrix",
        [ Alcotest.test_case "solve known" `Quick test_matrix_solve_known;
          Alcotest.test_case "singular raises" `Quick test_matrix_singular;
          Alcotest.test_case "inverse" `Quick test_matrix_inverse;
          Alcotest.test_case "determinant" `Quick test_matrix_determinant;
          Alcotest.test_case "transpose/mul" `Quick test_matrix_transpose_mul;
          Alcotest.test_case "qr" `Quick test_matrix_qr;
          Alcotest.test_case "least squares exact" `Quick test_least_squares_exact;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec ] );
      ( "least-squares",
        [ Alcotest.test_case "polyfit recovers" `Quick test_polyfit_recovers;
          Alcotest.test_case "through origin" `Quick test_polyfit_through_origin;
          Alcotest.test_case "affine in H" `Quick test_fit_affine_in;
          Alcotest.test_case "eval poly" `Quick test_eval_poly;
          Alcotest.test_case "partial r2" `Quick test_fit_r_squared_partial ] );
      ( "derivative",
        [ Alcotest.test_case "central" `Quick test_derivative_central;
          Alcotest.test_case "richardson" `Quick test_derivative_richardson;
          Alcotest.test_case "second" `Quick test_derivative_second ] );
      ( "sparse",
        [ Alcotest.test_case "build/get" `Quick test_sparse_build_get;
          Alcotest.test_case "duplicates sum" `Quick test_sparse_duplicates_sum;
          Alcotest.test_case "mul_vec" `Quick test_sparse_mul_vec;
          Alcotest.test_case "transpose" `Quick test_sparse_transpose;
          Alcotest.test_case "poisson stencil" `Quick test_sparse_poisson;
          Alcotest.test_case "validation" `Quick test_sparse_validation ] );
      ( "cg",
        [ Alcotest.test_case "solves poisson" `Quick test_cg_solves_poisson;
          Alcotest.test_case "residual decreases" `Quick test_cg_residual_decreases;
          Alcotest.test_case "serialize roundtrip" `Quick test_cg_serialize_roundtrip;
          Alcotest.test_case "resume exact" `Quick test_cg_resume_is_exact;
          Alcotest.test_case "validation" `Quick test_cg_validation ] );
      ( "special",
        [ Alcotest.test_case "gamma known values" `Quick test_gamma_known_values;
          Alcotest.test_case "gamma recurrence" `Quick test_gamma_recurrence;
          Alcotest.test_case "log gamma large" `Quick test_log_gamma_large;
          Alcotest.test_case "factorial" `Quick test_factorial ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
