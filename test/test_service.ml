(* Tests for the ckpt_service batch planning layer: fingerprinting,
   LRU cache, work queue, domain pool, protocol and the end-to-end
   service — including the property that parallel solving is
   bit-identical to sequential [Optimizer.solve]. *)

open Ckpt_model
open Ckpt_service
module Pool = Ckpt_parallel.Pool
module Work_queue = Ckpt_parallel.Work_queue
module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec

(* A small, fast-to-solve problem family used throughout. *)
let mk_problem ?(te_days = 1e4) ?(kappa = 0.46) ?(n_star = 1e5) ?(alloc = 60.)
    ?(rates = "16-12-8-4") ?(levels = Level.fti_fusion) () =
  { Optimizer.te = te_days *. 86_400.;
    speedup = Speedup.quadratic ~kappa ~n_star;
    levels;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:n_star rates }

let base_problem = mk_problem ()
let problem_json p = Json.to_string (Codec.problem_to_json p)

let query ?(solution = Protocol.Ml_opt) ?fixed_n ?(delta = 1e-9) problem =
  { Protocol.problem; solution; fixed_n; delta }

(* ---------------- fingerprint ---------------- *)

let test_fingerprint_deterministic () =
  let f1 = Fingerprint.of_problem base_problem in
  let f2 = Fingerprint.of_problem (mk_problem ()) in
  Alcotest.(check string) "same problem, same fingerprint" f1 f2;
  Alcotest.(check int) "16 hex digits" 16 (String.length f1)

let test_fingerprint_distinguishes () =
  let f = Fingerprint.of_problem base_problem in
  List.iter
    (fun (what, p') ->
      Alcotest.(check bool) what false (Fingerprint.of_problem p' = f))
    [ ("te", mk_problem ~te_days:2e4 ());
      ("kappa", mk_problem ~kappa:0.47 ());
      ("alloc", mk_problem ~alloc:61. ());
      ("rates", mk_problem ~rates:"16-12-8-5" ());
      ("levels", mk_problem ~levels:Level.constant_pfs_case ()) ]

let test_fingerprint_ignores_names () =
  let renamed =
    Array.map (fun (l : Level.t) -> Level.v ~name:(l.Level.name ^ "-x") ~restart:l.Level.restart l.Level.ckpt)
      base_problem.Optimizer.levels
  in
  Alcotest.(check string) "names are labels"
    (Fingerprint.of_problem base_problem)
    (Fingerprint.of_problem { base_problem with Optimizer.levels = renamed })

(* Clean decimal values (few significant digits) perturbed by relative
   noise far below the fingerprint precision must not change the
   fingerprint; perturbations above it must. *)
let qcheck_fingerprint_noise =
  let open QCheck in
  let gen =
    Gen.(
      triple
        (map2 (fun m e -> float_of_string (Printf.sprintf "%de%d" m e)) (int_range 1 999)
           (int_range (-2) 6))
        (float_bound_inclusive 1.)
        bool)
  in
  Test.make ~name:"fingerprint invariant under sub-precision noise" ~count:200
    (make gen) (fun (x, u, negate) ->
      let x = if negate then -.x else x in
      let noisy = x *. (1. +. ((u -. 0.5) *. 1e-13)) in
      let coarse = x *. (1. +. 1e-4) in
      let fp v = Fingerprint.float_repr ~precision:9 v in
      fp x = fp noisy && fp x <> fp coarse)

let qcheck_fingerprint_problem_noise =
  let open QCheck in
  Test.make ~name:"problem fingerprint invariant under sub-precision noise" ~count:50
    (make Gen.(float_bound_inclusive 1.)) (fun u ->
      let wiggle v = v *. (1. +. ((u -. 0.5) *. 1e-13)) in
      let noisy =
        { base_problem with
          Optimizer.te = wiggle base_problem.Optimizer.te;
          alloc = wiggle base_problem.Optimizer.alloc }
      in
      let coarse = { base_problem with Optimizer.te = base_problem.Optimizer.te *. 1.001 } in
      Fingerprint.of_problem noisy = Fingerprint.of_problem base_problem
      && Fingerprint.of_problem coarse <> Fingerprint.of_problem base_problem)

(* ---------------- LRU cache ---------------- *)

let test_lru_eviction () =
  let c = Lru_cache.create ~capacity:3 in
  Lru_cache.add c "a" 1;
  Lru_cache.add c "b" 2;
  Lru_cache.add c "c" 3;
  Alcotest.(check int) "full" 3 (Lru_cache.length c);
  Lru_cache.add c "d" 4;
  Alcotest.(check int) "still at capacity" 3 (Lru_cache.length c);
  Alcotest.(check bool) "LRU key evicted" false (Lru_cache.mem c "a");
  Alcotest.(check bool) "recent keys stay" true
    (Lru_cache.mem c "b" && Lru_cache.mem c "c" && Lru_cache.mem c "d");
  Alcotest.(check int) "one eviction" 1 (Lru_cache.evictions c)

let test_lru_recency_refresh () =
  let c = Lru_cache.create ~capacity:2 in
  Lru_cache.add c "a" 1;
  Lru_cache.add c "b" 2;
  (* Touch "a" so "b" becomes the eviction candidate. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru_cache.find c "a");
  Lru_cache.add c "c" 3;
  Alcotest.(check bool) "refreshed key survives" true (Lru_cache.mem c "a");
  Alcotest.(check bool) "stale key evicted" false (Lru_cache.mem c "b")

let test_lru_replace () =
  let c = Lru_cache.create ~capacity:2 in
  Lru_cache.add c "a" 1;
  Lru_cache.add c "a" 10;
  Alcotest.(check int) "no duplicate" 1 (Lru_cache.length c);
  Alcotest.(check (option int)) "replaced" (Some 10) (Lru_cache.find c "a")

let qcheck_lru_capacity_bound =
  let open QCheck in
  Test.make ~name:"LRU never exceeds capacity" ~count:100
    (make Gen.(pair (int_range 1 8) (list_size (int_range 0 50) (int_range 0 15))))
    (fun (cap, keys) ->
      let c = Lru_cache.create ~capacity:cap in
      List.iter (fun k -> Lru_cache.add c (string_of_int k) k) keys;
      Lru_cache.length c = min cap (List.length (List.sort_uniq compare keys)))

(* ---------------- sharded cache ---------------- *)

let test_sharded_basics () =
  let c = Sharded_cache.create ~shards:4 ~capacity:10 () in
  Alcotest.(check int) "shards" 4 (Sharded_cache.shards c);
  Alcotest.(check int) "capacity adds up" 10 (Sharded_cache.capacity c);
  (* Fingerprint-shaped keys land on shards by leading nibble. *)
  List.iter
    (fun (k, v) -> Sharded_cache.add c k v)
    [ ("0abc", 1); ("1abc", 2); ("aabc", 3); ("0abc", 10) ];
  Alcotest.(check int) "replace does not duplicate" 3 (Sharded_cache.length c);
  Alcotest.(check (option int)) "replaced" (Some 10) (Sharded_cache.find c "0abc");
  Alcotest.(check bool) "mem" true (Sharded_cache.mem c "aabc");
  Sharded_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Sharded_cache.length c)

let test_sharded_validation () =
  let rejected f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-power-of-two" true
    (rejected (fun () -> (Sharded_cache.create ~shards:3 ~capacity:9 () : int Sharded_cache.t)));
  Alcotest.(check bool) "capacity below shards" true
    (rejected (fun () -> (Sharded_cache.create ~shards:8 ~capacity:4 () : int Sharded_cache.t)))

let qcheck_sharded_capacity_bound =
  let open QCheck in
  Test.make ~name:"sharded cache never exceeds its global budget" ~count:100
    (make Gen.(pair (int_range 0 2) (list_size (int_range 0 80) (int_range 0 255))))
    (fun (log_shards, keys) ->
      let shards = 1 lsl log_shards in
      let c = Sharded_cache.create ~shards ~capacity:(max shards 6) () in
      List.iter (fun k -> Sharded_cache.add c (Printf.sprintf "%02x" k) k) keys;
      Sharded_cache.length c <= Sharded_cache.capacity c
      && Sharded_cache.length c
         <= List.length (List.sort_uniq compare keys))

(* ---------------- work queue + pool ---------------- *)

let test_work_queue_fifo () =
  let q = Work_queue.create () in
  List.iter (Work_queue.push q) [ 1; 2; 3 ];
  Work_queue.close q;
  let p1 = Work_queue.pop q in
  let p2 = Work_queue.pop q in
  let p3 = Work_queue.pop q in
  let p4 = Work_queue.pop q in
  Alcotest.(check (list (option int))) "drain in order"
    [ Some 1; Some 2; Some 3; None ] [ p1; p2; p3; p4 ];
  Alcotest.check_raises "push after close" Work_queue.Closed (fun () -> Work_queue.push q 4)

let test_pool_map_order () =
  let pool = Pool.create ~workers:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 100 Fun.id in
  let ys = Pool.map pool ~f:(fun x -> x * x) xs in
  Alcotest.(check bool) "order preserved" true (ys = Array.map (fun x -> x * x) xs)

let test_pool_exception_does_not_kill_worker () =
  let pool = Pool.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match Pool.map pool ~f:(fun x -> if x = 1 then failwith "boom" else x) [| 0; 1; 2 |] with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "first error re-raised" "boom" m);
  (* The pool must still be operational after a failing job. *)
  let ys = Pool.map pool ~f:(fun x -> x + 1) [| 1; 2; 3 |] in
  Alcotest.(check bool) "pool survives" true (ys = [| 2; 3; 4 |])

(* The tentpole property: fanning solves across domains returns plans
   bit-identical to solving sequentially in this domain. *)
let qcheck_parallel_bit_identical =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 4 10)
        (triple (float_range 5e3 5e4) (float_range 0.2 0.8) (float_range 2e4 2e5)))
  in
  Test.make ~name:"pool solves bit-identical to sequential Optimizer.solve" ~count:5
    (make gen) (fun specs ->
      let queries =
        specs
        |> List.map (fun (te_days, kappa, fixed_n) ->
               query ~fixed_n (mk_problem ~te_days ~kappa ()))
        |> Array.of_list
      in
      let sequential = Array.map Planner.run_query queries in
      let pool = Pool.create ~workers:4 () in
      let parallel =
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        Pool.map pool ~f:Planner.run_query queries
      in
      parallel = sequential)

(* ---------------- protocol ---------------- *)

let test_protocol_parse_plan () =
  let line =
    Printf.sprintf {|{"id": 7, "op": "plan", "solution": "sl-opt", "problem": %s}|}
      (problem_json base_problem)
  in
  match Protocol.parse_request line with
  | { Protocol.id = Some (Json.Number 7.); request = Ok (Protocol.Plan q) } ->
      Alcotest.(check string) "solution" "sl-opt" (Protocol.solution_to_string q.Protocol.solution);
      Alcotest.(check (float 1e-9)) "te round-trips" base_problem.Optimizer.te
        q.Protocol.problem.Optimizer.te
  | _ -> Alcotest.fail "expected a parsed plan request"

let expect_error_code line code =
  match (Protocol.parse_request line).Protocol.request with
  | Error e -> Alcotest.(check string) ("code for " ^ line) code e.Protocol.code
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected %s error for %s" code line)

let test_protocol_errors () =
  expect_error_code "not json" "parse";
  expect_error_code {|{"problem": {}}|} "invalid-request";
  expect_error_code {|{"op": "warp"}|} "invalid-request";
  expect_error_code {|{"op": "plan"}|} "invalid-request";
  expect_error_code {|{"op": "plan", "problem": {"te": 1}}|} "invalid-problem";
  expect_error_code
    (Printf.sprintf {|{"op": "plan", "solution": "warp", "problem": %s}|}
       (problem_json base_problem))
    "invalid-request";
  expect_error_code
    (Printf.sprintf {|{"op": "sweep", "param": "scale", "values": [1, -2], "problem": %s}|}
       (problem_json base_problem))
    "invalid-request"

(* Satellite: a spec/hierarchy level-count mismatch must come back as a
   structured invalid-problem response, not an exception. *)
let test_protocol_level_count_mismatch () =
  let mismatched =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "plan");
           ("problem",
            (* 4 levels but only 3 rates: Codec accepts shapes the
               optimizer rejects only via check_problem when arities
               match; here the codec itself guards, so also test the
               deeper path through a 0-level hierarchy. *)
            Json.Obj
              [ ("te", Json.Number 8.64e8);
                ("speedup",
                 Json.Obj
                   [ ("kind", Json.String "quadratic"); ("kappa", Json.Number 0.46);
                     ("n_star", Json.Number 1e5) ]);
                ("levels", Json.List []);
                ("alloc", Json.Number 60.);
                ("rates_per_day", Json.List []);
                ("baseline_scale", Json.Number 1e5) ]) ])
  in
  (match (Protocol.parse_request mismatched).Protocol.request with
  | Error e -> Alcotest.(check string) "empty hierarchy rejected" "invalid-problem" e.Protocol.code
  | Ok _ -> Alcotest.fail "0-level problem must be rejected");
  let arity =
    Printf.sprintf {|{"op": "plan", "problem": %s}|}
      (Json.to_string
         (match Codec.problem_to_json base_problem with
         | Json.Obj fields ->
             Json.Obj
               (List.map
                  (function
                    | ("rates_per_day", _) -> ("rates_per_day", Json.float_array [| 16.; 12. |])
                    | f -> f)
                  fields)
         | _ -> assert false))
  in
  match (Protocol.parse_request arity).Protocol.request with
  | Error e -> Alcotest.(check string) "rate arity rejected" "invalid-problem" e.Protocol.code
  | Ok _ -> Alcotest.fail "mismatched rates/levels must be rejected"

let test_check_problem_direct () =
  (* The service maps this Invalid_argument to a structured error. *)
  let bad =
    { base_problem with Optimizer.spec = Failure_spec.v ~baseline_scale:1e5 [| 1.; 2. |] }
  in
  Alcotest.check_raises "check_problem raises"
    (Invalid_argument "Optimizer: failure spec level count differs from hierarchy")
    (fun () -> Optimizer.check_problem bad)

(* ---------------- planner ---------------- *)

let test_planner_cache_and_dedup () =
  let metrics = Metrics.create () in
  let planner = Planner.create ~cache_capacity:16 metrics in
  let q1 = query ~fixed_n:2e4 base_problem in
  let q2 = query ~fixed_n:3e4 base_problem in
  (* q1 twice in one batch: 1 solve, 1 dedup hit. *)
  let r = Planner.solve_batch planner [| q1; q2; q1 |] in
  (match (r.(0), r.(2)) with
  | ( Ok { Protocol.plan = p0; cached = false; degraded = None },
      Ok { Protocol.plan = p2; cached = true; degraded = None } ) ->
      Alcotest.(check bool) "dedup returns same plan" true (p0 = p2)
  | _ -> Alcotest.fail "expected fresh + deduped plan");
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "two solves" 2 s.Metrics.solves;
  Alcotest.(check int) "one hit" 1 s.Metrics.cache_hits;
  Alcotest.(check int) "two misses" 2 s.Metrics.cache_misses;
  (* Second batch: all cached. *)
  let r' = Planner.solve_batch planner [| q1; q2 |] in
  Array.iter
    (function
      | Ok { Protocol.cached; _ } -> Alcotest.(check bool) "served from cache" true cached
      | Error _ -> Alcotest.fail "unexpected error")
    r';
  Alcotest.(check int) "no new solves" 2 (Metrics.snapshot metrics).Metrics.solves

let test_planner_key_varies_with_options () =
  let planner = Planner.create (Metrics.create ()) in
  let k q = Planner.query_key planner q in
  let base = query base_problem in
  Alcotest.(check bool) "solution in key" false
    (k base = k { base with Protocol.solution = Protocol.Sl_opt });
  Alcotest.(check bool) "fixed_n in key" false
    (k base = k { base with Protocol.fixed_n = Some 1e4 });
  Alcotest.(check bool) "delta in key" false
    (k base = k { base with Protocol.delta = 1e-6 });
  Alcotest.(check string) "noise-invariant" (k base)
    (k (query (mk_problem ~te_days:(1e4 *. (1. +. 1e-14)) ())))

(* ---------------- service end-to-end ---------------- *)

let test_service_sweep_cache_and_order () =
  let service = Service.create ~workers:4 ~cache_capacity:512 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let pj = problem_json base_problem in
  let sweep id values =
    Printf.sprintf {|{"id": %d, "op": "sweep", "param": "scale", "values": [%s], "problem": %s}|}
      id
      (String.concat ", " (List.map string_of_float values))
      pj
  in
  let coarse = [ 1e4; 2e4; 3e4; 4e4 ] in
  let fine = [ 2e4; 2.5e4; 3e4; 3.5e4 ] in
  let responses =
    Service.handle_batch service
      [ sweep 1 coarse; sweep 2 fine; {|{"id": 3, "op": "stats"}|} ]
  in
  Alcotest.(check int) "one response per request" 3 (List.length responses);
  List.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "response %d ok" i) true (Protocol.response_ok r);
      match Json.member "id" r with
      | Some (Json.Number id) -> Alcotest.(check int) "order preserved" (i + 1) (int_of_float id)
      | _ -> Alcotest.fail "missing id")
    responses;
  (* 2e4 and 3e4 appear in both sweeps: 8 queries, 6 unique. *)
  let s = Metrics.snapshot (Service.metrics service) in
  Alcotest.(check int) "8 queries" 8 s.Metrics.queries;
  Alcotest.(check int) "6 solves" 6 s.Metrics.solves;
  Alcotest.(check int) "2 cache hits" 2 s.Metrics.cache_hits;
  (* The swept plans must equal direct sequential solves. *)
  let direct n = Planner.run_query (query ~fixed_n:n base_problem) in
  let sweep1 = List.nth responses 0 in
  (match Json.list_field "results" sweep1 with
  | Some points ->
      List.iter2
        (fun v point ->
          match Option.map Codec.plan_of_json (Json.member "plan" point) with
          | Some (Ok plan) ->
              Alcotest.(check bool)
                (Printf.sprintf "parallel plan at n=%g bit-identical" v)
                true (plan = direct v)
          | _ -> Alcotest.fail "sweep point has no plan")
        coarse points
  | None -> Alcotest.fail "sweep response has no results");
  (* Hit rate must be reported in the stats response. *)
  let stats = List.nth responses 2 in
  match Option.bind (Json.member "stats" stats) (Json.member "cache") with
  | Some cache ->
      Alcotest.(check (option (float 1e-9))) "hit rate reported" (Some 0.25)
        (Json.float_field "hit_rate" cache)
  | None -> Alcotest.fail "stats response has no cache section"

(* Acceptance-shaped property: a batch through 4 workers equals the same
   batch through a worker-less service and direct sequential solves. *)
let qcheck_service_parallel_equals_sequential =
  let open QCheck in
  Test.make ~name:"service: 4-worker batch bit-identical to sequential" ~count:3
    (make Gen.(list_size (int_range 3 6) (float_range 1e4 9e4))) (fun values ->
      let pj = problem_json base_problem in
      let lines =
        List.map
          (fun v -> Printf.sprintf {|{"op": "plan", "fixed_n": %.3f, "problem": %s}|} v pj)
          values
      in
      let run workers =
        let service = Service.create ~workers () in
        Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
        List.map Json.to_string (Service.handle_batch service lines)
      in
      run 4 = run 0)

let test_service_error_isolation () =
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let responses =
    Service.handle_batch service
      [ "garbage";
        Printf.sprintf {|{"id": "good", "op": "plan", "fixed_n": 2e4, "problem": %s}|}
          (problem_json base_problem) ]
  in
  match responses with
  | [ bad; good ] ->
      Alcotest.(check bool) "bad line fails" false (Protocol.response_ok bad);
      Alcotest.(check bool) "good line unaffected" true (Protocol.response_ok good);
      Alcotest.(check int) "one error counted" 1
        (Metrics.snapshot (Service.metrics service)).Metrics.errors
  | _ -> Alcotest.fail "expected two responses"

(* Acceptance: on hardware with cores to spare, a 4-worker pool must
   answer a large all-miss batch faster than 1 worker.  On a single-core
   machine (this is checked, not assumed) domains cannot run in
   parallel and extra ones only add stop-the-world GC synchronization,
   so the comparison is skipped rather than asserted backwards. *)
let test_service_parallel_speedup () =
  if Domain.recommended_domain_count () < 4 then
    Alcotest.skip ()
  else begin
    let pj = problem_json base_problem in
    let lines =
      [ Printf.sprintf {|{"op": "sweep", "param": "scale", "values": [%s], "problem": %s}|}
          (String.concat ", " (List.init 400 (fun i -> string_of_float (1e4 +. (float_of_int i *. 150.)))))
          pj ]
    in
    let time workers =
      let service = Service.create ~workers ~cache_capacity:1024 () in
      Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
      let t0 = Metrics.now_ms () in
      ignore (Service.handle_batch service lines);
      Metrics.now_ms () -. t0
    in
    let t1 = time 1 and t4 = time 4 in
    Alcotest.(check bool)
      (Printf.sprintf "4 workers (%.1f ms) beat 1 worker (%.1f ms)" t4 t1)
      true (t4 < t1)
  end

let test_service_simulate_validate () =
  let service = Service.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let line =
    Printf.sprintf
      {|{"op": "simulate-validate", "replications": 5, "seed": 42, "fixed_n": 2e4, "problem": %s}|}
      (problem_json base_problem)
  in
  let r = Service.handle_line service line in
  Alcotest.(check bool) "ok" true (Protocol.response_ok r);
  match (Json.member "simulated" r, Json.float_field "predicted_wall_clock" r) with
  | Some sim, Some predicted ->
      Alcotest.(check (option (float 0.))) "replications" (Some 5.)
        (Json.float_field "replications" sim);
      let mean = Option.get (Json.float_field "mean" sim) in
      Alcotest.(check bool) "simulated mean within 50% of prediction" true
        (Float.abs (mean -. predicted) /. predicted < 0.5)
  | _ -> Alcotest.fail "missing simulation payload"

(* ---------------- wire fastpath ---------------- *)

(* Envelope equivalence, with problems compared through the codec
   (speedups embed closures, so structural equality is off the table). *)
let wire_query_eq (a : Protocol.query) (b : Protocol.query) =
  Codec.problem_to_json a.Protocol.problem = Codec.problem_to_json b.Protocol.problem
  && a.Protocol.solution = b.Protocol.solution
  && a.Protocol.fixed_n = b.Protocol.fixed_n
  && a.Protocol.delta = b.Protocol.delta

let wire_request_eq a b =
  match (a, b) with
  | Protocol.Plan qa, Protocol.Plan qb -> wire_query_eq qa qb
  | Protocol.Batch_plan { queries = qa }, Protocol.Batch_plan { queries = qb } ->
      Array.length qa = Array.length qb && Array.for_all2 wire_query_eq qa qb
  | ( Protocol.Sweep { base = ba; param = pa; values = va },
      Protocol.Sweep { base = bb; param = pb; values = vb } ) ->
      wire_query_eq ba bb && pa = pb && va = vb
  | _ -> a = b

let wire_envelope_eq (a : Protocol.envelope) (b : Protocol.envelope) =
  a.Protocol.id = b.Protocol.id
  &&
  match (a.Protocol.request, b.Protocol.request) with
  | Ok ra, Ok rb -> wire_request_eq ra rb
  | Error ea, Error eb -> ea = eb
  | _ -> false

let test_wire_parse_equivalence () =
  let pj = problem_json base_problem in
  let lines =
    [ Printf.sprintf {|{"op":"plan","problem":%s}|} pj;
      Printf.sprintf {|{"op":"plan","fixed_n":2e4,"problem":%s}|} pj;
      Printf.sprintf {|{"id":7,"op":"plan","solution":"sl-opt","delta":1e-6,"problem":%s}|} pj;
      Printf.sprintf {|{"problem":%s,"op":"plan","id":"late-op"}|} pj;
      Printf.sprintf {| { "op" : "plan" ,
                          "fixed_n" : 31000.5 , "problem" : %s } |} pj;
      Printf.sprintf {|{"op":"batch-plan","fixed_n":2e4,"problems":[%s,%s]}|} pj pj;
      Printf.sprintf
        {|{"op":"sweep","param":"scale","values":[1e4,2e4],"problem":%s}|} pj;
      Printf.sprintf {|{"id":null,"op":"sweep","param":"te","values":[8.64e8],"problem":%s}|} pj;
      (* Tree-only shapes: the scanner must fall back, not diverge. *)
      Printf.sprintf {|{"op":"plan","note":"extra field","problem":%s}|} pj;
      Printf.sprintf {|{"id":"esc\"aped","op":"plan","problem":%s}|} pj;
      Printf.sprintf {|{"id":[1,2],"op":"plan","problem":%s}|} pj;
      Printf.sprintf {|{"op":"plan","fixed_n":-3,"problem":%s}|} pj;
      Printf.sprintf {|{"op":"plan","problem":%s,"problem":%s}|} pj pj;
      Printf.sprintf {|{"op":"sweep","param":"scale","values":[],"problem":%s}|} pj;
      Printf.sprintf {|{"op":"batch-plan","problems":[]}|};
      {|{"op":"stats"}|};
      {|{"op":"plan"}|};
      "not json at all";
      "" ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "wire parse equals tree parse on %s"
           (String.sub line 0 (min 48 (String.length line))))
        true
        (wire_envelope_eq (Wire.parse_request line) (Protocol.parse_request line)))
    lines

(* Satellite: the streamed renderer is byte-identical to serializing the
   tree responses, across the whole op mix (fast paths and fallbacks). *)
let test_wire_lines_byte_identical () =
  let pj = problem_json base_problem in
  let pj2 = problem_json (mk_problem ~te_days:2e4 ()) in
  let lines =
    [ Printf.sprintf {|{"id":1,"op":"plan","fixed_n":2e4,"problem":%s}|} pj;
      Printf.sprintf {|{"id":"b","op":"batch-plan","fixed_n":2.1e4,"problems":[%s,%s]}|} pj pj2;
      Printf.sprintf {|{"op":"sweep","param":"scale","values":[1e4,2e4,3e4],"problem":%s}|} pj;
      Printf.sprintf {|{"id":2,"op":"plan","solution":"sl-ori","problem":%s}|} pj;
      Printf.sprintf {|{"op":"simulate-validate","replications":3,"seed":1,"fixed_n":2e4,"problem":%s}|} pj;
      (* stats is excluded: its payload embeds wall-clock timings. *)
      {|{"id":"bad","op":"plan"}|};
      "garbage line" ]
  in
  let run render =
    (* Identically configured fresh services: same cache state, same
       metrics, so the responses must agree byte for byte. *)
    let service = Service.create ~workers:0 ~cache_capacity:64 () in
    Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
    render service
  in
  let trees = run (fun s -> List.map Json.to_string (Service.handle_batch s lines)) in
  let strings = run (fun s -> Service.handle_batch_lines s lines) in
  List.iteri
    (fun i (tree, string_) ->
      Alcotest.(check string) (Printf.sprintf "response %d byte-identical" i) tree string_)
    (List.combine trees strings)

let test_wire_batch_plan_end_to_end () =
  let service = Service.create ~workers:0 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let pj = problem_json base_problem in
  let pj2 = problem_json (mk_problem ~te_days:2e4 ()) in
  let r =
    Service.handle_line service
      (Printf.sprintf {|{"id":9,"op":"batch-plan","fixed_n":2e4,"problems":[%s,%s,%s]}|}
         pj pj2 pj)
  in
  Alcotest.(check bool) "ok" true (Protocol.response_ok r);
  Alcotest.(check (option string)) "op echoed" (Some "batch-plan") (Json.string_field "op" r);
  Alcotest.(check (option (float 0.))) "count" (Some 3.) (Json.float_field "count" r);
  Alcotest.(check (option (float 0.))) "solved" (Some 3.) (Json.float_field "solved" r);
  (match Json.list_field "results" r with
  | Some [ p0; p1; p2 ] ->
      (* Same problem + same envelope options twice: the third entry is
         the in-batch dedup of the first, and both match a direct solve. *)
      let plan p =
        match Option.map Codec.plan_of_json (Json.member "plan" p) with
        | Some (Ok plan) -> plan
        | _ -> Alcotest.fail "batch point has no plan"
      in
      Alcotest.(check bool) "row 0 bit-identical to direct solve" true
        (plan p0 = Planner.run_query (query ~fixed_n:2e4 base_problem));
      Alcotest.(check bool) "duplicate row deduped to the same plan" true (plan p0 = plan p2);
      Alcotest.(check bool) "distinct problem, distinct plan" true (plan p0 <> plan p1)
  | _ -> Alcotest.fail "expected three results");
  (* Atomic rejection: one bad problem fails the whole request... *)
  let bad =
    Service.handle_line service
      (Printf.sprintf {|{"op":"batch-plan","problems":[%s,{"te":0}]}|} pj)
  in
  Alcotest.(check bool) "bad problem rejects the batch" false (Protocol.response_ok bad);
  (match Protocol.response_error bad with
  | Some e ->
      Alcotest.(check string) "invalid-problem" "invalid-problem" e.Protocol.code;
      Alcotest.(check bool) "names the offending index" true
        (String.length e.Protocol.message >= 11
         && String.sub e.Protocol.message 0 11 = "problems[1]")
  | None -> Alcotest.fail "expected structured error");
  (* ...and an empty problems array is an invalid request. *)
  let empty = Service.handle_line service {|{"op":"batch-plan","problems":[]}|} in
  match Protocol.response_error empty with
  | Some e -> Alcotest.(check string) "invalid-request" "invalid-request" e.Protocol.code
  | None -> Alcotest.fail "expected structured error"

(* ---------------- fuzzing the front door ---------------- *)

(* Satellite: whatever bytes arrive on a line, the answer is a JSON
   response (structured error for garbage) — never an exception.  One
   worker-less service is shared across cases: it must survive the
   whole stream, too. *)
let fuzz_service = lazy (Service.create ~workers:0 ())

let line_survives line =
  let service = Lazy.force fuzz_service in
  match Service.handle_line service line with
  | response -> Json.to_string response <> ""
  | exception e ->
      QCheck.Test.fail_reportf "handle_line raised %s on %S" (Printexc.to_string e) line

let qcheck_fuzz_arbitrary_lines =
  let open QCheck in
  Test.make ~name:"handle_line never raises on arbitrary bytes" ~count:500
    (make Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)))
    line_survives

let qcheck_fuzz_truncated_requests =
  let open QCheck in
  let valid =
    Printf.sprintf {|{"op": "plan", "fixed_n": 2e4, "problem": %s}|} (problem_json base_problem)
  in
  Test.make ~name:"handle_line never raises on truncated requests" ~count:200
    (make Gen.(int_range 0 (String.length valid)))
    (fun len -> line_survives (String.sub valid 0 len))

(* The scanner is total and tree-equal on every prefix of a valid
   batch-plan line (mid-number, mid-string, mid-object truncations). *)
let qcheck_fuzz_wire_truncated =
  let open QCheck in
  let valid =
    Printf.sprintf {|{"id":3,"op":"batch-plan","fixed_n":2e4,"problems":[%s,%s]}|}
      (problem_json base_problem)
      (problem_json (mk_problem ~te_days:2e4 ()))
  in
  Test.make ~name:"wire parse total and tree-equal on truncated batch-plan" ~count:200
    (make Gen.(int_range 0 (String.length valid)))
    (fun len ->
      let line = String.sub valid 0 len in
      match Wire.parse_request line with
      | envelope -> wire_envelope_eq envelope (Protocol.parse_request line)
      | exception e ->
          Test.fail_reportf "Wire.parse_request raised %s on %S" (Printexc.to_string e) line)

let qcheck_fuzz_wire_garbage =
  let open QCheck in
  Test.make ~name:"wire parse tree-equal on arbitrary bytes" ~count:500
    (make Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)))
    (fun line ->
      wire_envelope_eq (Wire.parse_request line) (Protocol.parse_request line))

(* The string renderer survives the same byte storm as the tree one. *)
let fuzz_service_lines = lazy (Service.create ~workers:0 ())

let qcheck_fuzz_line_strings =
  let open QCheck in
  Test.make ~name:"handle_line_string never raises on arbitrary bytes" ~count:300
    (make Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)))
    (fun line ->
      let service = Lazy.force fuzz_service_lines in
      match Service.handle_line_string service line with
      | response -> response <> ""
      | exception e ->
          Test.fail_reportf "handle_line_string raised %s on %S" (Printexc.to_string e) line)

let qcheck_fuzz_nested_json =
  let open QCheck in
  Test.make ~name:"handle_line never raises on deeply nested JSON" ~count:20
    (make Gen.(pair (int_range 1 4000) bool))
    (fun (depth, braces) ->
      let opener = if braces then "{\"a\":" else "[" in
      let buf = Buffer.create (depth * String.length opener) in
      for _ = 1 to depth do Buffer.add_string buf opener done;
      line_survives (Buffer.contents buf))

let test_fuzz_depth_limit_is_structured () =
  let service = Lazy.force fuzz_service in
  let bomb = String.concat "" (List.init 2000 (fun _ -> "[")) in
  let r = Service.handle_line service bomb in
  Alcotest.(check bool) "depth bomb is an error response" false (Protocol.response_ok r);
  match Protocol.response_error r with
  | Some e -> Alcotest.(check string) "parse error code" "parse" e.Protocol.code
  | None -> Alcotest.fail "expected a structured error payload"

let qcheck_tests =
  [ qcheck_fingerprint_noise; qcheck_fingerprint_problem_noise; qcheck_lru_capacity_bound;
    qcheck_sharded_capacity_bound;
    qcheck_parallel_bit_identical; qcheck_service_parallel_equals_sequential;
    qcheck_fuzz_arbitrary_lines; qcheck_fuzz_truncated_requests;
    qcheck_fuzz_wire_truncated; qcheck_fuzz_wire_garbage; qcheck_fuzz_line_strings;
    qcheck_fuzz_nested_json ]

let () =
  Alcotest.run "service"
    [ ("fingerprint",
       [ Alcotest.test_case "deterministic" `Quick test_fingerprint_deterministic;
         Alcotest.test_case "distinguishes" `Quick test_fingerprint_distinguishes;
         Alcotest.test_case "ignores names" `Quick test_fingerprint_ignores_names ]);
      ("lru",
       [ Alcotest.test_case "eviction at capacity" `Quick test_lru_eviction;
         Alcotest.test_case "recency refresh" `Quick test_lru_recency_refresh;
         Alcotest.test_case "replace" `Quick test_lru_replace ]);
      ("sharded-cache",
       [ Alcotest.test_case "basics" `Quick test_sharded_basics;
         Alcotest.test_case "validation" `Quick test_sharded_validation ]);
      ("pool",
       [ Alcotest.test_case "work queue fifo" `Quick test_work_queue_fifo;
         Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
         Alcotest.test_case "exceptions contained" `Quick test_pool_exception_does_not_kill_worker ]);
      ("protocol",
       [ Alcotest.test_case "parse plan" `Quick test_protocol_parse_plan;
         Alcotest.test_case "error codes" `Quick test_protocol_errors;
         Alcotest.test_case "level-count mismatch" `Quick test_protocol_level_count_mismatch;
         Alcotest.test_case "check_problem raises" `Quick test_check_problem_direct ]);
      ("wire",
       [ Alcotest.test_case "parse equivalence" `Quick test_wire_parse_equivalence;
         Alcotest.test_case "streamed lines byte-identical" `Quick test_wire_lines_byte_identical;
         Alcotest.test_case "batch-plan end-to-end" `Quick test_wire_batch_plan_end_to_end ]);
      ("planner",
       [ Alcotest.test_case "cache + in-batch dedup" `Quick test_planner_cache_and_dedup;
         Alcotest.test_case "key covers solver options" `Quick test_planner_key_varies_with_options ]);
      ("service",
       [ Alcotest.test_case "sweep order, cache, bit-identical" `Quick test_service_sweep_cache_and_order;
         Alcotest.test_case "error isolation" `Quick test_service_error_isolation;
         Alcotest.test_case "simulate-validate" `Quick test_service_simulate_validate;
         Alcotest.test_case "parallel speedup (multi-core only)" `Slow
           test_service_parallel_speedup;
         Alcotest.test_case "depth bomb answered structurally" `Quick
           test_fuzz_depth_limit_is_structured ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
