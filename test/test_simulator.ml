(* Tests for the checkpoint/restart execution simulator: accounting
   invariants, determinism, semantics toggles, model agreement and the
   event/tick cross-validation. *)

open Ckpt_model
module Failure_spec = Ckpt_failures.Failure_spec
module Run_config = Ckpt_sim.Run_config
module Engine = Ckpt_sim.Engine
module Tick_engine = Ckpt_sim.Tick_engine
module Outcome = Ckpt_sim.Outcome
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats

let check_rel ?(tol = 1e-3) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (actual -. expected) <= tol *. Float.abs expected)

(* A small-scale configuration: 1,024 cores, ~4.3 h productive, a handful
   of failures per run. *)
let small_config ?(rates = "24-18-12-6") ?(xs = [| 60.; 30.; 15.; 6. |])
    ?(semantics = Run_config.default_semantics) () =
  Run_config.v ~semantics ~te:(1024. *. 2. *. 3600.)
    ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
    ~levels:Level.fti_fusion ~alloc:10.
    ~spec:(Failure_spec.of_string ~baseline_scale:1024. rates)
    ~xs ~n:1024. ()

let no_jitter semantics = { semantics with Run_config.jitter_ratio = 0. }

let test_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> small_config ~xs:[| 1.; 1.; 1. |] ());
  expect_invalid (fun () -> small_config ~xs:[| 0.5; 1.; 1.; 1. |] ());
  expect_invalid (fun () -> small_config ~rates:"1-2-3" ())

let test_portions_sum_to_wall_clock () =
  let config = small_config () in
  for seed = 0 to 20 do
    let o = Engine.run ~seed config in
    check_rel ~tol:1e-9 "portions account for every second" o.Outcome.wall_clock
      (Outcome.portions_sum o)
  done

let test_determinism () =
  let config = small_config () in
  let a = Engine.run ~seed:11 config and b = Engine.run ~seed:11 config in
  Alcotest.(check (float 0.)) "same wall clock" a.Outcome.wall_clock b.Outcome.wall_clock;
  Alcotest.(check int) "same failures" (Outcome.total_failures a) (Outcome.total_failures b);
  let c = Engine.run ~seed:12 config in
  Alcotest.(check bool) "different seed differs" true
    (a.Outcome.wall_clock <> c.Outcome.wall_clock)

let test_no_failures_exact () =
  (* Zero failure rates and zero jitter: the wall clock is exactly the
     productive time plus every scheduled checkpoint. *)
  let config =
    small_config ~rates:"0-0-0-0"
      ~semantics:(no_jitter Run_config.default_semantics) ()
  in
  let o = Engine.run ~seed:1 config in
  Alcotest.(check bool) "completed" true o.Outcome.completed;
  Alcotest.(check int) "no failures" 0 (Outcome.total_failures o);
  let productive = Run_config.productive_target config in
  let expected_ckpt =
    (* x_i - 1 checkpoints at level i, written at their nominal cost. *)
    let cost i = Overhead.cost Level.fti_fusion.(i).Level.ckpt 1024. in
    (59. *. cost 0) +. (29. *. cost 1) +. (14. *. cost 2) +. (5. *. cost 3)
  in
  check_rel ~tol:1e-9 "productive" productive o.Outcome.productive;
  check_rel ~tol:1e-9 "checkpoint total" expected_ckpt o.Outcome.checkpoint;
  check_rel ~tol:1e-9 "wall = productive + ckpt" (productive +. expected_ckpt)
    o.Outcome.wall_clock;
  Alcotest.(check int) "ckpt count level 1" 59 o.Outcome.ckpts_written.(0);
  Alcotest.(check int) "ckpt count level 4" 5 o.Outcome.ckpts_written.(3)

let test_failures_cost_time () =
  let quiet = small_config ~rates:"0-0-0-0" () in
  let noisy = small_config ~rates:"48-36-24-12" () in
  let wall c = (Engine.run ~seed:5 c).Outcome.wall_clock in
  Alcotest.(check bool) "failures extend the run" true (wall noisy > wall quiet)

let test_failure_counts_match_rates () =
  (* Expected failures = total rate x wall-clock; check within 10% over
     many runs. *)
  let config = small_config () in
  let agg = Replication.run ~runs:60 config in
  let rate =
    Failure_spec.total_rate_per_second
      (Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6") ~scale:1024.
  in
  let expected = rate *. agg.Replication.wall_clock.Stats.mean in
  check_rel ~tol:0.1 "failure count" expected agg.Replication.mean_failures

let test_rollback_semantics () =
  (* With only level-1 failures and frequent level-1 checkpoints, rollback
     per failure is bounded by one interval. *)
  let config =
    small_config ~rates:"200-0-0-0" ~xs:[| 200.; 1.; 1.; 1. |]
      ~semantics:(no_jitter Run_config.default_semantics) ()
  in
  let o = Engine.run ~seed:3 config in
  Alcotest.(check bool) "completed" true o.Outcome.completed;
  let interval = Run_config.productive_target config /. 200. in
  let per_failure_bound =
    interval +. Overhead.cost Level.fti_fusion.(0).Level.ckpt 1024. +. 1.
  in
  Alcotest.(check bool) "rollback bounded by interval per failure" true
    (o.Outcome.rollback
     <= (float_of_int (Outcome.total_failures o) *. per_failure_bound) +. 1e-6)

let test_level4_failure_rolls_to_start_without_pfs_ckpt () =
  (* No level-4 checkpoints (x4 = 1): a level-4 failure early in the run
     restarts from scratch; rollback appears as re-executed work. *)
  let config =
    small_config ~rates:"0-0-0-3" ~xs:[| 10.; 1.; 1.; 1. |]
      ~semantics:(no_jitter Run_config.default_semantics) ()
  in
  let o = Engine.run ~seed:17 config in
  if Outcome.total_failures o > 0 then
    Alcotest.(check bool) "re-execution recorded" true (o.Outcome.rollback > 0.)

let test_atomic_vs_abort () =
  (* Atomic checkpoint writes can only help (no lost writes). *)
  let mean semantics =
    let config = small_config ~rates:"96-72-48-24" ~semantics () in
    (Replication.run ~runs:30 config).Replication.wall_clock.Stats.mean
  in
  let abort = mean Run_config.default_semantics in
  let atomic = mean Run_config.paper_semantics in
  Alcotest.(check bool) "atomic <= abort" true (atomic <= abort *. 1.02)

let test_ignore_recovery_failures () =
  let ignore_sem =
    { Run_config.default_semantics with
      Run_config.on_recovery_failure = Run_config.Ignore_during_recovery }
  in
  let mean semantics =
    let config = small_config ~rates:"96-72-48-24" ~semantics () in
    (Replication.run ~runs:30 config).Replication.wall_clock.Stats.mean
  in
  Alcotest.(check bool) "suppressing recovery failures can only help" true
    (mean ignore_sem <= mean Run_config.default_semantics *. 1.02)

let test_horizon () =
  (* An impossible configuration: gigantic PFS-only checkpoints under a
     heavy failure rate never finish; the engine must stop at the horizon
     rather than loop forever. *)
  let config =
    Run_config.v ~max_wall_clock:(3. *. 86400.) ~te:(1024. *. 100. *. 3600.)
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:[| Level.v (Overhead.constant 4000.) |]
      ~alloc:10.
      ~spec:(Failure_spec.v ~baseline_scale:1024. [| 400. |])
      ~xs:[| 200. |] ~n:1024. ()
  in
  let o = Engine.run ~seed:1 config in
  Alcotest.(check bool) "did not complete" false o.Outcome.completed;
  Alcotest.(check bool) "stopped at horizon" true (o.Outcome.wall_clock >= 3. *. 86400.)

let test_efficiency () =
  let o =
    { Outcome.completed = true; wall_clock = 1000.; productive = 800.; checkpoint = 100.;
      restart = 0.; allocation = 0.; rollback = 100.; failures = [| 0 |]; recoveries = 0;
      ckpts_written = [| 0 |]; ckpts_redone = [| 0 |]; ckpts_aborted = [| 0 |] }
  in
  Alcotest.(check (float 1e-9)) "eff = te / wall / n" 0.5
    (Outcome.efficiency o ~te:5000. ~n:10.)

let test_model_agreement () =
  (* On a mild configuration the simulated mean should track the analytic
     expectation within ~20 %. *)
  let problem =
    { Optimizer.te = 1024. *. 2. *. 3600.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
      levels = Level.fti_fusion;
      alloc = 10.;
      spec = Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6" }
  in
  let plan = Optimizer.ml_ori_scale ~n:1024. problem in
  let config = Run_config.of_plan ~problem ~plan () in
  let agg = Replication.run ~runs:60 config in
  check_rel ~tol:0.2 "simulation tracks the model" plan.Optimizer.wall_clock
    agg.Replication.wall_clock.Stats.mean

let test_event_vs_tick () =
  (* The independent tick-driven engine agrees with the event-driven one
     within a few percent (the paper's <4% validation bar). *)
  let config = small_config () in
  let runs = 25 in
  let ev =
    Stats.mean (Array.init runs (fun i -> (Engine.run ~seed:(50 + i) config).Outcome.wall_clock))
  in
  let tk =
    Stats.mean
      (Array.init runs (fun i -> (Tick_engine.run ~seed:(50 + i) config).Outcome.wall_clock))
  in
  check_rel ~tol:0.04 "engines agree within 4%" tk ev

let test_tick_portions_sum () =
  let config = small_config () in
  for seed = 0 to 5 do
    let o = Tick_engine.run ~seed config in
    check_rel ~tol:1e-9 "tick portions account for every tick" o.Outcome.wall_clock
      (Outcome.portions_sum o)
  done

let test_replication_aggregate () =
  let config = small_config () in
  let agg = Replication.run ~runs:10 config in
  Alcotest.(check int) "all runs" 10 agg.Replication.runs;
  Alcotest.(check int) "all completed" 10 agg.Replication.completed_runs;
  let lo, hi = agg.Replication.wall_clock_ci95 in
  Alcotest.(check bool) "CI brackets the mean" true
    (lo <= agg.Replication.wall_clock.Stats.mean
     && agg.Replication.wall_clock.Stats.mean <= hi);
  let total_portions =
    agg.Replication.productive +. agg.Replication.checkpoint +. agg.Replication.restart
    +. agg.Replication.allocation +. agg.Replication.rollback
  in
  check_rel ~tol:1e-6 "mean portions sum to mean wall" agg.Replication.wall_clock.Stats.mean
    total_portions

let test_outcomes_deterministic_base_seed () =
  let config = small_config () in
  let a = Replication.outcomes ~runs:5 ~base_seed:100 config in
  let b = Replication.outcomes ~runs:5 ~base_seed:100 config in
  Array.iteri
    (fun i o ->
      Alcotest.(check (float 0.)) "same outcomes" o.Outcome.wall_clock
        b.(i).Outcome.wall_clock)
    a

let test_replication_horizon_aggregate () =
  (* When no run completes, the aggregate must say so rather than fake
     numbers. *)
  let config =
    Run_config.v ~max_wall_clock:(0.5 *. 86400.) ~te:(1024. *. 100. *. 3600.)
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:[| Level.v (Overhead.constant 4000.) |]
      ~alloc:10.
      ~spec:(Failure_spec.v ~baseline_scale:1024. [| 400. |])
      ~xs:[| 200. |] ~n:1024. ()
  in
  let agg = Replication.run ~runs:5 config in
  Alcotest.(check int) "no completed runs" 0 agg.Replication.completed_runs;
  Alcotest.(check int) "still counts runs" 5 agg.Replication.runs

(* ---------------- failure-trace replay ---------------- *)

let test_trace_replay_exact () =
  (* Replaying a fixed log with zero jitter is fully deterministic:
     exactly the logged failures occur, at their levels. *)
  let failure_trace = [ (3_000., 1); (9_000., 3); (15_000., 2) ] in
  let config =
    Run_config.v ~semantics:(no_jitter Run_config.default_semantics) ~failure_trace
      ~te:(1024. *. 2. *. 3600.)
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:Level.fti_fusion ~alloc:10.
      ~spec:(Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6")
      ~xs:[| 60.; 30.; 15.; 6. |] ~n:1024. ()
  in
  let a = Engine.run ~seed:1 config and b = Engine.run ~seed:999 config in
  (* The seed no longer matters: the failure process is the log. *)
  Alcotest.(check (float 0.)) "seed-independent" a.Outcome.wall_clock b.Outcome.wall_clock;
  Alcotest.(check int) "exactly the logged failures" 3 (Outcome.total_failures a);
  Alcotest.(check int) "level mix" 1 a.Outcome.failures.(0);
  Alcotest.(check int) "level mix" 1 a.Outcome.failures.(1);
  Alcotest.(check int) "level mix" 1 a.Outcome.failures.(2);
  Alcotest.(check int) "level mix" 0 a.Outcome.failures.(3)

let test_trace_replay_empty_is_failure_free () =
  let config =
    Run_config.v ~semantics:(no_jitter Run_config.default_semantics) ~failure_trace:[]
      ~te:(1024. *. 2. *. 3600.)
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:Level.fti_fusion ~alloc:10.
      ~spec:(Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6")
      ~xs:[| 60.; 30.; 15.; 6. |] ~n:1024. ()
  in
  let o = Engine.run ~seed:1 config in
  Alcotest.(check int) "no failures" 0 (Outcome.total_failures o);
  Alcotest.(check bool) "completed" true o.Outcome.completed

let test_trace_replay_engines_agree () =
  let failure_trace = [ (2_500., 2); (7_777., 1); (20_000., 4) ] in
  let config =
    Run_config.v ~semantics:(no_jitter Run_config.default_semantics) ~failure_trace
      ~te:(1024. *. 2. *. 3600.)
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:Level.fti_fusion ~alloc:10.
      ~spec:(Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6")
      ~xs:[| 60.; 30.; 15.; 6. |] ~n:1024. ()
  in
  let ev = Engine.run ~seed:1 config in
  let tk = Tick_engine.run ~seed:1 config in
  Alcotest.(check int) "same failure count" (Outcome.total_failures ev)
    (Outcome.total_failures tk);
  check_rel ~tol:0.02 "same wall clock" tk.Outcome.wall_clock ev.Outcome.wall_clock

let test_trace_replay_validation () =
  let build trace =
    Run_config.v ~failure_trace:trace ~te:1e6
      ~speedup:(Speedup.quadratic ~kappa:0.46 ~n_star:1e6)
      ~levels:Level.fti_fusion ~alloc:10.
      ~spec:(Failure_spec.of_string ~baseline_scale:1024. "1-1-1-1")
      ~xs:[| 2.; 2.; 2.; 2. |] ~n:1024. ()
  in
  Alcotest.(check bool) "unsorted rejected" true
    (try
       ignore (build [ (5., 1); (1., 1) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad level rejected" true
    (try
       ignore (build [ (1., 9) ]);
       false
     with Invalid_argument _ -> true)

(* ---------------- tracing ---------------- *)

module Trace = Ckpt_simkernel.Trace

let test_trace_event_structure () =
  let trace = Trace.create () in
  let config = small_config () in
  let o = Engine.run ~trace ~seed:9 config in
  (* Every counted quantity appears in the trace with matching counts. *)
  Alcotest.(check int) "failure events" (Outcome.total_failures o)
    (List.length (Trace.find_all trace ~tag:"failure"));
  Alcotest.(check int) "first-time checkpoints"
    (Array.fold_left ( + ) 0 o.Outcome.ckpts_written)
    (List.length (Trace.find_all trace ~tag:"ckpt"));
  Alcotest.(check int) "redone checkpoints"
    (Array.fold_left ( + ) 0 o.Outcome.ckpts_redone)
    (List.length (Trace.find_all trace ~tag:"ckpt-redo"));
  Alcotest.(check int) "aborted checkpoints"
    (Array.fold_left ( + ) 0 o.Outcome.ckpts_aborted)
    (List.length (Trace.find_all trace ~tag:"ckpt-abort"));
  Alcotest.(check int) "one completion" 1
    (List.length (Trace.find_all trace ~tag:"complete"))

let test_trace_ordering () =
  let trace = Trace.create () in
  let config = small_config ~rates:"96-72-48-24" () in
  ignore (Engine.run ~trace ~seed:4 config);
  (* Timestamps are non-decreasing, and every failure is immediately
     followed (eventually) by a recovery record. *)
  let entries = Trace.entries trace in
  let prev = ref neg_infinity in
  List.iter
    (fun e ->
      Alcotest.(check bool) "monotone timestamps" true (e.Trace.time >= !prev);
      prev := e.Trace.time)
    entries;
  let failures = List.length (Trace.find_all trace ~tag:"failure") in
  let recoveries = List.length (Trace.find_all trace ~tag:"recovery") in
  Alcotest.(check int) "recovery per failure" failures recoveries;
  (* The run without a trace is byte-identical (tracing has no effect). *)
  let a = Engine.run ~seed:4 config in
  let b = Engine.run ~trace:(Trace.create ()) ~seed:4 config in
  Alcotest.(check (float 0.)) "tracing does not perturb" a.Outcome.wall_clock
    b.Outcome.wall_clock

(* ---------------- mark alignment ---------------- *)

let test_nested_xs () =
  let nested = Run_config.nested_xs [| 13907.6; 7026.7; 4726.1; 86.6 |] in
  Alcotest.(check int) "four levels" 4 (Array.length nested);
  (* Each count is an integer multiple of the next level's. *)
  for i = 0 to 2 do
    let ratio = nested.(i) /. nested.(i + 1) in
    Alcotest.(check bool) "integer multiple" true
      (Float.is_integer ratio && ratio >= 1.)
  done;
  (* And close to the requested counts. *)
  for i = 0 to 3 do
    let requested = [| 13907.6; 7026.7; 4726.1; 86.6 |].(i) in
    Alcotest.(check bool) "within 2x of request" true
      (nested.(i) > requested /. 2. && nested.(i) < requested *. 2.)
  done

let test_nested_xs_degenerate () =
  let nested = Run_config.nested_xs [| 1.; 1. |] in
  Alcotest.(check bool) "all ones" true (nested = [| 1.; 1. |])

let test_subsumption_skips_writes () =
  (* Aligned counts, no failures: with subsumption the level-4 positions
     swallow the coincident cheaper marks. *)
  let xs = [| 40.; 20.; 10.; 5. |] in
  let semantics sub =
    { (no_jitter Run_config.default_semantics) with Run_config.subsume_coincident = sub }
  in
  let run sub =
    Engine.run ~seed:1 (small_config ~rates:"0-0-0-0" ~xs ~semantics:(semantics sub) ())
  in
  let plain = run false and sub = run true in
  (* Without subsumption: 39 + 19 + 9 + 4 writes; with it, coincident
     positions keep only the highest level: level 1 writes only where no
     higher mark lands. *)
  Alcotest.(check int) "plain level-1 count" 39 plain.Outcome.ckpts_written.(0);
  Alcotest.(check int) "subsumed level-1 count" 20 sub.Outcome.ckpts_written.(0);
  Alcotest.(check int) "subsumed level-2 count" 10 sub.Outcome.ckpts_written.(1);
  Alcotest.(check int) "subsumed level-3 count" 5 sub.Outcome.ckpts_written.(2);
  Alcotest.(check int) "level-4 unchanged" 4 sub.Outcome.ckpts_written.(3);
  Alcotest.(check bool) "subsumption is cheaper" true
    (sub.Outcome.wall_clock < plain.Outcome.wall_clock);
  check_rel ~tol:1e-9 "portions still account" sub.Outcome.wall_clock
    (Outcome.portions_sum sub)

let test_subsumption_engines_agree () =
  let xs = [| 60.; 30.; 15.; 5. |] in
  let semantics =
    { Run_config.default_semantics with Run_config.subsume_coincident = true }
  in
  let config = small_config ~xs ~semantics () in
  let runs = 20 in
  let ev =
    Stats.mean (Array.init runs (fun i -> (Engine.run ~seed:(70 + i) config).Outcome.wall_clock))
  in
  let tk =
    Stats.mean
      (Array.init runs (fun i -> (Tick_engine.run ~seed:(70 + i) config).Outcome.wall_clock))
  in
  check_rel ~tol:0.04 "engines agree under subsumption" tk ev

(* ---------------- parallel replication ---------------- *)

module Pool = Ckpt_parallel.Pool

(* The determinism contract: per-replication RNG substreams are fixed
   before any run starts, so fanning the runs across worker domains must
   not change a single bit of any outcome or aggregate. *)
let test_parallel_replication_bit_identical () =
  let config = small_config () in
  let runs = 12 and base_seed = 7 in
  let baseline_outcomes = Replication.outcomes ~runs ~base_seed config in
  let baseline_aggregate = Replication.run ~runs ~base_seed config in
  List.iter
    (fun workers ->
      Pool.with_pool ~workers (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "outcomes bit-identical at %d workers" workers)
            true
            (Replication.outcomes ~pool ~runs ~base_seed config = baseline_outcomes);
          Alcotest.(check bool)
            (Printf.sprintf "aggregate bit-identical at %d workers" workers)
            true
            (Replication.run ~pool ~runs ~base_seed config = baseline_aggregate)))
    [ 1; 2; 4 ]

(* Only a timing comparison is scheduling-sensitive; on a single-core
   machine a 4-domain pool cannot win, so the comparison is skipped
   rather than asserted backwards (same policy as test_service). *)
let test_parallel_replication_speedup () =
  if Domain.recommended_domain_count () < 4 then Alcotest.skip ()
  else begin
    let config = small_config () in
    let runs = 60 in
    let time workers =
      Pool.with_pool ~workers (fun pool ->
          let t0 = Unix.gettimeofday () in
          ignore (Replication.run ~pool ~runs ~base_seed:3 config);
          Unix.gettimeofday () -. t0)
    in
    let t1 = time 1 and t4 = time 4 in
    Alcotest.(check bool)
      (Printf.sprintf "4 workers (%.1f ms) beat 1 worker (%.1f ms)" (t4 *. 1e3)
         (t1 *. 1e3))
      true (t4 < t1)
  end

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"portions always sum to the wall clock" ~count:60
      (pair small_int
         (quad (float_range 1. 100.) (float_range 1. 50.) (float_range 1. 20.)
            (float_range 1. 10.)))
      (fun (seed, (x1, x2, x3, x4)) ->
        let config = small_config ~xs:[| x1; x2; x3; x4 |] () in
        let o = Engine.run ~seed config in
        Float.abs (Outcome.portions_sum o -. o.Outcome.wall_clock)
        <= 1e-6 *. o.Outcome.wall_clock);
    Test.make ~name:"completed runs do all the work exactly once" ~count:40
      small_int
      (fun seed ->
        let config =
          small_config ~semantics:(no_jitter Run_config.default_semantics) ()
        in
        let o = Engine.run ~seed config in
        (not o.Outcome.completed)
        || Float.abs (o.Outcome.productive -. Run_config.productive_target config)
           <= 1e-6 *. Run_config.productive_target config);
    Test.make ~name:"wall clock at least the failure-free minimum" ~count:40
      small_int
      (fun seed ->
        let config = small_config () in
        let o = Engine.run ~seed config in
        o.Outcome.wall_clock >= Run_config.productive_target config);
    Test.make ~name:"parallel replication is schedule-independent" ~count:10
      (pair small_int (int_range 1 4))
      (fun (base_seed, workers) ->
        let config = small_config () in
        let runs = 8 in
        let sequential = Replication.run ~runs ~base_seed config in
        Pool.with_pool ~workers (fun pool ->
            Replication.run ~pool ~runs ~base_seed config = sequential)) ]

let () =
  Alcotest.run "ckpt_sim"
    [ ( "engine",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "portions sum" `Quick test_portions_sum_to_wall_clock;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "no failures exact" `Quick test_no_failures_exact;
          Alcotest.test_case "failures cost time" `Quick test_failures_cost_time;
          Alcotest.test_case "failure counts" `Quick test_failure_counts_match_rates;
          Alcotest.test_case "rollback bounded" `Quick test_rollback_semantics;
          Alcotest.test_case "rolls to start without pfs ckpt" `Quick
            test_level4_failure_rolls_to_start_without_pfs_ckpt;
          Alcotest.test_case "horizon" `Quick test_horizon;
          Alcotest.test_case "efficiency" `Quick test_efficiency ] );
      ( "semantics",
        [ Alcotest.test_case "atomic vs abort" `Quick test_atomic_vs_abort;
          Alcotest.test_case "ignore recovery failures" `Quick
            test_ignore_recovery_failures ] );
      ( "validation-vs-model",
        [ Alcotest.test_case "model agreement" `Quick test_model_agreement;
          Alcotest.test_case "event vs tick" `Quick test_event_vs_tick;
          Alcotest.test_case "tick portions sum" `Quick test_tick_portions_sum ] );
      ( "replication-horizon",
        [ Alcotest.test_case "all-incomplete aggregate" `Quick
            test_replication_horizon_aggregate ] );
      ( "trace-replay",
        [ Alcotest.test_case "exact replay" `Quick test_trace_replay_exact;
          Alcotest.test_case "empty log" `Quick test_trace_replay_empty_is_failure_free;
          Alcotest.test_case "engines agree" `Quick test_trace_replay_engines_agree;
          Alcotest.test_case "validation" `Quick test_trace_replay_validation ] );
      ( "tracing",
        [ Alcotest.test_case "event structure" `Quick test_trace_event_structure;
          Alcotest.test_case "ordering" `Quick test_trace_ordering ] );
      ( "alignment",
        [ Alcotest.test_case "nested xs" `Quick test_nested_xs;
          Alcotest.test_case "nested degenerate" `Quick test_nested_xs_degenerate;
          Alcotest.test_case "subsumption skips writes" `Quick test_subsumption_skips_writes;
          Alcotest.test_case "engines agree" `Quick test_subsumption_engines_agree ] );
      ( "replication",
        [ Alcotest.test_case "aggregate" `Quick test_replication_aggregate;
          Alcotest.test_case "deterministic seeds" `Quick
            test_outcomes_deterministic_base_seed ] );
      ( "parallel",
        [ Alcotest.test_case "bit-identical across workers" `Quick
            test_parallel_replication_bit_identical;
          Alcotest.test_case "speedup (multi-core only)" `Slow
            test_parallel_replication_speedup ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
