(* Tests for ckpt_calibrate: the total SCR-log parser, the phase
   accountant, the fit pipeline, the round-trip property against the
   simulator, the committed-fixture golden lock, and the service-level
   calibrate op. *)

open Ckpt_calibrate
module Optimizer = Ckpt_model.Optimizer
module Codec = Ckpt_model.Codec
module Spec = Ckpt_failures.Failure_spec
module Telemetry = Ckpt_adaptive.Telemetry
module Predict = Ckpt_adaptive.Predict
module Service = Ckpt_service.Service
module Json = Ckpt_json.Json

let approx ?(tol = 1e-9) what expected got =
  if Float.abs (expected -. got) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected got

(* ---------------- parser ---------------- *)

let ok_record line =
  match Scr_log.parse_line line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "expected a record, got a comment: %S" line
  | Error e -> Alcotest.failf "expected a record, got error %S on %S" e line

let expect_skip line =
  match Scr_log.parse_line line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected a skip on %S" line

let test_parse_line_records () =
  (match ok_record "t=120.5 event=START scale=100000 levels=4" with
  | Scr_log.Start { at; scale; levels } ->
      approx "start.at" 120.5 at;
      Alcotest.(check (option (float 0.))) "start.scale" (Some 100000.) scale;
      Alcotest.(check (option int)) "start.levels" (Some 4) levels
  | _ -> Alcotest.fail "not a Start");
  (match ok_record "t=10 event=COMPUTE secs=3600 productive=3450" with
  | Scr_log.Compute { secs; productive; _ } ->
      approx "compute.secs" 3600. secs;
      Alcotest.(check (option (float 0.))) "compute.productive" (Some 3450.)
        productive
  | _ -> Alcotest.fail "not a Compute");
  (match ok_record "t=1 event=FLUSH secs=140 kind=output" with
  | Scr_log.Flush { output; level; _ } ->
      Alcotest.(check bool) "flush output kind" true output;
      Alcotest.(check (option int)) "flush level" None level
  | _ -> Alcotest.fail "not a Flush");
  (match ok_record "t=2 event=RESTART_SUCCESS secs=20 level=3" with
  | Scr_log.Rebuild { level; _ } ->
      Alcotest.(check (option int)) "rebuild alias level" (Some 3) level
  | _ -> Alcotest.fail "RESTART_SUCCESS is not a Rebuild");
  (match ok_record "t=3 event=END complete=0" with
  | Scr_log.End { complete; _ } ->
      Alcotest.(check bool) "end incomplete" false complete
  | _ -> Alcotest.fail "not an End")

let test_parse_line_lenient_grammar () =
  (* Case-insensitive labels, unknown keys ignored, '='-less tokens
     ignored, repeated key last-wins, comments and blanks. *)
  (match ok_record "t=5 event=ckpt secs=1 secs=2 level=1 noise rank=17 host=n01" with
  | Scr_log.Checkpoint { secs; _ } -> approx "last secs wins" 2. secs
  | _ -> Alcotest.fail "lenient line is not a Checkpoint");
  Alcotest.(check bool) "comment" true (Scr_log.parse_line "# hi" = Ok None);
  Alcotest.(check bool) "blank" true (Scr_log.parse_line "   " = Ok None)

let test_parse_line_rejections () =
  List.iter expect_skip
    [ "event=COMPUTE secs=1" (* missing t *);
      "t=nan event=COMPUTE secs=1" (* non-finite t *);
      "t=1 event=COMPUTE" (* missing secs *);
      "t=1 event=COMPUTE secs=-3" (* negative duration *);
      "t=1 event=COMPUTE secs=inf" (* non-finite duration *);
      "t=1 event=COMPUTE secs=10 productive=11" (* productive > secs *);
      "t=1 event=CHECKPOINT secs=1 level=0" (* level below range *);
      "t=1 event=CHECKPOINT secs=1 level=5000" (* level above max_levels *);
      "t=1 event=START scale=0" (* non-positive scale *);
      "t=1 event=NO_SUCH_EVENT" (* unknown label *);
      "t=1" (* no event *);
      "\x00\x01\xffbinary" ]

let test_parse_invariant_and_numbering () =
  let lines =
    [ "# header"; "t=0 event=START"; ""; "garbage"; "t=1 event=END complete=1" ]
  in
  let p = Scr_log.parse lines in
  Alcotest.(check int) "lines" 5 p.Scr_log.lines;
  Alcotest.(check int) "records" 2 (List.length p.Scr_log.records);
  Alcotest.(check int) "skips" 1 (List.length p.Scr_log.skips);
  Alcotest.(check int) "blank" 2 p.Scr_log.blank;
  (match p.Scr_log.skips with
  | [ s ] -> Alcotest.(check int) "skip line number" 4 s.Scr_log.line
  | _ -> Alcotest.fail "one skip expected");
  Alcotest.(check (list int)) "record line numbers" [ 2; 5 ]
    (List.map fst p.Scr_log.records);
  (* parse_string: a sole trailing newline is not an extra blank line. *)
  Alcotest.(check int) "parse_string trailing newline" 2
    (Scr_log.parse_string "t=0 event=START\nt=1 event=END\n").Scr_log.lines

let test_to_line_roundtrip () =
  let records =
    [ Scr_log.Start { at = 0.; scale = Some 1024.; levels = Some 4 };
      Scr_log.Start { at = 12.5; scale = None; levels = None };
      Scr_log.Fetch { at = 1.; secs = 40.; level = Some 4 };
      Scr_log.Rebuild { at = 2.; secs = 20.; level = None };
      Scr_log.Compute { at = 3.; secs = 3600.; productive = Some 3450. };
      Scr_log.Checkpoint { at = 4.; secs = 25.; level = Some 1 };
      Scr_log.Flush { at = 5.; secs = 140.; level = Some 4; output = false };
      Scr_log.Flush { at = 6.; secs = 9.; level = None; output = true };
      Scr_log.Failure { at = 7.; level = Some 2 };
      Scr_log.Failure { at = 7.5; level = None };
      Scr_log.End { at = 8.; complete = false } ]
  in
  List.iter
    (fun r ->
      let line = Scr_log.to_line r in
      match Scr_log.parse_line line with
      | Ok (Some r') when r' = r -> ()
      | Ok (Some _) -> Alcotest.failf "roundtrip changed %S" line
      | Ok None | Error _ -> Alcotest.failf "roundtrip rejected %S" line)
    records

(* ---------------- parser fuzz: totality ---------------- *)

let check_total lines =
  match Scr_log.parse lines with
  | p ->
      let n = List.length p.Scr_log.records + List.length p.Scr_log.skips + p.Scr_log.blank in
      if n <> p.Scr_log.lines || p.Scr_log.lines <> List.length lines then
        QCheck.Test.fail_reportf
          "accounting broken: %d records + %d skips + %d blank <> %d lines"
          (List.length p.Scr_log.records) (List.length p.Scr_log.skips)
          p.Scr_log.blank p.Scr_log.lines;
      true
  | exception e ->
      QCheck.Test.fail_reportf "parse raised %s" (Printexc.to_string e)

let line_no_newline =
  QCheck.Gen.(
    map
      (fun s -> String.concat "" (String.split_on_char '\n' s))
      (string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 80)))

let fuzz_arbitrary_bytes =
  QCheck.Test.make ~name:"parse is total on arbitrary bytes" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_bound 30) line_no_newline))
    check_total

let fuzz_truncated_lines =
  (* Every prefix of every valid rendered line: either parses or skips,
     never raises, and the invariant holds. *)
  let config = Synth.demo_config (Synth.demo_problem ()) in
  let valid = Array.of_list (Synth.session_lines ~runs:2 ~seed:11 config) in
  QCheck.Test.make ~name:"parse is total on truncated valid lines" ~count:500
    (QCheck.make
       QCheck.Gen.(
         map2
           (fun i frac ->
             let line = valid.(i mod Array.length valid) in
             [ String.sub line 0
                 (int_of_float (frac *. float_of_int (String.length line))) ])
           (int_bound 10_000) (float_range 0. 1.)))
    check_total

let fuzz_interleaved_sessions =
  (* Two sessions shuffled together with junk: still total, and the
     accountant downstream must also take it without raising. *)
  let config = Synth.demo_config (Synth.demo_problem ()) in
  let a = Array.of_list (Synth.session_lines ~runs:2 ~seed:3 config) in
  let b = Array.of_list (Synth.session_lines ~runs:2 ~seed:4 config) in
  let junk = [| "x"; "t=oops event=START"; "#c"; "" |] in
  let pick (arr : string array) i = arr.(i mod Array.length arr) in
  QCheck.Test.make
    ~name:"parse+account total on interleaved out-of-order sessions" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) (int_bound 100_000)))
    (fun choices ->
      let lines =
        List.mapi
          (fun i c ->
            match c mod 3 with
            | 0 -> pick a (c / 3)
            | 1 -> pick b (c / 3)
            | _ -> pick junk (c + i))
          choices
      in
      ignore (check_total lines);
      let p = Scr_log.parse lines in
      match Account.run (Account.config ~levels:4 ()) p.Scr_log.records with
      | (_ : Account.t) -> true
      | exception e ->
          QCheck.Test.fail_reportf "account raised %s" (Printexc.to_string e))

(* ---------------- accountant ---------------- *)

let account ?(levels = 4) lines =
  let p = Scr_log.parse lines in
  Alcotest.(check int) "fixture parses cleanly" 0 (List.length p.Scr_log.skips);
  Account.run (Account.config ~levels ()) p.Scr_log.records

let test_account_merges () =
  let t =
    account
      [ "t=0 event=START scale=1024 levels=4";
        "t=1 event=FETCH secs=40 level=4";
        "t=41 event=REBUILD secs=20";
        (* checkpoint + ckpt-kind flush merge, level = deeper of the two *)
        "t=100 event=CHECKPOINT secs=5 level=1";
        "t=105 event=FLUSH secs=15 kind=ckpt level=4";
        (* a lone flush is a PFS checkpoint sample *)
        "t=200 event=FLUSH secs=30 kind=ckpt";
        (* an output flush is compute, not checkpoint cost *)
        "t=300 event=FLUSH secs=7 kind=output";
        "t=400 event=COMPUTE secs=50 productive=50";
        "t=450 event=END complete=1" ]
  in
  let tot = t.Account.totals in
  Alcotest.(check int) "one merged restart" 1 tot.Account.restart_count.(3);
  approx "restart cost = fetch + rebuild" 60. tot.Account.restart_time.(3);
  Alcotest.(check int) "two PFS ckpt samples" 2 tot.Account.ckpt_count.(3);
  approx "merged + lone flush cost" 50. tot.Account.ckpt_time.(3);
  Alcotest.(check int) "no level-1 ckpt left behind" 0 tot.Account.ckpt_count.(0);
  approx "compute time excludes the output flush" 50. tot.Account.compute_time;
  approx "output flush accounted separately" 7. tot.Account.flush_output_time;
  Alcotest.(check int) "output flush count" 1 tot.Account.flush_output_count;
  (* ...but the output flush still reaches the estimators as progress. *)
  let compute_telemetry =
    List.fold_left
      (fun acc -> function
        | Telemetry.Compute { duration; _ } -> acc +. duration | _ -> acc)
      0. t.Account.events
  in
  approx "telemetry compute includes the output flush" 57. compute_telemetry

let test_account_interruption_inference () =
  let t =
    account
      [ "t=0 event=START scale=1024 levels=4";
        "t=10 event=CHECKPOINT secs=1 level=2";
        (* no END: the next START marks an uncontrolled interruption *)
        "t=1000 event=START";
        "t=1001 event=FETCH secs=5 level=2";
        "t=1006 event=REBUILD secs=2";
        "t=1100 event=END complete=1" ]
  in
  let tot = t.Account.totals in
  Alcotest.(check int) "starts" 2 tot.Account.starts;
  Alcotest.(check int) "interrupted" 1 tot.Account.runs_interrupted;
  Alcotest.(check int) "inferred failures" 1 tot.Account.inferred_failures;
  (* The synthetic failure lands at the dead run's last timestamp, at
     the level of the new run's first FETCH (2, not the PFS). *)
  let failure =
    List.find_map
      (function
        | Telemetry.Failure { at; level } -> Some (at, level) | _ -> None)
      t.Account.events
  in
  (match failure with
  | Some (at, level) ->
      approx "failure at the dead run's last timestamp" 10. at;
      Alcotest.(check int) "failure at fetch level" 2 level
  | None -> Alcotest.fail "no synthetic failure emitted");
  (* And the dead run is closed before the new one opens, so exposure
     does not accrue across the downtime gap. *)
  let rec closed_before_second_start = function
    | Telemetry.Run_end { completed = false; _ } :: rest ->
        List.exists (function Telemetry.Run_start _ -> true | _ -> false) rest
    | _ :: rest -> closed_before_second_start rest
    | [] -> false
  in
  Alcotest.(check bool) "incomplete Run_end before resumed Run_start" true
    (closed_before_second_start t.Account.events)

let test_account_level_clamping () =
  let p =
    Scr_log.parse
      [ "t=0 event=START";
        "t=1 event=CHECKPOINT secs=1 level=9" (* above a 4-level hierarchy *);
        "t=2 event=END complete=1" ]
  in
  let t = Account.run (Account.config ~levels:4 ()) p.Scr_log.records in
  Alcotest.(check int) "clamped to PFS" 1 t.Account.totals.Account.ckpt_count.(3);
  Alcotest.(check int) "clamp counted" 1
    t.Account.totals.Account.out_of_range_levels

(* ---------------- round trip ---------------- *)

let test_roundtrip_calibration () =
  (* Simulate with known parameters, render to log text, calibrate back:
     every true per-level rate must lie inside its fitted Garwood CI and
     the ML plan from the calibrated problem must price within 5% of the
     truth's own plan under the true parameters. *)
  let problem = Synth.demo_problem () in
  let config = Synth.demo_config problem in
  let lines = Synth.session_lines ~runs:4 ~seed:42 config in
  let parsed = Scr_log.parse lines in
  Alcotest.(check int) "synthetic log has no skips" 0
    (List.length parsed.Scr_log.skips);
  let fitted =
    match Fit.calibrate ~template:problem parsed with
    | Ok f -> f
    | Error m -> Alcotest.failf "calibrate failed: %s" m
  in
  let r = fitted.Fit.report in
  Alcotest.(check bool) "exposure accrued" true
    (r.Fit.exposure_core_seconds > 0.);
  let nb = problem.Optimizer.spec.Spec.baseline_scale in
  Array.iteri
    (fun i (lr : Fit.level_report) ->
      let truth =
        Spec.rate_per_second problem.Optimizer.spec ~level:(i + 1) ~scale:nb
        *. nb *. 86_400. /. nb
      in
      let truth_per_day =
        Spec.rate_per_second problem.Optimizer.spec ~level:(i + 1) ~scale:nb
        *. 86_400.
      in
      ignore truth;
      if not (lr.Fit.ci_low <= truth_per_day && truth_per_day <= lr.Fit.ci_high)
      then
        Alcotest.failf "level %d: true rate %.3g/day outside CI [%.3g, %.3g]"
          (i + 1) truth_per_day lr.Fit.ci_low lr.Fit.ci_high)
    r.Fit.levels;
  let n = 1024. in
  let true_plan = Optimizer.ml_ori_scale ~n problem in
  let cal_plan = Optimizer.ml_ori_scale ~n fitted.Fit.problem in
  let priced = Predict.wall_clock problem ~xs:cal_plan.Optimizer.xs ~n in
  let gap =
    Float.abs (priced -. true_plan.Optimizer.wall_clock)
    /. true_plan.Optimizer.wall_clock
  in
  if not (Float.is_finite gap && gap < 0.05) then
    Alcotest.failf "calibrated plan off by %.1f%% under true parameters"
      (100. *. gap)

(* ---------------- golden: the committed fixture ---------------- *)

(* dune runtest runs from _build/default/test; dune exec from the root. *)
let fixture_path =
  if Sys.file_exists "examples/scr_session.log" then "examples/scr_session.log"
  else "../examples/scr_session.log"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let test_golden_fixture () =
  let parsed = Scr_log.parse (read_lines fixture_path) in
  Alcotest.(check int) "lines" 1761 parsed.Scr_log.lines;
  Alcotest.(check int) "records" 1754 (List.length parsed.Scr_log.records);
  Alcotest.(check int) "skips" 3 (List.length parsed.Scr_log.skips);
  Alcotest.(check int) "blank" 4 parsed.Scr_log.blank;
  let problem = Synth.demo_problem () in
  let fitted =
    match Fit.calibrate ~template:problem parsed with
    | Ok f -> f
    | Error m -> Alcotest.failf "calibrate failed: %s" m
  in
  let r = fitted.Fit.report in
  Alcotest.(check int) "starts" 4 r.Fit.starts;
  Alcotest.(check int) "interrupted" 3 r.Fit.runs_interrupted;
  Alcotest.(check int) "inferred failures" 3 r.Fit.inferred_failures;
  Alcotest.(check int) "total failures" 28 r.Fit.total_failures;
  approx ~tol:1e-4 "exposure" 3.60104e+07 r.Fit.exposure_core_seconds;
  let expect =
    (* level, failures, rate/day, ckpt samples, ckpt mean, restart samples *)
    [| (11, 27.0258, 425, 0.869157, 10);
       (6, 14.7413, 214, 2.5892, 6);
       (8, 19.6551, 140, 3.90662, 8);
       (3, 7.37067, 36, 26.4052, 3) |]
  in
  Array.iteri
    (fun i (fails, rate, ckpt_n, ckpt_mean, rst_n) ->
      let lr = r.Fit.levels.(i) in
      Alcotest.(check int) (Printf.sprintf "l%d failures" (i + 1)) fails
        lr.Fit.failures;
      approx ~tol:1e-4 (Printf.sprintf "l%d rate" (i + 1)) rate lr.Fit.rate_per_day;
      Alcotest.(check int) (Printf.sprintf "l%d ckpt samples" (i + 1)) ckpt_n
        lr.Fit.ckpt_samples;
      approx ~tol:1e-4 (Printf.sprintf "l%d ckpt mean" (i + 1)) ckpt_mean
        lr.Fit.ckpt_mean;
      Alcotest.(check int) (Printf.sprintf "l%d restart samples" (i + 1)) rst_n
        lr.Fit.restart_samples)
    expect;
  (* The plan comparison on the calibrated problem: the ML plan is
     finite while both single-level baselines diverge at its scale —
     MTBF at n=8777 is shorter than either closed-form interval. *)
  let cmp = Compare.run fitted.Fit.problem in
  (match cmp.Compare.entries with
  | [ young; daly; ml ] ->
      Alcotest.(check (list string)) "labels" [ "young"; "daly"; "ml-opt" ]
        (List.map (fun e -> e.Compare.label) cmp.Compare.entries);
      Alcotest.(check bool) "young diverges" false
        (Float.is_finite young.Compare.wall_clock);
      Alcotest.(check bool) "daly diverges" false
        (Float.is_finite daly.Compare.wall_clock);
      approx ~tol:1e-3 "ml wall clock" 2446.52 ml.Compare.wall_clock;
      approx ~tol:1e-3 "ml scale" 8777.42 ml.Compare.plan.Optimizer.n
  | _ -> Alcotest.fail "three comparison entries expected");
  (* The report serializes. *)
  Alcotest.(check bool) "report_to_json is an object" true
    (match Fit.report_to_json r with Json.Obj _ -> true | _ -> false)

(* ---------------- service op ---------------- *)

let with_service f =
  let service = Service.create ~workers:0 () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) (fun () -> f service)

let demo_problem_json () = Codec.problem_to_json (Synth.demo_problem ())

let calibrate_line ?(compare = false) ?(id = 1.) lines =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Number id); ("op", Json.String "calibrate");
         ("problem", demo_problem_json ());
         ("log", Json.List (List.map (fun s -> Json.String s) lines));
         ("compare", Json.Bool compare) ])

let error_code response =
  match Json.member "error" response with
  | Some e -> Json.string_field "code" e
  | None -> None

let test_service_calibrate_ok () =
  with_service @@ fun service ->
  let lines =
    Synth.session_lines ~runs:4 ~seed:42
      (Synth.demo_config (Synth.demo_problem ()))
  in
  let r = Service.handle_line service (calibrate_line ~compare:true lines) in
  Alcotest.(check bool) "ok" true (Json.member "ok" r = Some (Json.Bool true));
  Alcotest.(check (option string)) "op echoed" (Some "calibrate")
    (Json.string_field "op" r);
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (Json.member field r <> None))
    [ "plan"; "fitted_problem"; "provenance"; "comparison" ];
  (* Provenance carries the parse accounting. *)
  let prov = Option.get (Json.member "provenance" r) in
  Alcotest.(check (option int)) "provenance parsed count"
    (Some (List.length lines))
    (Option.bind (Json.member "parsed" prov) Json.to_int);
  (* The session is stateful: a follow-up estimate sees the exposure,
     and a second calibrate accumulates (total failures grows). *)
  let est = Service.handle_line service {|{"op":"estimate","id":2}|} in
  Alcotest.(check bool) "estimate after calibrate" true
    (Json.member "ok" est = Some (Json.Bool true));
  let r2 = Service.handle_line service (calibrate_line ~id:3. lines) in
  let failures_of resp =
    let prov = Option.get (Json.member "provenance" resp) in
    Option.get (Option.bind (Json.member "total_failures" prov) Json.to_int)
  in
  Alcotest.(check bool) "second calibrate accumulates" true
    (failures_of r2 > failures_of r)

let test_service_calibrate_errors () =
  with_service @@ fun service ->
  (* log must be an array of strings *)
  let bad =
    Printf.sprintf {|{"op":"calibrate","id":1,"problem":%s,"log":"nope"}|}
      (Json.to_string (demo_problem_json ()))
  in
  Alcotest.(check (option string)) "non-array log" (Some "invalid-request")
    (error_code (Service.handle_line service bad));
  let bad_elem =
    Printf.sprintf {|{"op":"calibrate","id":2,"problem":%s,"log":["x", 7]}|}
      (Json.to_string (demo_problem_json ()))
  in
  Alcotest.(check (option string)) "non-string log element"
    (Some "invalid-request")
    (error_code (Service.handle_line service bad_elem));
  (* A log with no usable exposure is no-telemetry, not a crash. *)
  Alcotest.(check (option string)) "empty log" (Some "no-telemetry")
    (error_code (Service.handle_line service (calibrate_line [])));
  Alcotest.(check (option string)) "garbage-only log" (Some "no-telemetry")
    (error_code
       (Service.handle_line service (calibrate_line [ "junk"; "# c"; "" ])))

let test_service_calibrate_level_mismatch () =
  with_service @@ fun service ->
  let lines =
    Synth.session_lines ~runs:2 ~seed:9
      (Synth.demo_config (Synth.demo_problem ()))
  in
  (* Establish a 4-level session... *)
  let r = Service.handle_line service (calibrate_line lines) in
  Alcotest.(check bool) "first calibrate ok" true
    (Json.member "ok" r = Some (Json.Bool true));
  (* ...then calibrate a problem with a different hierarchy size: the
     session cannot hold both, so the request is rejected cleanly. *)
  let p = Synth.demo_problem () in
  let mono =
    { p with
      Optimizer.levels = [| p.Optimizer.levels.(3) |];
      spec =
        Spec.of_string
          ~baseline_scale:p.Optimizer.spec.Spec.baseline_scale "6" }
  in
  let req =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "calibrate");
           ("problem", Codec.problem_to_json mono);
           ("log", Json.List [ Json.String "t=0 event=START" ]) ])
  in
  Alcotest.(check (option string)) "level mismatch" (Some "invalid-request")
    (error_code (Service.handle_line service req))

let fuzz_service_calibrate =
  (* The op is total: arbitrary byte noise in the log array can shrink
     the usable evidence but never raise. *)
  QCheck.Test.make ~name:"service calibrate never raises on junk logs"
    ~count:50
    (QCheck.make QCheck.Gen.(list_size (int_bound 20) line_no_newline))
    (fun lines ->
      with_service @@ fun service ->
      match Service.handle_line service (calibrate_line lines) with
      | r -> (
          match Json.member "ok" r with
          | Some (Json.Bool _) -> true
          | _ -> QCheck.Test.fail_reportf "response has no ok field")
      | exception e ->
          QCheck.Test.fail_reportf "calibrate raised %s" (Printexc.to_string e))

(* ---------------- runner ---------------- *)

let qcheck = List.map (QCheck_alcotest.to_alcotest ~verbose:false)

let () =
  Alcotest.run "ckpt_calibrate"
    [ ( "scr-log",
        [ Alcotest.test_case "records" `Quick test_parse_line_records;
          Alcotest.test_case "lenient-grammar" `Quick test_parse_line_lenient_grammar;
          Alcotest.test_case "rejections" `Quick test_parse_line_rejections;
          Alcotest.test_case "invariant-and-numbering" `Quick
            test_parse_invariant_and_numbering;
          Alcotest.test_case "to-line-roundtrip" `Quick test_to_line_roundtrip ] );
      ( "scr-log-fuzz",
        qcheck [ fuzz_arbitrary_bytes; fuzz_truncated_lines; fuzz_interleaved_sessions ] );
      ( "account",
        [ Alcotest.test_case "merges" `Quick test_account_merges;
          Alcotest.test_case "interruption-inference" `Quick
            test_account_interruption_inference;
          Alcotest.test_case "level-clamping" `Quick test_account_level_clamping ] );
      ( "fit",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip_calibration;
          Alcotest.test_case "golden-fixture" `Quick test_golden_fixture ] );
      ( "service",
        [ Alcotest.test_case "calibrate-ok" `Quick test_service_calibrate_ok;
          Alcotest.test_case "calibrate-errors" `Quick test_service_calibrate_errors;
          Alcotest.test_case "level-mismatch" `Quick
            test_service_calibrate_level_mismatch ]
        @ qcheck [ fuzz_service_calibrate ] ) ]
