(* Tests for ckpt_chaos and the degradation machinery it exercises:
   determinism of the fault schedule, pool worker supervision, solver
   fault classification, retry/breaker/fallback behavior in the planner,
   worker-count independence of chaos'd service responses, the
   chaos-off byte-identity contract, and a seeded soak. *)

open Ckpt_model
open Ckpt_service
module Chaos = Ckpt_chaos.Chaos
module Pool = Ckpt_parallel.Pool
module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec

let mk_problem ?(te_days = 1e4) ?(kappa = 0.46) ?(n_star = 1e5) ?(alloc = 60.)
    ?(rates = "16-12-8-4") ?(levels = Level.fti_fusion) () =
  { Optimizer.te = te_days *. 86_400.;
    speedup = Speedup.quadratic ~kappa ~n_star;
    levels;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:n_star rates }

let base_problem = mk_problem ()
let problem_json = Codec.problem_to_json base_problem

let query ?(solution = Protocol.Ml_opt) ?fixed_n ?(delta = 1e-9) problem =
  { Protocol.problem; solution; fixed_n; delta }

let sites = [ Chaos.Pool; Chaos.Solver; Chaos.Line; Chaos.Telemetry ]

(* ---------------- determinism of the decision function ---------------- *)

let draws chaos =
  List.concat_map
    (fun site ->
      List.concat_map
        (fun index ->
          List.map (fun attempt -> Chaos.draw chaos ~site ~index ~attempt) [ 0; 1; 2 ])
        (List.init 50 Fun.id))
    sites

let test_draw_deterministic () =
  let spec = Chaos.spec ~seed:42 ~rate:0.3 () in
  let a = draws (Chaos.create spec) in
  let b = draws (Chaos.create spec) in
  Alcotest.(check bool) "same spec, same schedule" true (a = b);
  let c = draws (Chaos.create (Chaos.spec ~seed:43 ~rate:0.3 ())) in
  Alcotest.(check bool) "different seed, different schedule" false (a = c);
  let fired = List.filter Option.is_some a in
  Alcotest.(check bool) "rate 0.3 fires somewhere in 600 draws" true (List.length fired > 0)

let test_disabled_never_fires () =
  let chaos = Chaos.create Chaos.disabled in
  Alcotest.(check bool) "no fault ever" true (List.for_all Option.is_none (draws chaos));
  Alcotest.(check int) "nothing recorded" 0 (Chaos.injected chaos)

let test_spec_validation () =
  let check name spec =
    match Chaos.create spec with
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  check "probability above 1" { Chaos.disabled with Chaos.pool_crash = 1.5 };
  check "negative probability" { Chaos.disabled with Chaos.solver_diverge = -0.1 };
  check "site kinds sum above 1"
    { Chaos.disabled with Chaos.line_corrupt = 0.6; line_truncate = 0.6 };
  check "negative stall bound" { Chaos.disabled with Chaos.stall_max_s = -1. };
  check "non-finite skew bound" { Chaos.disabled with Chaos.skew_max_s = Float.nan }

(* ---------------- pool supervision ---------------- *)

let test_pool_survives_crashes () =
  let chaos =
    Chaos.create { Chaos.disabled with Chaos.seed = 11; pool_crash = 0.4 }
  in
  let pool = Pool.create ~chaos ~workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 200 Fun.id in
  let ys = Pool.map pool ~f:(fun x -> x * x) xs in
  Alcotest.(check bool) "all items computed in order" true
    (ys = Array.map (fun x -> x * x) xs);
  Alcotest.(check bool) "workers actually crashed and were respawned" true
    (Pool.respawns pool > 0);
  (* The pool keeps working after the supervisor replaced domains. *)
  let zs = Pool.map pool ~f:(fun x -> x + 1) (Array.init 50 Fun.id) in
  Alcotest.(check bool) "pool still serves after respawns" true
    (zs = Array.init 50 (fun i -> i + 1))

let test_pool_total_crash_rate_still_completes () =
  (* Even at crash probability 1 the per-item cap forces progress. *)
  let chaos = Chaos.create { Chaos.disabled with Chaos.seed = 3; pool_crash = 1. } in
  let pool = Pool.create ~chaos ~workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let ys = Pool.map pool ~f:(fun x -> x * 2) (Array.init 8 Fun.id) in
  Alcotest.(check bool) "map completes under 100% crash rate" true
    (ys = Array.init 8 (fun i -> i * 2))

(* ---------------- solver fault classification ---------------- *)

let test_solve_outcome_inject () =
  (match Optimizer.solve_outcome ~inject:Chaos.Diverge base_problem with
  | Optimizer.Diverged plan ->
      Alcotest.(check bool) "diverged plan still carries numbers" true
        (Float.is_finite plan.Optimizer.wall_clock)
  | _ -> Alcotest.fail "expected Diverged");
  (match Optimizer.solve_outcome ~inject:Chaos.Non_finite base_problem with
  | Optimizer.Non_finite _ -> ()
  | _ -> Alcotest.fail "expected Non_finite");
  match Optimizer.solve_outcome base_problem with
  | Optimizer.Converged plan ->
      Alcotest.(check bool) "no injection is byte-identical to solve" true
        (plan = Optimizer.solve base_problem)
  | _ -> Alcotest.fail "expected Converged"

(* ---------------- planner: retry, breaker, fallback ---------------- *)

let always_diverge seed =
  Chaos.create { Chaos.disabled with Chaos.seed; solver_diverge = 1. }

let fast_resilience =
  { Planner.default_resilience with
    Planner.max_attempts = 1;
    backoff_ms = 0.;
    breaker_threshold = 2;
    breaker_cooldown = 3 }

let solve_one planner q =
  match (Planner.solve_batch planner [| q |]).(0) with
  | Ok answer -> answer
  | Error e -> Alcotest.fail ("unexpected error: " ^ e.Protocol.code)

let test_breaker_sequence () =
  let metrics = Metrics.create () in
  let planner =
    Planner.create ~resilience:fast_resilience ~chaos:(always_diverge 0) metrics
  in
  let reason i =
    (* Distinct fixed_n per request: no cache hits, every solve uncached. *)
    let q = query ~fixed_n:(1e4 +. (float_of_int i *. 500.)) base_problem in
    match (solve_one planner q).Protocol.degraded with
    | Some d -> d.Protocol.reason.Protocol.code
    | None -> Alcotest.fail "expected a degraded answer"
  in
  let codes = List.init 8 reason in
  Alcotest.(check (list string)) "primary failures, trip, cooldown, retry, trip"
    [ "solver-diverged"; "solver-diverged";  (* 2 failures trip the breaker *)
      "circuit-open"; "circuit-open"; "circuit-open";  (* cooldown = 3 *)
      "solver-diverged"; "solver-diverged";  (* retried primary trips again *)
      "circuit-open" ]
    codes;
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "two breaker trips" 2 s.Metrics.breaker_trips;
  Alcotest.(check int) "every request degraded" 8 s.Metrics.degraded;
  Alcotest.(check bool) "breaker currently open" true (Planner.breaker_open planner)

let test_retries_counted_and_deadline_respected () =
  let metrics = Metrics.create () in
  let resilience =
    { fast_resilience with Planner.max_attempts = 3; breaker_threshold = 0 }
  in
  let planner = Planner.create ~resilience ~chaos:(always_diverge 1) metrics in
  let answer = solve_one planner (query ~fixed_n:2e4 base_problem) in
  (match answer.Protocol.degraded with
  | Some d ->
      Alcotest.(check string) "reason" "solver-diverged" d.Protocol.reason.Protocol.code;
      Alcotest.(check int) "all attempts spent" 3 d.Protocol.reason.Protocol.attempts
  | None -> Alcotest.fail "expected degraded");
  Alcotest.(check int) "retries = attempts - 1" 2 (Metrics.snapshot metrics).Metrics.retries

let test_no_fallback_surfaces_error () =
  let resilience =
    { fast_resilience with Planner.fallback = false; breaker_threshold = 0 }
  in
  let planner = Planner.create ~resilience ~chaos:(always_diverge 2) (Metrics.create ()) in
  match (Planner.solve_batch planner [| query ~fixed_n:2e4 base_problem |]).(0) with
  | Error e ->
      Alcotest.(check string) "structured error" "solver-diverged" e.Protocol.code;
      Alcotest.(check int) "attempts reported" 1 e.Protocol.attempts
  | Ok _ -> Alcotest.fail "expected an error with fallback disabled"

(* Degraded answers must never be cached: once the fault clears, the
   next miss solves the primary again. *)
let test_degraded_not_cached () =
  let metrics = Metrics.create () in
  let resilience = { fast_resilience with Planner.breaker_threshold = 0 } in
  (* Seed chosen so attempt 0 of request 0 diverges but later solves of
     the same query (fresh chaos key) may not — easier: rate 1 chaos on
     the first planner, then a healthy re-query on the same planner
     can't work since chaos is per-planner.  Instead: solve, drop chaos
     by re-creating, and check the cache carries nothing over. *)
  let chaotic = Planner.create ~resilience ~chaos:(always_diverge 4) metrics in
  let q = query ~fixed_n:2e4 base_problem in
  let a1 = solve_one chaotic q in
  Alcotest.(check bool) "first answer degraded" true (a1.Protocol.degraded <> None);
  let a2 = solve_one chaotic q in
  Alcotest.(check bool) "second answer not served from cache" true
    (not a2.Protocol.cached)

(* Acceptance: a degraded answer's expected wall clock stays within 2x
   of the multilevel optimum across the paper's Table 2 rate
   configurations. *)
let test_degraded_within_2x () =
  List.iter
    (fun rates ->
      let p = mk_problem ~rates () in
      let chaos =
        Chaos.create
          { Chaos.disabled with Chaos.seed = 9; solver_diverge = 0.5; solver_non_finite = 0.5 }
      in
      let resilience = { fast_resilience with Planner.breaker_threshold = 0 } in
      let planner = Planner.create ~resilience ~chaos (Metrics.create ()) in
      let answer = solve_one planner (query p) in
      match answer.Protocol.degraded with
      | None -> Alcotest.fail (rates ^ ": expected a degraded answer under total solver chaos")
      | Some d ->
          Alcotest.(check string) (rates ^ ": first fallback is sl-opt") "sl-opt"
            (Protocol.solution_to_string d.Protocol.fallback);
          let optimum = (Optimizer.ml_opt_scale p).Optimizer.wall_clock in
          let ratio = answer.Protocol.plan.Optimizer.wall_clock /. optimum in
          Alcotest.(check bool)
            (Printf.sprintf "%s: degraded E(Tw) within 2x of optimum (ratio %.3f)" rates ratio)
            true
            (ratio >= 1. && ratio <= 2.))
    [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1"; "16-8-4-2"; "8-4-2-1"; "4-2-1-0.5" ]

(* ---------------- service-level traffic ---------------- *)

let observe_line i =
  let t0 = float_of_int (i * 1000) in
  Printf.sprintf
    {|{"id": %d, "op": "observe", "events": [{"t": %g, "ev": "start", "scale": 1e5, "levels": 4}, {"t": %g, "ev": "compute", "dur": 500, "productive": 480}, {"t": %g, "ev": "failure", "level": %d}, {"t": %g, "ev": "end", "completed": true}]}|}
    i t0 (t0 +. 10.) (t0 +. 510.)
    (1 + (i mod 4))
    (t0 +. 600.)

let traffic n =
  let pj = Json.to_string problem_json in
  List.init n (fun i ->
      if i mod 17 = 0 then observe_line i
      else if i mod 13 = 0 then
        Printf.sprintf {|{"id": %d, "op": "replan", "fixed_n": %g, "problem": %s}|} i
          (2e4 +. (float_of_int i *. 10.))
          pj
      else if i mod 23 = 0 then
        Printf.sprintf
          {|{"id": %d, "op": "simulate-validate", "replications": 2, "seed": %d, "fixed_n": 2e4, "problem": %s}|}
          i i pj
      else if i mod 7 = 0 then
        Printf.sprintf {|{"id": %d, "op": "sweep", "param": "scale", "values": [%g, %g], "problem": %s}|}
          i
          (1e4 +. (float_of_int i *. 40.))
          (1.5e4 +. (float_of_int i *. 40.))
          pj
      else
        Printf.sprintf {|{"id": %d, "op": "plan", "fixed_n": %g, "problem": %s}|} i
          (1e4 +. (float_of_int i *. 150.))
          pj)

let rec chunks size = function
  | [] -> []
  | lines ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let batch, rest = take size [] lines in
      batch :: chunks size rest

let run_service ?chaos ?resilience ~workers ~batch lines =
  let service = Service.create ~workers ?chaos ?resilience () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let responses =
    List.concat_map (fun chunk -> Service.handle_batch service chunk) (chunks batch lines)
  in
  (List.map Json.to_string responses, Metrics.snapshot (Service.metrics service))

(* The tentpole determinism property: same chaos seed, same traffic =>
   identical fault schedule (the applied-fault log compares equal) and
   byte-identical responses at 1, 2 and 4 workers. *)
let test_worker_count_independence () =
  let lines = traffic 60 in
  let run workers =
    let chaos = Chaos.create (Chaos.spec ~seed:21 ~rate:0.2 ()) in
    let responses, _ = run_service ~chaos ~workers ~batch:20 lines in
    (responses, Chaos.records chaos, Chaos.injected chaos)
  in
  let r1, log1, n1 = run 1 in
  let r2, log2, n2 = run 2 in
  let r4, log4, n4 = run 4 in
  Alcotest.(check bool) "chaos fired" true (n1 > 0);
  Alcotest.(check int) "same injection count 1 vs 2" n1 n2;
  Alcotest.(check int) "same injection count 1 vs 4" n1 n4;
  Alcotest.(check bool) "identical fault schedule 1 vs 2" true (log1 = log2);
  Alcotest.(check bool) "identical fault schedule 1 vs 4" true (log1 = log4);
  Alcotest.(check bool) "identical responses 1 vs 2" true (r1 = r2);
  Alcotest.(check bool) "identical responses 1 vs 4" true (r1 = r4)

(* Chaos off => the machinery is invisible: a service with the disabled
   policy answers byte-identically to one with no policy at all, plans
   carry no degraded/attempts fields, stats no resilience block. *)
let test_chaos_off_byte_identity () =
  let lines = traffic 30 @ [ {|{"op": "stats"}|} ] in
  let bare, _ = run_service ~workers:2 ~batch:10 lines in
  let disabled, _ =
    run_service ~chaos:(Chaos.create Chaos.disabled) ~workers:2 ~batch:10 lines
  in
  (* Stats carry wall-clock timings; compare everything except them. *)
  let comparable lines = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  Alcotest.(check bool) "disabled policy is invisible" true
    (comparable bare = comparable disabled);
  List.iter
    (fun line ->
      let r = Json.parse line in
      Alcotest.(check bool) "no degraded marker" true (Json.member "degraded" r = None);
      Alcotest.(check bool) "no attempts field" true (Json.member "attempts" r = None))
    (comparable bare);
  let stats = Json.parse (List.nth bare (List.length bare - 1)) in
  match Json.member "stats" stats with
  | Some s ->
      Alcotest.(check bool) "no resilience block in healthy stats" true
        (Json.member "resilience" s = None)
  | None -> Alcotest.fail "stats response missing payload"

let well_formed line =
  let r = Json.parse line in
  Protocol.response_ok r
  || Protocol.response_degraded r
  ||
  match Protocol.response_error r with
  | Some e -> e.Protocol.code <> ""
  | None -> false

(* Satellite soak: 1000 requests at a 10% fault rate, batches of 50,
   two workers.  Completes (no hang), answers every request, and every
   response is ok, degraded, or a structured error. *)
let test_soak () =
  let lines = traffic 1000 in
  let chaos = Chaos.create (Chaos.spec ~seed:123 ~rate:0.1 ()) in
  let responses, snapshot = run_service ~chaos ~workers:2 ~batch:50 lines in
  Alcotest.(check int) "every request answered" 1000 (List.length responses);
  Alcotest.(check int) "all requests counted" 1000 snapshot.Metrics.requests;
  Alcotest.(check bool) "faults were injected" true (Chaos.injected chaos > 100);
  List.iteri
    (fun i line ->
      if not (well_formed line) then
        Alcotest.fail (Printf.sprintf "response %d malformed: %s" i line))
    responses

let () =
  Alcotest.run "chaos"
    [ ("schedule",
       [ Alcotest.test_case "draw is a pure function of the key" `Quick test_draw_deterministic;
         Alcotest.test_case "disabled never fires" `Quick test_disabled_never_fires;
         Alcotest.test_case "spec validation" `Quick test_spec_validation ]);
      ("pool",
       [ Alcotest.test_case "supervisor respawns crashed workers" `Quick test_pool_survives_crashes;
         Alcotest.test_case "progress under 100% crash rate" `Quick
           test_pool_total_crash_rate_still_completes ]);
      ("solver",
       [ Alcotest.test_case "injected outcomes classify" `Quick test_solve_outcome_inject ]);
      ("planner",
       [ Alcotest.test_case "breaker trip, cooldown, retry" `Quick test_breaker_sequence;
         Alcotest.test_case "retry accounting" `Quick test_retries_counted_and_deadline_respected;
         Alcotest.test_case "no fallback surfaces the error" `Quick test_no_fallback_surfaces_error;
         Alcotest.test_case "degraded answers are not cached" `Quick test_degraded_not_cached;
         Alcotest.test_case "degraded within 2x of optimum (Table 2)" `Quick
           test_degraded_within_2x ]);
      ("service",
       [ Alcotest.test_case "responses independent of worker count" `Quick
           test_worker_count_independence;
         Alcotest.test_case "chaos off is byte-identical" `Quick test_chaos_off_byte_identity;
         Alcotest.test_case "soak: 1k requests at 10% faults" `Quick test_soak ]) ]
