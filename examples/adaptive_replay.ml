(* Closed-loop adaptive re-planning demo.

   Part 1 replays a recorded telemetry log (examples/adaptive_session.jsonl
   by default, or the path given as the first argument) through the
   adaptive controller: it prints the drift alarm, every re-planning
   decision, and the fitted failure rates with their 95 % confidence
   intervals next to the rates that generated the log.

   Part 2 re-runs the same scenario end to end under three policies —
   the static plan fitted to the initial rates, the adaptive controller,
   and an oracle that knows the shifted rates — and reports realized
   wall-clock and regret versus the oracle.

   Run with:  dune exec examples/adaptive_replay.exe
   Regenerate the session log with:
     dune exec examples/adaptive_replay.exe -- --write examples/adaptive_session.jsonl *)

module Optimizer = Ckpt_model.Optimizer
module Spec = Ckpt_failures.Failure_spec
module A = Ckpt_adaptive

let read_log path =
  let ic = open_in path in
  let rec go acc = match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  match A.Telemetry.read_lines (go []) with
  | Ok events -> events
  | Error msg -> Printf.eprintf "cannot read %s: %s\n" path msg; exit 1

let write_log path events =
  let oc = open_out path in
  List.iter (fun e -> output_string oc (A.Telemetry.to_line e); output_char oc '\n') events;
  close_out oc;
  Printf.printf "wrote %d events to %s\n" (List.length events) path

let replay scenario path =
  let events = read_log path in
  Printf.printf "=== Replaying %s (%d events) ===\n" path (List.length events);
  let config = A.Controller.default_config scenario.A.Closed_loop.problem in
  let ctrl = A.Controller.init config in
  let initial = A.Controller.plan ctrl in
  Printf.printf "initial plan: xs = [%s], N = %.0f, predicted E(T_w) = %.0f s\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.1f") initial.Optimizer.xs)))
    initial.Optimizer.n initial.Optimizer.wall_clock;
  let ctrl =
    List.fold_left
      (fun ctrl event ->
        let ctrl', action = A.Controller.step ctrl event in
        (match action with
        | A.Controller.No_op -> ()
        | A.Controller.Replanned { plan; improvement; drift; _ } ->
            Printf.printf
              "t = %8.0f s  REPLAN%s: xs = [%s], N = %.0f, predicted gain %.1f %%\n"
              (A.Telemetry.at event)
              (if drift then " (drift alarm)" else "")
              (String.concat "; "
                 (Array.to_list (Array.map (Printf.sprintf "%.1f") plan.Optimizer.xs)))
              plan.Optimizer.n (100. *. improvement));
        ctrl')
      ctrl events
  in
  let rates = A.Controller.rates ctrl in
  let nb = scenario.A.Closed_loop.problem.Optimizer.spec.Spec.baseline_scale in
  Printf.printf "fitted rates per day at N_b = %.0f (true post-shift %s):\n" nb
    (Spec.to_string scenario.A.Closed_loop.shifted_spec);
  for level = 1 to A.Rate_estimator.levels rates do
    let r = A.Rate_estimator.rate_per_day rates ~level ~baseline_scale:nb in
    let lo, hi = A.Rate_estimator.confidence_per_day rates ~level ~baseline_scale:nb in
    Printf.printf "  level %d: %6.2f  [95 %% CI %6.2f .. %6.2f]  (%d failures)\n" level r lo hi
      (A.Rate_estimator.count rates ~level)
  done;
  Printf.printf "replans: %d, evaluations: %d\n\n" (A.Controller.replans ctrl)
    (A.Controller.evaluations ctrl)

let compare_policies scenario =
  Printf.printf "=== Closed-loop comparison (true rates shift %s -> %s at t = %.0f s) ===\n"
    (Spec.to_string scenario.A.Closed_loop.true_spec)
    (Spec.to_string scenario.A.Closed_loop.shifted_spec)
    scenario.A.Closed_loop.shift_at;
  let config = A.Controller.default_config scenario.A.Closed_loop.problem in
  let policies = [ A.Closed_loop.Static; A.Closed_loop.Adaptive config; A.Closed_loop.Oracle ] in
  let results = List.map (A.Closed_loop.run ~seed:42 scenario) policies in
  let oracle = List.nth results 2 in
  List.iter
    (fun (r : A.Closed_loop.result) ->
      Printf.printf "%-8s  wall %9.0f s  (%5.2f days)  replans %d  regret vs oracle %+6.2f %%\n"
        r.A.Closed_loop.policy r.A.Closed_loop.wall_clock
        (r.A.Closed_loop.wall_clock /. 86400.)
        r.A.Closed_loop.replans
        (100. *. A.Closed_loop.regret r ~oracle))
    results;
  results

let () =
  let scenario = A.Closed_loop.demo_scenario () in
  match Sys.argv with
  | [| _; "--write"; path |] ->
      let results = compare_policies scenario in
      let adaptive = List.nth results 1 in
      write_log path adaptive.A.Closed_loop.telemetry
  | argv ->
      let path = if Array.length argv > 1 then argv.(1) else "examples/adaptive_session.jsonl" in
      if Sys.file_exists path then replay scenario path
      else Printf.printf "(no session log at %s; run with --write %s to record one)\n" path path;
      ignore (compare_policies scenario)
