(** End-to-end harness: a simulated execution with a rate shift, played
    against static, adaptive, and oracle planning policies.

    The engine cannot change plans mid-run, so the harness runs the
    workload in {e epochs} of at most [review_every] wall-clock seconds:
    each epoch simulates the remaining work under the policy's current
    plan and the {e true} (possibly shifted) failure rates, appends the
    epoch's telemetry to a global-time stream, and lets the policy react
    before the next epoch.  Failure inter-arrivals are exponential
    (memoryless), so restarting the arrival processes at epoch boundaries
    is distributionally exact.

    When a policy replans, the new plan's checkpoint {e interval lengths}
    are preserved: the remaining work's interval counts are re-derived as
    [remaining_target / tau_i] (clamped to [>= 1]), so a plan keeps its
    cadence regardless of how much work is left.

    The three policies:
    - [Static] — the plan fitted to the believed (initial) rates, never
      revised;
    - [Adaptive of config] — a {!Controller} fed the telemetry stream;
    - [Oracle] — knows the true rates, including the shift, and switches
      to the post-shift optimum at the first epoch boundary after
      [shift_at]; the regret baseline. *)

type scenario = {
  problem : Ckpt_model.Optimizer.problem;
      (** the believed problem; its [spec] is the prior the static plan
          and the adaptive controller start from *)
  true_spec : Ckpt_failures.Failure_spec.t;  (** rates actually driving failures *)
  shifted_spec : Ckpt_failures.Failure_spec.t;  (** rates after [shift_at] *)
  shift_at : float;  (** wall-clock seconds; [infinity] = no shift *)
  review_every : float;  (** epoch horizon, wall-clock seconds *)
  semantics : Ckpt_sim.Run_config.semantics;
  max_epochs : int;
}

val scenario :
  ?semantics:Ckpt_sim.Run_config.semantics ->
  ?max_epochs:int ->
  ?shift_at:float ->
  ?shifted_spec:Ckpt_failures.Failure_spec.t ->
  review_every:float ->
  true_spec:Ckpt_failures.Failure_spec.t ->
  Ckpt_model.Optimizer.problem ->
  scenario
(** [shifted_spec] defaults to [true_spec] (no drift), [shift_at] to
    [infinity], [semantics] to {!Ckpt_sim.Run_config.paper_semantics},
    [max_epochs] to [10_000]. *)

val demo_scenario : ?baseline_scale:float -> unit -> scenario
(** The scenario the bundled example, tests, and committed session log
    share: a 100k-core-scale Fusion-hierarchy problem believed to fail at
    ["4-3-2-1"] per day whose PFS-level rate shifts 24x early in the
    run. *)

type policy = Static | Adaptive of Controller.config | Oracle

val policy_name : policy -> string

type epoch_log = {
  started_at : float;
  n : float;
  wall : float;
  productive : float;  (** parallel first-time seconds this epoch *)
  failures : int;
  replanned : bool;  (** the policy changed plans {e after} this epoch *)
}

type result = {
  policy : string;
  wall_clock : float;
  completed : bool;  (** [false] when [max_epochs] ran out *)
  epochs : epoch_log list;  (** in execution order *)
  replans : int;
  telemetry : Telemetry.event list;  (** global-time, spliced across epochs *)
  final_xs : float array;
  final_n : float;
}

val run : ?seed:int -> scenario -> policy -> result
(** Deterministic for equal [(seed, scenario, policy)]; policies compared
    under the same seed share per-epoch seed streams. *)

val regret : result -> oracle:result -> float
(** Relative excess wall-clock over the oracle's,
    [(wall - oracle) / oracle]. *)
