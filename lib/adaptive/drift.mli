(** Change-point detection on failure inter-arrival times.

    A two-sided CUSUM of the exponential log-likelihood ratio: under the
    fitted (null) rate [lambda0], each observed inter-arrival [x]
    contributes [log(lambda1/lambda0) - (lambda1 - lambda0) x] to a
    one-sided statistic, with [lambda1 = ratio * lambda0] testing for a
    rate increase and [lambda1 = lambda0 / ratio] for a decrease.  The
    statistics are clamped at zero (Page's test) and an alarm raises —
    stickily, until {!reset} — when either crosses [threshold].

    Inter-arrivals are measured in {e core-seconds of exposure} so the
    test is invariant to the execution scale; [rate] is per core-second
    (e.g. {!Ckpt_failures.Failure_spec.total_rate_per_second'}).

    The defaults ([ratio = 2.], [threshold = 6.]) alarm after roughly ten
    inter-arrivals of a 10x rate shift while keeping the in-control mean
    time between false alarms at several hundred events. *)

type t

val create : ?ratio:float -> ?threshold:float -> rate:float -> unit -> t
(** @raise Invalid_argument when [rate <= 0], [ratio <= 1] or
    [threshold <= 0]. *)

val observe : t -> float -> t
(** Feed one inter-arrival (core-seconds; negative values are clamped to
    [0.]). *)

val alarmed : t -> bool

val statistics : t -> float * float
(** Current (up, down) CUSUM statistics. *)

val reset : t -> rate:float -> t
(** Clear the statistics and the alarm, re-anchoring the null rate —
    called after every re-planning evaluation so the test tracks the
    current estimate. *)

val pp : Format.formatter -> t -> unit
