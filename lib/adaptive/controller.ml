module Optimizer = Ckpt_model.Optimizer
module Spec = Ckpt_failures.Failure_spec

type config = {
  problem : Optimizer.problem;
  fixed_n : float option;
  delta : float;
  min_failures : int;
  improvement_threshold : float;
  cooldown : float;
  drift_ratio : float;
  drift_threshold : float;
  drift_forget : float;
  half_life : float option;
  prior_strength : float;
  cost_min_samples : int;
}

let default_config problem =
  {
    problem;
    fixed_n = None;
    delta = 1e-9;
    min_failures = 8;
    improvement_threshold = 0.02;
    cooldown = 0.;
    drift_ratio = 2.;
    drift_threshold = 6.;
    drift_forget = 0.15;
    half_life = None;
    prior_strength = 0.;
    cost_min_samples = 3;
  }

type state = {
  config : config;
  rates : Rate_estimator.t;
  costs : Cost_estimator.t;
  drift : Drift.t;
  plan : Optimizer.plan;
  fitted : Optimizer.problem;
  last_eval_at : float;
  last_failure_exposure : float;  (* raw core-seconds at the previous failure *)
  replans : int;
  evaluations : int;
}

type action =
  | No_op
  | Replanned of {
      plan : Optimizer.plan;
      problem : Optimizer.problem;
      improvement : float;
      drift : bool;
    }

let solve config problem =
  match config.fixed_n with
  | None -> Optimizer.solve ~delta:config.delta problem
  | Some n -> Optimizer.solve ~delta:config.delta ~fixed_n:n problem

let init config =
  Optimizer.check_problem config.problem;
  if config.min_failures < 1 then invalid_arg "Controller.init: min_failures < 1";
  if config.improvement_threshold < 0. then
    invalid_arg "Controller.init: negative improvement_threshold";
  if config.cooldown < 0. then invalid_arg "Controller.init: negative cooldown";
  if config.drift_forget < 0. || config.drift_forget > 1. then
    invalid_arg "Controller.init: drift_forget outside [0, 1]";
  let levels = Array.length config.problem.Optimizer.levels in
  let plan = solve config config.problem in
  {
    config;
    rates = Rate_estimator.create ?half_life:config.half_life ~levels ();
    costs = Cost_estimator.create ~levels ();
    drift =
      Drift.create ~ratio:config.drift_ratio ~threshold:config.drift_threshold
        ~rate:(Spec.total_rate_per_second' config.problem.Optimizer.spec)
        ();
    plan;
    fitted = config.problem;
    last_eval_at = neg_infinity;
    last_failure_exposure = 0.;
    replans = 0;
    evaluations = 0;
  }

let estimates state =
  {
    state.config.problem with
    Optimizer.spec =
      Rate_estimator.to_spec ~prior_strength:state.config.prior_strength state.rates
        ~like:state.config.problem.Optimizer.spec;
    levels =
      Cost_estimator.calibrated_levels ~min_samples:state.config.cost_min_samples state.costs
        ~prior:state.config.problem.Optimizer.levels;
  }

(* Re-anchor the detector at the fitted total rate so it tests for the
   *next* shift, not the one just absorbed. *)
let reset_drift state candidate =
  let rate = Spec.total_rate_per_second' candidate.Optimizer.spec in
  let rate =
    if rate > 0. then rate else Spec.total_rate_per_second' state.config.problem.Optimizer.spec
  in
  Drift.reset state.drift ~rate

let evaluate state ~at ~alarm =
  let state = if alarm then { state with rates = Rate_estimator.forget state.rates ~keep:state.config.drift_forget } else state in
  let candidate = estimates state in
  let cand_plan = solve state.config candidate in
  let pinned =
    Predict.wall_clock candidate ~xs:state.plan.Optimizer.xs ~n:state.plan.Optimizer.n
  in
  let improvement =
    if Float.is_finite pinned && pinned > 0. then
      (pinned -. cand_plan.Optimizer.wall_clock) /. pinned
    else if Float.is_finite cand_plan.Optimizer.wall_clock then 1.
    else 0.
  in
  let state =
    {
      state with
      drift = reset_drift state candidate;
      last_eval_at = at;
      evaluations = state.evaluations + 1;
    }
  in
  if improvement > state.config.improvement_threshold then
    ( { state with plan = cand_plan; fitted = candidate; replans = state.replans + 1 },
      Replanned { plan = cand_plan; problem = candidate; improvement; drift = alarm } )
  else (state, No_op)

let step state event =
  let rates = Rate_estimator.observe state.rates event in
  let costs = Cost_estimator.observe state.costs event in
  let state = { state with rates; costs } in
  let state =
    match event with
    | Telemetry.Failure _ ->
        let exposure = Rate_estimator.exposure rates in
        let inter = exposure -. state.last_failure_exposure in
        {
          state with
          drift = Drift.observe state.drift inter;
          last_failure_exposure = exposure;
        }
    | _ -> state
  in
  let eligible =
    match event with Telemetry.Failure _ | Telemetry.Run_end _ -> true | _ -> false
  in
  if not eligible then (state, No_op)
  else if Rate_estimator.total_count state.rates < state.config.min_failures then (state, No_op)
  else
    let at = Telemetry.at event in
    let alarm = Drift.alarmed state.drift in
    if alarm || at -. state.last_eval_at >= state.config.cooldown then
      evaluate state ~at ~alarm
    else (state, No_op)

let step_all state events =
  let state, actions =
    List.fold_left
      (fun (state, actions) event ->
        let state, action = step state event in
        match action with No_op -> (state, actions) | a -> (state, a :: actions))
      (state, []) events
  in
  (state, List.rev actions)

let plan state = state.plan
let fitted_problem state = state.fitted
let rates state = state.rates
let costs state = state.costs
let drift state = state.drift
let replans state = state.replans
let evaluations state = state.evaluations
