module Spec = Ckpt_failures.Failure_spec

type t = {
  levels : int;
  half_life : float option;
  counts : float array;  (* weighted, drives point estimates *)
  exposure : float;  (* weighted core-seconds *)
  raw_counts : int array;  (* drives exact CIs and sample-size gates *)
  raw_exposure : float;
  scale : float;  (* current execution scale *)
  last_at : float option;  (* last timestamp inside the current run *)
}

let create ?half_life ?(scale = 1.) ~levels () =
  if levels <= 0 then invalid_arg "Rate_estimator.create: levels must be positive";
  (match half_life with
  | Some h when h <= 0. -> invalid_arg "Rate_estimator.create: non-positive half_life"
  | _ -> ());
  if scale <= 0. then invalid_arg "Rate_estimator.create: non-positive scale";
  {
    levels;
    half_life;
    counts = Array.make levels 0.;
    exposure = 0.;
    raw_counts = Array.make levels 0;
    raw_exposure = 0.;
    scale;
    last_at = None;
  }

let levels t = t.levels

let check_level t level =
  if level < 1 || level > t.levels then
    invalid_arg (Printf.sprintf "Rate_estimator: level %d out of range 1..%d" level t.levels)

(* Advance exposure by the wall-clock gap to [at], in core-seconds at the
   current scale.  With a half-life, previously accumulated weight decays
   across the gap and the gap itself enters with its average weight —
   the closed form of  integral_0^d e^(-gamma (d - u)) du = (1 - e^(-gamma d)) / gamma. *)
let advance t at =
  match t.last_at with
  | None -> if Float.is_finite at then { t with last_at = Some at } else t
  | Some last ->
      (* Skewed or corrupted logs can present out-of-order or even
         non-finite timestamps; exposure only ever moves forward, and
         the watermark never rewinds (a backwards event must not make
         the span up to it count twice). *)
      let gap = at -. last in
      let dt = if Float.is_finite gap && gap > 0. then gap else 0. in
      let dcore = dt *. t.scale in
      let t = { t with last_at = Some (last +. dt); raw_exposure = t.raw_exposure +. dcore } in
      if dcore = 0. then t
      else (
        match t.half_life with
        | None -> { t with exposure = t.exposure +. dcore }
        | Some h ->
            let gamma = Float.log 2. /. h in
            let w = Float.exp (-.gamma *. dcore) in
            {
              t with
              counts = Array.map (fun c -> c *. w) t.counts;
              exposure = (t.exposure *. w) +. ((1. -. w) /. gamma);
            })

let observe t event =
  match event with
  | Telemetry.Run_start { at; scale; levels = _ } ->
      (* no exposure across the inter-run gap *)
      let scale = if scale > 0. && Float.is_finite scale then scale else t.scale in
      let last_at = if Float.is_finite at then Some at else t.last_at in
      { t with scale; last_at }
  | Telemetry.Failure { at; level } ->
      check_level t level;
      let t = advance t at in
      let counts = Array.copy t.counts in
      counts.(level - 1) <- counts.(level - 1) +. 1.;
      let raw_counts = Array.copy t.raw_counts in
      raw_counts.(level - 1) <- raw_counts.(level - 1) + 1;
      { t with counts; raw_counts }
  | Telemetry.Compute { at; duration; _ }
  | Telemetry.Ckpt { at; duration; _ }
  | Telemetry.Restart { at; duration; _ } ->
      advance t (at +. duration)
  | Telemetry.Run_end { at; _ } -> advance t at

let observe_all t events = List.fold_left observe t events

let forget t ~keep =
  if keep < 0. || keep > 1. then invalid_arg "Rate_estimator.forget: keep outside [0, 1]";
  { t with counts = Array.map (fun c -> c *. keep) t.counts; exposure = t.exposure *. keep }

let count t ~level =
  check_level t level;
  t.raw_counts.(level - 1)

let total_count t = Array.fold_left ( + ) 0 t.raw_counts
let exposure t = t.raw_exposure

let rate_per_core_second t ~level =
  check_level t level;
  if t.exposure <= 0. then 0. else t.counts.(level - 1) /. t.exposure

(* rate per core-second -> failures per day at N_b cores:
   lambda(N) = rate * N, so per day at N_b it is rate * N_b * 86400. *)
let per_day_factor ~baseline_scale =
  if baseline_scale <= 0. then
    invalid_arg "Rate_estimator: non-positive baseline_scale";
  Spec.seconds_per_day *. baseline_scale

let rate_per_day t ~level ~baseline_scale =
  rate_per_core_second t ~level *. per_day_factor ~baseline_scale

let confidence_per_day ?(coverage = 0.95) t ~level ~baseline_scale =
  check_level t level;
  if coverage <= 0. || coverage >= 1. then
    invalid_arg "Rate_estimator.confidence_per_day: coverage outside (0, 1)";
  let factor = per_day_factor ~baseline_scale in
  if t.raw_exposure <= 0. then (0., infinity)
  else
    let k = float_of_int t.raw_counts.(level - 1) in
    let alpha = 1. -. coverage in
    (* chi2_q(2k)/2 = gamma_p_inv ~a:k ~p:q *)
    let lo =
      if k = 0. then 0.
      else Ckpt_numerics.Special.gamma_p_inv ~a:k ~p:(alpha /. 2.) /. t.raw_exposure
    in
    let hi =
      Ckpt_numerics.Special.gamma_p_inv ~a:(k +. 1.) ~p:(1. -. (alpha /. 2.)) /. t.raw_exposure
    in
    (lo *. factor, hi *. factor)

let to_spec ?(prior_strength = 0.) t ~like =
  if prior_strength < 0. then invalid_arg "Rate_estimator.to_spec: negative prior_strength";
  if Spec.levels like <> t.levels then
    invalid_arg "Rate_estimator.to_spec: level-count mismatch with prior spec";
  let nb = like.Spec.baseline_scale in
  let factor = per_day_factor ~baseline_scale:nb in
  let rates =
    Array.mapi
      (fun i prior_per_day ->
        let prior_rate = prior_per_day /. factor in
        let denom = t.exposure +. prior_strength in
        if denom <= 0. then prior_per_day
        else ((t.counts.(i) +. (prior_rate *. prior_strength)) /. denom) *. factor)
      like.Spec.rates_per_day
  in
  Spec.v ~baseline_scale:nb rates

(* ---------------- snapshot serialization ----------------
   Every field round-trips so a warm-restarted estimator is structurally
   equal to the live one it was snapshotted from: Ckpt_json prints floats
   with enough digits to parse back bit-identically, and the only
   non-finite value that can appear ([last_at] absent) is encoded as
   JSON null rather than relying on the non-finite->null printing rule. *)

module Json = Ckpt_json.Json

let to_json t =
  Json.Obj
    [ ("levels", Json.Number (float_of_int t.levels));
      ("half_life", (match t.half_life with None -> Json.Null | Some h -> Json.Number h));
      ("counts", Json.float_array t.counts);
      ("exposure", Json.Number t.exposure);
      ("raw_counts", Json.List (Array.to_list (Array.map (fun c -> Json.Number (float_of_int c)) t.raw_counts)));
      ("raw_exposure", Json.Number t.raw_exposure);
      ("scale", Json.Number t.scale);
      ("last_at", (match t.last_at with None -> Json.Null | Some a -> Json.Number a)) ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name = Json.member name json in
  let number name =
    match Option.bind (field name) Json.to_float with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error (Printf.sprintf "Rate_estimator.of_json: non-finite %s" name)
    | None -> Error (Printf.sprintf "Rate_estimator.of_json: missing number %s" name)
  in
  let optional name =
    match field name with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_float v with
        | Some f when Float.is_finite f -> Ok (Some f)
        | _ -> Error (Printf.sprintf "Rate_estimator.of_json: bad %s" name))
  in
  let* levels =
    match Option.bind (field "levels") Json.to_int with
    | Some l when l >= 1 && l <= Telemetry.max_levels -> Ok l
    | _ -> Error "Rate_estimator.of_json: levels outside 1..max_levels"
  in
  let* half_life = optional "half_life" in
  let* () =
    match half_life with
    | Some h when h <= 0. -> Error "Rate_estimator.of_json: non-positive half_life"
    | _ -> Ok ()
  in
  let* counts =
    match Option.bind (field "counts") Json.of_float_array with
    | Some a when Array.length a = levels && Array.for_all Float.is_finite a -> Ok a
    | _ -> Error "Rate_estimator.of_json: counts arity/finiteness mismatch"
  in
  let* raw_counts =
    match Option.bind (field "raw_counts") Json.to_list with
    | Some l when List.length l = levels ->
        let ints = List.filter_map Json.to_int l in
        if List.length ints = levels && List.for_all (fun c -> c >= 0) ints then
          Ok (Array.of_list ints)
        else Error "Rate_estimator.of_json: raw_counts must be non-negative integers"
    | _ -> Error "Rate_estimator.of_json: raw_counts arity mismatch"
  in
  let* exposure = number "exposure" in
  let* raw_exposure = number "raw_exposure" in
  let* scale = number "scale" in
  let* () =
    if exposure < 0. || raw_exposure < 0. then
      Error "Rate_estimator.of_json: negative exposure"
    else if scale <= 0. then Error "Rate_estimator.of_json: non-positive scale"
    else Ok ()
  in
  let* last_at = optional "last_at" in
  Ok { levels; half_life; counts; exposure; raw_counts; raw_exposure; scale; last_at }

let pp ppf t =
  Format.fprintf ppf "@[<v>exposure %.3e core-seconds, %d failures" t.raw_exposure (total_count t);
  for level = 1 to t.levels do
    Format.fprintf ppf "@,  level %d: %d events, %.3e /core-second" level
      t.raw_counts.(level - 1)
      (rate_per_core_second t ~level)
  done;
  Format.fprintf ppf "@]"
