(** Execution telemetry: the event stream the adaptive layer consumes.

    A telemetry log is what a resilience runtime (FTI, SCR, ...) would
    record during a real run: computation segments, checkpoint writes,
    failures, restarts.  Here the stream either comes from the simulator
    (via {!of_run}, which taps {!Ckpt_sim.Engine}'s probe hook) or from a
    JSON-lines file (one {!event} per line, see {!of_line}).

    Timestamps [at] are wall-clock seconds from an arbitrary origin;
    durations are wall-clock seconds.  Events concerning a checkpoint
    level use 1-based level indices, cheapest level first. *)

type event =
  | Run_start of { at : float; scale : float; levels : int }
      (** a (segment of an) execution begins on [scale] cores with
          [levels] checkpoint levels; estimators read the scale from here,
          so exposure accrued before any [Run_start] is counted at the
          estimator's default scale *)
  | Compute of { at : float; duration : float; productive : float }
      (** uninterrupted computation; [productive <= duration] is first-time
          progress, the rest re-executed rollback work *)
  | Ckpt of { at : float; level : int; duration : float }
  | Restart of { at : float; level : int; duration : float }
      (** a completed recovery read; [duration] excludes re-allocation *)
  | Failure of { at : float; level : int }
  | Run_end of { at : float; completed : bool }

val at : event -> float
(** The event's timestamp. *)

val shift : event -> by:float -> event
(** Translate the event's timestamp — used to splice per-epoch simulator
    logs into one global-time stream. *)

val max_levels : int
(** Upper bound on level counts and level indices {!of_json} accepts
    (4096) — a corrupted log must not make the estimators allocate
    per-level arrays of arbitrary size. *)

val to_json : event -> Ckpt_json.Json.t

val of_json : Ckpt_json.Json.t -> (event, string) result
(** Besides shape, validates the numbers: timestamps and scales must be
    finite, durations finite and non-negative, level indices within
    [1..max_levels] (level counts within [0..max_levels]). *)

val to_line : event -> string
(** One compact JSON object, no trailing newline:
    [{"t":12.5,"ev":"failure","level":2}]. *)

val of_line : string -> (event, string) result

val read_lines : string list -> (event list, string) result
(** Decode a JSON-lines log; blank lines are skipped and errors carry the
    offending 1-based line number. *)

val of_run :
  ?semantics:Ckpt_sim.Run_config.semantics ->
  seed:int ->
  Ckpt_sim.Run_config.t ->
  event list * Ckpt_sim.Outcome.t
(** Simulate one execution and return its telemetry (with a [Run_start]
    at time 0 and the terminating [Run_end]) alongside the outcome.
    Aborted checkpoint writes and interrupted recoveries are {e not}
    reported — a real log only shows completed operations, so cost
    estimators never see censored durations.  [semantics] overrides the
    config's semantics when given. *)

val pp : Format.formatter -> event -> unit
