module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead

(* One Welford accumulator plus the mean observed scale. *)
type series = { n : int; mean : float; m2 : float; scale_sum : float }

let empty_series = { n = 0; mean = nan; m2 = 0.; scale_sum = 0. }

let add_sample s x ~scale =
  if s.n = 0 then { n = 1; mean = x; m2 = 0.; scale_sum = scale }
  else
    let n = s.n + 1 in
    let delta = x -. s.mean in
    let mean = s.mean +. (delta /. float_of_int n) in
    let m2 = s.m2 +. (delta *. (x -. mean)) in
    { n; mean; m2; scale_sum = s.scale_sum +. scale }

let series_variance s = if s.n < 2 then nan else s.m2 /. float_of_int (s.n - 1)
let series_mean_scale s = if s.n = 0 then nan else s.scale_sum /. float_of_int s.n

type t = { scale : float; ckpt : series array; restart : series array }

let create ?(scale = 1.) ~levels () =
  if levels <= 0 then invalid_arg "Cost_estimator.create: levels must be positive";
  if scale <= 0. then invalid_arg "Cost_estimator.create: non-positive scale";
  { scale; ckpt = Array.make levels empty_series; restart = Array.make levels empty_series }

let levels t = Array.length t.ckpt

let check_level t level =
  if level < 1 || level > levels t then
    invalid_arg (Printf.sprintf "Cost_estimator: level %d out of range 1..%d" level (levels t))

let add t which level duration =
  check_level t level;
  let arr = Array.copy which in
  arr.(level - 1) <- add_sample arr.(level - 1) duration ~scale:t.scale;
  arr

let observe t = function
  | Telemetry.Run_start { scale; _ } -> if scale > 0. then { t with scale } else t
  | Telemetry.Ckpt { level; duration; _ } -> { t with ckpt = add t t.ckpt level duration }
  | Telemetry.Restart { level; duration; _ } -> { t with restart = add t t.restart level duration }
  | Telemetry.Compute _ | Telemetry.Failure _ | Telemetry.Run_end _ -> t

let observe_all t events = List.fold_left observe t events

let ckpt_count t ~level = check_level t level; t.ckpt.(level - 1).n
let ckpt_mean t ~level = check_level t level; t.ckpt.(level - 1).mean
let ckpt_variance t ~level = check_level t level; series_variance t.ckpt.(level - 1)
let restart_count t ~level = check_level t level; t.restart.(level - 1).n
let restart_mean t ~level = check_level t level; t.restart.(level - 1).mean
let restart_variance t ~level = check_level t level; series_variance t.restart.(level - 1)

let calibrate ~min_samples series law =
  if series.n < min_samples then law
  else
    let at = series_mean_scale series in
    let prior = Overhead.cost law at in
    if prior <= 0. then law else Overhead.scaled law (series.mean /. prior)

let calibrated_levels ?(min_samples = 3) t ~prior =
  if min_samples < 1 then invalid_arg "Cost_estimator.calibrated_levels: min_samples < 1";
  if Array.length prior <> levels t then
    invalid_arg "Cost_estimator.calibrated_levels: level-count mismatch";
  Array.mapi
    (fun i level ->
      {
        level with
        Level.ckpt = calibrate ~min_samples t.ckpt.(i) level.Level.ckpt;
        Level.restart = calibrate ~min_samples t.restart.(i) level.Level.restart;
      })
    prior

(* ---------------- snapshot serialization ----------------
   An empty series' mean is [nan], which JSON cannot carry — [n = 0] is
   the marker instead, and decode rebuilds the exact [empty_series]
   constant, so round-tripped estimators are structurally equal. *)

module Json = Ckpt_json.Json

let series_to_json s =
  Json.Obj
    (("n", Json.Number (float_of_int s.n))
    :: (if s.n = 0 then []
        else
          [ ("mean", Json.Number s.mean);
            ("m2", Json.Number s.m2);
            ("scale_sum", Json.Number s.scale_sum) ]))

let series_of_json json =
  match Option.bind (Json.member "n" json) Json.to_int with
  | Some 0 -> Ok empty_series
  | Some n when n > 0 -> (
      let f name = Option.bind (Json.member name json) Json.to_float in
      match (f "mean", f "m2", f "scale_sum") with
      | Some mean, Some m2, Some scale_sum
        when Float.is_finite mean && Float.is_finite m2 && Float.is_finite scale_sum ->
          Ok { n; mean; m2; scale_sum }
      | _ -> Error "Cost_estimator.of_json: malformed series")
  | _ -> Error "Cost_estimator.of_json: series count must be a non-negative integer"

let to_json t =
  Json.Obj
    [ ("scale", Json.Number t.scale);
      ("ckpt", Json.List (Array.to_list (Array.map series_to_json t.ckpt)));
      ("restart", Json.List (Array.to_list (Array.map series_to_json t.restart))) ]

let of_json json =
  let ( let* ) = Result.bind in
  let arr name ~levels =
    match Option.bind (Json.member name json) Json.to_list with
    | Some l when List.length l = levels ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* s = series_of_json s in
            Ok (s :: acc))
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error (Printf.sprintf "Cost_estimator.of_json: %s arity mismatch" name)
  in
  let* scale =
    match Option.bind (Json.member "scale" json) Json.to_float with
    | Some s when Float.is_finite s && s > 0. -> Ok s
    | _ -> Error "Cost_estimator.of_json: scale must be finite and positive"
  in
  let* levels =
    match Option.bind (Json.member "ckpt" json) Json.to_list with
    | Some l when List.length l >= 1 && List.length l <= Telemetry.max_levels ->
        Ok (List.length l)
    | _ -> Error "Cost_estimator.of_json: ckpt levels outside 1..max_levels"
  in
  let* ckpt = arr "ckpt" ~levels in
  let* restart = arr "restart" ~levels in
  Ok { scale; ckpt; restart }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for level = 1 to levels t do
    let c = t.ckpt.(level - 1) and r = t.restart.(level - 1) in
    Format.fprintf ppf "level %d: ckpt %d obs mean %.3f s; restart %d obs mean %.3f s@," level c.n
      c.mean r.n r.mean
  done;
  Format.fprintf ppf "@]"
