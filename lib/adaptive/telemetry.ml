module Json = Ckpt_json.Json

type event =
  | Run_start of { at : float; scale : float; levels : int }
  | Compute of { at : float; duration : float; productive : float }
  | Ckpt of { at : float; level : int; duration : float }
  | Restart of { at : float; level : int; duration : float }
  | Failure of { at : float; level : int }
  | Run_end of { at : float; completed : bool }

let at = function
  | Run_start { at; _ }
  | Compute { at; _ }
  | Ckpt { at; _ }
  | Restart { at; _ }
  | Failure { at; _ }
  | Run_end { at; _ } ->
      at

let shift event ~by =
  match event with
  | Run_start r -> Run_start { r with at = r.at +. by }
  | Compute r -> Compute { r with at = r.at +. by }
  | Ckpt r -> Ckpt { r with at = r.at +. by }
  | Restart r -> Restart { r with at = r.at +. by }
  | Failure r -> Failure { r with at = r.at +. by }
  | Run_end r -> Run_end { r with at = r.at +. by }

let to_json event =
  let obj kind fields = Json.Obj (("t", Json.Number (at event)) :: ("ev", Json.String kind) :: fields) in
  match event with
  | Run_start { scale; levels; _ } ->
      obj "start" [ ("scale", Json.Number scale); ("levels", Json.Number (float_of_int levels)) ]
  | Compute { duration; productive; _ } ->
      obj "compute" [ ("dur", Json.Number duration); ("productive", Json.Number productive) ]
  | Ckpt { level; duration; _ } ->
      obj "ckpt" [ ("level", Json.Number (float_of_int level)); ("dur", Json.Number duration) ]
  | Restart { level; duration; _ } ->
      obj "restart" [ ("level", Json.Number (float_of_int level)); ("dur", Json.Number duration) ]
  | Failure { level; _ } -> obj "failure" [ ("level", Json.Number (float_of_int level)) ]
  | Run_end { completed; _ } -> obj "end" [ ("completed", Json.Bool completed) ]

let ( let* ) = Result.bind

let max_levels = 4096

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or invalid field %S" name)

(* Decoded events feed estimators that allocate per-level arrays and
   accumulate exposure, so a hostile or corrupted log must not smuggle
   in NaN/infinite numbers or absurd level counts. *)
let finite name v =
  if Float.is_finite v then Ok v
  else Error (Printf.sprintf "field %S is not finite" name)

let checked_dur name v =
  if Float.is_finite v && v >= 0. then Ok v
  else Error (Printf.sprintf "field %S must be a finite non-negative duration" name)

let level_index name v =
  if v >= 1 && v <= max_levels then Ok v
  else Error (Printf.sprintf "field %S outside 1..%d" name max_levels)

let of_json json =
  let* t = field "t" Json.to_float json in
  let* t = finite "t" t in
  let* kind = field "ev" Json.to_str json in
  match kind with
  | "start" ->
      let* scale = field "scale" Json.to_float json in
      let* scale = finite "scale" scale in
      let* levels = field "levels" Json.to_int json in
      let* levels =
        if levels >= 0 && levels <= max_levels then Ok levels
        else Error (Printf.sprintf "field \"levels\" outside 0..%d" max_levels)
      in
      Ok (Run_start { at = t; scale; levels })
  | "compute" ->
      let* duration = Result.bind (field "dur" Json.to_float json) (checked_dur "dur") in
      let* productive =
        Result.bind (field "productive" Json.to_float json) (checked_dur "productive")
      in
      Ok (Compute { at = t; duration; productive })
  | "ckpt" ->
      let* level = Result.bind (field "level" Json.to_int json) (level_index "level") in
      let* duration = Result.bind (field "dur" Json.to_float json) (checked_dur "dur") in
      Ok (Ckpt { at = t; level; duration })
  | "restart" ->
      let* level = Result.bind (field "level" Json.to_int json) (level_index "level") in
      let* duration = Result.bind (field "dur" Json.to_float json) (checked_dur "dur") in
      Ok (Restart { at = t; level; duration })
  | "failure" ->
      let* level = Result.bind (field "level" Json.to_int json) (level_index "level") in
      Ok (Failure { at = t; level })
  | "end" ->
      let* completed = field "completed" Json.to_bool json in
      Ok (Run_end { at = t; completed })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let to_line event = Json.to_string (to_json event)

let of_line line =
  let* json = Json.parse_result line in
  of_json json

let read_lines lines =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else (
          match of_line line with
          | Ok event -> go (event :: acc) (lineno + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

let of_run ?semantics ~seed config =
  let config =
    match semantics with
    | None -> config
    | Some semantics -> { config with Ckpt_sim.Run_config.semantics }
  in
  let events = ref [] in
  let push e = events := e :: !events in
  let probe : Ckpt_sim.Probe.t = function
    | Ckpt_sim.Probe.Segment { at; duration; productive } ->
        push (Compute { at; duration; productive })
    | Ckpt_sim.Probe.Ckpt { at; level; duration; first = _ } ->
        push (Ckpt { at; level; duration })
    | Ckpt_sim.Probe.Failure { at; level } -> push (Failure { at; level })
    | Ckpt_sim.Probe.Recovery { at; level; alloc = _; duration } ->
        push (Restart { at; level; duration })
    | Ckpt_sim.Probe.Ckpt_aborted _ | Ckpt_sim.Probe.Recovery_aborted _ ->
        (* censored: a real log only records completed operations *)
        ()
    | Ckpt_sim.Probe.End { at; completed } -> push (Run_end { at; completed })
  in
  let outcome = Ckpt_sim.Engine.run ~probe ~seed config in
  let start =
    Run_start
      { at = 0.; scale = config.Ckpt_sim.Run_config.n;
        levels = Array.length config.Ckpt_sim.Run_config.levels }
  in
  (start :: List.rev !events, outcome)

let pp ppf event = Format.pp_print_string ppf (to_line event)
