(** Online per-level failure-rate estimation from telemetry.

    The paper's rate law (Section IV-A) is
    [lambda_i(N) = r_i / 86400 * N / N_b]: failures per second are
    proportional to the execution scale.  The estimator therefore
    accumulates {e exposure in core-seconds} ([scale * wall seconds],
    read off the telemetry timestamps) and failure counts per level; the
    maximum-likelihood rate per core-second is [count / exposure], which
    converts to the paper's per-day-at-[N_b] parameterization through
    {!rate_per_day} at any baseline.

    Two histories are kept:

    - {e weighted} counts and exposure drive the point estimates.  With
      [half_life] set they decay exponentially in core-seconds of
      exposure (an EWMA — recent behaviour dominates, so the estimate
      tracks drifting rates); {!forget} discounts them on demand, which a
      change-point alarm uses to drop stale history while keeping the
      current point estimate continuous.
    - {e raw} integer counts and undiscounted exposure drive the exact
      Poisson confidence intervals of {!confidence_per_day} and the
      sample-size gates of the controller.

    Values are immutable; {!observe} returns a new estimator. *)

type t

val create : ?half_life:float -> ?scale:float -> levels:int -> unit -> t
(** [half_life] is in core-seconds of exposure; omitted = no decay (pure
    MLE).  [scale] (default [1.]) is used for exposure accrued before the
    first [Run_start] announces the real scale. *)

val levels : t -> int

val observe : t -> Telemetry.event -> t
(** Advance exposure to the event's timestamp (at the current scale) and
    ingest it.  Time regressions are clamped to zero elapsed; exposure
    does not accrue across the gap between a [Run_end] and the next
    [Run_start]. *)

val observe_all : t -> Telemetry.event list -> t

val forget : t -> keep:float -> t
(** Multiply the weighted histories by [keep] (in [\[0, 1\]]): point
    estimates are unchanged but carry [1/keep] times less inertia, so
    subsequent observations dominate quickly.  Raw histories are kept. *)

val count : t -> level:int -> int
(** Raw failure count at a 1-based level. *)

val total_count : t -> int

val exposure : t -> float
(** Raw exposure in core-seconds. *)

val rate_per_core_second : t -> level:int -> float
(** Weighted MLE [counts / exposure]; [0.] while exposure is zero. *)

val rate_per_day : t -> level:int -> baseline_scale:float -> float
(** The paper's [r_i]: failures per day at [baseline_scale] cores. *)

val confidence_per_day :
  ?coverage:float -> t -> level:int -> baseline_scale:float -> float * float
(** Exact (Garwood) Poisson confidence interval on {!rate_per_day}, from
    the raw histories: with [k] failures in [E] core-seconds, the bounds
    are the chi-square quantiles [chi2_{alpha/2}(2k) / 2E] and
    [chi2_{1-alpha/2}(2k+2) / 2E].  [coverage] defaults to [0.95].  The
    lower bound is [0.] when [k = 0]; the interval is [(0., infinity)]
    while exposure is zero. *)

val to_spec :
  ?prior_strength:float -> t -> like:Ckpt_failures.Failure_spec.t -> Ckpt_failures.Failure_spec.t
(** Fitted spec at [like]'s baseline scale.  [prior_strength] (core-seconds
    of pseudo-exposure, default [0.]) shrinks each level's estimate toward
    [like]'s rate under a conjugate Gamma prior:
    [(count + prior_rate * tau) / (exposure + tau)] — stabilizing early
    estimates when few failures have been seen. *)

val to_json : t -> Ckpt_json.Json.t
(** The full estimator state — weighted and raw histories, current scale
    and the exposure watermark [last_at] — for durable snapshots.  Floats
    serialize losslessly, so {!of_json} restores a structurally equal
    value. *)

val of_json : Ckpt_json.Json.t -> (t, string) result
(** Validated decode of a {!to_json} document: arity, finiteness and
    sign checks mirror {!create}'s; any malformed input is an [Error],
    never an exception. *)

val pp : Format.formatter -> t -> unit
