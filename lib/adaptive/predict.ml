module Optimizer = Ckpt_model.Optimizer
module Multilevel = Ckpt_model.Multilevel
module Scale_fn = Ckpt_model.Scale_fn
module Spec = Ckpt_failures.Failure_spec

let wall_clock ?(tol = 1e-9) ?(max_iter = 200) (problem : Optimizer.problem) ~xs ~n =
  Optimizer.check_problem problem;
  if Array.length xs <> Array.length problem.Optimizer.levels then
    invalid_arg "Predict.wall_clock: xs length differs from the hierarchy's";
  if n < 1. then invalid_arg "Predict.wall_clock: n < 1";
  let params_at t =
    {
      Multilevel.te = problem.Optimizer.te;
      speedup = problem.Optimizer.speedup;
      levels = problem.Optimizer.levels;
      alloc = problem.Optimizer.alloc;
      mus =
        Array.init (Array.length problem.Optimizer.levels) (fun i ->
            let level = i + 1 in
            Scale_fn.opaque
              ~f:(fun scale ->
                Spec.rate_per_second problem.Optimizer.spec ~level ~scale *. t)
              ~f':(fun _ -> Spec.rate_per_second' problem.Optimizer.spec ~level *. t));
    }
  in
  let t0 =
    Ckpt_model.Speedup.productive_time problem.Optimizer.speedup ~te:problem.Optimizer.te ~n
  in
  let horizon = 1e6 *. t0 in
  let rec iterate t k =
    let t' = Multilevel.expected_wall_clock (params_at t) ~xs ~n in
    if not (Float.is_finite t') || t' > horizon then infinity
    else if Float.abs (t' -. t) <= tol *. Float.max 1. t' then t'
    else if k >= max_iter then t'
    else iterate t' (k + 1)
  in
  iterate t0 0
