(** Online estimation of per-level checkpoint/restart costs.

    Welford's algorithm keeps a numerically stable running mean and
    variance of the observed (jittered) durations of completed checkpoint
    writes and recovery reads, per level, together with the mean scale
    they were observed at.  {!calibrated_levels} folds the evidence back
    into the model: each prior overhead law [C_i(N) = eps_i + alpha_i H(N)]
    (paper Eq. 19/20) is rescaled multiplicatively so that it reproduces
    the observed mean cost at the mean observed scale — preserving the
    law's shape in [N], which the optimizer's scale search relies on.

    Values are immutable; {!observe} returns a new estimator. *)

type t

val create : ?scale:float -> levels:int -> unit -> t
(** [scale] (default [1.]) is assumed until a [Run_start] announces the
    real execution scale. *)

val levels : t -> int

val observe : t -> Telemetry.event -> t
(** Ingest [Ckpt] and [Restart] durations (tagged with the current scale);
    [Run_start] updates the scale; other events are ignored. *)

val observe_all : t -> Telemetry.event list -> t

val ckpt_count : t -> level:int -> int
val ckpt_mean : t -> level:int -> float
(** [nan] while no sample has been seen. *)

val ckpt_variance : t -> level:int -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val restart_count : t -> level:int -> int
val restart_mean : t -> level:int -> float
val restart_variance : t -> level:int -> float

val calibrated_levels :
  ?min_samples:int -> t -> prior:Ckpt_model.Level.t array -> Ckpt_model.Level.t array
(** Rescale each prior law by [observed mean / prior cost at the mean
    observed scale].  A law with fewer than [min_samples] (default [3])
    observations — or a prior cost that is not positive at that scale —
    is returned unchanged. *)

val to_json : t -> Ckpt_json.Json.t
(** The full Welford state per level, for durable snapshots.  Empty
    series are marked by their zero count (their [nan] mean is not
    serialized), so {!of_json} restores a structurally equal value. *)

val of_json : Ckpt_json.Json.t -> (t, string) result
(** Validated decode of a {!to_json} document; malformed input is an
    [Error], never an exception. *)

val pp : Format.formatter -> t -> unit
