(** Expected wall-clock of a {e pinned} plan under a problem's rates.

    Hysteresis needs a fair comparison: "what would the current plan's
    [(x_i, N)] cost if the re-estimated rates are the truth?"
    {!Ckpt_model.Optimizer.solve} cannot answer that — it re-optimizes
    the intervals.  This module instead runs only the self-consistency
    loop: starting from the failure-free time, it iterates
    [mu_i = lambda_i(N) * T] into Eq. (21) with the intervals and scale
    held fixed until [T] converges (the same circle Algorithm 1's outer
    loop closes, without the inner optimization). *)

val wall_clock :
  ?tol:float ->
  ?max_iter:int ->
  Ckpt_model.Optimizer.problem ->
  xs:float array ->
  n:float ->
  float
(** Self-consistent [E(T_w)] of the fixed plan.  [tol] (default [1e-9])
    is relative; [max_iter] defaults to [200].  Returns [infinity] when
    the iteration diverges — the plan cannot sustain the rates.
    @raise Invalid_argument on mismatched [xs] length or [n < 1]. *)
