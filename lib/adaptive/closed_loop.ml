module Optimizer = Ckpt_model.Optimizer
module Speedup = Ckpt_model.Speedup
module Level = Ckpt_model.Level
module Spec = Ckpt_failures.Failure_spec
module Run_config = Ckpt_sim.Run_config
module Outcome = Ckpt_sim.Outcome

type scenario = {
  problem : Optimizer.problem;
  true_spec : Spec.t;
  shifted_spec : Spec.t;
  shift_at : float;
  review_every : float;
  semantics : Run_config.semantics;
  max_epochs : int;
}

let scenario ?(semantics = Run_config.paper_semantics) ?(max_epochs = 10_000) ?(shift_at = infinity)
    ?shifted_spec ~review_every ~true_spec problem =
  Optimizer.check_problem problem;
  if review_every <= 0. then invalid_arg "Closed_loop.scenario: non-positive review_every";
  if shift_at <= 0. then invalid_arg "Closed_loop.scenario: non-positive shift_at";
  if max_epochs < 1 then invalid_arg "Closed_loop.scenario: max_epochs < 1";
  let shifted_spec = Option.value shifted_spec ~default:true_spec in
  if Spec.levels true_spec <> Array.length problem.Optimizer.levels then
    invalid_arg "Closed_loop.scenario: true_spec level count differs from the hierarchy's";
  if Spec.levels shifted_spec <> Array.length problem.Optimizer.levels then
    invalid_arg "Closed_loop.scenario: shifted_spec level count differs from the hierarchy's";
  { problem; true_spec; shifted_spec; shift_at; review_every; semantics; max_epochs }

let demo_scenario ?(baseline_scale = 1e5) () =
  let spec = Spec.of_string ~baseline_scale "4-3-2-1" in
  (* the PFS-level rate jumps 24x part-way through the run *)
  let shifted_spec = Spec.of_string ~baseline_scale "4-3-2-24" in
  let problem =
    {
      Optimizer.te = 30_000. *. 86400.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:baseline_scale;
      levels = Level.fti_fusion;
      alloc = 60.;
      spec;
    }
  in
  (* review_every must dominate the static plan's PFS interval (~4.7 h
     here): every epoch boundary acts as a free durability point, and a
     shorter horizon would grant the under-checkpointing static plan
     exactly the protection it failed to buy. *)
  scenario ~shift_at:(0.2 *. 86400.) ~shifted_spec ~review_every:(12. *. 3600.) ~true_spec:spec
    problem

type policy = Static | Adaptive of Controller.config | Oracle

let policy_name = function
  | Static -> "static"
  | Adaptive _ -> "adaptive"
  | Oracle -> "oracle"

type epoch_log = {
  started_at : float;
  n : float;
  wall : float;
  productive : float;
  failures : int;
  replanned : bool;
}

type result = {
  policy : string;
  wall_clock : float;
  completed : bool;
  epochs : epoch_log list;
  replans : int;
  telemetry : Telemetry.event list;
  final_xs : float array;
  final_n : float;
}

(* A plan's cadence: per-level checkpoint interval lengths (parallel
   seconds) plus the scale.  Re-deriving interval *counts* for whatever
   work remains keeps the cadence invariant across epochs. *)
type cadence = { taus : float array; xs : float array; n : float }

let cadence_of_plan ~(problem : Optimizer.problem) (plan : Optimizer.plan) =
  let target =
    Speedup.productive_time problem.Optimizer.speedup ~te:problem.Optimizer.te
      ~n:plan.Optimizer.n
  in
  {
    taus = Array.map (fun x -> target /. x) plan.Optimizer.xs;
    xs = plan.Optimizer.xs;
    n = plan.Optimizer.n;
  }

let xs_for cadence ~speedup ~remaining =
  let target = Speedup.productive_time speedup ~te:remaining ~n:cadence.n in
  Array.map (fun tau -> Float.max 1. (target /. tau)) cadence.taus

type pstate = P_static | P_adaptive of Controller.state | P_oracle of { switched : bool }

let epoch_seed seed epoch = (seed * 1_000_003) + (epoch * 7919) + 17

let run ?(seed = 0) s policy =
  let { problem; true_spec; shifted_spec; shift_at; review_every; semantics; max_epochs } = s in
  let speedup = problem.Optimizer.speedup in
  let initial = function
    | Static -> (P_static, cadence_of_plan ~problem (Optimizer.ml_opt_scale problem))
    | Adaptive config ->
        let ctrl = Controller.init config in
        (P_adaptive ctrl, cadence_of_plan ~problem (Controller.plan ctrl))
    | Oracle ->
        let known = { problem with Optimizer.spec = true_spec } in
        (P_oracle { switched = false }, cadence_of_plan ~problem (Optimizer.ml_opt_scale known))
  in
  let pstate, cadence = initial policy in
  let eps = 1e-9 *. problem.Optimizer.te in
  let rec loop ~clock ~remaining ~epoch ~pstate ~cadence ~epochs ~telemetry_rev =
    if remaining <= eps || epoch >= max_epochs then
      let replans =
        match pstate with
        | P_static -> 0
        | P_adaptive ctrl -> Controller.replans ctrl
        | P_oracle { switched } -> if switched then 1 else 0
      in
      {
        policy = policy_name policy;
        wall_clock = clock;
        completed = remaining <= eps;
        epochs = List.rev epochs;
        replans;
        telemetry = List.rev telemetry_rev;
        final_xs = cadence.xs;
        final_n = cadence.n;
      }
    else
      let pre_shift = clock < shift_at in
      let spec_true = if pre_shift then true_spec else shifted_spec in
      let horizon =
        if pre_shift && shift_at -. clock < review_every then shift_at -. clock else review_every
      in
      let xs = xs_for cadence ~speedup ~remaining in
      let config =
        Run_config.v ~semantics ~max_wall_clock:horizon ~te:remaining ~speedup
          ~levels:problem.Optimizer.levels ~alloc:problem.Optimizer.alloc ~spec:spec_true ~xs
          ~n:cadence.n ()
      in
      let events, outcome = Telemetry.of_run ~seed:(epoch_seed seed epoch) config in
      let events = List.map (Telemetry.shift ~by:clock) events in
      let ran_n = cadence.n in
      let clock = clock +. outcome.Outcome.wall_clock in
      let remaining =
        if outcome.Outcome.completed then 0.
        else
          Float.max 0.
            (remaining -. (outcome.Outcome.productive *. Speedup.eval speedup cadence.n))
      in
      let pstate, cadence, replanned =
        match pstate with
        | P_static -> (pstate, cadence, false)
        | P_adaptive ctrl ->
            let ctrl, actions = Controller.step_all ctrl events in
            let replanned = actions <> [] in
            let cadence =
              if replanned then cadence_of_plan ~problem (Controller.plan ctrl) else cadence
            in
            (P_adaptive ctrl, cadence, replanned)
        | P_oracle { switched } ->
            if (not switched) && clock >= shift_at then
              let shifted_problem = { problem with Optimizer.spec = shifted_spec } in
              ( P_oracle { switched = true },
                cadence_of_plan ~problem (Optimizer.ml_opt_scale shifted_problem),
                true )
            else (pstate, cadence, false)
      in
      let log =
        {
          started_at = clock -. outcome.Outcome.wall_clock;
          n = ran_n;
          wall = outcome.Outcome.wall_clock;
          productive = outcome.Outcome.productive;
          failures = Outcome.total_failures outcome;
          replanned;
        }
      in
      loop ~clock ~remaining ~epoch:(epoch + 1) ~pstate ~cadence ~epochs:(log :: epochs)
        ~telemetry_rev:(List.rev_append events telemetry_rev)
  in
  loop ~clock:0. ~remaining:problem.Optimizer.te ~epoch:0 ~pstate ~cadence ~epochs:[]
    ~telemetry_rev:[]

let regret result ~oracle =
  if oracle.wall_clock <= 0. then 0.
  else (result.wall_clock -. oracle.wall_clock) /. oracle.wall_clock
