(** Closed-loop re-planning policy with hysteresis.

    The controller folds telemetry into its estimators and decides, event
    by event, whether to re-run the paper's Algorithm 1 under the fitted
    parameters.  Re-planning is gated three ways:

    - {e evidence}: no evaluation before [min_failures] failures have
      been observed (the estimates are noise before that);
    - {e cadence}: evaluations happen on failures (and run ends) at most
      once per [cooldown] telemetry seconds — unless the {!Drift}
      detector alarms, which forces one and discounts the rate history
      ({!Rate_estimator.forget}) so the estimates re-converge quickly;
    - {e hysteresis}: the candidate plan replaces the current one only
      when its predicted [E(T_w)] beats the current plan's — both
      evaluated under the {e new} estimates, the pinned plan via
      {!Predict.wall_clock} — by more than [improvement_threshold]
      (relative).  Oscillating between near-equivalent plans would churn
      checkpoint cadences for nothing.

    {!step} is pure: it returns the successor state and the action taken,
    so callers can replay, fork, or test the policy deterministically. *)

type config = {
  problem : Ckpt_model.Optimizer.problem;  (** prior belief; also the replan template *)
  fixed_n : float option;  (** pin the scale in replans; [None] re-optimizes it *)
  delta : float;  (** Algorithm-1 outer tolerance for replan solves *)
  min_failures : int;
  improvement_threshold : float;  (** relative [E(T_w)] gain required to switch *)
  cooldown : float;  (** telemetry seconds between evaluations *)
  drift_ratio : float;
  drift_threshold : float;
  drift_forget : float;  (** weight kept by the rate history on a drift alarm *)
  half_life : float option;  (** EWMA half-life (core-seconds) for rate estimates *)
  prior_strength : float;  (** pseudo-exposure (core-seconds) shrinking rates to the prior *)
  cost_min_samples : int;
}

val default_config : Ckpt_model.Optimizer.problem -> config
(** [min_failures = 8], [improvement_threshold = 0.02], [cooldown = 0.],
    drift ratio [2.] / threshold [6.] / forget [0.15], no EWMA decay, no
    prior shrinkage, [cost_min_samples = 3], [delta = 1e-9],
    [fixed_n = None]. *)

type state

type action =
  | No_op
  | Replanned of {
      plan : Ckpt_model.Optimizer.plan;
      problem : Ckpt_model.Optimizer.problem;  (** the fitted problem it solves *)
      improvement : float;  (** predicted relative [E(T_w)] gain *)
      drift : bool;  (** the evaluation was forced by a drift alarm *)
    }

val init : config -> state
(** Solves the prior problem for the initial plan.
    @raise Invalid_argument on invalid configuration. *)

val step : state -> Telemetry.event -> state * action

val step_all : state -> Telemetry.event list -> state * action list
(** Convenience fold; actions are returned in event order, [No_op]s
    omitted. *)

val plan : state -> Ckpt_model.Optimizer.plan
(** The currently active plan. *)

val fitted_problem : state -> Ckpt_model.Optimizer.problem
(** The problem the active plan was solved against (the prior until the
    first replan). *)

val estimates : state -> Ckpt_model.Optimizer.problem
(** The problem the controller would solve if it evaluated now: prior
    template with telemetry-fitted spec and calibrated levels. *)

val rates : state -> Rate_estimator.t
val costs : state -> Cost_estimator.t
val drift : state -> Drift.t
val replans : state -> int
val evaluations : state -> int
