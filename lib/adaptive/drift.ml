type t = {
  rate : float;
  ratio : float;
  threshold : float;
  up : float;
  down : float;
  alarmed : bool;
}

let create ?(ratio = 2.) ?(threshold = 6.) ~rate () =
  if rate <= 0. then invalid_arg "Drift.create: non-positive rate";
  if ratio <= 1. then invalid_arg "Drift.create: ratio must exceed 1";
  if threshold <= 0. then invalid_arg "Drift.create: non-positive threshold";
  { rate; ratio; threshold; up = 0.; down = 0.; alarmed = false }

let llr ~lambda0 ~lambda1 x = Float.log (lambda1 /. lambda0) -. ((lambda1 -. lambda0) *. x)

let observe t x =
  let x = Float.max 0. x in
  let up = Float.max 0. (t.up +. llr ~lambda0:t.rate ~lambda1:(t.rate *. t.ratio) x) in
  let down = Float.max 0. (t.down +. llr ~lambda0:t.rate ~lambda1:(t.rate /. t.ratio) x) in
  let alarmed = t.alarmed || up >= t.threshold || down >= t.threshold in
  { t with up; down; alarmed }

let alarmed t = t.alarmed
let statistics t = (t.up, t.down)

let reset t ~rate =
  if rate <= 0. then invalid_arg "Drift.reset: non-positive rate";
  { t with rate; up = 0.; down = 0.; alarmed = false }

let pp ppf t =
  Format.fprintf ppf "cusum up %.2f down %.2f / %.2f%s (rate %.3e)" t.up t.down t.threshold
    (if t.alarmed then " ALARM" else "")
    t.rate
