(** Registry of all experiments, for the CLI runner and the bench
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig3", "table4" *)
  title : string;
  run : Format.formatter -> unit;
}

val all : experiment list
(** Every experiment, in paper order (figures and tables first, then the
    analyses and ablations). *)

val find : string -> experiment option
(** Lookup by id (case-insensitive). *)

val ids : unit -> string list

val render : experiment -> string
(** Run one experiment into a buffer and return its textual output. *)

val render_all :
  ?pool:Ckpt_parallel.Pool.t -> experiment list -> (experiment * string) list
(** Render every experiment, across [pool]'s domains when given (the
    experiments are independent, so this is output-identical to the
    sequential render — only faster), preserving list order. *)
