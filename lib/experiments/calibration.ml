module Optimizer = Ckpt_model.Optimizer
module Overhead = Ckpt_model.Overhead
module Level = Ckpt_model.Level
module Spec = Ckpt_failures.Failure_spec
module Predict = Ckpt_adaptive.Predict
module C = Ckpt_calibrate

type row = {
  level : int;
  true_rate_per_day : float;
  fitted_rate_per_day : float;
  ci_low : float;
  ci_high : float;
  covered : bool;
  ckpt_samples : int;
  true_ckpt_cost : float;
  fitted_ckpt_cost : float;
}

type result = {
  rows : row list;
  lines : int;
  failures : int;
  plan_gap : float;
}

let compute ?(runs = 4) ?(seed = 42) () =
  let problem = C.Synth.demo_problem () in
  let config = C.Synth.demo_config problem in
  let n = 1024. in
  let parsed = C.Scr_log.parse (C.Synth.session_lines ~runs ~seed config) in
  let fitted =
    match C.Fit.calibrate ~template:problem parsed with
    | Ok f -> f
    | Error m -> failwith ("calibration experiment: " ^ m)
  in
  let report = fitted.C.Fit.report in
  let nb = problem.Optimizer.spec.Spec.baseline_scale in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (lr : C.Fit.level_report) ->
           let true_rate =
             Spec.rate_per_second problem.Optimizer.spec ~level:(i + 1)
               ~scale:nb
             *. 86_400.
           in
           { level = i + 1;
             true_rate_per_day = true_rate;
             fitted_rate_per_day = lr.C.Fit.rate_per_day;
             ci_low = lr.C.Fit.ci_low;
             ci_high = lr.C.Fit.ci_high;
             covered = lr.C.Fit.ci_low <= true_rate && true_rate <= lr.C.Fit.ci_high;
             ckpt_samples = lr.C.Fit.ckpt_samples;
             true_ckpt_cost =
               Overhead.cost problem.Optimizer.levels.(i).Level.ckpt n;
             fitted_ckpt_cost = lr.C.Fit.ckpt_mean })
         report.C.Fit.levels)
  in
  let true_plan = Optimizer.ml_ori_scale ~n problem in
  let cal_plan = Optimizer.ml_ori_scale ~n fitted.C.Fit.problem in
  let priced = Predict.wall_clock problem ~xs:cal_plan.Optimizer.xs ~n in
  { rows;
    lines = report.C.Fit.lines;
    failures = report.C.Fit.total_failures;
    plan_gap =
      Float.abs (priced -. true_plan.Optimizer.wall_clock)
      /. true_plan.Optimizer.wall_clock }

let run ppf =
  let r = compute () in
  Render.section ppf
    "Log-driven calibration round trip (4 interrupted runs at n=1024, seed 42)";
  Render.table ppf
    ~headers:
      [ "level"; "true r/day"; "fitted r/day"; "CI low"; "CI high"; "covered";
        "ckpt samples"; "true C(n)"; "fitted C(n)" ]
    ~rows:
      (List.map
         (fun row ->
           [ string_of_int row.level;
             Render.float_cell ~decimals:2 row.true_rate_per_day;
             Render.float_cell ~decimals:2 row.fitted_rate_per_day;
             Render.float_cell ~decimals:2 row.ci_low;
             Render.float_cell ~decimals:2 row.ci_high;
             (if row.covered then "yes" else "NO");
             string_of_int row.ckpt_samples;
             Render.float_cell ~decimals:2 row.true_ckpt_cost;
             Render.float_cell ~decimals:2 row.fitted_ckpt_cost ])
         r.rows);
  Format.fprintf ppf
    "calibrated from %d log lines carrying %d failures; plan gap under true \
     parameters: %s@."
    r.lines r.failures (Render.pct r.plan_gap)
