type experiment = {
  id : string;
  title : string;
  run : Format.formatter -> unit;
}

let all =
  [ { id = "fig1"; title = "Tradeoff between speedup and checkpoint overhead";
      run = Fig1.run };
    { id = "fig2"; title = "Application speedups and quadratic fits"; run = Fig2.run };
    { id = "fig3"; title = "Single-level optimum (numerical confirmation)";
      run = Fig3.run };
    { id = "table2"; title = "FTI checkpoint overhead characterization";
      run = Table2.run };
    { id = "fig4"; title = "Simulator validation (event vs tick engines)";
      run = Fig4.run };
    { id = "fig5"; title = "Time analysis, Te = 3m core-days";
      run = Time_analysis.run_fig5 };
    { id = "table3"; title = "Optimized execution scales"; run = Table3.run };
    { id = "fig6"; title = "Time analysis, Te = 10m core-days";
      run = Time_analysis.run_fig6 };
    { id = "fig7"; title = "Efficiency of the four solutions"; run = Fig7.run };
    { id = "table4"; title = "Constant PFS checkpoint cost variant"; run = Table4.run };
    { id = "convergence"; title = "Convergence of Algorithm 1"; run = Convergence.run };
    { id = "nonconvexity"; title = "Non-convexity of the direct formulation";
      run = Nonconvexity.run };
    { id = "costmodel"; title = "Table II derived from the storage substrate";
      run = Costmodel.run };
    { id = "sensitivity"; title = "Parameter sensitivity of the optimized plan";
      run = Sensitivity_study.run };
    { id = "scr"; title = "SCR Markov model vs Algorithm 1";
      run = Scr_comparison.run };
    { id = "weakscaling"; title = "Weak-scaling efficiency vs scale";
      run = Weak_scaling_study.run };
    { id = "ablations"; title = "Ablation studies"; run = Ablations.run };
    { id = "calibration"; title = "Log-driven calibration round trip";
      run = Calibration.run } ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.equal e.id id) all

let ids () = List.map (fun e -> e.id) all

let render e =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  e.run ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_all ?pool es =
  match pool with
  | None -> List.map (fun e -> (e, render e)) es
  | Some pool ->
      (* Experiments are independent pure renders (no module-level state
         in this library), so fanning them across domains only reorders
         the work; Pool.map returns them in list order regardless. *)
      Array.to_list
        (Ckpt_parallel.Pool.map pool ~f:(fun e -> (e, render e)) (Array.of_list es))
