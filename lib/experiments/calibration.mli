(** Log-driven calibration round trip ({!Ckpt_calibrate}).

    Simulates a multi-run SCR-style session with known parameters,
    renders it to log text, calibrates the model back from the text
    alone, and reports how well the fit recovers the truth: per-level
    failure rates against their Garwood intervals, checkpoint cost
    means, and the end-to-end planning gap (the calibrated ML plan
    priced under the true parameters vs the plan solved on the truth
    directly). *)

type row = {
  level : int;
  true_rate_per_day : float;
  fitted_rate_per_day : float;
  ci_low : float;
  ci_high : float;
  covered : bool;  (** true rate inside the fitted CI *)
  ckpt_samples : int;
  true_ckpt_cost : float;  (** template cost at the session scale *)
  fitted_ckpt_cost : float;  (** observed mean, [nan] if no samples *)
}

type result = {
  rows : row list;
  lines : int;  (** log lines the calibration consumed *)
  failures : int;
  plan_gap : float;  (** relative E(T_w) gap of the calibrated plan *)
}

val compute : ?runs:int -> ?seed:int -> unit -> result
val run : Format.formatter -> unit
