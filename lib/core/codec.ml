module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec

let ( let* ) = Result.bind

let field_err what = Error (Printf.sprintf "missing or invalid field %S" what)

let need_float key json =
  match Json.float_field key json with Some f -> Ok f | None -> field_err key

let need_string key json =
  match Json.string_field key json with Some s -> Ok s | None -> field_err key

(* --------------- speedup --------------- *)

let speedup_to_json (s : Speedup.t) =
  match s.Speedup.form with
  | Speedup.Linear { kappa } ->
      Json.Obj [ ("kind", Json.String "linear"); ("kappa", Json.Number kappa) ]
  | Speedup.Quadratic { kappa; n_star } ->
      Json.Obj
        [ ("kind", Json.String "quadratic"); ("kappa", Json.Number kappa);
          ("n_star", Json.Number n_star) ]
  | Speedup.Amdahl { serial_fraction; peak } ->
      Json.Obj
        [ ("kind", Json.String "amdahl");
          ("serial_fraction", Json.Number serial_fraction);
          ("peak", Json.Number peak) ]
  | Speedup.Gustafson { serial_fraction; peak } ->
      Json.Obj
        [ ("kind", Json.String "gustafson");
          ("serial_fraction", Json.Number serial_fraction);
          ("peak", Json.Number peak) ]
  | Speedup.Custom -> invalid_arg "Codec.speedup_to_json: custom speedups do not serialize"

let speedup_of_json json =
  let* kind = need_string "kind" json in
  match kind with
  | "linear" ->
      let* kappa = need_float "kappa" json in
      Ok (Speedup.linear ~kappa)
  | "quadratic" ->
      let* kappa = need_float "kappa" json in
      let* n_star = need_float "n_star" json in
      Ok (Speedup.quadratic ~kappa ~n_star)
  | "amdahl" ->
      let* serial_fraction = need_float "serial_fraction" json in
      let* peak = need_float "peak" json in
      Ok (Speedup.amdahl ~serial_fraction ~peak)
  | "gustafson" ->
      let* serial_fraction = need_float "serial_fraction" json in
      let* peak = need_float "peak" json in
      Ok (Speedup.gustafson ~serial_fraction ~peak)
  | k -> Error (Printf.sprintf "unknown speedup kind %S" k)

(* --------------- overhead --------------- *)

let overhead_to_json (o : Overhead.t) =
  let h =
    match o.Overhead.h_name with
    | "0" -> "0"
    | "N" -> "N"
    | other -> invalid_arg (Printf.sprintf "Codec.overhead_to_json: baseline %S" other)
  in
  Json.Obj
    [ ("eps", Json.Number o.Overhead.eps); ("alpha", Json.Number o.Overhead.alpha);
      ("h", Json.String h) ]

let overhead_of_json json =
  let* eps = need_float "eps" json in
  let* alpha = need_float "alpha" json in
  let* h = need_string "h" json in
  match h with
  | "0" -> Ok (Overhead.constant eps)
  | "N" -> if alpha = 0. then Ok (Overhead.constant eps) else Ok (Overhead.linear ~eps ~alpha)
  | other -> Error (Printf.sprintf "unknown overhead baseline %S" other)

(* --------------- problem --------------- *)

let level_to_json (l : Level.t) =
  Json.Obj
    [ ("name", Json.String l.Level.name);
      ("ckpt", overhead_to_json l.Level.ckpt);
      ("restart", overhead_to_json l.Level.restart) ]

let level_of_json json =
  let* name = need_string "name" json in
  let* ckpt =
    match Json.member "ckpt" json with Some j -> overhead_of_json j | None -> field_err "ckpt"
  in
  let* restart =
    match Json.member "restart" json with
    | Some j -> overhead_of_json j
    | None -> field_err "restart"
  in
  Ok (Level.v ~name ~restart ckpt)

let problem_to_json (p : Optimizer.problem) =
  Json.Obj
    [ ("te", Json.Number p.Optimizer.te);
      ("speedup", speedup_to_json p.Optimizer.speedup);
      ("levels", Json.List (Array.to_list (Array.map level_to_json p.Optimizer.levels)));
      ("alloc", Json.Number p.Optimizer.alloc);
      ("rates_per_day", Json.float_array p.Optimizer.spec.Failure_spec.rates_per_day);
      ("baseline_scale", Json.Number p.Optimizer.spec.Failure_spec.baseline_scale) ]

let problem_of_json json =
  let* te = need_float "te" json in
  let* speedup =
    match Json.member "speedup" json with
    | Some j -> speedup_of_json j
    | None -> field_err "speedup"
  in
  let* levels =
    match Json.list_field "levels" json with
    | None -> field_err "levels"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* l = level_of_json item in
            Ok (l :: acc))
          (Ok []) items
        |> Result.map (fun ls -> Array.of_list (List.rev ls))
  in
  let* alloc = need_float "alloc" json in
  let* rates =
    match Option.bind (Json.member "rates_per_day" json) Json.of_float_array with
    | Some r -> Ok r
    | None -> field_err "rates_per_day"
  in
  let* baseline_scale = need_float "baseline_scale" json in
  if Array.length rates <> Array.length levels then Error "rates/levels arity mismatch"
  else
    Ok
      { Optimizer.te; speedup; levels; alloc;
        spec = Failure_spec.v ~baseline_scale rates }

(* --------------- plan --------------- *)

let breakdown_to_json (b : Multilevel.breakdown) =
  Json.Obj
    [ ("productive", Json.Number b.Multilevel.productive);
      ("checkpoint", Json.Number b.Multilevel.checkpoint);
      ("restart", Json.Number b.Multilevel.restart);
      ("allocation", Json.Number b.Multilevel.allocation);
      ("rollback", Json.Number b.Multilevel.rollback) ]

let breakdown_of_json json =
  let* productive = need_float "productive" json in
  let* checkpoint = need_float "checkpoint" json in
  let* restart = need_float "restart" json in
  let* allocation = need_float "allocation" json in
  let* rollback = need_float "rollback" json in
  Ok { Multilevel.productive; checkpoint; restart; allocation; rollback }

let plan_to_json (p : Optimizer.plan) =
  Json.Obj
    [ ("xs", Json.float_array p.Optimizer.xs);
      ("n", Json.Number p.Optimizer.n);
      ("wall_clock", Json.Number p.Optimizer.wall_clock);
      ("mus", Json.float_array p.Optimizer.mus);
      ("breakdown", breakdown_to_json p.Optimizer.breakdown);
      ("efficiency", Json.Number p.Optimizer.efficiency);
      ("outer_iterations", Json.Number (float_of_int p.Optimizer.outer_iterations));
      ("inner_iterations", Json.Number (float_of_int p.Optimizer.inner_iterations));
      ("f_evals", Json.Number (float_of_int p.Optimizer.f_evals));
      ("fallbacks", Json.Number (float_of_int p.Optimizer.fallbacks));
      ("converged", Json.Bool p.Optimizer.converged) ]

(* [plan_to_json] + compact serialization in one pass, byte-identical
   to [Json.to_string (plan_to_json p)]: plans dominate response bytes
   on the service fast path, so they are streamed into the response
   buffer without building the tree. *)
let write_float_array buf a =
  if Array.length a = 0 then Buffer.add_string buf "[]"
  else begin
    Buffer.add_char buf '[';
    Array.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        Json.add_number buf x)
      a;
    Buffer.add_char buf ']'
  end

let write_plan buf (p : Optimizer.plan) =
  Buffer.add_string buf "{\"xs\":";
  write_float_array buf p.Optimizer.xs;
  Buffer.add_string buf ",\"n\":";
  Json.add_number buf p.Optimizer.n;
  Buffer.add_string buf ",\"wall_clock\":";
  Json.add_number buf p.Optimizer.wall_clock;
  Buffer.add_string buf ",\"mus\":";
  write_float_array buf p.Optimizer.mus;
  let b = p.Optimizer.breakdown in
  Buffer.add_string buf ",\"breakdown\":{\"productive\":";
  Json.add_number buf b.Multilevel.productive;
  Buffer.add_string buf ",\"checkpoint\":";
  Json.add_number buf b.Multilevel.checkpoint;
  Buffer.add_string buf ",\"restart\":";
  Json.add_number buf b.Multilevel.restart;
  Buffer.add_string buf ",\"allocation\":";
  Json.add_number buf b.Multilevel.allocation;
  Buffer.add_string buf ",\"rollback\":";
  Json.add_number buf b.Multilevel.rollback;
  Buffer.add_string buf "},\"efficiency\":";
  Json.add_number buf p.Optimizer.efficiency;
  Buffer.add_string buf ",\"outer_iterations\":";
  Json.add_number buf (float_of_int p.Optimizer.outer_iterations);
  Buffer.add_string buf ",\"inner_iterations\":";
  Json.add_number buf (float_of_int p.Optimizer.inner_iterations);
  Buffer.add_string buf ",\"f_evals\":";
  Json.add_number buf (float_of_int p.Optimizer.f_evals);
  Buffer.add_string buf ",\"fallbacks\":";
  Json.add_number buf (float_of_int p.Optimizer.fallbacks);
  Buffer.add_string buf ",\"converged\":";
  Buffer.add_string buf (if p.Optimizer.converged then "true" else "false");
  Buffer.add_char buf '}'

let plan_of_json json =
  let need_int key =
    match Option.bind (Json.member key json) Json.to_int with
    | Some i -> Ok i
    | None -> field_err key
  in
  let need_array key =
    match Option.bind (Json.member key json) Json.of_float_array with
    | Some a -> Ok a
    | None -> field_err key
  in
  let* xs = need_array "xs" in
  let* n = need_float "n" json in
  let* wall_clock = need_float "wall_clock" json in
  let* mus = need_array "mus" in
  let* breakdown =
    match Json.member "breakdown" json with
    | Some j -> breakdown_of_json j
    | None -> field_err "breakdown"
  in
  let* efficiency = need_float "efficiency" json in
  let* outer_iterations = need_int "outer_iterations" in
  let* inner_iterations = need_int "inner_iterations" in
  (* Absent in plans serialized before the telemetry fields existed
     (snapshots, WAL records): default to 0 rather than reject. *)
  let opt_int key =
    match Option.bind (Json.member key json) Json.to_int with
    | Some i -> i
    | None -> 0
  in
  let f_evals = opt_int "f_evals" in
  let fallbacks = opt_int "fallbacks" in
  let* converged =
    match Option.bind (Json.member "converged" json) Json.to_bool with
    | Some b -> Ok b
    | None -> field_err "converged"
  in
  Ok
    { Optimizer.xs; n; wall_clock; mus; breakdown; efficiency; outer_iterations;
      inner_iterations; f_evals; fallbacks; converged }

let bundle_to_json ~problem ~plan =
  Json.Obj [ ("problem", problem_to_json problem); ("plan", plan_to_json plan) ]

let bundle_of_json json =
  let* problem =
    match Json.member "problem" json with
    | Some j -> problem_of_json j
    | None -> field_err "problem"
  in
  let* plan =
    match Json.member "plan" json with Some j -> plan_of_json j | None -> field_err "plan"
  in
  Ok (problem, plan)
