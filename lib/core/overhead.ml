module Least_squares = Ckpt_numerics.Least_squares

type t = { eps : float; alpha : float; h : Scale_fn.t; h_name : string }

let identity_h = Scale_fn.linear ~slope:1. ()

let check_eps name eps =
  if not (Float.is_finite eps && eps >= 0.) then
    invalid_arg (Printf.sprintf "Overhead.%s: cost %g must be finite and >= 0" name eps)

let check_alpha name alpha =
  if not (Float.is_finite alpha) then
    invalid_arg (Printf.sprintf "Overhead.%s: alpha %g must be finite" name alpha)

let constant c =
  check_eps "constant" c;
  { eps = c; alpha = 0.; h = Scale_fn.const 0.; h_name = "0" }

let linear ~eps ~alpha =
  check_eps "linear" eps;
  check_alpha "linear" alpha;
  { eps; alpha; h = identity_h; h_name = "N" }

let custom ~eps ~alpha ~h ~h_name =
  check_eps "custom" eps;
  check_alpha "custom" alpha;
  { eps; alpha; h; h_name }

(* [Scale_fn.eval] dispatches on the law's shape — bit-identical to the
   closure call it replaces, but constant/affine laws (every law the
   paper fits) evaluate without closure indirection. *)
let cost t n = t.eps +. (t.alpha *. Scale_fn.eval t.h n)
let cost' t n = t.alpha *. Scale_fn.eval' t.h n

let scaled t factor =
  if factor <= 0. then invalid_arg "Overhead.scaled: non-positive factor";
  { t with eps = t.eps *. factor; alpha = t.alpha *. factor }

let law t =
  Scale_fn.opaque ~f:(fun n -> cost t n) ~f':(fun n -> cost' t n)

let fit ?(h = identity_h) ?(h_name = "N") ?(snap = 0.) ~scales ~costs () =
  let { Least_squares.coefficients; _ } =
    Least_squares.fit_affine_in ~h:h.Scale_fn.f ~xs:scales ~ys:costs
  in
  let eps = coefficients.(0) and alpha = coefficients.(1) in
  if Float.abs alpha < snap || alpha = 0. then
    (* Classified as scale-independent: the best constant fit is the mean
       (this is how the paper's eps_1..3 come out as the column means). *)
    constant (Ckpt_numerics.Stats.mean costs)
  else begin
    (* Measured overheads can fit with a slightly negative intercept;
       clamp, the model requires non-negative costs. *)
    let eps = Float.max 0. eps in
    custom ~eps ~alpha ~h ~h_name
  end

let pp ppf t =
  if t.alpha = 0. then Format.fprintf ppf "%g" t.eps
  else Format.fprintf ppf "%g + %g*%s" t.eps t.alpha t.h_name
