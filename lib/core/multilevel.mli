(** The multilevel checkpoint model (paper Sections II and III-D).

    With [L] levels, [x_i] checkpoint intervals at level [i], scale [N]
    and fixed expected-failure laws [mu_i(N)], the expected wall-clock
    time is paper Eq. (21):

    [E(T_w) = T_e/g(N) + sum_i C_i(N) (x_i - 1)
              + sum_i mu_i(N) ( T_e/(g(N) 2 x_i)
                                + sum_{k<=i} C_k(N) x_k / (2 x_i)
                                + A + R_i(N) )]

    The rollback of a level-i failure re-pays the lower-level checkpoints
    written inside the lost interval — that is the
    [sum_{k<=i} C_k x_k/(2 x_i)] term (Eq. 18) that couples the levels and
    makes the system of first-order conditions (Eq. 23/24) non-separable. *)

type params = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Speedup.t;
  levels : Level.t array;  (** cheapest first; the last level is the PFS *)
  alloc : float;  (** allocation period [A], seconds *)
  mus : Scale_fn.t array;  (** [mu_i(N)], one per level *)
}

type solution = {
  xs : float array;  (** optimal interval counts, all >= 1 *)
  n : float;  (** optimal scale *)
  wall_clock : float;
  iterations : int;
  f_evals : int;  (** Eq. 24 derivative evaluations spent in scale searches *)
  fallbacks : int;
      (** safeguard reversions taken by the accelerated path (always 0
          for {!optimize_reference}) *)
  converged : bool;
}

(** The model's prediction of the stacked time portions reported in the
    paper's Figures 5/6. *)
type breakdown = {
  productive : float;
  checkpoint : float;  (** first-write checkpoint overhead *)
  restart : float;  (** recovery reads, [sum mu_i R_i] *)
  allocation : float;  (** re-allocation cost, [sum mu_i A] *)
  rollback : float;  (** lost work + re-paid lower-level checkpoints *)
}

val check_params : params -> unit
(** @raise Invalid_argument on inconsistent sizes or non-positive inputs. *)

val expected_rollback : params -> xs:float array -> n:float -> level:int -> float
(** Eq. (18): expected rollback loss of one failure at [level] (1-based). *)

val expected_wall_clock : params -> xs:float array -> n:float -> float
(** Eq. (21). *)

val breakdown : params -> xs:float array -> n:float -> breakdown
(** Portion-wise decomposition; the fields sum to
    {!expected_wall_clock}. *)

val d_dx : params -> xs:float array -> n:float -> level:int -> float
(** Eq. (23) for the given (1-based) level. *)

val d_dn : params -> xs:float array -> n:float -> float
(** Eq. (24). *)

val x_update : params -> xs:float array -> n:float -> level:int -> float
(** Fixed-point map solving Eq. (23) for [x_level] with the other
    variables held; clamped to [>= 1]. *)

val young_init : params -> n:float -> float array
(** Eq. (25): per-level Young intervals, the iteration's starting point. *)

val optimize :
  ?tol:float ->
  ?max_iter:int ->
  ?n_max:float ->
  ?fixed_n:float ->
  ?init:float array * float ->
  params ->
  solution
(** Inner optimizer: Gauss–Seidel sweeps of {!x_update} over the levels
    alternated with a bisection solve of [d_dn = 0] on [\[1, N_star\]].
    [fixed_n] pins the scale (the ML(ori-scale) baseline).

    [init] warm-starts the iteration from [(xs, n)] — typically a
    neighbouring solution — instead of {!young_init}: the [xs] are
    clamped to [>= 1] (and ignored if the arity differs), [n] seeds the
    scale when [fixed_n] is absent, and the scale bisection brackets
    geometrically around the previous iterate before falling back to the
    full interval.  Warm starts only change the starting point of a
    contraction, so the fixed point reached agrees with the cold solve
    to the solver tolerance; without [init] the behaviour is unchanged.

    The iteration runs on the {!Ckpt_fastpath} workspace path: per-level
    terms are cached per scale in preallocated arrays (one per-domain
    workspace), so inner iterations do no heap allocation.  The
    iteration is accelerated — [Roots.itp_integer] (superlinear, with
    the bisection recurrence replayed exactly over the refined bracket)
    for the Eq. 24 scale search, and safeguarded Aitken delta-squared
    extrapolation of the xs fixed point, reverted whenever an
    extrapolated iterate fails to reduce the residual (counted in
    [fallbacks]).

    Contract against {!optimize_reference}: {e plan equivalence}, not
    trajectory equality — both paths converge to the same fixed point
    of the same contraction under the same tolerance, so a converged
    solution has the same integer scale [Float.round n] and an E(T_w)
    within 1e-9 relative, typically in well under half the iterations.
    The evaluation kernels themselves (E(T_w), Eq. 23/24) remain
    bit-identical to the reference; test/test_fastpath.ml
    property-tests both layers. *)

val optimize_reference :
  ?tol:float ->
  ?max_iter:int ->
  ?n_max:float ->
  ?fixed_n:float ->
  ?init:float array * float ->
  params ->
  solution
(** The reference implementation of {!optimize}: identical signature,
    plain bisection and plain fixed-point steps, evaluating every term
    through the overhead-law closures with no workspace.  Kept as the
    correctness oracle: the accelerated path must produce a
    plan-equivalent solution (same integer scale, E(T_w) within 1e-9
    relative) on every problem, which the fastpath property tests
    check. *)

val expected_wall_clock_fast :
  Ckpt_fastpath.Workspace.t -> params -> xs:float array -> n:float -> float
(** {!expected_wall_clock} evaluated through the given workspace —
    bit-identical to the reference; exposed for the property tests and
    for callers evaluating E(T_w) in a loop. *)

val fill_speedup : Speedup.t -> float -> float array -> unit
(** Write [g(n)] and [g'(n)] into slots [Workspace.slot_g] /
    [Workspace.slot_gd] of the given scalar-slot array (the {!Ckpt_fastpath}
    [Workspace] and [Batch] scratch share those indices), replicating each
    speedup form's closure arithmetic exactly.  Exposed for the batch
    solver's fill, which must stay bit-identical to this one. *)
