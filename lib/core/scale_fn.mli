(** Differentiable functions of the execution scale [N].

    The optimality condition on the scale (paper Eq. 24) needs the value
    *and* the derivative of every scale-dependent quantity — the speedup
    [g(N)], the overhead laws [C_i(N)], [R_i(N)] and the expected failure
    counts [mu_i(N)].  A {!t} packages both, so the model can assemble
    [dE(T_w)/dN] analytically. *)

(** Structural description of a law, when one is known.  Fast paths
    dispatch on it ({!eval}/{!eval'}) to evaluate values and derivatives
    without a closure call; [Opaque] laws fall back to the closures.
    The shape arms replicate the constructor closures' arithmetic
    exactly, so shape-dispatched evaluation is bit-identical. *)
type shape =
  | Const of float
  | Affine of { intercept : float; slope : float }
  | Opaque

type t = {
  f : float -> float;
  f' : float -> float;  (** derivative of [f] *)
  shape : shape;
}

val const : float -> t
(** Constant function, zero derivative. *)

val linear : ?intercept:float -> slope:float -> unit -> t
(** [linear ~slope ()] is [fun n -> intercept + slope * n]
    (default intercept [0.]). *)

val scale : float -> t -> t
(** [scale c t] is [c * t], with the derivative scaled too. *)

val add : t -> t -> t

val opaque : f:(float -> float) -> f':(float -> float) -> t
(** [opaque ~f ~f'] packages hand-written closures with [shape =
    Opaque] — the constructor for laws with no structural shape. *)

val eval : t -> float -> float
(** Shape-dispatched value: [Const]/[Affine] laws are computed directly
    (bit-identical to their closures), [Opaque] laws call [t.f]. *)

val eval' : t -> float -> float
(** Shape-dispatched derivative; [Opaque] laws call [t.f']. *)

val of_fun : ?h:float -> (float -> float) -> t
(** [of_fun f] pairs [f] with a central-difference derivative — handy when
    a custom law has no closed-form derivative.  [h] is the differencing
    step passed to {!Ckpt_numerics.Derivative.central}. *)

val check_derivative : ?at:float list -> ?tol:float -> t -> bool
(** [check_derivative t] compares [t.f'] against a finite difference of
    [t.f] at a few sample points; tests use it to validate hand-written
    derivatives. *)
