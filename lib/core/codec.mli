(** JSON serialization of optimizer problems and plans.

    Lets the CLI tools hand results to each other and to external
    tooling: [ckpt-opt --output plan.json] writes a problem+plan bundle,
    [ckpt-simulate --plan plan.json] replays it.  Only serializable
    speedup forms (not {!Speedup.form.Custom}) and affine overhead laws
    (H = 0 or H = N) round-trip; anything else raises. *)

val speedup_to_json : Speedup.t -> Ckpt_json.Json.t
(** @raise Invalid_argument on [Custom] speedups. *)

val speedup_of_json : Ckpt_json.Json.t -> (Speedup.t, string) result

val overhead_to_json : Overhead.t -> Ckpt_json.Json.t
(** @raise Invalid_argument on custom baseline functions. *)

val overhead_of_json : Ckpt_json.Json.t -> (Overhead.t, string) result

val problem_to_json : Optimizer.problem -> Ckpt_json.Json.t
val problem_of_json : Ckpt_json.Json.t -> (Optimizer.problem, string) result

val plan_to_json : Optimizer.plan -> Ckpt_json.Json.t
val plan_of_json : Ckpt_json.Json.t -> (Optimizer.plan, string) result
(** The breakdown, iteration counters and flags round-trip; plans loaded
    from JSON are complete for simulation and reporting. *)

val write_plan : Buffer.t -> Optimizer.plan -> unit
(** Stream the plan's compact JSON into [buf], byte-identical to
    [Json.to_string (plan_to_json p)] — the service fast path encodes
    plans without building the tree. *)

val bundle_to_json : problem:Optimizer.problem -> plan:Optimizer.plan -> Ckpt_json.Json.t
(** The [{"problem": ..., "plan": ...}] document the CLIs exchange. *)

val bundle_of_json :
  Ckpt_json.Json.t -> (Optimizer.problem * Optimizer.plan, string) result
