module Failure_spec = Ckpt_failures.Failure_spec

type problem = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
}

type plan = {
  xs : float array;
  n : float;
  wall_clock : float;
  mus : float array;
  breakdown : Multilevel.breakdown;
  efficiency : float;
  outer_iterations : int;
  inner_iterations : int;
  f_evals : int;
  fallbacks : int;
  converged : bool;
}

(* Non-finite inputs must be rejected at the boundary: a single NaN in a
   rate or overhead coefficient survives every range check below (NaN
   comparisons are false) and only surfaces deep in the fixed point as a
   NaN plan. *)
let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Optimizer: non-finite %s" what)

let check_problem p =
  if Array.length p.levels = 0 then invalid_arg "Optimizer: no levels";
  if Failure_spec.levels p.spec <> Array.length p.levels then
    invalid_arg "Optimizer: failure spec level count differs from hierarchy";
  check_finite "productive time" p.te;
  if p.te <= 0. then invalid_arg "Optimizer: non-positive productive time";
  check_finite "allocation period" p.alloc;
  if p.alloc < 0. then invalid_arg "Optimizer: negative allocation period";
  check_finite "baseline scale" p.spec.Failure_spec.baseline_scale;
  if p.spec.Failure_spec.baseline_scale <= 0. then
    invalid_arg "Optimizer: non-positive baseline scale";
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) || r < 0. then
        invalid_arg
          (Printf.sprintf
             "Optimizer: level %d failure rate must be finite and >= 0" (i + 1)))
    p.spec.Failure_spec.rates_per_day;
  Array.iteri
    (fun i (l : Level.t) ->
      let check_law which (o : Overhead.t) =
        if
          not (Float.is_finite o.Overhead.eps)
          || o.Overhead.eps < 0.
          || not (Float.is_finite o.Overhead.alpha)
        then
          invalid_arg
            (Printf.sprintf
               "Optimizer: level %d %s law has non-finite or negative \
                coefficients"
               (i + 1) which)
      in
      check_law "checkpoint" l.Level.ckpt;
      check_law "restart" l.Level.restart)
    p.levels;
  (match Speedup.eval p.speedup 1. with
  | g when Float.is_finite g && g > 0. -> ()
  | _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1"
  | exception _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1");
  match Speedup.search_upper_bound p.speedup ~default:1e9 with
  | n when Float.is_finite n && n >= 1. -> ()
  | _ -> invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"
  | exception _ ->
      invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"

(* mu_i(N) = lambda_i(N) * wall_clock_estimate; lambda is linear in N, so
   mu_i is linear with slope lambda'_i * estimate. *)
let mus_for p ~estimate =
  Array.init (Array.length p.levels) (fun idx ->
      let slope = Failure_spec.rate_per_second' p.spec ~level:(idx + 1) in
      Scale_fn.linear ~slope:(slope *. estimate) ())

let multilevel_params p ~estimate =
  { Multilevel.te = p.te;
    speedup = p.speedup;
    levels = p.levels;
    alloc = p.alloc;
    mus = mus_for p ~estimate }

let mu_values p ~estimate ~n =
  Array.init (Array.length p.levels) (fun idx ->
      Failure_spec.rate_per_second p.spec ~level:(idx + 1) ~scale:n *. estimate)

let finish p ~(sol : Multilevel.solution) ~estimate ~outer ~inner ~f_evals
    ~fallbacks ~converged =
  let params = multilevel_params p ~estimate in
  let breakdown = Multilevel.breakdown params ~xs:sol.Multilevel.xs ~n:sol.Multilevel.n in
  { xs = sol.Multilevel.xs;
    n = sol.Multilevel.n;
    wall_clock = sol.Multilevel.wall_clock;
    mus = mu_values p ~estimate ~n:sol.Multilevel.n;
    breakdown;
    efficiency = p.te /. sol.Multilevel.wall_clock /. sol.Multilevel.n;
    outer_iterations = outer;
    inner_iterations = inner;
    f_evals;
    fallbacks;
    converged }

(* The plan reported when the failure burden exceeds what any checkpoint
   schedule can absorb (paper Section III-D discusses this divergence for
   "extremely high" failure rates): the expected wall clock is unbounded. *)
let divergent_plan p ~n ~outer ~inner ~f_evals ~fallbacks =
  { xs = Array.make (Array.length p.levels) 1.;
    n;
    wall_clock = infinity;
    mus = Array.make (Array.length p.levels) infinity;
    breakdown =
      { Multilevel.productive = Speedup.productive_time p.speedup ~te:p.te ~n;
        checkpoint = 0.; restart = infinity; allocation = 0.; rollback = infinity };
    efficiency = 0.;
    outer_iterations = outer;
    inner_iterations = inner;
    f_evals;
    fallbacks;
    converged = false }

let solve_with ?(reference = false) ?(delta = 1e-9) ?(max_outer = 1_000) ?fixed_n
    ?(n_max = 1e9) ?warm ?initial_estimate p =
  check_problem p;
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let n0 = Option.value fixed_n ~default:n_hi in
  (* A warm plan is usable only if it describes the same hierarchy and
     carries a finite wall clock to seed the mu estimate with. *)
  let warm =
    match warm with
    | Some w
      when Array.length w.xs = Array.length p.levels
           && Float.is_finite w.wall_clock && w.wall_clock > 0. ->
        Some w
    | _ -> None
  in
  (* Line 2 of Algorithm 1: initialize the failure counts from the
     failure-free productive time — or, warm-started, from the
     neighbouring plan's converged wall clock, which is already close to
     this problem's fixed point. *)
  let estimate0 =
    match initial_estimate with
    | Some e -> e
    | None -> (
        match warm with
        | Some w -> w.wall_clock
        | None -> Speedup.productive_time p.speedup ~te:p.te ~n:n0)
  in
  let init0 = Option.map (fun w -> (w.xs, w.n)) warm in
  (* Seeding the drift reference with the warm plan's mus lets a solve
     that starts at its own fixed point stop after one outer round. *)
  let prev_mus0 =
    Option.map (fun w -> Array.map (fun m -> if Float.is_finite m then m else 0.) w.mus) warm
  in
  (* [pe]/[pr] carry the previous round's outer iterate and residual for
     the Anderson(1) secant step; [nan] marks "no history yet". *)
  let rec outer_loop estimate pe pr prev_mus init best_drift stall cold outer
      inner f_evals fallbacks =
    if not (Float.is_finite estimate) then
      divergent_plan p ~n:n0 ~outer ~inner ~f_evals ~fallbacks
    else begin
    let params = multilevel_params p ~estimate in
    let sol =
      if reference then Multilevel.optimize_reference ?fixed_n ~n_max ?init params
      else Multilevel.optimize ?fixed_n ~n_max ?init params
    in
    let inner = inner + sol.Multilevel.iterations in
    let f_evals = f_evals + sol.Multilevel.f_evals in
    let fallbacks = fallbacks + sol.Multilevel.fallbacks in
    let estimate' = sol.Multilevel.wall_clock in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:sol.Multilevel.n ~outer:(outer + 1) ~inner ~f_evals
        ~fallbacks
    else begin
    let mus' = mu_values p ~estimate:estimate' ~n:sol.Multilevel.n in
    let drift =
      match prev_mus with
      | None -> infinity
      | Some prev when Array.length prev = Array.length mus' ->
          Ckpt_numerics.Fixed_point.max_abs_diff prev mus'
      | Some _ -> infinity
    in
    if drift <= delta then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~f_evals
        ~fallbacks ~converged:sol.Multilevel.converged
    else if outer + 1 >= max_outer then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~f_evals
        ~fallbacks ~converged:false
    else if reference then
      (* Reference discipline: rounds after the first run cold
         (init = None) on the plain fixed-point orbit — each round's
         inner solution is a function of the estimate alone, so the mu
         drift cannot be pinned above delta by a tol-sized dependence on
         the previous round's starting point. *)
      outer_loop estimate' nan nan (Some mus') None infinity 0 false
        (outer + 1) inner f_evals fallbacks
    else begin
      (* Anderson(1): the outer iteration is a smooth scalar fixed point
         e -> G(e) whose residual r(e) = G(e) - e we evaluate once per
         round for free, so a secant step on r converges superlinearly
         where the plain orbit contracts geometrically.  The step is
         gated a priori — finite, positive, and within three plain steps
         of G(e) — and degrades to the plain step G(e) otherwise, so
         nothing is ever evaluated twice or reverted. *)
      let r = estimate' -. estimate in
      let e_next =
        if Float.is_finite pr && Float.abs r < Float.abs pr then begin
          let cand = estimate -. (r *. (estimate -. pe) /. (r -. pr)) in
          if
            Float.is_finite cand && cand > 0.
            && Float.abs (cand -. estimate') <= 3. *. Float.abs r
          then cand
          else estimate'
        end
        else estimate'
      in
      if cold then
        outer_loop e_next estimate r (Some mus') None infinity 0 true
          (outer + 1) inner f_evals fallbacks
      else if (not (Float.is_finite best_drift)) || drift < best_drift then
        (* An infinite best just means there is no previous round to
           compare against (mu values are finite whenever the estimate
           is), so it cannot be stagnation.
           Warm discipline: seed the next round from this round's
           converged solution.  Near the fixed point E(T_w) is flat in
           xs (first-order conditions), so the init-dependence the cold
           rule guards against is second-order in the inner tolerance —
           far below delta — while the inner solve starts close enough
           to converge in a handful of iterations.  The drift must keep
           beating its best for this to stay sound, which is checked,
           not assumed. *)
        outer_loop e_next estimate r (Some mus')
          (Some (sol.Multilevel.xs, sol.Multilevel.n))
          drift 0 false (outer + 1) inner f_evals fallbacks
      else if stall = 0 then
        (* One non-improving round is a normal transient of a
           contraction measured through a tol-bounded inner solve — keep
           the warm seeding, remember the stall. *)
        outer_loop e_next estimate r (Some mus')
          (Some (sol.Multilevel.xs, sol.Multilevel.n))
          best_drift 1 false (outer + 1) inner f_evals fallbacks
      else
        (* Two stalls in a row: the warm-seeding noise floor has been
           reached without meeting delta — the seeded inner solves stop
           inside a tol-sized ball whose position depends on the seeding
           path, so the measured drift can never fall further.  Finish
           on the reference's cold-round discipline (sticky: cold rounds
           are a deterministic function of the estimate, so their drift
           is free of the floor and keeps contracting to delta).  The
           secant acceleration keeps running — it only needs residuals,
           not a warm orbit. *)
        outer_loop e_next estimate r (Some mus') None infinity 0 true
          (outer + 1) inner f_evals fallbacks
    end
    end
    end
  in
  outer_loop estimate0 nan nan prev_mus0 init0 infinity 0 false 0 0 0 0

let solve ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p

let solve_reference ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ~reference:true ?delta ?max_outer ?fixed_n ?n_max ?warm p

(* ------------------------------------------------------------------ *)
(* Batch solving: K problems per pass through the struct-of-arrays
   fastpath workspace.  One [Batch.t] per domain (like the solver
   workspace), so pool workers fan stripes out without sharing scratch.
   Every evaluation kernel and fill mirrors the single-solve path's
   arithmetic bit for bit; the iteration itself is accelerated the same
   way ([Roots.itp_integer], safeguarded Aitken, warm outer rounds) plus
   cross-row warm starts, so each row's plan is plan-equivalent to
   [solve_reference] of the same job — same integer scale, E(T_w)
   within 1e-9 relative; test/test_fastpath.ml property-tests this. *)

module Batch = Ckpt_fastpath.Batch

type batch_job = { problem : problem; fixed_n : float option; delta : float }

let batch_job ?(delta = 1e-9) ?fixed_n problem = { problem; fixed_n; delta }

let batch_ws_key = Domain.DLS.new_key (fun () -> Batch.create ())

(* Mirrors [Multilevel.fill]: overhead-law terms guarded by the row's
   [cost_key] (functions of the scale alone, they survive the outer
   mu re-estimation rounds), mu terms and the shared speedup slots by
   the full [key].  [mi] replicates [Scale_fn.eval] of the Affine law
   [mus_for] builds: [0. +. (slope*estimate) *. n]. *)
let batch_fill b (p : problem) ~row n =
  if b.Batch.key.(row) <> n then begin
    Multilevel.fill_speedup p.speedup n b.Batch.s;
    let off = row * b.Batch.stride in
    let nl = b.Batch.nlev.(row) in
    if b.Batch.cost_key.(row) <> n then begin
      for i = 0 to nl - 1 do
        let lvl = p.levels.(i) in
        b.Batch.ci.(off + i) <- Overhead.cost lvl.Level.ckpt n;
        b.Batch.ci_d.(off + i) <- Overhead.cost' lvl.Level.ckpt n;
        b.Batch.ri.(off + i) <- Overhead.cost lvl.Level.restart n;
        b.Batch.ri_d.(off + i) <- Overhead.cost' lvl.Level.restart n
      done;
      b.Batch.cost_key.(row) <- n
    end;
    for i = 0 to nl - 1 do
      let se = b.Batch.slope.(off + i) in
      b.Batch.mi.(off + i) <- 0. +. (se *. n);
      b.Batch.mi_d.(off + i) <- se
    done;
    b.Batch.key.(row) <- n
  end

(* Mirrors [Multilevel.solve_scale_ws]: ITP probes with the bisection
   recurrence replayed over the refined bracket, bracketing around a
   warm hint when one is live (warm-seeded rounds and cross-row seeds,
   iteration 0 only — the same discipline as the single-row path). *)
let batch_solve_scale b p ?hint ~row ~n_hi () =
  let s = b.Batch.s in
  let f n =
    s.(Batch.slot_fevals) <- s.(Batch.slot_fevals) +. 1.;
    batch_fill b p ~row n;
    Batch.d_dn b ~row ~te:p.te ~alloc:p.alloc
  in
  let f_hi = f n_hi in
  if f_hi <= 0. then n_hi
  else begin
    let f_1 = f 1. in
    if f_1 >= 0. then 1.
    else begin
      let lo, hi, flo, fhi =
        match hint with
        | Some h when h > 1. && h < n_hi ->
            let rec widen lo hi =
              let flo = f lo and fhi = f hi in
              if flo < 0. && fhi > 0. then (lo, hi, flo, fhi)
              else
                let lo' = if flo < 0. then lo else Float.max 1. (lo /. 4.) in
                let hi' = if fhi > 0. then hi else Float.min n_hi (hi *. 4.) in
                widen lo' hi'
            in
            widen (Float.max 1. (h /. 2.)) (Float.min n_hi (h *. 2.))
        | _ -> (1., n_hi, f_1, f_hi)
      in
      (Ckpt_numerics.Roots.itp_integer ~flo ~fhi ~f ~lo ~hi ())
        .Ckpt_numerics.Roots.root
    end
  end

(* Mirrors [Multilevel.optimize] (cold start, default tol/max_iter) on
   one batch row.  The solved scale lands in [slot_n] and its E(T_w) in
   [slot_wall]; returns the iteration count, with the converged flag as
   the sign bit (a tuple or closure here would allocate once per outer
   round).  The loop and its finisher are top-level functions for the
   same reason the single-solve path keeps its scale iterate in a slot:
   local closures allocate per call under the non-flambda compiler. *)
let batch_opt_finish b p ~row n iter converged =
  batch_fill b p ~row n;
  b.Batch.s.(Batch.slot_n) <- n;
  b.Batch.s.(Batch.slot_wall) <-
    Batch.expected_wall_clock b ~row ~te:p.te ~alloc:p.alloc;
  if converged then iter else -iter

(* tol/max_iter are [Multilevel.optimize]'s defaults, which [solve_with]
   never overrides.  The loop is the batch twin of [Multilevel.optimize]'s
   accelerated iteration: safeguarded Aitken extrapolation on the xs
   stripe, with the Steffensen-cadence state machine kept in scalar
   slots ([slot_hist]/[slot_accel]/[slot_dxref]/[slot_nsafe]). *)
let rec batch_opt_loop b p ~row ~hinted fixed_n ~n_hi iter =
  let s = b.Batch.s in
  let n = s.(Batch.slot_n) in
  if iter >= 10_000 then batch_opt_finish b p ~row n iter false
  else begin
    Batch.rotate_xs b ~row;
    if b.Batch.key.(row) <> n then batch_fill b p ~row n;
    Batch.x_sweep b ~row ~te:p.te;
    let n' =
      match fixed_n with
      | Some n -> n
      | None ->
          let hint = if hinted && iter = 0 then Some n else None in
          batch_solve_scale b p ?hint ~row ~n_hi ()
    in
    let dx = Batch.max_abs_diff_xs b ~row in
    let pending = s.(Batch.slot_accel) = 1. in
    s.(Batch.slot_accel) <- 0.;
    if pending && not (Float.is_finite dx && dx < s.(Batch.slot_dxref)) then begin
      (* The extrapolated iterate did not contract: revert to the saved
         plain iterate and resume unaccelerated from there. *)
      s.(Batch.slot_fallbacks) <- s.(Batch.slot_fallbacks) +. 1.;
      Batch.restore_xs b ~row;
      s.(Batch.slot_n) <- s.(Batch.slot_nsafe);
      s.(Batch.slot_hist) <- 0.;
      batch_opt_loop b p ~row ~hinted fixed_n ~n_hi (iter + 1)
    end
    else begin
      s.(Batch.slot_hist) <- (if pending then 0. else s.(Batch.slot_hist) +. 1.);
      if dx <= 1e-6 && Float.abs (n' -. n) <= 0.5 then
        batch_opt_finish b p ~row n' (iter + 1) true
      else begin
        s.(Batch.slot_n) <- n';
        (* Warm (hinted) solves skip Aitken, as in [Multilevel.optimize]:
           a warm seed's step history is tol-scale path noise, not a
           geometric tail, and attempts there are wasted iterations. *)
        if (not hinted) && s.(Batch.slot_hist) >= 3. && Batch.aitken b ~row
        then begin
          s.(Batch.slot_accel) <- 1.;
          s.(Batch.slot_dxref) <- dx;
          s.(Batch.slot_nsafe) <- n';
          s.(Batch.slot_hist) <- 0.
        end;
        batch_opt_loop b p ~row ~hinted fixed_n ~n_hi (iter + 1)
      end
    end
  end

(* The key invalidation at entry is the [Workspace.reserve] twin: each
   outer round re-fills the mu terms at the new estimate, while
   [cost_key] keeps the scale-only terms across rounds.  [warm] skips
   the Young restart: the xs stripe and [slot_n] already hold a
   neighbouring solution (the previous outer round's, or a seeded
   cross-row plan), so the iteration resumes from it and the round-0
   scale search brackets around it. *)
let batch_optimize b p ~row ~warm fixed_n ~n_hi =
  b.Batch.key.(row) <- nan;
  let s = b.Batch.s in
  let n0 =
    match fixed_n with
    | Some n -> n
    | None -> if warm then Float.min n_hi s.(Batch.slot_n) else n_hi
  in
  batch_fill b p ~row n0;
  if not warm then Batch.young_init b ~row ~te:p.te;
  s.(Batch.slot_n) <- n0;
  s.(Batch.slot_hist) <- 0.;
  s.(Batch.slot_accel) <- 0.;
  batch_opt_loop b p ~row ~hinted:warm fixed_n ~n_hi 0

(* Mirrors [solve_with]'s outer loop on one batch row, allocation-free
   until the final plan record.  The wall-clock estimate rides in
   [slot_est]; the per-row f_evals/fallbacks counters accumulate in
   their slots across rounds (reset once in [solve_batch_row]).  [warm]
   follows [solve_with]'s accelerated discipline: Anderson(1) secant
   steps on the outer estimate ([pe]/[pr] carry the previous iterate and
   residual, [nan] = no history), per-round warm seeding while the mu
   drift keeps beating its best, one tolerated stall, then sticky cold
   rounds to finish below the warm noise floor. *)
let rec batch_outer b ~row ~delta ~max_outer ~n_hi (p : problem) fixed_n
    prev_valid warm pe pr best_drift stall cold outer inner =
  let off = row * b.Batch.stride in
  let nl = Array.length p.levels in
  let s = b.Batch.s in
  let estimate = s.(Batch.slot_est) in
  if not (Float.is_finite estimate) then
    let n0 = match fixed_n with Some n -> n | None -> n_hi in
    divergent_plan p ~n:n0 ~outer ~inner
      ~f_evals:(int_of_float s.(Batch.slot_fevals))
      ~fallbacks:(int_of_float s.(Batch.slot_fallbacks))
  else begin
    for i = 0 to nl - 1 do
      b.Batch.slope.(off + i) <-
        Failure_spec.rate_per_second' p.spec ~level:(i + 1) *. estimate
    done;
    let signed_iters = batch_optimize b p ~row ~warm fixed_n ~n_hi in
    let iters = abs signed_iters in
    let inner_converged = signed_iters >= 0 in
    let inner = inner + iters in
    let n_sol = s.(Batch.slot_n) in
    let estimate' = s.(Batch.slot_wall) in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:n_sol ~outer:(outer + 1) ~inner
        ~f_evals:(int_of_float s.(Batch.slot_fevals))
        ~fallbacks:(int_of_float s.(Batch.slot_fallbacks))
    else begin
      for i = 0 to nl - 1 do
        b.Batch.mu.(off + i) <-
          Failure_spec.rate_per_second p.spec ~level:(i + 1) ~scale:n_sol
          *. estimate'
      done;
      let drift = if prev_valid then Batch.mu_drift b ~row else infinity in
      if drift <= delta || outer + 1 >= max_outer then begin
        let sol =
          { Multilevel.xs = Batch.xs_copy b ~row;
            n = n_sol;
            wall_clock = estimate';
            iterations = iters;
            f_evals = int_of_float s.(Batch.slot_fevals);
            fallbacks = int_of_float s.(Batch.slot_fallbacks);
            converged = inner_converged }
        in
        let converged = if drift <= delta then inner_converged else false in
        finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner
          ~f_evals:sol.Multilevel.f_evals ~fallbacks:sol.Multilevel.fallbacks
          ~converged
      end
      else begin
        (* Anderson(1) secant step on the outer estimate, gated a priori
           exactly as in [solve_with]. *)
        let r = estimate' -. estimate in
        let e_next =
          if Float.is_finite pr && Float.abs r < Float.abs pr then begin
            let cand = estimate -. (r *. (estimate -. pe) /. (r -. pr)) in
            if
              Float.is_finite cand && cand > 0.
              && Float.abs (cand -. estimate') <= 3. *. Float.abs r
            then cand
            else estimate'
          end
          else estimate'
        in
        s.(Batch.slot_est) <- e_next;
        Batch.commit_mus b ~row;
        if cold then
          batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true false
            estimate r infinity 0 true (outer + 1) inner
        else if (not (Float.is_finite best_drift)) || drift < best_drift then
          (* Same rule as [solve_with]: an infinite best only means
             there is nothing to compare against yet, and a drift that
             keeps beating its best keeps the warm seeding sound — the
             xs stripe and [slot_n] already hold this round's solution
             for the next to resume from. *)
          batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true true
            estimate r drift 0 false (outer + 1) inner
        else if stall = 0 then
          (* One non-improving round is a normal transient of a
             tol-bounded contraction: stay warm, remember the stall. *)
          batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true true
            estimate r best_drift 1 false (outer + 1) inner
        else
          (* Two stalls in a row: the warm noise floor — finish on
             sticky cold rounds, whose drift is seed-free and keeps
             contracting; the secant steps keep running. *)
          batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true false
            estimate r infinity 0 true (outer + 1) inner
      end
    end
  end

(* [warm] seeds the row from a neighbouring converged plan (cross-row
   warm start): its xs land in the stripe, its scale in [slot_n], its
   wall clock becomes the round-0 mu estimate, and its mus pre-load the
   drift reference — the batch twin of [solve_with]'s [?warm]. *)
let solve_batch_row b ~row ~delta ~max_outer ~n_max ?warm (p : problem) fixed_n
    =
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let s = b.Batch.s in
  s.(Batch.slot_fevals) <- 0.;
  s.(Batch.slot_fallbacks) <- 0.;
  match warm with
  | Some w ->
      let off = row * b.Batch.stride in
      let nl = Array.length p.levels in
      for i = 0 to nl - 1 do
        b.Batch.xs.(off + i) <- Float.max 1. w.xs.(i);
        b.Batch.prev_mu.(off + i) <-
          (if Float.is_finite w.mus.(i) then w.mus.(i) else 0.)
      done;
      s.(Batch.slot_n) <- w.n;
      s.(Batch.slot_est) <- w.wall_clock;
      batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true true nan nan
        infinity 0 false 0 0
  | None ->
      let n0 = match fixed_n with Some n -> n | None -> n_hi in
      s.(Batch.slot_est) <- Speedup.productive_time p.speedup ~te:p.te ~n:n0;
      batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n false false nan nan
        infinity 0 false 0 0

let solve_batch ?(max_outer = 1_000) ?(n_max = 1e9) (jobs : batch_job array) =
  let k = Array.length jobs in
  if k = 0 then [||]
  else begin
    let b = Domain.DLS.get batch_ws_key in
    let stride =
      Array.fold_left (fun m j -> max m (Array.length j.problem.levels)) 1 jobs
    in
    Batch.reserve b ~rows:k ~stride;
    Array.iteri
      (fun row j ->
        b.Batch.nlev.(row) <- Array.length j.problem.levels;
        if row = 0 || not (jobs.(row - 1).problem == j.problem) then
          check_problem j.problem)
      jobs;
    (* Walk the rows in scale order (the same neighbour discipline as
       [sweep]) so each solve can seed from the nearest already-converged
       row: neighbouring scales have neighbouring fixed points, so the
       warm row resumes a contraction that is already nearly done.
       Results return in input order. *)
    let scale_of (j : batch_job) =
      match j.fixed_n with
      | Some n -> n
      | None -> Speedup.search_upper_bound j.problem.speedup ~default:n_max
    in
    let scales = Array.map scale_of jobs in
    let order = Array.init k Fun.id in
    Array.sort
      (fun i j ->
        match compare scales.(i) scales.(j) with 0 -> compare i j | c -> c)
      order;
    let plans = Array.make k None in
    (* Last converged plan on the walk, kept across diverged rows so one
       pathological job does not orphan the rest of the batch. *)
    let warm_src = ref None in
    Array.iter
      (fun row ->
        let j = jobs.(row) in
        let warm =
          match !warm_src with
          | Some (_, src_job, src_plan)
            when src_job.problem.levels == j.problem.levels
                 || src_job.problem.levels = j.problem.levels ->
              Some src_plan
          | _ -> None
        in
        (* A row starting at the scale its neighbour last filled shares
           the neighbour's overhead-law terms: same hierarchy at the
           same scale means the same values, copied instead of
           recomputed.  Warm rows start at the seed plan's scale, which
           is exactly where a same-hierarchy neighbour's last fill sits
           after its own converged solve. *)
        (match (!warm_src, warm) with
         | Some (src_row, src_job, src_plan), Some _
           when src_job.problem.levels == j.problem.levels ->
             let n0 =
               match j.fixed_n with
               | Some n -> n
               | None -> Float.min scales.(row) src_plan.n
             in
             if src_row <> row && b.Batch.cost_key.(src_row) = n0 then
               Batch.share_costs b ~src:src_row ~dst:row
         | _ -> ());
        let plan =
          solve_batch_row b ~row ~delta:j.delta ~max_outer ~n_max ?warm
            j.problem j.fixed_n
        in
        plans.(row) <- Some plan;
        if plan.converged && Float.is_finite plan.wall_clock then
          warm_src := Some (row, j, plan))
      order;
    Array.map (function Some plan -> plan | None -> assert false) plans
  end

type outcome = Converged of plan | Diverged of plan | Non_finite of plan

let plan_of_outcome = function
  | Converged p | Diverged p | Non_finite p -> p

let classify plan =
  if not (Float.is_finite plan.wall_clock) then Non_finite plan
  else if plan.converged then Converged plan
  else Diverged plan

let solve_outcome ?delta ?max_outer ?fixed_n ?n_max ?warm ?inject p =
  let plan =
    match inject with
    | Some Ckpt_chaos.Chaos.Non_finite ->
        (* Poison the initial wall-clock estimate: the outer loop's own
           finiteness guard must catch it and report a divergent plan —
           the injection exercises the real guard path, it does not
           fabricate the outcome. *)
        solve_with ?delta ?max_outer ?fixed_n ?n_max ~initial_estimate:Float.nan
          p
    | Some Ckpt_chaos.Chaos.Diverge ->
        (* Starve the outer fixed point of iterations (and of its warm
           start, whose seeded drift reference could legitimately settle
           in one round): the solve runs but cannot converge. *)
        solve_with ?delta ~max_outer:1 ?fixed_n ?n_max p
    | Some _ | None -> solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p
  in
  classify plan

type sweep_axis = [ `Scale | `Te | `Alloc ]

type sweep_stats = {
  points : int;
  warm_starts : int;
  inner_iterations : int;
  outer_iterations : int;
  f_evals : int;
}

let sweep ?delta ?(n_max = 1e9) ?(warm = true) ~axis ~values p =
  check_problem p;
  Array.iteri
    (fun i v ->
      let bad =
        match axis with
        | `Scale | `Te -> not (Float.is_finite v) || v <= 0.
        | `Alloc -> not (Float.is_finite v) || v < 0.
      in
      if bad then
        invalid_arg (Printf.sprintf "Optimizer.sweep: bad value %g at index %d" v i))
    values;
  let points = Array.length values in
  (* Walk the grid in neighbour (sorted-value) order so each solve can
     reuse the previous converged plan; results return in input order. *)
  let order = Array.init points Fun.id in
  Array.sort
    (fun i j ->
      match compare values.(i) values.(j) with 0 -> compare i j | c -> c)
    order;
  let plans = Array.make points None in
  let prev = ref None in
  let warm_starts = ref 0 and inner = ref 0 and outer = ref 0 in
  let fevals = ref 0 in
  Array.iter
    (fun idx ->
      let v = values.(idx) in
      let problem, fixed_n =
        match axis with
        | `Scale -> (p, Some v)
        | `Te -> ({ p with te = v }, None)
        | `Alloc -> ({ p with alloc = v }, None)
      in
      let warm_plan = if warm then !prev else None in
      if Option.is_some warm_plan then incr warm_starts;
      let plan = solve ?delta ?fixed_n ~n_max ?warm:warm_plan problem in
      inner := !inner + plan.inner_iterations;
      outer := !outer + plan.outer_iterations;
      fevals := !fevals + plan.f_evals;
      plans.(idx) <- Some plan;
      (* A divergent or unconverged plan would poison its neighbour's
         start; break the chain and let the next point solve cold. *)
      prev :=
        if plan.converged && Float.is_finite plan.wall_clock then Some plan
        else None)
    order;
  let plans =
    Array.map (function Some plan -> plan | None -> assert false) plans
  in
  ( plans,
    { points;
      warm_starts = !warm_starts;
      inner_iterations = !inner;
      outer_iterations = !outer;
      f_evals = !fevals } )

let pp_sweep_stats ppf s =
  Format.fprintf ppf
    "%d points, %d warm-started, %d inner / %d outer iterations, %d f-evals"
    s.points s.warm_starts s.inner_iterations s.outer_iterations s.f_evals

let single_level_problem p =
  let last = p.levels.(Array.length p.levels - 1) in
  let total =
    Array.fold_left ( +. ) 0. p.spec.Failure_spec.rates_per_day
  in
  { p with
    levels = [| last |];
    spec =
      Failure_spec.v ~baseline_scale:p.spec.Failure_spec.baseline_scale [| total |] }

let ml_opt_scale ?delta p = solve ?delta p

let ml_ori_scale ?delta ?n p =
  let n = Option.value n ~default:(Speedup.search_upper_bound p.speedup ~default:1e9) in
  solve ?delta ~fixed_n:n p

let sl_opt_scale ?delta p = solve ?delta (single_level_problem p)

let sl_ori_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Young's formula (Eq. 25): interval from the productive-time failure
     count; no self-consistent iteration. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let params = multilevel_params sl ~estimate:productive in
  let xs = Multilevel.young_init params ~n in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; f_evals = 0;
      fallbacks = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~f_evals:0
    ~fallbacks:0 ~converged:true

let sl_daly_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Daly's refinement of Young: same shape as [sl_ori_scale] but the
     interval count comes from the higher-order formula, which keeps the
     checkpoint cost term when it is not negligible next to the MTBF. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let ckpt_cost = Overhead.cost sl.levels.(0).Level.ckpt n in
  let failures =
    Failure_spec.rate_per_second sl.spec ~level:1 ~scale:n *. productive
  in
  let x = if ckpt_cost <= 0. then 1. else Daly.interval_count ~productive ~ckpt_cost ~failures in
  let xs = [| x |] in
  let params = multilevel_params sl ~estimate:productive in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; f_evals = 0;
      fallbacks = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~f_evals:0
    ~fallbacks:0 ~converged:true

let pp_plan ppf t =
  let b = t.breakdown in
  Format.fprintf ppf
    "@[<v>xs = [%s]@ N = %.0f@ E(Tw) = %.4g s (%.3f days)@ mus = [%s]@ \
     portions: productive=%.4g ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ \
     efficiency = %.4f@ iterations: outer=%d inner=%d f_evals=%d \
     fallbacks=%d converged=%b@]"
    (String.concat "; "
       (Array.to_list (Array.map (fun x -> Printf.sprintf "%.1f" x) t.xs)))
    t.n t.wall_clock
    (t.wall_clock /. Failure_spec.seconds_per_day)
    (String.concat "; "
       (Array.to_list (Array.map (fun m -> Printf.sprintf "%.2f" m) t.mus)))
    b.Multilevel.productive b.Multilevel.checkpoint b.Multilevel.restart
    b.Multilevel.allocation b.Multilevel.rollback t.efficiency t.outer_iterations
    t.inner_iterations t.f_evals t.fallbacks t.converged
