module Failure_spec = Ckpt_failures.Failure_spec

type problem = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
}

type plan = {
  xs : float array;
  n : float;
  wall_clock : float;
  mus : float array;
  breakdown : Multilevel.breakdown;
  efficiency : float;
  outer_iterations : int;
  inner_iterations : int;
  converged : bool;
}

(* Non-finite inputs must be rejected at the boundary: a single NaN in a
   rate or overhead coefficient survives every range check below (NaN
   comparisons are false) and only surfaces deep in the fixed point as a
   NaN plan. *)
let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Optimizer: non-finite %s" what)

let check_problem p =
  if Array.length p.levels = 0 then invalid_arg "Optimizer: no levels";
  if Failure_spec.levels p.spec <> Array.length p.levels then
    invalid_arg "Optimizer: failure spec level count differs from hierarchy";
  check_finite "productive time" p.te;
  if p.te <= 0. then invalid_arg "Optimizer: non-positive productive time";
  check_finite "allocation period" p.alloc;
  if p.alloc < 0. then invalid_arg "Optimizer: negative allocation period";
  check_finite "baseline scale" p.spec.Failure_spec.baseline_scale;
  if p.spec.Failure_spec.baseline_scale <= 0. then
    invalid_arg "Optimizer: non-positive baseline scale";
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) || r < 0. then
        invalid_arg
          (Printf.sprintf
             "Optimizer: level %d failure rate must be finite and >= 0" (i + 1)))
    p.spec.Failure_spec.rates_per_day;
  Array.iteri
    (fun i (l : Level.t) ->
      let check_law which (o : Overhead.t) =
        if
          not (Float.is_finite o.Overhead.eps)
          || o.Overhead.eps < 0.
          || not (Float.is_finite o.Overhead.alpha)
        then
          invalid_arg
            (Printf.sprintf
               "Optimizer: level %d %s law has non-finite or negative \
                coefficients"
               (i + 1) which)
      in
      check_law "checkpoint" l.Level.ckpt;
      check_law "restart" l.Level.restart)
    p.levels;
  (match Speedup.eval p.speedup 1. with
  | g when Float.is_finite g && g > 0. -> ()
  | _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1"
  | exception _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1");
  match Speedup.search_upper_bound p.speedup ~default:1e9 with
  | n when Float.is_finite n && n >= 1. -> ()
  | _ -> invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"
  | exception _ ->
      invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"

(* mu_i(N) = lambda_i(N) * wall_clock_estimate; lambda is linear in N, so
   mu_i is linear with slope lambda'_i * estimate. *)
let mus_for p ~estimate =
  Array.init (Array.length p.levels) (fun idx ->
      let slope = Failure_spec.rate_per_second' p.spec ~level:(idx + 1) in
      Scale_fn.linear ~slope:(slope *. estimate) ())

let multilevel_params p ~estimate =
  { Multilevel.te = p.te;
    speedup = p.speedup;
    levels = p.levels;
    alloc = p.alloc;
    mus = mus_for p ~estimate }

let mu_values p ~estimate ~n =
  Array.init (Array.length p.levels) (fun idx ->
      Failure_spec.rate_per_second p.spec ~level:(idx + 1) ~scale:n *. estimate)

let finish p ~(sol : Multilevel.solution) ~estimate ~outer ~inner ~converged =
  let params = multilevel_params p ~estimate in
  let breakdown = Multilevel.breakdown params ~xs:sol.Multilevel.xs ~n:sol.Multilevel.n in
  { xs = sol.Multilevel.xs;
    n = sol.Multilevel.n;
    wall_clock = sol.Multilevel.wall_clock;
    mus = mu_values p ~estimate ~n:sol.Multilevel.n;
    breakdown;
    efficiency = p.te /. sol.Multilevel.wall_clock /. sol.Multilevel.n;
    outer_iterations = outer;
    inner_iterations = inner;
    converged }

(* The plan reported when the failure burden exceeds what any checkpoint
   schedule can absorb (paper Section III-D discusses this divergence for
   "extremely high" failure rates): the expected wall clock is unbounded. *)
let divergent_plan p ~n ~outer ~inner =
  { xs = Array.make (Array.length p.levels) 1.;
    n;
    wall_clock = infinity;
    mus = Array.make (Array.length p.levels) infinity;
    breakdown =
      { Multilevel.productive = Speedup.productive_time p.speedup ~te:p.te ~n;
        checkpoint = 0.; restart = infinity; allocation = 0.; rollback = infinity };
    efficiency = 0.;
    outer_iterations = outer;
    inner_iterations = inner;
    converged = false }

let solve_with ?(reference = false) ?(delta = 1e-9) ?(max_outer = 1_000) ?fixed_n
    ?(n_max = 1e9) ?warm ?initial_estimate p =
  check_problem p;
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let n0 = Option.value fixed_n ~default:n_hi in
  (* A warm plan is usable only if it describes the same hierarchy and
     carries a finite wall clock to seed the mu estimate with. *)
  let warm =
    match warm with
    | Some w
      when Array.length w.xs = Array.length p.levels
           && Float.is_finite w.wall_clock && w.wall_clock > 0. ->
        Some w
    | _ -> None
  in
  (* Line 2 of Algorithm 1: initialize the failure counts from the
     failure-free productive time — or, warm-started, from the
     neighbouring plan's converged wall clock, which is already close to
     this problem's fixed point. *)
  let estimate0 =
    match initial_estimate with
    | Some e -> e
    | None -> (
        match warm with
        | Some w -> w.wall_clock
        | None -> Speedup.productive_time p.speedup ~te:p.te ~n:n0)
  in
  let init0 = Option.map (fun w -> (w.xs, w.n)) warm in
  (* Seeding the drift reference with the warm plan's mus lets a solve
     that starts at its own fixed point stop after one outer round. *)
  let prev_mus0 =
    Option.map (fun w -> Array.map (fun m -> if Float.is_finite m then m else 0.) w.mus) warm
  in
  let rec outer_loop estimate prev_mus init outer inner =
    if not (Float.is_finite estimate) then divergent_plan p ~n:n0 ~outer ~inner
    else begin
    let params = multilevel_params p ~estimate in
    let sol =
      if reference then Multilevel.optimize_reference ?fixed_n ~n_max ?init params
      else Multilevel.optimize ?fixed_n ~n_max ?init params
    in
    let inner = inner + sol.Multilevel.iterations in
    let estimate' = sol.Multilevel.wall_clock in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:sol.Multilevel.n ~outer:(outer + 1) ~inner
    else begin
    let mus' = mu_values p ~estimate:estimate' ~n:sol.Multilevel.n in
    let drift =
      match prev_mus with
      | None -> infinity
      | Some prev when Array.length prev = Array.length mus' ->
          Ckpt_numerics.Fixed_point.max_abs_diff prev mus'
      | Some _ -> infinity
    in
    if drift <= delta then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner
        ~converged:sol.Multilevel.converged
    else if outer + 1 >= max_outer then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~converged:false
    else
      (* Rounds after the first run cold (init = None): each round's
         inner solution must be a function of the estimate alone, or the
         tol-sized dependence on the previous round's starting point
         keeps the mu drift above delta forever.  The warm gain is the
         near-fixed-point initial estimate, not per-round seeding. *)
      outer_loop estimate' (Some mus') None (outer + 1) inner
    end
    end
  in
  outer_loop estimate0 prev_mus0 init0 0 0

let solve ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p

let solve_reference ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ~reference:true ?delta ?max_outer ?fixed_n ?n_max ?warm p

type outcome = Converged of plan | Diverged of plan | Non_finite of plan

let plan_of_outcome = function
  | Converged p | Diverged p | Non_finite p -> p

let classify plan =
  if not (Float.is_finite plan.wall_clock) then Non_finite plan
  else if plan.converged then Converged plan
  else Diverged plan

let solve_outcome ?delta ?max_outer ?fixed_n ?n_max ?warm ?inject p =
  let plan =
    match inject with
    | Some Ckpt_chaos.Chaos.Non_finite ->
        (* Poison the initial wall-clock estimate: the outer loop's own
           finiteness guard must catch it and report a divergent plan —
           the injection exercises the real guard path, it does not
           fabricate the outcome. *)
        solve_with ?delta ?max_outer ?fixed_n ?n_max ~initial_estimate:Float.nan
          p
    | Some Ckpt_chaos.Chaos.Diverge ->
        (* Starve the outer fixed point of iterations (and of its warm
           start, whose seeded drift reference could legitimately settle
           in one round): the solve runs but cannot converge. *)
        solve_with ?delta ~max_outer:1 ?fixed_n ?n_max p
    | Some _ | None -> solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p
  in
  classify plan

type sweep_axis = [ `Scale | `Te | `Alloc ]

type sweep_stats = {
  points : int;
  warm_starts : int;
  inner_iterations : int;
  outer_iterations : int;
}

let sweep ?delta ?(n_max = 1e9) ?(warm = true) ~axis ~values p =
  check_problem p;
  Array.iteri
    (fun i v ->
      let bad =
        match axis with
        | `Scale | `Te -> not (Float.is_finite v) || v <= 0.
        | `Alloc -> not (Float.is_finite v) || v < 0.
      in
      if bad then
        invalid_arg (Printf.sprintf "Optimizer.sweep: bad value %g at index %d" v i))
    values;
  let points = Array.length values in
  (* Walk the grid in neighbour (sorted-value) order so each solve can
     reuse the previous converged plan; results return in input order. *)
  let order = Array.init points Fun.id in
  Array.sort
    (fun i j ->
      match compare values.(i) values.(j) with 0 -> compare i j | c -> c)
    order;
  let plans = Array.make points None in
  let prev = ref None in
  let warm_starts = ref 0 and inner = ref 0 and outer = ref 0 in
  Array.iter
    (fun idx ->
      let v = values.(idx) in
      let problem, fixed_n =
        match axis with
        | `Scale -> (p, Some v)
        | `Te -> ({ p with te = v }, None)
        | `Alloc -> ({ p with alloc = v }, None)
      in
      let warm_plan = if warm then !prev else None in
      if Option.is_some warm_plan then incr warm_starts;
      let plan = solve ?delta ?fixed_n ~n_max ?warm:warm_plan problem in
      inner := !inner + plan.inner_iterations;
      outer := !outer + plan.outer_iterations;
      plans.(idx) <- Some plan;
      (* A divergent or unconverged plan would poison its neighbour's
         start; break the chain and let the next point solve cold. *)
      prev :=
        if plan.converged && Float.is_finite plan.wall_clock then Some plan
        else None)
    order;
  let plans =
    Array.map (function Some plan -> plan | None -> assert false) plans
  in
  ( plans,
    { points;
      warm_starts = !warm_starts;
      inner_iterations = !inner;
      outer_iterations = !outer } )

let pp_sweep_stats ppf s =
  Format.fprintf ppf "%d points, %d warm-started, %d inner / %d outer iterations"
    s.points s.warm_starts s.inner_iterations s.outer_iterations

let single_level_problem p =
  let last = p.levels.(Array.length p.levels - 1) in
  let total =
    Array.fold_left ( +. ) 0. p.spec.Failure_spec.rates_per_day
  in
  { p with
    levels = [| last |];
    spec =
      Failure_spec.v ~baseline_scale:p.spec.Failure_spec.baseline_scale [| total |] }

let ml_opt_scale ?delta p = solve ?delta p

let ml_ori_scale ?delta ?n p =
  let n = Option.value n ~default:(Speedup.search_upper_bound p.speedup ~default:1e9) in
  solve ?delta ~fixed_n:n p

let sl_opt_scale ?delta p = solve ?delta (single_level_problem p)

let sl_ori_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Young's formula (Eq. 25): interval from the productive-time failure
     count; no self-consistent iteration. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let params = multilevel_params sl ~estimate:productive in
  let xs = Multilevel.young_init params ~n in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~converged:true

let sl_daly_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Daly's refinement of Young: same shape as [sl_ori_scale] but the
     interval count comes from the higher-order formula, which keeps the
     checkpoint cost term when it is not negligible next to the MTBF. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let ckpt_cost = Overhead.cost sl.levels.(0).Level.ckpt n in
  let failures =
    Failure_spec.rate_per_second sl.spec ~level:1 ~scale:n *. productive
  in
  let x = if ckpt_cost <= 0. then 1. else Daly.interval_count ~productive ~ckpt_cost ~failures in
  let xs = [| x |] in
  let params = multilevel_params sl ~estimate:productive in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~converged:true

let pp_plan ppf t =
  let b = t.breakdown in
  Format.fprintf ppf
    "@[<v>xs = [%s]@ N = %.0f@ E(Tw) = %.4g s (%.3f days)@ mus = [%s]@ \
     portions: productive=%.4g ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ \
     efficiency = %.4f@ iterations: outer=%d inner=%d converged=%b@]"
    (String.concat "; "
       (Array.to_list (Array.map (fun x -> Printf.sprintf "%.1f" x) t.xs)))
    t.n t.wall_clock
    (t.wall_clock /. Failure_spec.seconds_per_day)
    (String.concat "; "
       (Array.to_list (Array.map (fun m -> Printf.sprintf "%.2f" m) t.mus)))
    b.Multilevel.productive b.Multilevel.checkpoint b.Multilevel.restart
    b.Multilevel.allocation b.Multilevel.rollback t.efficiency t.outer_iterations
    t.inner_iterations t.converged
