module Failure_spec = Ckpt_failures.Failure_spec

type problem = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
}

type plan = {
  xs : float array;
  n : float;
  wall_clock : float;
  mus : float array;
  breakdown : Multilevel.breakdown;
  efficiency : float;
  outer_iterations : int;
  inner_iterations : int;
  converged : bool;
}

(* Non-finite inputs must be rejected at the boundary: a single NaN in a
   rate or overhead coefficient survives every range check below (NaN
   comparisons are false) and only surfaces deep in the fixed point as a
   NaN plan. *)
let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Optimizer: non-finite %s" what)

let check_problem p =
  if Array.length p.levels = 0 then invalid_arg "Optimizer: no levels";
  if Failure_spec.levels p.spec <> Array.length p.levels then
    invalid_arg "Optimizer: failure spec level count differs from hierarchy";
  check_finite "productive time" p.te;
  if p.te <= 0. then invalid_arg "Optimizer: non-positive productive time";
  check_finite "allocation period" p.alloc;
  if p.alloc < 0. then invalid_arg "Optimizer: negative allocation period";
  check_finite "baseline scale" p.spec.Failure_spec.baseline_scale;
  if p.spec.Failure_spec.baseline_scale <= 0. then
    invalid_arg "Optimizer: non-positive baseline scale";
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) || r < 0. then
        invalid_arg
          (Printf.sprintf
             "Optimizer: level %d failure rate must be finite and >= 0" (i + 1)))
    p.spec.Failure_spec.rates_per_day;
  Array.iteri
    (fun i (l : Level.t) ->
      let check_law which (o : Overhead.t) =
        if
          not (Float.is_finite o.Overhead.eps)
          || o.Overhead.eps < 0.
          || not (Float.is_finite o.Overhead.alpha)
        then
          invalid_arg
            (Printf.sprintf
               "Optimizer: level %d %s law has non-finite or negative \
                coefficients"
               (i + 1) which)
      in
      check_law "checkpoint" l.Level.ckpt;
      check_law "restart" l.Level.restart)
    p.levels;
  (match Speedup.eval p.speedup 1. with
  | g when Float.is_finite g && g > 0. -> ()
  | _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1"
  | exception _ -> invalid_arg "Optimizer: speedup not finite-positive at N = 1");
  match Speedup.search_upper_bound p.speedup ~default:1e9 with
  | n when Float.is_finite n && n >= 1. -> ()
  | _ -> invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"
  | exception _ ->
      invalid_arg "Optimizer: speedup ideal scale must be finite and >= 1"

(* mu_i(N) = lambda_i(N) * wall_clock_estimate; lambda is linear in N, so
   mu_i is linear with slope lambda'_i * estimate. *)
let mus_for p ~estimate =
  Array.init (Array.length p.levels) (fun idx ->
      let slope = Failure_spec.rate_per_second' p.spec ~level:(idx + 1) in
      Scale_fn.linear ~slope:(slope *. estimate) ())

let multilevel_params p ~estimate =
  { Multilevel.te = p.te;
    speedup = p.speedup;
    levels = p.levels;
    alloc = p.alloc;
    mus = mus_for p ~estimate }

let mu_values p ~estimate ~n =
  Array.init (Array.length p.levels) (fun idx ->
      Failure_spec.rate_per_second p.spec ~level:(idx + 1) ~scale:n *. estimate)

let finish p ~(sol : Multilevel.solution) ~estimate ~outer ~inner ~converged =
  let params = multilevel_params p ~estimate in
  let breakdown = Multilevel.breakdown params ~xs:sol.Multilevel.xs ~n:sol.Multilevel.n in
  { xs = sol.Multilevel.xs;
    n = sol.Multilevel.n;
    wall_clock = sol.Multilevel.wall_clock;
    mus = mu_values p ~estimate ~n:sol.Multilevel.n;
    breakdown;
    efficiency = p.te /. sol.Multilevel.wall_clock /. sol.Multilevel.n;
    outer_iterations = outer;
    inner_iterations = inner;
    converged }

(* The plan reported when the failure burden exceeds what any checkpoint
   schedule can absorb (paper Section III-D discusses this divergence for
   "extremely high" failure rates): the expected wall clock is unbounded. *)
let divergent_plan p ~n ~outer ~inner =
  { xs = Array.make (Array.length p.levels) 1.;
    n;
    wall_clock = infinity;
    mus = Array.make (Array.length p.levels) infinity;
    breakdown =
      { Multilevel.productive = Speedup.productive_time p.speedup ~te:p.te ~n;
        checkpoint = 0.; restart = infinity; allocation = 0.; rollback = infinity };
    efficiency = 0.;
    outer_iterations = outer;
    inner_iterations = inner;
    converged = false }

let solve_with ?(reference = false) ?(delta = 1e-9) ?(max_outer = 1_000) ?fixed_n
    ?(n_max = 1e9) ?warm ?initial_estimate p =
  check_problem p;
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let n0 = Option.value fixed_n ~default:n_hi in
  (* A warm plan is usable only if it describes the same hierarchy and
     carries a finite wall clock to seed the mu estimate with. *)
  let warm =
    match warm with
    | Some w
      when Array.length w.xs = Array.length p.levels
           && Float.is_finite w.wall_clock && w.wall_clock > 0. ->
        Some w
    | _ -> None
  in
  (* Line 2 of Algorithm 1: initialize the failure counts from the
     failure-free productive time — or, warm-started, from the
     neighbouring plan's converged wall clock, which is already close to
     this problem's fixed point. *)
  let estimate0 =
    match initial_estimate with
    | Some e -> e
    | None -> (
        match warm with
        | Some w -> w.wall_clock
        | None -> Speedup.productive_time p.speedup ~te:p.te ~n:n0)
  in
  let init0 = Option.map (fun w -> (w.xs, w.n)) warm in
  (* Seeding the drift reference with the warm plan's mus lets a solve
     that starts at its own fixed point stop after one outer round. *)
  let prev_mus0 =
    Option.map (fun w -> Array.map (fun m -> if Float.is_finite m then m else 0.) w.mus) warm
  in
  let rec outer_loop estimate prev_mus init outer inner =
    if not (Float.is_finite estimate) then divergent_plan p ~n:n0 ~outer ~inner
    else begin
    let params = multilevel_params p ~estimate in
    let sol =
      if reference then Multilevel.optimize_reference ?fixed_n ~n_max ?init params
      else Multilevel.optimize ?fixed_n ~n_max ?init params
    in
    let inner = inner + sol.Multilevel.iterations in
    let estimate' = sol.Multilevel.wall_clock in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:sol.Multilevel.n ~outer:(outer + 1) ~inner
    else begin
    let mus' = mu_values p ~estimate:estimate' ~n:sol.Multilevel.n in
    let drift =
      match prev_mus with
      | None -> infinity
      | Some prev when Array.length prev = Array.length mus' ->
          Ckpt_numerics.Fixed_point.max_abs_diff prev mus'
      | Some _ -> infinity
    in
    if drift <= delta then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner
        ~converged:sol.Multilevel.converged
    else if outer + 1 >= max_outer then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~converged:false
    else
      (* Rounds after the first run cold (init = None): each round's
         inner solution must be a function of the estimate alone, or the
         tol-sized dependence on the previous round's starting point
         keeps the mu drift above delta forever.  The warm gain is the
         near-fixed-point initial estimate, not per-round seeding. *)
      outer_loop estimate' (Some mus') None (outer + 1) inner
    end
    end
  in
  outer_loop estimate0 prev_mus0 init0 0 0

let solve ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p

let solve_reference ?delta ?max_outer ?fixed_n ?n_max ?warm p =
  solve_with ~reference:true ?delta ?max_outer ?fixed_n ?n_max ?warm p

(* ------------------------------------------------------------------ *)
(* Batch solving: K problems per pass through the struct-of-arrays
   fastpath workspace.  One [Batch.t] per domain (like the solver
   workspace), so pool workers fan stripes out without sharing scratch.
   Every kernel and fill mirrors the single-solve path's arithmetic —
   each row's plan is bitwise equal to [solve] (and so to
   [solve_reference]) of the same job; test/test_fastpath.ml checks. *)

module Batch = Ckpt_fastpath.Batch

type batch_job = { problem : problem; fixed_n : float option; delta : float }

let batch_job ?(delta = 1e-9) ?fixed_n problem = { problem; fixed_n; delta }

let batch_ws_key = Domain.DLS.new_key (fun () -> Batch.create ())

(* Mirrors [Multilevel.fill]: overhead-law terms guarded by the row's
   [cost_key] (functions of the scale alone, they survive the outer
   mu re-estimation rounds), mu terms and the shared speedup slots by
   the full [key].  [mi] replicates [Scale_fn.eval] of the Affine law
   [mus_for] builds: [0. +. (slope*estimate) *. n]. *)
let batch_fill b (p : problem) ~row n =
  if b.Batch.key.(row) <> n then begin
    Multilevel.fill_speedup p.speedup n b.Batch.s;
    let off = row * b.Batch.stride in
    let nl = b.Batch.nlev.(row) in
    if b.Batch.cost_key.(row) <> n then begin
      for i = 0 to nl - 1 do
        let lvl = p.levels.(i) in
        b.Batch.ci.(off + i) <- Overhead.cost lvl.Level.ckpt n;
        b.Batch.ci_d.(off + i) <- Overhead.cost' lvl.Level.ckpt n;
        b.Batch.ri.(off + i) <- Overhead.cost lvl.Level.restart n;
        b.Batch.ri_d.(off + i) <- Overhead.cost' lvl.Level.restart n
      done;
      b.Batch.cost_key.(row) <- n
    end;
    for i = 0 to nl - 1 do
      let se = b.Batch.slope.(off + i) in
      b.Batch.mi.(off + i) <- 0. +. (se *. n);
      b.Batch.mi_d.(off + i) <- se
    done;
    b.Batch.key.(row) <- n
  end

(* Mirrors [Multilevel.solve_scale_ws] without a hint (batch rows run
   cold, like [solve_with]'s outer rounds). *)
let batch_solve_scale b p ~row ~n_hi =
  let f n =
    batch_fill b p ~row n;
    Batch.d_dn b ~row ~te:p.te ~alloc:p.alloc
  in
  if f n_hi <= 0. then n_hi
  else if f 1. >= 0. then 1.
  else
    (Ckpt_numerics.Roots.bisect_integer ~f ~lo:1. ~hi:n_hi ())
      .Ckpt_numerics.Roots.root

(* Mirrors [Multilevel.optimize] (cold start, default tol/max_iter) on
   one batch row.  The solved scale lands in [slot_n] and its E(T_w) in
   [slot_wall]; returns the iteration count, with the converged flag as
   the sign bit (a tuple or closure here would allocate once per outer
   round).  The loop and its finisher are top-level functions for the
   same reason the single-solve path keeps its scale iterate in a slot:
   local closures allocate per call under the non-flambda compiler. *)
let batch_opt_finish b p ~row n iter converged =
  batch_fill b p ~row n;
  b.Batch.s.(Batch.slot_n) <- n;
  b.Batch.s.(Batch.slot_wall) <-
    Batch.expected_wall_clock b ~row ~te:p.te ~alloc:p.alloc;
  if converged then iter else -iter

(* tol/max_iter are [Multilevel.optimize]'s defaults, which [solve_with]
   never overrides. *)
let rec batch_opt_loop b p ~row fixed_n ~n_hi iter =
  let s = b.Batch.s in
  let n = s.(Batch.slot_n) in
  if iter >= 10_000 then batch_opt_finish b p ~row n iter false
  else begin
    Batch.save_xs b ~row;
    if b.Batch.key.(row) <> n then batch_fill b p ~row n;
    Batch.x_sweep b ~row ~te:p.te;
    let n' =
      match fixed_n with
      | Some n -> n
      | None -> batch_solve_scale b p ~row ~n_hi
    in
    let dx = Batch.max_abs_diff_xs b ~row in
    if dx <= 1e-6 && Float.abs (n' -. n) <= 0.5 then
      batch_opt_finish b p ~row n' (iter + 1) true
    else begin
      s.(Batch.slot_n) <- n';
      batch_opt_loop b p ~row fixed_n ~n_hi (iter + 1)
    end
  end

(* The key invalidation at entry is the [Workspace.reserve] twin: each
   outer round re-fills the mu terms at the new estimate, while
   [cost_key] keeps the scale-only terms across rounds. *)
let batch_optimize b p ~row fixed_n ~n_hi =
  b.Batch.key.(row) <- nan;
  let n0 = match fixed_n with Some n -> n | None -> n_hi in
  batch_fill b p ~row n0;
  Batch.young_init b ~row ~te:p.te;
  b.Batch.s.(Batch.slot_n) <- n0;
  batch_opt_loop b p ~row fixed_n ~n_hi 0

(* Mirrors [solve_with]'s outer loop (cold: no warm plan, no injected
   estimate) on one batch row, allocation-free until the final plan
   record.  The wall-clock estimate rides in [slot_est]. *)
let rec batch_outer b ~row ~delta ~max_outer ~n_hi (p : problem) fixed_n
    prev_valid outer inner =
  let off = row * b.Batch.stride in
  let nl = Array.length p.levels in
  let s = b.Batch.s in
  let estimate = s.(Batch.slot_est) in
  if not (Float.is_finite estimate) then
    let n0 = match fixed_n with Some n -> n | None -> n_hi in
    divergent_plan p ~n:n0 ~outer ~inner
  else begin
    for i = 0 to nl - 1 do
      b.Batch.slope.(off + i) <-
        Failure_spec.rate_per_second' p.spec ~level:(i + 1) *. estimate
    done;
    let signed_iters = batch_optimize b p ~row fixed_n ~n_hi in
    let iters = abs signed_iters in
    let inner_converged = signed_iters >= 0 in
    let inner = inner + iters in
    let n_sol = s.(Batch.slot_n) in
    let estimate' = s.(Batch.slot_wall) in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:n_sol ~outer:(outer + 1) ~inner
    else begin
      for i = 0 to nl - 1 do
        b.Batch.mu.(off + i) <-
          Failure_spec.rate_per_second p.spec ~level:(i + 1) ~scale:n_sol
          *. estimate'
      done;
      let drift = if prev_valid then Batch.mu_drift b ~row else infinity in
      if drift <= delta || outer + 1 >= max_outer then begin
        let sol =
          { Multilevel.xs = Batch.xs_copy b ~row;
            n = n_sol;
            wall_clock = estimate';
            iterations = iters;
            converged = inner_converged }
        in
        let converged = if drift <= delta then inner_converged else false in
        finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~converged
      end
      else begin
        s.(Batch.slot_est) <- estimate';
        Batch.commit_mus b ~row;
        batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n true (outer + 1)
          inner
      end
    end
  end

let solve_batch_row b ~row ~delta ~max_outer ~n_max (p : problem) fixed_n =
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let n0 = match fixed_n with Some n -> n | None -> n_hi in
  b.Batch.s.(Batch.slot_est) <-
    Speedup.productive_time p.speedup ~te:p.te ~n:n0;
  batch_outer b ~row ~delta ~max_outer ~n_hi p fixed_n false 0 0

let solve_batch ?(max_outer = 1_000) ?(n_max = 1e9) (jobs : batch_job array) =
  let k = Array.length jobs in
  if k = 0 then [||]
  else begin
    let b = Domain.DLS.get batch_ws_key in
    let stride =
      Array.fold_left (fun m j -> max m (Array.length j.problem.levels)) 1 jobs
    in
    Batch.reserve b ~rows:k ~stride;
    Array.iteri
      (fun row j ->
        b.Batch.nlev.(row) <- Array.length j.problem.levels;
        if row = 0 || not (jobs.(row - 1).problem == j.problem) then
          check_problem j.problem)
      jobs;
    Array.mapi
      (fun row j ->
        (* A row starting at the scale its neighbour last filled shares
           the neighbour's overhead-law terms: same hierarchy at the
           same scale means the same values, copied instead of
           recomputed. *)
        (if row > 0 then begin
           let prev = jobs.(row - 1) in
           let n0 =
             match j.fixed_n with
             | Some n -> n
             | None ->
                 Speedup.search_upper_bound j.problem.speedup ~default:n_max
           in
           if
             prev.problem.levels == j.problem.levels
             && b.Batch.cost_key.(row - 1) = n0
           then Batch.share_costs b ~src:(row - 1) ~dst:row
         end);
        solve_batch_row b ~row ~delta:j.delta ~max_outer ~n_max j.problem
          j.fixed_n)
      jobs
  end

type outcome = Converged of plan | Diverged of plan | Non_finite of plan

let plan_of_outcome = function
  | Converged p | Diverged p | Non_finite p -> p

let classify plan =
  if not (Float.is_finite plan.wall_clock) then Non_finite plan
  else if plan.converged then Converged plan
  else Diverged plan

let solve_outcome ?delta ?max_outer ?fixed_n ?n_max ?warm ?inject p =
  let plan =
    match inject with
    | Some Ckpt_chaos.Chaos.Non_finite ->
        (* Poison the initial wall-clock estimate: the outer loop's own
           finiteness guard must catch it and report a divergent plan —
           the injection exercises the real guard path, it does not
           fabricate the outcome. *)
        solve_with ?delta ?max_outer ?fixed_n ?n_max ~initial_estimate:Float.nan
          p
    | Some Ckpt_chaos.Chaos.Diverge ->
        (* Starve the outer fixed point of iterations (and of its warm
           start, whose seeded drift reference could legitimately settle
           in one round): the solve runs but cannot converge. *)
        solve_with ?delta ~max_outer:1 ?fixed_n ?n_max p
    | Some _ | None -> solve_with ?delta ?max_outer ?fixed_n ?n_max ?warm p
  in
  classify plan

type sweep_axis = [ `Scale | `Te | `Alloc ]

type sweep_stats = {
  points : int;
  warm_starts : int;
  inner_iterations : int;
  outer_iterations : int;
}

let sweep ?delta ?(n_max = 1e9) ?(warm = true) ~axis ~values p =
  check_problem p;
  Array.iteri
    (fun i v ->
      let bad =
        match axis with
        | `Scale | `Te -> not (Float.is_finite v) || v <= 0.
        | `Alloc -> not (Float.is_finite v) || v < 0.
      in
      if bad then
        invalid_arg (Printf.sprintf "Optimizer.sweep: bad value %g at index %d" v i))
    values;
  let points = Array.length values in
  (* Walk the grid in neighbour (sorted-value) order so each solve can
     reuse the previous converged plan; results return in input order. *)
  let order = Array.init points Fun.id in
  Array.sort
    (fun i j ->
      match compare values.(i) values.(j) with 0 -> compare i j | c -> c)
    order;
  let plans = Array.make points None in
  let prev = ref None in
  let warm_starts = ref 0 and inner = ref 0 and outer = ref 0 in
  Array.iter
    (fun idx ->
      let v = values.(idx) in
      let problem, fixed_n =
        match axis with
        | `Scale -> (p, Some v)
        | `Te -> ({ p with te = v }, None)
        | `Alloc -> ({ p with alloc = v }, None)
      in
      let warm_plan = if warm then !prev else None in
      if Option.is_some warm_plan then incr warm_starts;
      let plan = solve ?delta ?fixed_n ~n_max ?warm:warm_plan problem in
      inner := !inner + plan.inner_iterations;
      outer := !outer + plan.outer_iterations;
      plans.(idx) <- Some plan;
      (* A divergent or unconverged plan would poison its neighbour's
         start; break the chain and let the next point solve cold. *)
      prev :=
        if plan.converged && Float.is_finite plan.wall_clock then Some plan
        else None)
    order;
  let plans =
    Array.map (function Some plan -> plan | None -> assert false) plans
  in
  ( plans,
    { points;
      warm_starts = !warm_starts;
      inner_iterations = !inner;
      outer_iterations = !outer } )

let pp_sweep_stats ppf s =
  Format.fprintf ppf "%d points, %d warm-started, %d inner / %d outer iterations"
    s.points s.warm_starts s.inner_iterations s.outer_iterations

let single_level_problem p =
  let last = p.levels.(Array.length p.levels - 1) in
  let total =
    Array.fold_left ( +. ) 0. p.spec.Failure_spec.rates_per_day
  in
  { p with
    levels = [| last |];
    spec =
      Failure_spec.v ~baseline_scale:p.spec.Failure_spec.baseline_scale [| total |] }

let ml_opt_scale ?delta p = solve ?delta p

let ml_ori_scale ?delta ?n p =
  let n = Option.value n ~default:(Speedup.search_upper_bound p.speedup ~default:1e9) in
  solve ?delta ~fixed_n:n p

let sl_opt_scale ?delta p = solve ?delta (single_level_problem p)

let sl_ori_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Young's formula (Eq. 25): interval from the productive-time failure
     count; no self-consistent iteration. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let params = multilevel_params sl ~estimate:productive in
  let xs = Multilevel.young_init params ~n in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~converged:true

let sl_daly_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Daly's refinement of Young: same shape as [sl_ori_scale] but the
     interval count comes from the higher-order formula, which keeps the
     checkpoint cost term when it is not negligible next to the MTBF. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let ckpt_cost = Overhead.cost sl.levels.(0).Level.ckpt n in
  let failures =
    Failure_spec.rate_per_second sl.spec ~level:1 ~scale:n *. productive
  in
  let x = if ckpt_cost <= 0. then 1. else Daly.interval_count ~productive ~ckpt_cost ~failures in
  let xs = [| x |] in
  let params = multilevel_params sl ~estimate:productive in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~converged:true

let pp_plan ppf t =
  let b = t.breakdown in
  Format.fprintf ppf
    "@[<v>xs = [%s]@ N = %.0f@ E(Tw) = %.4g s (%.3f days)@ mus = [%s]@ \
     portions: productive=%.4g ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ \
     efficiency = %.4f@ iterations: outer=%d inner=%d converged=%b@]"
    (String.concat "; "
       (Array.to_list (Array.map (fun x -> Printf.sprintf "%.1f" x) t.xs)))
    t.n t.wall_clock
    (t.wall_clock /. Failure_spec.seconds_per_day)
    (String.concat "; "
       (Array.to_list (Array.map (fun m -> Printf.sprintf "%.2f" m) t.mus)))
    b.Multilevel.productive b.Multilevel.checkpoint b.Multilevel.restart
    b.Multilevel.allocation b.Multilevel.rollback t.efficiency t.outer_iterations
    t.inner_iterations t.converged
