(** Algorithm 1 of the paper: the complete optimizer.

    The inner convex subproblem ({!Multilevel.optimize}) assumes the
    expected failure counts [mu_i] depend only on the scale; in truth they
    scale with the wall-clock length, which is itself the objective.  The
    outer loop closes that circle: it re-estimates
    [mu_i(N) = lambda_i(N) * E(T_w)] from each new solution and repeats
    until the [mu_i] converge (threshold [delta], paper uses 1e-12).

    The module also packages the paper's four compared solutions
    (Section IV-A): ML/SL crossed with optimized/original scale. *)

type problem = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Speedup.t;
  levels : Level.t array;  (** the full hierarchy, cheapest level first *)
  alloc : float;  (** allocation period [A], seconds *)
  spec : Ckpt_failures.Failure_spec.t;
      (** per-level failure rates; must have one rate per level *)
}

type plan = {
  xs : float array;  (** interval counts per hierarchy level ([1.] = level unused) *)
  n : float;  (** execution scale *)
  wall_clock : float;  (** predicted [E(T_w)], seconds *)
  mus : float array;  (** expected failures per level over the run *)
  breakdown : Multilevel.breakdown;
  efficiency : float;  (** [(te / wall_clock) / n] — paper Section IV-A *)
  outer_iterations : int;
  inner_iterations : int;  (** total inner fixed-point iterations *)
  converged : bool;
}

val check_problem : problem -> unit
(** @raise Invalid_argument when the spec's level count differs from the
    hierarchy's. *)

val solve :
  ?delta:float ->
  ?max_outer:int ->
  ?fixed_n:float ->
  ?n_max:float ->
  ?warm:plan ->
  problem ->
  plan
(** Run Algorithm 1.  [delta] (default [1e-9]) bounds
    [max_i |mu_i' - mu_i|]; [fixed_n] pins the scale (ori-scale
    baselines); [n_max] bounds the scale search for peakless speedups.

    [warm] seeds the solve from a neighbouring problem's plan: its wall
    clock replaces the failure-free initial estimate and its [(xs, n)]
    initialize the inner fixed point ({!Multilevel.optimize}'s [init]).
    A [warm] plan whose level arity differs or whose wall clock is not
    finite-positive is ignored.  Warm starting moves only the starting
    point of the contraction, so the returned plan matches a cold solve
    to the solver tolerances while spending fewer iterations; omitting
    [warm] leaves the solve byte-identical to before. *)

type sweep_axis = [ `Scale | `Te | `Alloc ]
(** Which problem coordinate a sweep varies: [`Scale] pins [fixed_n] at
    each value, [`Te] substitutes the productive time, [`Alloc] the
    allocation period. *)

type sweep_stats = {
  points : int;
  warm_starts : int;  (** solves seeded from a neighbouring plan *)
  inner_iterations : int;  (** summed over the whole grid *)
  outer_iterations : int;
}

val sweep :
  ?delta:float ->
  ?n_max:float ->
  ?warm:bool ->
  axis:sweep_axis ->
  values:float array ->
  problem ->
  plan array * sweep_stats
(** [sweep ~axis ~values p] solves [p] at every grid value and returns
    the plans aligned with [values], plus iteration totals.  The grid is
    walked in sorted (neighbour) order so each solve warm-starts from
    the previous converged plan — divergent or unconverged points break
    the chain and the next point solves cold.  [warm:false] forces every
    point to solve cold (the baseline the regression benchmark compares
    against).  Values must be finite and positive ([`Alloc] allows 0).

    @raise Invalid_argument on a bad grid value. *)

val pp_sweep_stats : Format.formatter -> sweep_stats -> unit

val ml_opt_scale : ?delta:float -> problem -> plan
(** This paper's solution: all levels, optimized intervals and scale. *)

val ml_ori_scale : ?delta:float -> ?n:float -> problem -> plan
(** Prior work [22]: all levels, optimized intervals, scale fixed at [n]
    (default: the speedup's ideal scale). *)

val sl_opt_scale : ?delta:float -> problem -> plan
(** Jin-style baseline [23]: PFS level only (absorbing the total failure
    rate), optimized interval and scale. *)

val sl_ori_scale : ?n:float -> problem -> plan
(** Classic Young [3]: PFS level only, interval from Young's formula with
    the productive-time failure count, scale fixed at [n] (default: ideal
    scale).  No outer iteration — Young's formula is not self-consistent. *)

val single_level_problem : problem -> problem
(** The PFS-only collapse used by the SL baselines: keeps the last level
    and aggregates every level's failure rate onto it. *)

val pp_plan : Format.formatter -> plan -> unit
