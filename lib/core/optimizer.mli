(** Algorithm 1 of the paper: the complete optimizer.

    The inner convex subproblem ({!Multilevel.optimize}) assumes the
    expected failure counts [mu_i] depend only on the scale; in truth they
    scale with the wall-clock length, which is itself the objective.  The
    outer loop closes that circle: it re-estimates
    [mu_i(N) = lambda_i(N) * E(T_w)] from each new solution and repeats
    until the [mu_i] converge (threshold [delta], paper uses 1e-12).

    The module also packages the paper's four compared solutions
    (Section IV-A): ML/SL crossed with optimized/original scale. *)

type problem = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Speedup.t;
  levels : Level.t array;  (** the full hierarchy, cheapest level first *)
  alloc : float;  (** allocation period [A], seconds *)
  spec : Ckpt_failures.Failure_spec.t;
      (** per-level failure rates; must have one rate per level *)
}

type plan = {
  xs : float array;  (** interval counts per hierarchy level ([1.] = level unused) *)
  n : float;  (** execution scale *)
  wall_clock : float;  (** predicted [E(T_w)], seconds *)
  mus : float array;  (** expected failures per level over the run *)
  breakdown : Multilevel.breakdown;
  efficiency : float;  (** [(te / wall_clock) / n] — paper Section IV-A *)
  outer_iterations : int;
  inner_iterations : int;  (** total inner fixed-point iterations *)
  f_evals : int;  (** Eq. 24 derivative evaluations across all scale searches *)
  fallbacks : int;
      (** safeguard reversions: Aitken extrapolations whose iterate
          failed to beat the plain step's residual and were rolled back
          (always 0 on {!solve_reference}, and 0 on the paper's Table II
          corpus — the CI bench-smoke job gates on that) *)
  converged : bool;
}

val check_problem : problem -> unit
(** Boundary validation: every numeric field of the problem must be
    finite ([te > 0], [alloc >= 0], rates [>= 0], positive baseline
    scale, finite overhead coefficients with [eps >= 0], and a speedup
    that is finite-positive at [N = 1] with a finite ideal scale) — a
    NaN or [±inf] anywhere would otherwise slip past the range checks
    and surface as a NaN plan deep in the fixed point.
    @raise Invalid_argument on any violation, including a spec whose
    level count differs from the hierarchy's. *)

val solve :
  ?delta:float ->
  ?max_outer:int ->
  ?fixed_n:float ->
  ?n_max:float ->
  ?warm:plan ->
  problem ->
  plan
(** Run Algorithm 1.  [delta] (default [1e-9]) bounds
    [max_i |mu_i' - mu_i|]; [fixed_n] pins the scale (ori-scale
    baselines); [n_max] bounds the scale search for peakless speedups.

    [warm] seeds the solve from a neighbouring problem's plan: its wall
    clock replaces the failure-free initial estimate and its [(xs, n)]
    initialize the inner fixed point ({!Multilevel.optimize}'s [init]).
    A [warm] plan whose level arity differs or whose wall clock is not
    finite-positive is ignored.  Warm starting moves only the starting
    point of the contraction, so the returned plan matches a cold solve
    to the solver tolerances while spending fewer iterations.

    The solve runs accelerated end to end: {!Multilevel.optimize}'s
    superlinear scale search and safeguarded Aitken extrapolation
    inside each round, Anderson(1) secant steps on the outer wall-clock
    estimate (gated a priori, degrading to the plain fixed-point step),
    and warm-seeded outer rounds — each round resumes from the previous
    round's solution while the mu drift keeps contracting, switching to
    the reference's cold-round discipline for the endgame once the
    warm-seeding noise floor is reached.  The contract against
    {!solve_reference} is plan equivalence: same integer scale, E(T_w)
    within 1e-9 relative. *)

val solve_reference :
  ?delta:float ->
  ?max_outer:int ->
  ?fixed_n:float ->
  ?n_max:float ->
  ?warm:plan ->
  problem ->
  plan
(** {!solve} with plain bisection, plain fixed-point steps and cold
    outer rounds ({!Multilevel.optimize_reference}, no workspace) — the
    correctness oracle: {!solve}, {!solve_batch} and {!sweep} must all
    produce plan-equivalent results, which the fastpath property tests
    check. *)

(** One problem of a batch solve: [fixed_n]/[delta] as in {!solve}. *)
type batch_job = { problem : problem; fixed_n : float option; delta : float }

val batch_job : ?delta:float -> ?fixed_n:float -> problem -> batch_job
(** [delta] defaults to [1e-9], matching {!solve}. *)

val solve_batch :
  ?max_outer:int -> ?n_max:float -> batch_job array -> plan array
(** Solve K problems in one pass over the struct-of-arrays batch
    workspace (one per domain): problem terms live in contiguous
    per-level stripes, the Algorithm-1 outer loop runs allocation-free
    per row, overhead-law terms are cached per scale across the outer
    rounds, and neighbouring rows that share a hierarchy and scale
    share those terms outright.  Plans return in job order.

    Rows are {e solved} in scale order ([fixed_n], else the speedup's
    ideal scale): each row warm-starts from the nearest
    already-converged row of the same hierarchy — seeded xs, scale
    bracket and mu estimate — the cross-row twin of {!sweep}'s
    neighbour walk.  A diverged row is skipped as a seed source, not a
    chain breaker.

    Contract: each row's plan is plan-equivalent to
    [solve_reference ?delta ?fixed_n problem] of its job — same integer
    scale, E(T_w) within 1e-9 relative — with the evaluation kernels
    themselves bit-identical; the fastpath property tests check both.

    @raise Invalid_argument if any job's problem fails
    {!check_problem}. *)

(** How a solve ended.  [solve] already hard-caps both iteration layers
    ([max_outer], {!Multilevel.optimize}'s [max_iter]), so it always
    terminates; the outcome makes the three terminal states explicit
    instead of leaving callers to decode [converged]/[wall_clock]:

    - [Converged]: the fixed point settled — the plan is trustworthy;
    - [Diverged]: the iteration caps ran out before the [mu] drift fell
      under [delta] — the plan is the best iterate, not an optimum;
    - [Non_finite]: the failure burden exceeds what any schedule can
      absorb (paper Section III-D) or an estimate went NaN — the plan's
      wall clock is not finite and must not be served. *)
type outcome = Converged of plan | Diverged of plan | Non_finite of plan

val classify : plan -> outcome
(** Classify a finished solve: non-finite wall clock wins, then
    [converged]. *)

val plan_of_outcome : outcome -> plan

val solve_outcome :
  ?delta:float ->
  ?max_outer:int ->
  ?fixed_n:float ->
  ?n_max:float ->
  ?warm:plan ->
  ?inject:Ckpt_chaos.Chaos.fault ->
  problem ->
  outcome
(** {!solve}, classified.  Without [inject] the underlying plan is
    byte-identical to {!solve}'s.  [inject] applies a chaos fault to
    this solve: [Diverge] starves the outer loop of iterations (and of
    its warm start) so it cannot settle, [Non_finite] poisons the
    initial wall-clock estimate with NaN so the loop's own finiteness
    guard trips; both exercise the real failure paths rather than
    fabricating an outcome.  Other faults are ignored here. *)

type sweep_axis = [ `Scale | `Te | `Alloc ]
(** Which problem coordinate a sweep varies: [`Scale] pins [fixed_n] at
    each value, [`Te] substitutes the productive time, [`Alloc] the
    allocation period. *)

type sweep_stats = {
  points : int;
  warm_starts : int;  (** solves seeded from a neighbouring plan *)
  inner_iterations : int;  (** summed over the whole grid *)
  outer_iterations : int;
  f_evals : int;  (** Eq. 24 evaluations summed over the whole grid *)
}

val sweep :
  ?delta:float ->
  ?n_max:float ->
  ?warm:bool ->
  axis:sweep_axis ->
  values:float array ->
  problem ->
  plan array * sweep_stats
(** [sweep ~axis ~values p] solves [p] at every grid value and returns
    the plans aligned with [values], plus iteration totals.  The grid is
    walked in sorted (neighbour) order so each solve warm-starts from
    the previous converged plan — divergent or unconverged points break
    the chain and the next point solves cold.  [warm:false] forces every
    point to solve cold (the baseline the regression benchmark compares
    against).  Values must be finite and positive ([`Alloc] allows 0).

    @raise Invalid_argument on a bad grid value. *)

val pp_sweep_stats : Format.formatter -> sweep_stats -> unit

val ml_opt_scale : ?delta:float -> problem -> plan
(** This paper's solution: all levels, optimized intervals and scale. *)

val ml_ori_scale : ?delta:float -> ?n:float -> problem -> plan
(** Prior work [22]: all levels, optimized intervals, scale fixed at [n]
    (default: the speedup's ideal scale). *)

val sl_opt_scale : ?delta:float -> problem -> plan
(** Jin-style baseline [23]: PFS level only (absorbing the total failure
    rate), optimized interval and scale. *)

val sl_ori_scale : ?n:float -> problem -> plan
(** Classic Young [3]: PFS level only, interval from Young's formula with
    the productive-time failure count, scale fixed at [n] (default: ideal
    scale).  No outer iteration — Young's formula is not self-consistent. *)

val sl_daly_scale : ?n:float -> problem -> plan
(** Daly's higher-order refinement [4] of {!sl_ori_scale}: PFS level
    only, interval count from {!Daly.interval_count} (which keeps the
    checkpoint-cost correction Young drops), scale fixed at [n]
    (default: ideal scale).  Like Young, not self-consistent — the
    wall clock is the one-shot Eq. (21) evaluation of the pinned plan. *)

val single_level_problem : problem -> problem
(** The PFS-only collapse used by the SL baselines: keeps the last level
    and aggregates every level's failure rate onto it. *)

val pp_plan : Format.formatter -> plan -> unit
