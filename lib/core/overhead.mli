(** Checkpoint and restart overhead laws (paper Eq. 19/20):

    [C_i(N) = eps_i + alpha_i * H_c(N)]    and
    [R_i(N) = eta_i + beta_i * H_r(N)],

    where the baseline function [H] passes through the origin — [H = 0]
    for scale-independent overheads (levels 1–3 on Fusion, Table II) and
    [H(N) = N] for the linearly growing PFS overhead.  Coefficients come
    from least-squares fits of measured overheads. *)

type t = {
  eps : float;  (** constant part, seconds; must be >= 0 *)
  alpha : float;  (** coefficient of the baseline function *)
  h : Scale_fn.t;  (** baseline function [H]; [H(0) = 0] expected *)
  h_name : string;
}

val constant : float -> t
(** [constant c] is [C(N) = c]. *)

val linear : eps:float -> alpha:float -> t
(** [linear ~eps ~alpha] is [C(N) = eps + alpha * N]. *)

val custom : eps:float -> alpha:float -> h:Scale_fn.t -> h_name:string -> t

val cost : t -> float -> float
(** [cost t n] is [C(N)]. *)

val cost' : t -> float -> float
(** Derivative with respect to the scale. *)

val scaled : t -> float -> t
(** [scaled t f] multiplies both coefficients by [f > 0], preserving the
    baseline function [H] (and hence serializability).  Telemetry-driven
    re-estimation calibrates a prior law to observed costs this way.
    @raise Invalid_argument when [f <= 0]. *)

val law : t -> Scale_fn.t

val fit :
  ?h:Scale_fn.t ->
  ?h_name:string ->
  ?snap:float ->
  scales:float array ->
  costs:float array ->
  unit ->
  t
(** [fit ~scales ~costs ()] least-squares fits [eps] and [alpha] against
    the baseline [h] (default [H(N) = N]).  A fitted [alpha] smaller in
    magnitude than [snap] (default [0.], i.e. never) is snapped to [0.] —
    the paper classifies levels 1–3 as constant this way. *)

val pp : Format.formatter -> t -> unit
