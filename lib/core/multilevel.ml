module Roots = Ckpt_numerics.Roots

type params = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  mus : Scale_fn.t array;
}

type solution = {
  xs : float array;
  n : float;
  wall_clock : float;
  iterations : int;
  f_evals : int;
  fallbacks : int;
  converged : bool;
}

type breakdown = {
  productive : float;
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
}

let check_params p =
  if Array.length p.levels = 0 then invalid_arg "Multilevel: no levels";
  if Array.length p.levels <> Array.length p.mus then
    invalid_arg "Multilevel: levels and mus sizes differ";
  if p.te < 0. then invalid_arg "Multilevel: negative productive time";
  if p.alloc < 0. then invalid_arg "Multilevel: negative allocation period"

let num_levels p = Array.length p.levels

let ckpt_cost p i n = Overhead.cost p.levels.(i - 1).Level.ckpt n
let ckpt_cost' p i n = Overhead.cost' p.levels.(i - 1).Level.ckpt n
let restart_cost p i n = Overhead.cost p.levels.(i - 1).Level.restart n
let restart_cost' p i n = Overhead.cost' p.levels.(i - 1).Level.restart n
let mu p i n = p.mus.(i - 1).Scale_fn.f n
let mu' p i n = p.mus.(i - 1).Scale_fn.f' n

(* Eq. (18): T_e/(g 2 x_i) + sum_{k<=i} C_k x_k / (2 x_i). *)
let expected_rollback p ~xs ~n ~level =
  assert (level >= 1 && level <= num_levels p);
  let g = Speedup.eval p.speedup n in
  let acc = ref (p.te /. g) in
  for k = 1 to level do
    acc := !acc +. (ckpt_cost p k n *. xs.(k - 1))
  done;
  !acc /. (2. *. xs.(level - 1))

let expected_wall_clock p ~xs ~n =
  assert (Array.length xs = num_levels p);
  Array.iter (fun x -> assert (x >= 1.)) xs;
  assert (n > 0.);
  let g = Speedup.eval p.speedup n in
  let acc = ref (p.te /. g) in
  for i = 1 to num_levels p do
    acc := !acc +. (ckpt_cost p i n *. (xs.(i - 1) -. 1.));
    acc :=
      !acc
      +. mu p i n
         *. (expected_rollback p ~xs ~n ~level:i +. p.alloc +. restart_cost p i n)
  done;
  !acc

let breakdown p ~xs ~n =
  let g = Speedup.eval p.speedup n in
  let productive = p.te /. g in
  let checkpoint = ref 0. and restart = ref 0. and allocation = ref 0. in
  let rollback = ref 0. in
  for i = 1 to num_levels p do
    let m = mu p i n in
    checkpoint := !checkpoint +. (ckpt_cost p i n *. (xs.(i - 1) -. 1.));
    restart := !restart +. (m *. restart_cost p i n);
    allocation := !allocation +. (m *. p.alloc);
    rollback := !rollback +. (m *. expected_rollback p ~xs ~n ~level:i)
  done;
  { productive; checkpoint = !checkpoint; restart = !restart;
    allocation = !allocation; rollback = !rollback }

(* Eq. (23). *)
let d_dx p ~xs ~n ~level =
  assert (level >= 1 && level <= num_levels p);
  let g = Speedup.eval p.speedup n in
  let ci = ckpt_cost p level n in
  let xi = xs.(level - 1) in
  let lower = ref (p.te /. g) in
  for j = 1 to level - 1 do
    lower := !lower +. (ckpt_cost p j n *. xs.(j - 1))
  done;
  let higher = ref 0. in
  for j = level + 1 to num_levels p do
    higher := !higher +. (mu p j n /. xs.(j - 1))
  done;
  ci -. (mu p level n /. (2. *. xi *. xi) *. !lower) +. (ci /. 2. *. !higher)

(* Eq. (24). *)
let d_dn p ~xs ~n =
  let g = Speedup.eval p.speedup n in
  let g' = Speedup.eval' p.speedup n in
  let acc = ref (-.p.te *. g' /. (g *. g)) in
  for i = 1 to num_levels p do
    let xi = xs.(i - 1) in
    let m = mu p i n and m' = mu' p i n in
    (* d/dN of C_i (x_i - 1) *)
    acc := !acc +. (ckpt_cost' p i n *. (xi -. 1.));
    (* d/dN of mu_i * T_e/(g 2 x_i) *)
    acc := !acc +. (m' *. p.te /. (2. *. xi *. g));
    acc := !acc -. (m *. p.te *. g' /. (2. *. xi *. g *. g));
    (* d/dN of mu_i * (sum_{k<=i} C_k x_k / (2 x_i) + A + R_i) *)
    let repaid = ref 0. and repaid' = ref 0. in
    for k = 1 to i do
      repaid := !repaid +. (ckpt_cost p k n *. xs.(k - 1));
      repaid' := !repaid' +. (ckpt_cost' p k n *. xs.(k - 1))
    done;
    let repaid = !repaid /. (2. *. xi) and repaid' = !repaid' /. (2. *. xi) in
    acc := !acc +. (m' *. (repaid +. p.alloc +. restart_cost p i n));
    acc := !acc +. (m *. (repaid' +. restart_cost' p i n))
  done;
  !acc

(* Solve Eq. (23) for x_level with everything else held fixed. *)
let x_update p ~xs ~n ~level =
  let g = Speedup.eval p.speedup n in
  let ci = ckpt_cost p level n in
  if ci <= 0. then 1.
  else begin
    let lower = ref (p.te /. g) in
    for j = 1 to level - 1 do
      lower := !lower +. (ckpt_cost p j n *. xs.(j - 1))
    done;
    let higher = ref 0. in
    for j = level + 1 to num_levels p do
      higher := !higher +. (mu p j n /. xs.(j - 1))
    done;
    let denom = 2. *. ci *. (1. +. (!higher /. 2.)) in
    Float.max 1. (sqrt (mu p level n *. !lower /. denom))
  end

(* Eq. (25). *)
let young_init p ~n =
  let g = Speedup.eval p.speedup n in
  Array.init (num_levels p) (fun idx ->
      let i = idx + 1 in
      let ci = ckpt_cost p i n in
      if ci <= 0. then 1.
      else Float.max 1. (sqrt (mu p i n *. p.te /. g /. (2. *. ci))))

let solve_scale ?evals ?hint p ~xs ~n_hi =
  let f n =
    (match evals with Some e -> incr e | None -> ());
    d_dn p ~xs ~n
  in
  if f n_hi <= 0. then n_hi
  else if f 1. >= 0. then 1.
  else begin
    (* Warm start: the root moves little between neighbouring sweep
       points, so grow a geometric bracket around the previous one and
       only fall back to the full [1, n_hi] interval if the sign
       condition never holds.  Termination: [lo] decays to 1 and [hi]
       grows to [n_hi], where the guards above established the signs. *)
    let lo, hi =
      match hint with
      | Some h when h > 1. && h < n_hi ->
          let rec widen lo hi =
            let lo_ok = f lo < 0. and hi_ok = f hi > 0. in
            if lo_ok && hi_ok then (lo, hi)
            else
              let lo' = if lo_ok then lo else Float.max 1. (lo /. 4.) in
              let hi' = if hi_ok then hi else Float.min n_hi (hi *. 4.) in
              widen lo' hi'
          in
          widen (Float.max 1. (h /. 2.)) (Float.min n_hi (h *. 2.))
      | _ -> (1., n_hi)
    in
    (Roots.bisect_integer ~f ~lo ~hi ()).Roots.root
  end

let optimize_reference ?(tol = 1e-6) ?(max_iter = 10_000) ?(n_max = 1e9) ?fixed_n ?init
    p =
  check_params p;
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let warm_n =
    match init with
    | Some (_, n) when Float.is_finite n && n >= 1. -> Some (Float.min n_hi n)
    | _ -> None
  in
  let n0 =
    match (fixed_n, warm_n) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> n_hi
  in
  let xs =
    match init with
    | Some (xs0, _) when Array.length xs0 = num_levels p ->
        Array.map (fun x -> if Float.is_finite x && x > 1. then x else 1.) xs0
    | _ -> young_init p ~n:n0
  in
  (* Only the first warm iteration narrows the scale bisection: later
     iterations use the full bracket, whose fixed width keeps n' stable
     as xs converges (a moving bracket makes the width-0.5 bisection
     jitter by up to the convergence threshold and cycle).  The cold
     path never brackets around a hint, so it stays byte-identical. *)
  let hinted = init <> None in
  let evals = ref 0 in
  let rec loop xs n iter =
    if iter >= max_iter then
      { xs; n; wall_clock = expected_wall_clock p ~xs ~n; iterations = iter;
        f_evals = !evals; fallbacks = 0; converged = false }
    else begin
      let xs' = Array.copy xs in
      for level = 1 to num_levels p do
        xs'.(level - 1) <- x_update p ~xs:xs' ~n ~level
      done;
      let n' =
        match fixed_n with
        | Some n -> n
        | None ->
            let hint = if hinted && iter = 0 then Some n else None in
            solve_scale ~evals ?hint p ~xs:xs' ~n_hi
      in
      let dx = Ckpt_numerics.Fixed_point.max_abs_diff xs xs' in
      if dx <= tol && Float.abs (n' -. n) <= 0.5 then
        { xs = xs'; n = n';
          wall_clock = expected_wall_clock p ~xs:xs' ~n:n';
          iterations = iter + 1; f_evals = !evals; fallbacks = 0;
          converged = true }
      else loop xs' n' (iter + 1)
    end
  in
  loop xs n0 0

(* ------------------------------------------------------------------ *)
(* Fast path: the same iteration evaluated through a reusable
   {!Ckpt_fastpath.Workspace}.  [fill] caches every per-level term at
   one scale (the workspace key), so a fixed-n Gauss–Seidel sweep
   re-evaluates no overhead law and allocates nothing, and each scale
   probed by the Eq. 24 search fills exactly once.

   Every *evaluation kernel* is bit-identical to its reference twin
   above (see lib/fastpath/README.md).  The *iteration* is accelerated
   — ITP with bisection replay for the Eq. 24 scale search, safeguarded
   Aitken extrapolation on the xs fixed point — so the solver contract
   against [optimize_reference] is plan equivalence, not bitwise
   trajectory equality: the same integer scale and an E(T_w) within
   1e-9 relative, in fewer iterations.  Every accelerated step is
   safeguarded by an exact plain-step fallback (counted in
   [fallbacks]); the property tests in test/test_fastpath.ml compare
   the two paths on random problems, warm starts and batch shapes. *)

module Workspace = Ckpt_fastpath.Workspace
module Eval = Ckpt_fastpath.Eval

(* Speedup terms by form, replicating each constructor's closure
   arithmetic exactly; laws without a special form (including Custom)
   evaluate through the shape-dispatched [Scale_fn.eval]. *)
let fill_speedup sp n s =
  match sp.Speedup.form with
  | Speedup.Quadratic { kappa; n_star } ->
      let a = -.kappa /. (2. *. n_star) in
      s.(Workspace.slot_g) <- (a *. n *. n) +. (kappa *. n);
      s.(Workspace.slot_gd) <- (2. *. a *. n) +. kappa
  | Speedup.Amdahl { serial_fraction = sf; _ } ->
      let denom = sf +. ((1. -. sf) /. n) in
      s.(Workspace.slot_g) <- 1. /. denom;
      s.(Workspace.slot_gd) <- (1. -. sf) /. (n *. n *. denom *. denom)
  | Speedup.Linear _ | Speedup.Gustafson _ | Speedup.Custom ->
      s.(Workspace.slot_g) <- Scale_fn.eval sp.Speedup.law n;
      s.(Workspace.slot_gd) <- Scale_fn.eval' sp.Speedup.law n

let fill ws p n =
  let s = ws.Workspace.s in
  if s.(Workspace.slot_key) <> n then begin
    fill_speedup p.speedup n s;
    for i = 0 to num_levels p - 1 do
      let lvl = p.levels.(i) in
      ws.Workspace.ci.(i) <- Overhead.cost lvl.Level.ckpt n;
      ws.Workspace.ci_d.(i) <- Overhead.cost' lvl.Level.ckpt n;
      ws.Workspace.ri.(i) <- Overhead.cost lvl.Level.restart n;
      ws.Workspace.ri_d.(i) <- Overhead.cost' lvl.Level.restart n;
      ws.Workspace.mi.(i) <- Scale_fn.eval p.mus.(i) n;
      ws.Workspace.mi_d.(i) <- Scale_fn.eval' p.mus.(i) n
    done;
    s.(Workspace.slot_key) <- n
  end

(* Mirrors [solve_scale] with [d_dn] reading cached terms, through
   [Roots.itp_integer]: superlinear ITP probes refine the bracket, then
   the exact bisection recurrence is replayed over it, so the returned
   scale is bitwise the one [solve_scale]'s plain bisection finds (at
   the same xs) in a fraction of the Eq. 24 evaluations.  Leaves the
   workspace filled at the last probed scale. *)
let solve_scale_ws ws ?hint p ~n_hi =
  let s = ws.Workspace.s in
  let f n =
    s.(Workspace.slot_fevals) <- s.(Workspace.slot_fevals) +. 1.;
    fill ws p n;
    Eval.d_dn ws ~te:p.te ~alloc:p.alloc
  in
  let f_hi = f n_hi in
  if f_hi <= 0. then n_hi
  else begin
    let f_1 = f 1. in
    if f_1 >= 0. then 1.
    else begin
      let lo, hi, flo, fhi =
        match hint with
        | Some h when h > 1. && h < n_hi ->
            let rec widen lo hi =
              let flo = f lo and fhi = f hi in
              if flo < 0. && fhi > 0. then (lo, hi, flo, fhi)
              else
                let lo' = if flo < 0. then lo else Float.max 1. (lo /. 4.) in
                let hi' = if fhi > 0. then hi else Float.min n_hi (hi *. 4.) in
                widen lo' hi'
            in
            widen (Float.max 1. (h /. 2.)) (Float.min n_hi (h *. 2.))
        | _ -> (1., n_hi, f_1, f_hi)
      in
      (Roots.itp_integer ~flo ~fhi ~f ~lo ~hi ()).Roots.root
    end
  end

(* One workspace per domain: [optimize] is not reentrant within a
   domain (nothing in this library calls it from inside a solve), and
   domains never share a workspace. *)
let ws_key = Domain.DLS.new_key (fun () -> Workspace.create ())

let optimize ?(tol = 1e-6) ?(max_iter = 10_000) ?(n_max = 1e9) ?fixed_n ?init p =
  check_params p;
  let ws = Domain.DLS.get ws_key in
  Workspace.reserve ws ~levels:(num_levels p);
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let warm_n =
    match init with
    | Some (_, n) when Float.is_finite n && n >= 1. -> Some (Float.min n_hi n)
    | _ -> None
  in
  let n0 =
    match (fixed_n, warm_n) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> n_hi
  in
  (match init with
  | Some (xs0, _) when Array.length xs0 = num_levels p ->
      for i = 0 to num_levels p - 1 do
        let x = xs0.(i) in
        ws.Workspace.xs.(i) <- (if Float.is_finite x && x > 1. then x else 1.)
      done
  | _ ->
      fill ws p n0;
      Eval.young_init ws ~te:p.te);
  let hinted = init <> None in
  (* Warm-seeded solves skip Aitken: they start inside the contraction
     ball, where the step history is dominated by the seed's tol-scale
     path noise rather than a geometric tail, so attempts are almost
     always rejected — each one a wasted iteration and a counted
     fallback.  Cold solves (Young init) keep the full Steffensen
     cadence. *)
  let accel = not hinted in
  let finish n iter converged =
    (* The reference evaluates E(T_w) at the final (xs, n); fill makes
       the terms valid at [n] (a no-op when the key already is). *)
    fill ws p n;
    let wall_clock = Eval.expected_wall_clock ws ~te:p.te ~alloc:p.alloc in
    { xs = Workspace.xs_copy ws;
      n;
      wall_clock;
      iterations = iter;
      f_evals = int_of_float ws.Workspace.s.(Workspace.slot_fevals);
      fallbacks = int_of_float ws.Workspace.s.(Workspace.slot_fallbacks);
      converged }
  in
  (* The scale iterate rides in a workspace slot: a float argument of a
     non-inlined recursive loop would box on every iteration.  The
     Aitken state (history depth, pending flag, fallback residual and
     scale) rides in slots for the same reason.

     Step discipline (Steffensen cadence with a residual safeguard):
     plain Gauss–Seidel steps build a three-iterate history; once three
     consecutive plain steps are banked — enough for the Young-init
     transient to die out, measured on the paper's Table II corpus —
     [Eval.aitken] extrapolates the geometric tail and the *next* step
     measures the extrapolated iterate's residual.  If it beat the last
     plain residual the jump is kept and the history restarts from
     scratch (the post-jump steps are their own transient); otherwise
     the step is reverted to the saved plain iterate and counted as a
     fallback — so a rejected extrapolation costs one iteration and
     never changes what the plain iteration would have produced. *)
  let s = ws.Workspace.s in
  s.(Workspace.slot_n) <- n0;
  s.(Workspace.slot_fevals) <- 0.;
  s.(Workspace.slot_fallbacks) <- 0.;
  s.(Workspace.slot_hist) <- 0.;
  s.(Workspace.slot_accel) <- 0.;
  let rec loop iter =
    let n = s.(Workspace.slot_n) in
    if iter >= max_iter then finish n iter false
    else begin
      Eval.rotate_xs ws;
      if s.(Workspace.slot_key) <> n then fill ws p n;
      Eval.x_sweep ws ~te:p.te;
      let n' =
        match fixed_n with
        | Some n -> n
        | None ->
            let hint = if hinted && iter = 0 then Some n else None in
            solve_scale_ws ws ?hint p ~n_hi
      in
      let dx = Eval.max_abs_diff_xs ws in
      let pending = s.(Workspace.slot_accel) = 1. in
      s.(Workspace.slot_accel) <- 0.;
      if pending && not (Float.is_finite dx && dx < s.(Workspace.slot_dxref))
      then begin
        (* rejected extrapolation: revert to the saved plain iterate and
           scale, whose convergence test already ran (and failed) *)
        s.(Workspace.slot_fallbacks) <- s.(Workspace.slot_fallbacks) +. 1.;
        Eval.restore_xs ws;
        s.(Workspace.slot_n) <- s.(Workspace.slot_nsafe);
        s.(Workspace.slot_hist) <- 0.;
        loop (iter + 1)
      end
      else begin
        (* an accepted extrapolation restarts the history at the
           (z, phi z) pair; a plain step extends it *)
        s.(Workspace.slot_hist) <-
          (if pending then 0. else s.(Workspace.slot_hist) +. 1.);
        if dx <= tol && Float.abs (n' -. n) <= 0.5 then finish n' (iter + 1) true
        else begin
          s.(Workspace.slot_n) <- n';
          if accel && s.(Workspace.slot_hist) >= 3. && Eval.aitken ws
          then begin
            s.(Workspace.slot_accel) <- 1.;
            s.(Workspace.slot_dxref) <- dx;
            s.(Workspace.slot_nsafe) <- n';
            s.(Workspace.slot_hist) <- 0.
          end;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

(* Fast E(T_w) through a private workspace — the evaluation twin the
   property tests exercise directly. *)
let expected_wall_clock_fast ws p ~xs ~n =
  Workspace.reserve ws ~levels:(num_levels p);
  Array.blit xs 0 ws.Workspace.xs 0 (num_levels p);
  fill ws p n;
  Eval.expected_wall_clock ws ~te:p.te ~alloc:p.alloc
