module Derivative = Ckpt_numerics.Derivative

type shape =
  | Const of float
  | Affine of { intercept : float; slope : float }
  | Opaque

type t = { f : float -> float; f' : float -> float; shape : shape }

let const c = { f = (fun _ -> c); f' = (fun _ -> 0.); shape = Const c }

let linear ?(intercept = 0.) ~slope () =
  { f = (fun n -> intercept +. (slope *. n));
    f' = (fun _ -> slope);
    shape = Affine { intercept; slope } }

let opaque ~f ~f' = { f; f'; shape = Opaque }

(* Folding the factor into an Affine shape would change the arithmetic
   ([c*i + c*s*n] vs [c * (i + s*n)]) and therefore the bits, so derived
   laws stay Opaque and evaluate through their closures. *)
let scale c t = opaque ~f:(fun n -> c *. t.f n) ~f':(fun n -> c *. t.f' n)

let add a b = opaque ~f:(fun n -> a.f n +. b.f n) ~f':(fun n -> a.f' n +. b.f' n)

let of_fun ?h f = opaque ~f ~f':(fun x -> Derivative.central ?h ~f x)

(* Shape-dispatched evaluation, bit-identical to calling the closures:
   each arm replicates the corresponding constructor's closure body, so
   fast paths can evaluate laws without a closure call (and without
   boxing the argument/result when the caller is inlined). *)
let eval t n =
  match t.shape with
  | Const c -> c
  | Affine { intercept; slope } -> intercept +. (slope *. n)
  | Opaque -> t.f n

let eval' t n =
  match t.shape with
  | Const _ -> 0.
  | Affine { slope; _ } -> slope
  | Opaque -> t.f' n

let check_derivative ?(at = [ 1.; 10.; 1e3; 1e5 ]) ?(tol = 1e-4) t =
  List.for_all
    (fun x ->
      let numeric = Derivative.richardson ~f:t.f x in
      let analytic = t.f' x in
      let scale = Float.max 1. (Float.abs analytic) in
      Float.abs (numeric -. analytic) /. scale <= tol)
    at
