type form =
  | Linear of { kappa : float }
  | Quadratic of { kappa : float; n_star : float }
  | Amdahl of { serial_fraction : float; peak : float }
  | Gustafson of { serial_fraction : float; peak : float }
  | Custom

type t = { name : string; form : form; law : Scale_fn.t; n_ideal : float option }

let linear ~kappa =
  assert (kappa > 0.);
  { name = Printf.sprintf "linear(kappa=%g)" kappa;
    form = Linear { kappa };
    law = Scale_fn.linear ~slope:kappa ();
    n_ideal = None }

let quadratic ~kappa ~n_star =
  assert (kappa > 0. && n_star > 0.);
  let a = -.kappa /. (2. *. n_star) in
  { name = Printf.sprintf "quadratic(kappa=%g, n_star=%g)" kappa n_star;
    form = Quadratic { kappa; n_star };
    law =
      Scale_fn.opaque
        ~f:(fun n -> (a *. n *. n) +. (kappa *. n))
        ~f':(fun n -> (2. *. a *. n) +. kappa);
    n_ideal = Some n_star }

let amdahl ~serial_fraction ~peak =
  assert (serial_fraction >= 0. && serial_fraction < 1. && peak > 0.);
  let s = serial_fraction in
  { name = Printf.sprintf "amdahl(s=%g)" s;
    form = Amdahl { serial_fraction; peak };
    law =
      Scale_fn.opaque
        ~f:(fun n -> 1. /. (s +. ((1. -. s) /. n)))
        ~f':(fun n ->
          let denom = s +. ((1. -. s) /. n) in
          (1. -. s) /. (n *. n *. denom *. denom));
    n_ideal = Some peak }

let gustafson ~serial_fraction ~peak =
  assert (serial_fraction >= 0. && serial_fraction < 1. && peak > 0.);
  let s = serial_fraction in
  { name = Printf.sprintf "gustafson(s=%g)" s;
    form = Gustafson { serial_fraction; peak };
    law = Scale_fn.linear ~intercept:s ~slope:(1. -. s) ();
    n_ideal = Some peak }

let of_form = function
  | Linear { kappa } -> linear ~kappa
  | Quadratic { kappa; n_star } -> quadratic ~kappa ~n_star
  | Amdahl { serial_fraction; peak } -> amdahl ~serial_fraction ~peak
  | Gustafson { serial_fraction; peak } -> gustafson ~serial_fraction ~peak
  | Custom -> invalid_arg "Speedup.of_form: Custom is not reconstructible"

let custom ~name ~law ~n_ideal = { name; form = Custom; law; n_ideal }

let of_quadratic_fit ~kappa ~quad_coefficient =
  assert (kappa > 0. && quad_coefficient < 0.);
  (* g(N) = kappa N + a N^2 with a = -kappa / (2 n_star). *)
  let n_star = -.kappa /. (2. *. quad_coefficient) in
  quadratic ~kappa ~n_star

let eval t n =
  assert (n > 0.);
  t.law.Scale_fn.f n

let eval' t n = t.law.Scale_fn.f' n

let productive_time t ~te ~n =
  assert (te >= 0.);
  let g = eval t n in
  assert (g > 0.);
  te /. g

let search_upper_bound t ~default =
  match t.n_ideal with Some n -> n | None -> default

let pp ppf t = Format.pp_print_string ppf t.name
