(* Reusable per-solve scratch memory.  See workspace.mli and README.md
   for the invariants; the short version: every float the inner solver
   loops touch lives in one of these preallocated arrays, so an inner
   iteration performs no heap allocation.  Scalars live in [s] because a
   mutable float field of a mixed record (or a [float ref]) boxes on
   every write under the non-flambda compiler, while a [float array]
   store is an unboxed write. *)

type t = {
  mutable levels : int;
  mutable ci : float array;  (* C_i(n), checkpoint cost per level *)
  mutable ci_d : float array;  (* C_i'(n) *)
  mutable ri : float array;  (* R_i(n), restart cost per level *)
  mutable ri_d : float array;  (* R_i'(n) *)
  mutable mi : float array;  (* mu_i(n), expected failures per level *)
  mutable mi_d : float array;  (* mu_i'(n) *)
  mutable xs : float array;  (* current interval-count iterate *)
  mutable xs_prev : float array;  (* previous iterate, for convergence *)
  mutable xs_prev2 : float array;  (* the iterate before that, for Aitken *)
  mutable xs_safe : float array;  (* plain iterate saved across an extrapolation *)
  s : float array;  (* scalar slots, see below *)
}

(* Scalar slots.  [slot_key] holds the scale [n] the per-level term
   arrays were filled at (nan = nothing filled); [slot_g]/[slot_gd] the
   speedup value and derivative at that scale; the rest are accumulator
   scratch for the evaluation kernels plus the accelerated fixed-point
   loop's state (history depth, pending-extrapolation flag, the residual
   and scale to fall back to, and the f-eval / fallback counters). *)
let slot_key = 0
let slot_g = 1
let slot_gd = 2
let slot_acc = 3
let slot_acc2 = 4
let slot_acc3 = 5
let slot_n = 6
let slot_fevals = 7
let slot_fallbacks = 8
let slot_hist = 9
let slot_accel = 10
let slot_dxref = 11
let slot_nsafe = 12
let num_slots = 13

let create ?(levels = 4) () =
  let levels = max 1 levels in
  let mk () = Array.make levels 0. in
  { levels;
    ci = mk (); ci_d = mk ();
    ri = mk (); ri_d = mk ();
    mi = mk (); mi_d = mk ();
    xs = mk (); xs_prev = mk ();
    xs_prev2 = mk (); xs_safe = mk ();
    s = Array.make num_slots nan }

let invalidate t = t.s.(slot_key) <- nan

let reserve t ~levels =
  if levels < 1 then invalid_arg "Workspace.reserve: levels < 1";
  if levels > Array.length t.ci then begin
    let mk () = Array.make levels 0. in
    t.ci <- mk (); t.ci_d <- mk ();
    t.ri <- mk (); t.ri_d <- mk ();
    t.mi <- mk (); t.mi_d <- mk ();
    t.xs <- mk (); t.xs_prev <- mk ();
    t.xs_prev2 <- mk (); t.xs_safe <- mk ()
  end;
  t.levels <- levels;
  invalidate t

let key t = t.s.(slot_key)

let xs_copy t = Array.sub t.xs 0 t.levels
