(** Batched random draws from one private generator stream.

    A draw buffer owns an {!Ckpt_numerics.Rng.t} substream and fills a
    preallocated block of inverse-CDF samples from it at a time, so the
    per-draw cost on the consumer's hot path is an array read and an
    index bump instead of a generator step plus transcendentals.

    Bit-identity contract: because the buffer draws from a {e private}
    stream (the simulator hands each failure level its own
    [Rng.split]-derived substream) and consumes it in order, drawing
    ahead block-wise yields exactly the sequence lazy one-at-a-time
    sampling would — draw-for-draw, for any consumer interleaving across
    levels.  The per-draw arithmetic replicates
    {!Ckpt_numerics.Dist.exponential} / {!Ckpt_numerics.Dist.weibull}
    operation for operation, so values are bitwise equal. *)

type law =
  | Exponential of { rate : float }  (** mean [1/rate] inter-arrival *)
  | Weibull of { shape : float; scale : float }
  | Sampler of (Ckpt_numerics.Rng.t -> float)
      (** escape hatch for custom laws: called once per buffered draw *)

type t

val create : ?capacity:int -> rng:Ckpt_numerics.Rng.t -> law -> t
(** A buffer drawing [capacity] samples (default 64) per refill from
    [rng], which the buffer now owns and advances.
    @raise Invalid_argument on non-positive capacity or law
    parameters. *)

val next : t -> float
(** The next sample in stream order, refilling transparently. *)
