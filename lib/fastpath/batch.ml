(* Struct-of-arrays batch workspace: K problems' solver state laid out
   in contiguous stripes of preallocated float arrays, so a batch pass
   touches memory linearly and the per-row kernels allocate nothing.

   Row [r] owns elements [r*stride .. r*stride + levels - 1] of every
   stripe.  The scalar accumulators live in the shared [s] array — rows
   are solved to completion one at a time within a batch, and each
   domain gets its own [t] (see [Optimizer.solve_batch]), so the slots
   are never contended.

   Bit-identity contract: every kernel here reproduces the
   floating-point operation sequence of its [Eval] twin (and therefore
   of the [Multilevel] reference) exactly — same terms, same
   association, same division placement — so a batch row's result is
   bitwise equal to a standalone solve of the same problem.  See
   lib/fastpath/README.md.

   Two validity keys per row split the fill cache by what actually
   changed: [cost_key] guards the overhead-law terms (functions of the
   scale alone — they survive the outer mu re-estimation rounds of
   Algorithm 1 and can be shared between rows probing the same scale),
   while [key] additionally covers the mu terms and the shared
   speedup slots, which depend on the current wall-clock estimate. *)

type t = {
  mutable rows : int;
  mutable stride : int;  (* row pitch; >= max levels over the batch *)
  (* Per-level stripes, [rows * stride] elements. *)
  mutable ci : float array;  (* C_i(n), checkpoint cost *)
  mutable ci_d : float array;  (* C_i'(n) *)
  mutable ri : float array;  (* R_i(n), restart cost *)
  mutable ri_d : float array;  (* R_i'(n) *)
  mutable mi : float array;  (* mu_i(n) at the row's current estimate *)
  mutable mi_d : float array;  (* mu_i'(n) *)
  mutable xs : float array;  (* interval-count iterate *)
  mutable xs_prev : float array;  (* previous iterate, for convergence *)
  mutable xs_prev2 : float array;  (* second-previous iterate (Aitken history) *)
  mutable xs_safe : float array;  (* plain iterate saved across an extrapolation *)
  mutable slope : float array;  (* lambda'_i * estimate, the mu slope *)
  mutable mu : float array;  (* mu values at the row's solved scale *)
  mutable prev_mu : float array;  (* previous outer round's mu values *)
  (* Per-row scalars, [rows] elements. *)
  mutable nlev : int array;  (* live level count of the row *)
  mutable key : float array;  (* scale the full row is filled at (nan: none) *)
  mutable cost_key : float array;  (* scale the cost stripes are filled at *)
  s : float array;  (* shared scalar slots, indices below *)
}

(* Shared scalar slots.  [slot_g]/[slot_gd] match {!Workspace} so
   [Multilevel.fill_speedup] can write either scratch array; the rest
   are kernel accumulators plus the per-row solve iterates ([slot_n],
   [slot_wall], [slot_est]) that must not box across loop iterations. *)
let slot_g = Workspace.slot_g
let slot_gd = Workspace.slot_gd
let slot_acc = 3
let slot_acc2 = 4
let slot_acc3 = 5
let slot_n = 6
let slot_wall = 7
let slot_est = 8
let slot_fevals = 9
let slot_fallbacks = 10
let slot_hist = 11
let slot_accel = 12
let slot_dxref = 13
let slot_nsafe = 14
let num_slots = 15

let create ?(rows = 16) ?(stride = 4) () =
  let rows = max 1 rows and stride = max 1 stride in
  let mk () = Array.make (rows * stride) 0. in
  { rows;
    stride;
    ci = mk (); ci_d = mk ();
    ri = mk (); ri_d = mk ();
    mi = mk (); mi_d = mk ();
    xs = mk (); xs_prev = mk ();
    xs_prev2 = mk (); xs_safe = mk ();
    slope = mk (); mu = mk (); prev_mu = mk ();
    nlev = Array.make rows 0;
    key = Array.make rows nan;
    cost_key = Array.make rows nan;
    s = Array.make num_slots nan }

let reserve t ~rows ~stride =
  if rows < 1 then invalid_arg "Batch.reserve: rows < 1";
  if stride < 1 then invalid_arg "Batch.reserve: stride < 1";
  if rows * stride > Array.length t.ci then begin
    let mk () = Array.make (rows * stride) 0. in
    t.ci <- mk (); t.ci_d <- mk ();
    t.ri <- mk (); t.ri_d <- mk ();
    t.mi <- mk (); t.mi_d <- mk ();
    t.xs <- mk (); t.xs_prev <- mk ();
    t.xs_prev2 <- mk (); t.xs_safe <- mk ();
    t.slope <- mk (); t.mu <- mk (); t.prev_mu <- mk ()
  end;
  if rows > Array.length t.nlev then begin
    t.nlev <- Array.make rows 0;
    t.key <- Array.make rows nan;
    t.cost_key <- Array.make rows nan
  end;
  t.rows <- rows;
  t.stride <- stride;
  for r = 0 to rows - 1 do
    t.key.(r) <- nan;
    t.cost_key.(r) <- nan
  done

(* Share the overhead-law terms computed by [src] with [dst]: valid only
   when both rows describe the same level hierarchy and the same scale
   (the caller checks physical equality of the levels and the keys). *)
let share_costs t ~src ~dst =
  let n = t.nlev.(src) in
  Array.blit t.ci (src * t.stride) t.ci (dst * t.stride) n;
  Array.blit t.ci_d (src * t.stride) t.ci_d (dst * t.stride) n;
  Array.blit t.ri (src * t.stride) t.ri (dst * t.stride) n;
  Array.blit t.ri_d (src * t.stride) t.ri_d (dst * t.stride) n;
  t.cost_key.(dst) <- t.cost_key.(src)

(* --- kernels, mirroring {!Eval} row by row --------------------------- *)

(* One Gauss–Seidel sweep of Eq. (23) over the row's levels, in place.
   Mirrors [Eval.x_sweep] (itself the twin of [Multilevel.x_update]
   called level by level). *)
let x_sweep t ~row ~te =
  let s = t.s in
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  s.(slot_acc) <- te /. s.(slot_g);
  for i = off to last do
    let ci = t.ci.(i) in
    let x =
      if ci <= 0. then 1.
      else begin
        s.(slot_acc2) <- 0.;
        for j = i + 1 to last do
          s.(slot_acc2) <- s.(slot_acc2) +. (t.mi.(j) /. t.xs.(j))
        done;
        let denom = 2. *. ci *. (1. +. (s.(slot_acc2) /. 2.)) in
        Float.max 1. (sqrt (t.mi.(i) *. s.(slot_acc) /. denom))
      end
    in
    t.xs.(i) <- x;
    s.(slot_acc) <- s.(slot_acc) +. (ci *. x)
  done

(* Eq. (24) at the row's key scale.  Mirrors [Eval.d_dn]. *)
let d_dn t ~row ~te ~alloc =
  let s = t.s in
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  let g = s.(slot_g) and g' = s.(slot_gd) in
  s.(slot_acc) <- -.te *. g' /. (g *. g);
  s.(slot_acc2) <- 0.;
  s.(slot_acc3) <- 0.;
  for i = off to last do
    let xi = t.xs.(i) in
    let m = t.mi.(i) and m' = t.mi_d.(i) in
    s.(slot_acc) <- s.(slot_acc) +. (t.ci_d.(i) *. (xi -. 1.));
    s.(slot_acc) <- s.(slot_acc) +. (m' *. te /. (2. *. xi *. g));
    s.(slot_acc) <- s.(slot_acc) -. (m *. te *. g' /. (2. *. xi *. g *. g));
    s.(slot_acc2) <- s.(slot_acc2) +. (t.ci.(i) *. xi);
    s.(slot_acc3) <- s.(slot_acc3) +. (t.ci_d.(i) *. xi);
    let repaid = s.(slot_acc2) /. (2. *. xi)
    and repaid' = s.(slot_acc3) /. (2. *. xi) in
    s.(slot_acc) <- s.(slot_acc) +. (m' *. (repaid +. alloc +. t.ri.(i)));
    s.(slot_acc) <- s.(slot_acc) +. (m *. (repaid' +. t.ri_d.(i)))
  done;
  s.(slot_acc)

(* Eq. (21) at the row's key scale.  Mirrors [Eval.expected_wall_clock]. *)
let expected_wall_clock t ~row ~te ~alloc =
  let s = t.s in
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  let g = s.(slot_g) in
  s.(slot_acc) <- te /. g;
  s.(slot_acc2) <- te /. g;
  for i = off to last do
    let xi = t.xs.(i) in
    s.(slot_acc) <- s.(slot_acc) +. (t.ci.(i) *. (xi -. 1.));
    s.(slot_acc2) <- s.(slot_acc2) +. (t.ci.(i) *. xi);
    let rollback = s.(slot_acc2) /. (2. *. xi) in
    s.(slot_acc) <- s.(slot_acc) +. (t.mi.(i) *. (rollback +. alloc +. t.ri.(i)))
  done;
  s.(slot_acc)

(* Eq. (25) into the row's [xs], in place.  Mirrors [Eval.young_init]. *)
let young_init t ~row ~te =
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  let g = t.s.(slot_g) in
  for i = off to last do
    let ci = t.ci.(i) in
    t.xs.(i) <-
      (if ci <= 0. then 1.
       else Float.max 1. (sqrt (t.mi.(i) *. te /. g /. (2. *. ci))))
  done

let save_xs t ~row =
  let off = row * t.stride in
  Array.blit t.xs off t.xs_prev off t.nlev.(row)

(* Mirrors [Eval.rotate_xs] on one row's stripe. *)
let rotate_xs t ~row =
  let off = row * t.stride in
  Array.blit t.xs_prev off t.xs_prev2 off t.nlev.(row);
  Array.blit t.xs off t.xs_prev off t.nlev.(row)

(* Mirrors [Eval.aitken] on one row's stripe: safeguarded delta-squared
   extrapolation of the last three iterates, with the plain iterate
   saved for {!restore_xs}. *)
let aitken t ~row =
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  Array.blit t.xs off t.xs_safe off t.nlev.(row);
  let moved = ref false in
  for i = off to last do
    let x2 = t.xs.(i) in
    let d2 = x2 -. t.xs_prev.(i) in
    let d1 = t.xs_prev.(i) -. t.xs_prev2.(i) in
    let corr = d2 *. d2 /. (d2 -. d1) in
    if
      Float.is_finite corr
      && Float.abs corr <= 1e6 *. (Float.abs d1 +. Float.abs d2)
    then begin
      let z = Float.max 1. (x2 -. corr) in
      if z <> x2 then begin
        t.xs.(i) <- z;
        moved := true
      end
    end
  done;
  !moved

(* Mirrors [Eval.restore_xs] on one row's stripe. *)
let restore_xs t ~row =
  let off = row * t.stride in
  Array.blit t.xs_safe off t.xs off t.nlev.(row)

(* Mirrors [Fixed_point.max_abs_diff] over the row's live prefix. *)
let max_abs_diff_xs t ~row =
  let s = t.s in
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  s.(slot_acc) <- 0.;
  for i = off to last do
    s.(slot_acc) <- Float.max s.(slot_acc) (Float.abs (t.xs.(i) -. t.xs_prev.(i)))
  done;
  s.(slot_acc)

(* Outer-loop mu drift, mirroring [Fixed_point.max_abs_diff prev mus']
   in [Optimizer.solve_with]: |previous round's mu - this round's mu|. *)
let mu_drift t ~row =
  let s = t.s in
  let off = row * t.stride in
  let last = off + t.nlev.(row) - 1 in
  s.(slot_acc) <- 0.;
  for i = off to last do
    s.(slot_acc) <- Float.max s.(slot_acc) (Float.abs (t.prev_mu.(i) -. t.mu.(i)))
  done;
  s.(slot_acc)

let commit_mus t ~row =
  let off = row * t.stride in
  Array.blit t.mu off t.prev_mu off t.nlev.(row)

let xs_copy t ~row = Array.sub t.xs (row * t.stride) t.nlev.(row)
