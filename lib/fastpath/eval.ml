(* Allocation-free kernels over a filled {!Workspace}.

   Bit-identity contract: every kernel reproduces the floating-point
   operation sequence of the corresponding reference function in
   [Ckpt_model.Multilevel] exactly — same terms, same association, same
   division placement — so results are bitwise equal, not merely close.
   Prefix sums that the reference recomputes per level are carried as
   running accumulators here, which is the identical addition chain;
   suffix sums (the [higher] term of Eq. 23) are recomputed per level in
   increasing index order because a running suffix would reassociate.
   Accumulators live in workspace scalar slots: local float lets stay in
   registers, but anything mutable across iterations must be an array
   slot to avoid boxed [ref] cells. *)

open Workspace

(* One Gauss–Seidel sweep of Eq. (23) over the levels, in place:
   [xs.(j)] for [j < level] already hold the new iterate, [j > level]
   the old one.  Mirrors [Multilevel.x_update] called level by level,
   with the [lower] prefix (T_e/g + sum_{j<i} C_j x_j) carried as a
   running accumulator. *)
let x_sweep ws ~te =
  let s = ws.s in
  s.(slot_acc) <- te /. s.(slot_g);
  for i = 0 to ws.levels - 1 do
    let ci = ws.ci.(i) in
    let x =
      if ci <= 0. then 1.
      else begin
        s.(slot_acc2) <- 0.;
        for j = i + 1 to ws.levels - 1 do
          s.(slot_acc2) <- s.(slot_acc2) +. (ws.mi.(j) /. ws.xs.(j))
        done;
        let denom = 2. *. ci *. (1. +. (s.(slot_acc2) /. 2.)) in
        Float.max 1. (sqrt (ws.mi.(i) *. s.(slot_acc) /. denom))
      end
    in
    ws.xs.(i) <- x;
    s.(slot_acc) <- s.(slot_acc) +. (ci *. x)
  done

(* Eq. (24) at the workspace's key scale.  Mirrors [Multilevel.d_dn];
   the [repaid]/[repaid'] prefix sums are running accumulators. *)
let d_dn ws ~te ~alloc =
  let s = ws.s in
  let g = s.(slot_g) and g' = s.(slot_gd) in
  s.(slot_acc) <- -.te *. g' /. (g *. g);
  s.(slot_acc2) <- 0.;
  s.(slot_acc3) <- 0.;
  for i = 0 to ws.levels - 1 do
    let xi = ws.xs.(i) in
    let m = ws.mi.(i) and m' = ws.mi_d.(i) in
    s.(slot_acc) <- s.(slot_acc) +. (ws.ci_d.(i) *. (xi -. 1.));
    s.(slot_acc) <- s.(slot_acc) +. (m' *. te /. (2. *. xi *. g));
    s.(slot_acc) <- s.(slot_acc) -. (m *. te *. g' /. (2. *. xi *. g *. g));
    s.(slot_acc2) <- s.(slot_acc2) +. (ws.ci.(i) *. xi);
    s.(slot_acc3) <- s.(slot_acc3) +. (ws.ci_d.(i) *. xi);
    let repaid = s.(slot_acc2) /. (2. *. xi)
    and repaid' = s.(slot_acc3) /. (2. *. xi) in
    s.(slot_acc) <- s.(slot_acc) +. (m' *. (repaid +. alloc +. ws.ri.(i)));
    s.(slot_acc) <- s.(slot_acc) +. (m *. (repaid' +. ws.ri_d.(i)))
  done;
  s.(slot_acc)

(* Eq. (21) at the workspace's key scale.  Mirrors
   [Multilevel.expected_wall_clock] with the rollback numerator
   (T_e/g + sum_{k<=i} C_k x_k, Eq. 18) carried as a running prefix. *)
let expected_wall_clock ws ~te ~alloc =
  let s = ws.s in
  let g = s.(slot_g) in
  s.(slot_acc) <- te /. g;
  s.(slot_acc2) <- te /. g;
  for i = 0 to ws.levels - 1 do
    let xi = ws.xs.(i) in
    s.(slot_acc) <- s.(slot_acc) +. (ws.ci.(i) *. (xi -. 1.));
    s.(slot_acc2) <- s.(slot_acc2) +. (ws.ci.(i) *. xi);
    let rollback = s.(slot_acc2) /. (2. *. xi) in
    s.(slot_acc) <- s.(slot_acc) +. (ws.mi.(i) *. (rollback +. alloc +. ws.ri.(i)))
  done;
  s.(slot_acc)

(* Eq. (25) into [xs], in place.  Mirrors [Multilevel.young_init]. *)
let young_init ws ~te =
  let g = ws.s.(slot_g) in
  for i = 0 to ws.levels - 1 do
    let ci = ws.ci.(i) in
    ws.xs.(i) <-
      (if ci <= 0. then 1.
       else Float.max 1. (sqrt (ws.mi.(i) *. te /. g /. (2. *. ci))))
  done

let save_xs ws = Array.blit ws.xs 0 ws.xs_prev 0 ws.levels

(* Push the iterate history down one step: [xs_prev -> xs_prev2],
   [xs -> xs_prev].  Run before a sweep so that afterwards
   [xs_prev2, xs_prev, xs] are three consecutive iterates. *)
let rotate_xs ws =
  Array.blit ws.xs_prev 0 ws.xs_prev2 0 ws.levels;
  Array.blit ws.xs 0 ws.xs_prev 0 ws.levels

(* Componentwise Aitken delta-squared extrapolation over the last three
   iterates [x0 = xs_prev2, x1 = xs_prev, x2 = xs]: the geometric-series
   limit estimate [x2 - (x2-x1)^2 / ((x2-x1) - (x1-x0))].  The plain
   iterate [x2] is first saved to [xs_safe] so a rejected step can be
   reverted.  A component keeps its plain value when the correction is
   non-finite (vanishing denominator) or implausibly large relative to
   the recent steps; the result is clamped to the model's [x >= 1]
   domain.  Returns [true] when at least one component actually moved —
   the caller only pays the acceptance test for a real extrapolation. *)
let aitken ws =
  Array.blit ws.xs 0 ws.xs_safe 0 ws.levels;
  let moved = ref false in
  for i = 0 to ws.levels - 1 do
    let x2 = ws.xs.(i) in
    let d2 = x2 -. ws.xs_prev.(i) in
    let d1 = ws.xs_prev.(i) -. ws.xs_prev2.(i) in
    let corr = d2 *. d2 /. (d2 -. d1) in
    if
      Float.is_finite corr
      && Float.abs corr <= 1e6 *. (Float.abs d1 +. Float.abs d2)
    then begin
      let z = Float.max 1. (x2 -. corr) in
      if z <> x2 then begin
        ws.xs.(i) <- z;
        moved := true
      end
    end
  done;
  !moved

(* Revert a rejected extrapolation: [xs <- xs_safe]. *)
let restore_xs ws = Array.blit ws.xs_safe 0 ws.xs 0 ws.levels

(* Mirrors [Fixed_point.max_abs_diff] over the live prefix. *)
let max_abs_diff_xs ws =
  let s = ws.s in
  s.(slot_acc) <- 0.;
  for i = 0 to ws.levels - 1 do
    s.(slot_acc) <- Float.max s.(slot_acc) (Float.abs (ws.xs.(i) -. ws.xs_prev.(i)))
  done;
  s.(slot_acc)
