(** Allocation-free evaluation kernels over a filled {!Workspace}.

    Each kernel is the fast twin of a reference function in
    [Ckpt_model.Multilevel] and is {e bit-identical} to it: the same
    floating-point operations in the same order, reading per-level terms
    from the workspace instead of re-evaluating overhead laws.  The
    caller owns filling the workspace (terms and speedup slots valid at
    the scale being evaluated) before invoking a kernel; kernels use the
    [slot_acc*] scratch slots and allocate nothing. *)

val x_sweep : Workspace.t -> te:float -> unit
(** One in-place Gauss–Seidel sweep of Eq. (23) over [xs] — the loop
    body of [Multilevel.optimize] with [x_update] applied level by
    level. *)

val d_dn : Workspace.t -> te:float -> alloc:float -> float
(** Eq. (24), [dE(T_w)/dN] at the workspace's key scale — fast twin of
    [Multilevel.d_dn]. *)

val expected_wall_clock : Workspace.t -> te:float -> alloc:float -> float
(** Eq. (21) at the workspace's key scale — fast twin of
    [Multilevel.expected_wall_clock]. *)

val young_init : Workspace.t -> te:float -> unit
(** Eq. (25) written into [xs] in place — fast twin of
    [Multilevel.young_init]. *)

val save_xs : Workspace.t -> unit
(** [xs_prev <- xs] (blit, no allocation). *)

val rotate_xs : Workspace.t -> unit
(** [xs_prev -> xs_prev2; xs -> xs_prev] — run before a sweep so the
    workspace afterwards holds three consecutive iterates for
    {!aitken}. *)

val aitken : Workspace.t -> bool
(** Componentwise Aitken delta-squared extrapolation of
    [xs_prev2, xs_prev, xs] written into [xs], with the plain iterate
    saved to [xs_safe] first.  Components with a vanishing or wildly
    scaled denominator keep their plain value; results are clamped to
    [>= 1].  Returns [true] iff some component moved.  The caller must
    measure the next residual and {!restore_xs} on increase — see
    [Multilevel.optimize]. *)

val restore_xs : Workspace.t -> unit
(** [xs <- xs_safe] — revert a rejected extrapolation. *)

val max_abs_diff_xs : Workspace.t -> float
(** [max_i |xs.(i) - xs_prev.(i)|] over the live prefix — the
    convergence metric of [Multilevel.optimize]. *)
