module Rng = Ckpt_numerics.Rng

type law =
  | Exponential of { rate : float }
  | Weibull of { shape : float; scale : float }
  | Sampler of (Rng.t -> float)

type t = {
  rng : Rng.t;
  law : law;
  inv_shape : float;  (* 1/shape, pre-computed for Weibull laws *)
  buf : float array;
  mutable pos : int;  (* next unconsumed index *)
  mutable len : int;  (* valid prefix length *)
}

let create ?(capacity = 64) ~rng law =
  if capacity < 1 then invalid_arg "Draw_buffer.create: capacity < 1";
  (match law with
   | Exponential { rate } ->
       if not (rate > 0.) then invalid_arg "Draw_buffer.create: rate <= 0"
   | Weibull { shape; scale } ->
       if not (shape > 0. && scale > 0.) then
         invalid_arg "Draw_buffer.create: Weibull shape or scale <= 0"
   | Sampler _ -> ());
  { rng; law;
    inv_shape = (match law with Weibull { shape; _ } -> 1. /. shape | _ -> 0.);
    buf = Array.make capacity 0.;
    pos = 0;
    len = 0 }

(* The per-draw arithmetic must stay exactly [Ckpt_numerics.Dist]'s:
   [1. -. Rng.float] then [-.log u /. rate] (the division is kept — a
   cached [1/rate] multiplication would change bits).  Only draw-count-
   independent work is hoisted: the law dispatch and, for Weibull,
   [1/shape] (a deterministic sub-expression, so bitwise the same). *)
let refill t =
  let n = Array.length t.buf in
  (match t.law with
   | Exponential { rate } ->
       for i = 0 to n - 1 do
         let u = 1. -. Rng.float t.rng in
         t.buf.(i) <- -.log u /. rate
       done
   | Weibull { scale; _ } ->
       for i = 0 to n - 1 do
         let u = 1. -. Rng.float t.rng in
         t.buf.(i) <- scale *. ((-.log u) ** t.inv_shape)
       done
   | Sampler f ->
       for i = 0 to n - 1 do
         t.buf.(i) <- f t.rng
       done);
  t.pos <- 0;
  t.len <- n

let next t =
  if t.pos >= t.len then refill t;
  let v = t.buf.(t.pos) in
  t.pos <- t.pos + 1;
  v
