(** Preallocated scratch memory for allocation-free model evaluation.

    A workspace holds every per-level term the multilevel model's inner
    loops need — checkpoint/restart costs, failure counts and their
    scale-derivatives, plus the iterate arrays — in flat float arrays,
    together with a small scalar-slot array for the speedup terms and
    kernel accumulators.  Filling it is the caller's job (the model
    library knows the overhead laws); the {!Eval} kernels then read and
    write only workspace state, so one inner solver iteration performs
    no heap allocation.

    {2 Term-cache invariant}

    [s.(slot_key)] is the scale the term arrays were filled at, [nan]
    when nothing valid is cached.  A fill routine must skip refilling
    when its scale equals the key and must set the key after filling;
    anything that changes the problem (not the scale) must {!invalidate}
    or {!reserve}.  Scalars are kept in the [s] array rather than
    mutable record fields because unboxed float stores need a float
    array under the non-flambda compiler — a mutable float field of
    this mixed record would box on every write. *)

type t = {
  mutable levels : int;  (** live prefix length of every array below *)
  mutable ci : float array;  (** checkpoint cost [C_i(n)] *)
  mutable ci_d : float array;  (** [C_i'(n)] *)
  mutable ri : float array;  (** restart cost [R_i(n)] *)
  mutable ri_d : float array;  (** [R_i'(n)] *)
  mutable mi : float array;  (** expected failure count [mu_i(n)] *)
  mutable mi_d : float array;  (** [mu_i'(n)] *)
  mutable xs : float array;  (** current interval-count iterate *)
  mutable xs_prev : float array;  (** previous iterate *)
  mutable xs_prev2 : float array;  (** second-previous iterate (Aitken history) *)
  mutable xs_safe : float array;  (** plain iterate saved across an extrapolation *)
  s : float array;  (** scalar slots, indexed by the [slot_*] values *)
}

val slot_key : int
(** Scale [n] the term arrays are valid at; [nan] = invalid. *)

val slot_g : int
(** Speedup [g(n)] at the key scale. *)

val slot_gd : int
(** Speedup derivative [g'(n)] at the key scale. *)

val slot_acc : int
val slot_acc2 : int
val slot_acc3 : int
(** Accumulator scratch owned by whichever kernel is running. *)

val slot_n : int
(** Scratch for a solver's scale iterate — kept in a slot because a
    float argument threaded through a (non-inlined) recursive loop
    boxes on every call. *)

val slot_fevals : int
(** Running count of Eq. 24 evaluations performed during the solve. *)

val slot_fallbacks : int
(** Running count of rejected (safeguard-reverted) extrapolations. *)

val slot_hist : int
(** Number of consecutive plain fixed-point steps since the Aitken
    history was last reset; extrapolation needs two. *)

val slot_accel : int
(** 1. while [xs] holds an extrapolated iterate whose residual has not
    been measured yet, else 0. *)

val slot_dxref : int
(** Residual of the plain step preceding a pending extrapolation — the
    bar the extrapolated step must beat to be accepted. *)

val slot_nsafe : int
(** Scale iterate paired with [xs_safe], restored on rejection. *)

val create : ?levels:int -> unit -> t
(** A workspace with capacity for [levels] (default 4, grown on
    demand by {!reserve}); the term cache starts invalid. *)

val reserve : t -> levels:int -> unit
(** Size the live prefix to [levels], growing the arrays if the
    capacity is short, and invalidate the term cache. *)

val invalidate : t -> unit
(** Forget the cached terms ([s.(slot_key) <- nan]). *)

val key : t -> float
(** [s.(slot_key)]. *)

val xs_copy : t -> float array
(** Fresh copy of the live [xs] prefix — the only allocating helper,
    for handing a result out of the workspace. *)
