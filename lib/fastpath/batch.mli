(** Struct-of-arrays batch workspace for solving K problems per pass.

    Each row of the batch owns a contiguous stripe of every per-level
    array; the evaluation kernels are row-indexed twins of {!Eval} (and
    therefore of the [Multilevel] reference implementation) under the
    same bit-identity contract — see lib/fastpath/README.md, "Batch
    evaluation".  A batch instance is single-domain scratch: the driver
    ([Optimizer.solve_batch]) keeps one per domain in DLS, and stripes
    handed to pool workers land on that worker's own instance. *)

type t = {
  mutable rows : int;
  mutable stride : int;
  mutable ci : float array;
  mutable ci_d : float array;
  mutable ri : float array;
  mutable ri_d : float array;
  mutable mi : float array;
  mutable mi_d : float array;
  mutable xs : float array;
  mutable xs_prev : float array;
  mutable xs_prev2 : float array;
  mutable xs_safe : float array;
  mutable slope : float array;
  mutable mu : float array;
  mutable prev_mu : float array;
  mutable nlev : int array;
  mutable key : float array;
  mutable cost_key : float array;
  s : float array;
}

(** Shared scalar slots.  [slot_g]/[slot_gd] equal the {!Workspace}
    indices so [Multilevel.fill_speedup] writes either scratch array. *)

val slot_g : int
val slot_gd : int
val slot_acc : int
val slot_acc2 : int
val slot_acc3 : int
val slot_n : int
val slot_wall : int
val slot_est : int
val slot_fevals : int
val slot_fallbacks : int
val slot_hist : int
val slot_accel : int
val slot_dxref : int
val slot_nsafe : int
val num_slots : int

val create : ?rows:int -> ?stride:int -> unit -> t
(** Allocate a batch workspace; it grows on {!reserve}. *)

val reserve : t -> rows:int -> stride:int -> unit
(** Size the workspace for [rows] problems of up to [stride] levels
    each and invalidate every row's fill keys. *)

val share_costs : t -> src:int -> dst:int -> unit
(** Copy the overhead-law stripes (and their [cost_key]) from [src] to
    [dst].  Only valid when both rows have physically equal level
    hierarchies and [dst] is about to be filled at [cost_key.(src)];
    the caller checks both. *)

val x_sweep : t -> row:int -> te:float -> unit
(** One Gauss–Seidel sweep of Eq. (23) over the row, in place. *)

val d_dn : t -> row:int -> te:float -> alloc:float -> float
(** Eq. (24) at the row's key scale. *)

val expected_wall_clock : t -> row:int -> te:float -> alloc:float -> float
(** Eq. (21) at the row's key scale. *)

val young_init : t -> row:int -> te:float -> unit
(** Eq. (25) into the row's [xs], in place. *)

val save_xs : t -> row:int -> unit
val max_abs_diff_xs : t -> row:int -> float

val rotate_xs : t -> row:int -> unit
(** [Eval.rotate_xs] on one row's stripe: push the iterate history down
    one step before a sweep. *)

val aitken : t -> row:int -> bool
(** [Eval.aitken] on one row's stripe: safeguarded Aitken delta-squared
    extrapolation, plain iterate saved for {!restore_xs}; returns
    [true] iff some component moved. *)

val restore_xs : t -> row:int -> unit
(** Revert a rejected extrapolation on one row's stripe. *)

val mu_drift : t -> row:int -> float
(** Max absolute difference between the row's [prev_mu] and [mu]
    stripes — the Algorithm-1 outer drift. *)

val commit_mus : t -> row:int -> unit
(** Make the row's current [mu] stripe the next round's drift
    reference. *)

val xs_copy : t -> row:int -> float array
(** The row's live [xs] prefix as a fresh array. *)
