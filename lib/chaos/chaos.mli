(** Seeded, deterministic fault injection for the planning stack.

    A chaos policy decides, at well-defined {e injection sites}, whether a
    given unit of work is hit by a fault and which fault it is.  The
    decision is a {b pure function of [(seed, site, index, attempt)]}: it
    is derived by hashing those four values into a fresh {!Ckpt_numerics.Rng}
    stream, never by consuming a shared mutable stream.  Consequently the
    fault schedule is independent of worker count, scheduling order and
    wall-clock time — two runs with the same seed and the same logical
    request stream inject exactly the same faults, whether the pool runs
    1 or 64 domains.  That determinism contract is what makes the chaos
    soak tests reproducible and the 1/2/4-worker response-identity
    property testable at all.

    Injection sites and the faults they can produce:

    - {!Pool} — a pool worker {e crashes} (the domain running the chunk
      dies and must be respawned by the pool's supervisor) or {e stalls}
      (sleeps for a bounded duration before computing the item);
    - {!Solver} — an [Optimizer] solve is forced to report {e divergence}
      (outer fixed point denied convergence) or a {e non-finite} wall
      clock (the NaN-guard path);
    - {!Line} — a protocol line is {e corrupted} (random byte flips) or
      {e truncated} before parsing;
    - {!Telemetry} — an observed telemetry event's timestamp is {e skewed}
      by a bounded signed offset;
    - {!Net} — an accepted server connection is {e dropped} (closed
      before any byte is served), {e slowed} (every response write is
      delayed), {e half-closed} (the write side is shut down after the
      first response) or fed {e garbage} bytes ahead of its first
      request line;
    - {!Durability} — a step on the persistence path (WAL append, fsync,
      snapshot write, compaction unlink) {e crashes} the process at a
      record boundary, {e tears} a write mid-record, forces a
      {e short write} (the write loop must resume), or makes the
      {e fsync fail}.  Indices count durability steps in coordinator
      order, so the schedule is deterministic for a given request
      stream.

    Each applied fault is recorded (thread-safely) so tests and the
    [ckpt_chaos] driver can compare schedules across runs and report
    injection counts. *)

type site = Pool | Solver | Line | Telemetry | Net | Durability

type fault =
  | Crash  (** kill the pool worker before computing the item *)
  | Stall of float  (** sleep this many seconds (pool compute or net response) *)
  | Diverge  (** deny outer fixed-point convergence *)
  | Non_finite  (** poison the solver's wall-clock estimate *)
  | Corrupt  (** flip random bytes in the protocol line *)
  | Truncate  (** cut the protocol line short *)
  | Skew of float  (** shift a telemetry timestamp by this many seconds *)
  | Drop  (** close the connection before serving anything *)
  | Half_close  (** shut the connection's write side after one response *)
  | Garbage  (** prepend garbage bytes to the connection's first line *)
  | Torn  (** crash mid-write, leaving a partial record/file behind *)
  | Short_write  (** force the write to land in several short pieces *)
  | Fsync_fail  (** make the step's fsync report failure *)

type spec = {
  seed : int;
  pool_crash : float;  (** P(worker crash) per (item, attempt) *)
  pool_stall : float;  (** P(worker stall) per (item, attempt) *)
  stall_max_s : float;  (** stall/slow durations are uniform in [0, max] *)
  solver_diverge : float;  (** P(forced divergence) per solve attempt *)
  solver_non_finite : float;  (** P(poisoned estimate) per solve attempt *)
  line_corrupt : float;  (** P(byte corruption) per protocol line *)
  line_truncate : float;  (** P(truncation) per protocol line *)
  telemetry_skew : float;  (** P(timestamp skew) per telemetry event *)
  skew_max_s : float;  (** skews are uniform in [-max, +max] *)
  net_drop : float;  (** P(connection dropped) per accepted connection *)
  net_slow : float;  (** P(slow responses) per accepted connection *)
  net_half_close : float;  (** P(half-close) per accepted connection *)
  net_garbage : float;  (** P(garbage prefix) per accepted connection *)
  dur_crash : float;  (** P(crash at a durability step boundary) *)
  dur_torn : float;  (** P(torn write: partial bytes, then crash) *)
  dur_short : float;  (** P(forced short write) per durability step *)
  dur_fsync : float;  (** P(fsync failure) per durability step *)
}

val spec :
  ?seed:int ->
  ?stall_max_s:float ->
  ?skew_max_s:float ->
  ?rate:float ->
  ?durability_rate:float ->
  unit ->
  spec
(** [spec ~rate ()] is the uniform policy used by the soak tests: every
    site fires with total probability [rate] (default [0.1]), split
    evenly between the site's fault kinds.  [seed] defaults to [0],
    [stall_max_s] to [2e-3] (long enough to reorder domains, short
    enough for tests), [skew_max_s] to [30.].  The {!Durability} site is
    governed separately by [durability_rate] (default [0.], i.e. off):
    durability faults kill or degrade the process by design, so only
    suites prepared to restart the server opt in. *)

val disabled : spec
(** All probabilities zero — threading [disabled] must be observably
    identical to passing no chaos policy at all. *)

type t
(** A chaos policy: an immutable {!spec} plus a mutex-protected record of
    the faults applied so far. *)

exception Killed_worker
(** Raised inside a pool worker to simulate the domain dying.  [Pool]'s
    worker loop treats it as a crash: the worker exits and the supervisor
    spawns a replacement.  Never leaks to [Pool.map] callers. *)

val create : spec -> t
(** @raise Invalid_argument if a probability is outside [0, 1], the two
    kinds at one site sum above [1], or a bound is negative/non-finite. *)

val spec_of : t -> spec

val draw : t -> site:site -> index:int -> attempt:int -> fault option
(** The pure decision function — no recording, no side effects.  Equal
    [(spec.seed, site, index, attempt)] always yield equal faults. *)

(** {1 Site helpers}

    These wrap {!draw}, record the applied fault, and apply any
    side-effect the fault calls for (stalls sleep here, so callers other
    than the pool never need [Unix]). *)

val pool_fault : t -> index:int -> attempt:int -> [ `Proceed | `Crash ]
(** Decide the fate of pool work item [index] on its [attempt]-th try
    (0-based; retries after a crash bump the attempt, so an unlucky item
    cannot crash forever — injection also hard-caps at {!max_crashes}
    consecutive crashes per item).  A stall sleeps before returning
    [`Proceed]. *)

val max_crashes : int
(** Per-item cap on consecutive injected crashes (guarantees progress
    even under [pool_crash = 1.]). *)

val solver_fault : t -> index:int -> attempt:int -> fault option
(** Fault for solve request [index] on retry [attempt]: [Some Diverge],
    [Some Non_finite] or [None]. *)

val mangle_line : t -> index:int -> string -> string option
(** [mangle_line t ~index line] is [Some mangled] when the line-site
    fault fires for [index] (byte flips for [Corrupt], a shorter prefix
    for [Truncate]), [None] to deliver the line intact. *)

val skew : t -> index:int -> float
(** Signed timestamp offset (seconds) for telemetry event [index]; [0.]
    when no fault fires (nothing is recorded in that case). *)

val net_fault : t -> index:int -> fault option
(** Fault for accepted connection [index] (assigned in accept order):
    [Some Drop], [Some (Stall d)] (slow the connection's responses by
    [d] seconds each), [Some Half_close], [Some Garbage] or [None].
    Unlike {!pool_fault}, no sleep happens here — the server applies
    the slow-down where it writes. *)

val durability_fault : t -> index:int -> fault option
(** Fault for durability step [index] (assigned in coordinator order
    across WAL appends, fsyncs, snapshot stages and compaction):
    [Some Crash], [Some Torn], [Some Short_write], [Some Fsync_fail] or
    [None].  The caller — [lib/net]'s durability layer — applies the
    fault's semantics; this only decides and records it. *)

(** {1 Injection log} *)

type record = { site : site; index : int; attempt : int; fault : fault }

val records : t -> record list
(** Applied faults, sorted by [(site, index, attempt)] so logs from runs
    with different worker counts compare equal.  The log keeps at most
    {!log_capacity} entries; counters keep counting past that. *)

val log_capacity : int
val injected : t -> int
(** Total number of faults applied so far. *)

val counts : t -> (site * fault * int) list
(** Applied-fault totals grouped by site and fault kind (durations and
    offsets ignored for grouping), sorted. *)

val site_name : site -> string
val fault_name : fault -> string

val to_json : t -> Ckpt_json.Json.t
(** Summary object: seed, total, and per-site/kind counts. *)

val pp : Format.formatter -> t -> unit
