module Rng = Ckpt_numerics.Rng
module Json = Ckpt_json.Json

type site = Pool | Solver | Line | Telemetry | Net | Durability

type fault =
  | Crash
  | Stall of float
  | Diverge
  | Non_finite
  | Corrupt
  | Truncate
  | Skew of float
  | Drop
  | Half_close
  | Garbage
  | Torn
  | Short_write
  | Fsync_fail

type spec = {
  seed : int;
  pool_crash : float;
  pool_stall : float;
  stall_max_s : float;
  solver_diverge : float;
  solver_non_finite : float;
  line_corrupt : float;
  line_truncate : float;
  telemetry_skew : float;
  skew_max_s : float;
  net_drop : float;
  net_slow : float;
  net_half_close : float;
  net_garbage : float;
  dur_crash : float;
  dur_torn : float;
  dur_short : float;
  dur_fsync : float;
}

let spec ?(seed = 0) ?(stall_max_s = 2e-3) ?(skew_max_s = 30.) ?(rate = 0.1)
    ?(durability_rate = 0.) () =
  let half = rate /. 2. in
  let quarter = rate /. 4. in
  let dq = durability_rate /. 4. in
  { seed;
    pool_crash = half;
    pool_stall = half;
    stall_max_s;
    solver_diverge = half;
    solver_non_finite = half;
    line_corrupt = half;
    line_truncate = half;
    telemetry_skew = rate;
    skew_max_s;
    net_drop = quarter;
    net_slow = quarter;
    net_half_close = quarter;
    net_garbage = quarter;
    dur_crash = dq;
    dur_torn = dq;
    dur_short = dq;
    dur_fsync = dq }

let disabled =
  { seed = 0;
    pool_crash = 0.;
    pool_stall = 0.;
    stall_max_s = 0.;
    solver_diverge = 0.;
    solver_non_finite = 0.;
    line_corrupt = 0.;
    line_truncate = 0.;
    telemetry_skew = 0.;
    skew_max_s = 0.;
    net_drop = 0.;
    net_slow = 0.;
    net_half_close = 0.;
    net_garbage = 0.;
    dur_crash = 0.;
    dur_torn = 0.;
    dur_short = 0.;
    dur_fsync = 0. }

type record = { site : site; index : int; attempt : int; fault : fault }

type t = {
  spec : spec;
  lock : Mutex.t;
  mutable log : record list;  (* newest first, capped *)
  mutable logged : int;
  mutable total : int;
}

exception Killed_worker

let log_capacity = 65_536
let max_crashes = 25

let check_prob what p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Chaos: %s probability %g outside [0, 1]" what p)

let check_bound what v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (Printf.sprintf "Chaos: %s must be finite and >= 0" what)

let create spec =
  check_prob "pool crash" spec.pool_crash;
  check_prob "pool stall" spec.pool_stall;
  check_prob "solver diverge" spec.solver_diverge;
  check_prob "solver non-finite" spec.solver_non_finite;
  check_prob "line corrupt" spec.line_corrupt;
  check_prob "line truncate" spec.line_truncate;
  check_prob "telemetry skew" spec.telemetry_skew;
  check_prob "net drop" spec.net_drop;
  check_prob "net slow" spec.net_slow;
  check_prob "net half-close" spec.net_half_close;
  check_prob "net garbage" spec.net_garbage;
  check_prob "durability crash" spec.dur_crash;
  check_prob "durability torn" spec.dur_torn;
  check_prob "durability short" spec.dur_short;
  check_prob "durability fsync" spec.dur_fsync;
  if spec.net_drop +. spec.net_slow +. spec.net_half_close +. spec.net_garbage > 1. then
    invalid_arg "Chaos: net fault probabilities sum above 1";
  if spec.dur_crash +. spec.dur_torn +. spec.dur_short +. spec.dur_fsync > 1. then
    invalid_arg "Chaos: durability fault probabilities sum above 1";
  if spec.pool_crash +. spec.pool_stall > 1. then
    invalid_arg "Chaos: pool fault probabilities sum above 1";
  if spec.solver_diverge +. spec.solver_non_finite > 1. then
    invalid_arg "Chaos: solver fault probabilities sum above 1";
  if spec.line_corrupt +. spec.line_truncate > 1. then
    invalid_arg "Chaos: line fault probabilities sum above 1";
  check_bound "stall_max_s" spec.stall_max_s;
  check_bound "skew_max_s" spec.skew_max_s;
  { spec; lock = Mutex.create (); log = []; logged = 0; total = 0 }

let spec_of t = t.spec

let site_id = function
  | Pool -> 1
  | Solver -> 2
  | Line -> 3
  | Telemetry -> 4
  | Net -> 5
  | Durability -> 6

let site_name = function
  | Pool -> "pool"
  | Solver -> "solver"
  | Line -> "line"
  | Telemetry -> "telemetry"
  | Net -> "net"
  | Durability -> "durability"

let fault_name = function
  | Crash -> "crash"
  | Stall _ -> "stall"
  | Diverge -> "diverge"
  | Non_finite -> "non-finite"
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Skew _ -> "skew"
  | Drop -> "drop"
  | Half_close -> "half-close"
  | Garbage -> "garbage"
  | Torn -> "torn"
  | Short_write -> "short-write"
  | Fsync_fail -> "fsync-fail"

(* splitmix64 finalizer: a strong 64-bit mix so that the derived stream
   for (seed, site, index, attempt) is statistically independent of its
   neighbours even though the inputs differ by one bit. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let derive t ~site ~index ~attempt =
  let feed acc v = mix64 (Int64.add (Int64.mul acc golden) v) in
  let key =
    List.fold_left feed
      (mix64 (Int64.of_int t.spec.seed))
      [ Int64.of_int (site_id site); Int64.of_int index; Int64.of_int attempt ]
  in
  Rng.create key

(* Decide a fault from one uniform draw against the site's cumulative
   probabilities; further draws from [rng] parameterize the fault. *)
let decide t rng ~site =
  let s = t.spec in
  let u = Rng.float rng in
  let pick p1 f1 p2 f2 =
    if u < p1 then Some (f1 rng)
    else if u < p1 +. p2 then Some (f2 rng)
    else None
  in
  match site with
  | Pool ->
      pick s.pool_crash
        (fun _ -> Crash)
        s.pool_stall
        (fun rng -> Stall (Rng.float rng *. s.stall_max_s))
  | Solver ->
      pick s.solver_diverge (fun _ -> Diverge) s.solver_non_finite (fun _ ->
          Non_finite)
  | Line ->
      pick s.line_corrupt (fun _ -> Corrupt) s.line_truncate (fun _ -> Truncate)
  | Telemetry ->
      pick s.telemetry_skew
        (fun rng -> Skew ((2. *. Rng.float rng -. 1.) *. s.skew_max_s))
        0.
        (fun _ -> assert false)
  | Net ->
      (* Four kinds at one site: walk the cumulative distribution with the
         same single uniform draw the two-kind sites use. *)
      let c1 = s.net_drop in
      let c2 = c1 +. s.net_slow in
      let c3 = c2 +. s.net_half_close in
      let c4 = c3 +. s.net_garbage in
      if u < c1 then Some Drop
      else if u < c2 then Some (Stall (Rng.float rng *. s.stall_max_s))
      else if u < c3 then Some Half_close
      else if u < c4 then Some Garbage
      else None
  | Durability ->
      let c1 = s.dur_crash in
      let c2 = c1 +. s.dur_torn in
      let c3 = c2 +. s.dur_short in
      let c4 = c3 +. s.dur_fsync in
      if u < c1 then Some Crash
      else if u < c2 then Some Torn
      else if u < c3 then Some Short_write
      else if u < c4 then Some Fsync_fail
      else None

let draw t ~site ~index ~attempt = decide t (derive t ~site ~index ~attempt) ~site

let record t ~site ~index ~attempt fault =
  Mutex.lock t.lock;
  t.total <- t.total + 1;
  if t.logged < log_capacity then begin
    t.log <- { site; index; attempt; fault } :: t.log;
    t.logged <- t.logged + 1
  end;
  Mutex.unlock t.lock

let fire t ~site ~index ~attempt =
  match draw t ~site ~index ~attempt with
  | None -> None
  | Some fault ->
      record t ~site ~index ~attempt fault;
      Some fault

let pool_fault t ~index ~attempt =
  if attempt >= max_crashes then `Proceed
  else
    match fire t ~site:Pool ~index ~attempt with
    | Some Crash -> `Crash
    | Some (Stall s) ->
        if s > 0. then Unix.sleepf s;
        `Proceed
    | Some _ | None -> `Proceed

let solver_fault t ~index ~attempt = fire t ~site:Solver ~index ~attempt

let mangle_line t ~index line =
  let rng = derive t ~site:Line ~index ~attempt:0 in
  match decide t rng ~site:Line with
  | None -> None
  | Some _ when String.length line = 0 -> None
  | Some Corrupt ->
      record t ~site:Line ~index ~attempt:0 Corrupt;
      let b = Bytes.of_string line in
      let flips = 1 + Rng.int rng 3 in
      for _ = 1 to flips do
        Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
      done;
      Some (Bytes.to_string b)
  | Some Truncate ->
      record t ~site:Line ~index ~attempt:0 Truncate;
      Some (String.sub line 0 (Rng.int rng (String.length line)))
  | Some _ -> assert false

let skew t ~index =
  match fire t ~site:Telemetry ~index ~attempt:0 with
  | Some (Skew d) -> d
  | Some _ | None -> 0.

let net_fault t ~index = fire t ~site:Net ~index ~attempt:0
let durability_fault t ~index = fire t ~site:Durability ~index ~attempt:0

let injected t =
  Mutex.lock t.lock;
  let n = t.total in
  Mutex.unlock t.lock;
  n

let compare_record a b =
  match compare (site_id a.site) (site_id b.site) with
  | 0 -> (
      match compare a.index b.index with
      | 0 -> compare a.attempt b.attempt
      | c -> c)
  | c -> c

let records t =
  Mutex.lock t.lock;
  let log = t.log in
  Mutex.unlock t.lock;
  List.sort compare_record log

(* Group by (site, kind): strip the fault's parameter so that e.g. two
   stalls of different durations count together. *)
let canon = function
  | Stall _ -> Stall 0.
  | Skew _ -> Skew 0.
  | f -> f

let counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = (r.site, canon r.fault) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    (records t);
  Hashtbl.fold (fun (site, fault) n acc -> (site, fault, n) :: acc) tbl []
  |> List.sort (fun (s1, f1, _) (s2, f2, _) ->
         match compare (site_id s1) (site_id s2) with
         | 0 -> compare (fault_name f1) (fault_name f2)
         | c -> c)

let to_json t =
  let by_kind =
    List.map
      (fun (site, fault, n) ->
        (site_name site ^ "_" ^ fault_name fault, Json.Number (float_of_int n)))
      (counts t)
  in
  Json.Obj
    (("seed", Json.Number (float_of_int t.spec.seed))
    :: ("injected", Json.Number (float_of_int (injected t)))
    :: by_kind)

let pp ppf t =
  Format.fprintf ppf "@[<v>chaos seed %d: %d faults injected" t.spec.seed
    (injected t);
  List.iter
    (fun (site, fault, n) ->
      Format.fprintf ppf "@ %s/%s: %d" (site_name site) (fault_name fault) n)
    (counts t);
  Format.fprintf ppf "@]"
