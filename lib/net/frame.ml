type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  max_line_bytes : int;
  lines : string Queue.t;  (* complete frames, oldest first *)
  partial : Buffer.t;  (* trailing bytes with no newline yet *)
}

type read_result = Line of string | Eof | Timeout | Oversized

let reader ?(max_line_bytes = 1 lsl 20) fd =
  if max_line_bytes < 1 then invalid_arg "Frame.reader: max_line_bytes < 1";
  { fd;
    chunk = Bytes.create 8192;
    max_line_bytes;
    lines = Queue.create ();
    partial = Buffer.create 256 }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Split the freshly-read chunk on newlines as it arrives, so each byte
   is appended and extracted exactly once — a client trickling a long
   line in small segments costs O(line), not O(line^2). *)
let absorb r n =
  let start = ref 0 in
  for j = 0 to n - 1 do
    if Bytes.get r.chunk j = '\n' then begin
      Buffer.add_subbytes r.partial r.chunk !start (j - !start);
      Queue.push (Buffer.contents r.partial) r.lines;
      Buffer.clear r.partial;
      start := j + 1
    end
  done;
  Buffer.add_subbytes r.partial r.chunk !start (n - !start)

let rec read_line r =
  match Queue.take_opt r.lines with
  | Some line ->
      (* The bound applies to framed lines too: a complete over-long
         line that arrived within one chunk must not dodge it. *)
      if String.length line > r.max_line_bytes then Oversized
      else Line (strip_cr line)
  | None ->
      if Buffer.length r.partial > r.max_line_bytes then Oversized
      else begin
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> Eof  (* a partial trailing line is a half-sent request: dropped *)
        | n ->
            absorb r n;
            read_line r
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Timeout
        | exception Unix.Unix_error (EINTR, _, _) -> read_line r
        | exception Unix.Unix_error (_, _, _) -> Eof
      end

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then begin
      match Unix.write fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> push off
    end
  in
  push 0
