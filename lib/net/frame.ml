type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  max_line_bytes : int;
  mutable pending : string;  (* received, not yet framed *)
}

type read_result = Line of string | Eof | Timeout | Oversized

let reader ?(max_line_bytes = 1 lsl 20) fd =
  if max_line_bytes < 1 then invalid_arg "Frame.reader: max_line_bytes < 1";
  { fd; chunk = Bytes.create 8192; max_line_bytes; pending = "" }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec read_line r =
  match String.index_opt r.pending '\n' with
  | Some i ->
      let line = String.sub r.pending 0 i in
      r.pending <- String.sub r.pending (i + 1) (String.length r.pending - i - 1);
      (* The bound applies to framed lines too: a complete over-long
         line that arrived within one chunk must not dodge it. *)
      if i > r.max_line_bytes then Oversized else Line (strip_cr line)
  | None ->
      if String.length r.pending > r.max_line_bytes then Oversized
      else begin
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> Eof  (* a partial trailing line is a half-sent request: dropped *)
        | n ->
            r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n;
            read_line r
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Timeout
        | exception Unix.Unix_error (EINTR, _, _) -> read_line r
        | exception Unix.Unix_error (_, _, _) -> Eof
      end

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then begin
      match Unix.write fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> push off
    end
  in
  push 0
