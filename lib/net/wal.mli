(** CRC32-framed, append-only write-ahead log for stateful service ops.

    The WAL is level 1 of the server's own two-level persistence
    schedule: every state-mutating line ([observe] / [calibrate] /
    [replan]) is appended — and fsynced per the group-commit policy —
    {e before} the op is applied and acked, while the coarser {!Snapshot}
    images are level 2.  Recovery installs the newest valid snapshot and
    replays the WAL suffix past the snapshot's [wal_seq] watermark.

    {2 On-disk format}

    A WAL directory holds numbered segments [wal-<seq>.log], where
    [<seq>] is the first record sequence the segment was opened for.
    Each record is

    {v W <seq> <payload-bytes> <crc32-hex>\n<payload>\n v}

    with the CRC taken over the payload only.  Appends go to the newest
    segment; a fresh segment is started on every {!open_} (so a torn
    tail from a previous life is never appended after) and whenever the
    current segment exceeds [segment_bytes].

    {2 Reading and torn tails}

    {!load} replays segments in name order and record order, stopping at
    the {e first} record that fails to parse or checksum — everything
    from that point on (including later segments) is reported in
    [dropped_records]/[skipped_segments] rather than replayed.  A torn
    tail can only contain records that were never acked under
    [fsync_batch = 1]; with a larger batch, up to [fsync_batch - 1]
    acked records may be lost to a crash — that relaxation is the
    documented group-commit trade-off.

    {2 Failure semantics}

    An fsync failure erases the unsynced suffix (ftruncate back to the
    last synced offset) and surfaces [Error] so the caller can refuse
    the ack; if even the truncate fails the log marks itself dead and
    every later append fails fast.  Injected {!Ckpt_chaos.Chaos.Durability}
    faults reproduce all of these paths deterministically; an injected
    process crash raises {!Injected_crash}, which test harnesses treat
    as [kill -9]. *)

exception Injected_crash of string
(** Raised by an injected [Crash]/[Torn] durability fault.  The argument
    names the step (["append"], ["fsync"], ["segment-create"],
    ["retire"], or a snapshot stage).  Only ever raised when a fault
    hook is wired in — production servers without chaos never see it. *)

type fault_hook = op:string -> Ckpt_chaos.Chaos.fault option
(** Consulted once per durability step, in coordinator order.  Return
    [Some fault] to apply that fault's semantics to the step. *)

type config = {
  dir : string;
  fsync_batch : int;  (** fsync after this many unsynced records; >= 1 *)
  fsync_interval_ms : float;
      (** {!flush_if_due} also fsyncs once this many ms have passed
          since the last sync with records pending; [0.] = every call *)
  segment_bytes : int;  (** rotate the segment once it grows past this *)
}

val config :
  ?fsync_batch:int ->
  ?fsync_interval_ms:float ->
  ?segment_bytes:int ->
  dir:string ->
  unit ->
  config
(** Defaults: [fsync_batch = 1] (strict: every acked record is durable),
    [fsync_interval_ms = 50.], [segment_bytes = 1 lsl 20].
    @raise Invalid_argument on a non-positive batch or segment size. *)

type scan = {
  records : (int * string) list;  (** (seq, payload), in sequence order *)
  dropped_records : int;
      (** torn/garbage tail records ignored (truncate-at-first-bad) *)
  skipped_segments : int;  (** unreadable or post-tear segments skipped *)
  segments : int;  (** segment files present *)
  bytes : int;  (** total bytes across segment files *)
  last_seq : int;  (** highest replayable seq, [0] when none *)
}

val load : ?log:(string -> unit) -> dir:string -> unit -> scan
(** Read-only scan of a WAL directory; never raises.  A missing
    directory is an empty scan. *)

type t

val open_ :
  ?inject:fault_hook -> ?log:(string -> unit) -> config -> next_seq:int -> (t, string) result
(** Open for appending: creates [config.dir] if needed, scans existing
    segments (for compaction bookkeeping) and starts a fresh segment for
    [next_seq].  [next_seq] must be greater than every replayable seq
    already on disk — callers derive it from {!load} and the snapshot
    watermark. *)

val append : t -> string -> (int, string) result
(** [append t payload] assigns the next sequence number, writes the
    record and applies the group-commit policy.  [Ok seq] means the
    record is on disk (and synced, when the batch boundary was reached
    or [fsync_batch = 1]); the caller may now apply and ack the op.
    [Error _] means the op must be refused: the record is not (and will
    never be) replayed.  Payloads must not contain newlines — they are
    protocol lines, which never do.
    @raise Injected_crash under an injected crash/torn fault. *)

val flush : t -> (unit, string) result
(** Force an fsync of any unsynced records (drain, pre-snapshot). *)

val flush_if_due : t -> unit
(** Time-based group commit: fsync if records have been pending longer
    than [fsync_interval_ms].  Errors are absorbed into the health
    counters (the affected records were erased; their ops were acked
    only under a relaxed batch, which documents exactly this window). *)

val retire : t -> upto:int -> int
(** Compaction at a snapshot cut: seal the current segment and delete
    every sealed segment whose records all have [seq <= upto] (the
    snapshot's watermark).  Returns the number of segments deleted.
    Idempotent — a crash mid-retire just leaves segments for the next
    cut.  @raise Injected_crash under an injected crash fault. *)

val close : t -> unit
(** Flush (best effort) and close the segment fd. *)

val abort : t -> unit
(** Close without flushing — simulates process death in tests: an
    unsynced tail is left exactly as [kill -9] would leave it. *)

(** {1 Introspection} *)

val next_seq : t -> int

val synced_seq : t -> int
(** Highest seq known durable, [0] when none. *)

val segments : t -> int
(** Sealed + current segment files. *)

val bytes : t -> int
(** Bytes across those files. *)

val appended : t -> int
(** Records appended this process life. *)

val fsyncs : t -> int
(** Successful fsyncs this process life. *)

val errors : t -> int
(** Append/fsync/rotate failures this life. *)

val last_error : t -> string option

val dead : t -> bool
(** [true] once the log has failed unrecoverably. *)
