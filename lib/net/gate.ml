type t = {
  lock : Mutex.t;
  capacity : int;
  mutable in_flight : int;
  mutable peak : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Gate.create: capacity < 1";
  { lock = Mutex.create (); capacity; in_flight = 0; peak = 0; rejected = 0 }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_acquire t =
  locked t (fun () ->
      if t.in_flight >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        t.in_flight <- t.in_flight + 1;
        if t.in_flight > t.peak then t.peak <- t.in_flight;
        true
      end)

let release t =
  locked t (fun () ->
      if t.in_flight <= 0 then invalid_arg "Gate.release: no slot held";
      t.in_flight <- t.in_flight - 1)

let in_flight t = locked t (fun () -> t.in_flight)
let peak t = locked t (fun () -> t.peak)
let rejected t = locked t (fun () -> t.rejected)
