(** Newline-delimited framing over a socket.

    The wire protocol is the service's JSON-lines protocol verbatim: one
    request per [\n]-terminated line, one response line back.  The
    reader buffers partial TCP segments until a full line arrives, strips
    an optional trailing [\r], and bounds how many bytes it will hold
    for a single line so a client streaming garbage without a newline
    cannot grow the buffer without limit.

    Read timeouts are expected to come from [SO_RCVTIMEO] on the file
    descriptor: the resulting [EAGAIN]/[EWOULDBLOCK] surfaces as
    {!read_result.Timeout} rather than an exception, and connection
    resets surface as {!read_result.Eof} — a misbehaving peer never
    raises out of the reader. *)

type reader

val reader : ?max_line_bytes:int -> Unix.file_descr -> reader
(** [max_line_bytes] (default 1 MiB) bounds the unframed backlog held
    for one line. *)

type read_result =
  | Line of string  (** one complete frame, newline stripped *)
  | Eof  (** orderly close, reset, or a truncated trailing line *)
  | Timeout  (** the descriptor's receive timeout expired *)
  | Oversized
      (** [max_line_bytes] exceeded, by a complete line or by unframed
          backlog; the reader's buffer state is unreliable afterwards,
          so callers should answer and close *)

val read_line : reader -> read_result

val write_line : Unix.file_descr -> string -> unit
(** Write [line ^ "\n"] fully, resuming short writes.
    @raise Unix.Unix_error when the peer is gone ([EPIPE], reset) or the
    descriptor's send timeout expires — callers treat any of these as a
    dead connection. *)
