(** The server's persistence layer: WAL (level 1) under snapshots
    (level 2), plus recovery, compaction, health accounting and the
    model-driven [--durability auto] tuner.

    This module makes the server an instance of the paper's own
    two-level checkpoint model: the cheap-frequent level is an fsync'd
    WAL record per stateful op, the expensive-rare level is a full
    {!Snapshot} of cache + estimators, and {!auto_tune} literally feeds
    the measured costs and a crash rate into {!Ckpt_model.Optimizer.solve}
    to pick both intervals.

    {2 Recovery order (also the durability contract)}

    On {!create}:
    + leftover [*.tmp] files from a save killed mid-write are removed;
    + the newest snapshot that decodes cleanly is installed (older ones
      are fallbacks, a corrupt-only directory is a cold start);
    + the WAL is scanned and every record with
      [seq > snapshot.wal_seq] is replayed through
      {!Ckpt_service.Service.handle_line_string}, in order, with the
      persist hook unset (replay must not re-log) — a torn tail
      truncates the replay at the first bad record;
    + a fresh WAL segment is opened past every sequence seen, and the
      service's persist/stats hooks are installed.

    After that, an acked [observe]/[calibrate]/[replan] is on disk
    before its effect exists in memory, so it survives [kill -9];
    an op answered with a [durability] error was {e not} applied.
    A successful snapshot cut retires every WAL segment whose records
    it covers (compaction). *)

module Service = Ckpt_service.Service
module Json = Ckpt_json.Json

type config = {
  snapshot_dir : string option;
  snapshot_keep : int;
  wal : Wal.config option;
  auto : Json.t option;
      (** diagnostics of an [--durability auto] solve, echoed verbatim
          into the health payload (report-only) *)
}

val config :
  ?snapshot_dir:string ->
  ?snapshot_keep:int ->
  ?wal:Wal.config ->
  ?auto:Json.t ->
  unit ->
  config

type t

val create :
  ?chaos:Ckpt_chaos.Chaos.t ->
  ?inject:Wal.fault_hook ->
  ?log:(string -> unit) ->
  config ->
  Service.t ->
  (t, string) result
(** Run recovery (see above) against [service] and open the layer for
    writing.  [inject] overrides the chaos-derived durability fault
    hook (tests use it to hit an exact crash point); when absent and
    [chaos] is given, faults come from
    {!Ckpt_chaos.Chaos.durability_fault} with indices counting
    durability steps.  [Error _] means the WAL directory is configured
    but unusable — the server must refuse to start rather than ack
    undurable ops.
    @raise Wal.Injected_crash under an injected crash fault. *)

val persist : t -> string -> (unit, Ckpt_service.Protocol.error) result
(** The service persist hook: append the line to the WAL (group-commit
    policy applies).  [Ok ()] iff the op may be applied and acked.
    Installed by {!create}; exposed for harnesses that drive a service
    directly. *)

val cut : t -> service:Service.t -> seq:int -> (string, string) result
(** Snapshot now (caller holds the coordinator): flush the WAL, save a
    snapshot carrying the current WAL watermark, and on success retire
    the WAL segments it covers.  Failures are counted and surfaced in
    {!persistence}. *)

val tick : t -> unit
(** Time-based WAL group commit; call from any periodic loop. *)

val close : t -> unit
(** Flush and close the WAL (drain path; the final snapshot is the
    server's call to make). *)

val abort : t -> unit
(** Close without flushing — test harness process-death simulation. *)

(** {1 Introspection} *)

type persistence = {
  wal_enabled : bool;
  snapshots_enabled : bool;
  last_snapshot_seq : int;  (** request seq of the last cut, [-1] none *)
  last_snapshot_age_s : float;  (** seconds since that cut, [-1.] none *)
  snapshots_written : int;  (** successful cuts this life *)
  snapshot_failures : int;  (** failed cuts this life *)
  wal_segments : int;
  wal_bytes : int;
  wal_appended : int;
  wal_fsyncs : int;
  wal_errors : int;
  wal_synced_seq : int;
  replayed : int;  (** WAL records replayed at startup *)
  replay_dropped : int;  (** bad records/segments skipped at startup *)
  tmp_removed : int;  (** leftover [*.tmp] files removed at startup *)
  restored_plans : int;  (** cache entries installed from the snapshot *)
  last_error : string option;  (** most recent snapshot/WAL error *)
}

val persistence : t -> persistence
val health_json : t -> Json.t
(** The [stats] payload's ["durability"] object (includes the [auto]
    diagnostics when present). *)

val seq_base : t -> int
(** Restored snapshot's request seq ([0] on cold start) — the server's
    snapshot numbering continues from here. *)

val restored_plans : t -> int
val replayed : t -> int
val wal_enabled : t -> bool

(** {1 Model-driven tuning ([--durability auto])} *)

type auto_choice = {
  fsync_batch : int;
  snapshot_interval : int;  (** in requests, at [op_rate] *)
  fsync_cost_s : float;
  snapshot_cost_s : float;
  crash_rate_per_day : float;
  wal_loss_rate_per_day : float;
  op_rate : float;
  predicted_overhead : float;  (** [E(T_w)/T_e - 1] at the chosen plan *)
}

val measure_fsync_cost : dir:string -> (float, string) result
(** Median seconds per [write + fsync] of a WAL-record-sized probe file
    in [dir] (created if needed; the probe is removed). *)

val measure_snapshot_cost :
  dir:string -> Service.t -> (float, string) result
(** Seconds to cut one real snapshot of the service's current state
    into [dir].  The snapshot written is valid and kept. *)

val auto_tune :
  ?wal_loss_rate_per_day:float ->
  ?op_rate:float ->
  fsync_cost_s:float ->
  snapshot_cost_s:float ->
  crash_rate_per_day:float ->
  unit ->
  auto_choice
(** Solve the paper's two-level model for the server itself: level 1 =
    WAL fsync at the measured cost, level 2 = snapshot at the measured
    cost, failure rates [crash_rate_per_day] (process crash, recovered
    by WAL replay) and [wal_loss_rate_per_day] (default [crash/20]:
    storage-level loss, recovered from the snapshot), horizon one day
    at [op_rate] requests/second (default [1000.]).  The optimal
    interval counts map back to a group-commit batch (clamped to
    [\[1, 4096\]]) and a snapshot interval in requests.  Note the model
    optimizes total expected overhead assuming lost-and-rolled-back
    work is re-submitted — a batch above 1 widens the documented
    acked-loss window to [batch - 1] records. *)

val auto_choice_json : auto_choice -> Json.t
