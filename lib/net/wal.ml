module Chaos = Ckpt_chaos.Chaos

exception Injected_crash of string

type fault_hook = op:string -> Chaos.fault option

type config = {
  dir : string;
  fsync_batch : int;
  fsync_interval_ms : float;
  segment_bytes : int;
}

let config ?(fsync_batch = 1) ?(fsync_interval_ms = 50.) ?(segment_bytes = 1 lsl 20)
    ~dir () =
  if fsync_batch < 1 then invalid_arg "Wal.config: fsync_batch < 1";
  if segment_bytes < 1 then invalid_arg "Wal.config: segment_bytes < 1";
  if not (Float.is_finite fsync_interval_ms) || fsync_interval_ms < 0. then
    invalid_arg "Wal.config: fsync_interval_ms must be finite and >= 0";
  { dir; fsync_batch; fsync_interval_ms; segment_bytes }

(* ---------------- segment files ---------------- *)

let segment_re name =
  let prefix = "wal-" and suffix = ".log" in
  let np = String.length prefix and ns = String.length suffix in
  let n = String.length name in
  n > np + ns
  && String.sub name 0 np = prefix
  && String.sub name (n - ns) ns = suffix
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name np (n - np - ns))

let list_segments dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries |> List.filter segment_re |> List.sort compare
  | exception Sys_error _ -> []

let segment_name seq = Printf.sprintf "wal-%012d.log" seq

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* ---------------- record framing ---------------- *)

let frame ~seq payload =
  Printf.sprintf "W %d %d %08x\n%s\n" seq (String.length payload)
    (Crc32.string payload) payload

(* Parse one segment's bytes.  Returns the records readable before the
   first bad/torn record, whether the segment parsed to the end, and how
   many tail regions were dropped (0 or 1 — parsing stops at the first). *)
let parse_segment ~after s =
  let total = String.length s in
  let rec walk pos last acc =
    if pos >= total then (List.rev acc, true, 0)
    else
      let bad () = (List.rev acc, false, 1) in
      match String.index_from_opt s pos '\n' with
      | None -> bad ()
      | Some nl -> (
          let header = String.sub s pos (nl - pos) in
          match String.split_on_char ' ' header with
          | [ "W"; seq_s; len_s; crc_s ] -> (
              match
                ( int_of_string_opt seq_s,
                  int_of_string_opt len_s,
                  int_of_string_opt ("0x" ^ crc_s) )
              with
              | Some seq, Some len, Some crc
                when len >= 0 && seq > last && nl + 1 + len < total ->
                  if s.[nl + 1 + len] <> '\n' then bad ()
                  else if Crc32.sub s ~pos:(nl + 1) ~len <> crc then bad ()
                  else
                    let acc =
                      if seq > after then (seq, String.sub s (nl + 1) len) :: acc
                      else acc
                    in
                    walk (nl + 2 + len) seq acc
              | _ -> bad ())
          | _ -> bad ())
  in
  walk 0 0 []

type seg_info = {
  seg_path : string;
  seg_bytes : int;
  seg_records : (int * string) list;  (* seqs > after, in order *)
  seg_last : int;  (* last valid seq in the segment, 0 if none *)
  seg_clean : bool;
}

let scan_dir ?(log = fun _ -> ()) ?(after = 0) dir =
  List.map
    (fun name ->
      let path = Filename.concat dir name in
      match read_file path with
      | s ->
          let records, clean, _ = parse_segment ~after s in
          let seg_last =
            (* last *valid* seq regardless of [after] filtering *)
            let all, _, _ = parse_segment ~after:0 s in
            match List.rev all with [] -> 0 | (seq, _) :: _ -> seq
          in
          if not clean then
            log (Printf.sprintf "%s: torn or corrupt tail, replaying %d records"
                   path (List.length records));
          { seg_path = path; seg_bytes = String.length s;
            seg_records = records; seg_last; seg_clean = clean }
      | exception e ->
          log (Printf.sprintf "%s: unreadable: %s (skipping)" path
                 (Printexc.to_string e));
          { seg_path = path; seg_bytes = 0; seg_records = []; seg_last = 0;
            seg_clean = false })
    (list_segments dir)

type scan = {
  records : (int * string) list;
  dropped_records : int;
  skipped_segments : int;
  segments : int;
  bytes : int;
  last_seq : int;
}

let load ?(log = fun _ -> ()) ~dir () =
  let segs = scan_dir ~log dir in
  (* Truncate-at-first-bad across the whole log: once a segment is dirty,
     nothing after it is replayed (records there would leave a gap). *)
  let rec walk acc last dropped skipped dirty = function
    | [] -> (List.concat (List.rev acc), last, dropped, skipped)
    | seg :: rest ->
        if dirty then
          walk acc last dropped
            (skipped + if seg.seg_records <> [] || not seg.seg_clean then 1 else 0)
            dirty rest
        else
          let dropped = dropped + if seg.seg_clean then 0 else 1 in
          walk (seg.seg_records :: acc)
            (max last seg.seg_last)
            dropped skipped (not seg.seg_clean) rest
  in
  let records, last_seq, dropped_records, skipped_segments =
    walk [] 0 0 0 false segs
  in
  { records; dropped_records; skipped_segments;
    segments = List.length segs;
    bytes = List.fold_left (fun a s -> a + s.seg_bytes) 0 segs;
    last_seq }

(* ---------------- appender ---------------- *)

type t = {
  cfg : config;
  inject : fault_hook option;
  log : string -> unit;
  mutable fd : Unix.file_descr;
  mutable cur_path : string;
  mutable cur_base : int;  (* first seq this segment was opened for *)
  mutable offset : int;  (* bytes written to the current segment *)
  mutable synced_off : int;  (* offset covered by the last good fsync *)
  mutable next : int;
  mutable synced : int;  (* highest seq known durable *)
  mutable written : int;  (* highest seq fully written (>= synced) *)
  mutable unsynced : int;  (* records written since the last fsync *)
  mutable pending_fsync_fault : bool;
  mutable last_fsync_at : float;
  mutable sealed : (string * int) list;  (* (path, last seq), oldest first *)
  mutable appended : int;
  mutable fsyncs : int;
  mutable errors : int;
  mutable last_error : string option;
  mutable dead : bool;
}

let consult t ~op =
  match t.inject with None -> None | Some hook -> hook ~op

let crash op = raise (Injected_crash op)

let fail t msg =
  t.errors <- t.errors + 1;
  t.last_error <- Some msg;
  Error msg

(* Directory entries (new/removed segments) need a directory fsync to be
   durable.  Same benign-tolerance policy as Snapshot.fsync_dir. *)
let fsync_dir_result dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.fsync fd with
          | () -> Ok ()
          | exception Unix.Unix_error ((EINVAL | ENOSYS | EOPNOTSUPP | EBADF), _, _) ->
              Ok ()
          | exception Unix.Unix_error (err, fn, _) ->
              Error (Printf.sprintf "fsync %s: %s" fn (Unix.error_message err)))
  | exception Unix.Unix_error ((EINVAL | ENOSYS | EOPNOTSUPP | EACCES), _, _) -> Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s %s: %s" fn dir (Unix.error_message err))

let open_segment t ~base =
  (match consult t ~op:"segment-create" with
  | Some Chaos.Crash | Some Chaos.Torn -> crash "segment-create"
  | _ -> ());
  let path = Filename.concat t.cfg.dir (segment_name base) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match fsync_dir_result t.cfg.dir with
  | Ok () -> ()
  | Error m -> t.log (Printf.sprintf "ckpt_wal: %s (segment entry not yet durable)" m));
  t.fd <- fd;
  t.cur_path <- path;
  t.cur_base <- base;
  t.offset <- 0;
  t.synced_off <- 0

let open_ ?inject ?(log = fun _ -> ()) cfg ~next_seq =
  try
    if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
    let sealed =
      scan_dir ~log cfg.dir
      |> List.map (fun seg -> (seg.seg_path, seg.seg_last))
    in
    let t =
      { cfg; inject; log;
        fd = Unix.stdout (* replaced below *);
        cur_path = ""; cur_base = 0; offset = 0; synced_off = 0;
        next = next_seq; synced = next_seq - 1; written = next_seq - 1;
        unsynced = 0; pending_fsync_fault = false;
        last_fsync_at = Unix.gettimeofday ();
        sealed; appended = 0; fsyncs = 0; errors = 0; last_error = None;
        dead = false }
    in
    open_segment t ~base:next_seq;
    (* The fresh segment may have truncated an old file of the same name;
       drop it from the sealed list if so. *)
    t.sealed <- List.filter (fun (p, _) -> p <> t.cur_path) t.sealed;
    Ok t
  with
  | Injected_crash _ as e -> raise e
  | Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "wal open failed: %s %s: %s" fn arg (Unix.error_message err))
  | Sys_error m -> Error ("wal open failed: " ^ m)

let write_all ?(chunk = max_int) fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (min chunk (len - !off))
  done

(* Erase the unsynced suffix so records whose ops were refused (or were
   acked only under a relaxed batch) cannot resurface on replay. *)
(* [t.next] is deliberately NOT rolled back: erased seqs simply never
   appear on disk.  Replay tolerates gaps (it only requires monotonic
   seqs), and reusing an erased seq could collide with a snapshot
   watermark that already covers it, silently skipping later records. *)
let erase_unsynced t reason =
  t.unsynced <- 0;
  t.written <- t.synced;
  try
    Unix.ftruncate t.fd t.synced_off;
    ignore (Unix.lseek t.fd t.synced_off Unix.SEEK_SET);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.offset <- t.synced_off;
    fail t reason
  with Unix.Unix_error (err, fn, _) ->
    t.dead <- true;
    fail t
      (Printf.sprintf "%s; recovery truncate failed (%s: %s), wal disabled"
         reason fn (Unix.error_message err))

let do_flush t =
  if t.unsynced = 0 then Ok ()
  else begin
    (match consult t ~op:"fsync" with
    | Some Chaos.Crash | Some Chaos.Torn -> crash "fsync"
    | Some Chaos.Fsync_fail -> t.pending_fsync_fault <- true
    | _ -> ());
    if t.pending_fsync_fault then begin
      t.pending_fsync_fault <- false;
      erase_unsynced t "injected fsync failure"
    end
    else
      match Unix.fsync t.fd with
      | () ->
          t.synced_off <- t.offset;
          t.synced <- t.written;
          t.unsynced <- 0;
          t.fsyncs <- t.fsyncs + 1;
          t.last_fsync_at <- Unix.gettimeofday ();
          Ok ()
      | exception Unix.Unix_error (err, fn, _) ->
          erase_unsynced t
            (Printf.sprintf "wal fsync failed: %s: %s" fn (Unix.error_message err))
  end

let seal t =
  if t.offset > 0 then begin
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.sealed <- t.sealed @ [ (t.cur_path, t.written) ];
    open_segment t ~base:t.next
  end

let maybe_rotate t =
  if t.offset >= t.cfg.segment_bytes then
    match do_flush t with Ok () -> seal t | Error _ -> ()

let append t payload =
  if t.dead then
    Error ("wal disabled after unrecoverable failure: "
           ^ Option.value ~default:"unknown" t.last_error)
  else begin
    maybe_rotate t;
    let seq = t.next in
    let fault = consult t ~op:"append" in
    (match fault with Some Chaos.Crash -> crash "append" | _ -> ());
    let record = frame ~seq payload in
    match
      (match fault with
      | Some Chaos.Torn ->
          write_all t.fd (String.sub record 0 (String.length record / 2));
          crash "append-torn"
      | Some Chaos.Short_write -> write_all ~chunk:7 t.fd record
      | Some Chaos.Fsync_fail ->
          t.pending_fsync_fault <- true;
          write_all t.fd record
      | _ -> write_all t.fd record)
    with
    | () ->
        t.offset <- t.offset + String.length record;
        t.next <- seq + 1;
        t.written <- seq;
        t.unsynced <- t.unsynced + 1;
        t.appended <- t.appended + 1;
        if t.unsynced >= t.cfg.fsync_batch then
          match do_flush t with Ok () -> Ok seq | Error m -> Error m
        else Ok seq
    | exception Unix.Unix_error (err, fn, _) ->
        (* A partial record may be on disk; erase back to the synced
           prefix so it cannot be replayed. *)
        erase_unsynced t
          (Printf.sprintf "wal append failed: %s: %s" fn (Unix.error_message err))
  end

let flush t = if t.dead then Error "wal disabled" else do_flush t

let flush_if_due t =
  if (not t.dead) && t.unsynced > 0 then begin
    let age_ms = (Unix.gettimeofday () -. t.last_fsync_at) *. 1000. in
    if age_ms >= t.cfg.fsync_interval_ms then
      match do_flush t with
      | Ok () -> ()
      | Error m -> t.log ("ckpt_wal: timed flush failed: " ^ m)
  end

let retire t ~upto =
  if not t.dead then ignore (do_flush t);
  seal t;
  let deleted = ref 0 in
  t.sealed <-
    List.filter
      (fun (path, last) ->
        if last <= upto then begin
          (match consult t ~op:"retire" with
          | Some Chaos.Crash | Some Chaos.Torn -> crash "retire"
          | _ -> ());
          (try Sys.remove path with Sys_error _ -> ());
          incr deleted;
          false
        end
        else true)
      t.sealed;
  if !deleted > 0 then ignore (fsync_dir_result t.cfg.dir);
  !deleted

let close t =
  (if not t.dead then match do_flush t with Ok () | Error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Close without the flush: simulates process death for tests — any
   unsynced tail stays exactly as a kill -9 would leave it. *)
let abort t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let next_seq t = t.next
let synced_seq t = max 0 t.synced

let segments t = List.length t.sealed + 1
let bytes t = List.fold_left (fun a (p, _) ->
    a + (try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0))
    t.offset t.sealed
let appended t = t.appended
let fsyncs t = t.fsyncs
let errors t = t.errors
let last_error t = t.last_error
let dead t = t.dead
