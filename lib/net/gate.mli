(** The server's bounded admission gate.

    A counting semaphore that never blocks: a request either takes a
    slot immediately or is turned away, which is what lets the server
    answer [{"code": "overloaded"}] under pressure instead of queueing
    unboundedly.  Slots cover a request's whole residency — waiting for
    the coordinator {e and} executing — so [capacity] bounds total
    in-flight requests across every connection.

    All operations are mutex-protected; connection threads share one
    gate. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val try_acquire : t -> bool
(** Take a slot, or return [false] (and count a rejection) when all
    [capacity] slots are held. *)

val release : t -> unit
(** Give a slot back.  Calls without a matching {!try_acquire} are a
    programming error.
    @raise Invalid_argument when no slot is held. *)

val in_flight : t -> int
(** Slots currently held. *)

val peak : t -> int
(** High-water mark of {!in_flight} since [create]. *)

val rejected : t -> int
(** Total requests turned away so far. *)
