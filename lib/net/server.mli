(** The networked planning server: a TCP front door for
    {!Ckpt_service.Service}.

    An accept loop hands each connection to its own thread; frames are
    newline-delimited JSON ({!Frame}), and every request line is answered
    with exactly one response line from the service — the same protocol
    (and byte-identical responses) as the stdin mode of [ckpt_serve].

    {2 Admission and deadlines}

    The service coordinator is single-threaded (stateful ops require
    line order), so connection threads funnel through one lock.  A
    bounded {!Gate} fronts that funnel: when [max_inflight] requests are
    already queued or executing, new requests are answered immediately
    with [{"ok": false, "error": {"code": "overloaded"}}] instead of
    queueing unboundedly.  A request that does get a slot but cannot
    reach the coordinator within [request_deadline_ms] is answered
    ["deadline-exceeded"].  Idle connections are reaped after
    [idle_timeout_s] (the socket's receive timeout), and response writes
    carry the same bound as a send timeout, so a stalled client cannot
    wedge its thread.

    {2 Durability}

    With [snapshot_dir] set, the server cuts an atomic {!Snapshot} every
    [snapshot_interval] requests and once more on drain; [start]
    warm-restarts from the newest valid snapshot, so a restarted server
    serves previously-solved plans from cache and keeps its telemetry
    session.  Snapshot sequence numbers resume from the restored
    snapshot's [seq], so filenames stay monotonic across restarts and
    pruning (newest-by-name) never favors a previous incarnation's stale
    snapshots over fresh ones.

    With [wal_dir] also set, every stateful op ([observe] / [calibrate]
    / [replan]) is appended to a {!Wal} — and fsynced per the
    [fsync_batch] / [fsync_interval_ms] group-commit policy — before it
    is applied and acked, and recovery becomes snapshot + replay of the
    WAL suffix past the snapshot's watermark ({!Durable} owns the exact
    order).  Each successful snapshot retires the WAL segments it
    covers.  [stats] responses then carry a ["durability"] health
    object, and {!persistence} exposes the same counters in-process.

    {2 Drain}

    {!stop} (also triggered by an in-band [{"op": "shutdown"}] request,
    and by SIGTERM in the binary) begins a graceful drain: the accept
    loop closes the listening socket, every in-flight request completes
    and is answered, connection threads exit after their current
    request, and a final snapshot is cut.  {!join} blocks until the
    drain is complete.  The server does not own the service — callers
    still {!Ckpt_service.Service.shutdown} it afterwards.

    {2 Chaos}

    With a {!Ckpt_chaos.Chaos.t} installed, every accepted connection
    consults the [Net] site (index = accept order): the connection may
    be dropped, slowed, half-closed after its first response, or have
    garbage bytes prepended to its first line.  Faulted connections
    degrade per the framing/error contract; healthy connections are
    unaffected — the soak test's invariant. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  backlog : int;
  max_inflight : int;  (** admission gate capacity, >= 1 *)
  request_deadline_ms : float;  (** wait-for-coordinator budget *)
  idle_timeout_s : float;  (** per-connection receive/send timeout *)
  max_line_bytes : int;  (** per-line framing bound *)
  snapshot_dir : string option;
  snapshot_interval : int;  (** requests between snapshots; [0] = only on drain *)
  snapshot_keep : int;
  wal_dir : string option;  (** enables the write-ahead log *)
  fsync_batch : int;  (** WAL group-commit batch, >= 1 (1 = strict) *)
  fsync_interval_ms : float;  (** WAL time-based flush bound *)
  chaos : Ckpt_chaos.Chaos.t option;
      (** [Net]-site (per connection) and [Durability]-site (per
          WAL/snapshot step) fault injection (testing only) *)
  durability_inject : Wal.fault_hook option;
      (** overrides the chaos-derived durability hook — tests use it to
          hit one exact crash point *)
  durability_auto : Ckpt_json.Json.t option;
      (** [--durability auto] diagnostics, echoed into [stats] *)
}

val default_config : config
(** Loopback, ephemeral port, 64 in-flight, 30 s deadlines, 1 MiB
    lines, snapshots and WAL off, [fsync_batch = 1]. *)

type t

val start : ?config:config -> Ckpt_service.Service.t -> t
(** Bind, run {!Durable} recovery (tmp cleanup, newest valid snapshot,
    WAL replay past the watermark), and spawn the accept loop.  The
    service must not be driven from elsewhere while the server runs.
    Sets [SIGPIPE] to ignore process-wide: a peer resetting its
    connection must surface as [EPIPE] from the write, never kill the
    process.
    @raise Invalid_argument on nonsensical config values.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Failure when [wal_dir] is configured but unusable — the
    server refuses to start rather than ack undurable ops. *)

val port : t -> int
(** The actually bound port (resolves [port = 0]). *)

val service : t -> Ckpt_service.Service.t

val restored : t -> int
(** Plans installed from the warm-restart snapshot (0 on a cold start). *)

val persistence : t -> Durable.persistence
(** Persistence health: snapshot age/seq and failure counts, WAL
    segment/byte/fsync/error counters, startup replay accounting — the
    same numbers the [stats] response reports under ["durability"]. *)

val requests : t -> int
(** Requests answered through the socket so far (excludes overloaded
    and deadline rejections, which {!rejections} counts). *)

val rejections : t -> int
(** Requests answered with [overloaded] or [deadline-exceeded]. *)

val op_counts : t -> (string * int) list
(** Requests answered so far grouped by the line's ["op"] field, sorted
    by op name — ["invalid"] buckets lines whose op could not be read
    (non-JSON or missing field), and in-band ["shutdown"] requests are
    counted even though they never reach the service.  The server parses
    each line's envelope exactly once and routes from it, so these
    counters cost no extra parse. *)

val connections : t -> int
(** Connections accepted so far. *)

val draining : t -> bool

val snapshot_now : t -> (string, string) result
(** Cut a snapshot immediately (requires [snapshot_dir]); takes the
    coordinator lock, so it serializes with request handling. *)

val stop : t -> unit
(** Begin a graceful drain; idempotent, returns immediately.
    Async-signal-safe (a single atomic store, no locks taken), so it may
    be called directly from a SIGTERM/SIGINT handler. *)

val join : t -> unit
(** Wait for the drain to complete: accept loop exited, listening
    socket closed, every connection thread joined, final snapshot cut,
    WAL flushed and closed.  Call {!stop} first (or send
    [{"op": "shutdown"}]). *)

val abort : t -> unit
(** Stop and join like {!join} but cut no final snapshot and do not
    flush the WAL: the on-disk state is exactly what [kill -9] at this
    point would have left.  Test harness only — it turns the in-process
    restart property from snapshot granularity into op granularity. *)
