module Json = Ckpt_json.Json
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol
module Chaos = Ckpt_chaos.Chaos
module Optimizer = Ckpt_model.Optimizer
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead
module Speedup = Ckpt_model.Speedup
module Failure_spec = Ckpt_failures.Failure_spec

type config = {
  snapshot_dir : string option;
  snapshot_keep : int;
  wal : Wal.config option;
  auto : Json.t option;
}

let config ?snapshot_dir ?(snapshot_keep = 4) ?wal ?auto () =
  { snapshot_dir; snapshot_keep; wal; auto }

type t = {
  cfg : config;
  log : string -> unit;
  inject : Wal.fault_hook option;
  wal : Wal.t option;
  mutable applied : int;  (* last WAL seq applied to the service *)
  seq_base : int;
  restored_plans : int;
  replayed : int;
  replay_dropped : int;
  tmp_removed : int;
  mutable snapshots_written : int;
  mutable snapshot_failures : int;
  mutable last_snapshot_seq : int;  (* -1 = none this life *)
  mutable last_snapshot_at : float;  (* Unix time of the last cut *)
  mutable last_error : string option;
}

let persist t line =
  match t.wal with
  | None -> Ok ()
  | Some w -> (
      match Wal.append w line with
      | Ok seq ->
          t.applied <- seq;
          Ok ()
      | Error m ->
          t.last_error <- Some m;
          Error
            (Protocol.error_v "durability"
               ("write-ahead log append failed; op not applied: " ^ m)))

(* ---------------- health ---------------- *)

type persistence = {
  wal_enabled : bool;
  snapshots_enabled : bool;
  last_snapshot_seq : int;
  last_snapshot_age_s : float;
  snapshots_written : int;
  snapshot_failures : int;
  wal_segments : int;
  wal_bytes : int;
  wal_appended : int;
  wal_fsyncs : int;
  wal_errors : int;
  wal_synced_seq : int;
  replayed : int;
  replay_dropped : int;
  tmp_removed : int;
  restored_plans : int;
  last_error : string option;
}

let persistence t =
  let wal_or f d = match t.wal with None -> d | Some w -> f w in
  let last_error =
    (* The freshest of the WAL's and the snapshot path's last errors:
       WAL errors are recorded inside Wal, snapshot errors here. *)
    match wal_or Wal.last_error None with
    | Some m -> Some m
    | None -> t.last_error
  in
  { wal_enabled = t.wal <> None;
    snapshots_enabled = t.cfg.snapshot_dir <> None;
    last_snapshot_seq = t.last_snapshot_seq;
    last_snapshot_age_s =
      (if t.last_snapshot_seq < 0 then -1.
       else Unix.gettimeofday () -. t.last_snapshot_at);
    snapshots_written = t.snapshots_written;
    snapshot_failures = t.snapshot_failures;
    wal_segments = wal_or Wal.segments 0;
    wal_bytes = wal_or Wal.bytes 0;
    wal_appended = wal_or Wal.appended 0;
    wal_fsyncs = wal_or Wal.fsyncs 0;
    wal_errors = wal_or Wal.errors 0;
    wal_synced_seq = wal_or Wal.synced_seq 0;
    replayed = t.replayed;
    replay_dropped = t.replay_dropped;
    tmp_removed = t.tmp_removed;
    restored_plans = t.restored_plans;
    last_error }

let health_json t =
  let p = persistence t in
  let n v = Json.Number (float_of_int v) in
  Json.Obj
    ([ ("wal", Json.Bool p.wal_enabled);
       ("snapshots", Json.Bool p.snapshots_enabled);
       ("last_snapshot_seq", n p.last_snapshot_seq);
       ("last_snapshot_age_s", Json.Number p.last_snapshot_age_s);
       ("snapshots_written", n p.snapshots_written);
       ("snapshot_failures", n p.snapshot_failures);
       ("wal_segments", n p.wal_segments);
       ("wal_bytes", n p.wal_bytes);
       ("wal_appended", n p.wal_appended);
       ("wal_fsyncs", n p.wal_fsyncs);
       ("wal_errors", n p.wal_errors);
       ("wal_synced_seq", n p.wal_synced_seq);
       ("replayed", n p.replayed);
       ("replay_dropped", n p.replay_dropped);
       ("tmp_removed", n p.tmp_removed);
       ("restored_plans", n p.restored_plans);
       ( "last_error",
         match p.last_error with None -> Json.Null | Some m -> Json.String m ) ]
    @ match t.cfg.auto with None -> [] | Some a -> [ ("auto", a) ])

(* ---------------- recovery + create ---------------- *)

let create ?chaos ?inject ?(log = fun _ -> ()) cfg service =
  let inject =
    match (inject, chaos) with
    | (Some _ as h), _ -> h
    | None, Some chaos ->
        let step = ref (-1) in
        Some
          (fun ~op:_ ->
            incr step;
            Chaos.durability_fault chaos ~index:!step)
    | None, None -> None
  in
  let tmp_removed =
    match cfg.snapshot_dir with
    | None -> 0
    | Some dir -> Snapshot.clean_tmp ~log ~dir ()
  in
  let restored_plans, seq_base, watermark =
    match cfg.snapshot_dir with
    | None -> (0, 0, 0)
    | Some dir -> (
        match Snapshot.load_latest ~log ~dir () with
        | None -> (0, 0, 0)
        | Some state ->
            ( Snapshot.install state service,
              state.Snapshot.seq,
              state.Snapshot.wal_seq ))
  in
  let wal_result =
    match cfg.wal with
    | None -> Ok (None, 0, 0)
    | Some wcfg ->
        let scan = Wal.load ~log ~dir:wcfg.Wal.dir () in
        let suffix =
          List.filter (fun (seq, _) -> seq > watermark) scan.Wal.records
        in
        (* Replay in order through the service's normal line handler;
           the persist hook is not installed yet, so nothing re-logs.
           Responses are discarded — their effects on the session are
           the point. *)
        let last_replayed =
          List.fold_left
            (fun _ (seq, line) ->
              ignore (Service.handle_line_string service line);
              seq)
            watermark suffix
        in
        let replayed = List.length suffix in
        if replayed > 0 || scan.Wal.dropped_records > 0
           || scan.Wal.skipped_segments > 0 then
          log
            (Printf.sprintf
               "ckpt_wal: replayed %d records past watermark %d (%d bad records truncated, %d segments skipped)"
               replayed watermark scan.Wal.dropped_records
               scan.Wal.skipped_segments);
        let next_seq = max last_replayed scan.Wal.last_seq + 1 in
        Result.map
          (fun w -> (Some w, replayed, scan.Wal.dropped_records + scan.Wal.skipped_segments))
          (Wal.open_ ?inject ~log wcfg ~next_seq)
  in
  Result.map
    (fun (wal, replayed, replay_dropped) ->
      let t =
        { cfg; log; inject; wal;
          applied = (match wal with None -> 0 | Some w -> Wal.next_seq w - 1);
          seq_base; restored_plans; replayed; replay_dropped; tmp_removed;
          snapshots_written = 0; snapshot_failures = 0;
          last_snapshot_seq = -1; last_snapshot_at = 0.; last_error = None }
      in
      if t.wal <> None then
        Service.set_persist_hook service (Some (fun line -> persist t line));
      Service.set_stats_extra service
        (Some (fun () -> [ ("durability", health_json t) ]));
      t)
    wal_result

(* ---------------- snapshots + compaction ---------------- *)

let snapshot_inject t =
  Option.map
    (fun hook stage ->
      match hook ~op:stage with
      | Some Chaos.Crash | Some Chaos.Torn -> raise (Wal.Injected_crash stage)
      | Some Chaos.Fsync_fail -> raise (Unix.Unix_error (Unix.EIO, "fsync", stage))
      | Some _ | None -> ())
    t.inject

let cut t ~service ~seq =
  match t.cfg.snapshot_dir with
  | None -> Error "no snapshot directory configured"
  | Some dir -> (
      let flushed = match t.wal with None -> Ok () | Some w -> Wal.flush w in
      match flushed with
      | Error m ->
          t.snapshot_failures <- t.snapshot_failures + 1;
          t.last_error <- Some m;
          Error ("wal flush before snapshot failed: " ^ m)
      | Ok () -> (
          let state = Snapshot.of_service ~wal_seq:t.applied ~seq service in
          match
            Snapshot.save ?inject:(snapshot_inject t) ~keep:t.cfg.snapshot_keep
              ~dir state
          with
          | Ok path ->
              t.snapshots_written <- t.snapshots_written + 1;
              t.last_snapshot_seq <- seq;
              t.last_snapshot_at <- Unix.gettimeofday ();
              (* A durable snapshot covers every record up to its
                 watermark: those segments are dead weight now. *)
              Option.iter
                (fun w -> ignore (Wal.retire w ~upto:state.Snapshot.wal_seq))
                t.wal;
              Ok path
          | Error m ->
              t.snapshot_failures <- t.snapshot_failures + 1;
              t.last_error <- Some m;
              Error m))

let tick t = Option.iter Wal.flush_if_due t.wal
let close t = Option.iter Wal.close t.wal
let abort t = Option.iter Wal.abort t.wal

let seq_base (t : t) = t.seq_base
let restored_plans (t : t) = t.restored_plans
let replayed (t : t) = t.replayed
let wal_enabled (t : t) = t.wal <> None

(* ---------------- model-driven tuning ---------------- *)

type auto_choice = {
  fsync_batch : int;
  snapshot_interval : int;
  fsync_cost_s : float;
  snapshot_cost_s : float;
  crash_rate_per_day : float;
  wal_loss_rate_per_day : float;
  op_rate : float;
  predicted_overhead : float;
}

let time_s f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let measure_fsync_cost ~dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let probe = Filename.concat dir ".fsync-probe" in
    let fd = Unix.openfile probe [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let payload = String.make 256 'x' in
    let samples =
      Fun.protect ~finally:(fun () ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          try Sys.remove probe with Sys_error _ -> ())
        (fun () ->
          List.init 7 (fun _ ->
              time_s (fun () ->
                  ignore (Unix.write_substring fd payload 0 (String.length payload));
                  Unix.fsync fd)))
    in
    let sorted = List.sort compare samples in
    Ok (List.nth sorted (List.length sorted / 2))
  with
  | Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "fsync probe failed: %s: %s" fn (Unix.error_message err))
  | Sys_error m -> Error ("fsync probe failed: " ^ m)

let measure_snapshot_cost ~dir service =
  let state = Snapshot.of_service ~wal_seq:0 ~seq:0 service in
  let t0 = Unix.gettimeofday () in
  match Snapshot.save ~dir state with
  | Ok _ -> Ok (Unix.gettimeofday () -. t0)
  | Error m -> Error m

let auto_tune ?wal_loss_rate_per_day ?(op_rate = 1000.) ~fsync_cost_s
    ~snapshot_cost_s ~crash_rate_per_day () =
  if not (Float.is_finite op_rate) || op_rate <= 0. then
    invalid_arg "Durable.auto_tune: op_rate must be positive";
  if not (Float.is_finite crash_rate_per_day) || crash_rate_per_day <= 0. then
    invalid_arg "Durable.auto_tune: crash_rate_per_day must be positive";
  let wal_loss_rate_per_day =
    match wal_loss_rate_per_day with
    | Some r ->
        if not (Float.is_finite r) || r <= 0. then
          invalid_arg "Durable.auto_tune: wal_loss_rate_per_day must be positive";
        r
    | None -> crash_rate_per_day /. 20.
  in
  let te = Failure_spec.seconds_per_day in
  let problem =
    { Optimizer.te;
      speedup = Speedup.linear ~kappa:1.;
      levels =
        [| Level.v ~name:"wal-fsync" (Overhead.constant (Float.max 1e-6 fsync_cost_s));
           Level.v ~name:"snapshot" (Overhead.constant (Float.max 1e-5 snapshot_cost_s))
        |];
      alloc = 1.0;  (* process restart, seconds *)
      spec =
        Failure_spec.v ~baseline_scale:1.
          [| crash_rate_per_day; wal_loss_rate_per_day |] }
  in
  let plan = Optimizer.solve ~fixed_n:1. problem in
  let interval_requests level =
    let x = Float.max 1. plan.Optimizer.xs.(level) in
    te /. x *. op_rate
  in
  let clamp lo hi v = max lo (min hi v) in
  let fsync_batch =
    clamp 1 4096 (int_of_float (Float.round (interval_requests 0)))
  in
  let snapshot_interval =
    clamp fsync_batch 10_000_000 (int_of_float (Float.round (interval_requests 1)))
  in
  { fsync_batch; snapshot_interval; fsync_cost_s; snapshot_cost_s;
    crash_rate_per_day; wal_loss_rate_per_day; op_rate;
    predicted_overhead = (plan.Optimizer.wall_clock /. te) -. 1. }

let auto_choice_json c =
  Json.Obj
    [ ("fsync_batch", Json.Number (float_of_int c.fsync_batch));
      ("snapshot_interval", Json.Number (float_of_int c.snapshot_interval));
      ("fsync_cost_s", Json.Number c.fsync_cost_s);
      ("snapshot_cost_s", Json.Number c.snapshot_cost_s);
      ("crash_rate_per_day", Json.Number c.crash_rate_per_day);
      ("wal_loss_rate_per_day", Json.Number c.wal_loss_rate_per_day);
      ("op_rate", Json.Number c.op_rate);
      ("predicted_overhead", Json.Number c.predicted_overhead) ]
