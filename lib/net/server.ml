module Json = Ckpt_json.Json
module Service = Ckpt_service.Service
module Protocol = Ckpt_service.Protocol
module Chaos = Ckpt_chaos.Chaos

type config = {
  host : string;
  port : int;
  backlog : int;
  max_inflight : int;
  request_deadline_ms : float;
  idle_timeout_s : float;
  max_line_bytes : int;
  snapshot_dir : string option;
  snapshot_interval : int;
  snapshot_keep : int;
  wal_dir : string option;
  fsync_batch : int;
  fsync_interval_ms : float;
  chaos : Chaos.t option;
  durability_inject : Wal.fault_hook option;
  durability_auto : Json.t option;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_inflight = 64;
    request_deadline_ms = 30_000.;
    idle_timeout_s = 30.;
    max_line_bytes = 1 lsl 20;
    snapshot_dir = None;
    snapshot_interval = 256;
    snapshot_keep = 4;
    wal_dir = None;
    fsync_batch = 1;
    fsync_interval_ms = 50.;
    chaos = None;
    durability_inject = None;
    durability_auto = None }

type t = {
  config : config;
  service : Service.t;
  listen_fd : Unix.file_descr;
  port : int;
  gate : Gate.t;
  (* Serializes every Service call and snapshot cut: the service's
     stateful ops assume a single coordinator. *)
  coordinator : Mutex.t;
  state_lock : Mutex.t;  (* the mutable counters below *)
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  (* Thread ids of connection threads that have finished: the accept
     loop joins and drops these opportunistically so [conn_threads]
     stays bounded by the number of *live* connections. *)
  finished : (int, unit) Hashtbl.t;
  mutable conn_seq : int;
  mutable requests : int;  (* answered by this incarnation *)
  (* Requests answered, keyed by the line's "op" field — the routing
     observability behind {!op_counts}. *)
  ops : (string, int) Hashtbl.t;
  mutable last_snapshot_at : int;  (* [requests] when the last snapshot was cut *)
  (* The persistence layer: WAL + snapshots + recovery + health.  Also
     owns the snapshot seq base — filenames must stay monotonic across
     restarts ([seq_base + requests]), or a restarted server's fresh
     snapshots would sort below — and be pruned in favor of — the
     previous incarnation's stale ones. *)
  durable : Durable.t;
  draining : bool Atomic.t;
}

let locked t f =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) f

let port t = t.port
let service t = t.service
let restored t = Durable.restored_plans t.durable
let persistence t = Durable.persistence t.durable
let requests t = locked t (fun () -> t.requests)
let rejections t = Gate.rejected t.gate
let connections t = locked t (fun () -> t.conn_seq)

(* [draining] is an atomic, not a [locked] field: [stop] is called from
   the binary's SIGTERM/SIGINT handler, which OCaml may run at a poll
   point in a thread that already holds [state_lock] — taking a mutex
   there would self-deadlock.  A plain atomic store is signal-safe. *)
let draining t = Atomic.get t.draining
let stop t = Atomic.set t.draining true

(* Caller holds [state_lock]. *)
let count_op_locked t op =
  let key = Option.value op ~default:"invalid" in
  Hashtbl.replace t.ops key (1 + Option.value (Hashtbl.find_opt t.ops key) ~default:0)

let op_counts t =
  locked t (fun () -> Hashtbl.fold (fun op n acc -> (op, n) :: acc) t.ops [])
  |> List.sort compare

(* ---------------- responses outside the service ---------------- *)

(* One JSON parse per request line yields everything the server itself
   routes on: the id (which must survive even on paths that never reach
   the service's parser, so overload rejections can be correlated by
   the client) and the op (in-band shutdown routing and the per-op
   accounting behind {!op_counts}).  A line that is not JSON has
   neither. *)
let envelope_of_line line =
  match Json.parse line with
  | json -> (Json.member "id" json, Json.string_field "op" json)
  | exception _ -> (None, None)

let overloaded_response ?id ~capacity () =
  Protocol.error_response ?id
    (Protocol.error_v "overloaded"
       (Printf.sprintf "admission queue full (%d requests in flight); retry later" capacity))

let deadline_response ?id ~ms () =
  Protocol.error_response ?id
    (Protocol.error_v "deadline-exceeded"
       (Printf.sprintf "request waited more than %.0f ms for the coordinator" ms))

let oversized_response ~max_line_bytes =
  Protocol.error_response
    (Protocol.error_v "invalid-request"
       (Printf.sprintf "request line exceeds %d bytes" max_line_bytes))

let internal_response ?id e =
  Protocol.error_response ?id (Protocol.error_v "internal" (Printexc.to_string e))

let shutdown_response = function
  | Some id -> Json.Obj [ ("id", id); ("ok", Json.Bool true); ("draining", Json.Bool true) ]
  | None -> Json.Obj [ ("ok", Json.Bool true); ("draining", Json.Bool true) ]

(* ---------------- snapshots ---------------- *)

(* Caller holds the coordinator lock. *)
let cut_snapshot_locked t =
  match t.config.snapshot_dir with
  | None -> Error "no snapshot directory configured"
  | Some _ ->
      let reqs = locked t (fun () -> t.requests) in
      let r =
        Durable.cut t.durable ~service:t.service
          ~seq:(Durable.seq_base t.durable + reqs)
      in
      (match r with
      | Ok _ -> locked t (fun () -> t.last_snapshot_at <- reqs)
      | Error m -> Format.eprintf "ckpt_net: snapshot failed: %s@." m);
      r

let snapshot_now t =
  Mutex.lock t.coordinator;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.coordinator) (fun () ->
      cut_snapshot_locked t)

let maybe_snapshot_locked t =
  let interval = t.config.snapshot_interval in
  if t.config.snapshot_dir <> None && interval > 0 then begin
    let due = locked t (fun () -> t.requests - t.last_snapshot_at >= interval) in
    if due then ignore (cut_snapshot_locked t)
  end

(* ---------------- request path ---------------- *)

(* [Mutex] has no timed lock: spin on [try_lock] with sub-millisecond
   naps.  The coordinator's critical sections are short (one request),
   so the spin granularity costs far less than the deadline budget. *)
let lock_with_deadline mutex ~ms =
  let deadline = Unix.gettimeofday () +. (ms /. 1000.) in
  let rec try_until () =
    if Mutex.try_lock mutex then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 2e-4;
      try_until ()
    end
  in
  try_until ()

(* Returns the response already rendered to its wire line: the hot
   plan-shaped responses are streamed by [Service.handle_line_string]
   without ever materializing a JSON tree, and the server writes the
   string out verbatim. *)
let process t ?id ~op line =
  if not (Gate.try_acquire t.gate) then
    Json.to_string (overloaded_response ?id ~capacity:(Gate.capacity t.gate) ())
  else
    Fun.protect ~finally:(fun () -> Gate.release t.gate) @@ fun () ->
    if not (lock_with_deadline t.coordinator ~ms:t.config.request_deadline_ms) then
      Json.to_string (deadline_response ?id ~ms:t.config.request_deadline_ms ())
    else
      Fun.protect ~finally:(fun () -> Mutex.unlock t.coordinator) @@ fun () ->
      let response =
        (* The service answers every parseable-or-not line structurally;
           anything it still raises is a server bug, answered as an
           [internal] error rather than a dropped connection. *)
        try Service.handle_line_string t.service line
        with e -> Json.to_string (internal_response ?id e)
      in
      locked t (fun () ->
          t.requests <- t.requests + 1;
          count_op_locked t op);
      maybe_snapshot_locked t;
      response

(* ---------------- connections ---------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let handle_connection t fd index =
  let fault = Option.bind t.config.chaos (fun c -> Chaos.net_fault c ~index) in
  match fault with
  | Some Chaos.Drop -> close_quietly fd
  | _ ->
      let slow = match fault with Some (Chaos.Stall d) -> d | _ -> 0. in
      let garbage = fault = Some Chaos.Garbage in
      let half_close = fault = Some Chaos.Half_close in
      let reader = Frame.reader ~max_line_bytes:t.config.max_line_bytes fd in
      let first = ref true in
      let answered = ref 0 in
      let respond_line s =
        if slow > 0. then Thread.delay slow;
        Frame.write_line fd s;
        incr answered
      in
      let respond json = respond_line (Json.to_string json) in
      (try
         let rec loop () =
           if draining t then ()
           else
             match Frame.read_line reader with
             | Frame.Eof | Frame.Timeout -> ()
             | Frame.Oversized ->
                 respond (oversized_response ~max_line_bytes:t.config.max_line_bytes)
             | Frame.Line line when String.trim line = "" -> loop ()
             | Frame.Line line ->
                 let line =
                   (* The garbage fault models a client whose first frame
                      is noise: the parse boundary must answer it
                      structurally, exactly like a chaos'd stdin line. *)
                   if garbage && !first then "\x02\xff garbage " ^ line else line
                 in
                 first := false;
                 let id, op = envelope_of_line line in
                 if op = Some "shutdown" then begin
                   locked t (fun () -> count_op_locked t op);
                   respond (shutdown_response id);
                   stop t
                 end
                 else begin
                   respond_line (process t ?id ~op line);
                   if half_close && !answered = 1 then
                     (* Injected half-close: our write side goes away
                        after the first response; keep draining reads so
                        the client can finish talking, answers go
                        nowhere.  The send failure path exits the loop. *)
                     Unix.shutdown fd Unix.SHUTDOWN_SEND;
                   loop ()
                 end
         in
         loop ()
       with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
      close_quietly fd

(* Join connection threads that have marked themselves finished.  The
   mark is each thread's last action, so the joins below are immediate;
   without this a long-running server retains one Thread.t handle per
   connection it ever accepted until drain. *)
let reap_finished t =
  let done_ =
    locked t (fun () ->
        let done_, live =
          List.partition (fun th -> Hashtbl.mem t.finished (Thread.id th)) t.conn_threads
        in
        t.conn_threads <- live;
        List.iter (fun th -> Hashtbl.remove t.finished (Thread.id th)) done_;
        done_)
  in
  List.iter Thread.join done_

let spawn_connection t fd index =
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            locked t (fun () -> Hashtbl.replace t.finished (Thread.id (Thread.self ())) ()))
          (fun () -> handle_connection t fd index))
      ()
  in
  locked t (fun () -> t.conn_threads <- thread :: t.conn_threads)

let accept_loop t =
  let rec loop () =
    if draining t then ()
    else begin
      (* Poll with a short select so the drain flag is honored even
         while no client is connecting; accept after readiness cannot
         block for long.  Each round is also the WAL's time-based
         group-commit tick — under the coordinator, because connection
         threads append to the same WAL under it; try_lock so a long
         request cannot stall accepts, and only while no request is in
         flight so the flush's fsync never sits in a request's latency
         tail.  Under sustained load the batch threshold still bounds
         how much can pend, so skipping busy rounds widens nothing
         beyond the documented fsync_batch - 1 window. *)
      if Gate.in_flight t.gate = 0 && Mutex.try_lock t.coordinator then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.coordinator)
          (fun () -> Durable.tick t.durable);
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              if draining t then close_quietly fd
              else begin
                (try
                   Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s;
                   Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.idle_timeout_s;
                   Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                let index = locked t (fun () ->
                    let i = t.conn_seq in
                    t.conn_seq <- i + 1;
                    i)
                in
                spawn_connection t fd index;
                reap_finished t
              end;
              loop ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
              loop ()
          | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
    end
  in
  loop ();
  (* Single owner of the listening socket: closing it here (not in
     [stop]) means no thread can race an accept on a closed fd. *)
  close_quietly t.listen_fd

let check_config c =
  if c.max_inflight < 1 then invalid_arg "Server: max_inflight < 1";
  if c.backlog < 1 then invalid_arg "Server: backlog < 1";
  if not (Float.is_finite c.request_deadline_ms) || c.request_deadline_ms <= 0. then
    invalid_arg "Server: request_deadline_ms must be positive";
  if not (Float.is_finite c.idle_timeout_s) || c.idle_timeout_s <= 0. then
    invalid_arg "Server: idle_timeout_s must be positive";
  if c.max_line_bytes < 1 then invalid_arg "Server: max_line_bytes < 1";
  if c.snapshot_interval < 0 then invalid_arg "Server: snapshot_interval < 0";
  if c.snapshot_keep < 1 then invalid_arg "Server: snapshot_keep < 1";
  if c.fsync_batch < 1 then invalid_arg "Server: fsync_batch < 1";
  if not (Float.is_finite c.fsync_interval_ms) || c.fsync_interval_ms < 0. then
    invalid_arg "Server: fsync_interval_ms must be non-negative"

let start ?(config = default_config) service =
  check_config config;
  (* A peer resetting its connection must surface as EPIPE from the
     write, not kill the whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ ->
      (try (Unix.gethostbyname config.host).Unix.h_addr_list.(0)
       with Not_found -> invalid_arg ("Server: cannot resolve host " ^ config.host))
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
     Unix.listen listen_fd config.backlog
   with e ->
     close_quietly listen_fd;
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (* Recovery (tmp cleanup, snapshot install, WAL replay) runs after the
     bind but before the accept loop exists: no request is answered by a
     partially recovered service, and a failed bind leaves no fresh WAL
     segment behind. *)
  let durable =
    let wal =
      Option.map
        (fun dir ->
          Wal.config ~fsync_batch:config.fsync_batch
            ~fsync_interval_ms:config.fsync_interval_ms ~dir ())
        config.wal_dir
    in
    let dcfg =
      Durable.config ?snapshot_dir:config.snapshot_dir
        ~snapshot_keep:config.snapshot_keep ?wal ?auto:config.durability_auto ()
    in
    match
      Durable.create ?chaos:config.chaos ?inject:config.durability_inject
        ~log:(fun m -> Format.eprintf "ckpt_net: %s@." m)
        dcfg service
    with
    | Ok d -> d
    | Error m ->
        close_quietly listen_fd;
        (* An unusable WAL directory must refuse to start: a server that
           silently acked undurable stateful ops would violate the
           contract the WAL exists to provide. *)
        failwith ("Server: durability init failed: " ^ m)
  in
  let t =
    { config;
      service;
      listen_fd;
      port;
      gate = Gate.create ~capacity:config.max_inflight;
      coordinator = Mutex.create ();
      state_lock = Mutex.create ();
      accept_thread = None;
      conn_threads = [];
      finished = Hashtbl.create 16;
      conn_seq = 0;
      requests = 0;
      ops = Hashtbl.create 16;
      last_snapshot_at = 0;
      durable;
      draining = Atomic.make false }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let join_threads t =
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  (* Threads spawned after the snapshot of the list are impossible: the
     accept loop has exited, so the list is final once it is joined. *)
  let rec drain_threads () =
    let threads = locked t (fun () ->
        let l = t.conn_threads in
        t.conn_threads <- [];
        l)
    in
    if threads <> [] then begin
      List.iter Thread.join threads;
      drain_threads ()
    end
  in
  drain_threads ();
  locked t (fun () -> Hashtbl.reset t.finished)

let join t =
  join_threads t;
  if t.config.snapshot_dir <> None then ignore (snapshot_now t);
  Durable.close t.durable

let abort t =
  stop t;
  join_threads t;
  (* No final snapshot, no WAL flush: the on-disk state is exactly what
     a [kill -9] at this point would have left. *)
  Durable.abort t.durable
