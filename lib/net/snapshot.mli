(** Durable service state: atomic snapshots and warm restart.

    What the paper's model does for applications — checkpoint so a crash
    loses bounded work — applied to the planner itself.  A snapshot
    captures the parts of a {!Ckpt_service.Service.t} that are expensive
    or impossible to recompute:

    - the sharded plan cache (every solved plan, in per-shard recency
      order), and
    - the telemetry session's estimator state, including the exposure
      watermarks ([last_at], current scale, weighted and raw histories).

    Restoring both into a fresh service makes it answer {e byte-identically}
    to the uninterrupted original: previously-solved problems hit the
    cache ([cached: true]), and [estimate]/[replan] continue from the
    exact fitted state — the property [test/test_net.ml] pins down.

    {2 File format}

    One header line, then the JSON payload:
    {v CKPTSNAP <version> <crc32-hex> <payload-bytes>\n{...payload...} v}

    The CRC-32 covers the payload bytes, so truncation, bit rot and torn
    writes are all detected before any decoding happens.  {!save} writes
    to a temp file in the same directory, fsyncs, renames, then fsyncs
    the directory (so the rename itself survives a crash) — a crash
    mid-write can only ever leave a stale-but-valid previous snapshot
    plus a temp file that {!load_latest} ignores.

    {2 Compatibility rules}

    - A snapshot with a {e higher} version than {!version} is from a
      newer build: it is skipped (log-and-fall-back), never decoded.
    - Unknown payload fields are ignored, so future minor additions stay
      readable by older builds at the same version.
    - Decoding is total: corrupt, truncated, or adversarial input yields
      [Error _], never an exception. *)

type state = {
  seq : int;  (** requests served when the snapshot was cut *)
  wal_seq : int;
      (** WAL watermark: every WAL record with [seq <= wal_seq] is
          already folded into this snapshot, so recovery replays only
          the suffix past it and compaction may retire the segments it
          covers.  [0] in pre-WAL snapshots and WAL-off servers. *)
  cache : (string * Ckpt_model.Optimizer.plan) list;
      (** plan-cache dump, per-shard MRU first (see
          {!Ckpt_service.Sharded_cache.to_list}) *)
  session :
    (Ckpt_adaptive.Rate_estimator.t * Ckpt_adaptive.Cost_estimator.t) option;
}

val version : int

val of_service : ?wal_seq:int -> seq:int -> Ckpt_service.Service.t -> state
(** Capture the service's durable state.  [wal_seq] (default [0]) is the
    highest WAL sequence already applied to the service.  Call while no
    other thread is mutating the service (the server holds its
    coordinator lock). *)

val install : state -> Ckpt_service.Service.t -> int
(** Warm-restart: re-add every cached plan (oldest first, so recency
    survives) and restore the telemetry session.  Returns the number of
    plans installed.  Entries beyond the target cache's capacity simply
    evict oldest-first, so restoring into a smaller cache keeps the
    hottest plans. *)

val encode : state -> string
(** The full file image, header included. *)

val decode : string -> (state, string) result
(** Total inverse of {!encode}: checks magic, version, length and CRC
    before parsing, and validates every plan and estimator field.  Any
    failure — including a future version — is [Error _]. *)

val save :
  ?keep:int -> ?inject:(string -> unit) -> dir:string -> state -> (string, string) result
(** Atomically write [dir/snapshot-<seq>.ckpt] (temp + fsync + rename +
    directory fsync), creating [dir] if needed, then prune all but the
    [keep] (default 4) newest snapshots.  Returns the path written.
    A non-benign directory-fsync failure is an [Error] (the file is
    valid but its directory entry may not survive a power cut, so the
    cut must not retire WAL segments).  [inject] is the durability
    chaos hook: it is called at each stage boundary
    ([snapshot-write], [snapshot-fsync], [snapshot-rename],
    [snapshot-dir-fsync], [snapshot-prune]) and may raise to simulate a
    crash ({!Wal.Injected_crash} propagates) or an I/O failure
    ([Unix_error] becomes this function's [Error]).  Never raises
    otherwise. *)

val clean_tmp : ?log:(string -> unit) -> dir:string -> unit -> int
(** Remove leftover [*.tmp] files from saves killed mid-write (they are
    invisible to {!load_latest} but would accumulate).  Returns the
    number removed; missing directory is [0].  Call once at startup
    before serving. *)

val load_latest : ?log:(string -> unit) -> dir:string -> unit -> state option
(** Newest snapshot in [dir] that decodes cleanly.  Invalid files are
    reported through [log] (default silent) and skipped — a damaged
    latest snapshot falls back to the previous one, and a missing or
    unreadable directory falls back to [None] (cold start).  Never
    raises. *)
