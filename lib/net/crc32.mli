(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over strings.

    Guards snapshot payloads against torn writes and bit rot: the
    {!Snapshot} header carries the payload's checksum, and a mismatch on
    load means the file is discarded rather than decoded.  Table-driven,
    no dependencies. *)

val string : string -> int
(** [string s] is the CRC-32 of all of [s], in [0, 0xFFFF_FFFF]. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of the substring; bounds-checked.
    @raise Invalid_argument on an invalid range. *)
