module Json = Ckpt_json.Json
module Codec = Ckpt_model.Codec
module Service = Ckpt_service.Service
module Planner = Ckpt_service.Planner
module Sharded_cache = Ckpt_service.Sharded_cache
module Rate_estimator = Ckpt_adaptive.Rate_estimator
module Cost_estimator = Ckpt_adaptive.Cost_estimator

type state = {
  seq : int;
  wal_seq : int;
  cache : (string * Ckpt_model.Optimizer.plan) list;
  session : (Rate_estimator.t * Cost_estimator.t) option;
}

let version = 1
let magic = "CKPTSNAP"

let of_service ?(wal_seq = 0) ~seq service =
  { seq;
    wal_seq;
    cache = Sharded_cache.to_list (Planner.cache (Service.planner service));
    session = Service.session_estimators service }

let install state service =
  let cache = Planner.cache (Service.planner service) in
  (* Oldest (per-shard LRU tail) first, so the re-added entries end up in
     the original recency order and capacity pressure evicts the same
     keys the uninterrupted cache would have. *)
  List.iter (fun (k, plan) -> Sharded_cache.add cache k plan) (List.rev state.cache);
  Option.iter
    (fun (rates, costs) -> Service.restore_session service ~rates ~costs)
    state.session;
  List.length state.cache

(* ---------------- encode ---------------- *)

let payload_json state =
  Json.Obj
    [ ("kind", Json.String "ckpt-net-snapshot");
      ("version", Json.Number (float_of_int version));
      ("seq", Json.Number (float_of_int state.seq));
      ("wal_seq", Json.Number (float_of_int state.wal_seq));
      ( "cache",
        Json.List
          (List.map
             (fun (key, plan) ->
               Json.List [ Json.String key; Codec.plan_to_json plan ])
             state.cache) );
      ( "session",
        match state.session with
        | None -> Json.Null
        | Some (rates, costs) ->
            Json.Obj
              [ ("rates", Rate_estimator.to_json rates);
                ("costs", Cost_estimator.to_json costs) ] ) ]

let encode state =
  let payload = Json.to_string (payload_json state) in
  Printf.sprintf "%s %d %08x %d\n%s" magic version (Crc32.string payload)
    (String.length payload) payload

(* ---------------- decode ---------------- *)

let ( let* ) = Result.bind

let decode_header s =
  match String.index_opt s '\n' with
  | None -> Error "no header line"
  | Some nl -> (
      let header = String.sub s 0 nl in
      match String.split_on_char ' ' header with
      | [ m; v; crc; len ] -> (
          if m <> magic then Error "bad magic"
          else
            match (int_of_string_opt v, int_of_string_opt ("0x" ^ crc), int_of_string_opt len) with
            | Some v, _, _ when v > version ->
                Error (Printf.sprintf "snapshot version %d is newer than this build (%d)" v version)
            | Some v, _, _ when v < 1 -> Error "bad version"
            | Some _, Some crc, Some len ->
                if len <> String.length s - nl - 1 then
                  Error
                    (Printf.sprintf "payload length mismatch: header says %d, file has %d"
                       len (String.length s - nl - 1))
                else
                  let actual = Crc32.sub s ~pos:(nl + 1) ~len in
                  if actual <> crc then
                    Error (Printf.sprintf "CRC mismatch: header %08x, payload %08x" crc actual)
                  else Ok (String.sub s (nl + 1) len)
            | _ -> Error "unparseable header fields")
      | _ -> Error "unparseable header")

let decode_cache json =
  match Option.bind (Json.member "cache" json) Json.to_list with
  | None -> Error "missing cache list"
  | Some entries ->
      let rec walk acc = function
        | [] -> Ok (List.rev acc)
        | Json.List [ Json.String key; plan_json ] :: rest -> (
            match Codec.plan_of_json plan_json with
            | Ok plan -> walk ((key, plan) :: acc) rest
            | Error m -> Error ("cache entry does not decode: " ^ m))
        | _ -> Error "cache entry is not a [key, plan] pair"
      in
      walk [] entries

let decode_session json =
  match Json.member "session" json with
  | None | Some Json.Null -> Ok None
  | Some s -> (
      match (Json.member "rates" s, Json.member "costs" s) with
      | Some rates, Some costs ->
          let* rates = Rate_estimator.of_json rates in
          let* costs = Cost_estimator.of_json costs in
          if Rate_estimator.levels rates <> Cost_estimator.levels costs then
            Error "session estimators disagree on level count"
          else Ok (Some (rates, costs))
      | _ -> Error "session missing rates or costs")

let decode s =
  (* Belt and braces: every failure path below is already an [Error],
     but a decoder that can never raise is the contract the fuzz tests
     hold us to, so the whole thing is fenced. *)
  try
    let* payload = decode_header s in
    let* json =
      match Json.parse_result payload with
      | Ok j -> Ok j
      | Error m -> Error ("payload is not JSON: " ^ m)
    in
    let* () =
      match Json.string_field "kind" json with
      | Some "ckpt-net-snapshot" -> Ok ()
      | _ -> Error "payload kind is not ckpt-net-snapshot"
    in
    let* seq =
      match Option.bind (Json.member "seq" json) Json.to_int with
      | Some n when n >= 0 -> Ok n
      | _ -> Error "missing or negative seq"
    in
    (* Absent in pre-WAL snapshots (same version, unknown-field rule):
       watermark 0 means "replay the whole WAL", which is exactly right
       for a directory that predates the WAL. *)
    let wal_seq =
      match Option.bind (Json.member "wal_seq" json) Json.to_int with
      | Some n when n >= 0 -> n
      | _ -> 0
    in
    let* cache = decode_cache json in
    let* session = decode_session json in
    Ok { seq; wal_seq; cache; session }
  with e -> Error ("snapshot decode raised: " ^ Printexc.to_string e)

(* ---------------- files ---------------- *)

let snapshot_re name =
  (* snapshot-<digits>.ckpt *)
  let prefix = "snapshot-" and suffix = ".ckpt" in
  let np = String.length prefix and ns = String.length suffix in
  let n = String.length name in
  n > np + ns
  && String.sub name 0 np = prefix
  && String.sub name (n - ns) ns = suffix
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name np (n - np - ns))

let list_snapshots dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter snapshot_re
      |> List.sort (fun a b -> compare b a)  (* newest (highest seq) first *)
  | exception Sys_error _ -> []

(* The rename makes the snapshot's *contents* durable, but the directory
   entry itself is not on disk until the directory is fsynced — without
   this, a crash shortly after save can lose the whole file.  Platforms
   that cannot fsync a directory fd answer EINVAL/ENOTSUP-style errors,
   which are benign; anything else (EIO and friends) is a real failure
   that must reach the health counters, not vanish. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.fsync fd with
          | () -> Ok ()
          | exception Unix.Unix_error ((EINVAL | ENOSYS | EOPNOTSUPP | EBADF), _, _) ->
              Ok ()
          | exception Unix.Unix_error (err, _, _) ->
              Error
                (Printf.sprintf "directory fsync %s failed: %s" dir
                   (Unix.error_message err)))
  | exception Unix.Unix_error ((EINVAL | ENOSYS | EOPNOTSUPP | EACCES), _, _) -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "directory open %s failed: %s" dir (Unix.error_message err))

let clean_tmp ?(log = fun _ -> ()) ~dir () =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun n name ->
          if Filename.check_suffix name ".tmp" then begin
            let path = Filename.concat dir name in
            log (Printf.sprintf "%s: leftover temp from an interrupted save, removing" path);
            match Sys.remove path with () -> n + 1 | exception Sys_error _ -> n
          end
          else n)
        0 entries
  | exception Sys_error _ -> 0

let save ?(keep = 4) ?(inject = fun _ -> ()) ~dir state =
  if keep < 1 then invalid_arg "Snapshot.save: keep < 1";
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let path = Filename.concat dir (Printf.sprintf "snapshot-%012d.ckpt" state.seq) in
    let tmp = path ^ ".tmp" in
    let image = encode state in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let bytes = Bytes.of_string image in
        let len = Bytes.length bytes in
        (* Two halves with an injection point between: a crash here
           leaves a genuinely torn temp file for recovery to ignore. *)
        let write_range from upto =
          let off = ref from in
          while !off < upto do
            off := !off + Unix.write fd bytes !off (upto - !off)
          done
        in
        write_range 0 (len / 2);
        inject "snapshot-write";
        write_range (len / 2) len;
        inject "snapshot-fsync";
        Unix.fsync fd);
    inject "snapshot-rename";
    Unix.rename tmp path;
    inject "snapshot-dir-fsync";
    let* () = fsync_dir dir in
    inject "snapshot-prune";
    (* Prune: everything but the [keep] newest.  Best effort — a file
       that vanishes or resists unlinking never fails the snapshot. *)
    List.iteri
      (fun i name ->
        if i >= keep then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (list_snapshots dir);
    Ok path
  with
  | Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "snapshot write failed: %s %s: %s" fn arg (Unix.error_message err))
  | Sys_error m -> Error ("snapshot write failed: " ^ m)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let load_latest ?(log = fun _ -> ()) ~dir () =
  let rec first = function
    | [] -> None
    | name :: rest -> (
        let path = Filename.concat dir name in
        match decode (read_file path) with
        | Ok state -> Some state
        | Error m ->
            log (Printf.sprintf "%s: %s (falling back)" path m);
            first rest
        | exception e ->
            log (Printf.sprintf "%s: unreadable: %s (falling back)" path (Printexc.to_string e));
            first rest)
  in
  first (list_snapshots dir)
