module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Arrivals = Ckpt_failures.Arrivals
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead
module Trace = Ckpt_simkernel.Trace

(* The wall clock, position and portion accounts change on every event,
   so they live in their own all-float record, which the compiler keeps
   flat: every store is an unboxed write.  A mutable float field of the
   mixed [state] record below would box on each assignment — the main
   allocation source of the previous event loop. *)
type accum = {
  mutable t : float;  (* wall clock *)
  mutable p : float;  (* productive position *)
  mutable hw : float;  (* first-time progress high-water mark *)
  mutable productive : float;
  mutable checkpoint : float;
  mutable restart : float;
  mutable allocation : float;
  mutable rollback : float;
  mutable mark_pos : float;  (* scratch: position found by [first_mark] *)
}

type state = {
  config : Run_config.t;
  trace : Trace.t option;
  probe : Probe.t option;
  rng : Rng.t;
  next_failure_after : float -> Arrivals.event option;
  target : float;  (* parallel productive seconds to complete *)
  jitter : bool;  (* jitter_ratio <> 0: overhead draws consume the rng *)
  tau : float array;  (* interval length per level *)
  ckpt_costs : float array;  (* per-level overhead at config.n, constant per run *)
  restart_costs : float array;
  last_pos : float array;  (* newest valid checkpoint position per level *)
  next_k : int array;  (* next mark index per level *)
  completed_marks : Bytes.t array;  (* bitset per level, indexed by mark *)
  acc : accum;
  mutable mark_lvl : int;  (* scratch: level found by [first_mark], 0 = none *)
  mutable next_failure : Arrivals.event option;
  failures : int array;
  mutable recoveries : int;
  ckpts_written : int array;
  ckpts_redone : int array;
  ckpts_aborted : int array;
}

let levels s = Array.length s.config.Run_config.levels

(* Trace records and probe events are built lazily at the call sites
   (match on the option first): the sprintf/record construction cost
   must not be paid on untraced runs. *)

let jittered s v =
  if s.jitter then
    Dist.jittered s.rng ~ratio:s.config.Run_config.semantics.Run_config.jitter_ratio v
  else v

(* Mark bitsets: mark [k] of a level is bit [k] of its Bytes buffer,
   grown by doubling on demand — memory tracks the highest mark actually
   written, like the hash table it replaces, without its per-checkpoint
   hashing or allocation. *)
let mark_mem s lvl k =
  let b = s.completed_marks.(lvl - 1) in
  let byte = k lsr 3 in
  byte < Bytes.length b
  && Char.code (Bytes.unsafe_get b byte) land (1 lsl (k land 7)) <> 0

let mark_set s lvl k =
  let byte = k lsr 3 in
  let b = s.completed_marks.(lvl - 1) in
  let b =
    if byte < Bytes.length b then b
    else begin
      let bigger = Bytes.make (max (2 * Bytes.length b) (byte + 1)) '\000' in
      Bytes.blit b 0 bigger 0 (Bytes.length b);
      s.completed_marks.(lvl - 1) <- bigger;
      bigger
    end
  in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (k land 7))))

(* Position of level [lvl]'s next checkpoint mark; [infinity] when it
   lies at or past the end of the workload. *)
let next_mark_pos s lvl =
  let pos = float_of_int s.next_k.(lvl - 1) *. s.tau.(lvl - 1) in
  if pos < s.target -. (1e-9 *. s.target) then pos else infinity

(* Earliest pending mark into the scratch fields: [mark_lvl] = 0 when no
   mark remains before the end ([mark_pos] then infinity).  Ties keep
   the lowest level, like the option-returning scan it replaces. *)
let first_mark s =
  let acc = s.acc in
  acc.mark_pos <- infinity;
  s.mark_lvl <- 0;
  for lvl = 1 to levels s do
    let pos = next_mark_pos s lvl in
    if pos < acc.mark_pos then begin
      acc.mark_pos <- pos;
      s.mark_lvl <- lvl
    end
  done

(* Advance productive position from [p] to [pos], charging first-time
   progress to the productive portion and re-execution to rollback. *)
let advance_progress s pos =
  let acc = s.acc in
  assert (pos >= acc.p -. 1e-9);
  let first_time = Float.max 0. (pos -. Float.max acc.p acc.hw) in
  acc.productive <- acc.productive +. first_time;
  acc.rollback <- acc.rollback +. (pos -. acc.p -. first_time);
  if pos > acc.p then (
    match s.probe with
    | None -> ()
    | Some probe ->
        probe
          (Probe.Segment { at = acc.t; duration = pos -. acc.p; productive = first_time }));
  acc.hw <- Float.max acc.hw pos;
  acc.p <- pos

let sample_failure s = s.next_failure <- s.next_failure_after s.acc.t

(* Recompute each level's next mark index after restoring position [q]:
   the first mark strictly after [q]. *)
let reset_marks s q =
  for lvl = 1 to levels s do
    let tau = s.tau.(lvl - 1) in
    s.next_k.(lvl - 1) <- int_of_float ((q +. (1e-9 *. s.target)) /. tau) + 1
  done

let out_of_time s = s.acc.t >= s.config.Run_config.max_wall_clock

(* Handle a failure of level [f] occurring at the current clock:
   roll back and run the allocation + recovery sequence, which may itself
   be interrupted by further failures. *)
let rec handle_failure s f =
  s.failures.(f - 1) <- s.failures.(f - 1) + 1;
  (match s.trace with
  | None -> ()
  | Some trace ->
      Trace.record trace ~time:s.acc.t ~tag:"failure"
        (Printf.sprintf "level %d at progress %.0f" f s.acc.p));
  (match s.probe with
  | None -> ()
  | Some probe -> probe (Probe.Failure { at = s.acc.t; level = f }));
  sample_failure s;
  (* Restore point: newest checkpoint among levels >= f (position 0 - the
     job start - always qualifies). *)
  let q = ref 0. in
  for j = f to levels s do
    q := Float.max !q s.last_pos.(j - 1)
  done;
  let q = !q in
  (* Lower-level checkpoints taken after q did not survive the failure. *)
  for j = 1 to f - 1 do
    if s.last_pos.(j - 1) > q then s.last_pos.(j - 1) <- q
  done;
  s.acc.p <- q;
  reset_marks s q;
  (match s.trace with
  | None -> ()
  | Some trace ->
      Trace.record trace ~time:s.acc.t ~tag:"recovery"
        (Printf.sprintf "level %d restored to %.0f" f q));
  run_recovery s f

and run_recovery s f =
  if out_of_time s then ()
  else begin
    s.recoveries <- s.recoveries + 1;
    let acc = s.acc in
    let alloc = s.config.Run_config.alloc in
    let rec_cost = jittered s s.restart_costs.(f - 1) in
    let t_alloc_end = acc.t +. alloc in
    let t_rec_end = t_alloc_end +. rec_cost in
    let interrupted =
      match (s.next_failure, s.config.Run_config.semantics.Run_config.on_recovery_failure) with
      | Some ev, Run_config.Restart_recovery when ev.Arrivals.at < t_rec_end -> Some ev
      | _, Run_config.Ignore_during_recovery ->
          (* Drop every failure landing inside the recovery window. *)
          let rec drop () =
            match s.next_failure with
            | Some ev when ev.Arrivals.at < t_rec_end ->
                s.next_failure <- s.next_failure_after ev.Arrivals.at;
                drop ()
            | _ -> ()
          in
          drop ();
          None
      | _ -> None
    in
    match interrupted with
    | None ->
        acc.allocation <- acc.allocation +. alloc;
        acc.restart <- acc.restart +. rec_cost;
        (match s.probe with
        | None -> ()
        | Some probe ->
            probe (Probe.Recovery { at = acc.t; level = f; alloc; duration = rec_cost }));
        acc.t <- t_rec_end
    | Some ev ->
        let at = ev.Arrivals.at in
        if at < t_alloc_end then acc.allocation <- acc.allocation +. (at -. acc.t)
        else begin
          acc.allocation <- acc.allocation +. alloc;
          acc.restart <- acc.restart +. (at -. t_alloc_end)
        end;
        (match s.probe with
        | None -> ()
        | Some probe ->
            probe (Probe.Recovery_aborted { at = acc.t; level = f; elapsed = at -. acc.t }));
        acc.t <- at;
        handle_failure s ev.Arrivals.level
  end

(* Write the level [lvl] checkpoint at mark index [k] (current position).
   Returns [`Done] or [`Failed ev] when an aborting failure interrupted. *)
let write_checkpoint s lvl k =
  let acc = s.acc in
  let dur = jittered s s.ckpt_costs.(lvl - 1) in
  let t_end = acc.t +. dur in
  let semantics = s.config.Run_config.semantics in
  let aborting_failure =
    match (s.next_failure, semantics.Run_config.on_ckpt_failure) with
    | Some ev, Run_config.Abort_ckpt when ev.Arrivals.at < t_end -> Some ev
    | _ -> None
  in
  match aborting_failure with
  | Some ev ->
      (* The partial write is wasted overhead: rollback portion. *)
      acc.rollback <- acc.rollback +. (ev.Arrivals.at -. acc.t);
      s.ckpts_aborted.(lvl - 1) <- s.ckpts_aborted.(lvl - 1) + 1;
      (match s.probe with
      | None -> ()
      | Some probe ->
          probe
            (Probe.Ckpt_aborted { at = acc.t; level = lvl; wasted = ev.Arrivals.at -. acc.t }));
      acc.t <- ev.Arrivals.at;
      (match s.trace with
      | None -> ()
      | Some trace ->
          Trace.record trace ~time:acc.t ~tag:"ckpt-abort" (Printf.sprintf "level %d" lvl));
      `Failed ev
  | None ->
      let first = not (mark_mem s lvl k) in
      if not first then begin
        acc.rollback <- acc.rollback +. dur;
        s.ckpts_redone.(lvl - 1) <- s.ckpts_redone.(lvl - 1) + 1;
        match s.trace with
        | None -> ()
        | Some trace ->
            Trace.record trace ~time:acc.t ~tag:"ckpt-redo"
              (Printf.sprintf "level %d mark %d" lvl k)
      end
      else begin
        acc.checkpoint <- acc.checkpoint +. dur;
        s.ckpts_written.(lvl - 1) <- s.ckpts_written.(lvl - 1) + 1;
        mark_set s lvl k;
        match s.trace with
        | None -> ()
        | Some trace ->
            Trace.record trace ~time:acc.t ~tag:"ckpt"
              (Printf.sprintf "level %d mark %d at progress %.0f" lvl k acc.p)
      end;
      (match s.probe with
      | None -> ()
      | Some probe -> probe (Probe.Ckpt { at = acc.t; level = lvl; duration = dur; first }));
      acc.t <- t_end;
      s.last_pos.(lvl - 1) <- acc.p;
      s.next_k.(lvl - 1) <- k + 1;
      (* Under atomic-write semantics a failure that landed during the
         write is processed now, at the write's end. *)
      (match s.next_failure with
       | Some ev when ev.Arrivals.at <= acc.t -> `Failed { ev with Arrivals.at = acc.t }
       | _ -> `Done)

let finish s completed =
  (match s.trace with
  | None -> ()
  | Some trace ->
      Trace.record trace ~time:s.acc.t
        ~tag:(if completed then "complete" else "horizon")
        (Printf.sprintf "wall %.0f" s.acc.t));
  (match s.probe with
  | None -> ()
  | Some probe -> probe (Probe.End { at = s.acc.t; completed }));
  { Outcome.completed;
    wall_clock = s.acc.t;
    productive = s.acc.productive;
    checkpoint = s.acc.checkpoint;
    restart = s.acc.restart;
    allocation = s.acc.allocation;
    rollback = s.acc.rollback;
    failures = Array.copy s.failures;
    recoveries = s.recoveries;
    ckpts_written = Array.copy s.ckpts_written;
    ckpts_redone = Array.copy s.ckpts_redone;
    ckpts_aborted = Array.copy s.ckpts_aborted }

let run ?trace ?probe ?rng ?(batched = true) ~seed config =
  let rng = match rng with Some rng -> rng | None -> Rng.of_int seed in
  let next_failure_after =
    match config.Run_config.failure_trace with
    | Some events ->
        (* Replay a recorded failure log: hand out the next event strictly
           after the requested time, never rewinding. *)
        let remaining = ref events in
        fun now ->
          let rec pick () =
            match !remaining with
            | [] -> None
            | (at, level) :: rest ->
                if at <= now then begin
                  remaining := rest;
                  pick ()
                end
                else begin
                  remaining := rest;
                  Some { Arrivals.at; level }
                end
          in
          pick ()
    | None ->
        let arrivals =
          Arrivals.create ?laws:config.Run_config.failure_laws ~batched
            ~rng:(Rng.split rng) ~spec:config.Run_config.spec
            ~scale:config.Run_config.n ()
        in
        fun now -> Arrivals.next_after arrivals now
  in
  let target = Run_config.productive_target config in
  let nlevels = Array.length config.Run_config.levels in
  let s =
    { config; trace; probe; rng; next_failure_after; target;
      jitter = config.Run_config.semantics.Run_config.jitter_ratio <> 0.;
      tau = Array.map (fun x -> target /. x) config.Run_config.xs;
      ckpt_costs =
        Array.map
          (fun (l : Level.t) -> Overhead.cost l.Level.ckpt config.Run_config.n)
          config.Run_config.levels;
      restart_costs =
        Array.map
          (fun (l : Level.t) -> Overhead.cost l.Level.restart config.Run_config.n)
          config.Run_config.levels;
      last_pos = Array.make nlevels 0.;
      next_k = Array.make nlevels 1;
      completed_marks = Array.init nlevels (fun _ -> Bytes.make 128 '\000');
      acc =
        { t = 0.; p = 0.; hw = 0.;
          productive = 0.; checkpoint = 0.; restart = 0.; allocation = 0.;
          rollback = 0.; mark_pos = infinity };
      mark_lvl = 0;
      next_failure = None;
      failures = Array.make nlevels 0;
      recoveries = 0;
      ckpts_written = Array.make nlevels 0;
      ckpts_redone = Array.make nlevels 0;
      ckpts_aborted = Array.make nlevels 0 }
  in
  sample_failure s;
  let eps = 1e-9 *. target in
  let acc = s.acc in
  let rec step () =
    if acc.p >= target -. eps then finish s true
    else if out_of_time s then finish s false
    else begin
      first_mark s;
      let mark_lvl = s.mark_lvl in
      let seg_end_pos = if mark_lvl > 0 then acc.mark_pos else target in
      let t_seg_end = acc.t +. (seg_end_pos -. acc.p) in
      match s.next_failure with
      | Some ev when ev.Arrivals.at < t_seg_end ->
          (* Failure strikes mid-computation. *)
          advance_progress s (acc.p +. (ev.Arrivals.at -. acc.t));
          acc.t <- ev.Arrivals.at;
          handle_failure s ev.Arrivals.level;
          step ()
      | _ ->
          advance_progress s seg_end_pos;
          acc.t <- t_seg_end;
          if mark_lvl = 0 then finish s true  (* reached the end of the workload *)
          else begin
            let pos = seg_end_pos in
            let lvl =
              if not s.config.Run_config.semantics.Run_config.subsume_coincident then
                mark_lvl
              else begin
                (* Every level whose next mark lands on this position is
                   subsumed by the highest one: skip the cheap writes. *)
                let eps = 1e-9 *. s.target in
                let highest = ref mark_lvl in
                for l = mark_lvl + 1 to levels s do
                  if Float.abs (next_mark_pos s l -. pos) <= eps then highest := l
                done;
                if !highest > mark_lvl then
                  for l = mark_lvl to !highest - 1 do
                    if Float.abs (next_mark_pos s l -. pos) <= eps then
                      s.next_k.(l - 1) <- s.next_k.(l - 1) + 1
                  done;
                !highest
              end
            in
            let k = s.next_k.(lvl - 1) in
            match write_checkpoint s lvl k with
            | `Done -> step ()
            | `Failed ev ->
                handle_failure s ev.Arrivals.level;
                step ()
          end
    end
  in
  step ()
