module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Arrivals = Ckpt_failures.Arrivals
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead
module Trace = Ckpt_simkernel.Trace

type state = {
  config : Run_config.t;
  trace : Trace.t option;
  probe : Probe.t option;
  rng : Rng.t;
  next_failure_after : float -> Arrivals.event option;
  target : float;  (* parallel productive seconds to complete *)
  tau : float array;  (* interval length per level *)
  last_pos : float array;  (* newest valid checkpoint position per level *)
  next_k : int array;  (* next mark index per level *)
  completed_marks : (int, unit) Hashtbl.t array;
  mutable t : float;  (* wall clock *)
  mutable p : float;  (* productive position *)
  mutable hw : float;  (* first-time progress high-water mark *)
  mutable next_failure : Arrivals.event option;
  (* accounting *)
  mutable productive : float;
  mutable checkpoint : float;
  mutable restart : float;
  mutable allocation : float;
  mutable rollback : float;
  failures : int array;
  mutable recoveries : int;
  ckpts_written : int array;
  ckpts_redone : int array;
  ckpts_aborted : int array;
}

let levels s = Array.length s.config.Run_config.levels

let record s ~tag detail =
  match s.trace with
  | None -> ()
  | Some trace -> Trace.record trace ~time:s.t ~tag detail

let emit s event = match s.probe with None -> () | Some probe -> probe event

let jittered s v =
  let ratio = s.config.Run_config.semantics.Run_config.jitter_ratio in
  if ratio = 0. then v else Dist.jittered s.rng ~ratio v

let ckpt_cost s lvl = Overhead.cost s.config.Run_config.levels.(lvl - 1).Level.ckpt s.config.Run_config.n
let restart_cost s lvl =
  Overhead.cost s.config.Run_config.levels.(lvl - 1).Level.restart s.config.Run_config.n

(* Position of level [lvl]'s next checkpoint mark, if it lies before the
   end of the workload. *)
let next_mark_pos s lvl =
  let pos = float_of_int s.next_k.(lvl - 1) *. s.tau.(lvl - 1) in
  let eps = 1e-9 *. s.target in
  if pos < s.target -. eps then Some pos else None

let first_mark s =
  let best = ref None in
  for lvl = 1 to levels s do
    match next_mark_pos s lvl with
    | None -> ()
    | Some pos -> (
        match !best with
        | Some (bpos, _) when bpos <= pos -> ()
        | _ -> best := Some (pos, lvl))
  done;
  !best

(* Advance productive position from [s.p] to [pos], charging first-time
   progress to the productive portion and re-execution to rollback. *)
let advance_progress s pos =
  assert (pos >= s.p -. 1e-9);
  let first_time = Float.max 0. (pos -. Float.max s.p s.hw) in
  s.productive <- s.productive +. first_time;
  s.rollback <- s.rollback +. (pos -. s.p -. first_time);
  if pos > s.p then
    emit s (Probe.Segment { at = s.t; duration = pos -. s.p; productive = first_time });
  s.hw <- Float.max s.hw pos;
  s.p <- pos

let sample_failure s = s.next_failure <- s.next_failure_after s.t

(* Recompute each level's next mark index after restoring position [q]:
   the first mark strictly after [q]. *)
let reset_marks s q =
  for lvl = 1 to levels s do
    let tau = s.tau.(lvl - 1) in
    s.next_k.(lvl - 1) <- int_of_float ((q +. (1e-9 *. s.target)) /. tau) + 1
  done

let out_of_time s = s.t >= s.config.Run_config.max_wall_clock

(* Handle a failure of level [f] occurring at the current clock [s.t]:
   roll back and run the allocation + recovery sequence, which may itself
   be interrupted by further failures. *)
let rec handle_failure s f =
  s.failures.(f - 1) <- s.failures.(f - 1) + 1;
  record s ~tag:"failure" (Printf.sprintf "level %d at progress %.0f" f s.p);
  emit s (Probe.Failure { at = s.t; level = f });
  sample_failure s;
  (* Restore point: newest checkpoint among levels >= f (position 0 - the
     job start - always qualifies). *)
  let q = ref 0. in
  for j = f to levels s do
    q := Float.max !q s.last_pos.(j - 1)
  done;
  let q = !q in
  (* Lower-level checkpoints taken after q did not survive the failure. *)
  for j = 1 to f - 1 do
    if s.last_pos.(j - 1) > q then s.last_pos.(j - 1) <- q
  done;
  s.p <- q;
  reset_marks s q;
  record s ~tag:"recovery" (Printf.sprintf "level %d restored to %.0f" f q);
  run_recovery s f

and run_recovery s f =
  if out_of_time s then ()
  else begin
    s.recoveries <- s.recoveries + 1;
    let alloc = s.config.Run_config.alloc in
    let rec_cost = jittered s (restart_cost s f) in
    let t_alloc_end = s.t +. alloc in
    let t_rec_end = t_alloc_end +. rec_cost in
    let interrupted =
      match (s.next_failure, s.config.Run_config.semantics.Run_config.on_recovery_failure) with
      | Some ev, Run_config.Restart_recovery when ev.Arrivals.at < t_rec_end -> Some ev
      | _, Run_config.Ignore_during_recovery ->
          (* Drop every failure landing inside the recovery window. *)
          let rec drop () =
            match s.next_failure with
            | Some ev when ev.Arrivals.at < t_rec_end ->
                s.next_failure <- s.next_failure_after ev.Arrivals.at;
                drop ()
            | _ -> ()
          in
          drop ();
          None
      | _ -> None
    in
    match interrupted with
    | None ->
        s.allocation <- s.allocation +. alloc;
        s.restart <- s.restart +. rec_cost;
        emit s (Probe.Recovery { at = s.t; level = f; alloc; duration = rec_cost });
        s.t <- t_rec_end
    | Some ev ->
        let at = ev.Arrivals.at in
        if at < t_alloc_end then s.allocation <- s.allocation +. (at -. s.t)
        else begin
          s.allocation <- s.allocation +. alloc;
          s.restart <- s.restart +. (at -. t_alloc_end)
        end;
        emit s (Probe.Recovery_aborted { at = s.t; level = f; elapsed = at -. s.t });
        s.t <- at;
        handle_failure s ev.Arrivals.level
  end

(* Write the level [lvl] checkpoint at mark index [k] (current position).
   Returns [`Done] or [`Failed ev] when an aborting failure interrupted. *)
let write_checkpoint s lvl k =
  let dur = jittered s (ckpt_cost s lvl) in
  let t_end = s.t +. dur in
  let semantics = s.config.Run_config.semantics in
  let aborting_failure =
    match (s.next_failure, semantics.Run_config.on_ckpt_failure) with
    | Some ev, Run_config.Abort_ckpt when ev.Arrivals.at < t_end -> Some ev
    | _ -> None
  in
  match aborting_failure with
  | Some ev ->
      (* The partial write is wasted overhead: rollback portion. *)
      s.rollback <- s.rollback +. (ev.Arrivals.at -. s.t);
      s.ckpts_aborted.(lvl - 1) <- s.ckpts_aborted.(lvl - 1) + 1;
      emit s
        (Probe.Ckpt_aborted { at = s.t; level = lvl; wasted = ev.Arrivals.at -. s.t });
      s.t <- ev.Arrivals.at;
      record s ~tag:"ckpt-abort" (Printf.sprintf "level %d" lvl);
      `Failed ev
  | None ->
      let marks = s.completed_marks.(lvl - 1) in
      let first = not (Hashtbl.mem marks k) in
      if not first then begin
        s.rollback <- s.rollback +. dur;
        s.ckpts_redone.(lvl - 1) <- s.ckpts_redone.(lvl - 1) + 1;
        record s ~tag:"ckpt-redo" (Printf.sprintf "level %d mark %d" lvl k)
      end
      else begin
        s.checkpoint <- s.checkpoint +. dur;
        s.ckpts_written.(lvl - 1) <- s.ckpts_written.(lvl - 1) + 1;
        Hashtbl.replace marks k ();
        record s ~tag:"ckpt" (Printf.sprintf "level %d mark %d at progress %.0f" lvl k s.p)
      end;
      emit s (Probe.Ckpt { at = s.t; level = lvl; duration = dur; first });
      s.t <- t_end;
      s.last_pos.(lvl - 1) <- s.p;
      s.next_k.(lvl - 1) <- k + 1;
      (* Under atomic-write semantics a failure that landed during the
         write is processed now, at the write's end. *)
      (match s.next_failure with
       | Some ev when ev.Arrivals.at <= s.t -> `Failed { ev with Arrivals.at = s.t }
       | _ -> `Done)

let finish s completed =
  record s ~tag:(if completed then "complete" else "horizon")
    (Printf.sprintf "wall %.0f" s.t);
  emit s (Probe.End { at = s.t; completed });
  { Outcome.completed;
    wall_clock = s.t;
    productive = s.productive;
    checkpoint = s.checkpoint;
    restart = s.restart;
    allocation = s.allocation;
    rollback = s.rollback;
    failures = Array.copy s.failures;
    recoveries = s.recoveries;
    ckpts_written = Array.copy s.ckpts_written;
    ckpts_redone = Array.copy s.ckpts_redone;
    ckpts_aborted = Array.copy s.ckpts_aborted }

let run ?trace ?probe ?rng ~seed config =
  let rng = match rng with Some rng -> rng | None -> Rng.of_int seed in
  let next_failure_after =
    match config.Run_config.failure_trace with
    | Some events ->
        (* Replay a recorded failure log: hand out the next event strictly
           after the requested time, never rewinding. *)
        let remaining = ref events in
        fun now ->
          let rec pick () =
            match !remaining with
            | [] -> None
            | (at, level) :: rest ->
                if at <= now then begin
                  remaining := rest;
                  pick ()
                end
                else begin
                  remaining := rest;
                  Some { Arrivals.at; level }
                end
          in
          pick ()
    | None ->
        let arrivals =
          Arrivals.create ?laws:config.Run_config.failure_laws ~rng:(Rng.split rng)
            ~spec:config.Run_config.spec ~scale:config.Run_config.n ()
        in
        fun now -> Arrivals.next_after arrivals now
  in
  let target = Run_config.productive_target config in
  let nlevels = Array.length config.Run_config.levels in
  let s =
    { config; trace; probe; rng; next_failure_after; target;
      tau = Array.map (fun x -> target /. x) config.Run_config.xs;
      last_pos = Array.make nlevels 0.;
      next_k = Array.make nlevels 1;
      completed_marks = Array.init nlevels (fun _ -> Hashtbl.create 64);
      t = 0.; p = 0.; hw = 0.;
      next_failure = None;
      productive = 0.; checkpoint = 0.; restart = 0.; allocation = 0.; rollback = 0.;
      failures = Array.make nlevels 0;
      recoveries = 0;
      ckpts_written = Array.make nlevels 0;
      ckpts_redone = Array.make nlevels 0;
      ckpts_aborted = Array.make nlevels 0 }
  in
  sample_failure s;
  let eps = 1e-9 *. target in
  let rec step () =
    if s.p >= target -. eps then finish s true
    else if out_of_time s then finish s false
    else begin
      let mark = first_mark s in
      let seg_end_pos = match mark with Some (pos, _) -> pos | None -> target in
      let t_seg_end = s.t +. (seg_end_pos -. s.p) in
      match s.next_failure with
      | Some ev when ev.Arrivals.at < t_seg_end ->
          (* Failure strikes mid-computation. *)
          advance_progress s (s.p +. (ev.Arrivals.at -. s.t));
          s.t <- ev.Arrivals.at;
          handle_failure s ev.Arrivals.level;
          step ()
      | _ ->
          advance_progress s seg_end_pos;
          s.t <- t_seg_end;
          (match mark with
           | None -> finish s true  (* reached the end of the workload *)
           | Some (pos, lvl) -> (
               let lvl =
                 if not s.config.Run_config.semantics.Run_config.subsume_coincident then lvl
                 else begin
                   (* Every level whose next mark lands on this position is
                      subsumed by the highest one: skip the cheap writes. *)
                   let eps = 1e-9 *. s.target in
                   let highest = ref lvl in
                   for l = lvl + 1 to levels s do
                     match next_mark_pos s l with
                     | Some p when Float.abs (p -. pos) <= eps -> highest := l
                     | _ -> ()
                   done;
                   if !highest > lvl then
                     for l = lvl to !highest - 1 do
                       match next_mark_pos s l with
                       | Some p when Float.abs (p -. pos) <= eps ->
                           s.next_k.(l - 1) <- s.next_k.(l - 1) + 1
                       | _ -> ()
                     done;
                   !highest
                 end
               in
               let k = s.next_k.(lvl - 1) in
               match write_checkpoint s lvl k with
               | `Done -> step ()
               | `Failed ev ->
                   handle_failure s ev.Arrivals.level;
                   step ()))
    end
  in
  step ()
