(** Event-driven simulation of one checkpointed execution.

    The engine tracks productive progress through the workload, writes
    checkpoints at each level's equidistant marks, injects per-level
    Poisson failures, rolls back to the newest checkpoint of a sufficient
    level, and accounts every second of wall-clock time to exactly one of
    the paper's portions (tested invariant:
    {!Outcome.portions_sum} = wall clock).

    Semantics notes:
    - a level-f failure restores the newest checkpoint among levels
      [>= f]; job start acts as a level-L checkpoint at position 0;
    - a level-f failure also invalidates lower-level checkpoints taken
      after the restored position (their storage did not survive);
    - re-executed work and re-written checkpoints are charged to the
      rollback portion; allocation and recovery reads to their own
      portions;
    - failures can land during checkpoint writes and recoveries; the
      behaviour is configured by {!Run_config.semantics}. *)

val run :
  ?trace:Ckpt_simkernel.Trace.t ->
  ?probe:Probe.t ->
  ?rng:Ckpt_numerics.Rng.t ->
  ?batched:bool ->
  seed:int ->
  Run_config.t ->
  Outcome.t
(** [run ~seed config] simulates one execution; equal seeds reproduce
    equal outcomes bit-for-bit.  When [rng] is given it supplies the
    randomness instead of [seed] (which is then ignored): the caller
    owns the stream, which is how {!Replication} hands each replication
    a {!Ckpt_numerics.Rng.split}-derived substream of one base seed.
    The engine consumes (and advances) the given generator.
    [batched] (default [true]) controls whether failure inter-arrival
    draws are pre-drawn in blocks (see {!Ckpt_failures.Arrivals.create});
    both settings produce bit-identical outcomes.
    When [trace] is given, the engine records
    tagged events into it — ["failure"], ["recovery"], ["ckpt"],
    ["ckpt-redo"], ["ckpt-abort"], ["complete"], ["horizon"] — with the
    simulated wall-clock timestamps; tests use this to assert event
    orderings.  When [probe] is given it receives structured
    {!Probe.event} observations (segments, checkpoint/recovery durations,
    failures) in wall-clock order — the telemetry source for the adaptive
    layer. *)
