type event =
  | Segment of { at : float; duration : float; productive : float }
  | Ckpt of { at : float; level : int; duration : float; first : bool }
  | Ckpt_aborted of { at : float; level : int; wasted : float }
  | Failure of { at : float; level : int }
  | Recovery of { at : float; level : int; alloc : float; duration : float }
  | Recovery_aborted of { at : float; level : int; elapsed : float }
  | End of { at : float; completed : bool }

type t = event -> unit

let level = function
  | Segment _ | End _ -> None
  | Ckpt { level; _ }
  | Ckpt_aborted { level; _ }
  | Failure { level; _ }
  | Recovery { level; _ }
  | Recovery_aborted { level; _ } ->
      Some level

let pp_event ppf = function
  | Segment { at; duration; productive } ->
      Format.fprintf ppf "%.3f segment dur=%.3f productive=%.3f" at duration productive
  | Ckpt { at; level; duration; first } ->
      Format.fprintf ppf "%.3f ckpt level=%d dur=%.3f%s" at level duration
        (if first then "" else " redo")
  | Ckpt_aborted { at; level; wasted } ->
      Format.fprintf ppf "%.3f ckpt-abort level=%d wasted=%.3f" at level wasted
  | Failure { at; level } -> Format.fprintf ppf "%.3f failure level=%d" at level
  | Recovery { at; level; alloc; duration } ->
      Format.fprintf ppf "%.3f recovery level=%d alloc=%.3f dur=%.3f" at level alloc duration
  | Recovery_aborted { at; level; elapsed } ->
      Format.fprintf ppf "%.3f recovery-abort level=%d elapsed=%.3f" at level elapsed
  | End { at; completed } ->
      Format.fprintf ppf "%.3f %s" at (if completed then "complete" else "horizon")
