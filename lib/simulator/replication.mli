(** Replicated simulation runs.

    The paper reports mean values over 100 runs with random failure
    arrivals per configuration (Section IV-A).  This module runs a
    configuration across independent RNG streams and aggregates the
    outcome portions.

    {b Determinism contract.}  Replication [i] consumes the [i]-th
    substream of [Rng.streams ~n:runs (Rng.of_int base_seed)], derived
    up front by the coordinator.  Passing a {!Ckpt_parallel.Pool} fans
    the replications across its worker domains; because the streams are
    fixed before any run starts and {!Ckpt_parallel.Pool.map} preserves
    index order, the outcome array — and hence every aggregate — is
    bit-identical for any worker count and any scheduling order
    (property-tested in [test/test_simulator.ml]). *)

type aggregate = {
  runs : int;
  completed_runs : int;
  wall_clock : Ckpt_numerics.Stats.summary;
  productive : float;  (** mean seconds *)
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
  mean_failures : float;
  mean_efficiency : float;
  wall_clock_ci95 : float * float;
}

val run :
  ?pool:Ckpt_parallel.Pool.t -> ?runs:int -> ?base_seed:int -> Run_config.t -> aggregate
(** [run config] simulates [runs] executions (default 100) on split
    substreams of [base_seed] (default 42) and aggregates.  Runs that
    hit the safety horizon are counted in [runs - completed_runs] and
    excluded from the means (a warning case the caller should surface).
    [pool] parallelizes the runs without changing any result. *)

val outcomes :
  ?pool:Ckpt_parallel.Pool.t -> ?runs:int -> ?base_seed:int -> Run_config.t -> Outcome.t array
(** The raw per-run outcomes, for custom statistics.  Slot [i] always
    holds the outcome of stream [i], pool or not. *)

val pp : Format.formatter -> aggregate -> unit
