(** Execution observation hooks for the event-driven engine.

    A probe is a callback {!Engine.run} invokes as the simulated
    execution unfolds, with exact timestamps and (jittered) durations —
    the raw material execution telemetry is made of.  Unlike
    {!Ckpt_simkernel.Trace} entries, probe events are structured values:
    no string formatting on the hot path, no parsing downstream.

    Events are emitted in wall-clock order.  [at] is always the start of
    the reported activity. *)

type event =
  | Segment of { at : float; duration : float; productive : float }
      (** uninterrupted computation; [productive <= duration] is the
          first-time share, the rest re-executed rollback work *)
  | Ckpt of { at : float; level : int; duration : float; first : bool }
      (** a completed checkpoint write ([first = false]: re-written after
          a rollback); [duration] includes the run's cost jitter *)
  | Ckpt_aborted of { at : float; level : int; wasted : float }
      (** a write destroyed by a failure [wasted] seconds in *)
  | Failure of { at : float; level : int }
  | Recovery of { at : float; level : int; alloc : float; duration : float }
      (** a completed re-allocation ([alloc]) plus recovery read
          ([duration], jittered) *)
  | Recovery_aborted of { at : float; level : int; elapsed : float }
      (** a recovery interrupted by another failure [elapsed] seconds in *)
  | End of { at : float; completed : bool }

type t = event -> unit

val level : event -> int option
(** The checkpoint level an event concerns, when it has one. *)

val pp_event : Format.formatter -> event -> unit
