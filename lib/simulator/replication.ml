module Rng = Ckpt_numerics.Rng
module Stats = Ckpt_numerics.Stats
module Pool = Ckpt_parallel.Pool

type aggregate = {
  runs : int;
  completed_runs : int;
  wall_clock : Stats.summary;
  productive : float;
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
  mean_failures : float;
  mean_efficiency : float;
  wall_clock_ci95 : float * float;
}

let outcomes ?pool ?(runs = 100) ?(base_seed = 42) config =
  assert (runs > 0);
  (* The whole family of per-replication streams is split off the base
     seed up front, in index order, by the coordinating domain.  Each
     replication then owns stream [i] outright, so the outcome array is
     bit-identical whether the runs execute here or across any number
     of pool workers in any schedule. *)
  let rngs = Rng.streams ~n:runs (Rng.of_int base_seed) in
  let job i = Engine.run ~rng:rngs.(i) ~seed:(base_seed + i) config in
  match pool with
  | None -> Array.init runs job
  | Some pool -> Pool.map pool ~f:job (Array.init runs Fun.id)

let run ?pool ?runs ?base_seed config =
  let all = outcomes ?pool ?runs ?base_seed config in
  (* One pass to collect the completed outcomes, one fold per aggregate
     field: no per-field re-filtering and no list round-trips. *)
  let n_completed =
    Array.fold_left (fun k o -> if o.Outcome.completed then k + 1 else k) 0 all
  in
  let completed =
    if n_completed = 0 then [||]
    else begin
      let out = Array.make n_completed all.(0) in
      let j = ref 0 in
      Array.iter
        (fun o ->
          if o.Outcome.completed then begin
            out.(!j) <- o;
            incr j
          end)
        all;
      out
    end
  in
  let walls =
    if n_completed = 0 then [| 0. |]
    else Array.map (fun o -> o.Outcome.wall_clock) completed
  in
  let mean f =
    if n_completed = 0 then 0.
    else Array.fold_left (fun acc o -> acc +. f o) 0. completed /. float_of_int n_completed
  in
  { runs = Array.length all;
    completed_runs = n_completed;
    wall_clock = Stats.summarize walls;
    productive = mean (fun o -> o.Outcome.productive);
    checkpoint = mean (fun o -> o.Outcome.checkpoint);
    restart = mean (fun o -> o.Outcome.restart);
    allocation = mean (fun o -> o.Outcome.allocation);
    rollback = mean (fun o -> o.Outcome.rollback);
    mean_failures = mean (fun o -> float_of_int (Outcome.total_failures o));
    mean_efficiency =
      mean (fun o ->
          Outcome.efficiency o ~te:config.Run_config.te ~n:config.Run_config.n);
    wall_clock_ci95 = Stats.confidence95 walls }

let pp ppf a =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed@ wall mean=%.4g s std=%.3g@ portions: prod=%.4g \
     ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ failures=%.1f eff=%.4f@]"
    a.completed_runs a.runs a.wall_clock.Stats.mean a.wall_clock.Stats.std a.productive
    a.checkpoint a.restart a.allocation a.rollback a.mean_failures a.mean_efficiency
