(** One-dimensional root finding.

    The multilevel optimizer solves [dE(T_w)/dN = 0] with a bisection search
    over the convex region [(0, N_star]] (paper Section III-C.2); Newton and
    Brent variants are provided for the Jin-style baseline and for tests. *)

type outcome = {
  root : float;
  iterations : int;
  residual : float;  (** |f root| at the returned point *)
  f_evals : int;  (** number of evaluations of [f] performed *)
}

exception No_bracket of string
(** Raised by {!bisect} when the supplied interval does not bracket a sign
    change. *)

exception No_convergence of string
(** Raised when an iterative method exceeds its iteration budget. *)

val bisect :
  ?tol_x:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> outcome
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [\[lo, hi\]].
    [f lo] and [f hi] must have opposite (or zero) signs.  Stops when the
    interval width falls below [tol_x] (default [1e-9]).
    @raise No_bracket if the interval does not bracket a root. *)

val bisect_integer :
  f:(float -> float) -> lo:float -> hi:float -> unit -> outcome
(** Bisection specialized to integer-valued answers: stops as soon as the
    bracketing interval is narrower than [0.5], matching the paper's early
    stop for the optimal core count [N*].
    @raise No_bracket if the interval does not bracket a root. *)

val itp_integer :
  ?flo:float ->
  ?fhi:float ->
  f:(float -> float) -> lo:float -> hi:float -> unit -> outcome
(** Superlinear drop-in for {!bisect_integer}: ITP steps (regula falsi
    truncated toward the midpoint, projected onto the shrinking minmax
    envelope — Oliveira & Takahashi 2020) refine the bracket, then the
    exact {!bisect_integer} probe recurrence is replayed with probe
    signs inferred from the refined bracket.  When [f] has a single
    sign change on [\[lo, hi\]] the returned [root] is bit-identical to
    {!bisect_integer}'s, typically at under half the evaluations; the
    worst case stays within one probe of the bisection budget.  [?flo]
    and [?fhi] pass along already-known endpoint values so the caller's
    guard evaluations are not repeated.
    @raise No_bracket if the interval does not bracket a root. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> f':(float -> float) -> x0:float -> unit -> outcome
(** Newton–Raphson iteration.
    @raise No_convergence when the iteration budget is exhausted or the
    derivative vanishes. *)

val secant :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> x0:float -> x1:float -> unit -> outcome
(** Secant method (derivative-free Newton).
    @raise No_convergence on failure. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> outcome
(** Brent's method: bisection safety with superlinear convergence.
    @raise No_bracket if the interval does not bracket a root. *)

val minimize_golden :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> outcome
(** Golden-section search for the minimum of a unimodal function; used by
    tests to confirm that stationary points found via derivatives are
    actual minima.  The returned [residual] is [f root]. *)
