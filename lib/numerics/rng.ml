module Splitmix = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* Constants from Steele, Lea & Flood, "Fast splittable pseudorandom
     number generators" (OOPSLA 2014). *)
  let golden_gamma = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))

  let next t =
    t.state <- Int64.add t.state golden_gamma;
    mix t.state
end

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let create seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  (* An all-zero state would be a fixed point; splitmix cannot produce four
     zero outputs in a row for any seed, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let of_int seed = create (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (int64 t)

let streams ~n t =
  if n < 0 then invalid_arg "Rng.streams: negative count";
  let out = Array.make n t in
  (* An explicit loop: the parent must be consumed in index order so
     that stream [i] is the same generator no matter who later uses
     it, or on how many domains. *)
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.(logand word (shift_left 1L b)) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (int64 t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
