(* Lanczos approximation with g = 7, n = 9 coefficients. *)

let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  assert (x > 0.);
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)

let factorial n =
  assert (n >= 0);
  if n < 2 then 1.
  else begin
    let acc = ref 1. in
    for i = 2 to n do
      acc := !acc *. float_of_int i
    done;
    !acc
  end

(* Regularized incomplete gamma functions, series + continued-fraction
   split at x = a + 1 so each expansion is used where it converges
   fastest. *)

let gamma_eps = 1e-14
let gamma_max_iter = 500

(* P(a, x) by the power series x^a e^-x / Gamma(a+1) sum x^n / (a+1)...(a+n). *)
let gamma_p_series ~a ~x =
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  (try
     for _ = 1 to gamma_max_iter do
       ap := !ap +. 1.;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. gamma_eps then raise Exit
     done
   with Exit -> ());
  !sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Q(a, x) by the Lentz continued fraction. *)
let gamma_q_cf ~a ~x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to gamma_max_iter do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < gamma_eps then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_p ~a ~x =
  assert (a > 0.);
  if x <= 0. then 0.
  else if x < a +. 1. then gamma_p_series ~a ~x
  else 1. -. gamma_q_cf ~a ~x

let gamma_q ~a ~x = 1. -. gamma_p ~a ~x

let gamma_p_inv ~a ~p =
  assert (a > 0.);
  assert (p >= 0. && p < 1.);
  if p = 0. then 0.
  else begin
    (* Bracket the quantile, then bisect; P is monotone in x and the
       bracket doubles from the mean so few expansions are needed. *)
    let hi = ref (Float.max 1. (2. *. a)) in
    while gamma_p ~a ~x:!hi < p do
      hi := !hi *. 2.
    done;
    let lo = ref 0. in
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if gamma_p ~a ~x:mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end
