(** Deterministic pseudo-random number generation.

    The library needs reproducible random streams: every simulated run is
    seeded explicitly so that experiments are replayable bit-for-bit.  Two
    generators are provided:

    - {!module:Splitmix} — the splitmix64 generator, used mostly to expand a
      user seed into the larger state of xoshiro;
    - the main generator {!t} — xoshiro256**, a small, fast, high-quality
      generator suitable for simulation workloads.

    Streams can be {!split} to obtain statistically independent substreams,
    one per simulated entity (e.g. one per failure level), so that adding an
    entity does not perturb the draws seen by the others. *)

module Splitmix : sig
  type t
  (** Mutable splitmix64 state. *)

  val create : int64 -> t
  (** [create seed] makes a splitmix64 stream from an arbitrary seed. *)

  val next : t -> int64
  (** [next s] returns the next 64-bit output and advances the state. *)
end

type t
(** Mutable xoshiro256** state. *)

val create : int64 -> t
(** [create seed] builds a generator, expanding [seed] with splitmix64. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a fresh, independent generator.
    The parent stream advances, so successive splits are distinct. *)

val streams : n:int -> t -> t array
(** [streams ~n t] derives [n] independent substreams by successive
    {!split}s consumed in index order (the parent advances [n] draws).
    Because the whole family is derived up front from the parent's
    state, stream [i] is identical regardless of how many threads or
    domains later consume the array — the seeding scheme behind the
    simulator's deterministic parallel replication. *)

val int64 : t -> int64
(** [int64 t] returns a uniform 64-bit integer. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)] with 53 bits of
    precision. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val jump : t -> unit
(** [jump t] advances the state by 2^128 steps; useful to derive long
    non-overlapping sequences from one seed. *)
