(** Special functions.

    Currently the gamma function family, needed to calibrate Weibull
    failure inter-arrival laws to a target mean rate
    ([mean = scale * Gamma (1 + 1/shape)]). *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], via the Lanczos
    approximation (|error| < 1e-10 over the usual range). *)

val gamma : float -> float
(** [gamma x] for [x > 0].  Overflow-prone beyond ~170; use
    {!log_gamma} there. *)

val factorial : int -> float
(** [factorial n] as a float ([gamma (n + 1)] with exact small cases).
    Requires [n >= 0]. *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma [P(a, x)] for [a > 0] — the CDF of
    a unit-scale gamma variate with shape [a], and of half a chi-square
    with [2a] degrees of freedom.  Power series below [x = a + 1], Lentz
    continued fraction above. *)

val gamma_q : a:float -> x:float -> float
(** [1 - gamma_p ~a ~x]. *)

val gamma_p_inv : a:float -> p:float -> float
(** Quantile: the [x] with [P(a, x) = p], for [p] in [\[0, 1)].  Used for
    exact Poisson confidence bounds on observed failure counts
    ([chi^2_q(2k) / 2 = gamma_p_inv ~a:k ~p:q]). *)
