type outcome = { root : float; iterations : int; residual : float; f_evals : int }

exception No_bracket of string
exception No_convergence of string

let sign x = if x > 0. then 1 else if x < 0. then -1 else 0

let check_bracket name flo fhi =
  if sign flo * sign fhi > 0 then
    raise (No_bracket (Printf.sprintf "%s: f(lo)=%g and f(hi)=%g have the same sign" name flo fhi))

let bisect_gen ~tol_x ~max_iter ~f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  check_bracket "bisect" flo fhi;
  if flo = 0. then { root = lo; iterations = 0; residual = 0.; f_evals = 2 }
  else if fhi = 0. then { root = hi; iterations = 0; residual = 0.; f_evals = 2 }
  else begin
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if hi -. lo < tol_x || fmid = 0. || iter >= max_iter then
        { root = mid; iterations = iter; residual = Float.abs fmid; f_evals = iter + 3 }
      else if sign flo * sign fmid <= 0 then loop lo mid flo (iter + 1)
      else loop mid hi fmid (iter + 1)
    in
    loop lo hi flo 0
  end

let bisect ?(tol_x = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  bisect_gen ~tol_x ~max_iter ~f ~lo ~hi

let bisect_integer ~f ~lo ~hi () = bisect_gen ~tol_x:0.5 ~max_iter:200 ~f ~lo ~hi

(* Integer bisection with an ITP front end (Oliveira & Takahashi, "An
   enhancement of the bisection method average performance preserving
   minmax optimality", 2020): regula-falsi interpolation truncated
   toward the midpoint and projected onto a shrinking minmax envelope,
   so smooth brackets converge superlinearly while the worst case stays
   within [n0 = 1] probe of the plain bisection budget.

   The refined bracket is then used to *replay* the exact
   [bisect_integer] probe sequence: probe signs outside the refined
   bracket are inferred (f has its endpoint sign there), probes inside
   it are evaluated for real.  Whenever f has a single sign change on
   [lo, hi] — true for Eq. 24's d E(T_w)/dn on the convex region the
   solver brackets — every inferred sign equals the sign bisection
   would have measured, and the returned root is bit-identical to
   [bisect_integer]'s at a fraction of the evaluations.  With multiple
   sign changes the result is still a valid bracketed root, just
   possibly a different one than plain bisection picks. *)
let itp_integer ?flo ?fhi ~f ~lo ~hi () =
  let evals = ref 0 in
  let feval x = incr evals; f x in
  let flo = match flo with Some v -> v | None -> feval lo in
  let fhi = match fhi with Some v -> v | None -> feval hi in
  check_bracket "itp" flo fhi;
  if flo = 0. then { root = lo; iterations = 0; residual = 0.; f_evals = !evals }
  else if fhi = 0. then { root = hi; iterations = 0; residual = 0.; f_evals = !evals }
  else begin
    let sa = sign flo and sb = sign fhi in
    (* Phase 1: ITP-refine [lo, hi] down to a half-width of [eps].
       0.0625 leaves the refined bracket narrower than any bisection
       cell (>= 0.25 wide), so the replay below rarely needs more than
       one real probe. *)
    let eps = 0.0625 in
    let a = ref lo and b = ref hi in
    let ya = ref flo and yb = ref fhi in
    (* sign-normalize so the function increases across the bracket *)
    let s = if sa < 0 then 1. else -1. in
    (* The ITP paper's recommended truncation constant.  Because delta
       scales with the SQUARE of the current width, the midpoint pull is
       strong early (where interpolants are least trustworthy) and
       negligible once the bracket has narrowed — no regime switching
       needed. *)
    let k1 = 0.2 /. (hi -. lo) in
    (* n0 = 6 slack probes over the bisection count: the minmax envelope
       must leave the interpolant room to act after the first few probes
       spent balancing a badly skewed bracket — with the paper's n0 = 1
       the envelope radius collapses to zero after one non-midpoint
       probe and every later step degenerates to bisection. *)
    let n_max =
      let w = (hi -. lo) /. (2. *. eps) in
      (if w <= 1. then 0 else int_of_float (Float.ceil (Float.log w /. Float.log 2.))) + 6
    in
    let j = ref 0 in
    let zero_hit = ref false in
    (* Illinois weights: when the same endpoint is replaced twice in a
       row (the one-sided stall of regula falsi on a flat-vs-steep
       bracket), the stale opposite value is halved for interpolation
       purposes, pulling the next probe past the root instead of
       crawling toward it.  The trigger is repeat-only — alternating
       updates keep both weights at 1, so a well-behaved bracket
       interpolates on the raw values — and the weights never touch the
       true values used for sign bookkeeping. *)
    let ia = ref 1. and ib = ref 1. in
    let last_side = ref 0 in
    while (not !zero_hit) && !b -. !a > 2. *. eps && !j < n_max do
      let w = !b -. !a in
      let x_half = 0.5 *. (!a +. !b) in
      let r = Float.max 0. ((eps *. Float.pow 2. (Float.of_int (n_max - !j))) -. (0.5 *. w)) in
      let ya' = s *. !ya and yb' = s *. !yb in
      (* Candidate probe, projected into the minmax radius r around the
         midpoint.  Eq. 24-style curves vary over many orders of
         magnitude across the bracket (|f| ~ C/x^k on one branch), where
         any value interpolation is hopeless: while the endpoint
         magnitudes are skewed by > 1e3 on a positive bracket, probe the
         geometric mean instead — log-space bisection balances the
         magnitudes in a handful of probes.  With magnitudes within a
         factor 30 the curve is locally close to affine and the classic
         linear regula falsi converges superlinearly on its own (log-log
         coordinates would distort genuinely linear functions); in the
         band between, interpolate in log-log coordinates (u = ln x
         against a signed log1p of the values scaled by their geometric
         mean), which is nearly affine for power-law branches and
         reduces to the plain regula falsi point near the root
         (log1p(t) ~ t on a narrow bracket).  Either way the minmax
         projection bounds the worst case. *)
      (* Value imbalance only signals a power-law branch while the
         bracket is wide in log space: once [b/a] is close to 1 the
         function is affine over the bracket and one endpoint value
         shrinking to zero (the root being near it) is the NORMAL
         regula-falsi endgame, not skew. *)
      (* Active Illinois weights mean a one-sided stall is being broken:
         the magnitude imbalance is then an artifact of one endpoint
         converging while the other is stuck, not a power-law signature,
         so let the weighted interpolation finish the job. *)
      let balancing = !ia < 1. || !ib < 1. in
      let wide = (not balancing) && !b > 2. *. !a in
      let skewed =
        !a > 0. && wide && (yb' < 1e-3 *. -.ya' || -.ya' < 1e-3 *. yb')
      in
      let decades =
        !a > 0. && wide && (yb' > 30. *. -.ya' || -.ya' > 30. *. yb')
      in
      let delta = k1 *. w *. w in
      let x_t =
        if skewed then Float.sqrt (!a *. !b)
        else begin
          let x_f =
            if decades then begin
              let sv = Float.sqrt (Float.abs !ya *. Float.abs !yb) in
              let va = -.Float.log1p (-.ya' /. sv)
              and vb = Float.log1p (yb' /. sv) in
              let ua = Float.log !a and ub = Float.log !b in
              Float.exp (((vb *. ua) -. (va *. ub)) /. (vb -. va))
            end
            else begin
              (* Illinois-weighted endpoint values cure the one-sided
                 stall; the weights are 1 unless a stall is under way,
                 so a well-behaved bracket interpolates classically. *)
              let yaw = ya' *. !ia and ybw = yb' *. !ib in
              ((ybw *. !a) -. (yaw *. !b)) /. (ybw -. yaw)
            end
          in
          let sigma = if x_half -. x_f > 0. then 1. else -1. in
          if delta <= Float.abs (x_half -. x_f) then x_f +. (sigma *. delta)
          else x_half
        end
      in
      let sigma = if x_half -. x_t > 0. then 1. else -1. in
      let x_itp = if Float.abs (x_t -. x_half) <= r then x_t else x_half -. (sigma *. r) in
      (* clamp strictly inside to guarantee progress under rounding *)
      let x_itp = Float.max (!a +. (0.25 *. eps)) (Float.min (!b -. (0.25 *. eps)) x_itp) in
      if x_itp <= !a || x_itp >= !b then (
        (* bracket too narrow to split under floating point: stop refining *)
        j := n_max)
      else begin
        let y = feval x_itp in
        if y = 0. then begin
          (* exact root: collapse the refined bracket onto it *)
          a := x_itp;
          b := x_itp;
          zero_hit := true
        end
        else if sign y = sa then begin
          a := x_itp; ya := y; ia := 1.;
          ib := (if !last_side = 1 then 0.5 *. !ib else 1.);
          last_side := 1
        end
        else begin
          b := x_itp; yb := y; ib := 1.;
          ia := (if !last_side = -1 then 0.5 *. !ia else 1.);
          last_side := -1
        end;
        incr j
      end
    done;
    (* Phase 2: replay bisect_integer's float recurrence on the original
       bracket, inferring probe signs by position relative to [!a, !b]. *)
    let max_iter = 200 in
    let rec replay rlo rhi slo iter =
      let mid = 0.5 *. (rlo +. rhi) in
      if rhi -. rlo < 0.5 || iter >= max_iter then begin
        let fmid = feval mid in
        { root = mid; iterations = iter; residual = Float.abs fmid; f_evals = !evals }
      end
      else if !zero_hit && mid = !a then
        (* bisection would have measured f mid = 0 and stopped here *)
        { root = mid; iterations = iter; residual = 0.; f_evals = !evals }
      else begin
        let smid =
          if mid <= !a then sa
          else if mid >= !b then sb
          else begin
            let fm = feval mid in
            if fm = 0. then 0
            else begin
              (* a real probe inside the refined bracket also tightens it *)
              if sign fm = sa then (a := mid; ya := fm) else (b := mid; yb := fm);
              sign fm
            end
          end
        in
        if smid = 0 then { root = mid; iterations = iter; residual = 0.; f_evals = !evals }
        else if slo * smid <= 0 then replay rlo mid slo (iter + 1)
        else replay mid rhi smid (iter + 1)
      end
    in
    replay lo hi sa 0
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~f' ~x0 () =
  let rec loop x iter evals =
    if iter >= max_iter then
      raise (No_convergence (Printf.sprintf "newton: %d iterations exhausted at x=%g" iter x));
    let fx = f x in
    let evals = evals + 1 in
    if Float.abs fx <= tol then
      { root = x; iterations = iter; residual = Float.abs fx; f_evals = evals }
    else begin
      let d = f' x in
      if d = 0. || not (Float.is_finite d) then
        raise (No_convergence (Printf.sprintf "newton: derivative %g at x=%g" d x));
      let x' = x -. (fx /. d) in
      if Float.abs (x' -. x) <= tol *. (1. +. Float.abs x) then
        { root = x'; iterations = iter + 1; residual = Float.abs (f x'); f_evals = evals + 1 }
      else loop x' (iter + 1) evals
    end
  in
  loop x0 0 0

let secant ?(tol = 1e-12) ?(max_iter = 100) ~f ~x0 ~x1 () =
  let rec loop xa xb fa fb iter evals =
    if iter >= max_iter then
      raise (No_convergence (Printf.sprintf "secant: %d iterations exhausted at x=%g" iter xb));
    if Float.abs fb <= tol then
      { root = xb; iterations = iter; residual = Float.abs fb; f_evals = evals }
    else begin
      let denom = fb -. fa in
      if denom = 0. then raise (No_convergence "secant: flat chord");
      let x' = xb -. (fb *. (xb -. xa) /. denom) in
      loop xb x' fb (f x') (iter + 1) (evals + 1)
    end
  in
  loop x0 x1 (f x0) (f x1) 0 2

(* Brent's method (inverse quadratic / secant steps with bisection
   safeguards), following the standard formulation.  Termination is
   relative: the bracket must shrink below [tol *. (1. +. |b|)], the
   same convention as [newton]'s step test, so large-magnitude roots
   converge in the expected ~log2(width/|root|/tol) probes instead of
   grinding toward an absolute width no float spacing can reach. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let fa0 = f lo and fb0 = f hi in
  check_bracket "brent" fa0 fb0;
  let a = ref lo and b = ref hi and fa = ref fa0 and fb = ref fb0 in
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in a := !b; b := t;
    let t = !fa in fa := !fb; fb := t
  end;
  let c = ref !a and fc = ref !fa and d = ref !a in
  let mflag = ref true in
  let iter = ref 0 in
  let result = ref None in
  while !result = None do
    if !fb = 0. || Float.abs (!b -. !a) < tol *. (1. +. Float.abs !b) then
      result := Some { root = !b; iterations = !iter; residual = Float.abs !fb; f_evals = !iter + 2 }
    else if !iter >= max_iter then raise (No_convergence "brent: iteration budget exhausted")
    else begin
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_guard = ((3. *. !a) +. !b) /. 4. in
      let between = if lo_guard < !b then s > lo_guard && s < !b else s > !b && s < lo_guard in
      let use_bisection =
        (not between)
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
        || (!mflag && Float.abs (!b -. !c) < tol)
        || ((not !mflag) && Float.abs (!c -. !d) < tol)
      in
      let s = if use_bisection then (!a +. !b) /. 2. else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    end
  done;
  match !result with
  | Some r -> r
  | None -> assert false

let minimize_golden ?(tol = 1e-9) ?(max_iter = 500) ~f ~lo ~hi () =
  let phi = (sqrt 5. -. 1.) /. 2. in
  let rec loop a b x1 x2 f1 f2 iter =
    if b -. a < tol || iter >= max_iter then
      let m = 0.5 *. (a +. b) in
      { root = m; iterations = iter; residual = f m; f_evals = iter + 3 }
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (phi *. (b -. a)) in
      loop a b x1 x2 (f x1) f2 (iter + 1)
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (phi *. (b -. a)) in
      loop a b x1 x2 f1 (f x2) (iter + 1)
    end
  in
  let x1 = hi -. (phi *. (hi -. lo)) in
  let x2 = lo +. (phi *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2) 0
