type t = {
  queue : (unit -> unit) Work_queue.t;
  domains : unit Domain.t array;
  mutable live : bool;
}

let worker_loop queue () =
  let rec loop () =
    match Work_queue.pop queue with
    | Some job ->
        job ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  let queue = Work_queue.create () in
  { queue; domains = Array.init workers (fun _ -> Domain.spawn (worker_loop queue)); live = true }

let workers t = Array.length t.domains

let recommended_workers () = Domain.recommended_domain_count ()

let map t ~f xs =
  if not t.live then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* Contiguous chunks, a few per worker for load balance: per-item
       queue traffic would dominate sub-millisecond jobs. *)
    let chunks = min n (4 * Array.length t.domains) in
    let results = Array.make n None in
    let remaining = ref chunks in
    let mutex = Mutex.create () in
    let all_done = Condition.create () in
    for c = 0 to chunks - 1 do
      let lo = c * n / chunks and hi = ((c + 1) * n / chunks) - 1 in
      Work_queue.push t.queue (fun () ->
          (* Chunks own disjoint result slots, so only the completion
             counter needs the lock.  Capture instead of raising: a
             failing job must not kill the worker domain. *)
          for i = lo to hi do
            results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e)
          done;
          Mutex.lock mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock mutex)
    done;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait all_done mutex
    done;
    Mutex.unlock mutex;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let shutdown t =
  if t.live then begin
    t.live <- false;
    Work_queue.close t.queue;
    Array.iter Domain.join t.domains
  end

let with_pool ~workers f =
  let pool = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
