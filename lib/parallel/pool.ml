module Chaos = Ckpt_chaos.Chaos

type t = {
  queue : (unit -> unit) Work_queue.t;
  lock : Mutex.t;  (* guards [domains], [live], [respawns] *)
  mutable domains : unit Domain.t list;  (* every spawned, not yet joined *)
  mutable live : bool;
  mutable respawns : int;
  workers : int;
  inline : bool;  (* workers = 1, no chaos: run jobs in the caller *)
  chaos : Chaos.t option;
  mutable chaos_base : int;  (* next pool-site chaos item index *)
}

(* A worker dies only on an injected {!Chaos.Killed_worker} crash; the
   supervisor then spawns a replacement so the pool keeps its capacity.
   Any other exception escaping a job is swallowed: jobs built by [map]
   capture their own errors, so this is belt-and-braces against a future
   job kind killing a domain and wedging the queue. *)
let rec worker_loop pool () =
  match Work_queue.pop pool.queue with
  | None -> ()
  | Some job -> (
      match job () with
      | () -> worker_loop pool ()
      | exception Chaos.Killed_worker -> respawn pool
      | exception _ -> worker_loop pool ())

and respawn pool =
  Mutex.lock pool.lock;
  if pool.live then begin
    pool.respawns <- pool.respawns + 1;
    pool.domains <- Domain.spawn (fun () -> worker_loop pool ()) :: pool.domains
  end;
  Mutex.unlock pool.lock

let create ?chaos ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  (* A single fault-free worker gains nothing from a domain: jobs would
     run one at a time anyway, paying spawn, queue traffic and
     cross-domain signalling.  Run them in the caller instead.  Chaos
     still forces the domain path — crash injection kills a worker
     domain, which only exists there. *)
  let inline = workers = 1 && Option.is_none chaos in
  let pool =
    { queue = Work_queue.create ();
      lock = Mutex.create ();
      domains = [];
      live = true;
      respawns = 0;
      workers;
      inline;
      chaos;
      chaos_base = 0 }
  in
  if not inline then
    pool.domains <-
      List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool ()));
  pool

let workers t = t.workers
let respawns t =
  Mutex.lock t.lock;
  let n = t.respawns in
  Mutex.unlock t.lock;
  n

let recommended_workers () = Domain.recommended_domain_count ()

let map_inline ~f xs =
  (* Same error contract as the pooled path: run every item, then raise
     the lowest-index failure. *)
  let results = Array.map (fun x -> try Ok (f x) with e -> Error e) xs in
  Array.map (function Ok r -> r | Error e -> raise e) results

let map t ~f xs =
  if not t.live then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.inline then map_inline ~f xs
  else begin
    (* Contiguous chunks, a few per worker for load balance: per-item
       queue traffic would dominate sub-millisecond jobs. *)
    let chunks = min n (4 * t.workers) in
    let results = Array.make n None in
    (* Chaos item indices are assigned by the coordinator before any
       fan-out, so the fault schedule is a function of the submission
       stream, never of which worker ran what. *)
    let base = t.chaos_base in
    t.chaos_base <- base + n;
    let attempts = Array.make (if Option.is_some t.chaos then n else 0) 0 in
    (* Completion is counted in items, not chunks: a crashing worker
       completes a chunk prefix and requeues the rest, so chunk identity
       is not stable but item identity is. *)
    let remaining = ref n in
    let mutex = Mutex.create () in
    let all_done = Condition.create () in
    let complete k =
      if k > 0 then begin
        Mutex.lock mutex;
        remaining := !remaining - k;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock mutex
      end
    in
    (* Run items [lo..hi].  An injected crash requeues the unfinished
       tail [i..hi] (attempt bumped for item [i], so the schedule stays
       keyed by (item, attempt) and a retried item eventually proceeds)
       and kills this worker; the supervisor replaces it. *)
    let rec chunk_job lo hi () =
      let i = ref lo in
      try
        while !i <= hi do
          (match t.chaos with
          | None -> ()
          | Some chaos -> (
              match
                Chaos.pool_fault chaos ~index:(base + !i) ~attempt:attempts.(!i)
              with
              | `Proceed -> ()
              | `Crash ->
                  attempts.(!i) <- attempts.(!i) + 1;
                  raise Chaos.Killed_worker));
          (* Chunks own disjoint result slots, so only the completion
             counter needs the lock.  Capture instead of raising: a
             failing [f] must not kill the worker domain. *)
          results.(!i) <- Some (try Ok (f xs.(!i)) with e -> Error e);
          incr i
        done;
        complete (!i - lo)
      with Chaos.Killed_worker ->
        complete (!i - lo);
        (try Work_queue.push t.queue (chunk_job !i hi)
         with Work_queue.Closed ->
           (* Shutdown raced the crash: account for the tail so the
              coordinator (if still waiting) cannot hang. *)
           for j = !i to hi do
             results.(j) <- Some (Error Chaos.Killed_worker)
           done;
           complete (hi - !i + 1));
        raise Chaos.Killed_worker
    in
    for c = 0 to chunks - 1 do
      let lo = c * n / chunks and hi = ((c + 1) * n / chunks) - 1 in
      Work_queue.push t.queue (chunk_job lo hi)
    done;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait all_done mutex
    done;
    Mutex.unlock mutex;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.lock;
  let was_live = t.live in
  t.live <- false;
  Mutex.unlock t.lock;
  if was_live then begin
    Work_queue.close t.queue;
    (* Drain-join loop: a crashing worker may have spawned a replacement
       between our snapshot and its exit, so keep joining until the list
       is empty.  [live = false] stops further respawns. *)
    let rec drain () =
      Mutex.lock t.lock;
      let ds = t.domains in
      t.domains <- [];
      Mutex.unlock t.lock;
      match ds with
      | [] -> ()
      | ds ->
          List.iter Domain.join ds;
          drain ()
    in
    drain ()
  end

let with_pool ?chaos ~workers f =
  let pool = create ?chaos ~workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
