(** A blocking multi-producer multi-consumer FIFO queue.

    The channel between the service's coordinating domain and its worker
    domains: plain OCaml 5 [Mutex]/[Condition] over a [Queue], no
    dependencies beyond the standard library.  [pop] blocks until an
    item arrives or the queue is closed and drained, which gives the
    pool a clean shutdown protocol (close, then join). *)

type 'a t

exception Closed
(** Raised by {!push} after {!close}. *)

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue and wake one waiting consumer.  @raise Closed. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty and open; [None] once the
    queue is closed {e and} drained (remaining items are still
    delivered). *)

val close : 'a t -> unit
(** Idempotent; wakes every blocked consumer. *)

val length : 'a t -> int
