(** A fixed pool of OCaml 5 worker domains fed by a {!Work_queue}.

    The shared deterministic-parallelism executor: [map] fans an array
    of independent jobs out to the workers and reassembles the results
    in submission order, so callers observe exactly the semantics of
    [Array.map] — only faster.  Jobs must be pure with respect to shared
    state (optimizer solves and seeded simulator runs are), which is
    what makes parallel results bit-identical to sequential ones for
    any worker count.

    A job that raises does not kill its worker domain: the exception is
    captured, the remaining jobs still run, and the first captured
    exception (in submission order) is re-raised in the caller. *)

type t

val create : workers:int -> t
(** Spawn [workers] domains ([>= 1]) blocked on an empty queue.
    @raise Invalid_argument when [workers < 1]. *)

val workers : t -> int

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count ()]: the worker count beyond which
    extra domains cannot help on this machine (1 on a single core). *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [with_pool ~workers f] runs [f] with a transient pool, shutting it
    down (joining every domain) on the way out, exception or not. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map t ~f xs] runs [f xs.(i)] for every [i] across the pool and
    waits for all of them; [(map t ~f xs).(i) = f xs.(i)].  Safe to call
    repeatedly; must not be called concurrently from several domains
    (single coordinator), nor after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue and join every worker.  Idempotent. *)
