(** A supervised pool of OCaml 5 worker domains fed by a {!Work_queue}.

    The shared deterministic-parallelism executor: [map] fans an array
    of independent jobs out to the workers and reassembles the results
    in submission order, so callers observe exactly the semantics of
    [Array.map] — only faster.  Jobs must be pure with respect to shared
    state (optimizer solves and seeded simulator runs are), which is
    what makes parallel results bit-identical to sequential ones for
    any worker count.

    A job that raises does not kill its worker domain: the exception is
    captured, the remaining jobs still run, and the first captured
    exception (in submission order) is re-raised in the caller — only
    after every submitted item has completed, so a failing job can never
    leave the queue wedged or a later [map] observing stale state.

    Workers are supervised: a domain that dies mid-chunk (the seeded
    {!Ckpt_chaos.Chaos} policy injects such crashes via
    [Chaos.Killed_worker]) requeues its unfinished items and is replaced
    by a fresh domain, so a dead worker can neither lose work nor
    deadlock {!shutdown}.  Because chaos decisions are pure functions of
    the item's submission index (and per-item retry attempt), the fault
    schedule — and therefore [map]'s result — is identical for any
    worker count. *)

type t

val create : ?chaos:Ckpt_chaos.Chaos.t -> workers:int -> unit -> t
(** Spawn [workers] domains ([>= 1]) blocked on an empty queue.  With
    [?chaos], every mapped item consults the policy's [Pool] site first
    (possible injected stall or worker crash).
    A fault-free single-worker pool ([workers = 1], no [?chaos]) spawns
    no domain at all: [map] runs jobs inline in the caller with the same
    semantics, so a [workers:1] pool costs the same as plain sequential
    code instead of paying spawn and queue overhead for zero
    parallelism.
    @raise Invalid_argument when [workers < 1]. *)

val workers : t -> int
(** The pool's capacity (stable across supervised restarts). *)

val respawns : t -> int
(** How many crashed workers the supervisor has replaced so far. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count ()]: the worker count beyond which
    extra domains cannot help on this machine (1 on a single core). *)

val with_pool : ?chaos:Ckpt_chaos.Chaos.t -> workers:int -> (t -> 'a) -> 'a
(** [with_pool ~workers f] runs [f] with a transient pool, shutting it
    down (joining every domain) on the way out, exception or not. *)

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map t ~f xs] runs [f xs.(i)] for every [i] across the pool and
    waits for all of them; [(map t ~f xs).(i) = f xs.(i)].  Safe to call
    repeatedly; must not be called concurrently from several domains
    (single coordinator), nor after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue and join every worker, including replacements
    spawned by supervision (the join loop re-snapshots until no domain
    is left, so a crash racing shutdown cannot leak a domain or hang).
    Idempotent. *)
