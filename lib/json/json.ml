type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { position : int; message : string }

(* ------------------------- parsing ------------------------- *)

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let parse_number st =
  let start = st.pos in
  let is_number_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec consume () =
    match peek st with
    | Some c when is_number_char c ->
        advance st;
        consume ()
    | _ -> ()
  in
  consume ();
  let text = String.sub st.input start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

let parse_hex4 st =
  if st.pos + 4 > String.length st.input then fail st "truncated \\u escape";
  let hex = String.sub st.input st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ hex) with
  | Some code -> code
  | None -> fail st (Printf.sprintf "invalid \\u escape %S" hex)

(* Encode a Unicode scalar value as UTF-8. *)
let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
                 let code = parse_hex4 st in
                 (* Surrogate pair handling. *)
                 if code >= 0xD800 && code <= 0xDBFF then begin
                   expect st '\\';
                   expect st 'u';
                   let low = parse_hex4 st in
                   if low < 0xDC00 || low > 0xDFFF then fail st "invalid surrogate pair";
                   let combined =
                     0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                   in
                   utf8_of_code buf combined
                 end
                 else utf8_of_code buf code
             | c -> fail st (Printf.sprintf "invalid escape \\%C" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

(* The parser recurses once per nesting level, so adversarial input like
   ["[[[[..."] would otherwise turn into a stack overflow — an exception
   [parse_result] does not catch.  Capping the depth converts that into
   an ordinary [Parse_error] long before the stack is at risk. *)
let max_depth = 512

let rec parse_value st ~depth =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '[' ->
      if depth >= max_depth then fail st "nesting too deep";
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st ~depth:(depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      if depth >= max_depth then fail st "nesting too deep";
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let parse_pair () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st ~depth:(depth + 1) in
          (key, v)
        in
        let rec pairs acc =
          let p = parse_pair () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              pairs (p :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (p :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        pairs []
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse input =
  let st = { input; pos = 0 } in
  let v = parse_value st ~depth:0 in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing characters";
  v

let parse_result input =
  match parse input with
  | v -> Ok v
  | exception Parse_error { position; message } ->
      Error (Printf.sprintf "at offset %d: %s" position message)

(* ------------------------- printing ------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s
  end

let rec add_digits buf i =
  if i >= 10 then add_digits buf (i / 10);
  Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (i mod 10)))

(* [number_to_string] into a caller's buffer, with the integral case —
   iteration counts, grid scales, array lengths, most of a response's
   numbers — rendered digit by digit instead of through printf.  The
   output is byte-identical: [%.0f] on an integral |f| < 1e15 is the
   plain decimal spelling ("-0" included). *)
let add_number buf f =
  if Float.is_integer f && Float.abs f < 1e15 then begin
    if f = 0. then
      Buffer.add_string buf (if 1. /. f < 0. then "-0" else "0")
    else begin
      if f < 0. then Buffer.add_char buf '-';
      add_digits buf (int_of_float (Float.abs f))
    end
  end
  else Buffer.add_string buf (number_to_string f)

let add_escaped = escape_string

(* Compact emission into a caller's buffer: the non-pretty [to_string],
   reusable across responses without rebuilding the buffer. *)
let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Number f -> add_number buf f
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf v)
        items;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent level = if pretty then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i v ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (level + 1);
            emit (level + 1) v)
          items;
        newline ();
        indent level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (level + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (level + 1) v)
          fields;
        newline ();
        indent level;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* ------------------------- accessors ------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f && Float.abs f <= 2. ** 52. -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None

let float_field key t = Option.bind (member key t) to_float
let string_field key t = Option.bind (member key t) to_str
let list_field key t = Option.bind (member key t) to_list

let float_array arr = List (Array.to_list (Array.map (fun f -> Number f) arr))

let of_float_array t =
  match t with
  | List items ->
      let floats = List.filter_map to_float items in
      if List.length floats = List.length items then Some (Array.of_list floats) else None
  | _ -> None
