(** A small, dependency-free JSON implementation (RFC 8259 subset).

    Used to persist optimizer problems and plans between the CLI tools
    (`ckpt-opt --output plan.json`, `ckpt-simulate --plan plan.json`) and
    to emit machine-readable experiment results.  Supports the full JSON
    value model; numbers are parsed as floats (fine for this library's
    payloads: seconds, counts, rates). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { position : int; message : string }

val max_depth : int
(** Maximum container nesting the parser accepts (512).  Deeper input —
    e.g. an adversarial ["[[[[..."] that would otherwise overflow the
    stack of the recursive-descent parser — fails with {!Parse_error}
    ("nesting too deep") instead. *)

val parse : string -> t
(** @raise Parse_error on malformed input (position is a byte offset) or
    nesting deeper than {!max_depth}. *)

val parse_result : string -> (t, string) result
(** Like {!parse}, with the error rendered as a message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default false) adds newlines and 2-space
    indentation.  Strings are escaped per RFC 8259; non-finite numbers
    are emitted as [null] (JSON cannot represent them). *)

(** {1 Buffer writers} — the compact serializer piecewise, for encoders
    that stream a response into a reusable buffer without building the
    tree first.  Output is byte-identical to the corresponding
    [to_string ~pretty:false] fragment. *)

val add_json : Buffer.t -> t -> unit
(** Compact {!to_string} into [buf]. *)

val add_number : Buffer.t -> float -> unit
(** One number, with integral values rendered digit-by-digit (no printf
    on the hot path) and non-finite values as [null]. *)

val add_escaped : Buffer.t -> string -> unit
(** One RFC 8259-escaped string literal, quotes included. *)

(** {1 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** Field lookup in an object ([None] elsewhere). *)

val to_float : t -> float option
val to_int : t -> int option
(** [Number] with an integral value. *)

val to_bool : t -> bool option
val to_list : t -> t list option
val to_str : t -> string option

val float_field : string -> t -> float option
val string_field : string -> t -> string option
val list_field : string -> t -> t list option

(** {1 Builders} *)

val float_array : float array -> t
val of_float_array : t -> float array option
