(** Service counters and latency summaries.

    One source of truth for everything the [stats] response and the
    shutdown report print: request/error/query counters, cache hit and
    miss totals (counted here, not in {!Lru_cache} — deduplication
    within a batch also counts as a hit), and latency sample series
    (solves, replans, whole batches) summarized with
    {!Ckpt_numerics.Stats} plus p50/p90/p95/p99 quantiles.

    Every operation takes the internal mutex, so workers and the
    coordinator may record concurrently. *)

type t

val create : unit -> t

(** {1 Wall-clock timing} *)

val now_ms : unit -> float
(** Monotonic-enough wall clock ([Unix.gettimeofday]) in milliseconds;
    subtract two readings for a duration. *)

(** {1 Counters} *)

val incr_requests : t -> unit
val incr_errors : t -> unit

val add_queries : t -> int -> unit
(** Individual solver queries, counting each sweep point. *)

val incr_cache_hit : t -> unit
val incr_cache_miss : t -> unit

val incr_degraded : t -> unit
(** One request answered by the closed-form fallback chain. *)

val add_retries : t -> int -> unit
(** Extra solve attempts beyond the first, summed per request. *)

val incr_breaker_trip : t -> unit
(** The circuit breaker opened (primary path suspended). *)

(** {1 Latency series} *)

val record_solve_ms : t -> float -> unit
(** One optimizer solve (a cache miss actually computed). *)

val record_replan_ms : t -> float -> unit
(** One telemetry-driven [replan] solve (never cached, so every replan
    is a sample — the latency the adaptive control loop pays). *)

val record_batch_ms : t -> float -> unit
(** One whole [handle_batch] call. *)

(** {1 Reading} *)

type quantiles = { p50 : float; p90 : float; p95 : float; p99 : float }
(** All [0.] while the series is empty. *)

type series = {
  count : int;
  summary : Ckpt_numerics.Stats.summary option;  (** [None] before any sample *)
  quantiles : quantiles;
}

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  queries : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;  (** [hits / (hits + misses)]; [0.] before traffic *)
  degraded : int;
  retries : int;
  breaker_trips : int;
  solves : int;
  solve_ms : series;
  replans : int;
  replan_ms : series;
  batches : int;
  batch_ms : series;
}

val snapshot : t -> snapshot

val to_json : t -> Ckpt_json.Json.t
(** The [stats] payload: counters, cache ratios and latency summaries as
    a JSON object.  A ["resilience"] block (degraded answers, retries,
    breaker trips) is appended only when at least one of those counters
    is nonzero, so healthy sessions serialize exactly as before. *)

val pp : Format.formatter -> t -> unit
(** The human-readable shutdown report. *)
