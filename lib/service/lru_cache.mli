(** A fixed-capacity least-recently-used cache, string keys to ['a].

    Backing store for the plan cache: capacity-bounded so a long-running
    service cannot grow without limit, LRU so sweep refinements that
    revisit recent grid points stay resident.  Purely a data structure —
    hit/miss accounting lives in {!Metrics}, which owns the single
    source of truth the [stats] response reports.

    Not domain-safe: the service only touches the cache from the
    coordinating domain (workers receive already-missed queries and
    never see the cache). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** [find t k] returns the cached value and marks [k] most recently
    used. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val add : 'a t -> string -> 'a -> unit
(** [add t k v] binds [k], replacing any existing binding (and marking
    it most recently used); when the cache is over capacity the least
    recently used binding is evicted. *)

val to_list : 'a t -> (string * 'a) list
(** All bindings, most recently used first; does not touch recency.
    Re-adding them in reverse order reproduces the same recency order —
    what the snapshot layer relies on for warm restarts. *)

val evictions : 'a t -> int
(** Total bindings evicted by capacity pressure since [create]. *)

val clear : 'a t -> unit
