module Stats = Ckpt_numerics.Stats
module Json = Ckpt_json.Json

(* Growable sample buffer; amortized O(1) append. *)
module Buffer = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 64 0.; len = 0 }

  let add b x =
    if b.len = Array.length b.data then begin
      let bigger = Array.make (2 * b.len) 0. in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.data 0 b.len
end

type t = {
  mutex : Mutex.t;
  started_at : float;
  mutable requests : int;
  mutable errors : int;
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable degraded : int;
  mutable retries : int;
  mutable breaker_trips : int;
  solve_ms : Buffer.t;
  replan_ms : Buffer.t;
  batch_ms : Buffer.t;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let create () =
  { mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    requests = 0;
    errors = 0;
    queries = 0;
    cache_hits = 0;
    cache_misses = 0;
    degraded = 0;
    retries = 0;
    breaker_trips = 0;
    solve_ms = Buffer.create ();
    replan_ms = Buffer.create ();
    batch_ms = Buffer.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_requests t = locked t (fun () -> t.requests <- t.requests + 1)
let incr_errors t = locked t (fun () -> t.errors <- t.errors + 1)
let add_queries t n = locked t (fun () -> t.queries <- t.queries + n)
let incr_cache_hit t = locked t (fun () -> t.cache_hits <- t.cache_hits + 1)
let incr_cache_miss t = locked t (fun () -> t.cache_misses <- t.cache_misses + 1)
let incr_degraded t = locked t (fun () -> t.degraded <- t.degraded + 1)
let add_retries t n = locked t (fun () -> t.retries <- t.retries + n)
let incr_breaker_trip t = locked t (fun () -> t.breaker_trips <- t.breaker_trips + 1)
let record_solve_ms t ms = locked t (fun () -> Buffer.add t.solve_ms ms)
let record_replan_ms t ms = locked t (fun () -> Buffer.add t.replan_ms ms)
let record_batch_ms t ms = locked t (fun () -> Buffer.add t.batch_ms ms)

type quantiles = { p50 : float; p90 : float; p95 : float; p99 : float }

let zero_quantiles = { p50 = 0.; p90 = 0.; p95 = 0.; p99 = 0. }

type series = {
  count : int;
  summary : Stats.summary option;  (** [None] before any sample *)
  quantiles : quantiles;
}

let series_of samples =
  if Array.length samples = 0 then { count = 0; summary = None; quantiles = zero_quantiles }
  else
    { count = Array.length samples;
      summary = Some (Stats.summarize samples);
      quantiles =
        { p50 = Stats.percentile samples 0.5;
          p90 = Stats.percentile samples 0.9;
          p95 = Stats.percentile samples 0.95;
          p99 = Stats.percentile samples 0.99 } }

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  queries : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  degraded : int;
  retries : int;
  breaker_trips : int;
  solves : int;
  solve_ms : series;
  replans : int;
  replan_ms : series;
  batches : int;
  batch_ms : series;
}

let snapshot t =
  locked t (fun () ->
      let solve_ms = series_of (Buffer.to_array t.solve_ms) in
      let replan_ms = series_of (Buffer.to_array t.replan_ms) in
      let batch_ms = series_of (Buffer.to_array t.batch_ms) in
      let lookups = t.cache_hits + t.cache_misses in
      { uptime_s = Unix.gettimeofday () -. t.started_at;
        requests = t.requests;
        errors = t.errors;
        queries = t.queries;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        hit_rate = (if lookups = 0 then 0. else float_of_int t.cache_hits /. float_of_int lookups);
        degraded = t.degraded;
        retries = t.retries;
        breaker_trips = t.breaker_trips;
        solves = solve_ms.count;
        solve_ms;
        replans = replan_ms.count;
        replan_ms;
        batches = batch_ms.count;
        batch_ms })

let series_json s =
  match s.summary with
  | None -> Json.Null
  | Some (sm : Stats.summary) ->
      Json.Obj
        [ ("count", Json.Number (float_of_int sm.Stats.n));
          ("mean", Json.Number sm.Stats.mean);
          ("std", Json.Number sm.Stats.std);
          ("min", Json.Number sm.Stats.min);
          ("max", Json.Number sm.Stats.max);
          ("p50", Json.Number s.quantiles.p50);
          ("p90", Json.Number s.quantiles.p90);
          ("p95", Json.Number s.quantiles.p95);
          ("p99", Json.Number s.quantiles.p99) ]

let to_json t =
  let s = snapshot t in
  Json.Obj
    ([ ("uptime_s", Json.Number s.uptime_s);
      ("requests", Json.Number (float_of_int s.requests));
      ("errors", Json.Number (float_of_int s.errors));
      ("queries", Json.Number (float_of_int s.queries));
      ("cache",
       Json.Obj
         [ ("hits", Json.Number (float_of_int s.cache_hits));
           ("misses", Json.Number (float_of_int s.cache_misses));
           ("hit_rate", Json.Number s.hit_rate) ]);
      ("solves", Json.Number (float_of_int s.solves));
      ("solve_ms", series_json s.solve_ms);
      ("replans", Json.Number (float_of_int s.replans));
      ("replan_ms", series_json s.replan_ms);
       ("batches", Json.Number (float_of_int s.batches));
       ("batch_ms", series_json s.batch_ms) ]
    (* The resilience block appears only once degradation machinery has
       actually fired, so healthy sessions keep the pre-PR stats shape. *)
    @
    if s.degraded = 0 && s.retries = 0 && s.breaker_trips = 0 then []
    else
      [ ("resilience",
         Json.Obj
           [ ("degraded", Json.Number (float_of_int s.degraded));
             ("retries", Json.Number (float_of_int s.retries));
             ("breaker_trips", Json.Number (float_of_int s.breaker_trips)) ]) ])

let pp_series ppf name s =
  match s.summary with
  | None -> ()
  | Some sm ->
      Format.fprintf ppf "  %-10s %d: mean %.3f ms, p50 %.3f, p90 %.3f, p95 %.3f, p99 %.3f, max %.3f@,"
        name sm.Stats.n sm.Stats.mean s.quantiles.p50 s.quantiles.p90 s.quantiles.p95
        s.quantiles.p99 sm.Stats.max

let pp ppf t =
  let s = snapshot t in
  Format.fprintf ppf "@[<v>service metrics:@,";
  Format.fprintf ppf "  requests   %d (%d errors)@," s.requests s.errors;
  Format.fprintf ppf "  queries    %d@," s.queries;
  Format.fprintf ppf "  cache      %d hits / %d misses (hit rate %.1f%%)@," s.cache_hits
    s.cache_misses (100. *. s.hit_rate);
  if s.degraded > 0 || s.retries > 0 || s.breaker_trips > 0 then
    Format.fprintf ppf "  resilience %d degraded, %d retries, %d breaker trips@,"
      s.degraded s.retries s.breaker_trips;
  (if s.solves = 0 then Format.fprintf ppf "  solves     0@,"
   else pp_series ppf "solves" s.solve_ms);
  pp_series ppf "replans" s.replan_ms;
  pp_series ppf "batches" s.batch_ms;
  Format.fprintf ppf "  uptime     %.3f s@]" s.uptime_s
