module Stats = Ckpt_numerics.Stats
module Json = Ckpt_json.Json

(* Growable sample buffer; amortized O(1) append. *)
module Buffer = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 64 0.; len = 0 }

  let add b x =
    if b.len = Array.length b.data then begin
      let bigger = Array.make (2 * b.len) 0. in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.data 0 b.len
end

type t = {
  mutex : Mutex.t;
  started_at : float;
  mutable requests : int;
  mutable errors : int;
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  solve_ms : Buffer.t;
  batch_ms : Buffer.t;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let create () =
  { mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    requests = 0;
    errors = 0;
    queries = 0;
    cache_hits = 0;
    cache_misses = 0;
    solve_ms = Buffer.create ();
    batch_ms = Buffer.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_requests t = locked t (fun () -> t.requests <- t.requests + 1)
let incr_errors t = locked t (fun () -> t.errors <- t.errors + 1)
let add_queries t n = locked t (fun () -> t.queries <- t.queries + n)
let incr_cache_hit t = locked t (fun () -> t.cache_hits <- t.cache_hits + 1)
let incr_cache_miss t = locked t (fun () -> t.cache_misses <- t.cache_misses + 1)
let record_solve_ms t ms = locked t (fun () -> Buffer.add t.solve_ms ms)
let record_batch_ms t ms = locked t (fun () -> Buffer.add t.batch_ms ms)

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  queries : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  solves : int;
  solve_ms : Stats.summary option;
  solve_ms_p50 : float;
  solve_ms_p90 : float;
  solve_ms_p99 : float;
  batches : int;
  batch_ms : Stats.summary option;
}

let snapshot t =
  locked t (fun () ->
      let solve_samples = Buffer.to_array t.solve_ms in
      let batch_samples = Buffer.to_array t.batch_ms in
      let summarize a = if Array.length a = 0 then None else Some (Stats.summarize a) in
      let pct a p = if Array.length a = 0 then 0. else Stats.percentile a p in
      let lookups = t.cache_hits + t.cache_misses in
      { uptime_s = Unix.gettimeofday () -. t.started_at;
        requests = t.requests;
        errors = t.errors;
        queries = t.queries;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        hit_rate = (if lookups = 0 then 0. else float_of_int t.cache_hits /. float_of_int lookups);
        solves = Array.length solve_samples;
        solve_ms = summarize solve_samples;
        solve_ms_p50 = pct solve_samples 0.5;
        solve_ms_p90 = pct solve_samples 0.9;
        solve_ms_p99 = pct solve_samples 0.99;
        batches = Array.length batch_samples;
        batch_ms = summarize batch_samples })

let summary_json = function
  | None -> Json.Null
  | Some (s : Stats.summary) ->
      Json.Obj
        [ ("count", Json.Number (float_of_int s.Stats.n));
          ("mean", Json.Number s.Stats.mean);
          ("std", Json.Number s.Stats.std);
          ("min", Json.Number s.Stats.min);
          ("max", Json.Number s.Stats.max) ]

let to_json t =
  let s = snapshot t in
  let solve =
    match summary_json s.solve_ms with
    | Json.Obj fields ->
        Json.Obj
          (fields
          @ [ ("p50", Json.Number s.solve_ms_p50);
              ("p90", Json.Number s.solve_ms_p90);
              ("p99", Json.Number s.solve_ms_p99) ])
    | other -> other
  in
  Json.Obj
    [ ("uptime_s", Json.Number s.uptime_s);
      ("requests", Json.Number (float_of_int s.requests));
      ("errors", Json.Number (float_of_int s.errors));
      ("queries", Json.Number (float_of_int s.queries));
      ("cache",
       Json.Obj
         [ ("hits", Json.Number (float_of_int s.cache_hits));
           ("misses", Json.Number (float_of_int s.cache_misses));
           ("hit_rate", Json.Number s.hit_rate) ]);
      ("solves", Json.Number (float_of_int s.solves));
      ("solve_ms", solve);
      ("batches", Json.Number (float_of_int s.batches));
      ("batch_ms", summary_json s.batch_ms) ]

let pp ppf t =
  let s = snapshot t in
  Format.fprintf ppf "@[<v>service metrics:@,";
  Format.fprintf ppf "  requests   %d (%d errors)@," s.requests s.errors;
  Format.fprintf ppf "  queries    %d@," s.queries;
  Format.fprintf ppf "  cache      %d hits / %d misses (hit rate %.1f%%)@," s.cache_hits
    s.cache_misses (100. *. s.hit_rate);
  (match s.solve_ms with
  | None -> Format.fprintf ppf "  solves     0@,"
  | Some sm ->
      Format.fprintf ppf "  solves     %d: mean %.3f ms, p50 %.3f, p90 %.3f, p99 %.3f, max %.3f@,"
        sm.Stats.n sm.Stats.mean s.solve_ms_p50 s.solve_ms_p90 s.solve_ms_p99 sm.Stats.max);
  (match s.batch_ms with
  | None -> ()
  | Some bm ->
      Format.fprintf ppf "  batches    %d: mean %.3f ms, max %.3f ms@," bm.Stats.n bm.Stats.mean
        bm.Stats.max);
  Format.fprintf ppf "  uptime     %.3f s@]" s.uptime_s
