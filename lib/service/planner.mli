(** Cached, batched, failure-hardened execution of optimizer queries.

    The heart of the service: a batch of {!Protocol.query} values comes
    in, answers come out in submission order, and as little work as
    possible happens in between —

    + each query is keyed by its {!Fingerprint} plus solver options;
    + keys resident in the {!Sharded_cache} are served immediately (a
      hit);
    + duplicate keys within the batch collapse onto one solve (the
      duplicates also count as hits — the solver runs once);
    + the remaining unique misses fan out over the {!Pool} (or run
      inline when no pool is given), each solve timed into {!Metrics};
    + results are written back to the cache and reassembled.

    Because [Optimizer.solve] is a pure function of the query, the
    parallel path returns bit-identical plans to sequential solving —
    the property the test suite pins down.

    {2 Resilience}

    Every uncached solve runs under a retry-and-degrade discipline:

    - the solve is classified ({!Ckpt_model.Optimizer.outcome});
      [Diverged]/[Non_finite] outcomes are retried up to
      [max_attempts] times with exponential backoff and deterministic
      jitter, inside a per-request [deadline_ms] budget;
    - a request whose primary (multilevel) path still fails degrades
      onto the closed-form chain [sl_opt_scale] → Young's [sl_ori_scale]
      — the answer carries [degraded = Some _] with the fallback used
      and the reason, and is {e never cached};
    - a count-based circuit breaker opens after [breaker_threshold]
      consecutive primary failures: the next [breaker_cooldown] uncached
      requests skip the primary solve entirely (reason ["circuit-open"])
      and are served by the chain, after which the primary is retried.

    With no chaos policy and a healthy solver none of this machinery
    fires, and answers are byte-identical to the pre-resilience planner.

    Chaos solver faults and backoff jitter are keyed by a per-request
    sequence number assigned in submission order on the coordinator, so
    the full failure schedule — like the plans themselves — is
    independent of pool size. *)

(** Knobs for the retry / deadline / breaker / fallback discipline. *)
type resilience = {
  max_attempts : int;  (** solve attempts per request, >= 1 *)
  backoff_ms : float;  (** base pause before retry 1 (then * factor) *)
  backoff_factor : float;  (** >= 1 *)
  jitter : float;  (** fraction in [0, 1] of the pause randomized *)
  deadline_ms : float;  (** per-request retry budget, > 0 (may be [infinity]) *)
  breaker_threshold : int;  (** consecutive failures to trip; 0 disables *)
  breaker_cooldown : int;  (** fallback-only requests while open, >= 1 *)
  fallback : bool;  (** serve closed-form plans when the primary fails *)
}

val default_resilience : resilience
(** 3 attempts, 1 ms base backoff doubling with 50% jitter, 10 s
    deadline, breaker at 5 consecutive failures for 16 requests,
    fallback on. *)

type t

val create :
  ?cache_capacity:int ->
  ?precision:int ->
  ?resilience:resilience ->
  ?chaos:Ckpt_chaos.Chaos.t ->
  Metrics.t ->
  t
(** [cache_capacity] defaults to 4096 entries, [precision] to
    {!Fingerprint.default_precision} significant digits in cache keys.
    [chaos] injects solver faults into uncached solves (testing only).
    @raise Invalid_argument on nonsensical [resilience] values. *)

val cache : t -> Ckpt_model.Optimizer.plan Sharded_cache.t
val metrics : t -> Metrics.t

val breaker_open : t -> bool
(** Whether the circuit breaker is currently serving fallbacks only. *)

val query_key : t -> Protocol.query -> string
(** The cache key: problem fingerprint + solution + [fixed_n] +
    [delta], all at the planner's precision. *)

val run_query : Protocol.query -> Ckpt_model.Optimizer.plan
(** Uncached dispatch to the matching [Optimizer] entry point, without
    any retry/fallback wrapping.
    @raise Invalid_argument, [Failure] as the optimizer does. *)

val run_query_outcome :
  ?inject:Ckpt_chaos.Chaos.fault ->
  Protocol.query ->
  Ckpt_model.Optimizer.outcome
(** {!run_query}, classified; [inject] forwards a chaos solver fault
    ([Sl_ori] queries ignore it — Young's closed form has no fixed point
    to perturb). *)

val replan :
  t ->
  rates:Ckpt_adaptive.Rate_estimator.t ->
  costs:Ckpt_adaptive.Cost_estimator.t ->
  prior_strength:float ->
  Protocol.query ->
  (Protocol.answer * Ckpt_model.Optimizer.problem, Protocol.error) result
(** Solve the query with its problem's spec replaced by the session's
    fitted rates ([prior_strength] core-seconds of shrinkage toward the
    template's own rates) and its overhead laws calibrated to the
    observed costs; returns the answer and the fitted problem.  Replans
    bypass the cache entirely, are timed into the [replan_ms] series,
    and run under the same retry/fallback discipline as batch solves. *)

val solve_batch :
  ?pool:Ckpt_parallel.Pool.t ->
  t ->
  Protocol.query array ->
  (Protocol.answer, Protocol.error) result array
(** [solve_batch ?pool t qs] solves every query; slot [i] holds the
    answer for [qs.(i)] — its plan, cached flag, and degraded marker if
    it came from the fallback chain — or a structured error when even
    the chain could not produce a converged plan (the error's [attempts]
    counts the solve attempts made; a bad query never kills a worker
    domain or the batch). *)
