(** Cached, batched execution of optimizer queries.

    The heart of the service: a batch of {!Protocol.query} values comes
    in, plans come out in submission order, and as little work as
    possible happens in between —

    + each query is keyed by its {!Fingerprint} plus solver options;
    + keys resident in the {!Lru_cache} are served immediately (a hit);
    + duplicate keys within the batch collapse onto one solve (the
      duplicates also count as hits — the solver runs once);
    + the remaining unique misses fan out over the {!Pool} (or run
      inline when no pool is given), each solve timed into {!Metrics};
    + results are written back to the cache and reassembled.

    Because [Optimizer.solve] is a pure function of the query, the
    parallel path returns bit-identical plans to sequential solving —
    the property the test suite pins down. *)

type t

val create : ?cache_capacity:int -> ?precision:int -> Metrics.t -> t
(** [cache_capacity] defaults to 4096 entries, [precision] to
    {!Fingerprint.default_precision} significant digits in cache keys. *)

val cache : t -> Ckpt_model.Optimizer.plan Lru_cache.t
val metrics : t -> Metrics.t

val query_key : t -> Protocol.query -> string
(** The cache key: problem fingerprint + solution + [fixed_n] +
    [delta], all at the planner's precision. *)

val run_query : Protocol.query -> Ckpt_model.Optimizer.plan
(** Uncached dispatch to the matching [Optimizer] entry point.
    @raise Invalid_argument, [Failure] as the optimizer does. *)

val replan :
  t ->
  rates:Ckpt_adaptive.Rate_estimator.t ->
  costs:Ckpt_adaptive.Cost_estimator.t ->
  prior_strength:float ->
  Protocol.query ->
  (Ckpt_model.Optimizer.plan * Ckpt_model.Optimizer.problem, Protocol.error) result
(** Solve the query with its problem's spec replaced by the session's
    fitted rates ([prior_strength] core-seconds of shrinkage toward the
    template's own rates) and its overhead laws calibrated to the
    observed costs; returns the plan and the fitted problem.  Replans
    bypass the cache entirely and are timed into the [replan_ms]
    series. *)

val solve_batch :
  ?pool:Ckpt_parallel.Pool.t ->
  t ->
  Protocol.query array ->
  (Ckpt_model.Optimizer.plan * bool, Protocol.error) result array
(** [solve_batch ?pool t qs] solves every query; slot [i] holds the plan
    for [qs.(i)] and whether it was served from cache, or a
    ["solve-failure"] error if the optimizer raised (captured — a bad
    query never kills a worker domain or the batch). *)
