type 'a shard = { lock : Mutex.t; store : 'a Lru_cache.t }

type 'a t = {
  shards : 'a shard array;
  mask : int;  (* shard count - 1; count is a power of two *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(shards = 8) ~capacity () =
  if not (is_power_of_two shards) then
    invalid_arg "Sharded_cache.create: shards must be a positive power of two";
  if capacity < shards then
    invalid_arg "Sharded_cache.create: capacity < shards";
  (* Split the budget evenly; the remainder goes to the first shards so
     the total capacity is exactly what the caller asked for. *)
  let base = capacity / shards and extra = capacity mod shards in
  { shards =
      Array.init shards (fun i ->
          { lock = Mutex.create ();
            store = Lru_cache.create ~capacity:(base + if i < extra then 1 else 0) });
    mask = shards - 1 }

let shards t = Array.length t.shards

(* Keys are the service's 16-hex-char FNV-1a fingerprints: the leading
   nibble is as uniform as any, so it routes.  Non-hex leading characters
   (foreign keys) still land somewhere deterministic. *)
let shard_of t key =
  let nibble =
    if String.length key = 0 then 0
    else
      match key.[0] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> Char.code c
  in
  t.shards.(nibble land t.mask)

let with_shard t key f =
  let s = shard_of t key in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s.store)

let find t key = with_shard t key (fun store -> Lru_cache.find store key)
let mem t key = with_shard t key (fun store -> Lru_cache.mem store key)
let add t key v = with_shard t key (fun store -> Lru_cache.add store key v)

let fold_stores t f init =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f acc s.store))
    init t.shards

let to_list t =
  List.concat (List.rev (fold_stores t (fun acc store -> Lru_cache.to_list store :: acc) []))

let length t = fold_stores t (fun acc store -> acc + Lru_cache.length store) 0
let capacity t = fold_stores t (fun acc store -> acc + Lru_cache.capacity store) 0
let evictions t = fold_stores t (fun acc store -> acc + Lru_cache.evictions store) 0

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () ->
          Lru_cache.clear s.store))
    t.shards
