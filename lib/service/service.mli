(** The concurrent batch planning service.

    Front door for `ckpt_serve` and for embedding: feed it raw JSON
    request lines, get JSON response values back in the same order.
    Internally each batch is parsed and validated up front, expanded
    (sweeps become one query per grid point), deduplicated and solved
    through {!Planner} over the domain {!Pool}, then reassembled into
    per-request responses.  [simulate-validate] requests additionally
    replay the plan through the event-driven simulator, also on the
    pool.

    The service also carries one {e telemetry session}: [observe]
    requests fold {!Ckpt_adaptive.Telemetry} events into per-level rate
    and cost estimators, [estimate] reports the fitted parameters with
    confidence intervals, and [replan] re-runs the optimizer with a
    request's problem re-parameterized by the estimates.  These stateful
    ops are executed inline in line order (never fanned out), so an
    [observe] earlier in a batch is visible to a [replan] later in the
    same one; [estimate]/[replan] before any observed exposure answer a
    ["no-telemetry"] error.

    {2 Failure handling}

    Every request is answered: malformed or corrupted lines get a
    structured [error] response, solver failures are retried and then
    degraded onto the closed-form fallback chain by the {!Planner}
    (answers marked ["degraded"]), and a crashed worker domain is
    respawned by the {!Ckpt_parallel.Pool} supervisor with its work
    requeued.  [handle_batch] itself only raises if called after
    {!shutdown}.

    When a {!Ckpt_chaos.Chaos.t} policy is installed the service also
    exercises its own fault sites: incoming request lines may be
    corrupted or truncated before parsing, and observed telemetry
    timestamps may be skewed before reaching the estimators.  Chaos
    indices for both sites are assigned in arrival order on the
    coordinator, so a given seed produces the same fault schedule — and
    the same responses — at any worker count.

    A service owns its pool; call {!shutdown} (idempotent) when done so
    the worker domains are joined. *)

type t

val create :
  ?workers:int ->
  ?cache_capacity:int ->
  ?precision:int ->
  ?resilience:Planner.resilience ->
  ?chaos:Ckpt_chaos.Chaos.t ->
  unit ->
  t
(** [workers] defaults to 1; [workers = 1] still runs through a single
    worker domain, [workers = 0] disables the pool entirely (solves run
    in the calling domain).  [cache_capacity] and [precision] configure
    the {!Planner}; [resilience] tunes its retry/breaker/fallback
    discipline.  [chaos] installs a fault-injection policy across the
    pool, the solver, the line decoder and the telemetry intake
    (testing only — omit it in production). *)

val workers : t -> int
val metrics : t -> Metrics.t
val planner : t -> Planner.t

val chaos : t -> Ckpt_chaos.Chaos.t option
(** The installed fault policy, if any (its {!Ckpt_chaos.Chaos.records}
    log tells you what actually fired). *)

val session_estimators : t -> (Ckpt_adaptive.Rate_estimator.t * Ckpt_adaptive.Cost_estimator.t) option
(** The telemetry session's current estimators, once an [observe] has
    created them. *)

val restore_session :
  t ->
  rates:Ckpt_adaptive.Rate_estimator.t ->
  costs:Ckpt_adaptive.Cost_estimator.t ->
  unit
(** Install estimator state (typically loaded from a durable snapshot)
    as the telemetry session, replacing any current one.  Subsequent
    [observe]/[estimate]/[replan] requests continue exactly where the
    snapshotted service left off.
    @raise Invalid_argument when the two estimators disagree on the
    level count. *)

val handle_batch : t -> string list -> Ckpt_json.Json.t list
(** [handle_batch t lines] answers one response per request line, order
    preserved.  Malformed lines yield error responses; they never
    abort the batch. *)

val handle_line : t -> string -> Ckpt_json.Json.t
(** Single-request convenience over {!handle_batch}. *)

val handle_batch_lines : t -> string list -> string list
(** [handle_batch] rendered straight to wire strings: the hot
    solver-bound responses (plan, batch-plan, sweep) are streamed
    through {!Wire} into one reusable buffer instead of materializing a
    {!Ckpt_json.Json.t} tree per response.  Output is byte-identical to
    [List.map (Ckpt_json.Json.to_string ?pretty:None) (handle_batch t lines)];
    servers that write lines out verbatim should prefer this. *)

val handle_line_string : t -> string -> string
(** Single-request convenience over {!handle_batch_lines}. *)

val stats_json : t -> Ckpt_json.Json.t
(** The current {!Metrics.to_json} payload (also served by the
    [stats] op), with any {!set_stats_extra} fields appended. *)

val set_persist_hook : t -> (string -> (unit, Protocol.error) result) option -> unit
(** Durability gate for the stateful ops ([observe], [replan],
    [calibrate]): when set, the hook is called with the raw
    (post-mangle) request line {e before} the op mutates the session.
    [Ok ()] lets the op proceed; [Error e] answers the client with [e]
    and leaves the session untouched — so an acked stateful op is
    exactly one whose line the hook accepted.  Read-only ops never
    consult it.  The server installs its WAL append here; replay works
    by feeding the logged lines back through {!handle_line_string}
    with the hook unset. *)

val set_stats_extra : t -> (unit -> (string * Ckpt_json.Json.t) list) option -> unit
(** Extra top-level fields appended to the [stats] payload on every
    render — the server reports persistence health through this. *)

val shutdown : t -> unit
