(** The concurrent batch planning service.

    Front door for `ckpt_serve` and for embedding: feed it raw JSON
    request lines, get JSON response values back in the same order.
    Internally each batch is parsed and validated up front, expanded
    (sweeps become one query per grid point), deduplicated and solved
    through {!Planner} over the domain {!Pool}, then reassembled into
    per-request responses.  [simulate-validate] requests additionally
    replay the plan through the event-driven simulator, also on the
    pool.

    The service also carries one {e telemetry session}: [observe]
    requests fold {!Ckpt_adaptive.Telemetry} events into per-level rate
    and cost estimators, [estimate] reports the fitted parameters with
    confidence intervals, and [replan] re-runs the optimizer with a
    request's problem re-parameterized by the estimates.  These stateful
    ops are executed inline in line order (never fanned out), so an
    [observe] earlier in a batch is visible to a [replan] later in the
    same one; [estimate]/[replan] before any observed exposure answer a
    ["no-telemetry"] error.

    A service owns its pool; call {!shutdown} (idempotent) when done so
    the worker domains are joined. *)

type t

val create : ?workers:int -> ?cache_capacity:int -> ?precision:int -> unit -> t
(** [workers] defaults to 1; [workers = 1] still runs through a single
    worker domain, [workers = 0] disables the pool entirely (solves run
    in the calling domain).  [cache_capacity] and [precision] configure
    the {!Planner}. *)

val workers : t -> int
val metrics : t -> Metrics.t
val planner : t -> Planner.t

val session_estimators : t -> (Ckpt_adaptive.Rate_estimator.t * Ckpt_adaptive.Cost_estimator.t) option
(** The telemetry session's current estimators, once an [observe] has
    created them. *)

val handle_batch : t -> string list -> Ckpt_json.Json.t list
(** [handle_batch t lines] answers one response per request line, order
    preserved.  Malformed lines yield error responses; they never
    abort the batch. *)

val handle_line : t -> string -> Ckpt_json.Json.t
(** Single-request convenience over {!handle_batch}. *)

val stats_json : t -> Ckpt_json.Json.t
(** The current {!Metrics.to_json} payload (also served by the
    [stats] op). *)

val shutdown : t -> unit
