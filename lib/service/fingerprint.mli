(** Canonical fingerprints of optimizer problems.

    The plan cache must recognize that two requests describe the same
    {!Ckpt_model.Optimizer.problem} even when their JSON floats carry
    noise below any meaningful precision (a sweep generator printing
    [376179.00000000006], a client re-serializing [0.46] as
    [0.45999999999999996]).  The fingerprint therefore canonicalizes the
    problem — every float rendered with a declared number of significant
    digits, fields emitted in a fixed sorted order — and hashes the
    resulting string with 64-bit FNV-1a.

    Two caveats, both documented invariants rather than bugs:
    - the {e hierarchy order} of levels is preserved, not sorted: level
      position is semantic (cheapest first, last level is the PFS;
      recovery from a level-f failure climbs to a level >= f), so
      permuted hierarchies are genuinely different problems;
    - level [name]s are excluded: they are display labels and do not
      affect the plan. *)

val default_precision : int
(** 9 significant digits — well above the optimizer's [delta = 1e-9]
    convergence threshold, well below double-precision noise. *)

val float_repr : precision:int -> float -> string
(** Canonical rendering: [%.(precision-1)e] scientific notation, with
    [0.], [-0.], NaN and infinities normalized to fixed spellings.
    Requires [precision >= 1]. *)

val canonical : ?precision:int -> Ckpt_model.Optimizer.problem -> string
(** The canonical text form that gets hashed; exposed for tests and
    debugging.  Custom speedups ([Speedup.Custom]) cannot be
    canonicalized and raise [Invalid_argument].  Custom overhead
    baselines are identified by their [h_name] — two distinct custom
    baseline functions sharing a name would collide, so service inputs
    are restricted upstream (the JSON codec only admits ["0"] and
    ["N"]). *)

val of_problem : ?precision:int -> Ckpt_model.Optimizer.problem -> string
(** [of_problem p] is the 16-hex-digit FNV-1a hash of {!canonical}.
    @raise Invalid_argument on [Speedup.Custom]. *)

val hash_string : string -> string
(** 64-bit FNV-1a of an arbitrary string, as 16 lowercase hex digits.
    Deterministic across runs and domains (no [Hashtbl.hash] seeding).
    Equal to [hash_hex (hash_fold hash_init s)]. *)

val hash_init : int64
(** The FNV-1a offset basis — the accumulator before any byte. *)

val hash_fold : int64 -> string -> int64
(** Fold a piece into a running FNV-1a accumulator.  Folding
    [s1, s2, ...] in order equals hashing their concatenation, so hot
    paths can key on composite strings without building them. *)

val hash_hex : int64 -> string
(** Render an accumulator as 16 lowercase hex digits ([%016Lx]). *)
