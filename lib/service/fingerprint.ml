open Ckpt_model
module Failure_spec = Ckpt_failures.Failure_spec

let default_precision = 9

let float_repr ~precision x =
  if precision < 1 then invalid_arg "Fingerprint.float_repr: precision < 1";
  if x = 0. then "0" (* covers -0. *)
  else if Float.is_nan x then "nan"
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%.*e" (precision - 1) x

let speedup_repr ~f (s : Speedup.t) =
  match s.Speedup.form with
  | Speedup.Linear { kappa } -> Printf.sprintf "linear,kappa=%s" (f kappa)
  | Speedup.Quadratic { kappa; n_star } ->
      Printf.sprintf "quadratic,kappa=%s,n_star=%s" (f kappa) (f n_star)
  | Speedup.Amdahl { serial_fraction; peak } ->
      Printf.sprintf "amdahl,s=%s,peak=%s" (f serial_fraction) (f peak)
  | Speedup.Gustafson { serial_fraction; peak } ->
      Printf.sprintf "gustafson,s=%s,peak=%s" (f serial_fraction) (f peak)
  | Speedup.Custom ->
      invalid_arg "Fingerprint.canonical: custom speedups have no canonical form"

let overhead_repr ~f (o : Overhead.t) =
  Printf.sprintf "eps=%s,alpha=%s,h=%s" (f o.Overhead.eps) (f o.Overhead.alpha)
    o.Overhead.h_name

let level_repr ~f (l : Level.t) =
  (* Names excluded: labels only.  Hierarchy order is preserved by the
     caller — position is semantic. *)
  Printf.sprintf "c(%s)r(%s)" (overhead_repr ~f l.Level.ckpt) (overhead_repr ~f l.Level.restart)

let canonical ?(precision = default_precision) (p : Optimizer.problem) =
  let f = float_repr ~precision in
  let levels =
    p.Optimizer.levels |> Array.map (level_repr ~f) |> Array.to_list |> String.concat ";"
  in
  let rates =
    p.Optimizer.spec.Failure_spec.rates_per_day
    |> Array.map f |> Array.to_list |> String.concat ","
  in
  Printf.sprintf "v1|alloc=%s|baseline=%s|levels=%s|rates=%s|speedup=%s|te=%s"
    (f p.Optimizer.alloc)
    (f p.Optimizer.spec.Failure_spec.baseline_scale)
    levels rates
    (speedup_repr ~f p.Optimizer.speedup)
    (f p.Optimizer.te)

let hash_init = 0xcbf29ce484222325L

let hash_fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let hex_digits = "0123456789abcdef"

(* Same 16 lowercase hex digits [%016Lx] prints, without the printf
   machinery — the hot key path renders one per query. *)
let hash_hex h =
  let b = Bytes.create 16 in
  for i = 0 to 15 do
    let nibble = Int64.to_int (Int64.shift_right_logical h ((15 - i) * 4)) land 0xf in
    Bytes.unsafe_set b i (String.unsafe_get hex_digits nibble)
  done;
  Bytes.unsafe_to_string b

let hash_string s = hash_hex (hash_fold hash_init s)

let of_problem ?precision p = hash_string (canonical ?precision p)
