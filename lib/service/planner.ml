open Ckpt_model
module Pool = Ckpt_parallel.Pool

type t = {
  cache : Optimizer.plan Lru_cache.t;
  metrics : Metrics.t;
  precision : int;
}

let create ?(cache_capacity = 4096) ?(precision = Fingerprint.default_precision) metrics =
  { cache = Lru_cache.create ~capacity:cache_capacity; metrics; precision }

let cache t = t.cache
let metrics t = t.metrics

let query_key t (q : Protocol.query) =
  let f = Fingerprint.float_repr ~precision:t.precision in
  let canonical =
    Printf.sprintf "%s|solution=%s|fixed_n=%s|delta=%s"
      (Fingerprint.canonical ~precision:t.precision q.Protocol.problem)
      (Protocol.solution_to_string q.Protocol.solution)
      (match q.Protocol.fixed_n with None -> "free" | Some n -> f n)
      (f q.Protocol.delta)
  in
  Fingerprint.hash_string canonical

let run_query (q : Protocol.query) =
  let delta = q.Protocol.delta in
  let p = q.Protocol.problem in
  match (q.Protocol.solution, q.Protocol.fixed_n) with
  | Protocol.Ml_opt, None -> Optimizer.ml_opt_scale ~delta p
  | Protocol.Ml_opt, Some n -> Optimizer.solve ~delta ~fixed_n:n p
  | Protocol.Ml_ori, n -> Optimizer.ml_ori_scale ~delta ?n p
  | Protocol.Sl_opt, None -> Optimizer.sl_opt_scale ~delta p
  | Protocol.Sl_opt, Some n ->
      Optimizer.solve ~delta ~fixed_n:n (Optimizer.single_level_problem p)
  | Protocol.Sl_ori, n -> Optimizer.sl_ori_scale ?n p

(* Each miss is solved under a timer; the captured result and duration
   travel back to the coordinator, which owns cache and metrics. *)
let solve_timed q =
  let t0 = Metrics.now_ms () in
  let result =
    try Ok (run_query q)
    with e ->
      Error
        { Protocol.code = "solve-failure";
          message =
            (match e with
            | Invalid_argument m | Failure m -> m
            | e -> Printexc.to_string e) }
  in
  (result, Metrics.now_ms () -. t0)

(* A replan solves a *fitted* problem: the template query's spec and
   overhead laws are replaced by the session estimates.  Never cached —
   the estimates move with every observe, so a fingerprint hit would
   serve stale parameters — and timed into its own metrics series. *)
let replan t ~rates ~costs ~prior_strength (q : Protocol.query) =
  let p = q.Protocol.problem in
  let fit () =
    let spec =
      Ckpt_adaptive.Rate_estimator.to_spec ~prior_strength rates ~like:p.Optimizer.spec
    in
    let levels = Ckpt_adaptive.Cost_estimator.calibrated_levels costs ~prior:p.Optimizer.levels in
    { p with Optimizer.spec; levels }
  in
  match fit () with
  | exception Invalid_argument m -> Error { Protocol.code = "invalid-request"; message = m }
  | fitted -> (
      let t0 = Metrics.now_ms () in
      let result =
        try Ok (run_query { q with Protocol.problem = fitted })
        with e ->
          Error
            { Protocol.code = "solve-failure";
              message =
                (match e with
                | Invalid_argument m | Failure m -> m
                | e -> Printexc.to_string e) }
      in
      Metrics.record_replan_ms t.metrics (Metrics.now_ms () -. t0);
      match result with Ok plan -> Ok (plan, fitted) | Error e -> Error e)

let solve_batch ?pool t queries =
  let n = Array.length queries in
  Metrics.add_queries t.metrics n;
  let results = Array.make n (Error { Protocol.code = "internal"; message = "unset" }) in
  (* Pass 1: serve cache hits, collapse duplicates, collect unique
     misses.  [slot_of.(i)]: where query [i]'s plan comes from. *)
  let slot_of = Array.make n (-1) in
  let pending = Hashtbl.create 64 in
  let miss_rev = ref [] in
  let n_miss = ref 0 in
  Array.iteri
    (fun i q ->
      let key = query_key t q in
      match Hashtbl.find_opt pending key with
      | Some slot ->
          (* Same key earlier in this batch: one solve serves both. *)
          Metrics.incr_cache_hit t.metrics;
          slot_of.(i) <- slot
      | None -> (
          match Lru_cache.find t.cache key with
          | Some plan ->
              Metrics.incr_cache_hit t.metrics;
              results.(i) <- Ok (plan, true)
          | None ->
              Metrics.incr_cache_miss t.metrics;
              let slot = !n_miss in
              incr n_miss;
              Hashtbl.add pending key slot;
              miss_rev := (key, q) :: !miss_rev;
              slot_of.(i) <- slot))
    queries;
  (* Pass 2: fan the unique misses out. *)
  let misses = Array.of_list (List.rev !miss_rev) in
  let solved =
    match pool with
    | Some pool -> Pool.map pool ~f:(fun (_, q) -> solve_timed q) misses
    | None -> Array.map (fun (_, q) -> solve_timed q) misses
  in
  (* Pass 3: record, cache, reassemble in submission order. *)
  Array.iteri
    (fun slot (outcome, ms) ->
      Metrics.record_solve_ms t.metrics ms;
      match outcome with
      | Ok plan -> Lru_cache.add t.cache (fst misses.(slot)) plan
      | Error _ -> ())
    solved;
  (* [cached] flag: the first occurrence of a missed key did the solve;
     later in-batch duplicates were served without one. *)
  let first_seen = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      let slot = slot_of.(i) in
      if slot >= 0 then begin
        let cached = Hashtbl.mem first_seen slot in
        Hashtbl.replace first_seen slot ();
        results.(i) <-
          (match fst solved.(slot) with
          | Ok plan -> Ok (plan, cached)
          | Error e -> Error e)
      end)
    queries;
  results
