open Ckpt_model
module Pool = Ckpt_parallel.Pool
module Chaos = Ckpt_chaos.Chaos
module Rng = Ckpt_numerics.Rng

type resilience = {
  max_attempts : int;
  backoff_ms : float;
  backoff_factor : float;
  jitter : float;
  deadline_ms : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  fallback : bool;
}

let default_resilience =
  { max_attempts = 3;
    backoff_ms = 1.;
    backoff_factor = 2.;
    jitter = 0.5;
    deadline_ms = 10_000.;
    breaker_threshold = 5;
    breaker_cooldown = 16;
    fallback = true }

let check_resilience r =
  if r.max_attempts < 1 then invalid_arg "Planner: max_attempts < 1";
  if not (Float.is_finite r.backoff_ms) || r.backoff_ms < 0. then
    invalid_arg "Planner: backoff_ms must be finite and >= 0";
  if not (Float.is_finite r.backoff_factor) || r.backoff_factor < 1. then
    invalid_arg "Planner: backoff_factor must be finite and >= 1";
  if not (Float.is_finite r.jitter) || r.jitter < 0. || r.jitter > 1. then
    invalid_arg "Planner: jitter must be in [0, 1]";
  if Float.is_nan r.deadline_ms || r.deadline_ms <= 0. then
    invalid_arg "Planner: deadline_ms must be positive";
  if r.breaker_threshold < 0 then invalid_arg "Planner: breaker_threshold < 0";
  if r.breaker_cooldown < 1 then invalid_arg "Planner: breaker_cooldown < 1"

type t = {
  cache : Optimizer.plan Sharded_cache.t;
  metrics : Metrics.t;
  precision : int;
  resilience : resilience;
  chaos : Chaos.t option;
  (* Breaker state, the canonical-form memo and the solve sequence
     counter are only touched by the coordinator (solve_batch / replan
     callers), never by pool workers, so they need no lock. *)
  mutable seq : int;  (* chaos/backoff key of the next uncached solve *)
  mutable consecutive_failures : int;
  mutable open_remaining : int;  (* > 0: breaker open, skip primary *)
  mutable canon_memo : (Optimizer.problem * int64) option;
      (* last problem fingerprinted, by physical identity, as the FNV
         accumulator after folding its canonical form: batch clients
         send one problem object across a whole batch, so the expensive
         half of the key — rendering and hashing ~400 canonical bytes —
         happens once, not per query *)
}

let create ?(cache_capacity = 4096) ?(precision = Fingerprint.default_precision)
    ?(resilience = default_resilience) ?chaos metrics =
  check_resilience resilience;
  { cache = Sharded_cache.create ~capacity:cache_capacity ();
    metrics;
    precision;
    resilience;
    chaos;
    seq = 0;
    consecutive_failures = 0;
    open_remaining = 0;
    canon_memo = None }

let cache t = t.cache
let metrics t = t.metrics
let breaker_open t = t.open_remaining > 0

let canonical_hash t p =
  match t.canon_memo with
  | Some (p', h) when p' == p -> h
  | _ ->
      let h =
        Fingerprint.hash_fold Fingerprint.hash_init
          (Fingerprint.canonical ~precision:t.precision p)
      in
      t.canon_memo <- Some (p, h);
      h

(* The key hashes the byte sequence
   [canonical ^ "|solution=" ^ ... ^ "|delta=" ^ f delta], folded piece
   by piece so the composite string is never built.  The canonical
   prefix's accumulator is memoized per problem object — the two
   together take the key off the batch critical path.  Coordinator-only
   (it reads the memo). *)
let query_key t (q : Protocol.query) =
  let f = Fingerprint.float_repr ~precision:t.precision in
  let h = canonical_hash t q.Protocol.problem in
  let h = Fingerprint.hash_fold h "|solution=" in
  let h = Fingerprint.hash_fold h (Protocol.solution_to_string q.Protocol.solution) in
  let h = Fingerprint.hash_fold h "|fixed_n=" in
  let h =
    Fingerprint.hash_fold h
      (match q.Protocol.fixed_n with None -> "free" | Some n -> f n)
  in
  let h = Fingerprint.hash_fold h "|delta=" in
  let h = Fingerprint.hash_fold h (f q.Protocol.delta) in
  Fingerprint.hash_hex h

(* Uncached dispatch, classified.  Without [inject] the underlying solve
   is byte-identical to the pre-outcome dispatch. *)
let run_query_outcome ?inject (q : Protocol.query) =
  let delta = q.Protocol.delta in
  let p = q.Protocol.problem in
  match (q.Protocol.solution, q.Protocol.fixed_n) with
  | Protocol.Ml_opt, None -> Optimizer.solve_outcome ~delta ?inject p
  | Protocol.Ml_opt, Some n -> Optimizer.solve_outcome ~delta ~fixed_n:n ?inject p
  | Protocol.Ml_ori, n ->
      let n =
        Option.value n
          ~default:(Speedup.search_upper_bound p.Optimizer.speedup ~default:1e9)
      in
      Optimizer.solve_outcome ~delta ~fixed_n:n ?inject p
  | Protocol.Sl_opt, None ->
      Optimizer.solve_outcome ~delta ?inject (Optimizer.single_level_problem p)
  | Protocol.Sl_opt, Some n ->
      Optimizer.solve_outcome ~delta ~fixed_n:n ?inject
        (Optimizer.single_level_problem p)
  | Protocol.Sl_ori, n ->
      (* Young's closed form has no fixed point to starve and no estimate
         to poison — solver faults cannot apply to it. *)
      Optimizer.classify (Optimizer.sl_ori_scale ?n p)

let run_query q = Optimizer.plan_of_outcome (run_query_outcome q)

let solve_error e =
  Protocol.error_v "solve-failure"
    (match e with Invalid_argument m | Failure m -> m | e -> Printexc.to_string e)

(* Deterministic backoff jitter: keyed by (request key, attempt), not by
   a shared stream, for the same reason chaos draws are. *)
let backoff_sleep r ~key ~attempt =
  let base = r.backoff_ms *. (r.backoff_factor ** float_of_int (attempt - 1)) in
  let rng = Rng.of_int ((key * 2654435761) + attempt) in
  let factor = 1. +. (r.jitter *. ((2. *. Rng.float rng) -. 1.)) in
  let ms = Float.min 1_000. (base *. factor) in
  if ms > 0. then Unix.sleepf (ms /. 1000.)

(* One uncached solve under the full retry discipline: bounded attempts,
   exponential backoff with jitter between them, and a per-request
   deadline checked before each retry (an in-flight OCaml solve cannot
   be interrupted, so the deadline bounds retrying, not one solve).
   Safe to run on a pool worker: everything it touches is immutable or
   its own. *)
let solve_with_retries t ~key (q : Protocol.query) =
  let r = t.resilience in
  let deadline = Metrics.now_ms () +. r.deadline_ms in
  let rec attempt k last_err =
    if k >= r.max_attempts then Error { last_err with Protocol.attempts = k }
    else if k > 0 && Metrics.now_ms () >= deadline then
      Error
        (Protocol.error_v ~attempts:k "deadline-exceeded"
           (Printf.sprintf "retry budget (%g ms) exhausted after %d attempts"
              r.deadline_ms k))
    else begin
      if k > 0 then backoff_sleep r ~key ~attempt:k;
      let inject =
        Option.bind t.chaos (fun ch -> Chaos.solver_fault ch ~index:key ~attempt:k)
      in
      match run_query_outcome ?inject q with
      | Optimizer.Converged plan -> Ok (plan, k + 1)
      | Optimizer.Diverged _ ->
          attempt (k + 1)
            (Protocol.error_v "solver-diverged"
               "outer fixed point hit its iteration cap before the mu drift \
                converged")
      | Optimizer.Non_finite _ ->
          attempt (k + 1)
            (Protocol.error_v "solver-non-finite"
               "expected wall clock is unbounded at this failure burden")
      | exception e ->
          (* Invalid_argument and friends are permanent: retrying cannot
             change a rejected problem. *)
          Error { (solve_error e) with Protocol.attempts = k + 1 }
    end
  in
  attempt 0 (Protocol.error_v "solve-failure" "no attempt made")

(* The degraded chain: cheaper, better-conditioned solutions in quality
   order.  sl-opt still optimizes interval and scale over the collapsed
   hierarchy; sl-ori (Young) is a closed form that cannot diverge.  The
   fallback solves run without injection — chaos targets primary solves,
   and the chain is the mechanism under test, not the subject. *)
let fallback_candidates (q : Protocol.query) =
  match q.Protocol.solution with
  | Protocol.Ml_opt | Protocol.Ml_ori -> [ Protocol.Sl_opt; Protocol.Sl_ori ]
  | Protocol.Sl_opt -> [ Protocol.Sl_ori ]
  | Protocol.Sl_ori -> []

let fallback_chain (q : Protocol.query) =
  List.find_map
    (fun solution ->
      match run_query_outcome { q with Protocol.solution } with
      | Optimizer.Converged plan -> Some (solution, plan)
      | Optimizer.Diverged _ | Optimizer.Non_finite _ -> None
      | exception _ -> None)
    (fallback_candidates q)

(* One uncached query end to end: primary with retries (unless the
   breaker says skip), then the fallback chain.  Returns the answer plus
   whether the *primary* path failed — the signal the breaker folds. *)
let solve_uncached t ~skip_primary ~key (q : Protocol.query) =
  let primary =
    if skip_primary then
      Error
        (Protocol.error_v "circuit-open"
           "multilevel path suspended after repeated failures; serving \
            closed-form fallback")
    else solve_with_retries t ~key q
  in
  match primary with
  | Ok (plan, attempts) ->
      (attempts - 1, false, Ok { Protocol.plan; cached = false; degraded = None })
  | Error reason ->
      let retries = max 0 (reason.Protocol.attempts - 1) in
      if not t.resilience.fallback then (retries, true, Error reason)
      else (
        match fallback_chain q with
        | Some (fallback, plan) ->
            ( retries,
              true,
              Ok
                { Protocol.plan;
                  cached = false;
                  degraded = Some { Protocol.fallback; reason } } )
        | None -> (retries, true, Error reason))

let solve_timed t ~skip_primary ~key q =
  let t0 = Metrics.now_ms () in
  let outcome = solve_uncached t ~skip_primary ~key q in
  (outcome, Metrics.now_ms () -. t0)

(* Map a query onto a batch job — the same dispatch [run_query_outcome]
   performs, minus what the batch solver cannot express: Sl_ori's
   closed form, and problems that fail validation (the classic path
   owns the error shape for those).  [None] means "classic path". *)
let batch_job_of (q : Protocol.query) =
  let delta = q.Protocol.delta in
  let p = q.Protocol.problem in
  match
    match (q.Protocol.solution, q.Protocol.fixed_n) with
    | Protocol.Ml_opt, fixed_n -> Some (p, fixed_n)
    | Protocol.Ml_ori, n ->
        Some
          ( p,
            Some
              (Option.value n
                 ~default:
                   (Speedup.search_upper_bound p.Optimizer.speedup ~default:1e9))
          )
    | Protocol.Sl_opt, fixed_n ->
        Some (Optimizer.single_level_problem p, fixed_n)
    | Protocol.Sl_ori, _ -> None
  with
  | None -> None
  | Some (p, fixed_n) ->
      Optimizer.check_problem p;
      Some (Optimizer.batch_job ~delta ?fixed_n p)
  | exception _ -> None

(* Coordinator-side bookkeeping for one primary-path outcome, in
   submission order: count-based breaker (open after [breaker_threshold]
   consecutive primary failures, serve fallbacks for [breaker_cooldown]
   requests, then re-try the primary path) plus the resilience
   counters. *)
let fold_outcome t ~skipped ~retries ~primary_failed ~degraded =
  if retries > 0 then Metrics.add_retries t.metrics retries;
  if degraded then Metrics.incr_degraded t.metrics;
  let r = t.resilience in
  if r.breaker_threshold > 0 && not skipped then begin
    if primary_failed then begin
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= r.breaker_threshold then begin
        t.consecutive_failures <- 0;
        t.open_remaining <- r.breaker_cooldown;
        Metrics.incr_breaker_trip t.metrics
      end
    end
    else t.consecutive_failures <- 0
  end

(* Decide, before fan-out, whether this uncached request may try the
   primary path.  Consumes one cooldown tick when open. *)
let decide_skip t =
  if t.open_remaining > 0 then begin
    t.open_remaining <- t.open_remaining - 1;
    true
  end
  else false

let next_key t =
  let key = t.seq in
  t.seq <- key + 1;
  key

(* A replan solves a *fitted* problem: the template query's spec and
   overhead laws are replaced by the session estimates.  Never cached —
   the estimates move with every observe, so a fingerprint hit would
   serve stale parameters — and timed into its own metrics series.  It
   runs inline on the coordinator, so it gets per-request breaker
   granularity. *)
let replan t ~rates ~costs ~prior_strength (q : Protocol.query) =
  let p = q.Protocol.problem in
  let fit () =
    let spec =
      Ckpt_adaptive.Rate_estimator.to_spec ~prior_strength rates ~like:p.Optimizer.spec
    in
    let levels = Ckpt_adaptive.Cost_estimator.calibrated_levels costs ~prior:p.Optimizer.levels in
    { p with Optimizer.spec; levels }
  in
  match fit () with
  | exception Invalid_argument m -> Error (Protocol.error_v "invalid-request" m)
  | fitted -> (
      let skip_primary = decide_skip t in
      let key = next_key t in
      let (retries, primary_failed, outcome), ms =
        solve_timed t ~skip_primary ~key { q with Protocol.problem = fitted }
      in
      Metrics.record_replan_ms t.metrics ms;
      fold_outcome t ~skipped:skip_primary ~retries ~primary_failed
        ~degraded:
          (match outcome with
          | Ok { Protocol.degraded = Some _; _ } -> true
          | _ -> false);
      match outcome with
      | Ok answer -> Ok (answer, fitted)
      | Error e -> Error e)

let solve_batch ?pool t queries =
  let n = Array.length queries in
  Metrics.add_queries t.metrics n;
  let results = Array.make n (Error (Protocol.error_v "internal" "unset")) in
  (* Pass 1: serve cache hits, collapse duplicates, collect unique
     misses.  [slot_of.(i)]: where query [i]'s plan comes from.  Chaos
     keys and breaker skip decisions are fixed here, in submission
     order, so the fault schedule cannot depend on worker scheduling.
     (Breaker decisions within one batch share the state at batch entry;
     outcomes fold back in submission order below — line-at-a-time
     traffic gets per-request granularity.) *)
  let slot_of = Array.make n (-1) in
  let pending = Hashtbl.create 64 in
  let miss_rev = ref [] in
  let n_miss = ref 0 in
  Array.iteri
    (fun i q ->
      let key = query_key t q in
      match Hashtbl.find_opt pending key with
      | Some slot ->
          (* Same key earlier in this batch: one solve serves both. *)
          Metrics.incr_cache_hit t.metrics;
          slot_of.(i) <- slot
      | None -> (
          match Sharded_cache.find t.cache key with
          | Some plan ->
              Metrics.incr_cache_hit t.metrics;
              results.(i) <- Ok { Protocol.plan; cached = true; degraded = None }
          | None ->
              Metrics.incr_cache_miss t.metrics;
              let slot = !n_miss in
              incr n_miss;
              Hashtbl.add pending key slot;
              miss_rev := (key, q, next_key t, decide_skip t) :: !miss_rev;
              slot_of.(i) <- slot))
    queries;
  (* Pass 2: fan the unique misses out.  Misses the batch solver can
     express — chaos off, breaker closed, a solver-backed solution
     shape, a valid problem — go through [Optimizer.solve_batch] in
     contiguous stripes (one SoA pass per stripe, fanned across the
     pool).  Within a stripe the rows are solved in scale order with
     cross-row warm starts; each converged row is plan-equivalent to
     the classic dispatch's answer (same integer scale, E(T_w) within
     1e-9 relative — the solver contract), so it stands in for the
     classic first-attempt success: zero retries, primary intact,
     per-row time the stripe mean.  Rows that do not converge are
     re-dispatched down the classic path, whose retry discipline and
     fallback chain would have engaged on the same deterministic
     divergence. *)
  let misses = Array.of_list (List.rev !miss_rev) in
  let solved = Array.make (Array.length misses) None in
  if t.chaos = None then begin
    let rows_rev = ref [] in
    Array.iteri
      (fun i (_, q, _, skip_primary) ->
        if not skip_primary then
          match batch_job_of q with
          | Some job -> rows_rev := (i, job) :: !rows_rev
          | None -> ())
      misses;
    let rows = Array.of_list (List.rev !rows_rev) in
    let nrows = Array.length rows in
    if nrows > 0 then begin
      let jobs = Array.map snd rows in
      (* Stripe count: enough to keep every worker busy twice over, but
         never stripes of fewer than ~8 rows — below that the stripe
         setup outweighs the shared-term reuse inside it. *)
      let stripes =
        match pool with
        | Some pool when Pool.workers pool > 1 && nrows >= 16 ->
            let nstripes = min (2 * Pool.workers pool) ((nrows + 7) / 8) in
            let per = (nrows + nstripes - 1) / nstripes in
            Array.init nstripes (fun s ->
                let lo = s * per in
                (lo, min nrows (lo + per) - lo))
        | _ -> [| (0, nrows) |]
      in
      let solve_stripe (lo, len) =
        if len <= 0 then ([||], 0.)
        else
          let t0 = Metrics.now_ms () in
          match Optimizer.solve_batch (Array.sub jobs lo len) with
          | plans -> (plans, (Metrics.now_ms () -. t0) /. float_of_int len)
          | exception _ -> ([||], 0.)  (* stripe falls back to classic *)
      in
      let stripe_results =
        match pool with
        | Some pool when Array.length stripes > 1 ->
            Pool.map pool ~f:solve_stripe stripes
        | _ -> Array.map solve_stripe stripes
      in
      Array.iteri
        (fun s (lo, len) ->
          let plans, per_row_ms = stripe_results.(s) in
          if Array.length plans = len then
            for k = 0 to len - 1 do
              let mi, _ = rows.(lo + k) in
              match Optimizer.classify plans.(k) with
              | Optimizer.Converged plan ->
                  solved.(mi) <-
                    Some
                      ( ( 0,
                          false,
                          Ok { Protocol.plan; cached = false; degraded = None }
                        ),
                        per_row_ms )
              | Optimizer.Diverged _ | Optimizer.Non_finite _ -> ()
            done)
        stripes
    end
  end;
  (* Whatever the batch path did not serve goes down the classic path. *)
  let solve (_, q, key, skip_primary) = solve_timed t ~skip_primary ~key q in
  let rest_idx =
    Array.of_list
      (List.filter
         (fun i -> Option.is_none solved.(i))
         (List.init (Array.length misses) Fun.id))
  in
  let rest = Array.map (fun i -> misses.(i)) rest_idx in
  let rest_solved =
    match pool with
    | Some pool when Array.length rest > 1 -> Pool.map pool ~f:solve rest
    | _ -> Array.map solve rest
  in
  Array.iteri (fun k i -> solved.(i) <- Some rest_solved.(k)) rest_idx;
  let solved =
    Array.map (function Some x -> x | None -> assert false) solved
  in
  (* Pass 3: record, fold breaker state in submission order, cache
     healthy plans (degraded answers are never cached — the primary
     might recover on the next miss), reassemble. *)
  Array.iteri
    (fun slot ((retries, primary_failed, outcome), ms) ->
      Metrics.record_solve_ms t.metrics ms;
      let cache_key, _, _, skipped = misses.(slot) in
      (match outcome with
      | Ok { Protocol.plan; degraded = None; _ } ->
          Sharded_cache.add t.cache cache_key plan
      | Ok _ | Error _ -> ());
      fold_outcome t ~skipped ~retries ~primary_failed
        ~degraded:
          (match outcome with
          | Ok { Protocol.degraded = Some _; _ } -> true
          | _ -> false))
    solved;
  (* [cached] flag: the first occurrence of a missed key did the solve;
     later in-batch duplicates were served without one. *)
  let first_seen = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      let slot = slot_of.(i) in
      if slot >= 0 then begin
        let cached = Hashtbl.mem first_seen slot in
        Hashtbl.replace first_seen slot ();
        results.(i) <-
          (match solved.(slot) with
          | (_, _, Ok answer), _ -> Ok { answer with Protocol.cached }
          | (_, _, Error e), _ -> Error e)
      end)
    queries;
  results
